#include "core/electrical.h"

#include <cmath>

#include "util/check.h"

namespace opckit::opc {

GateProfile extract_gate_profile(const litho::Image& latent,
                                 const geom::Point& gate_start,
                                 const geom::Point& width_direction,
                                 double gate_width_nm, double threshold,
                                 double slice_step_nm,
                                 double probe_span_nm) {
  OPCKIT_CHECK(manhattan_length(width_direction) == 1);
  OPCKIT_CHECK(gate_width_nm > 0 && slice_step_nm > 0);

  // Channel length is measured perpendicular to the width direction.
  const geom::Point length_dir{width_direction.y, width_direction.x};

  GateProfile profile;
  profile.slice_width_nm = slice_step_nm;
  for (double t = slice_step_nm / 2; t < gate_width_nm;
       t += slice_step_nm) {
    const geom::Point center{
        gate_start.x +
            static_cast<geom::Coord>(
                static_cast<double>(width_direction.x) * t),
        gate_start.y +
            static_cast<geom::Coord>(
                static_cast<double>(width_direction.y) * t)};
    const double cd = litho::printed_cd(latent, center, length_dir,
                                        probe_span_nm, threshold);
    if (std::isnan(cd)) {
      ++profile.lost_slices;
      continue;
    }
    profile.slice_cd_nm.push_back(cd);
  }
  return profile;
}

double drive_equivalent_length(const GateProfile& profile,
                               const DeviceModel& model) {
  OPCKIT_CHECK_MSG(!profile.slice_cd_nm.empty() && profile.lost_slices == 0,
                   "gate profile incomplete");
  double conductance = 0.0;  // Σ wᵢ / Lᵢ^α
  for (double cd : profile.slice_cd_nm) {
    OPCKIT_CHECK(cd > 0.0);
    conductance += profile.slice_width_nm / std::pow(cd, model.alpha);
  }
  return std::pow(profile.width_nm() / conductance, 1.0 / model.alpha);
}

double leakage_equivalent_length(const GateProfile& profile,
                                 const DeviceModel& model) {
  OPCKIT_CHECK_MSG(!profile.slice_cd_nm.empty() && profile.lost_slices == 0,
                   "gate profile incomplete");
  double off = 0.0;  // Σ wᵢ exp(-(Lᵢ-L₀)/λ)
  for (double cd : profile.slice_cd_nm) {
    off += profile.slice_width_nm *
           std::exp(-(cd - model.nominal_length_nm) /
                    model.leakage_lambda_nm);
  }
  return model.nominal_length_nm -
         model.leakage_lambda_nm * std::log(off / profile.width_nm());
}

double relative_delay(double equivalent_length_nm, const DeviceModel& model) {
  OPCKIT_CHECK(equivalent_length_nm > 0);
  return std::pow(equivalent_length_nm / model.nominal_length_nm,
                  model.alpha);
}

double relative_leakage(double leakage_length_nm, const DeviceModel& model) {
  return std::exp(-(leakage_length_nm - model.nominal_length_nm) /
                  model.leakage_lambda_nm);
}

}  // namespace opckit::opc
