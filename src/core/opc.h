/// \file opc.h
/// Umbrella header for the opckit OPC engine (the paper's subject).
#pragma once

#include "core/correction_cache.h"  // IWYU pragma: export
#include "core/deck_io.h"       // IWYU pragma: export
#include "core/electrical.h"    // IWYU pragma: export
#include "core/flow.h"          // IWYU pragma: export
#include "core/fragment.h"      // IWYU pragma: export
#include "core/maskdata.h"      // IWYU pragma: export
#include "core/model.h"         // IWYU pragma: export
#include "core/neighborhood.h"  // IWYU pragma: export
#include "core/orc.h"           // IWYU pragma: export
#include "core/rules.h"         // IWYU pragma: export
#include "core/sraf.h"          // IWYU pragma: export
