/// \file flow.h
/// Full-chip OPC flows over the layout database.
///
/// Two production strategies from the paper era, with opposite tradeoffs:
///
/// * **Cell-level OPC** corrects each distinct cell once, in isolation,
///   and lets the hierarchy replicate the correction. Cost scales with
///   distinct cells; the mask data keeps the hierarchy's compression. But
///   context across cell boundaries is invisible, so boundary edges are
///   corrected against the wrong optical environment.
/// * **Flat (placement-level) OPC** corrects every placement with its true
///   neighbours as context. Accurate everywhere, but cost scales with
///   placements and the output is flat — the hierarchy "explodes".
///
/// Experiment T6 quantifies both sides.
#pragma once

#include <string>

#include "core/model.h"
#include "layout/library.h"

namespace opckit::opc {

/// Flow configuration.
struct FlowSpec {
  ModelOpcSpec opc;
  litho::SimSpec sim;                 ///< must be calibrated
  geom::Coord halo_nm = 800;          ///< optical context margin
  layout::Layer input_layer{10, 0};
  layout::Layer output_layer{10, 1};
  /// Flat-flow context passes. Pass 1 corrects each placement against its
  /// DRAWN neighbours; but the final mask's neighbours are corrected, so
  /// the optical context each placement optimized for is stale (the
  /// tile-to-tile convergence problem). Pass 2 re-corrects against the
  /// pass-1 corrected context. Two passes converge for the move
  /// magnitudes this engine allows.
  int flat_context_passes = 2;
  /// Run the opclint pre-flight gate (library structure + geometry +
  /// model parameters) before correcting; error-severity findings abort
  /// the flow with util::InputError. Sub-wavelength masks built from
  /// invalid inputs fail silently, so flows verify before they correct.
  bool preflight = true;
};

/// Cost/coverage accounting of a flow run.
struct FlowStats {
  std::size_t opc_runs = 0;       ///< independent OPC problems solved
  std::size_t simulations = 0;    ///< total imaging iterations
  std::size_t corrected_polygons = 0;
  bool all_converged = true;
};

/// Hierarchy-preserving OPC: every distinct cell reachable from \p top
/// that has shapes on the input layer is corrected once, in isolation;
/// corrected shapes are written to the cell's output layer.
FlowStats run_cell_opc(layout::Library& lib, const std::string& top,
                       const FlowSpec& spec);

/// Flat OPC: every placement is corrected against its true neighborhood
/// (flattened context within the halo). The corrected mask is written,
/// flat, to the output layer of \p top.
FlowStats run_flat_opc(layout::Library& lib, const std::string& top,
                       const FlowSpec& spec);

}  // namespace opckit::opc
