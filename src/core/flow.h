/// \file flow.h
/// Full-chip OPC flows over the layout database.
///
/// Two production strategies from the paper era, with opposite tradeoffs:
///
/// * **Cell-level OPC** corrects each distinct cell once, in isolation,
///   and lets the hierarchy replicate the correction. Cost scales with
///   distinct cells; the mask data keeps the hierarchy's compression. But
///   context across cell boundaries is invisible, so boundary edges are
///   corrected against the wrong optical environment.
/// * **Flat (placement-level) OPC** corrects every placement with its true
///   neighbours as context. Accurate everywhere, but cost scales with
///   placements and the output is flat — the hierarchy "explodes".
///
/// Experiment T6 quantifies both sides.
///
/// ## Execution model
///
/// Both flows run as a sequence of *phases* over independent work units
/// (tiles: one placement in the flat flow, one cell in the cell flow):
///
///   A. **gather** (parallel)  — assemble each tile's simulation input
///      (own targets + halo context) and its cache key; reads shared
///      immutable state only.
///   B. **resolve** (serial)   — look every tile up in the correction
///      cache, in placement order, so the choice of representative per
///      pattern class never depends on thread timing.
///   C. **solve** (parallel)   — run_model_opc on the tiles that missed;
///      pure function of per-tile inputs.
///   D. **merge** (serial)     — store/replay cache solutions and write
///      corrected shapes, again in placement order.
///
/// Because every parallel phase is read-only on shared state and every
/// ordering decision happens in a serial phase, the output is
/// **byte-identical to the serial flow at any `jobs` value** — the tier-1
/// determinism regression tests assert exactly this.
///
/// The correction cache (see correction_cache.h) replays fragment-move
/// solutions across geometrically identical tiles. Translation-exact
/// replay reproduces the fresh solve bit for bit, so enabling the cache
/// does not change output geometry either — only the work done.
///
/// The persistent correction store (FlowSpec::store_path, see
/// store/result_store.h) makes that reuse durable: solved classes are
/// streamed to disk from the serial merge phase and preloaded on resume,
/// so a crashed run restarts from its last merged tile and an edited
/// layout (ECO) re-solves only tiles whose halo neighborhood changed —
/// both with output byte-identical to a from-scratch run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/model.h"
#include "ilt/ilt.h"
#include "layout/library.h"
#include "mrc/mrc.h"
#include "store/result_store.h"
#include "trace/metrics.h"

namespace opckit::opc {

/// Which correction engine the flow's solve phase runs (FlowSpec::engine).
enum class CorrectionEngine {
  kModel,     ///< edge-fragment model OPC on every tile (default)
  kIlt,       ///< pixel inverse lithography on every tile
  kEscalate,  ///< model first; residual-EPE outliers re-solve through ILT
};

/// One progress event from a flow run (see FlowSpec::progress): which
/// phase just started or advanced, which flat context pass it belongs
/// to, and the merged-tile watermark. Events fire on the flow's serial
/// driver thread only, so a handler needs no locking against the flow.
struct FlowProgress {
  std::string_view phase;  ///< "gather"|"resolve"|"solve"|"merge"|"mrc"
  int pass = 0;            ///< flat context pass (0-based); cell flow: 0
  std::size_t tiles_done = 0;   ///< merged tiles so far in this pass
  std::size_t tiles_total = 0;  ///< tiles in this pass
};

/// Flow configuration.
struct FlowSpec {
  ModelOpcSpec opc;
  litho::SimSpec sim;                 ///< must be calibrated
  geom::Coord halo_nm = 800;          ///< optical context margin
  layout::Layer input_layer{10, 0};
  layout::Layer output_layer{10, 1};
  /// Flat-flow context passes. Pass 1 corrects each placement against its
  /// DRAWN neighbours; but the final mask's neighbours are corrected, so
  /// the optical context each placement optimized for is stale (the
  /// tile-to-tile convergence problem). Pass 2 re-corrects against the
  /// pass-1 corrected context. Two passes converge for the move
  /// magnitudes this engine allows.
  int flat_context_passes = 2;
  /// Run the opclint pre-flight gate (library structure + geometry +
  /// model parameters) before correcting; error-severity findings abort
  /// the flow with util::InputError. Sub-wavelength masks built from
  /// invalid inputs fail silently, so flows verify before they correct.
  bool preflight = true;
  /// Worker threads for the parallel phases: 1 = serial in the calling
  /// thread (default), N > 1 = a dedicated N-worker pool for this run,
  /// 0 = util::global_pool() (hardware concurrency, shared with the Abbe
  /// source-point integration). Output geometry is identical for every
  /// value — see the execution-model notes above.
  int jobs = 1;
  /// Reuse fragment-move solutions across geometrically identical tiles
  /// (translation-exact matches only; see CorrectionCache). Replayed
  /// solutions are bit-identical to fresh solves, so this changes
  /// FlowStats (fewer opc_runs/simulations), never the output layer.
  bool cache = true;
  /// Additionally reuse across D4 rotations/reflections. Off by default:
  /// replay is then exact only up to float round-off, and only physically
  /// valid for rotationally symmetric illumination.
  bool cache_symmetry = false;
  /// Path of the persistent correction store (see store/result_store.h).
  /// Empty (default) = no store. When set, every freshly solved pattern
  /// class is appended (and flushed) from the serial merge phase, so a
  /// crashed run leaves a valid store behind. Requires `cache`.
  std::string store_path;
  /// Preload `store_path` before correcting: previously solved classes
  /// replay translation-exactly, so a resumed run's output is
  /// byte-identical to an uninterrupted one, and an edited layout
  /// re-solves only tiles whose halo neighborhood changed (ECO mode —
  /// same mechanism, no diffing step). The store must carry the current
  /// flow_fingerprint(); a mismatch aborts with an STO001 diagnostic.
  /// If the file does not exist yet it is created (cold start).
  bool resume = false;
  /// Fault injection for crash-recovery tests: abort the flow (throwing
  /// FlowAborted) once this many tiles have been merged. Negative
  /// (default) = off. Test-only; the abort happens after the tile's
  /// record is flushed to the store, modelling a crash between tiles.
  int fail_after_tiles = -1;
  /// Post-OPC mask-rule signoff gate (see mrc/mrc.h). Empty (default) =
  /// gate off. When set, after the corrected output is written the
  /// scanline MRC engine sweeps it — per tile, in parallel, reusing the
  /// flow's executor and tile index — and the merged report lands in
  /// FlowStats::mrc. The edge-pair/boundary checks tile exactly (each
  /// is a local function of the geometry near its marker); the area
  /// check needs global connectivity, so it runs once over the whole
  /// mask. Signoff reads the output, never rewrites it, so the deck and
  /// action are excluded from flow_fingerprint().
  mrc::Deck mrc_deck;
  /// kFail (default): error-severity violations throw MrcGateError —
  /// after the output layer is written, so the rejected mask can be
  /// inspected. Jog findings (MRC005) are warning-severity and never
  /// block. kWarn: the report is kept in FlowStats only.
  mrc::Action mrc_action = mrc::Action::kFail;
  /// Path of the persistent pattern library (see pattern/library.h).
  /// Empty (default) = no library. When set, the library's entries are
  /// imported for exact replay before correcting (like a store resume),
  /// every freshly solved class is appended — with its warm-start seeds —
  /// from the serial merge phase, and, when `library_budget` > 0, tiles
  /// that miss the cache retrieve the nearest solved pattern to warm-start
  /// from. The file must carry the current flow_fingerprint(); a mismatch
  /// aborts. Requires `cache`. Fingerprint-mixed: warm starts move the
  /// solver's trajectory, so the library identity is an output-affecting
  /// knob.
  std::string library_path;
  /// Feature-space distance budget for near-match retrieval (see
  /// pat::feature_distance). 0 (default) disables near matching: the
  /// library then provides exact replay and accumulation only. Warm
  /// starts change the solved mask within the EPE tolerance (the
  /// convergence test is unchanged), so the budget is fingerprint-mixed.
  double library_budget = 0.0;
  /// Which corrector the solve phase runs per tile. kModel (default) is
  /// the edge-fragment feedback solver. kIlt re-synthesizes every tile
  /// with the pixel inverse-lithography engine (ilt/ilt.h). kEscalate
  /// is the adaptive policy: run the model solver first and hand only
  /// the tiles whose residual worst-case EPE stays above
  /// ilt_escalation_epe_nm to ILT — cheap correction for the easy
  /// geometry, pixel inversion for the hard patterns. All three are
  /// fingerprint-mixed.
  CorrectionEngine engine = CorrectionEngine::kModel;
  /// kEscalate threshold, nm: a model-solved tile whose final
  /// max |EPE| exceeds this re-runs through the ILT engine.
  double ilt_escalation_epe_nm = 6.0;
  /// Pixel-ILT knobs for kIlt/kEscalate tiles (fingerprint-mixed).
  ilt::IltSpec ilt;

  // ---- Service hooks (src/service/) ------------------------------------
  // Reuse plumbing and observability only: none of these can change the
  // output geometry, so none reach flow_fingerprint().

  /// Records imported into this run's correction cache before any tile
  /// resolves — the daemon's shared in-memory pattern library. Same
  /// translation-exact replay semantics as a store resume, so the output
  /// is byte-identical with or without a preload; replays from preloaded
  /// entries count in FlowStats::store_hits and the import count lands in
  /// store_entries_loaded. The pointee must stay alive and unmodified for
  /// the whole run. Requires `cache`.
  const std::vector<store::TileRecord>* preload = nullptr;
  /// Called from the serial merge phase with the canonical-frame record
  /// of every freshly solved pattern class — exactly the bytes a store
  /// would append — so the daemon can feed solves back into its shared
  /// library. Never invoked concurrently (serial phase only).
  std::function<void(const store::TileRecord&)> record_sink;
  /// Cooperative cancellation: polled at every phase boundary and between
  /// merged tiles, on the driver thread; when it reads true the flow
  /// throws FlowAborted. Tiles already merged are durable under
  /// store_path (the fail_after_tiles contract), so a cancelled run
  /// resumes like a crashed one. Null (default) = never cancelled. An
  /// in-flight parallel phase finishes before the next poll — drain
  /// granularity is one phase, not one simulation.
  const std::atomic<bool>* cancel = nullptr;
  /// Progress events from the driver thread: one at each phase start and
  /// one per merged tile (see FlowProgress). Observability only.
  std::function<void(const FlowProgress&)> progress;
  /// fsync the store file after every appended record (see
  /// store::ResultStore sync_on_append) — the daemon's durability mode.
  /// Off by default: batch flows live with the torn-tail contract.
  bool store_sync = false;
  /// The daemon's shared pattern library (an immutable clone_memory()
  /// snapshot), used for near-match retrieval only — exact replay of
  /// shared entries travels through `preload`, keeping store_hits
  /// semantics unchanged. Ignored when library_budget is 0. The pointee
  /// must stay alive and unmodified for the whole run. Note the retrieved
  /// *content* shapes warm starts, hence the output (within tolerance):
  /// unlike the other hooks this one is reuse of solver state, not pure
  /// observability — the enabling knob (library_budget) is what reaches
  /// the fingerprint.
  const pat::PatternLibrary* library = nullptr;
  /// Called from the serial merge phase with the canonical-frame library
  /// record (exact-replay tile + warm-start seeds) of every freshly
  /// solved pattern class, so the daemon can feed solves back into its
  /// shared library. Never invoked concurrently (serial phase only).
  std::function<void(const pat::LibraryRecord&)> library_sink;
};

/// Thrown by FlowSpec::fail_after_tiles fault injection — a stand-in for
/// the process dying mid-run. The store file is valid when it propagates.
class FlowAborted : public std::runtime_error {
 public:
  explicit FlowAborted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Cost/coverage accounting of a flow run.
struct FlowStats {
  std::size_t opc_runs = 0;       ///< independent OPC problems solved
  std::size_t simulations = 0;    ///< total imaging iterations
  std::size_t corrected_polygons = 0;
  bool all_converged = true;
  std::size_t cache_hits = 0;       ///< tiles replayed from the cache
  std::size_t cache_misses = 0;     ///< tiles solved fresh (first sighting)
  std::size_t cache_conflicts = 0;  ///< hash/ownership collisions (solved fresh)
  /// Tiles replayed from entries *preloaded* from the store (a subset of
  /// cache_hits; in-run reuse of a class first solved this run does not
  /// count). The resume/ECO acceptance metric.
  std::size_t store_hits = 0;
  std::size_t store_entries_loaded = 0;    ///< records imported on resume
  std::size_t store_entries_appended = 0;  ///< fresh solves persisted
  /// True when the loaded store ended in a torn record that was dropped
  /// and truncated (STO002) — the crash-recovery path, not an error.
  bool store_tail_recovered = false;
  /// Tiles replayed from entries imported from the pattern library file
  /// (a subset of cache_hits, disjoint from store_hits: store and preload
  /// imports take precedence in representative selection).
  std::size_t library_exact_hits = 0;
  /// Tiles solved fresh but warm-started from a near-match retrieval
  /// (library_budget > 0 and a solved pattern within the budget).
  std::size_t library_near_hits = 0;
  std::size_t library_entries_loaded = 0;    ///< records loaded from the file
  std::size_t library_entries_appended = 0;  ///< fresh solves inserted
  /// Imaging iterations spent on warm-started tiles (a subset of
  /// `simulations`) — the numerator of the warm-start savings metric.
  std::size_t library_warm_iterations = 0;
  /// True when the loaded library ended in a torn record that was dropped
  /// and truncated — crash recovery, not an error.
  bool library_tail_recovered = false;
  /// Imaging iterations per work unit, in deterministic placement order
  /// (flat flow: placements × passes; cell flow: reachable cells with
  /// shapes, sorted by name). Cache-replayed tiles record 0.
  std::vector<std::size_t> tile_simulations;
  /// Worst final-iteration edge-placement errors over all freshly solved
  /// tiles (run/line-end sites): the max of max_abs_epe_nm and the max of
  /// rms_epe_nm. Deterministic — cache replays reuse the representative's
  /// solve, so they contribute through it, not separately. 0 when every
  /// tile replayed.
  double max_abs_epe_nm = 0.0;
  double worst_rms_epe_nm = 0.0;
  /// Tiles solved by the pixel-ILT engine this run (kIlt: every fresh
  /// solve; kEscalate: the escalated subset; kModel: 0).
  std::size_t ilt_tiles = 0;
  /// kEscalate only: tiles whose model solve exceeded
  /// ilt_escalation_epe_nm and were re-solved through ILT (equal to
  /// ilt_tiles under kEscalate; 0 otherwise).
  std::size_t ilt_escalated = 0;
  /// Accepted gradient-descent steps summed over ILT tiles (the ILT
  /// share of `simulations`).
  std::size_t ilt_iterations = 0;
  /// Everything the observability layer measured during this run: the
  /// per-run delta of the process-wide metrics registry (counters like
  /// litho.fft_batched_transforms, per-phase wall-time gauges, the
  /// per-tile simulation histogram). See trace/metrics.h for the full
  /// name table.
  trace::MetricsSnapshot metrics;
  /// Wall-clock of the whole flow in milliseconds. Observability only —
  /// like the phase gauges in `metrics`, not deterministic.
  double wall_ms = 0.0;
  /// True when the MRC signoff gate ran (FlowSpec::mrc_deck non-empty),
  /// even if the mask came back clean.
  bool mrc_checked = false;
  /// Merged signoff report, in the engine's canonical order — identical
  /// at any `jobs` value. Flat flow: chip coordinates, deduplicated.
  /// Cell flow: per-cell reports concatenated in sorted cell order
  /// (markers in each cell's local frame).
  mrc::MrcReport mrc;
  /// Violations attributed per checked tile, in the same deterministic
  /// tile order as tile_simulations (a straddling marker may count in
  /// more than one tile; the report above is deduplicated).
  std::vector<std::size_t> tile_mrc_violations;
};

/// Thrown when FlowSpec::mrc_action is kFail and the corrected mask
/// violates the signoff deck with error severity. The output layer IS
/// written before this propagates — signoff rejects a mask, it does not
/// destroy it — and the carried stats embed the full violation report
/// (stats().mrc) plus every metric the run produced.
class MrcGateError : public std::runtime_error {
 public:
  MrcGateError(const std::string& what, FlowStats stats)
      : std::runtime_error(what), stats_(std::move(stats)) {}
  const FlowStats& stats() const { return stats_; }
  const mrc::MrcReport& report() const { return stats_.mrc; }

 private:
  FlowStats stats_;
};

/// Fingerprint of everything a stored correction's validity depends on:
/// the flow kind ("flat"/"cell") plus every FlowSpec knob that reaches
/// the solver — optical model, resist, mask stack, OPC recipe,
/// fragmentation, halo, layers, pass count, symmetry policy. Two specs
/// with equal fingerprints produce interchangeable corrections for the
/// same geometry; any difference must change the fingerprint so a stale
/// store is refused (STO001) instead of silently replayed. Job count,
/// preflight, stats, store knobs, and the MRC signoff deck/action are
/// deliberately excluded — they cannot change output geometry (signoff
/// only accepts or rejects the mask it reads). The service hooks
/// (preload/record_sink/cancel/progress/store_sync/library/library_sink)
/// are excluded for the same reason. The pattern-library knobs
/// (library_path, library_budget) ARE mixed: near-match warm starts move
/// the solver's trajectory, so the corrected mask depends on them.
std::uint64_t flow_fingerprint(const FlowSpec& spec,
                               std::string_view flow_kind);

/// Machine-readable FlowStats rendering (stable single-line JSON) for
/// the bench harness and CI: cache/store counters, worst EPEs, per-tile
/// simulation counts, wall_ms, and the embedded metrics snapshot.
/// Doubles render with util::format_double (shortest round-trip,
/// locale-independent — never ostream's 6-digit default, which truncates
/// wall_ms and EPE values). `opckit opc --stats json` prints exactly this.
std::string render_stats_json(const FlowStats& stats);

/// Hierarchy-preserving OPC: every distinct cell reachable from \p top
/// that has shapes on the input layer is corrected once, in isolation;
/// corrected shapes are written to the cell's output layer.
FlowStats run_cell_opc(layout::Library& lib, const std::string& top,
                       const FlowSpec& spec);

/// Flat OPC: every placement is corrected against its true neighborhood
/// (flattened context within the halo). The corrected mask is written,
/// flat, to the output layer of \p top.
FlowStats run_flat_opc(layout::Library& lib, const std::string& top,
                       const FlowSpec& spec);

}  // namespace opckit::opc
