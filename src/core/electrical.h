/// \file electrical.h
/// Electrical impact of printed gate geometry — the "impact on design"
/// endpoint.
///
/// A printed MOS gate is not rectangular: proximity effects modulate the
/// channel length along the transistor width. The standard way to feed
/// that into circuit analysis (the post-OPC extraction methodology this
/// library's lineage later published) is the slice model: cut the gate
/// into width slices, read the printed CD of each, and collapse them into
/// two equivalent rectangular lengths —
///
///  * drive-equivalent length:  slices conduct in parallel, I_on ∝
///    Σ wᵢ/Lᵢ^α (alpha-power law), so
///    L_drive = ( W / Σ wᵢ/Lᵢ^α )^(1/α);
///  * leakage-equivalent length: off-current grows exponentially as the
///    channel shortens, I_off ∝ Σ wᵢ·exp(−(Lᵢ−L₀)/λ), so
///    L_leak = L₀ − λ·ln( Σ wᵢ·exp(−(Lᵢ−L₀)/λ) / W ).
///
/// A gate with even one pinched slice leaks like its shortest spot while
/// driving like its average — which is why CD control, not average CD,
/// sets the parametric yield.
#pragma once

#include <vector>

#include "litho/image.h"
#include "litho/metrology.h"

namespace opckit::opc {

/// Printed CD samples along a gate's width direction.
struct GateProfile {
  std::vector<double> slice_cd_nm;  ///< printed channel length per slice
  double slice_width_nm = 0.0;      ///< uniform slice width
  std::size_t lost_slices = 0;      ///< slices whose CD probe failed

  double width_nm() const {
    return slice_width_nm * static_cast<double>(slice_cd_nm.size());
  }
};

/// Electrical model constants.
struct DeviceModel {
  double nominal_length_nm = 180.0;  ///< drawn gate length L₀
  double alpha = 1.3;                ///< alpha-power-law exponent
  double leakage_lambda_nm = 20.0;   ///< exponential leakage sensitivity
};

/// Extract the printed-CD profile of a gate from a latent image. The gate
/// runs along \p width_direction (unit Manhattan vector) from
/// \p gate_start for \p gate_width_nm; the channel length is measured
/// perpendicular to it. Slices are sampled every \p slice_step_nm.
GateProfile extract_gate_profile(const litho::Image& latent,
                                 const geom::Point& gate_start,
                                 const geom::Point& width_direction,
                                 double gate_width_nm, double threshold,
                                 double slice_step_nm = 20.0,
                                 double probe_span_nm = 400.0);

/// Drive-equivalent rectangular gate length (slice-parallel alpha-power
/// combination). Requires a non-empty profile with no lost slices.
double drive_equivalent_length(const GateProfile& profile,
                               const DeviceModel& model);

/// Leakage-equivalent rectangular gate length (exponential combination).
double leakage_equivalent_length(const GateProfile& profile,
                                 const DeviceModel& model);

/// First-order relative gate delay vs a nominal device: (L/L₀)^α
/// (delay ∝ C·V/I_on with I_on ∝ 1/L^α at fixed width).
double relative_delay(double equivalent_length_nm, const DeviceModel& model);

/// First-order relative off-current vs nominal: exp(−(L_leak−L₀)/λ).
double relative_leakage(double leakage_length_nm, const DeviceModel& model);

}  // namespace opckit::opc
