#include "core/neighborhood.h"

#include <algorithm>

#include "util/check.h"

namespace opckit::opc {

using geom::Coord;
using geom::Edge;
using geom::Point;
using geom::Rect;
using geom::Region;

namespace {

Rect index_extent(const std::vector<geom::Polygon>& polys, Coord range) {
  Rect box = Rect::empty();
  for (const auto& p : polys) box = box.united(p.bbox());
  if (box.is_empty()) box = Rect(0, 0, 1, 1);
  return box.inflated(range + 1);
}

}  // namespace

Neighborhood::Neighborhood(const std::vector<geom::Polygon>& polys,
                           Coord interaction_range)
    : range_(interaction_range),
      rects_(Region::from_polygons(polys).rects()),
      index_(index_extent(polys, interaction_range),
             std::max<Coord>(interaction_range, 256)) {
  OPCKIT_CHECK(interaction_range > 0);
  for (std::size_t i = 0; i < rects_.size(); ++i) {
    index_.insert(i, rects_[i]);
  }
}

Coord Neighborhood::space_outside(const Edge& edge,
                                  const Point& outward) const {
  OPCKIT_CHECK(edge.is_manhattan() && !edge.is_degenerate());
  OPCKIT_CHECK(manhattan_length(outward) == 1);
  const Rect span = edge.bbox();
  // Probe window: the edge swept by `range_` along the outward direction.
  Rect probe = span;
  if (outward.x > 0) {
    probe.hi.x += range_;
  } else if (outward.x < 0) {
    probe.lo.x -= range_;
  } else if (outward.y > 0) {
    probe.hi.y += range_;
  } else {
    probe.lo.y -= range_;
  }

  Coord best = range_;
  for (std::size_t id : index_.query(probe)) {
    const Rect& r = rects_[id];
    // Must overlap the edge's transverse span with positive width, and
    // must reach past the edge on the outward side (a rect entirely on the
    // inward side is the feature's own body). A rect that crosses or abuts
    // the edge clamps the gap to zero.
    if (edge.is_horizontal()) {
      if (std::min(r.hi.x, span.hi.x) <= std::max(r.lo.x, span.lo.x)) {
        continue;
      }
      const Coord y = span.lo.y;
      if (outward.y > 0 ? r.hi.y <= y : r.lo.y >= y) continue;
      const Coord gap = outward.y > 0 ? r.lo.y - y : y - r.hi.y;
      best = std::min(best, std::max<Coord>(gap, 0));
    } else {
      if (std::min(r.hi.y, span.hi.y) <= std::max(r.lo.y, span.lo.y)) {
        continue;
      }
      const Coord x = span.lo.x;
      if (outward.x > 0 ? r.hi.x <= x : r.lo.x >= x) continue;
      const Coord gap = outward.x > 0 ? r.lo.x - x : x - r.hi.x;
      best = std::min(best, std::max<Coord>(gap, 0));
    }
  }
  return best;
}

}  // namespace opckit::opc
