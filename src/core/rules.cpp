#include "core/rules.h"

#include <algorithm>
#include <limits>

#include "core/fragment.h"
#include "core/neighborhood.h"
#include "geometry/region.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Coord;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;

Coord RuleDeck::lookup_bias(Coord space) const {
  for (const auto& r : bias_rules) {
    if (space >= r.space_min && space < r.space_max) return r.bias;
  }
  return 0;
}

RuleDeck default_rule_deck_180() {
  RuleDeck deck;
  // Space-binned per-edge biases fitted to the measured uncorrected
  // proximity curve of the default calibrated process (experiment F1,
  // bench/f1_cd_through_pitch): bias = -(CD_printed - CD_target)/2 at the
  // pitch whose line-to-line space falls in the bin. The curve is deeply
  // non-monotonic through the forbidden-pitch region (space ~420 nm loses
  // >40 nm), which is exactly why a 1D table can only partially correct —
  // the residuals left by this deck are the paper's argument for
  // model-based OPC.
  // Two-pass fit: biases are deficit / (2 * response), where the response
  // (printed-CD change per mask-CD change, ~1.3-1.6 here) was measured by
  // re-running F1 with the first-pass deck — biasing an edge also tightens
  // its space, so the raw deficit over-corrects.
  deck.bias_rules = {
      {0, 240, 0},     // dense (anchor pitch) — calibrated, untouched
      {240, 360, 8},   // semi-dense, entering the forbidden region
      {360, 480, 13},  // forbidden pitch: worst underprint
      {480, 720, 11},  // recovering
      {720, 840, 12},
      {840, 960, 7},   // secondary interference null
      // Isolated (open-ended so "nothing within interaction range" maps
      // into this bin too).
      {960, std::numeric_limits<geom::Coord>::max(), 10},
  };
  // Line-end extension fitted to the measured uncorrected pullback
  // (experiment F2) for 180 nm lines.
  deck.line_end_extension = 40;
  deck.hammer_overhang = 32;
  return deck;
}

RuleOpcResult apply_rule_opc(const std::vector<Polygon>& targets,
                             const RuleDeck& deck) {
  // Merge and normalize inputs once; everything downstream expects clean,
  // disjoint CCW rings (internal edges of abutting drawn rectangles must
  // not be "corrected").
  const std::vector<Polygon> polys = merge_targets(targets);

  RuleOpcResult result;
  const Neighborhood hood(polys, deck.interaction_range);

  std::vector<Polygon> moved;
  moved.reserve(polys.size());
  std::vector<Rect> serif_rects;
  std::vector<Rect> bite_rects;

  for (std::size_t pi = 0; pi < polys.size(); ++pi) {
    const Polygon& poly = polys[pi];
    const std::size_t n = poly.size();

    // One fragment per edge; offset = bias (+ line-end extension).
    std::vector<Fragment> frags;
    frags.reserve(n);
    std::vector<bool> edge_is_line_end(n, false);
    for (std::size_t e = 0; e < n; ++e) {
      Fragment f;
      f.polygon = pi;
      f.edge = e;
      f.t0 = 0;
      f.t1 = poly.edge(e).length();
      const bool line_end =
          deck.enable_line_ends && is_line_end_edge(poly, e, deck.line_end_max);
      edge_is_line_end[e] = line_end;
      if (line_end) {
        f.kind = FragmentKind::kLineEnd;
        f.offset = deck.line_end_extension;
        ++result.line_ends;
      } else if (deck.enable_bias) {
        const Coord space = hood.space_outside(
            poly.edge(e), poly.edge(e).outward_normal());
        f.offset = deck.lookup_bias(space);
        if (f.offset != 0) ++result.biased_edges;
      }
      frags.push_back(f);
    }
    const Polygon corrected = apply_offsets(poly, frags);
    if (corrected.empty()) continue;

    // Decorate corners of the corrected ring. Tip corners (ends of a
    // line-end edge) get hammer-overhang serifs; other convex corners get
    // standard serifs; concave corners get mouse bites.
    if (deck.enable_serifs && corrected.size() == n) {
      for (std::size_t v = 0; v < n; ++v) {
        const Point c = corrected[v];
        const bool tip =
            edge_is_line_end[v] || edge_is_line_end[(v + n - 1) % n];
        if (is_convex_corner(corrected, v)) {
          const Coord s = tip ? deck.hammer_overhang : deck.serif_size;
          if (s > 0) {
            serif_rects.emplace_back(c.x - s / 2, c.y - s / 2, c.x + s / 2,
                                     c.y + s / 2);
            tip ? void(0) : void(++result.serifs);
          }
        } else if (!tip && deck.mousebite_size > 0) {
          const Coord s = deck.mousebite_size;
          bite_rects.emplace_back(c.x - s / 2, c.y - s / 2, c.x + s / 2,
                                  c.y + s / 2);
          ++result.mousebites;
        }
      }
    }
    moved.push_back(corrected);
  }

  Region mask = Region::from_polygons(moved);
  if (!serif_rects.empty()) mask = mask.united(Region::from_rects(serif_rects));
  if (!bite_rects.empty()) mask = mask.subtracted(Region::from_rects(bite_rects));
  result.corrected = mask.polygons();
  return result;
}

}  // namespace opckit::opc
