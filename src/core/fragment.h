/// \file fragment.h
/// Edge fragmentation — the data structure at the heart of OPC.
///
/// Model-based OPC does not move polygons; it moves *fragments*: sub-spans
/// of polygon edges that translate independently along the edge's outward
/// normal. Fragmentation density is the fundamental accuracy/data-volume
/// tradeoff the paper discusses — finer fragments track the proximity
/// signature better but multiply mask figure counts (ablation A1).
///
/// Corner-adjacent and line-end fragments are classified so correction
/// policies (serifs, hammerheads, specialized feedback) can target them.
#pragma once

#include <span>
#include <vector>

#include "geometry/polygon.h"

namespace opckit::opc {

/// Role of a fragment on its polygon.
enum class FragmentKind {
  kRun,        ///< interior of a long edge
  kCorner,     ///< adjacent to a corner (convex or concave)
  kLineEnd,    ///< an entire short edge forming a line end/tip
};

/// A movable sub-span of one polygon edge.
struct Fragment {
  std::size_t polygon = 0;   ///< index into the fragmented polygon set
  std::size_t edge = 0;      ///< edge index within the polygon
  geom::Coord t0 = 0;        ///< span start along the edge (DB units)
  geom::Coord t1 = 0;        ///< span end along the edge
  FragmentKind kind = FragmentKind::kRun;
  geom::Coord offset = 0;    ///< displacement along the outward normal
  bool locked = false;       ///< excluded from correction

  geom::Coord length() const { return t1 - t0; }
};

/// Fragmentation policy.
struct FragmentationSpec {
  geom::Coord target_length = 120;  ///< nominal fragment length (nm)
  geom::Coord corner_length = 60;   ///< length of corner-adjacent fragments
  geom::Coord min_length = 24;      ///< never split below this; an edge
                                    ///< shorter than min_length is still
                                    ///< covered by one whole-edge fragment
  geom::Coord line_end_max = 360;   ///< edges up to this length bounded by
                                    ///< two convex corners are treated as
                                    ///< line ends (single fragment)
};

/// Merge a raw target polygon set into clean, disjoint CCW rings: abutting
/// and overlapping shapes are unioned so that internal (shared) edges
/// disappear. Every OPC entry point does this first — correcting a drawn
/// rectangle edge that is interior to the merged feature is meaningless
/// and destabilizes the feedback loop. Throws if the merge produces holes
/// (donut targets are out of scope for the correction engines).
std::vector<geom::Polygon> merge_targets(
    const std::vector<geom::Polygon>& targets);

/// True if the corner at vertex \p i of a CCW ring is convex (left turn).
bool is_convex_corner(const geom::Polygon& poly, std::size_t i);

/// True if edge \p e is a "line end": bounded by two convex corners and no
/// longer than \p max_len (the tip of a line or stub).
bool is_line_end_edge(const geom::Polygon& poly, std::size_t e,
                      geom::Coord max_len);

/// Fragment one polygon. The polygon must be a normalized (CCW, Manhattan)
/// ring; every edge is covered exactly by its fragments (no gaps or
/// overlaps). \p polygon_index is recorded in each fragment.
std::vector<Fragment> fragment_polygon(const geom::Polygon& poly,
                                       const FragmentationSpec& spec,
                                       std::size_t polygon_index = 0);

/// Fragment a polygon set.
std::vector<Fragment> fragment_polygons(
    const std::vector<geom::Polygon>& polys, const FragmentationSpec& spec);

/// Metrology site of a fragment: the midpoint of its span on the ORIGINAL
/// (uncorrected) edge — EPE is always measured against design intent.
geom::Point eval_point(const geom::Polygon& poly, const Fragment& frag);

/// Outward normal of the fragment's edge (unit Manhattan vector).
geom::Point outward_normal(const geom::Polygon& poly, const Fragment& frag);

/// Rebuild the corrected polygon from fragment offsets. Fragments must be
/// exactly the output of fragment_polygon for \p poly (same order).
/// Consecutive fragments with different offsets are joined by jogs;
/// corners are re-intersected from the two shifted edge lines. The caller
/// is responsible for keeping offsets small enough that the ring stays
/// simple (the OPC loop clamps moves).
geom::Polygon apply_offsets(const geom::Polygon& poly,
                            std::span<const Fragment> frags);

/// Apply offsets for a whole polygon set (fragments from
/// fragment_polygons, any order; grouped internally by polygon index).
std::vector<geom::Polygon> apply_offsets(
    const std::vector<geom::Polygon>& polys,
    std::span<const Fragment> frags);

}  // namespace opckit::opc
