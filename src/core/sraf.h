/// \file sraf.h
/// Sub-resolution assist feature (scattering bar) insertion.
///
/// Isolated edges image with poor depth of focus because they lack the
/// dense-pitch diffraction environment. Scattering bars — narrow lines
/// placed just off the edge, below the resolution limit so they never
/// print — synthesize that environment. Insertion is rule-based (the
/// production practice of the era): bars are offered wherever the facing
/// space allows, then trimmed against spacing constraints (MRC).
#pragma once

#include <vector>

#include "geometry/polygon.h"

namespace opckit::opc {

/// Scatter-bar insertion rules.
struct SrafSpec {
  geom::Coord bar_width = 80;        ///< below resolution for the process
  geom::Coord bar_distance = 280;    ///< edge-to-bar-center distance
  geom::Coord bar_pitch = 240;       ///< spacing between multiple bars
  int max_bars = 2;                  ///< bars per qualifying edge
  geom::Coord min_edge_length = 600; ///< only assist long edges
  geom::Coord end_pullin = 80;       ///< bar shortened at each end
  geom::Coord min_space_to_geometry = 120;  ///< MRC clearance
  geom::Coord min_bar_length = 200;  ///< drop slivers after trimming
  geom::Coord interaction_range = 1400;
};

/// SRAF insertion output.
struct SrafResult {
  std::vector<geom::Polygon> bars;  ///< final (post-MRC) assist shapes
  std::size_t offered = 0;          ///< candidate bars before trimming
  std::size_t kept = 0;             ///< bars surviving MRC
};

/// Insert scatter bars around \p mask_polys (typically the post-OPC main
/// features). Bars never overlap geometry closer than
/// min_space_to_geometry; bars that would, are trimmed or dropped.
SrafResult insert_srafs(const std::vector<geom::Polygon>& mask_polys,
                        const SrafSpec& spec);

}  // namespace opckit::opc
