#include "core/orc.h"

#include <cmath>

#include "geometry/region.h"
#include "litho/metrology.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;

std::size_t OrcReport::count(OrcViolationKind kind) const {
  std::size_t n = 0;
  for (const auto& v : violations) n += v.kind == kind;
  return n;
}

namespace {

/// Representative points of a region's significant connected components.
/// Morphological opening/closing residues include thin fillets along the
/// curvature of every printed corner — contour artifacts, not violations.
/// A real pinch/bridge channel of limit w carries on the order of w²
/// of residue area; components below min_area are dropped.
std::vector<Point> marker_points(const Region& r, geom::Coord min_area,
                                 std::size_t cap = 64) {
  std::vector<Point> out;
  for (const geom::Polygon& comp : r.polygons()) {
    if (!comp.is_ccw()) continue;  // holes of residue blobs
    if (comp.area() < min_area) continue;
    out.push_back(comp.bbox().center());
    if (out.size() >= cap) break;
  }
  return out;
}

}  // namespace

OrcReport run_orc(const std::vector<Polygon>& targets,
                  const std::vector<Polygon>& mask,
                  const std::vector<Polygon>& srafs,
                  const litho::SimSpec& spec_sim, const Rect& window,
                  const OrcSpec& spec) {
  OrcReport report;

  const std::vector<Polygon> norm_targets = merge_targets(targets);
  const std::vector<Fragment> sites =
      fragment_polygons(norm_targets, spec.sampling);

  // Full mask = main features + assists.
  std::vector<Polygon> full_mask = mask;
  full_mask.insert(full_mask.end(), srafs.begin(), srafs.end());
  const Region sraf_region = Region::from_polygons(srafs);
  const Region target_region = Region::from_polygons(norm_targets);

  const litho::Simulator sim(spec_sim, window);

  std::vector<std::pair<double, double>> conditions{{0.0, 1.0}};
  conditions.insert(conditions.end(), spec.corners.begin(),
                    spec.corners.end());

  for (std::size_t ci = 0; ci < conditions.size(); ++ci) {
    const auto [defocus, dose] = conditions[ci];
    const bool nominal = ci == 0;
    const litho::Image lat = sim.latent(full_mask, defocus);
    const double thr = sim.threshold(dose);

    // EPE at every sample site.
    for (const Fragment& f : sites) {
      const Polygon& poly = norm_targets[f.polygon];
      const Point site = eval_point(poly, f);
      if (!window.contains(site)) continue;
      if (nominal) ++report.sites;
      const double epe = litho::edge_placement_error(
          lat, site, outward_normal(poly, f), spec.probe_range_nm, thr);
      if (std::isnan(epe)) {
        report.violations.push_back(
            {OrcViolationKind::kLostEdge, site, 0.0, defocus, dose});
        continue;
      }
      if (nominal) report.epe_stats.add(epe);
      const double limit = f.kind == FragmentKind::kCorner
                               ? spec.corner_epe_spec_nm
                               : spec.epe_spec_nm;
      if (std::abs(epe) > limit) {
        report.violations.push_back(
            {OrcViolationKind::kEpe, site, std::abs(epe), defocus, dose});
      }
    }

    // Pinch: printed area that disappears under opening — thinner than
    // pinch_width somewhere. Bridge: printed space that disappears under
    // closing — two features closer than bridge_space. Both restricted to
    // the neighbourhood of the targets to ignore window-boundary noise.
    const Region printed = sim.printed(lat, dose);
    const Region pinch =
        printed.subtracted(printed.opened(spec.pinch_width_nm / 2));
    const geom::Coord pinch_area =
        spec.pinch_width_nm * spec.pinch_width_nm / 3;
    for (const Point& p : marker_points(pinch, pinch_area)) {
      report.violations.push_back(
          {OrcViolationKind::kPinch, p, 0.0, defocus, dose});
    }
    const Region bridge =
        printed.closed(spec.bridge_space_nm / 2).subtracted(printed);
    const geom::Coord bridge_area =
        spec.bridge_space_nm * spec.bridge_space_nm / 3;
    for (const Point& p : marker_points(bridge, bridge_area)) {
      report.violations.push_back(
          {OrcViolationKind::kBridge, p, 0.0, defocus, dose});
    }

    // SRAF printing: printed resist on top of an assist, away from any
    // target feature.
    if (!sraf_region.empty()) {
      const Region printing_srafs =
          printed.intersected(sraf_region)
              .subtracted(target_region.inflated(60));
      for (const Point& p : marker_points(printing_srafs, 32 * 32)) {
        report.violations.push_back(
            {OrcViolationKind::kSrafPrint, p, 0.0, defocus, dose});
      }
    }
  }
  return report;
}

}  // namespace opckit::opc
