#include "core/sraf.h"

#include <algorithm>

#include "core/neighborhood.h"
#include "geometry/region.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Coord;
using geom::Edge;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;

SrafResult insert_srafs(const std::vector<Polygon>& mask_polys,
                        const SrafSpec& spec) {
  OPCKIT_CHECK(spec.bar_width > 0 && spec.max_bars >= 1);
  OPCKIT_CHECK(spec.bar_distance > spec.bar_width / 2);

  std::vector<Polygon> polys;
  polys.reserve(mask_polys.size());
  for (const auto& p : mask_polys) {
    Polygon n = p.normalized();
    if (!n.empty()) polys.push_back(std::move(n));
  }

  SrafResult result;
  const Neighborhood hood(polys, spec.interaction_range);
  std::vector<Rect> candidates;

  for (const Polygon& poly : polys) {
    for (std::size_t e = 0; e < poly.size(); ++e) {
      const Edge edge = poly.edge(e);
      if (edge.length() < spec.min_edge_length) continue;
      const Point n = edge.outward_normal();
      const Coord space = hood.space_outside(edge, n);

      for (int b = 0; b < spec.max_bars; ++b) {
        // Center-line distance of bar b from the edge.
        const Coord d = spec.bar_distance + static_cast<Coord>(b) * spec.bar_pitch;
        // The bar must fit: far side of the bar + clearance to whatever
        // faces the edge.
        const Coord needed =
            d + spec.bar_width / 2 + spec.min_space_to_geometry;
        if (space < needed) break;

        const Rect span = edge.bbox();
        Rect bar;
        if (edge.is_horizontal()) {
          const Coord y = span.lo.y + n.y * d;
          bar = Rect(span.lo.x + spec.end_pullin, y - spec.bar_width / 2,
                     span.hi.x - spec.end_pullin, y + spec.bar_width / 2);
        } else {
          const Coord x = span.lo.x + n.x * d;
          bar = Rect(x - spec.bar_width / 2, span.lo.y + spec.end_pullin,
                     x + spec.bar_width / 2, span.hi.y - spec.end_pullin);
        }
        if (bar.is_empty()) continue;
        ++result.offered;
        candidates.push_back(bar);
      }
    }
  }

  if (candidates.empty()) return result;

  // MRC: carve away everything within min_space_to_geometry of real
  // geometry (handles bars offered from two facing edges of a space, and
  // bars crossing unseen corners), then drop slivers.
  const Region keepout =
      Region::from_polygons(polys).inflated(spec.min_space_to_geometry);
  const Region bars =
      Region::from_rects(candidates).subtracted(keepout);
  for (const Polygon& bar : bars.polygons()) {
    const Rect box = bar.bbox();
    if (std::max(box.width(), box.height()) < spec.min_bar_length) continue;
    if (std::min(box.width(), box.height()) < spec.bar_width / 2) continue;
    result.bars.push_back(bar);
    ++result.kept;
  }
  return result;
}

}  // namespace opckit::opc
