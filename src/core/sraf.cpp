#include "core/sraf.h"

#include <algorithm>

#include "core/neighborhood.h"
#include "geometry/region.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Coord;
using geom::Edge;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;

SrafResult insert_srafs(const std::vector<Polygon>& mask_polys,
                        const SrafSpec& spec) {
  OPCKIT_CHECK(spec.bar_width > 0 && spec.max_bars >= 1);
  // Split the bar width across its center line exactly: integer division
  // alone drew odd widths one unit thin and under-counted the clearance
  // by the same half unit. The odd unit goes to the far side (away from
  // the assisted edge), so the near-face distance keeps the historical
  // bar_distance - bar_width/2 value for even widths.
  const Coord half_near = spec.bar_width / 2;
  const Coord half_far = spec.bar_width - half_near;
  OPCKIT_CHECK(spec.bar_distance > half_near);

  std::vector<Polygon> polys;
  polys.reserve(mask_polys.size());
  for (const auto& p : mask_polys) {
    Polygon n = p.normalized();
    if (!n.empty()) polys.push_back(std::move(n));
  }

  SrafResult result;
  const Neighborhood hood(polys, spec.interaction_range);
  std::vector<Rect> candidates;

  for (const Polygon& poly : polys) {
    for (std::size_t e = 0; e < poly.size(); ++e) {
      const Edge edge = poly.edge(e);
      if (edge.length() < spec.min_edge_length) continue;
      const Point n = edge.outward_normal();
      const Coord space = hood.space_outside(edge, n);

      for (int b = 0; b < spec.max_bars; ++b) {
        // Center-line distance of bar b from the edge.
        const Coord d = spec.bar_distance + static_cast<Coord>(b) * spec.bar_pitch;
        // The bar must fit: far side of the bar + clearance to whatever
        // faces the edge.
        const Coord needed = d + half_far + spec.min_space_to_geometry;
        if (space < needed) break;

        const Rect span = edge.bbox();
        Rect bar;
        if (edge.is_horizontal()) {
          const Coord y = span.lo.y + n.y * d;
          const Coord y_lo = y - (n.y > 0 ? half_near : half_far);
          bar = Rect(span.lo.x + spec.end_pullin, y_lo,
                     span.hi.x - spec.end_pullin, y_lo + spec.bar_width);
        } else {
          const Coord x = span.lo.x + n.x * d;
          const Coord x_lo = x - (n.x > 0 ? half_near : half_far);
          bar = Rect(x_lo, span.lo.y + spec.end_pullin,
                     x_lo + spec.bar_width, span.hi.y - spec.end_pullin);
        }
        if (bar.is_empty()) continue;
        ++result.offered;
        candidates.push_back(bar);
      }
    }
  }

  if (candidates.empty()) return result;

  // MRC: carve away everything within min_space_to_geometry of real
  // geometry (handles bars offered from two facing edges of a space, and
  // bars crossing unseen corners), then drop slivers.
  const Region keepout =
      Region::from_polygons(polys).inflated(spec.min_space_to_geometry);
  const Region bars =
      Region::from_rects(candidates).subtracted(keepout);
  for (const Polygon& bar : bars.polygons()) {
    const Rect box = bar.bbox();
    if (std::max(box.width(), box.height()) < spec.min_bar_length) continue;
    if (std::min(box.width(), box.height()) < half_near) continue;
    result.bars.push_back(bar);
    ++result.kept;
  }
  return result;
}

}  // namespace opckit::opc
