/// \file deck_io.h
/// Rule-deck serialization.
///
/// Rule OPC decks are flow artifacts: fitted per process, versioned, and
/// shipped to design teams alongside the DRC manual. The format is a
/// line-oriented text file (# comments, key value pairs, one bias rule
/// per line) so decks can be reviewed and diffed like the design-manual
/// tables they encode.
///
/// Example:
///   # opckit rule deck
///   interaction_range 1200
///   line_end_max 360
///   line_end_extension 40
///   hammer_overhang 32
///   serif_size 32
///   mousebite_size 24
///   bias 0 240 0
///   bias 240 360 8
///   bias 960 * 10        # '*' = open-ended upper bound
#pragma once

#include <iosfwd>
#include <string>

#include "core/rules.h"

namespace opckit::opc {

/// Serialize a deck (deterministic; round-trips read_rule_deck).
void write_rule_deck(const RuleDeck& deck, std::ostream& os);

/// Serialize to a file. Throws util::InputError on I/O failure.
void write_rule_deck_file(const RuleDeck& deck, const std::string& path);

/// Parse a deck. Unknown keys are an error (decks are contracts).
/// Feature toggles default to enabled. Throws util::InputError on
/// malformed content.
RuleDeck read_rule_deck(std::istream& is);

/// Parse from a file.
RuleDeck read_rule_deck_file(const std::string& path);

}  // namespace opckit::opc
