#include "core/flow_codec.h"

#include <bit>
#include <string>

#include "util/check.h"

namespace opckit::opc {
namespace {

// Version 2 appends the pattern-library knobs (library_path,
// library_budget) after the MRC action — both reach flow_fingerprint(),
// so a spec that crosses the wire must round-trip them.
// Version 3 appends the correction-engine selection and the pixel-ILT
// knobs (engine, ilt_escalation_epe_nm, the IltSpec) after the library
// budget — all fingerprint-mixed, so same rule.
constexpr std::uint16_t kCodecVersion = 3;
/// A deck entry name is a short rule label; anything huge is corruption.
constexpr std::uint32_t kMaxNameBytes = 4096;
constexpr std::uint32_t kMaxDeckChecks = 100000;

// ---- little-endian primitives (the store's byte discipline) -----------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_d(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

[[noreturn]] void malformed(const std::string& what) {
  throw util::InputError("flow spec codec: " + what);
}

/// Bounds-checked cursor; every accessor throws instead of reading past
/// the end, so a corrupt length can never drive an out-of-range access.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() {
    need(1, "byte");
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2, "u16");
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(data_[pos_ + static_cast<std::size_t>(
                                                         i)])
                  << (8 * i));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double d() { return std::bit_cast<double>(u64()); }

  int i32() {
    const std::int64_t v = i64();
    if (v < INT32_MIN || v > INT32_MAX) malformed("int field out of range");
    return static_cast<int>(v);
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxNameBytes) malformed("string length exceeds the limit");
    need(n, "string body");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Range-checked enum decode: values in [0, count) only.
  template <typename E>
  E enum8(std::uint8_t count, const char* what) {
    const std::uint8_t v = u8();
    if (v >= count) malformed(std::string("bad ") + what + " enum value");
    return static_cast<E>(v);
  }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) malformed("bad boolean value");
    return v == 1;
  }

 private:
  void need(std::size_t n, const char* what) {
    if (remaining() < n)
      malformed(std::string("truncated buffer reading ") + what);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_flow_spec(const FlowSpec& spec) {
  std::vector<std::uint8_t> out;
  put_u16(out, kCodecVersion);

  const ModelOpcSpec& o = spec.opc;
  put_i64(out, o.fragmentation.target_length);
  put_i64(out, o.fragmentation.corner_length);
  put_i64(out, o.fragmentation.min_length);
  put_i64(out, o.fragmentation.line_end_max);
  put_i64(out, o.max_iterations);
  put_d(out, o.gain);
  put_i64(out, o.max_move_per_iter);
  put_i64(out, o.max_total_offset);
  put_d(out, o.epe_tolerance_nm);
  put_d(out, o.probe_range_nm);
  put_i64(out, o.grid_nm);
  put_i64(out, o.min_mask_space_nm);
  put_i64(out, o.min_tip_gap_nm);
  put_d(out, o.corner_gain_scale);
  put_i64(out, o.corner_max_offset);

  const litho::SimSpec& s = spec.sim;
  put_d(out, s.optics.wavelength_nm);
  put_d(out, s.optics.na);
  out.push_back(static_cast<std::uint8_t>(s.optics.source.shape));
  put_d(out, s.optics.source.sigma_outer);
  put_d(out, s.optics.source.sigma_inner);
  put_d(out, s.optics.source.pole_center);
  put_d(out, s.optics.source.pole_radius);
  put_i64(out, s.optics.source.grid);
  put_d(out, s.optics.aberrations.coma_x_nm);
  put_d(out, s.optics.aberrations.coma_y_nm);
  put_d(out, s.optics.aberrations.astig_nm);
  out.push_back(static_cast<std::uint8_t>(s.mask.type));
  put_d(out, s.mask.background_transmission);
  put_d(out, s.resist.threshold);
  put_d(out, s.resist.diffusion_nm);
  put_d(out, s.pixel_nm);
  put_i64(out, s.guard_nm);
  out.push_back(static_cast<std::uint8_t>(s.imaging));
  put_d(out, s.socs_epsilon);

  put_i64(out, spec.halo_nm);
  put_u16(out, spec.input_layer.layer);
  put_u16(out, spec.input_layer.datatype);
  put_u16(out, spec.output_layer.layer);
  put_u16(out, spec.output_layer.datatype);
  put_i64(out, spec.flat_context_passes);
  out.push_back(spec.preflight ? 1 : 0);
  put_i64(out, spec.jobs);
  out.push_back(spec.cache ? 1 : 0);
  out.push_back(spec.cache_symmetry ? 1 : 0);

  put_u32(out, static_cast<std::uint32_t>(spec.mrc_deck.size()));
  for (const mrc::Check& c : spec.mrc_deck) {
    out.push_back(static_cast<std::uint8_t>(c.kind));
    put_i64(out, c.value);
    put_u32(out, static_cast<std::uint32_t>(c.name.size()));
    out.insert(out.end(), c.name.begin(), c.name.end());
  }
  out.push_back(static_cast<std::uint8_t>(spec.mrc_action));

  put_u32(out, static_cast<std::uint32_t>(spec.library_path.size()));
  out.insert(out.end(), spec.library_path.begin(), spec.library_path.end());
  put_d(out, spec.library_budget);

  out.push_back(static_cast<std::uint8_t>(spec.engine));
  put_d(out, spec.ilt_escalation_epe_nm);
  const ilt::IltSpec& il = spec.ilt;
  put_i64(out, il.max_iterations);
  put_d(out, il.step);
  put_d(out, il.sigmoid_steepness);
  put_d(out, il.edge_weight);
  put_d(out, il.edge_band_nm);
  put_d(out, il.convergence_tol);
  put_d(out, il.mask_threshold);
  put_i64(out, il.min_width_nm);
  put_i64(out, il.min_space_nm);
  put_i64(out, il.min_corner_nm);
  put_d(out, il.min_area_nm2);
  return out;
}

FlowSpec decode_flow_spec(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  const std::uint16_t version = r.u16();
  if (version != kCodecVersion)
    malformed("spec version " + std::to_string(version) +
              "; this build reads version " + std::to_string(kCodecVersion));

  FlowSpec spec;
  ModelOpcSpec& o = spec.opc;
  o.fragmentation.target_length = r.i64();
  o.fragmentation.corner_length = r.i64();
  o.fragmentation.min_length = r.i64();
  o.fragmentation.line_end_max = r.i64();
  o.max_iterations = r.i32();
  o.gain = r.d();
  o.max_move_per_iter = r.i64();
  o.max_total_offset = r.i64();
  o.epe_tolerance_nm = r.d();
  o.probe_range_nm = r.d();
  o.grid_nm = r.i64();
  o.min_mask_space_nm = r.i64();
  o.min_tip_gap_nm = r.i64();
  o.corner_gain_scale = r.d();
  o.corner_max_offset = r.i64();

  litho::SimSpec& s = spec.sim;
  s.optics.wavelength_nm = r.d();
  s.optics.na = r.d();
  s.optics.source.shape = r.enum8<litho::SourceShape>(4, "source shape");
  s.optics.source.sigma_outer = r.d();
  s.optics.source.sigma_inner = r.d();
  s.optics.source.pole_center = r.d();
  s.optics.source.pole_radius = r.d();
  s.optics.source.grid = r.i32();
  s.optics.aberrations.coma_x_nm = r.d();
  s.optics.aberrations.coma_y_nm = r.d();
  s.optics.aberrations.astig_nm = r.d();
  s.mask.type = r.enum8<litho::MaskType>(2, "mask type");
  s.mask.background_transmission = r.d();
  s.resist.threshold = r.d();
  s.resist.diffusion_nm = r.d();
  s.pixel_nm = r.d();
  s.guard_nm = r.i64();
  s.imaging = r.enum8<litho::ImagingMode>(2, "imaging mode");
  s.socs_epsilon = r.d();

  spec.halo_nm = r.i64();
  spec.input_layer.layer = r.u16();
  spec.input_layer.datatype = r.u16();
  spec.output_layer.layer = r.u16();
  spec.output_layer.datatype = r.u16();
  spec.flat_context_passes = r.i32();
  spec.preflight = r.boolean();
  spec.jobs = r.i32();
  spec.cache = r.boolean();
  spec.cache_symmetry = r.boolean();

  const std::uint32_t n_checks = r.u32();
  if (n_checks > kMaxDeckChecks) malformed("MRC deck count exceeds the limit");
  // Each check costs at least kind + value + name length = 13 bytes;
  // pre-check so a corrupt count cannot allocate unboundedly.
  if (r.remaining() < static_cast<std::uint64_t>(n_checks) * 13)
    malformed("truncated MRC deck");
  spec.mrc_deck.reserve(n_checks);
  for (std::uint32_t i = 0; i < n_checks; ++i) {
    mrc::Check c;
    c.kind = r.enum8<mrc::CheckKind>(7, "MRC check kind");
    c.value = r.i64();
    c.name = r.str();
    spec.mrc_deck.push_back(std::move(c));
  }
  spec.mrc_action = r.enum8<mrc::Action>(2, "MRC action");

  spec.library_path = r.str();
  spec.library_budget = r.d();
  if (!(spec.library_budget >= 0.0))
    malformed("negative or NaN library budget");

  spec.engine = r.enum8<CorrectionEngine>(3, "correction engine");
  spec.ilt_escalation_epe_nm = r.d();
  if (!(spec.ilt_escalation_epe_nm >= 0.0))
    malformed("negative or NaN ILT escalation threshold");
  ilt::IltSpec& il = spec.ilt;
  il.max_iterations = r.i32();
  il.step = r.d();
  il.sigmoid_steepness = r.d();
  il.edge_weight = r.d();
  il.edge_band_nm = r.d();
  il.convergence_tol = r.d();
  il.mask_threshold = r.d();
  il.min_width_nm = r.i64();
  il.min_space_nm = r.i64();
  il.min_corner_nm = r.i64();
  il.min_area_nm2 = r.d();
  if (il.max_iterations < 1 || !(il.step > 0.0) ||
      !(il.sigmoid_steepness > 0.0) || !(il.edge_weight >= 0.0) ||
      !(il.edge_band_nm >= 0.0) || !(il.convergence_tol >= 0.0) ||
      !(il.mask_threshold > 0.0 && il.mask_threshold < 1.0) ||
      il.min_width_nm <= 0 || il.min_space_nm <= 0 ||
      il.min_corner_nm <= 0 || !(il.min_area_nm2 >= 0.0))
    malformed("invalid pixel-ILT knobs");

  if (r.remaining() != 0)
    malformed(std::to_string(r.remaining()) +
              " trailing bytes after a well-formed spec");
  return spec;
}

}  // namespace opckit::opc
