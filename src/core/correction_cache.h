/// \file correction_cache.h
/// Pattern-keyed reuse of fragment-move solutions across correction
/// windows.
///
/// Full-chip layouts repeat themselves: the same cell placed thousands of
/// times, the same routing motif stamped across a block. Model-based OPC
/// is a pure function of the correction window's geometry (targets +
/// optical context) — so when two windows are geometrically identical,
/// re-simulating the second is pure waste. The cache canonicalizes each
/// window with the pattern-catalog machinery (`pat::canonicalize_oriented`,
/// the D4 canonical form) and replays the stored fragment-move solution
/// through the frame change instead. This is the reuse idea the
/// pattern-reuse OPC literature (AdaOPC and descendants) exploits,
/// restricted here to *exact* geometric matches so replayed solutions are
/// indistinguishable from recomputed ones.
///
/// Match policy (per lookup):
///  * **hit** — window and ownership geometry identical to a stored entry
///    up to pure translation. The replayed solution is byte-identical to a
///    fresh solve: integer-nm translation shifts the raster frame without
///    changing any sampled value (all arithmetic stays exact in doubles).
///  * **symmetry hit** (opt-in, `Policy::allow_symmetry`) — identical up
///    to a non-trivial D4 element. Physically exact only for rotationally
///    symmetric illumination (circular/annular, not dipole), and the FFT's
///    summation order differs between frames, so replay may differ from a
///    fresh solve by float round-off below the mask grid. Off by default.
///  * **conflict** — the canonical hash matches a stored entry but the
///    geometry differs (hash collision), or the optical window matches
///    while the target/context ownership split does not. Counted, then
///    solved fresh: correctness is never traded for a hit.
///  * **miss** — no entry with this canonical hash; solved fresh and
///    stored.
///
/// Threading contract: the cache is NOT internally synchronized. The flow
/// driver resolves all lookups in a single serial, placement-ordered phase
/// between the parallel gather and solve phases (see flow.cpp), which both
/// avoids locking and makes the representative choice — hence the output
/// — independent of thread count.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "geometry/geometry.h"
#include "pattern/canonical.h"
#include "store/result_store.h"

namespace opckit::opc {

/// How one window resolved against the cache.
enum class CacheOutcome { kMiss, kHit, kSymmetryHit, kConflict };

/// Printable name ("miss", "hit", "symmetry-hit", "conflict").
const char* to_string(CacheOutcome outcome);

/// Lookup accounting (one increment per resolve()).
struct CorrectionCacheStats {
  std::size_t hits = 0;           ///< translation-exact reuses
  std::size_t symmetry_hits = 0;  ///< D4 reuses (only when allowed)
  std::size_t misses = 0;         ///< first sighting of a window class
  std::size_t conflicts = 0;      ///< collisions / ownership mismatches

  std::size_t total() const {
    return hits + symmetry_hits + misses + conflicts;
  }
};

/// A cache of solved correction windows keyed by canonical geometry.
class CorrectionCache {
 public:
  /// Reuse policy knobs.
  struct Policy {
    /// Allow reuse across non-trivial D4 frame changes. Leave off for
    /// byte-exact replay or under orientation-selective (dipole) sources.
    bool allow_symmetry = false;
  };

  /// The cache identity of one correction window. Built once per tile in
  /// the parallel gather phase (make_key is pure and thread-safe).
  struct Key {
    pat::CanonicalPattern window;            ///< canonical full-window form
    std::vector<geom::Rect> own_canonical;   ///< own targets, canonical frame
    geom::Rect frame = geom::Rect::empty();  ///< simulation frame, canonical
    geom::Orientation orientation =          ///< local -> canonical witness
        geom::Orientation::kR0;
    geom::Point anchor;  ///< local-frame origin: window bbox center (layout coords)
  };

  CorrectionCache() = default;
  explicit CorrectionCache(Policy policy) : policy_(policy) {}

  /// Build the key for a window: \p targets is the full simulation input
  /// (own shapes + optical context) in layout coordinates, \p own_region
  /// the area belonging to this tile (whose corrections the tile keeps),
  /// and \p frame the simulation frame passed to run_model_opc (the
  /// raster grid hangs off it, so it is part of cache identity). The
  /// local-frame anchor is derived internally (window bbox center, so D4
  /// matching orients about the window center).
  static Key make_key(const std::vector<geom::Polygon>& targets,
                      const geom::Region& own_region,
                      const geom::Rect& frame);

  /// Result of resolve(): the outcome plus the entry to reuse (for hits)
  /// or to store into after solving (for misses/conflicts).
  struct Resolution {
    CacheOutcome outcome = CacheOutcome::kMiss;
    std::size_t entry = 0;
  };

  /// Resolve a key: either find a reusable entry or reserve a fresh one.
  /// Serial-phase only (not thread-safe). A hit may point at an entry
  /// whose solution is not stored yet — the driver guarantees the
  /// representative (earlier in placement order) stores before any
  /// replay fetches.
  Resolution resolve(const Key& key);

  /// Store the solved correction for a reserved entry: \p corrected are
  /// the tile's own corrected polygons in layout coordinates; they are
  /// re-expressed in the canonical frame via \p key. Serial-phase only.
  void store(std::size_t entry, const Key& key,
             const std::vector<geom::Polygon>& corrected);

  /// Replay a stored solution into \p key's frame (layout coordinates).
  /// For translation hits this is an exact integer translation of the
  /// representative's polygons, vertex for vertex.
  std::vector<geom::Polygon> fetch(std::size_t entry, const Key& key) const;

  const CorrectionCacheStats& stats() const { return stats_; }
  /// Number of distinct window classes seen (solved or reserved).
  std::size_t size() const { return entries_.size(); }

  /// Export a *solved* entry as a persistable record (canonical-frame
  /// geometry and solution, verbatim). The record carries no layout
  /// coordinates, so it replays into any placement of the class.
  store::TileRecord export_entry(std::size_t entry) const;

  /// Import a persisted record as a solved entry, recomputing the
  /// canonical hash from its window rects (`pat::hash_rects`) — a stored
  /// hash is never trusted. Returns the new entry index. Imported entries
  /// participate in resolve() exactly like in-run representatives: a tile
  /// whose key matches replays translation-exactly; anything else
  /// (collision, ownership, frame, witness mismatch) stays conflict-safe.
  std::size_t import_entry(const store::TileRecord& record);

  /// The rigid map from \p key's layout frame into its canonical frame
  /// (translate the anchor to the origin, then apply the witness
  /// orientation). Its inverse maps canonical-frame data — stored
  /// solutions, pattern-library warm seeds — back into the layout.
  static geom::Transform canonical_transform(const Key& key);

 private:
  struct Entry {
    std::vector<geom::Rect> window_rects;  ///< canonical window geometry
    std::vector<geom::Rect> own_rects;     ///< canonical ownership split
    geom::Rect frame = geom::Rect::empty();///< canonical simulation frame
    geom::Orientation orientation =        ///< representative's witness
        geom::Orientation::kR0;
    std::vector<geom::Polygon> solution;   ///< corrected own, canonical frame
    bool solved = false;
  };

  /// Append a fresh entry for \p key and return its index.
  std::size_t reserve(const Key& key);

  Policy policy_;
  CorrectionCacheStats stats_;
  std::vector<Entry> entries_;
  /// hash -> entry indices in insertion order (deterministic scan).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash_;
};

}  // namespace opckit::opc
