#include "core/flow.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "lint/lint.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Polygon;
using geom::Rect;
using geom::Transform;
using layout::Cell;
using layout::CellRef;
using layout::Library;

namespace {

/// Static-analysis gate run before any correction: library structure and
/// geometry plus the model-parameter bands. Error findings abort; the
/// message carries the offending codes and the first few findings so the
/// failure is actionable without re-running `opckit lint`.
void preflight_gate(const Library& lib, const FlowSpec& spec) {
  lint::LintOptions options;
  options.grid_nm = spec.opc.grid_nm;
  lint::LintReport report = lint::lint_library(lib, options);
  report.merge(lint::lint_sim_spec(spec.sim, options));
  report.merge(lint::lint_opc_spec(spec.opc, options));
  if (report.clean()) return;

  std::set<std::string> error_codes;
  for (const lint::Diagnostic& d : report.findings()) {
    if (d.severity == lint::Severity::kError) error_codes.insert(d.code);
  }
  std::ostringstream os;
  os << "pre-flight lint found " << report.errors() << " error(s) [";
  bool first = true;
  for (const std::string& code : error_codes) {
    os << (first ? "" : " ") << code;
    first = false;
  }
  os << "]:";
  std::size_t shown = 0;
  for (const lint::Diagnostic& d : report.findings()) {
    if (d.severity != lint::Severity::kError) continue;
    os << (shown == 0 ? " " : "; ") << d.to_line();
    if (++shown == 3) break;
  }
  throw util::InputError(os.str());
}

}  // namespace

FlowStats run_cell_opc(Library& lib, const std::string& top,
                       const FlowSpec& spec) {
  if (spec.preflight) preflight_gate(lib, spec);
  lib.validate();
  FlowStats stats;

  // Distinct reachable cells.
  std::set<std::string> reachable;
  std::vector<std::string> queue{top};
  while (!queue.empty()) {
    const std::string name = queue.back();
    queue.pop_back();
    if (!reachable.insert(name).second) continue;
    for (const auto& ref : lib.at(name).refs()) queue.push_back(ref.child);
  }

  for (const std::string& name : reachable) {
    Cell& cell = lib.cell(name);
    const auto shapes = cell.shapes(spec.input_layer);
    if (shapes.empty()) continue;

    const std::vector<Polygon> targets(shapes.begin(), shapes.end());
    Rect window = cell.local_bbox();
    const ModelOpcResult r =
        run_model_opc(targets, spec.sim, window, spec.opc);
    ++stats.opc_runs;
    stats.simulations += r.history.size();
    stats.all_converged = stats.all_converged && r.converged;

    cell.clear_layer(spec.output_layer);
    for (const auto& p : r.corrected) {
      cell.add_polygon(spec.output_layer, p);
      ++stats.corrected_polygons;
    }
  }
  return stats;
}

FlowStats run_flat_opc(Library& lib, const std::string& top,
                       const FlowSpec& spec) {
  if (spec.preflight) preflight_gate(lib, spec);
  lib.validate();
  FlowStats stats;

  // The imaging frame must cover the whole context halo, or context
  // shapes near the frame edge enter the simulation clipped and the
  // "true context" promise silently degrades.
  FlowSpec eff = spec;
  eff.sim.guard_nm = std::max(spec.sim.guard_nm, spec.halo_nm);

  // Flatten the chip once and index it for context queries.
  const std::vector<Polygon> flat = lib.flatten(top, spec.input_layer);
  if (flat.empty()) return stats;
  Rect chip_box = geom::Rect::empty();
  for (const auto& p : flat) chip_box = chip_box.united(p.bbox());
  geom::TileIndex index(chip_box.inflated(spec.halo_nm + 1), 2048);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    index.insert(i, flat[i].bbox());
  }

  // Enumerate placements (cell instances with shapes on the input layer).
  struct Placement {
    const Cell* cell;
    Transform transform;
  };
  std::vector<Placement> placements;
  // Depth-first expansion mirroring Library::flatten.
  std::vector<std::pair<std::string, Transform>> stack{{top, Transform{}}};
  while (!stack.empty()) {
    auto [name, t] = stack.back();
    stack.pop_back();
    const Cell& cell = lib.at(name);
    if (!cell.shapes(spec.input_layer).empty()) {
      placements.push_back({&cell, t});
    }
    for (const auto& ref : cell.refs()) {
      for (int r = 0; r < ref.rows; ++r) {
        for (int c = 0; c < ref.columns; ++c) {
          stack.emplace_back(ref.child, t * ref.element_transform(c, r));
        }
      }
    }
  }

  // Per-placement drawn geometry, window, and own-area region.
  struct Job {
    std::vector<Polygon> drawn;
    Rect window = geom::Rect::empty();
    geom::Region own_region;
    std::vector<Polygon> corrected;  ///< latest pass output (own only)
  };
  std::vector<Job> jobs;
  jobs.reserve(placements.size());
  for (const Placement& pl : placements) {
    Job job;
    for (const auto& s : pl.cell->shapes(spec.input_layer)) {
      Polygon placed = pl.transform(s);
      job.window = job.window.united(placed.bbox());
      job.drawn.push_back(std::move(placed));
    }
    job.own_region = geom::Region::from_polygons(job.drawn);
    job.corrected = job.drawn;  // pass-0 context = drawn geometry
    jobs.push_back(std::move(job));
  }

  const int passes = std::max(1, spec.flat_context_passes);
  for (int pass = 0; pass < passes; ++pass) {
    // Context pool for this pass: every placement's latest mask state.
    std::vector<Polygon> pool;
    std::vector<geom::Region> pool_owner;  // owner region per polygon
    for (const Job& job : jobs) {
      for (const auto& p : job.corrected) {
        pool.push_back(p);
      }
    }
    geom::TileIndex pool_index(chip_box.inflated(spec.halo_nm + 256), 2048);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool_index.insert(i, pool[i].bbox());
    }

    for (Job& job : jobs) {
      // Targets: own DRAWN shapes (design intent never goes stale), plus
      // the latest corrected neighbours as context.
      std::vector<Polygon> targets = job.drawn;
      for (std::size_t id :
           pool_index.query(job.window.inflated(spec.halo_nm))) {
        const Polygon& cand = pool[id];
        // Skip our own shapes: anything overlapping our drawn area is
        // ours (moves are far smaller than placement spacing).
        if (!job.own_region.intersected(geom::Region(cand.normalized()))
                 .empty()) {
          continue;
        }
        targets.push_back(cand);
      }

      const ModelOpcResult r =
          run_model_opc(targets, eff.sim, job.window, spec.opc);
      ++stats.opc_runs;
      stats.simulations += r.history.size();
      stats.all_converged = stats.all_converged && r.converged;

      job.corrected.clear();
      for (const auto& p : r.corrected) {
        if (!job.own_region.intersected(geom::Region(p)).empty()) {
          job.corrected.push_back(p);
        }
      }
    }
  }

  Cell& out_cell = lib.cell(top);
  out_cell.clear_layer(spec.output_layer);
  for (const Job& job : jobs) {
    for (const auto& p : job.corrected) {
      out_cell.add_polygon(spec.output_layer, p);
      ++stats.corrected_polygons;
    }
  }
  return stats;
}

}  // namespace opckit::opc
