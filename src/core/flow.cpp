#include "core/flow.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "core/correction_cache.h"
#include "lint/lint.h"
#include "pattern/feature.h"
#include "pattern/library.h"
#include "store/result_store.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace opckit::opc {

using geom::Polygon;
using geom::Rect;
using geom::Transform;
using layout::Cell;
using layout::CellRef;
using layout::Library;

namespace {

/// Static-analysis gate run before any correction: library structure and
/// geometry plus the model-parameter bands. Error findings abort; the
/// message carries the offending codes and the first few findings so the
/// failure is actionable without re-running `opckit lint`.
void preflight_gate(const Library& lib, const FlowSpec& spec) {
  lint::LintOptions options;
  options.grid_nm = spec.opc.grid_nm;
  lint::LintReport report = lint::lint_library(lib, options);
  report.merge(lint::lint_sim_spec(spec.sim, options));
  report.merge(lint::lint_opc_spec(spec.opc, options));
  if (report.clean()) return;

  std::set<std::string> error_codes;
  for (const lint::Diagnostic& d : report.findings()) {
    if (d.severity == lint::Severity::kError) error_codes.insert(d.code);
  }
  std::ostringstream os;
  os << "pre-flight lint found " << report.errors() << " error(s) [";
  bool first = true;
  for (const std::string& code : error_codes) {
    os << (first ? "" : " ") << code;
    first = false;
  }
  os << "]:";
  std::size_t shown = 0;
  for (const lint::Diagnostic& d : report.findings()) {
    if (d.severity != lint::Severity::kError) continue;
    os << (shown == 0 ? " " : "; ") << d.to_line();
    if (++shown == 3) break;
  }
  throw util::InputError(os.str());
}

/// Runs the parallel phases under FlowSpec::jobs: 1 = inline in the
/// calling thread, 0 = the shared global pool, N > 1 = a pool owned by
/// this flow run. Tile bodies may call parallel_for themselves (the Abbe
/// source-point loop does); on a pool worker the nested call runs inline
/// per the ThreadPool protocol, so tiles never deadlock the pool and the
/// per-chunk accumulation order stays deterministic either way.
class TileExecutor {
 public:
  explicit TileExecutor(int jobs) : jobs_(jobs) {
    if (jobs > 1) {
      owned_ = std::make_unique<util::ThreadPool>(
          static_cast<std::size_t>(jobs));
    }
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (owned_) {
      owned_->parallel_for(count, fn);
    } else if (jobs_ == 0) {
      util::global_pool().parallel_for(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  }

 private:
  int jobs_;
  std::unique_ptr<util::ThreadPool> owned_;
};

/// Per-tile phase state: the simulation input assembled by the gather
/// phase, the cache decision from the resolve phase, and the solver
/// output from the solve phase.
struct TileWork {
  std::vector<Polygon> targets;     ///< own shapes + halo context
  CorrectionCache::Key key;         ///< valid when the cache is on
  CorrectionCache::Resolution res;  ///< valid when the cache is on
  bool replay = false;              ///< resolved to a cache replay
  ModelOpcResult result;            ///< valid when !replay
  /// Pattern-library near match: solve fresh but warm-start from these
  /// layout-frame seeds (set in the serial resolve phase, read-only in
  /// the parallel solve phase).
  bool warm = false;
  std::vector<pat::WarmSeed> seeds;
  /// Pixel-ILT engine state (FlowSpec::engine kIlt/kEscalate): whether
  /// this tile's final geometry came from ILT, whether the model solver
  /// ran first and handed it over (kEscalate), and the measured EPE of
  /// the legalized ILT mask (the model solver reports its own; ILT is
  /// measured explicitly so FlowStats compares like with like).
  bool ilt = false;
  bool escalated = false;
  ilt::IltResult ilt_result;
  double ilt_max_epe = 0.0;
  double ilt_rms_epe = 0.0;
};

/// Solve one tile with the configured engine — a pure function of the
/// tile inputs, so the parallel solve phase stays deterministic at any
/// jobs count. kModel: the fragment solver alone. kIlt: pixel ILT on
/// every tile. kEscalate (the adaptive policy): model first, then ILT
/// for tiles whose model solve diverged or left a worst-case EPE above
/// the escalation threshold. ILT tiles measure the EPE of their
/// legalized mask at the model solver's probe sites, so the flow-level
/// EPE stats stay comparable across engines.
void solve_tile_engine(const FlowSpec& spec, const litho::SimSpec& sim,
                       const Rect& window, const WarmStart* warm,
                       TileWork& t) {
  if (spec.engine != CorrectionEngine::kIlt) {
    t.result = run_model_opc(t.targets, sim, window, spec.opc, warm);
    if (spec.engine == CorrectionEngine::kModel) return;
    const bool hard =
        !t.result.converged ||
        (!t.result.history.empty() &&
         t.result.final_iteration().max_abs_epe_nm >
             spec.ilt_escalation_epe_nm);
    if (!hard) return;
    t.escalated = true;
  }
  t.ilt = true;
  t.ilt_result = ilt::run_pixel_ilt(t.targets, sim, window, spec.ilt);
  const auto frags = fragment_polygons(t.targets, spec.opc.fragmentation);
  const std::vector<double> epes =
      measure_fragment_epe(t.targets, frags, t.ilt_result.corrected, sim,
                           window, spec.opc.probe_range_nm);
  double sum_sq = 0.0;
  std::size_t finite = 0;
  for (double e : epes) {
    if (std::isnan(e)) continue;
    t.ilt_max_epe = std::max(t.ilt_max_epe, std::abs(e));
    sum_sq += e * e;
    ++finite;
  }
  t.ilt_rms_epe = finite ? std::sqrt(sum_sq / static_cast<double>(finite))
                         : 0.0;
  // An escalated tile keeps the better of the two answers: ILT on a
  // tight window (few free pixels) can come back worse than the model
  // result that triggered it, and escalation must never regress a tile.
  if (t.escalated && !t.result.history.empty() &&
      t.result.final_iteration().max_abs_epe_nm < t.ilt_max_epe) {
    t.ilt = false;
  }
}

/// The pattern-library side of a flow run: import entries for exact
/// replay, retrieve near matches for warm starts, and accumulate fresh
/// solves (with their seeds) back into the library. Used exclusively
/// from the flow's serial phases, like StoreSession.
class LibrarySession {
 public:
  LibrarySession(const FlowSpec& spec, std::string_view flow_kind,
                 CorrectionCache& cache, FlowStats& stats)
      : budget_(spec.library_budget),
        shared_(spec.library),
        sink_(spec.library_sink) {
    if (spec.library_path.empty() && shared_ == nullptr && !sink_) return;
    if (!spec.cache) {
      throw util::InputError(
          "pattern library: FlowSpec::library_path/library/library_sink "
          "require the correction cache (FlowSpec::cache) — library "
          "entries are cache entries");
    }
    if (!spec.library_path.empty()) {
      lib_.emplace(pat::PatternLibrary::open(
          spec.library_path, flow_fingerprint(spec, flow_kind),
          spec.store_sync));
      import_lo_ = cache.size();
      for (std::size_t i = 0; i < lib_->size(); ++i) {
        cache.import_entry(lib_->record(i).tile);
      }
      import_hi_ = cache.size();
      stats.library_entries_loaded += lib_->load_info().records_loaded;
      stats.library_tail_recovered = lib_->load_info().tail_recovered;
      trace::metrics()
          .counter(trace::metric::kPatLibraryRecordsLoaded)
          .add(lib_->load_info().records_loaded);
    }
  }

  /// Serial resolve phase, once per tile after the cache lookup: account
  /// library replays and attach warm-start seeds to cache misses that
  /// have a near match under the budget.
  void on_resolved(TileWork& t, FlowStats& stats) const {
    if (t.replay) {
      if (t.res.entry >= import_lo_ && t.res.entry < import_hi_) {
        ++stats.library_exact_hits;
        trace::metrics()
            .counter(trace::metric::kPatLibraryExactHits)
            .add();
      }
      return;
    }
    if (budget_ <= 0.0) return;
    const pat::PatternLibrary* src = lib_ ? &*lib_ : shared_;
    if (src == nullptr || src->size() == 0) return;
    const pat::PatternFeature query = pat::feature_of(t.key.window.rects);
    const std::optional<pat::NearMatch> near = src->nearest(query, budget_);
    if (!near) return;
    // The retrieved seeds live in the matched entry's canonical frame;
    // similar patterns canonicalize into nearly aligned frames, so
    // mapping them through THIS tile's canonical transform puts each
    // seed close to the corresponding fragment site. Approximation is
    // fine — seeds are starting points, the convergence test still runs.
    const Transform from_canonical =
        CorrectionCache::canonical_transform(t.key).inverted();
    t.warm = true;
    t.seeds.reserve(src->record(near->index).seeds.size());
    for (const pat::WarmSeed& s : src->record(near->index).seeds) {
      t.seeds.push_back({from_canonical(s.site), s.offset});
    }
    ++stats.library_near_hits;
    trace::metrics().counter(trace::metric::kPatLibraryNearHits).add();
  }

  /// Serial merge phase, once per freshly solved tile (after
  /// cache.store()): persist the solve with its warm-start seeds.
  void on_fresh_solve(const CorrectionCache& cache, const TileWork& t,
                      FlowStats& stats) {
    if (t.warm) {
      stats.library_warm_iterations += t.result.history.size();
      trace::metrics()
          .counter(trace::metric::kPatLibraryWarmIterations)
          .add(t.result.history.size());
    }
    if (!lib_ && !sink_) return;
    pat::LibraryRecord rec;
    rec.tile = cache.export_entry(t.res.entry);
    const Transform to_canonical =
        CorrectionCache::canonical_transform(t.key);
    rec.seeds.reserve(t.result.seeds.size());
    for (const pat::WarmSeed& s : t.result.seeds) {
      rec.seeds.push_back({to_canonical(s.site), s.offset});
    }
    if (lib_ && lib_->insert(rec)) {
      ++stats.library_entries_appended;
      trace::metrics()
          .counter(trace::metric::kPatLibraryRecordsAppended)
          .add();
    }
    if (sink_) sink_(rec);
  }

 private:
  double budget_;
  const pat::PatternLibrary* shared_;
  const std::function<void(const pat::LibraryRecord&)>& sink_;
  std::optional<pat::PatternLibrary> lib_;
  /// Cache entries in [import_lo_, import_hi_) came from the library
  /// file — replays against them are library_exact_hits.
  std::size_t import_lo_ = 0;
  std::size_t import_hi_ = 0;
};

/// Serial resolve phase: placement-ordered lookups make the choice of
/// representative per pattern class a pure function of the layout, and
/// the library's near-match retrievals inherit the same determinism.
void resolve_tiles(CorrectionCache& cache, const LibrarySession& library,
                   std::vector<TileWork>& tiles, FlowStats& stats) {
  for (TileWork& t : tiles) {
    t.res = cache.resolve(t.key);
    t.replay = t.res.outcome == CacheOutcome::kHit ||
               t.res.outcome == CacheOutcome::kSymmetryHit;
    library.on_resolved(t, stats);
  }
}

void finalize_cache_stats(const CorrectionCache& cache, FlowStats& stats) {
  const CorrectionCacheStats& cs = cache.stats();
  stats.cache_hits = cs.hits + cs.symmetry_hits;
  stats.cache_misses = cs.misses;
  stats.cache_conflicts = cs.conflicts;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// RAII guard for one flow phase: a trace span plus accumulation of the
/// phase's wall-clock into its flow.phase.*_ms gauge. Constructed and
/// destroyed on the flow's driver thread only; the parallel work inside
/// traces itself with per-tile spans.
class PhaseScope {
 public:
  PhaseScope(const char* span_name, const char* gauge_name)
      : span_(span_name),
        gauge_name_(gauge_name),
        t0_(std::chrono::steady_clock::now()) {}
  ~PhaseScope() { trace::metrics().gauge(gauge_name_).add(elapsed_ms(t0_)); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  trace::Span span_;
  const char* gauge_name_;
  std::chrono::steady_clock::time_point t0_;
};

/// Fold one freshly solved tile's result into the flow accounting
/// (identical in both flows and in every flat pass).
void account_fresh_solve(const ModelOpcResult& result, FlowStats& stats) {
  ++stats.opc_runs;
  stats.simulations += result.history.size();
  stats.tile_simulations.push_back(result.history.size());
  stats.all_converged = stats.all_converged && result.converged;
  if (!result.history.empty()) {
    const OpcIteration& last = result.final_iteration();
    stats.max_abs_epe_nm = std::max(stats.max_abs_epe_nm, last.max_abs_epe_nm);
    stats.worst_rms_epe_nm =
        std::max(stats.worst_rms_epe_nm, last.rms_epe_nm);
  }
}

/// Fold one freshly ILT-solved tile into the accounting. The tile's
/// simulation budget is the model iterations that preceded an
/// escalation (0 under kIlt) plus the accepted ILT descent steps; the
/// EPE contribution is the measured error of the legalized mask.
void account_ilt_solve(const TileWork& t, FlowStats& stats) {
  ++stats.opc_runs;
  const std::size_t sims =
      (t.escalated ? t.result.history.size() : 0) +
      static_cast<std::size_t>(t.ilt_result.iterations);
  stats.simulations += sims;
  stats.tile_simulations.push_back(sims);
  stats.all_converged = stats.all_converged && t.ilt_result.converged;
  stats.max_abs_epe_nm = std::max(stats.max_abs_epe_nm, t.ilt_max_epe);
  stats.worst_rms_epe_nm = std::max(stats.worst_rms_epe_nm, t.ilt_rms_epe);
  ++stats.ilt_tiles;
  stats.ilt_iterations += static_cast<std::size_t>(t.ilt_result.iterations);
  if (t.escalated) {
    ++stats.ilt_escalated;
    trace::metrics().counter(trace::metric::kIltEscalations).add(1);
  }
}

/// An escalated tile that kept the model answer (solve_tile_engine's
/// never-regress rule) still spent the ILT descent: fold those
/// simulations into the tile's budget and count the escalation attempt
/// — ilt_escalated counts attempts, ilt_tiles counts ILT outputs.
void account_reverted_escalation(const TileWork& t, FlowStats& stats) {
  const auto sims = static_cast<std::size_t>(t.ilt_result.iterations);
  stats.simulations += sims;
  if (!stats.tile_simulations.empty()) stats.tile_simulations.back() += sims;
  ++stats.ilt_escalated;
  trace::metrics().counter(trace::metric::kIltEscalations).add(1);
}

/// End of a flow run: publish the flow-level counters and the per-tile
/// simulation histogram into the process-wide registry, then embed this
/// run's registry delta (which also picked up the litho/cache/store
/// counters incremented along the way) in the stats.
void publish_flow_metrics(const trace::MetricsSnapshot& before,
                          FlowStats& stats) {
  trace::MetricsRegistry& reg = trace::metrics();
  reg.counter(trace::metric::kFlowTilesMerged)
      .add(stats.tile_simulations.size());
  reg.counter(trace::metric::kFlowOpcRuns).add(stats.opc_runs);
  reg.counter(trace::metric::kFlowSimulations).add(stats.simulations);
  reg.counter(trace::metric::kFlowCorrectedPolygons)
      .add(stats.corrected_polygons);
  trace::HistogramMetric& hist =
      reg.histogram(trace::metric::kFlowTileSimulations);
  for (std::size_t n : stats.tile_simulations) {
    hist.observe(static_cast<double>(n));
  }
  stats.metrics = trace::MetricsSnapshot::delta(before, reg.snapshot());
}

/// The store side of a flow run: preload on resume, stream fresh solves
/// from the serial merge phase, and host the fail_after_tiles fault
/// injection (which works with or without a store — a crash is a crash).
/// Constructed and used exclusively from the flow's serial sections, so
/// the TSan contract of the phases is untouched.
class StoreSession {
 public:
  StoreSession(const FlowSpec& spec, std::string_view flow_kind,
               CorrectionCache& cache, FlowStats& stats)
      : fail_after_(spec.fail_after_tiles), sink_(spec.record_sink) {
    // In-memory preload (the daemon's shared library) imports first, so
    // its entries win representative selection over file records — both
    // replay translation-exactly, so the choice cannot change output.
    if (spec.preload) {
      if (!spec.cache) {
        throw util::InputError(
            "correction store: FlowSpec::preload requires the correction "
            "cache (FlowSpec::cache) — preloads are cache entries");
      }
      for (const store::TileRecord& rec : *spec.preload) {
        cache.import_entry(rec);
      }
      stats.store_entries_loaded += spec.preload->size();
    }
    if (!spec.store_path.empty()) {
      if (!spec.cache) {
        throw util::InputError(
            "correction store: store_path requires the correction cache "
            "(FlowSpec::cache) — the store persists cache entries");
      }
      const std::uint64_t fp = flow_fingerprint(spec, flow_kind);
      if (spec.resume && std::filesystem::exists(spec.store_path)) {
        store::LoadResult loaded = store::ResultStore::load(
            spec.store_path, fp);  // throws InputError with the STO line
        for (const store::TileRecord& rec : loaded.records) {
          cache.import_entry(rec);
        }
        stats.store_entries_loaded += loaded.records.size();
        stats.store_tail_recovered = loaded.tail_recovered;
        store_.emplace(store::ResultStore::append_to(
            spec.store_path, loaded.valid_bytes, spec.store_sync));
      } else {
        store_.emplace(
            store::ResultStore::create(spec.store_path, fp, spec.store_sync));
      }
    }
    preloaded_ = cache.size();
  }

  /// Tiles resolved against entries below this index replay *from the
  /// store* (imports happen before any in-run reservation).
  std::size_t preloaded() const { return preloaded_; }

  /// Serial merge phase, once per merged tile: persist a fresh solve,
  /// hand it to the record sink, account a store replay, and fire the
  /// fault injection.
  void on_tile_merged(const CorrectionCache& cache, bool replay,
                      std::size_t entry, FlowStats& stats) {
    if (replay) {
      // Entries below preloaded_ came from the store file or the
      // in-memory preload — either way, reuse from a previous run.
      if (entry < preloaded_) ++stats.store_hits;
    } else if (store_ || sink_) {
      store::TileRecord rec = cache.export_entry(entry);
      if (store_) {
        store_->append(rec);
        ++stats.store_entries_appended;
      }
      if (sink_) sink_(rec);
    }
    ++merged_;
    if (fail_after_ >= 0 && merged_ >= static_cast<std::size_t>(fail_after_)) {
      throw FlowAborted("flow aborted by FlowSpec::fail_after_tiles after " +
                        std::to_string(merged_) + " merged tiles");
    }
  }

 private:
  std::optional<store::ResultStore> store_;
  std::size_t preloaded_ = 0;
  std::size_t merged_ = 0;
  int fail_after_;
  const std::function<void(const store::TileRecord&)>& sink_;
};

/// Driver-thread dispatch for the FlowSpec::cancel / FlowSpec::progress
/// hooks. Every call happens on the flow's serial driver thread, between
/// phases or between merged tiles, so handlers never race the flow.
class JobHooks {
 public:
  explicit JobHooks(const FlowSpec& spec) : spec_(spec) {}

  /// Phase boundary: poll cancellation, then announce the phase.
  void phase(std::string_view name, int pass, std::size_t total) {
    check_cancel();
    if (spec_.progress) spec_.progress({name, pass, 0, total});
  }

  /// One merged tile (progress only; the merge loop polls cancel at the
  /// top of each iteration so a cancelled run never half-merges a tile).
  void tile_merged(int pass, std::size_t done, std::size_t total) {
    if (spec_.progress) spec_.progress({"merge", pass, done, total});
  }

  void check_cancel() const {
    if (spec_.cancel && spec_.cancel->load(std::memory_order_relaxed)) {
      throw FlowAborted("flow cancelled by FlowSpec::cancel");
    }
  }

 private:
  const FlowSpec& spec_;
};

/// FlowSpec::mrc_deck split for the tiled signoff gate. Every
/// edge-pair/boundary check is a local function of the geometry within
/// the largest rule distance of its marker, so it tiles exactly; the
/// connected-component area check does not, so it runs once globally.
struct MrcDeckSplit {
  mrc::Deck edge;
  mrc::Deck area;
  geom::Coord rule_max = 0;  ///< largest edge-deck rule distance
};

MrcDeckSplit split_mrc_deck(const mrc::Deck& deck) {
  MrcDeckSplit split;
  for (const mrc::Check& c : deck) {
    if (c.kind == mrc::CheckKind::kArea) {
      split.area.push_back(c);
    } else {
      split.edge.push_back(c);
      split.rule_max = std::max(split.rule_max, c.value);
    }
  }
  return split;
}

/// Fold one tile's violation count into the accounting (serial, tile
/// order — the histogram observation order matches tile_simulations).
void account_mrc_tile(std::size_t violations, FlowStats& stats) {
  stats.tile_mrc_violations.push_back(violations);
  trace::metrics().counter(trace::metric::kMrcTilesChecked).add(1);
  trace::metrics()
      .histogram(trace::metric::kMrcTileViolations)
      .observe(static_cast<double>(violations));
}

/// Seal the merged report: canonical order, counters, stats flags.
void finish_mrc_report(std::vector<mrc::Violation> merged, bool dedup,
                       FlowStats& stats) {
  if (dedup) mrc::sort_and_dedup(merged);
  stats.mrc.violations = std::move(merged);
  stats.mrc_checked = true;
  trace::metrics()
      .counter(trace::metric::kMrcViolations)
      .add(stats.mrc.violations.size());
}

/// Flat-flow signoff: sweep the written output per placement tile, in
/// parallel, against the frozen corrected pool. Each tile checks the
/// un-clipped polygons within `2 * rule_max` of its window and keeps
/// the violations whose marker touches the window inflated by
/// `rule_max` — every polygon a kept marker depends on is inside the
/// query zone, so a kept violation is exact, and every violation on the
/// mask falls inside at least one tile's kept zone. Straddling markers
/// surface from several tiles and collapse in sort_and_dedup. The area
/// deck runs once over the whole pool (global connectivity).
void run_flat_mrc_gate(const FlowSpec& spec, TileExecutor& exec,
                       const std::vector<Polygon>& pool,
                       const std::vector<Rect>& windows, FlowStats& stats) {
  if (spec.mrc_deck.empty()) return;
  PhaseScope phase("flow.mrc", trace::metric::kFlowPhaseMrcMs);
  const MrcDeckSplit deck = split_mrc_deck(spec.mrc_deck);

  Rect chip_box = geom::Rect::empty();
  for (const auto& p : pool) chip_box = chip_box.united(p.bbox());
  if (chip_box.is_empty()) {
    finish_mrc_report({}, /*dedup=*/true, stats);
    return;
  }
  const geom::Coord margin = 2 * deck.rule_max;
  geom::TileIndex index(chip_box.inflated(margin + 256), 2048);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    index.insert(i, pool[i].bbox());
  }

  std::vector<mrc::Violation> merged;
  std::vector<std::vector<mrc::Violation>> per_tile(windows.size());
  exec.run(windows.size(), [&](std::size_t i) {
    trace::Span span("flow.mrc.tile", static_cast<std::int64_t>(i));
    const Rect window = windows[i];
    if (window.is_empty() || deck.edge.empty()) return;
    std::vector<Polygon> local;
    for (std::size_t id : index.query(window.inflated(margin))) {
      local.push_back(pool[id]);
    }
    mrc::MrcReport report = mrc::check_polygons(local, deck.edge);
    const Rect keep = window.inflated(deck.rule_max);
    for (mrc::Violation& v : report.violations) {
      if (v.marker.touches(keep)) per_tile[i].push_back(std::move(v));
    }
  });
  for (std::size_t i = 0; i < windows.size(); ++i) {
    account_mrc_tile(per_tile[i].size(), stats);
    for (mrc::Violation& v : per_tile[i]) merged.push_back(std::move(v));
  }

  if (!deck.area.empty()) {
    mrc::MrcReport area =
        mrc::check_mask(geom::Region::from_polygons(pool), deck.area);
    for (mrc::Violation& v : area.violations) merged.push_back(std::move(v));
  }
  finish_mrc_report(std::move(merged), /*dedup=*/true, stats);
}

/// Evaluate FlowSpec::mrc_action once the stats are sealed. kFail
/// throws on error-severity findings only (MRC005 jogs warn); the
/// message mirrors the pre-flight gate's shape.
void apply_mrc_action(const FlowSpec& spec, FlowStats& stats) {
  if (!stats.mrc_checked || spec.mrc_action != mrc::Action::kFail) return;
  const lint::LintReport lint = mrc::to_lint_report(stats.mrc);
  if (lint.clean()) return;
  std::set<std::string> error_codes;
  for (const lint::Diagnostic& d : lint.findings()) {
    if (d.severity == lint::Severity::kError) error_codes.insert(d.code);
  }
  std::ostringstream os;
  os << "MRC signoff gate found " << lint.errors() << " error(s) [";
  bool first = true;
  for (const std::string& code : error_codes) {
    os << (first ? "" : " ") << code;
    first = false;
  }
  os << "]:";
  std::size_t shown = 0;
  for (const lint::Diagnostic& d : lint.findings()) {
    if (d.severity != lint::Severity::kError) continue;
    os << (shown == 0 ? " " : "; ") << d.to_line();
    if (++shown == 3) break;
  }
  throw MrcGateError(os.str(), std::move(stats));
}

}  // namespace

std::uint64_t flow_fingerprint(const FlowSpec& spec,
                               std::string_view flow_kind) {
  // FNV-1a over the byte stream of every output-affecting knob. Field
  // order is append-only: new knobs go at the END so adding one changes
  // the fingerprint for non-default values only by design review, not
  // accident.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  auto mix_d = [&](double v) { mix_u64(std::bit_cast<std::uint64_t>(v)); };
  auto mix_i = [&](std::int64_t v) {
    mix_u64(static_cast<std::uint64_t>(v));
  };
  for (char c : flow_kind) mix_u64(static_cast<std::uint8_t>(c));

  const ModelOpcSpec& o = spec.opc;
  mix_i(o.fragmentation.target_length);
  mix_i(o.fragmentation.corner_length);
  mix_i(o.fragmentation.min_length);
  mix_i(o.fragmentation.line_end_max);
  mix_i(o.max_iterations);
  mix_d(o.gain);
  mix_i(o.max_move_per_iter);
  mix_i(o.max_total_offset);
  mix_d(o.epe_tolerance_nm);
  mix_d(o.probe_range_nm);
  mix_i(o.grid_nm);
  mix_i(o.min_mask_space_nm);
  mix_i(o.min_tip_gap_nm);
  mix_d(o.corner_gain_scale);
  mix_i(o.corner_max_offset);

  const litho::SimSpec& s = spec.sim;
  mix_d(s.optics.wavelength_nm);
  mix_d(s.optics.na);
  mix_i(static_cast<std::int64_t>(s.optics.source.shape));
  mix_d(s.optics.source.sigma_outer);
  mix_d(s.optics.source.sigma_inner);
  mix_d(s.optics.source.pole_center);
  mix_d(s.optics.source.pole_radius);
  mix_i(s.optics.source.grid);
  mix_d(s.optics.aberrations.coma_x_nm);
  mix_d(s.optics.aberrations.coma_y_nm);
  mix_d(s.optics.aberrations.astig_nm);
  mix_i(static_cast<std::int64_t>(s.mask.type));
  mix_d(s.mask.background_transmission);
  mix_d(s.resist.threshold);
  mix_d(s.resist.diffusion_nm);
  mix_d(s.pixel_nm);
  mix_i(s.guard_nm);

  mix_i(spec.halo_nm);
  mix_i(spec.input_layer.layer);
  mix_i(spec.input_layer.datatype);
  mix_i(spec.output_layer.layer);
  mix_i(spec.output_layer.datatype);
  mix_i(spec.flat_context_passes);
  mix_u64(spec.cache_symmetry ? 1 : 0);
  // Imaging engine selection and its truncation ε change the aerial
  // intensities, hence the corrected output (appended fields; abbe with
  // default ε hashes differently from pre-SOCS builds by design).
  mix_i(static_cast<std::int64_t>(s.imaging));
  mix_d(s.socs_epsilon);
  // Pattern-library warm starts move the solver's initial offsets, hence
  // the corrected mask (within tolerance): the library identity and the
  // near-match budget are output-affecting (appended fields; stores from
  // pre-library builds hash differently by design).
  mix_u64(spec.library_path.size());
  for (char c : spec.library_path) mix_u64(static_cast<std::uint8_t>(c));
  mix_d(spec.library_budget);
  // The correction engine and the pixel-ILT knobs select and shape the
  // solver, so they rewrite the output mask wholesale (appended fields;
  // stores from pre-ILT builds hash differently by design).
  mix_i(static_cast<std::int64_t>(spec.engine));
  mix_d(spec.ilt_escalation_epe_nm);
  const ilt::IltSpec& il = spec.ilt;
  mix_i(il.max_iterations);
  mix_d(il.step);
  mix_d(il.sigmoid_steepness);
  mix_d(il.edge_weight);
  mix_d(il.edge_band_nm);
  mix_d(il.convergence_tol);
  mix_d(il.mask_threshold);
  mix_i(il.min_width_nm);
  mix_i(il.min_space_nm);
  mix_i(il.min_corner_nm);
  mix_d(il.min_area_nm2);
  return h;
}

std::string render_stats_json(const FlowStats& stats) {
  // Doubles go through util::format_double: the stream's default 6
  // significant digits silently truncated wall_ms and the EPE fields,
  // and the stream is locale-sensitive (a user locale with ',' decimal
  // points produces invalid JSON).
  std::ostringstream os;
  os << "{\"opc_runs\":" << stats.opc_runs
     << ",\"simulations\":" << stats.simulations
     << ",\"corrected_polygons\":" << stats.corrected_polygons
     << ",\"all_converged\":" << (stats.all_converged ? "true" : "false")
     << ",\"max_abs_epe_nm\":" << util::format_double(stats.max_abs_epe_nm)
     << ",\"worst_rms_epe_nm\":"
     << util::format_double(stats.worst_rms_epe_nm)
     << ",\"cache\":{\"hits\":" << stats.cache_hits
     << ",\"misses\":" << stats.cache_misses
     << ",\"conflicts\":" << stats.cache_conflicts << "}"
     << ",\"store\":{\"hits\":" << stats.store_hits
     << ",\"entries_loaded\":" << stats.store_entries_loaded
     << ",\"entries_appended\":" << stats.store_entries_appended
     << ",\"tail_recovered\":"
     << (stats.store_tail_recovered ? "true" : "false") << "}"
     << ",\"library\":{\"exact_hits\":" << stats.library_exact_hits
     << ",\"near_hits\":" << stats.library_near_hits
     << ",\"entries_loaded\":" << stats.library_entries_loaded
     << ",\"entries_appended\":" << stats.library_entries_appended
     << ",\"warm_iterations\":" << stats.library_warm_iterations
     << ",\"tail_recovered\":"
     << (stats.library_tail_recovered ? "true" : "false") << "}"
     << ",\"ilt\":{\"tiles\":" << stats.ilt_tiles
     << ",\"escalated\":" << stats.ilt_escalated
     << ",\"iterations\":" << stats.ilt_iterations << "}"
     << ",\"tile_simulations\":[";
  for (std::size_t i = 0; i < stats.tile_simulations.size(); ++i) {
    os << (i ? "," : "") << stats.tile_simulations[i];
  }
  os << "],\"mrc\":{\"checked\":" << (stats.mrc_checked ? "true" : "false")
     << ",\"violations\":" << stats.mrc.violations.size() << ",\"by_rule\":{";
  std::map<std::string, std::size_t> by_rule;
  for (const mrc::Violation& v : stats.mrc.violations) ++by_rule[v.rule];
  bool first_rule = true;
  for (const auto& [rule, n] : by_rule) {
    os << (first_rule ? "" : ",") << "\"" << rule << "\":" << n;
    first_rule = false;
  }
  os << "},\"tile_violations\":[";
  for (std::size_t i = 0; i < stats.tile_mrc_violations.size(); ++i) {
    os << (i ? "," : "") << stats.tile_mrc_violations[i];
  }
  os << "]},\"wall_ms\":" << util::format_double(stats.wall_ms)
     << ",\"metrics\":" << trace::render_metrics_json(stats.metrics) << "}";
  return os.str();
}

FlowStats run_cell_opc(Library& lib, const std::string& top,
                       const FlowSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  const trace::MetricsSnapshot before = trace::metrics().snapshot();
  trace::Span flow_span("flow.cell");
  if (spec.preflight) preflight_gate(lib, spec);
  lib.validate();
  FlowStats stats;

  // Distinct reachable cells; the sorted std::set order is the placement
  // order every serial phase below follows.
  std::set<std::string> reachable;
  std::vector<std::string> queue{top};
  while (!queue.empty()) {
    const std::string name = queue.back();
    queue.pop_back();
    if (!reachable.insert(name).second) continue;
    for (const auto& ref : lib.at(name).refs()) queue.push_back(ref.child);
  }
  std::vector<std::string> work;
  for (const std::string& name : reachable) {
    if (!lib.at(name).shapes(spec.input_layer).empty()) {
      work.push_back(name);
    }
  }

  CorrectionCache cache({spec.cache_symmetry});
  StoreSession store(spec, "cell", cache, stats);
  // After StoreSession: store/preload entries precede library imports in
  // every resolve bucket, so store_hits keep their pre-library meaning.
  LibrarySession library(spec, "cell", cache, stats);
  TileExecutor exec(spec.jobs);
  JobHooks hooks(spec);
  std::vector<TileWork> tiles(work.size());

  // Phase A — gather (parallel, read-only on the library).
  {
    hooks.phase("gather", 0, work.size());
    PhaseScope phase("flow.gather", trace::metric::kFlowPhaseGatherMs);
    exec.run(work.size(), [&](std::size_t i) {
      trace::Span span("flow.gather.tile", static_cast<std::int64_t>(i));
      const Cell& cell = lib.at(work[i]);
      const auto shapes = cell.shapes(spec.input_layer);
      tiles[i].targets.assign(shapes.begin(), shapes.end());
      if (spec.cache) {
        tiles[i].key = CorrectionCache::make_key(
            tiles[i].targets, geom::Region::from_polygons(tiles[i].targets),
            cell.local_bbox());
      }
    });
  }

  // Phase B — resolve (serial, in order).
  {
    hooks.phase("resolve", 0, work.size());
    PhaseScope phase("flow.resolve", trace::metric::kFlowPhaseResolveMs);
    if (spec.cache) resolve_tiles(cache, library, tiles, stats);
  }

  // Phase C — solve (parallel; run_model_opc is a pure function of the
  // per-tile inputs, warm seeds included — they were fixed serially).
  {
    hooks.phase("solve", 0, work.size());
    PhaseScope phase("flow.solve", trace::metric::kFlowPhaseSolveMs);
    exec.run(work.size(), [&](std::size_t i) {
      TileWork& t = tiles[i];
      if (t.replay) return;
      trace::Span span("flow.solve.tile", static_cast<std::int64_t>(i));
      WarmStart warm;
      if (t.warm) warm.seeds = t.seeds;
      solve_tile_engine(spec, spec.sim, lib.at(work[i]).local_bbox(),
                        t.warm ? &warm : nullptr, t);
    });
  }

  // Phase D — merge (serial, in order): account, store/replay, write.
  {
    hooks.phase("merge", 0, work.size());
    PhaseScope phase("flow.merge", trace::metric::kFlowPhaseMergeMs);
    for (std::size_t i = 0; i < work.size(); ++i) {
      hooks.check_cancel();
      TileWork& t = tiles[i];
      std::vector<Polygon> corrected;
      if (t.replay) {
        corrected = cache.fetch(t.res.entry, t.key);
        stats.tile_simulations.push_back(0);
      } else {
        if (t.ilt) {
          corrected = std::move(t.ilt_result.corrected);
          account_ilt_solve(t, stats);
        } else {
          corrected = std::move(t.result.corrected);
          account_fresh_solve(t.result, stats);
          if (t.escalated) account_reverted_escalation(t, stats);
        }
        if (spec.cache) {
          cache.store(t.res.entry, t.key, corrected);
          // ILT output carries no fragment offsets, so there is nothing
          // to seed warm starts from — the library append is model-only.
          if (!t.ilt) library.on_fresh_solve(cache, t, stats);
        }
      }
      Cell& cell = lib.cell(work[i]);
      cell.clear_layer(spec.output_layer);
      for (const auto& p : corrected) {
        cell.add_polygon(spec.output_layer, p);
        ++stats.corrected_polygons;
      }
      store.on_tile_merged(cache, t.replay, t.res.entry, stats);
      hooks.tile_merged(0, i + 1, work.size());
    }
  }

  // Phase E — MRC signoff (parallel, read-only on the written output).
  // Cells are corrected in isolation, so they are signed off the same
  // way: one gate tile per cell, full deck (a cell is its own
  // connectivity universe here, so the area check tiles too).
  if (!spec.mrc_deck.empty()) {
    hooks.phase("mrc", 0, work.size());
    PhaseScope phase("flow.mrc", trace::metric::kFlowPhaseMrcMs);
    std::vector<mrc::MrcReport> reports(work.size());
    exec.run(work.size(), [&](std::size_t i) {
      trace::Span span("flow.mrc.tile", static_cast<std::int64_t>(i));
      const auto shapes = lib.at(work[i]).shapes(spec.output_layer);
      const std::vector<Polygon> mask(shapes.begin(), shapes.end());
      reports[i] = mrc::check_polygons(mask, spec.mrc_deck);
    });
    std::vector<mrc::Violation> merged;
    for (std::size_t i = 0; i < work.size(); ++i) {
      account_mrc_tile(reports[i].violations.size(), stats);
      for (mrc::Violation& v : reports[i].violations) {
        merged.push_back(std::move(v));
      }
    }
    // Concatenated in sorted cell order, NOT deduplicated: two cells
    // with identical local geometry are distinct masks.
    finish_mrc_report(std::move(merged), /*dedup=*/false, stats);
  }

  finalize_cache_stats(cache, stats);
  publish_flow_metrics(before, stats);
  stats.wall_ms = elapsed_ms(t0);
  apply_mrc_action(spec, stats);
  return stats;
}

FlowStats run_flat_opc(Library& lib, const std::string& top,
                       const FlowSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  const trace::MetricsSnapshot before = trace::metrics().snapshot();
  trace::Span flow_span("flow.flat");
  if (spec.preflight) preflight_gate(lib, spec);
  lib.validate();
  FlowStats stats;

  // The imaging frame must cover the whole context halo, or context
  // shapes near the frame edge enter the simulation clipped and the
  // "true context" promise silently degrades.
  FlowSpec eff = spec;
  eff.sim.guard_nm = std::max(spec.sim.guard_nm, spec.halo_nm);

  // Flatten once for the chip extent (context queries use the per-pass
  // corrected pool below, which starts from the same drawn geometry).
  const std::vector<Polygon> flat = lib.flatten(top, spec.input_layer);
  if (flat.empty()) return stats;
  Rect chip_box = geom::Rect::empty();
  for (const auto& p : flat) chip_box = chip_box.united(p.bbox());

  // Enumerate placements (cell instances with shapes on the input layer).
  struct Placement {
    const Cell* cell;
    Transform transform;
  };
  std::vector<Placement> placements;
  // Depth-first expansion mirroring Library::flatten.
  std::vector<std::pair<std::string, Transform>> stack{{top, Transform{}}};
  while (!stack.empty()) {
    auto [name, t] = stack.back();
    stack.pop_back();
    const Cell& cell = lib.at(name);
    if (!cell.shapes(spec.input_layer).empty()) {
      placements.push_back({&cell, t});
    }
    for (const auto& ref : cell.refs()) {
      for (int r = 0; r < ref.rows; ++r) {
        for (int c = 0; c < ref.columns; ++c) {
          stack.emplace_back(ref.child, t * ref.element_transform(c, r));
        }
      }
    }
  }

  // Per-placement drawn geometry, window, and own-area region.
  struct Job {
    std::vector<Polygon> drawn;
    Rect window = geom::Rect::empty();
    geom::Region own_region;
    std::vector<Polygon> corrected;  ///< latest pass output (own only)
  };
  std::vector<Job> jobs;
  jobs.reserve(placements.size());
  for (const Placement& pl : placements) {
    Job job;
    for (const auto& s : pl.cell->shapes(spec.input_layer)) {
      Polygon placed = pl.transform(s);
      job.window = job.window.united(placed.bbox());
      job.drawn.push_back(std::move(placed));
    }
    job.own_region = geom::Region::from_polygons(job.drawn);
    job.corrected = job.drawn;  // pass-0 context = drawn geometry
    jobs.push_back(std::move(job));
  }

  CorrectionCache cache({spec.cache_symmetry});
  StoreSession store(spec, "flat", cache, stats);
  // After StoreSession: store/preload entries precede library imports in
  // every resolve bucket, so store_hits keep their pre-library meaning.
  LibrarySession library(spec, "flat", cache, stats);
  TileExecutor exec(spec.jobs);
  JobHooks hooks(spec);

  const int passes = std::max(1, spec.flat_context_passes);
  for (int pass = 0; pass < passes; ++pass) {
    // Context pool for this pass: every placement's latest mask state.
    // Frozen before the phases start, so gathers are read-only.
    std::vector<Polygon> pool;
    for (const Job& job : jobs) {
      for (const auto& p : job.corrected) {
        pool.push_back(p);
      }
    }
    geom::TileIndex pool_index(chip_box.inflated(spec.halo_nm + 256), 2048);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool_index.insert(i, pool[i].bbox());
    }

    std::vector<TileWork> tiles(jobs.size());

    // Phase A — gather (parallel): own DRAWN shapes (design intent never
    // goes stale) plus the latest corrected neighbours as context.
    {
      hooks.phase("gather", pass, jobs.size());
      PhaseScope phase("flow.gather", trace::metric::kFlowPhaseGatherMs);
      exec.run(jobs.size(), [&](std::size_t i) {
        trace::Span span("flow.gather.tile", static_cast<std::int64_t>(i));
        const Job& job = jobs[i];
        TileWork& t = tiles[i];
        t.targets = job.drawn;
        for (std::size_t id :
             pool_index.query(job.window.inflated(spec.halo_nm))) {
          const Polygon& cand = pool[id];
          // Skip our own shapes: anything overlapping our drawn area is
          // ours (moves are far smaller than placement spacing).
          if (!job.own_region.intersected(geom::Region(cand.normalized()))
                   .empty()) {
            continue;
          }
          t.targets.push_back(cand);
        }
        if (spec.cache) {
          t.key = CorrectionCache::make_key(t.targets, job.own_region,
                                            job.window);
        }
      });
    }

    // Phase B — resolve (serial, placement order).
    {
      hooks.phase("resolve", pass, jobs.size());
      PhaseScope phase("flow.resolve", trace::metric::kFlowPhaseResolveMs);
      if (spec.cache) resolve_tiles(cache, library, tiles, stats);
    }

    // Phase C — solve (parallel).
    {
      hooks.phase("solve", pass, jobs.size());
      PhaseScope phase("flow.solve", trace::metric::kFlowPhaseSolveMs);
      exec.run(jobs.size(), [&](std::size_t i) {
        TileWork& t = tiles[i];
        if (t.replay) return;
        trace::Span span("flow.solve.tile", static_cast<std::int64_t>(i));
        WarmStart warm;
        if (t.warm) warm.seeds = t.seeds;
        solve_tile_engine(spec, eff.sim, jobs[i].window,
                          t.warm ? &warm : nullptr, t);
      });
    }

    // Phase D — merge (serial, placement order). A replay's
    // representative always precedes it in this order (resolve handed
    // out entries in the same order), so every store lands before the
    // fetch that needs it.
    {
      hooks.phase("merge", pass, jobs.size());
      PhaseScope phase("flow.merge", trace::metric::kFlowPhaseMergeMs);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        hooks.check_cancel();
        Job& job = jobs[i];
        TileWork& t = tiles[i];
        if (t.replay) {
          job.corrected = cache.fetch(t.res.entry, t.key);
          stats.tile_simulations.push_back(0);
          store.on_tile_merged(cache, true, t.res.entry, stats);
          hooks.tile_merged(pass, i + 1, jobs.size());
          continue;
        }
        job.corrected.clear();
        if (t.ilt) {
          account_ilt_solve(t, stats);
          // ILT can synthesize free-floating assists that overlap no
          // drawn shape, so "ours" is everything inside the window (the
          // legalizer clips to it); the locked context passthrough sits
          // outside and drops here, like the neighbour filter below.
          for (const auto& p : t.ilt_result.corrected) {
            if (job.window.contains(p.bbox())) job.corrected.push_back(p);
          }
        } else {
          account_fresh_solve(t.result, stats);
          if (t.escalated) account_reverted_escalation(t, stats);
          for (const auto& p : t.result.corrected) {
            if (!job.own_region.intersected(geom::Region(p)).empty()) {
              job.corrected.push_back(p);
            }
          }
        }
        if (spec.cache) {
          cache.store(t.res.entry, t.key, job.corrected);
          if (!t.ilt) library.on_fresh_solve(cache, t, stats);
        }
        store.on_tile_merged(cache, false, t.res.entry, stats);
        hooks.tile_merged(pass, i + 1, jobs.size());
      }
    }
  }

  Cell& out_cell = lib.cell(top);
  out_cell.clear_layer(spec.output_layer);
  for (const Job& job : jobs) {
    for (const auto& p : job.corrected) {
      out_cell.add_polygon(spec.output_layer, p);
      ++stats.corrected_polygons;
    }
  }

  // Phase E — MRC signoff over the written flat mask, one gate tile per
  // placement (the corrected extents, not the drawn windows: corrected
  // edges can move outward and the kept zones must cover every marker).
  if (!spec.mrc_deck.empty()) {
    hooks.phase("mrc", passes - 1, jobs.size());
    std::vector<Polygon> final_pool;
    std::vector<Rect> windows;
    windows.reserve(jobs.size());
    for (const Job& job : jobs) {
      Rect w = geom::Rect::empty();
      for (const auto& p : job.corrected) {
        w = w.united(p.bbox());
        final_pool.push_back(p);
      }
      windows.push_back(w);
    }
    run_flat_mrc_gate(spec, exec, final_pool, windows, stats);
  }

  finalize_cache_stats(cache, stats);
  publish_flow_metrics(before, stats);
  stats.wall_ms = elapsed_ms(t0);
  apply_mrc_action(spec, stats);
  return stats;
}

}  // namespace opckit::opc
