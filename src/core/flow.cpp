#include "core/flow.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>

#include "core/correction_cache.h"
#include "lint/lint.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace opckit::opc {

using geom::Polygon;
using geom::Rect;
using geom::Transform;
using layout::Cell;
using layout::CellRef;
using layout::Library;

namespace {

/// Static-analysis gate run before any correction: library structure and
/// geometry plus the model-parameter bands. Error findings abort; the
/// message carries the offending codes and the first few findings so the
/// failure is actionable without re-running `opckit lint`.
void preflight_gate(const Library& lib, const FlowSpec& spec) {
  lint::LintOptions options;
  options.grid_nm = spec.opc.grid_nm;
  lint::LintReport report = lint::lint_library(lib, options);
  report.merge(lint::lint_sim_spec(spec.sim, options));
  report.merge(lint::lint_opc_spec(spec.opc, options));
  if (report.clean()) return;

  std::set<std::string> error_codes;
  for (const lint::Diagnostic& d : report.findings()) {
    if (d.severity == lint::Severity::kError) error_codes.insert(d.code);
  }
  std::ostringstream os;
  os << "pre-flight lint found " << report.errors() << " error(s) [";
  bool first = true;
  for (const std::string& code : error_codes) {
    os << (first ? "" : " ") << code;
    first = false;
  }
  os << "]:";
  std::size_t shown = 0;
  for (const lint::Diagnostic& d : report.findings()) {
    if (d.severity != lint::Severity::kError) continue;
    os << (shown == 0 ? " " : "; ") << d.to_line();
    if (++shown == 3) break;
  }
  throw util::InputError(os.str());
}

/// Runs the parallel phases under FlowSpec::jobs: 1 = inline in the
/// calling thread, 0 = the shared global pool, N > 1 = a pool owned by
/// this flow run. Tile bodies may call parallel_for themselves (the Abbe
/// source-point loop does); on a pool worker the nested call runs inline
/// per the ThreadPool protocol, so tiles never deadlock the pool and the
/// per-chunk accumulation order stays deterministic either way.
class TileExecutor {
 public:
  explicit TileExecutor(int jobs) : jobs_(jobs) {
    if (jobs > 1) {
      owned_ = std::make_unique<util::ThreadPool>(
          static_cast<std::size_t>(jobs));
    }
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (owned_) {
      owned_->parallel_for(count, fn);
    } else if (jobs_ == 0) {
      util::global_pool().parallel_for(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  }

 private:
  int jobs_;
  std::unique_ptr<util::ThreadPool> owned_;
};

/// Per-tile phase state: the simulation input assembled by the gather
/// phase, the cache decision from the resolve phase, and the solver
/// output from the solve phase.
struct TileWork {
  std::vector<Polygon> targets;     ///< own shapes + halo context
  CorrectionCache::Key key;         ///< valid when the cache is on
  CorrectionCache::Resolution res;  ///< valid when the cache is on
  bool replay = false;              ///< resolved to a cache replay
  ModelOpcResult result;            ///< valid when !replay
};

/// Serial resolve phase: placement-ordered lookups make the choice of
/// representative per pattern class a pure function of the layout.
void resolve_tiles(CorrectionCache& cache, std::vector<TileWork>& tiles) {
  for (TileWork& t : tiles) {
    t.res = cache.resolve(t.key);
    t.replay = t.res.outcome == CacheOutcome::kHit ||
               t.res.outcome == CacheOutcome::kSymmetryHit;
  }
}

void finalize_cache_stats(const CorrectionCache& cache, FlowStats& stats) {
  const CorrectionCacheStats& cs = cache.stats();
  stats.cache_hits = cs.hits + cs.symmetry_hits;
  stats.cache_misses = cs.misses;
  stats.cache_conflicts = cs.conflicts;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

FlowStats run_cell_opc(Library& lib, const std::string& top,
                       const FlowSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  if (spec.preflight) preflight_gate(lib, spec);
  lib.validate();
  FlowStats stats;

  // Distinct reachable cells; the sorted std::set order is the placement
  // order every serial phase below follows.
  std::set<std::string> reachable;
  std::vector<std::string> queue{top};
  while (!queue.empty()) {
    const std::string name = queue.back();
    queue.pop_back();
    if (!reachable.insert(name).second) continue;
    for (const auto& ref : lib.at(name).refs()) queue.push_back(ref.child);
  }
  std::vector<std::string> work;
  for (const std::string& name : reachable) {
    if (!lib.at(name).shapes(spec.input_layer).empty()) {
      work.push_back(name);
    }
  }

  CorrectionCache cache({spec.cache_symmetry});
  TileExecutor exec(spec.jobs);
  std::vector<TileWork> tiles(work.size());

  // Phase A — gather (parallel, read-only on the library).
  exec.run(work.size(), [&](std::size_t i) {
    const Cell& cell = lib.at(work[i]);
    const auto shapes = cell.shapes(spec.input_layer);
    tiles[i].targets.assign(shapes.begin(), shapes.end());
    if (spec.cache) {
      tiles[i].key = CorrectionCache::make_key(
          tiles[i].targets, geom::Region::from_polygons(tiles[i].targets),
          cell.local_bbox());
    }
  });

  // Phase B — resolve (serial, in order).
  if (spec.cache) resolve_tiles(cache, tiles);

  // Phase C — solve (parallel; run_model_opc is a pure function of the
  // per-tile inputs).
  exec.run(work.size(), [&](std::size_t i) {
    TileWork& t = tiles[i];
    if (t.replay) return;
    t.result = run_model_opc(t.targets, spec.sim,
                             lib.at(work[i]).local_bbox(), spec.opc);
  });

  // Phase D — merge (serial, in order): account, store/replay, write.
  for (std::size_t i = 0; i < work.size(); ++i) {
    TileWork& t = tiles[i];
    std::vector<Polygon> corrected;
    if (t.replay) {
      corrected = cache.fetch(t.res.entry, t.key);
      stats.tile_simulations.push_back(0);
    } else {
      corrected = std::move(t.result.corrected);
      ++stats.opc_runs;
      stats.simulations += t.result.history.size();
      stats.tile_simulations.push_back(t.result.history.size());
      stats.all_converged = stats.all_converged && t.result.converged;
      if (spec.cache) cache.store(t.res.entry, t.key, corrected);
    }
    Cell& cell = lib.cell(work[i]);
    cell.clear_layer(spec.output_layer);
    for (const auto& p : corrected) {
      cell.add_polygon(spec.output_layer, p);
      ++stats.corrected_polygons;
    }
  }

  finalize_cache_stats(cache, stats);
  stats.wall_ms = elapsed_ms(t0);
  return stats;
}

FlowStats run_flat_opc(Library& lib, const std::string& top,
                       const FlowSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  if (spec.preflight) preflight_gate(lib, spec);
  lib.validate();
  FlowStats stats;

  // The imaging frame must cover the whole context halo, or context
  // shapes near the frame edge enter the simulation clipped and the
  // "true context" promise silently degrades.
  FlowSpec eff = spec;
  eff.sim.guard_nm = std::max(spec.sim.guard_nm, spec.halo_nm);

  // Flatten once for the chip extent (context queries use the per-pass
  // corrected pool below, which starts from the same drawn geometry).
  const std::vector<Polygon> flat = lib.flatten(top, spec.input_layer);
  if (flat.empty()) return stats;
  Rect chip_box = geom::Rect::empty();
  for (const auto& p : flat) chip_box = chip_box.united(p.bbox());

  // Enumerate placements (cell instances with shapes on the input layer).
  struct Placement {
    const Cell* cell;
    Transform transform;
  };
  std::vector<Placement> placements;
  // Depth-first expansion mirroring Library::flatten.
  std::vector<std::pair<std::string, Transform>> stack{{top, Transform{}}};
  while (!stack.empty()) {
    auto [name, t] = stack.back();
    stack.pop_back();
    const Cell& cell = lib.at(name);
    if (!cell.shapes(spec.input_layer).empty()) {
      placements.push_back({&cell, t});
    }
    for (const auto& ref : cell.refs()) {
      for (int r = 0; r < ref.rows; ++r) {
        for (int c = 0; c < ref.columns; ++c) {
          stack.emplace_back(ref.child, t * ref.element_transform(c, r));
        }
      }
    }
  }

  // Per-placement drawn geometry, window, and own-area region.
  struct Job {
    std::vector<Polygon> drawn;
    Rect window = geom::Rect::empty();
    geom::Region own_region;
    std::vector<Polygon> corrected;  ///< latest pass output (own only)
  };
  std::vector<Job> jobs;
  jobs.reserve(placements.size());
  for (const Placement& pl : placements) {
    Job job;
    for (const auto& s : pl.cell->shapes(spec.input_layer)) {
      Polygon placed = pl.transform(s);
      job.window = job.window.united(placed.bbox());
      job.drawn.push_back(std::move(placed));
    }
    job.own_region = geom::Region::from_polygons(job.drawn);
    job.corrected = job.drawn;  // pass-0 context = drawn geometry
    jobs.push_back(std::move(job));
  }

  CorrectionCache cache({spec.cache_symmetry});
  TileExecutor exec(spec.jobs);

  const int passes = std::max(1, spec.flat_context_passes);
  for (int pass = 0; pass < passes; ++pass) {
    // Context pool for this pass: every placement's latest mask state.
    // Frozen before the phases start, so gathers are read-only.
    std::vector<Polygon> pool;
    for (const Job& job : jobs) {
      for (const auto& p : job.corrected) {
        pool.push_back(p);
      }
    }
    geom::TileIndex pool_index(chip_box.inflated(spec.halo_nm + 256), 2048);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool_index.insert(i, pool[i].bbox());
    }

    std::vector<TileWork> tiles(jobs.size());

    // Phase A — gather (parallel): own DRAWN shapes (design intent never
    // goes stale) plus the latest corrected neighbours as context.
    exec.run(jobs.size(), [&](std::size_t i) {
      const Job& job = jobs[i];
      TileWork& t = tiles[i];
      t.targets = job.drawn;
      for (std::size_t id :
           pool_index.query(job.window.inflated(spec.halo_nm))) {
        const Polygon& cand = pool[id];
        // Skip our own shapes: anything overlapping our drawn area is
        // ours (moves are far smaller than placement spacing).
        if (!job.own_region.intersected(geom::Region(cand.normalized()))
                 .empty()) {
          continue;
        }
        t.targets.push_back(cand);
      }
      if (spec.cache) {
        t.key = CorrectionCache::make_key(t.targets, job.own_region,
                                          job.window);
      }
    });

    // Phase B — resolve (serial, placement order).
    if (spec.cache) resolve_tiles(cache, tiles);

    // Phase C — solve (parallel).
    exec.run(jobs.size(), [&](std::size_t i) {
      TileWork& t = tiles[i];
      if (t.replay) return;
      t.result = run_model_opc(t.targets, eff.sim, jobs[i].window, spec.opc);
    });

    // Phase D — merge (serial, placement order). A replay's
    // representative always precedes it in this order (resolve handed
    // out entries in the same order), so every store lands before the
    // fetch that needs it.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      Job& job = jobs[i];
      TileWork& t = tiles[i];
      if (t.replay) {
        job.corrected = cache.fetch(t.res.entry, t.key);
        stats.tile_simulations.push_back(0);
        continue;
      }
      ++stats.opc_runs;
      stats.simulations += t.result.history.size();
      stats.tile_simulations.push_back(t.result.history.size());
      stats.all_converged = stats.all_converged && t.result.converged;
      job.corrected.clear();
      for (const auto& p : t.result.corrected) {
        if (!job.own_region.intersected(geom::Region(p)).empty()) {
          job.corrected.push_back(p);
        }
      }
      if (spec.cache) cache.store(t.res.entry, t.key, job.corrected);
    }
  }

  Cell& out_cell = lib.cell(top);
  out_cell.clear_layer(spec.output_layer);
  for (const Job& job : jobs) {
    for (const auto& p : job.corrected) {
      out_cell.add_polygon(spec.output_layer, p);
      ++stats.corrected_polygons;
    }
  }

  finalize_cache_stats(cache, stats);
  stats.wall_ms = elapsed_ms(t0);
  return stats;
}

}  // namespace opckit::opc
