/// \file neighborhood.h
/// Local-environment queries over a polygon set.
///
/// Rule-based OPC selects its bias by how much open space faces an edge;
/// SRAF insertion needs the same answer to know whether assist bars fit.
/// The query engine decomposes the layout into disjoint rectangles once
/// and answers directional gap queries through a tile index.
#pragma once

#include <vector>

#include "geometry/geometry.h"

namespace opckit::opc {

/// Directional free-space oracle over a fixed polygon set.
class Neighborhood {
 public:
  /// Build from a polygon set. \p interaction_range bounds every query
  /// (gaps larger than this report exactly interaction_range).
  Neighborhood(const std::vector<geom::Polygon>& polys,
               geom::Coord interaction_range);

  /// The bound passed at construction.
  geom::Coord range() const { return range_; }

  /// Size of the open gap in front of \p edge (which must be Manhattan),
  /// looking along \p outward (the edge's outward normal): the distance
  /// to the nearest geometry rectangle that overlaps the edge's transverse
  /// span, capped at range(). An edge with nothing facing it returns
  /// range() — "isolated".
  geom::Coord space_outside(const geom::Edge& edge,
                            const geom::Point& outward) const;

 private:
  geom::Coord range_;
  std::vector<geom::Rect> rects_;
  geom::TileIndex index_;
};

}  // namespace opckit::opc
