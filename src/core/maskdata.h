/// \file maskdata.h
/// Mask data-preparation metrics — quantifying the data-volume explosion.
///
/// The paper's "impact on layout" headline is that OPC multiplies mask
/// figure counts and file sizes: every fragment jog, serif, and assist
/// bar is a new figure. This module measures that cost on real GDSII
/// bytes and on fracture (trapezoid) counts, the two quantities mask
/// shops bill by.
#pragma once

#include <span>

#include "geometry/polygon.h"

namespace opckit::opc {

/// Shape-count and byte-size metrics of a polygon set.
struct MaskDataStats {
  std::size_t polygons = 0;
  std::size_t vertices = 0;
  std::size_t fracture_rects = 0;   ///< trapezoid count after fracturing
  std::size_t gdsii_bytes = 0;      ///< serialized size, one cell, layer 10/1

  double vertices_per_polygon() const {
    return polygons ? static_cast<double>(vertices) /
                          static_cast<double>(polygons)
                    : 0.0;
  }
};

/// Measure a polygon set. Fracturing uses the Region slab decomposition
/// (a standard trapezoid fracture for Manhattan data).
MaskDataStats measure_mask_data(std::span<const geom::Polygon> polys);

/// Ratio helper: data-volume explosion factors after / before.
struct DataVolumeRatio {
  double polygon_factor = 0.0;
  double vertex_factor = 0.0;
  double fracture_factor = 0.0;
  double byte_factor = 0.0;
};

DataVolumeRatio explosion(const MaskDataStats& before,
                          const MaskDataStats& after);

}  // namespace opckit::opc
