#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/neighborhood.h"
#include "litho/metrology.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Coord;
using geom::Point;
using geom::Polygon;
using geom::Rect;

namespace {

Coord snap(double v, Coord grid) {
  const auto g = static_cast<double>(grid);
  return static_cast<Coord>(std::llround(v / g)) * grid;
}

}  // namespace

std::vector<double> measure_fragment_epe(
    const std::vector<Polygon>& targets, std::span<const Fragment> fragments,
    const std::vector<Polygon>& mask, const litho::SimSpec& spec_sim,
    const Rect& window, double probe_range_nm, double defocus_nm,
    double dose) {
  const litho::Simulator sim(spec_sim, window);
  const litho::Image lat = sim.latent(mask, defocus_nm);
  const double thr = sim.threshold(dose);
  std::vector<double> out;
  out.reserve(fragments.size());
  for (const Fragment& f : fragments) {
    const Polygon& poly = targets[f.polygon];
    out.push_back(litho::edge_placement_error(
        lat, eval_point(poly, f), outward_normal(poly, f), probe_range_nm,
        thr));
  }
  return out;
}

ModelOpcResult run_model_opc(const std::vector<Polygon>& targets,
                             const litho::SimSpec& spec_sim,
                             const Rect& window, const ModelOpcSpec& spec,
                             const WarmStart* warm) {
  OPCKIT_CHECK(spec.max_iterations >= 1);
  OPCKIT_CHECK(spec.gain > 0.0);
  OPCKIT_CHECK(spec.grid_nm >= 1);

  const std::vector<Polygon> polys = merge_targets(targets);
  ModelOpcResult result;
  result.fragments = fragment_polygons(polys, spec.fragmentation);

  // Clamps rounded down to grid multiples so every offset stays on grid.
  const Coord step_clamp = std::max<Coord>(
      spec.grid_nm, spec.max_move_per_iter / spec.grid_nm * spec.grid_nm);
  const Coord total_clamp = std::max<Coord>(
      spec.grid_nm, spec.max_total_offset / spec.grid_nm * spec.grid_nm);

  // Per-fragment outward cap from the mask-space constraint (measured on
  // the drawn layout once; both sides of a space share it equally).
  const Neighborhood hood(polys,
                          2 * total_clamp + spec.min_mask_space_nm + 64);
  std::vector<Coord> outward_cap(result.fragments.size());
  for (std::size_t i = 0; i < result.fragments.size(); ++i) {
    const Fragment& f = result.fragments[i];
    const geom::Edge e = polys[f.polygon].edge(f.edge);
    const geom::Edge sub(e.at(f.t0), e.at(f.t1));
    const Coord space = hood.space_outside(sub, e.outward_normal());
    const Coord floor_nm = f.kind == FragmentKind::kLineEnd
                               ? spec.min_tip_gap_nm
                               : spec.min_mask_space_nm;
    const Coord cap = (space - floor_nm) / 2;
    outward_cap[i] =
        std::clamp<Coord>(cap / spec.grid_nm * spec.grid_nm, 0, total_clamp);
  }

  // Warm start: adopt the nearest seed offset within the match radius as
  // each in-window fragment's initial position. Seeds are hints, never
  // authority — every adopted offset is snapped and clamped exactly as a
  // converging loop would clamp it, and the iteration loop below still
  // measures and corrects from there.
  if (warm != nullptr && !warm->seeds.empty()) {
    const double r = static_cast<double>(warm->match_radius_nm);
    const double r_sq = r * r;
    for (std::size_t i = 0; i < result.fragments.size(); ++i) {
      Fragment& f = result.fragments[i];
      const Point site = eval_point(polys[f.polygon], f);
      if (!window.contains(site)) continue;
      const pat::WarmSeed* best = nullptr;
      double best_sq = r_sq;
      for (const pat::WarmSeed& s : warm->seeds) {
        const auto dx = static_cast<double>(s.site.x - site.x);
        const auto dy = static_cast<double>(s.site.y - site.y);
        const double d_sq = dx * dx + dy * dy;
        // Strict < keeps the tie-break deterministic: first seed wins.
        if (d_sq < best_sq || (best == nullptr && d_sq <= best_sq)) {
          best = &s;
          best_sq = d_sq;
        }
      }
      if (best == nullptr) continue;
      const bool corner = f.kind == FragmentKind::kCorner;
      const Coord lo_clamp =
          corner ? -std::min(total_clamp, spec.corner_max_offset)
                 : -total_clamp;
      const Coord hi_clamp =
          corner ? std::min(outward_cap[i], spec.corner_max_offset)
                 : outward_cap[i];
      f.offset = std::clamp<Coord>(
          snap(static_cast<double>(best->offset), spec.grid_nm), lo_clamp,
          hi_clamp);
      ++result.warm_seeded;
    }
  }

  const litho::Simulator sim(spec_sim, window);
  const double thr = sim.threshold();

  for (int iter = 0; iter < spec.max_iterations; ++iter) {
    const std::vector<Polygon> mask = apply_offsets(polys, result.fragments);
    const litho::Image lat = sim.latent(mask);

    // Measure every fragment first, then decide: converged masks are left
    // untouched (the recorded statistics describe the returned mask).
    OpcIteration stat;
    stat.iteration = iter;
    double sum_sq = 0.0;
    std::size_t measured = 0;
    std::vector<double> epes(result.fragments.size(),
                             std::numeric_limits<double>::quiet_NaN());

    for (std::size_t i = 0; i < result.fragments.size(); ++i) {
      Fragment& f = result.fragments[i];
      if (f.locked) continue;
      const Polygon& poly = polys[f.polygon];
      const Point site = eval_point(poly, f);
      // Only correct fragments whose metrology site the simulator window
      // actually covers; context-only geometry stays untouched.
      if (!window.contains(site)) {
        f.locked = true;
        continue;
      }
      const double epe = litho::edge_placement_error(
          lat, site, outward_normal(poly, f), spec.probe_range_nm, thr);
      epes[i] = epe;
      if (std::isnan(epe)) {
        ++stat.lost_edges;
        continue;
      }
      if (f.kind == FragmentKind::kCorner) {
        stat.max_abs_epe_corner_nm =
            std::max(stat.max_abs_epe_corner_nm, std::abs(epe));
        continue;
      }
      ++measured;
      sum_sq += epe * epe;
      stat.max_abs_epe_nm = std::max(stat.max_abs_epe_nm, std::abs(epe));
    }
    stat.rms_epe_nm =
        measured ? std::sqrt(sum_sq / static_cast<double>(measured)) : 0.0;
    result.history.push_back(stat);

    if (stat.lost_edges == 0 &&
        stat.max_abs_epe_nm <= spec.epe_tolerance_nm) {
      result.converged = true;
      break;
    }

    for (std::size_t i = 0; i < result.fragments.size(); ++i) {
      Fragment& f = result.fragments[i];
      if (f.locked) continue;
      const double epe = epes[i];
      if (std::isnan(epe)) {
        // Contour lost within the probe range. Disambiguate by the latent
        // intensity at the design edge: printed there means the feature
        // merged/bridged past the probe (pull the mask edge in), dark
        // means it vanished (push out).
        const Point site = eval_point(polys[f.polygon], f);
        const bool printed_at_site =
            lat.sample(static_cast<double>(site.x),
                       static_cast<double>(site.y)) >= thr;
        const Coord push = printed_at_site ? -step_clamp : step_clamp;
        f.offset = std::clamp<Coord>(f.offset + push, -total_clamp,
                                     outward_cap[i]);
        continue;
      }
      // Overprint (positive EPE) pulls the edge inward. Corner fragments
      // respond to the rounding zone, not a movable edge: damp them and
      // pin their travel.
      const bool corner = f.kind == FragmentKind::kCorner;
      const double gain =
          corner ? spec.gain * spec.corner_gain_scale : spec.gain;
      const Coord lo_clamp = corner
                                 ? -std::min(total_clamp,
                                             spec.corner_max_offset)
                                 : -total_clamp;
      const Coord hi_clamp =
          corner ? std::min(outward_cap[i], spec.corner_max_offset)
                 : outward_cap[i];
      const Coord move = std::clamp<Coord>(snap(-gain * epe, spec.grid_nm),
                                           -step_clamp, step_clamp);
      f.offset = std::clamp<Coord>(f.offset + move, lo_clamp, hi_clamp);
    }
  }

  result.corrected = apply_offsets(polys, result.fragments);
  // Export the solved (site, offset) pairs of every in-window fragment:
  // the warm-start seeds for future near-match retrievals of this tile.
  // Sites are on the ORIGINAL drawn edges, so they are stable whether a
  // future solve starts cold or warm.
  for (const Fragment& f : result.fragments) {
    if (f.locked) continue;
    result.seeds.push_back({eval_point(polys[f.polygon], f), f.offset});
  }
  return result;
}

}  // namespace opckit::opc
