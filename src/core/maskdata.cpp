#include "core/maskdata.h"

#include "geometry/region.h"
#include "layout/gdsii.h"
#include "layout/library.h"

namespace opckit::opc {

MaskDataStats measure_mask_data(std::span<const geom::Polygon> polys) {
  MaskDataStats s;
  s.polygons = polys.size();
  for (const auto& p : polys) s.vertices += p.size();
  s.fracture_rects = geom::Region::from_polygons(polys).rect_count();

  layout::Library lib("maskdata");
  layout::Cell& cell = lib.cell("shapes");
  for (const auto& p : polys) {
    cell.add_polygon(layout::Layer{10, 1}, p);
  }
  s.gdsii_bytes = layout::gdsii_byte_size(lib);
  return s;
}

namespace {
double ratio(std::size_t after, std::size_t before) {
  return before == 0 ? 0.0
                     : static_cast<double>(after) /
                           static_cast<double>(before);
}
}  // namespace

DataVolumeRatio explosion(const MaskDataStats& before,
                          const MaskDataStats& after) {
  return {ratio(after.polygons, before.polygons),
          ratio(after.vertices, before.vertices),
          ratio(after.fracture_rects, before.fracture_rects),
          ratio(after.gdsii_bytes, before.gdsii_bytes)};
}

}  // namespace opckit::opc
