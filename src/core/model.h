/// \file model.h
/// Model-based OPC: iterative edge correction driven by the imaging model.
///
/// Each iteration simulates the current mask, measures the edge-placement
/// error of every fragment at its design-intent metrology site, and moves
/// the fragment against the error (damped, clamped, snapped to the mask
/// grid). This is the simulate-then-move architecture of production OPC
/// engines of the paper's era; its convergence behaviour is experiment F4
/// and its gain sensitivity is ablation A2.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fragment.h"
#include "litho/simulator.h"
#include "pattern/library.h"

namespace opckit::opc {

/// Default EPE probe half-range (nm along the site normal). One constant
/// shared by the solver loop (ModelOpcSpec::probe_range_nm) and the
/// standalone measure_fragment_epe entry point: when the defaults
/// diverged (120 vs 160), direct metrology silently reported an edge as
/// lost (NaN) at displacements the solver still measured.
inline constexpr double kDefaultProbeRangeNm = 160.0;

/// Model-based OPC configuration.
struct ModelOpcSpec {
  FragmentationSpec fragmentation;
  int max_iterations = 14;
  double gain = 0.6;                ///< fragment move = -gain * EPE
  geom::Coord max_move_per_iter = 16;  ///< nm clamp per iteration
  geom::Coord max_total_offset = 90;   ///< nm clamp on accumulated offset
                                       ///< (must exceed worst line-end
                                       ///< pullback, ~75nm here)
  double epe_tolerance_nm = 1.0;    ///< converged when max|EPE| below this
  double probe_range_nm = kDefaultProbeRangeNm;  ///< EPE search range
                                                 ///< along the normal
  geom::Coord grid_nm = 1;          ///< mask grid (offsets snap to this)
  /// Mask-space constraint: a fragment may move outward only while the
  /// drawn space in front of it stays at least this wide after BOTH sides
  /// take their share — i.e. outward offset <= (space - min_mask_space)/2.
  /// Prevents facing edges from merging and keeps the mask MRC-legal.
  geom::Coord min_mask_space_nm = 140;
  /// Stronger floor for line-end (tip) fragments: an isolated tip-to-tip
  /// gap needs ~0.6 lambda/NA of mask space to print open, far more than
  /// a grating space. Below it the gap bridges and the loop oscillates —
  /// the reason production rule decks carry dedicated tip-to-tip rules.
  geom::Coord min_tip_gap_nm = 220;
  /// Corner-fragment policy. EPE measured right next to a corner reads
  /// the corner-rounding zone, which edge movement cannot square off (no
  /// mask prints a sharp corner at k1 ~ 0.4). Chasing it rails the offset
  /// and destabilizes neighbours, so corner fragments move with a reduced
  /// gain, a tight offset clamp, and are scored against their own spec.
  double corner_gain_scale = 0.4;
  geom::Coord corner_max_offset = 36;
};

/// Per-iteration convergence record. Corner-adjacent metrology sites are
/// tracked separately: their residual is corner rounding, a different
/// physical quantity with its own spec (see F3/T4).
struct OpcIteration {
  int iteration = 0;
  double max_abs_epe_nm = 0.0;         ///< over run/line-end sites
  double rms_epe_nm = 0.0;             ///< over run/line-end sites
  double max_abs_epe_corner_nm = 0.0;  ///< over corner sites
  std::size_t lost_edges = 0;  ///< fragments whose contour was not found
};

/// A warm start for the correction loop: per-fragment seed offsets from a
/// previously solved similar pattern (the pattern library's near-match
/// retrieval). Each fragment whose metrology site lies within
/// \p match_radius_nm of a seed site starts the loop at the seed's offset
/// (clamped to the fragment's own caps) instead of zero. The loop still
/// runs to the usual convergence test, so the EPE guarantee is unchanged
/// — a good seed only removes iterations.
struct WarmStart {
  std::vector<pat::WarmSeed> seeds;  ///< layout-frame sites + offsets
  geom::Coord match_radius_nm = 120; ///< max site distance to adopt a seed
};

/// Model-OPC output.
struct ModelOpcResult {
  std::vector<geom::Polygon> corrected;  ///< final mask polygons
  std::vector<Fragment> fragments;       ///< final fragment offsets
  std::vector<OpcIteration> history;     ///< one record per iteration
  bool converged = false;
  /// Final (site, offset) of every in-window fragment — the warm-start
  /// seeds a future similar tile can be solved from.
  std::vector<pat::WarmSeed> seeds;
  /// Fragments whose initial offset came from a warm-start seed.
  std::size_t warm_seeded = 0;

  /// Final-iteration statistics (zeros if the loop never ran).
  const OpcIteration& final_iteration() const { return history.back(); }
};

/// Run model-based OPC on a target polygon set within \p window (targets
/// outside the window still contribute optical context). \p spec_sim must
/// be calibrated (see litho::calibrate_threshold). Targets are normalized
/// internally. Deterministic. \p warm optionally seeds initial fragment
/// offsets from a retrieved similar solution (see WarmStart).
ModelOpcResult run_model_opc(const std::vector<geom::Polygon>& targets,
                             const litho::SimSpec& spec_sim,
                             const geom::Rect& window,
                             const ModelOpcSpec& spec,
                             const WarmStart* warm = nullptr);

/// Measure the EPE of every fragment of \p targets for mask \p mask (no
/// correction applied — metrology only). Used by ORC and the experiments
/// to score uncorrected/rule-corrected masks with the same probes the
/// model loop uses. Returns one EPE (nm, NaN = lost) per fragment.
std::vector<double> measure_fragment_epe(
    const std::vector<geom::Polygon>& targets,
    std::span<const Fragment> fragments,
    const std::vector<geom::Polygon>& mask, const litho::SimSpec& spec_sim,
    const geom::Rect& window, double probe_range_nm = kDefaultProbeRangeNm,
    double defocus_nm = 0.0, double dose = 1.0);

}  // namespace opckit::opc
