#include "core/fragment.h"

#include <algorithm>

#include "geometry/region.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Coord;
using geom::Edge;
using geom::Point;
using geom::Polygon;

std::vector<Polygon> merge_targets(const std::vector<Polygon>& targets) {
  for (const auto& t : targets) {
    OPCKIT_CHECK_MSG(!t.normalized().empty(), "degenerate target polygon");
  }
  std::vector<Polygon> out = geom::Region::from_polygons(targets).polygons();
  for (const auto& p : out) {
    OPCKIT_CHECK_MSG(p.is_ccw(),
                     "targets with holes are not supported by the OPC "
                     "engines");
  }
  return out;
}

bool is_convex_corner(const Polygon& poly, std::size_t i) {
  const std::size_t n = poly.size();
  const Point prev = poly[(i + n - 1) % n];
  const Point cur = poly[i];
  const Point nxt = poly[(i + 1) % n];
  return cross(cur - prev, nxt - cur) > 0;
}

bool is_line_end_edge(const Polygon& poly, std::size_t e, Coord max_len) {
  return poly.edge(e).length() <= max_len && is_convex_corner(poly, e) &&
         is_convex_corner(poly, (e + 1) % poly.size());
}

std::vector<Fragment> fragment_polygon(const Polygon& poly,
                                       const FragmentationSpec& spec,
                                       std::size_t polygon_index) {
  OPCKIT_CHECK_MSG(poly.is_manhattan() && poly.is_ccw(),
                   "fragmentation requires a normalized Manhattan ring");
  OPCKIT_CHECK(spec.min_length > 0);
  OPCKIT_CHECK(spec.target_length >= spec.min_length);
  OPCKIT_CHECK(spec.corner_length >= spec.min_length);

  std::vector<Fragment> out;
  const std::size_t n = poly.size();
  for (std::size_t e = 0; e < n; ++e) {
    const Coord len = poly.edge(e).length();
    const bool start_convex = is_convex_corner(poly, e);
    const bool end_convex = is_convex_corner(poly, (e + 1) % n);

    auto push = [&](Coord t0, Coord t1, FragmentKind kind) {
      Fragment f;
      f.polygon = polygon_index;
      f.edge = e;
      f.t0 = t0;
      f.t1 = t1;
      f.kind = kind;
      out.push_back(f);
    };

    // Line end: a short edge bracketed by two convex corners (tip of a
    // line) gets exactly one fragment so hammerhead-style correction
    // moves the whole tip.
    if (len <= spec.line_end_max && start_convex && end_convex) {
      push(0, len, FragmentKind::kLineEnd);
      continue;
    }

    const Coord c = spec.corner_length;
    if (len < 2 * c + spec.min_length) {
      // Too short for corner + run structure: one or two corner pieces.
      if (len >= 2 * spec.min_length) {
        push(0, len / 2, FragmentKind::kCorner);
        push(len / 2, len, FragmentKind::kCorner);
      } else {
        push(0, len, FragmentKind::kCorner);
      }
      continue;
    }

    // Corner fragment, interior runs, corner fragment.
    push(0, c, FragmentKind::kCorner);
    const Coord interior = len - 2 * c;
    const auto pieces = std::max<Coord>(
        1, (interior + spec.target_length - 1) / spec.target_length);
    Coord t = c;
    for (Coord k = 0; k < pieces; ++k) {
      const Coord t_next = c + interior * (k + 1) / pieces;
      push(t, t_next, FragmentKind::kRun);
      t = t_next;
    }
    push(len - c, len, FragmentKind::kCorner);
  }
  return out;
}

std::vector<Fragment> fragment_polygons(const std::vector<Polygon>& polys,
                                        const FragmentationSpec& spec) {
  std::vector<Fragment> out;
  for (std::size_t i = 0; i < polys.size(); ++i) {
    auto f = fragment_polygon(polys[i], spec, i);
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

Point eval_point(const Polygon& poly, const Fragment& frag) {
  return poly.edge(frag.edge).at((frag.t0 + frag.t1) / 2);
}

Point outward_normal(const Polygon& poly, const Fragment& frag) {
  return poly.edge(frag.edge).outward_normal();
}

Polygon apply_offsets(const Polygon& poly, std::span<const Fragment> frags) {
  OPCKIT_CHECK(!frags.empty());
  // Shifted segment per fragment, in ring order (fragments are emitted in
  // ring order by fragment_polygon; verify monotonicity defensively).
  struct Seg {
    Point a, b;
    std::size_t edge;
  };
  std::vector<Seg> segs;
  segs.reserve(frags.size());
  for (std::size_t i = 0; i < frags.size(); ++i) {
    const Fragment& f = frags[i];
    if (i > 0) {
      OPCKIT_CHECK_MSG(
          f.edge > frags[i - 1].edge ||
              (f.edge == frags[i - 1].edge && f.t0 == frags[i - 1].t1),
          "fragments out of ring order");
    }
    const Edge e = poly.edge(f.edge);
    const Point shift = e.outward_normal() * f.offset;
    segs.push_back({e.at(f.t0) + shift, e.at(f.t1) + shift, f.edge});
  }

  std::vector<Point> ring;
  ring.reserve(segs.size() * 2);
  const std::size_t m = segs.size();
  for (std::size_t k = 0; k < m; ++k) {
    const Seg& prev = segs[(k + m - 1) % m];
    const Seg& cur = segs[k];
    if (prev.edge == cur.edge) {
      // Jog between fragments of the same edge.
      if (prev.b == cur.a) {
        ring.push_back(cur.a);
      } else {
        ring.push_back(prev.b);
        ring.push_back(cur.a);
      }
    } else {
      // Corner: intersect the two shifted (perpendicular) edge lines.
      const bool prev_horizontal = prev.a.y == prev.b.y;
      OPCKIT_CHECK_MSG(prev_horizontal != (cur.a.y == cur.b.y),
                       "consecutive edges not perpendicular");
      const Point corner = prev_horizontal ? Point{cur.a.x, prev.b.y}
                                           : Point{prev.b.x, cur.a.y};
      ring.push_back(corner);
    }
  }
  return Polygon(std::move(ring)).normalized();
}

std::vector<Polygon> apply_offsets(const std::vector<Polygon>& polys,
                                   std::span<const Fragment> frags) {
  std::vector<std::vector<Fragment>> by_poly(polys.size());
  for (const Fragment& f : frags) {
    OPCKIT_CHECK(f.polygon < polys.size());
    by_poly[f.polygon].push_back(f);
  }
  std::vector<Polygon> out;
  out.reserve(polys.size());
  for (std::size_t i = 0; i < polys.size(); ++i) {
    auto& fs = by_poly[i];
    if (fs.empty()) {
      out.push_back(polys[i]);
      continue;
    }
    std::sort(fs.begin(), fs.end(), [](const Fragment& a, const Fragment& b) {
      return a.edge != b.edge ? a.edge < b.edge : a.t0 < b.t0;
    });
    out.push_back(apply_offsets(polys[i], fs));
  }
  return out;
}

}  // namespace opckit::opc
