/// \file flow_codec.h
/// Versioned binary serialization of FlowSpec — the job descriptor the
/// service daemon (src/service/) ships over its wire protocol.
///
/// The codec covers every knob that reaches flow_fingerprint() (optical
/// model, resist, mask stack, OPC recipe, fragmentation, halo, layers,
/// pass count, symmetry policy, pattern-library knobs) plus the
/// execution knobs a client may reasonably set per job (jobs, cache,
/// preflight, MRC deck/action, flat_context_passes). It deliberately
/// EXCLUDES host-local state — store_path/resume/store_sync,
/// fail_after_tiles, and the service hooks
/// (preload/record_sink/cancel/progress/library/library_sink) — because
/// those describe the executing process, not the job, and the daemon
/// owns them. library_path is fingerprint-reaching, so it IS carried —
/// the daemon clears it and substitutes its own library, exactly as it
/// does for store_path (see service/server.cpp).
///
/// Layout (version 2, little-endian; v2 appended library_path and
/// library_budget after the MRC action): u16 version, then the fields in a
/// fixed order; doubles as IEEE-754 bit patterns, enums as range-checked
/// u8, the MRC deck as a counted list of {kind, value, name}. Decoding
/// is bounds-checked end to end (the store Reader discipline): corrupt
/// counts or truncated buffers throw util::InputError before anything
/// out-of-range is read or allocated, and trailing bytes are an error.
///
/// The correctness contract, asserted by service_protocol_test: for any
/// spec,  flow_fingerprint(decode(encode(spec))) == flow_fingerprint
/// (spec)  and re-encoding the decoded spec reproduces the bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/flow.h"

namespace opckit::opc {

/// Serialize \p spec's job-describing fields (see file comment).
std::vector<std::uint8_t> encode_flow_spec(const FlowSpec& spec);

/// Parse an encoded spec. Throws util::InputError on any malformation:
/// unknown version, out-of-range enum, truncated buffer, trailing bytes.
FlowSpec decode_flow_spec(const std::uint8_t* data, std::size_t size);

}  // namespace opckit::opc
