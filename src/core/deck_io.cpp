#include "core/deck_io.h"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace opckit::opc {

namespace {
constexpr geom::Coord kOpenEnd = std::numeric_limits<geom::Coord>::max();
}

void write_rule_deck(const RuleDeck& deck, std::ostream& os) {
  os << "# opckit rule deck\n";
  os << "interaction_range " << deck.interaction_range << '\n';
  os << "line_end_max " << deck.line_end_max << '\n';
  os << "line_end_extension " << deck.line_end_extension << '\n';
  os << "hammer_overhang " << deck.hammer_overhang << '\n';
  os << "serif_size " << deck.serif_size << '\n';
  os << "mousebite_size " << deck.mousebite_size << '\n';
  os << "enable_bias " << (deck.enable_bias ? 1 : 0) << '\n';
  os << "enable_line_ends " << (deck.enable_line_ends ? 1 : 0) << '\n';
  os << "enable_serifs " << (deck.enable_serifs ? 1 : 0) << '\n';
  for (const auto& r : deck.bias_rules) {
    os << "bias " << r.space_min << ' ';
    if (r.space_max == kOpenEnd) {
      os << '*';
    } else {
      os << r.space_max;
    }
    os << ' ' << r.bias << '\n';
  }
  if (!os) throw util::InputError("deck write failed");
}

void write_rule_deck_file(const RuleDeck& deck, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw util::InputError("cannot open for write: " + path);
  write_rule_deck(deck, f);
}

RuleDeck read_rule_deck(std::istream& is) {
  RuleDeck deck;
  deck.bias_rules.clear();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = util::trim(line);
    if (line.empty()) continue;

    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto fail = [&]() {
      throw util::InputError("deck line " + std::to_string(line_no) +
                             " malformed: " + line);
    };
    if (key == "bias") {
      BiasRule r;
      std::string hi;
      ls >> r.space_min >> hi >> r.bias;
      if (!ls) fail();
      r.space_max = hi == "*" ? kOpenEnd : std::stoll(hi);
      if (r.space_max != kOpenEnd && r.space_max <= r.space_min) fail();
      deck.bias_rules.push_back(r);
      continue;
    }
    long long v = 0;
    ls >> v;
    if (!ls) fail();
    if (key == "interaction_range") {
      deck.interaction_range = v;
    } else if (key == "line_end_max") {
      deck.line_end_max = v;
    } else if (key == "line_end_extension") {
      deck.line_end_extension = v;
    } else if (key == "hammer_overhang") {
      deck.hammer_overhang = v;
    } else if (key == "serif_size") {
      deck.serif_size = v;
    } else if (key == "mousebite_size") {
      deck.mousebite_size = v;
    } else if (key == "enable_bias") {
      deck.enable_bias = v != 0;
    } else if (key == "enable_line_ends") {
      deck.enable_line_ends = v != 0;
    } else if (key == "enable_serifs") {
      deck.enable_serifs = v != 0;
    } else {
      throw util::InputError("deck line " + std::to_string(line_no) +
                             ": unknown key '" + key + "'");
    }
  }
  // Validate bias table: ascending, non-overlapping.
  for (std::size_t i = 1; i < deck.bias_rules.size(); ++i) {
    if (deck.bias_rules[i].space_min < deck.bias_rules[i - 1].space_max) {
      throw util::InputError("deck bias rules overlap or are unsorted");
    }
  }
  return deck;
}

RuleDeck read_rule_deck_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw util::InputError("cannot open for read: " + path);
  return read_rule_deck(f);
}

}  // namespace opckit::opc
