/// \file orc.h
/// ORC — post-OPC verification (optical rule checking).
///
/// The flip side of OPC adoption the paper stresses: once masks no longer
/// look like the design, a verification step must prove the corrected mask
/// still prints the design. ORC simulates the mask across process
/// conditions and checks edge placement, pinching (necking below a width
/// floor), bridging (spaces closing below a floor), and assist-feature
/// printing.
#pragma once

#include <vector>

#include "core/fragment.h"
#include "litho/simulator.h"
#include "util/stats.h"

namespace opckit::opc {

/// Kinds of ORC violations.
enum class OrcViolationKind { kEpe, kLostEdge, kPinch, kBridge, kSrafPrint };

/// A single flagged location.
struct OrcViolation {
  OrcViolationKind kind;
  geom::Point location;
  double value_nm = 0.0;   ///< |EPE| for kEpe; 0 otherwise
  double defocus_nm = 0.0; ///< process condition that flagged it
  double dose = 1.0;
};

/// ORC configuration.
struct OrcSpec {
  double epe_spec_nm = 10.0;        ///< |EPE| beyond this is a violation
  /// Relaxed spec for corner-adjacent sites, which measure corner
  /// rounding rather than edge placement (a sharp corner cannot print).
  double corner_epe_spec_nm = 35.0;
  geom::Coord pinch_width_nm = 90;  ///< printed width below this pinches
  geom::Coord bridge_space_nm = 90; ///< printed space below this bridges
  double probe_range_nm = 140.0;
  FragmentationSpec sampling;       ///< EPE sample sites = fragment sites
  /// Process corners to verify at (defocus nm, dose) pairs; nominal is
  /// always checked first.
  std::vector<std::pair<double, double>> corners{{200.0, 0.95},
                                                 {200.0, 1.05}};
};

/// Aggregated ORC output.
struct OrcReport {
  std::vector<OrcViolation> violations;
  util::Accumulator epe_stats;  ///< signed EPE at nominal condition
  std::size_t sites = 0;        ///< EPE sample count (per condition)

  std::size_t count(OrcViolationKind kind) const;
  bool clean() const { return violations.empty(); }
};

/// Verify \p mask (main features, with \p srafs if any) against
/// \p targets. Simulates nominal plus every corner in \p spec.corners.
OrcReport run_orc(const std::vector<geom::Polygon>& targets,
                  const std::vector<geom::Polygon>& mask,
                  const std::vector<geom::Polygon>& srafs,
                  const litho::SimSpec& spec_sim, const geom::Rect& window,
                  const OrcSpec& spec);

}  // namespace opckit::opc
