/// \file rules.h
/// Rule-based OPC — the first-generation correction the industry adopted.
///
/// Rule-based OPC applies table-driven geometric fixes with no simulation
/// in the loop: per-edge biases selected by the facing space (iso/dense
/// tables), line-end extensions with hammerheads, and corner serifs /
/// mouse bites. It is cheap and hierarchy-friendly but can only encode
/// the 1D proximity signature — exactly the limitation that drove the
/// industry to model-based OPC (reproduced by experiments F1/T1).
#pragma once

#include <vector>

#include "geometry/polygon.h"

namespace opckit::opc {

/// One row of the bias table: applies when the space facing an edge falls
/// in [space_min, space_max).
struct BiasRule {
  geom::Coord space_min = 0;
  geom::Coord space_max = 0;
  geom::Coord bias = 0;  ///< outward per-edge move (negative shrinks)
};

/// A complete rule deck.
struct RuleDeck {
  std::vector<BiasRule> bias_rules;    ///< disjoint, ascending space ranges
  geom::Coord interaction_range = 1200;

  // Line-end treatment (applies to edges classified as line ends).
  geom::Coord line_end_max = 360;      ///< classification length bound
  geom::Coord line_end_extension = 24; ///< outward tip move
  geom::Coord hammer_overhang = 28;    ///< serif size at tip corners

  // Corner treatment.
  geom::Coord serif_size = 32;         ///< square serif on convex corners
  geom::Coord mousebite_size = 24;     ///< square bite at concave corners

  bool enable_bias = true;
  bool enable_line_ends = true;
  bool enable_serifs = true;

  /// Bias for a measured space (0 when no rule matches).
  geom::Coord lookup_bias(geom::Coord space) const;
};

/// A deck with values representative of a 180 nm / KrF process, derived
/// from the proximity signature of the default SimSpec (see EXPERIMENTS.md
/// for the derivation experiment).
RuleDeck default_rule_deck_180();

/// Rule-OPC output.
struct RuleOpcResult {
  std::vector<geom::Polygon> corrected;  ///< mask polygons (post-merge)
  std::size_t biased_edges = 0;
  std::size_t line_ends = 0;
  std::size_t serifs = 0;
  std::size_t mousebites = 0;
};

/// Apply rule-based OPC to a target polygon set. Inputs are normalized
/// internally; output polygons are the merged corrected mask shapes.
RuleOpcResult apply_rule_opc(const std::vector<geom::Polygon>& targets,
                             const RuleDeck& deck);

}  // namespace opckit::opc
