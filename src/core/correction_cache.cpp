#include "core/correction_cache.h"

#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::opc {

using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;
using geom::Transform;

const char* to_string(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kSymmetryHit:
      return "symmetry-hit";
    case CacheOutcome::kConflict:
      return "conflict";
  }
  return "?";
}

Transform CorrectionCache::canonical_transform(const Key& key) {
  return Transform(key.orientation, {0, 0}) * Transform(-key.anchor);
}

namespace {

/// Layout frame -> canonical frame: translate the anchor to the origin,
/// then apply the canonicalization witness orientation.
Transform to_canonical(const CorrectionCache::Key& key) {
  return CorrectionCache::canonical_transform(key);
}

}  // namespace

CorrectionCache::Key CorrectionCache::make_key(
    const std::vector<Polygon>& targets, const Region& own_region,
    const Rect& frame) {
  Key key;
  // Anchor at the window's bbox center: canonicalization orients about
  // the origin, so only a centered window maps onto its own D4 copies
  // (pattern windows are extracted centered for the same reason). Any
  // rigid anchor would do for translation matching; centering additionally
  // makes the opt-in symmetry matching effective. The midpoint truncation
  // is a pure function of the local geometry, so translated copies always
  // agree on it (odd-sized D4 copies may disagree by 1 nm and miss —
  // a conservative failure).
  const Rect b = Region::from_polygons(targets).bbox();
  key.anchor = Point{(b.lo.x + b.hi.x) / 2, (b.lo.y + b.hi.y) / 2};
  const Region local =
      Region::from_polygons(targets).translated(-key.anchor);
  pat::OrientedCanonical canon = pat::canonicalize_oriented(local);
  key.orientation = canon.orientation;
  key.window = std::move(canon.pattern);
  key.own_canonical =
      pat::oriented(own_region.translated(-key.anchor), key.orientation)
          .rects();
  key.frame =
      Transform(key.orientation, {0, 0})(frame.translated(-key.anchor));
  return key;
}

CorrectionCache::Resolution CorrectionCache::resolve(const Key& key) {
  auto bucket = by_hash_.find(key.window.hash);
  if (bucket != by_hash_.end()) {
    bool mismatch = false;
    std::size_t symmetry_match = SIZE_MAX;
    for (std::size_t idx : bucket->second) {
      const Entry& e = entries_[idx];
      if (e.window_rects != key.window.rects ||
          e.own_rects != key.own_canonical || e.frame != key.frame) {
        // Same canonical hash, different geometry (collision), a
        // different target/context ownership split, or a different
        // simulation frame (the raster grid hangs off it): unusable.
        mismatch = true;
        continue;
      }
      // Exact canonical match. Pure translations of one another reach
      // the same canonical form through the same witness orientation
      // (canonicalize_oriented is deterministic on identical local
      // geometry), so an equal witness means translation-exact reuse;
      // a different witness means the windows differ by a genuine D4
      // frame change, which only the symmetry policy may accept — and
      // even then an exact hit later in the bucket is preferred.
      if (key.orientation == e.orientation) {
        ++stats_.hits;
        trace::metrics().counter(trace::metric::kCacheHits).add();
        return {CacheOutcome::kHit, idx};
      }
      if (symmetry_match == SIZE_MAX) symmetry_match = idx;
    }
    if (policy_.allow_symmetry && symmetry_match != SIZE_MAX) {
      ++stats_.symmetry_hits;
      trace::metrics().counter(trace::metric::kCacheSymmetryHits).add();
      return {CacheOutcome::kSymmetryHit, symmetry_match};
    }
    if (mismatch && symmetry_match == SIZE_MAX) {
      ++stats_.conflicts;
      trace::metrics().counter(trace::metric::kCacheConflicts).add();
      return {CacheOutcome::kConflict, reserve(key)};
    }
  }
  ++stats_.misses;
  trace::metrics().counter(trace::metric::kCacheMisses).add();
  return {CacheOutcome::kMiss, reserve(key)};
}

void CorrectionCache::store(std::size_t entry, const Key& key,
                            const std::vector<Polygon>& corrected) {
  OPCKIT_CHECK(entry < entries_.size());
  Entry& e = entries_[entry];
  OPCKIT_DCHECK(e.window_rects == key.window.rects);
  const Transform t = to_canonical(key);
  e.solution.clear();
  e.solution.reserve(corrected.size());
  for (const Polygon& p : corrected) e.solution.push_back(t(p));
  e.solved = true;
}

std::vector<Polygon> CorrectionCache::fetch(std::size_t entry,
                                            const Key& key) const {
  OPCKIT_CHECK(entry < entries_.size());
  const Entry& e = entries_[entry];
  OPCKIT_CHECK_MSG(e.solved, "fetch before the representative stored");
  const Transform t = to_canonical(key).inverted();
  std::vector<Polygon> out;
  out.reserve(e.solution.size());
  for (const Polygon& p : e.solution) out.push_back(t(p));
  return out;
}

store::TileRecord CorrectionCache::export_entry(std::size_t entry) const {
  OPCKIT_CHECK(entry < entries_.size());
  const Entry& e = entries_[entry];
  OPCKIT_CHECK_MSG(e.solved, "export of an unsolved cache entry");
  store::TileRecord rec;
  rec.window_rects = e.window_rects;
  rec.own_rects = e.own_rects;
  rec.frame = e.frame;
  rec.orientation = e.orientation;
  rec.solution = e.solution;
  return rec;
}

std::size_t CorrectionCache::import_entry(const store::TileRecord& record) {
  Entry e;
  e.window_rects = record.window_rects;
  e.own_rects = record.own_rects;
  e.frame = record.frame;
  e.orientation = record.orientation;
  e.solution = record.solution;
  e.solved = true;
  entries_.push_back(std::move(e));
  const std::size_t idx = entries_.size() - 1;
  by_hash_[pat::hash_rects(record.window_rects)].push_back(idx);
  return idx;
}

std::size_t CorrectionCache::reserve(const Key& key) {
  Entry e;
  e.window_rects = key.window.rects;
  e.own_rects = key.own_canonical;
  e.frame = key.frame;
  e.orientation = key.orientation;
  entries_.push_back(std::move(e));
  const std::size_t idx = entries_.size() - 1;
  by_hash_[key.window.hash].push_back(idx);
  return idx;
}

}  // namespace opckit::opc
