/// \file protocol.h
/// The opcd wire protocol: length-prefixed, CRC-framed binary messages.
///
/// ## Frame layout (version 1, little-endian)
///
/// ```
/// header (12 bytes)
///   u8[4]  magic   "OPCS"
///   u16    version (1)
///   u16    message type (MsgType)
///   u32    payload length L  (<= kMaxPayloadBytes)
/// u8[L]    payload — per-message encoding, see the *Msg structs
/// u32      crc32(payload)    — IEEE 802.3, the .ocs store polynomial
/// ```
///
/// The framing reuses the correction store's integrity discipline
/// (store::store_detail::crc32, explicit little-endian fields,
/// bounds-checked decoding): a daemon that trusts bytes off a socket
/// has exactly the store's threat model — torn writes, truncation,
/// corruption — plus hostile peers, so every validation failure maps to
/// a typed WireFault and a thrown ProtocolError, never UB, unbounded
/// allocation, or a hang. Job specs travel via core/flow_codec.h and
/// results as the `--stats json` rendering (core/render_stats_json), so
/// the daemon introduces zero new result formats.
///
/// ## Conversation
///
/// Client: kSubmit{priority, flow, paths, spec} → daemon replies
/// kAccepted{job_id, queue_depth} or kRejected{job_id, reason}. While
/// the job runs the daemon streams kProgress{phase, pass, done, total}
/// events (sourced from FlowSpec::progress), then exactly one
/// kResult{ok, stats-json | error text}. kPing/kPong echo payloads;
/// kShutdown{drain|abort} acknowledges with kShutdownAck before the
/// daemon begins draining. A malformed inbound frame earns kError and —
/// for framing faults, where resynchronization is impossible — a close.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/flow.h"
#include "util/check.h"

namespace opckit::svc {

inline constexpr std::uint8_t kMagic[4] = {'O', 'P', 'C', 'S'};
inline constexpr std::uint16_t kProtocolVersion = 1;
/// Frame payload cap. A submit carries paths + an encoded FlowSpec and a
/// result carries a stats JSON with per-tile arrays; both are far below
/// this. Anything larger is a corrupt length or a hostile peer — refuse
/// before allocating.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;
inline constexpr std::size_t kFrameHeaderSize = 4 + 2 + 2 + 4;

/// Message types on the wire. Values are wire-stable: append, never
/// renumber.
enum class MsgType : std::uint16_t {
  kSubmit = 1,
  kAccepted = 2,
  kRejected = 3,
  kProgress = 4,
  kResult = 5,
  kShutdown = 6,
  kShutdownAck = 7,
  kPing = 8,
  kPong = 9,
  kError = 10,
};

bool is_known_type(std::uint16_t v);

/// Typed classification of a malformed frame or payload — what the
/// corrupt-frame corpus asserts on.
enum class WireFault : std::uint8_t {
  kTruncated,   ///< EOF inside a frame (header or payload)
  kBadMagic,    ///< header does not start with "OPCS"
  kBadVersion,  ///< protocol version this build does not speak
  kBadType,     ///< message type outside the MsgType table
  kOversized,   ///< payload length above kMaxPayloadBytes
  kBadCrc,      ///< payload checksum mismatch
  kBadPayload,  ///< frame intact but the payload decode failed
};

const char* to_string(WireFault fault);

/// Thrown by frame/payload decoding. Derives util::InputError so callers
/// that only care about "bad input" keep working; the daemon reads
/// fault() to build its kError reply and decide whether the stream is
/// resynchronizable (payload faults are; framing faults are not).
class ProtocolError : public util::InputError {
 public:
  ProtocolError(WireFault fault, const std::string& what)
      : util::InputError("service protocol: " + what), fault_(fault) {}
  WireFault fault() const { return fault_; }

 private:
  WireFault fault_;
};

/// Byte-stream the protocol runs over. Virtual so tests can interpose
/// partial-read/partial-write injection (the frame layer must be correct
/// for ANY legal chunking, not just the one the kernel happens to give).
class Stream {
 public:
  virtual ~Stream() = default;
  /// Read up to \p n bytes into \p buf; returns the count read, 0 on
  /// end-of-stream. Throws util::InputError on I/O error.
  virtual std::size_t read_some(void* buf, std::size_t n) = 0;
  /// Write up to \p n bytes (at least 1) from \p buf; returns the count
  /// written. Throws util::InputError on I/O error.
  virtual std::size_t write_some(const void* buf, std::size_t n) = 0;
};

/// Read exactly \p n bytes. Returns false on clean end-of-stream before
/// the first byte (only when \p eof_ok_at_start); EOF after at least one
/// byte — or when EOF is not acceptable — throws
/// ProtocolError(kTruncated).
bool read_exact(Stream& s, void* buf, std::size_t n, bool eof_ok_at_start);

/// Write all \p n bytes, looping over short writes.
void write_all(Stream& s, const void* buf, std::size_t n);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Frame \p payload under \p type and write it to \p s.
void write_frame(Stream& s, MsgType type,
                 const std::vector<std::uint8_t>& payload);

/// Read one frame. Returns nullopt on clean end-of-stream at a frame
/// boundary; throws ProtocolError on anything malformed (see WireFault).
std::optional<Frame> read_frame(Stream& s);

// ---- messages ---------------------------------------------------------

/// Why a submission was refused admission.
enum class RejectReason : std::uint16_t {
  kQueueFull = 1,  ///< admission queue at max_queue
  kDraining = 2,   ///< daemon is shutting down
  kBadJob = 3,     ///< request decoded but described an unrunnable job
};

const char* to_string(RejectReason reason);

/// kSubmit — one OPC job: what `opckit opc` takes on the command line,
/// as data. The spec travels through core/flow_codec.h, so daemon and
/// single-process runs share one deserialization and one fingerprint.
struct SubmitMsg {
  std::int32_t priority = 0;  ///< higher runs first (queue + pool order)
  std::uint8_t flow = 0;      ///< 0 = flat, 1 = cell
  std::string in_path;        ///< input GDSII (daemon-local path)
  std::string out_path;       ///< output GDSII (daemon-local path)
  std::string top;            ///< top cell; empty = sole top of the library
  opc::FlowSpec spec;
};

struct AcceptedMsg {
  std::uint64_t job_id = 0;
  std::uint32_t queue_depth = 0;  ///< jobs waiting after this admission
};

struct RejectedMsg {
  std::uint64_t job_id = 0;  ///< 0 when refused before an id was assigned
  RejectReason reason = RejectReason::kBadJob;
  std::string message;
};

struct ProgressMsg {
  std::uint64_t job_id = 0;
  std::int32_t pass = 0;
  std::string phase;
  std::uint64_t tiles_done = 0;
  std::uint64_t tiles_total = 0;
};

struct ResultMsg {
  std::uint64_t job_id = 0;
  bool ok = false;
  /// ok: render_stats_json of the run. !ok: human-readable error text.
  std::string payload;
};

/// kShutdown payload.
enum class ShutdownMode : std::uint8_t {
  kDrain = 0,  ///< in-flight jobs finish; queued jobs rejected
  kAbort = 1,  ///< in-flight jobs cancelled at their next phase boundary
};

struct ShutdownMsg {
  ShutdownMode mode = ShutdownMode::kDrain;
};

struct ErrorMsg {
  std::uint16_t code = 0;  ///< WireFault value, or 100 for server errors
  std::string message;
};

inline constexpr std::uint16_t kErrorCodeServer = 100;

std::vector<std::uint8_t> encode_submit(const SubmitMsg& m);
std::vector<std::uint8_t> encode_accepted(const AcceptedMsg& m);
std::vector<std::uint8_t> encode_rejected(const RejectedMsg& m);
std::vector<std::uint8_t> encode_progress(const ProgressMsg& m);
std::vector<std::uint8_t> encode_result(const ResultMsg& m);
std::vector<std::uint8_t> encode_shutdown(const ShutdownMsg& m);
std::vector<std::uint8_t> encode_error(const ErrorMsg& m);

/// Payload decoders: throw ProtocolError(kBadPayload) on malformation —
/// truncated field, out-of-range enum, oversized string, trailing bytes.
SubmitMsg decode_submit(const std::vector<std::uint8_t>& payload);
AcceptedMsg decode_accepted(const std::vector<std::uint8_t>& payload);
RejectedMsg decode_rejected(const std::vector<std::uint8_t>& payload);
ProgressMsg decode_progress(const std::vector<std::uint8_t>& payload);
ResultMsg decode_result(const std::vector<std::uint8_t>& payload);
ShutdownMsg decode_shutdown(const std::vector<std::uint8_t>& payload);
ErrorMsg decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace opckit::svc
