/// \file library.h
/// The daemon's shared pattern-correction library: the cross-job,
/// cross-client reuse layer that makes opcd more than a socket wrapper.
///
/// A single-process flow only reuses corrections within its own
/// CorrectionCache (and, with a store, across its own restarts). The
/// daemon instead keeps one shelf of solved pattern classes per flow
/// fingerprint, feeds a snapshot into every job as FlowSpec::preload,
/// and collects every fresh solve back through FlowSpec::record_sink —
/// so the thousandth request for a repetitive layout family replays
/// almost everything, regardless of which client submitted the first.
///
/// ## Why snapshots, not a shared cache
///
/// CorrectionCache is deliberately not thread-safe (the flow resolves in
/// a serial phase). Two concurrent jobs therefore each get a COPY of the
/// shelf at admission time and their own private cache. Records solved
/// by job A while job B runs simply miss B's snapshot and are re-solved
/// — a bounded duplication cost, never a correctness issue, because
/// replay is translation-exact: preloading more or fewer records cannot
/// change any job's output bytes. add() deduplicates by full record
/// equality, so the shelf converges to one record per pattern class.
///
/// ## Durability and crash resume
///
/// With a directory configured, each shelf is backed by
/// `<dir>/<fingerprint-hex>.ocs` — the standard correction store format,
/// fsynced per append (store::ResultStore sync_on_append) so a record
/// acknowledged to any client survives a daemon crash. The first job
/// under a fingerprint loads the existing file (torn tails recover per
/// the store contract), which is exactly the daemon restart path: a new
/// opcd over the same library directory replays everything its
/// predecessor solved, byte-identical to an uninterrupted process.
/// Fingerprint-keyed file names make cross-setup replay structurally
/// impossible, on top of the store's own STO001 gate.
///
/// ## Near-match retrieval
///
/// Each shelf additionally keeps a pat::PatternLibrary — the same solves
/// with their warm-start seeds, indexed in feature space — persisted to
/// `<dir>/<fingerprint-hex>.ocl` alongside the .ocs file. Jobs that
/// submit a library_budget > 0 get an immutable clone (FlowSpec::library)
/// so tiles that miss exact replay can warm-start from the nearest
/// solved pattern, and feed fresh solves back through
/// FlowSpec::library_sink. Seeds survive restarts like the records do.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pattern/library.h"
#include "store/result_store.h"

namespace opckit::svc {

/// Process-wide library of solved pattern classes, sharded by flow
/// fingerprint. All methods are thread-safe (one mutex — shelf work is
/// memory-bound copying, orders of magnitude cheaper than one solve).
class CorrectionLibrary {
 public:
  struct Options {
    /// Directory for the per-fingerprint .ocs files. Empty = memory-only
    /// (no durability, no crash resume) — tests and throwaway servers.
    std::string dir;
    /// fsync per appended record (the daemon default). See
    /// store::ResultStore::sync_on_append.
    bool sync_on_append = true;
  };

  explicit CorrectionLibrary(Options opts) : opts_(std::move(opts)) {}

  /// Copy of the shelf for \p fingerprint, loading its .ocs file on
  /// first touch (the crash-resume path). The copy is the caller's to
  /// keep alive for the duration of a run (FlowSpec::preload points at
  /// it).
  std::vector<store::TileRecord> snapshot(std::uint64_t fingerprint);

  /// Insert one freshly solved record: deduplicated by full record
  /// equality, appended (and fsynced, per Options) to the shelf's file.
  /// Safe from concurrent jobs' merge phases.
  void add(std::uint64_t fingerprint, const store::TileRecord& record);

  /// Records currently shelved for \p fingerprint (loads on first touch).
  std::size_t size(std::uint64_t fingerprint);

  /// Immutable clone of the shelf's pattern library (near-match index +
  /// warm-start seeds), loading its .ocl file on first touch. The clone
  /// is the caller's to keep alive for a run (FlowSpec::library points
  /// at it).
  pat::PatternLibrary pattern_snapshot(std::uint64_t fingerprint);

  /// Insert one freshly solved library record (exact-replay tile +
  /// warm-start seeds): deduplicated by tile equality, appended (and
  /// fsynced, per Options) to the shelf's .ocl file. Safe from
  /// concurrent jobs' merge phases.
  void add_pattern(std::uint64_t fingerprint, const pat::LibraryRecord& rec);

  /// Pattern-library entries shelved for \p fingerprint.
  std::size_t pattern_count(std::uint64_t fingerprint);

  /// The backing .ocs file for \p fingerprint; empty when memory-only.
  std::string path_for(std::uint64_t fingerprint) const;

  /// The backing .ocl pattern-library file; empty when memory-only.
  std::string pattern_path_for(std::uint64_t fingerprint) const;

 private:
  struct Shelf {
    std::vector<store::TileRecord> records;
    /// window-geometry hash -> record indices (dedup prefilter).
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
    std::optional<store::ResultStore> store;
    /// Near-match retrieval index (file-backed under Options::dir).
    pat::PatternLibrary patterns;
  };

  /// Get-or-load the shelf. Caller holds mutex_.
  Shelf& shelf_locked(std::uint64_t fingerprint);

  Options opts_;
  std::mutex mutex_;
  std::map<std::uint64_t, Shelf> shelves_;
};

}  // namespace opckit::svc
