#include "service/server.h"

#include <unistd.h>

#include <exception>
#include <optional>

#include "layout/gdsii.h"
#include "layout/library.h"
#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::svc {

namespace {

/// Forward one FlowProgress event as a kProgress frame. Phase starts
/// always ship; per-tile merge ticks are throttled (every 32nd plus the
/// final one) so a many-tile merge is not dominated by socket writes.
bool should_send_progress(const opc::FlowProgress& p) {
  if (p.tiles_done == 0 || p.tiles_done == p.tiles_total) return true;
  return p.tiles_done % 32 == 0;
}

}  // namespace

void Server::Connection::send(MsgType type,
                              const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(write_mutex);
  if (dead.load(std::memory_order_relaxed)) return;
  try {
    write_frame(*stream, type, payload);
  } catch (const std::exception&) {
    // The client vanished. Its job still runs to completion (results are
    // durable in the library), we just stop talking to it.
    dead.store(true, std::memory_order_relaxed);
  }
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), library_(opts_.library) {}

Server::~Server() { stop(); }

void Server::start() {
  OPCKIT_CHECK_MSG(!started_, "Server::start() called twice");
  OPCKIT_CHECK_MSG(opts_.use_tcp != !opts_.unix_path.empty(),
                   "ServerOptions: choose exactly one of unix_path / use_tcp");
  if (opts_.use_tcp) {
    listen_fd_ = listen_tcp(opts_.tcp_port, &bound_port_);
  } else {
    listen_fd_ = listen_unix(opts_.unix_path);
  }
  pool_ = std::make_unique<util::ThreadPool>(
      opts_.workers < 0 ? 1 : static_cast<std::size_t>(opts_.workers));
  max_inflight_ =
      opts_.max_inflight == 0 ? pool_->size() : opts_.max_inflight;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = accept_with_timeout(listen_fd_, 200);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      reap_connections_locked();
    }
    if (fd < 0) continue;  // timeout or EINTR: re-check stopping_
    auto conn = std::make_shared<Connection>();
    conn->stream = std::make_unique<FdStream>(fd);
    conn->thread = std::thread([this, conn] { serve_connection(conn); });
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(conn);
  }
}

void Server::reap_connections_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::serve_connection(const std::shared_ptr<Connection>& conn) {
  auto& protocol_errors =
      trace::metrics().counter(trace::metric::kSvcProtocolErrors);
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(*conn->stream);
    } catch (const ProtocolError& e) {
      // Framing fault: the byte stream is unparseable past this point, so
      // report and hang up. Resynchronization is impossible by design —
      // scanning for the next magic would mistake payload bytes for
      // frames.
      protocol_errors.add();
      conn->send(MsgType::kError,
                 encode_error({static_cast<std::uint16_t>(e.fault()),
                               e.what()}));
      break;
    } catch (const std::exception&) {
      break;  // socket error — peer is gone
    }
    if (!frame) break;  // clean EOF at a frame boundary

    try {
      handle_frame(conn, *frame);
    } catch (const ProtocolError& e) {
      // Payload fault: the frame itself was intact (CRC passed), so the
      // stream stays synchronized — report and keep serving.
      protocol_errors.add();
      conn->send(MsgType::kError,
                 encode_error({static_cast<std::uint16_t>(e.fault()),
                               e.what()}));
    } catch (const std::exception& e) {
      conn->send(MsgType::kError, encode_error({kErrorCodeServer, e.what()}));
    }
  }
  conn->done.store(true, std::memory_order_release);
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  switch (frame.type) {
    case MsgType::kSubmit:
      trace::metrics().counter(trace::metric::kSvcJobsSubmitted).add();
      admit(conn, decode_submit(frame.payload));
      return;
    case MsgType::kPing:
      conn->send(MsgType::kPong, frame.payload);
      return;
    case MsgType::kShutdown: {
      const ShutdownMsg msg = decode_shutdown(frame.payload);
      conn->send(MsgType::kShutdownAck, {});
      request_shutdown(msg.mode);
      return;
    }
    default:
      // Structurally valid but not a client->server message.
      conn->send(MsgType::kError,
                 encode_error({kErrorCodeServer,
                               "unexpected message type from client"}));
      return;
  }
}

void Server::admit(const std::shared_ptr<Connection>& conn, SubmitMsg msg) {
  auto& m = trace::metrics();
  if (msg.in_path.empty() || msg.out_path.empty()) {
    m.counter(trace::metric::kSvcJobsRejected).add();
    RejectedMsg rej;
    rej.reason = RejectReason::kBadJob;
    rej.message = "submit requires input and output paths";
    conn->send(MsgType::kRejected, encode_rejected(rej));
    return;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    m.counter(trace::metric::kSvcJobsRejected).add();
    RejectedMsg rej;
    rej.reason = RejectReason::kDraining;
    rej.message = "daemon is draining";
    conn->send(MsgType::kRejected, encode_rejected(rej));
    return;
  }
  if (pending_.size() >= opts_.max_queue) {
    m.counter(trace::metric::kSvcJobsRejected).add();
    RejectedMsg rej;
    rej.reason = RejectReason::kQueueFull;
    rej.message = "admission queue is full (max_queue = " +
                  std::to_string(opts_.max_queue) + ")";
    conn->send(MsgType::kRejected, encode_rejected(rej));
    return;
  }

  auto job = std::make_shared<Job>();
  job->id = ++next_job_id_;
  job->msg = std::move(msg);
  job->conn = conn;
  job->admitted = std::chrono::steady_clock::now();
  pending_.emplace(
      std::make_pair(-static_cast<long long>(job->msg.priority), queue_seq_++),
      job);
  m.counter(trace::metric::kSvcJobsAccepted).add();
  m.gauge(trace::metric::kSvcQueueDepth).add(1.0);

  AcceptedMsg acc;
  acc.job_id = job->id;
  acc.queue_depth = static_cast<std::uint32_t>(pending_.size());
  conn->send(MsgType::kAccepted, encode_accepted(acc));
  pump_locked();
}

void Server::pump_locked() {
  while (!draining_ && running_.size() < max_inflight_ &&
         !pending_.empty()) {
    auto it = pending_.begin();
    std::shared_ptr<Job> job = it->second;
    const int priority = job->msg.priority;
    pending_.erase(it);
    trace::metrics().gauge(trace::metric::kSvcQueueDepth).add(-1.0);
    running_.push_back(job);
    pool_->submit([this, job] { run_job(job); }, priority);
  }
}

void Server::run_job(const std::shared_ptr<Job>& job) {
  // No locks held here: a blocking hook must not stall admission.
  if (opts_.job_start_hook) opts_.job_start_hook(job->id);
  auto& m = trace::metrics();
  m.gauge(trace::metric::kSvcJobsInflight).add(1.0);

  ResultMsg result;
  result.job_id = job->id;
  try {
    layout::Library lib = layout::read_gdsii_file(job->msg.in_path);
    std::string top = job->msg.top;
    if (top.empty()) {
      const std::vector<std::string> tops = lib.top_cells();
      if (tops.size() != 1) {
        throw util::InputError(
            "submit: no top cell named and the library has " +
            std::to_string(tops.size()) + " top cells");
      }
      top = tops.front();
    }

    opc::FlowSpec spec = job->msg.spec;
    const char* kind = job->msg.flow == 1 ? "cell" : "flat";

    // The daemon owns durability through the shared library, never
    // through a per-job store or pattern-library file — two concurrent
    // jobs with equal fingerprints must not append to one file from two
    // caches. library_path is cleared BEFORE fingerprinting so the shelf
    // key depends on the solver knobs (library_budget included), not on
    // whatever path the client happened to name.
    spec.store_path.clear();
    spec.resume = false;
    spec.store_sync = false;
    spec.library_path.clear();
    const std::uint64_t fp = opc::flow_fingerprint(spec, kind);

    const std::vector<store::TileRecord> shelf = library_.snapshot(fp);
    if (spec.cache && !shelf.empty()) spec.preload = &shelf;
    pat::PatternLibrary patterns;
    if (spec.cache && spec.library_budget > 0.0) {
      patterns = library_.pattern_snapshot(fp);
      if (patterns.size() > 0) spec.library = &patterns;
    }
    if (spec.cache) {
      spec.record_sink = [this, fp](const store::TileRecord& rec) {
        library_.add(fp, rec);
      };
      spec.library_sink = [this, fp](const pat::LibraryRecord& rec) {
        library_.add_pattern(fp, rec);
      };
    }
    spec.cancel = &job->cancel;
    spec.progress = [&job](const opc::FlowProgress& p) {
      if (!should_send_progress(p)) return;
      ProgressMsg msg;
      msg.job_id = job->id;
      msg.pass = p.pass;
      msg.phase = std::string(p.phase);
      msg.tiles_done = p.tiles_done;
      msg.tiles_total = p.tiles_total;
      job->conn->send(MsgType::kProgress, encode_progress(msg));
    };

    opc::FlowStats stats;
    try {
      stats = job->msg.flow == 1 ? opc::run_cell_opc(lib, top, spec)
                                 : opc::run_flat_opc(lib, top, spec);
    } catch (const opc::MrcGateError&) {
      // Signoff rejects a mask, it does not destroy it: persist the
      // corrected-but-violating output for inspection, then fail the job.
      layout::write_gdsii_file(lib, job->msg.out_path);
      throw;
    }
    layout::write_gdsii_file(lib, job->msg.out_path);

    result.ok = true;
    result.payload = opc::render_stats_json(stats);

    const std::uint64_t hits = stats.cache_hits;
    const std::uint64_t lookups =
        stats.cache_hits + stats.cache_misses + stats.cache_conflicts;
    m.counter(trace::metric::kSvcCacheHits).add(hits);
    m.counter(trace::metric::kSvcCacheLookups).add(lookups);
    m.counter(trace::metric::kSvcJobsCompleted).add();
  } catch (const std::exception& e) {
    result.ok = false;
    result.payload = e.what();
    m.counter(trace::metric::kSvcJobsFailed).add();
  }

  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - job->admitted)
          .count();
  m.histogram(trace::metric::kSvcJobLatencyMs).observe(latency_ms);
  m.gauge(trace::metric::kSvcJobsInflight).add(-1.0);

  job->conn->send(MsgType::kResult, encode_result(result));

  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = running_.begin(); it != running_.end(); ++it) {
    if (it->get() == job.get()) {
      running_.erase(it);
      break;
    }
  }
  pump_locked();
  cv_.notify_all();
}

void Server::request_shutdown(ShutdownMode mode) {
  std::vector<std::shared_ptr<Job>> rejected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    shutdown_requested_ = true;
    for (auto& [key, job] : pending_) rejected.push_back(job);
    pending_.clear();
    if (!rejected.empty()) {
      trace::metrics()
          .gauge(trace::metric::kSvcQueueDepth)
          .add(-static_cast<double>(rejected.size()));
    }
    if (mode == ShutdownMode::kAbort) {
      for (auto& job : running_) {
        job->cancel.store(true, std::memory_order_relaxed);
      }
    }
    shutdown_cv_.notify_all();
  }
  for (auto& job : rejected) {
    trace::metrics().counter(trace::metric::kSvcJobsRejected).add();
    RejectedMsg rej;
    rej.job_id = job->id;
    rej.reason = RejectReason::kDraining;
    rej.message = "daemon is draining; job was queued but not started";
    job->conn->send(MsgType::kRejected, encode_rejected(rej));
  }
}

bool Server::wait_shutdown_requested(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] { return shutdown_requested_; });
}

void Server::stop() {
  if (!started_) return;
  started_ = false;

  // Reject everything still queued, then stop accepting.
  request_shutdown(ShutdownMode::kDrain);
  stopping_.store(true, std::memory_order_relaxed);
  accept_thread_.join();

  // Drain: in-flight jobs run to completion (or to their cancel poll).
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return running_.empty(); });
  }

  // Wake connection readers blocked in recv and join them.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) {
    conn->stream->shutdown_both();
    conn->thread.join();
  }

  pool_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!opts_.use_tcp) ::unlink(opts_.unix_path.c_str());
}

}  // namespace opckit::svc
