/// \file server.h
/// opcd — the long-running OPC service daemon.
///
/// A single process owns every process-wide hot cache (SOCS kernel sets,
/// FFT plans, the shared CorrectionLibrary) and runs OPC jobs submitted
/// over a unix-domain or loopback-TCP socket, so repeated jobs pay the
/// setup cost once instead of per `opckit opc` invocation. Each job runs
/// the exact same run_flat_opc / run_cell_opc entry points as the CLI —
/// the daemon only adds admission, scheduling, and reuse around them, so
/// a job's output GDSII is byte-identical to the equivalent
/// single-process run (experiment T9 asserts this).
///
/// ## Threads and admission
///
/// * One **accept thread** poll-loops on the listener and spawns one
///   **connection thread** per client; each connection thread blocks in
///   read_frame and handles Submit/Ping/Shutdown messages.
/// * Submissions enter a bounded **admission queue** (max_queue), keyed
///   by (priority, arrival order). At most max_inflight jobs run at once
///   on the shared util::ThreadPool (submit() with the job's priority,
///   so the pool agrees with the queue about who goes first). A full
///   queue rejects with kQueueFull — backpressure is explicit and typed,
///   never an unbounded buffer.
/// * Jobs run spec.jobs = 1 style inside a pool worker by default
///   semantics of the flow (its parallel phases run inline on the pool
///   worker — see the nested-use rule in util/thread_pool.h), so daemon
///   concurrency comes from running max_inflight jobs side by side.
///
/// ## Shutdown
///
/// request_shutdown(kDrain) — the SIGTERM path — atomically flips the
/// daemon into draining: queued-but-not-started jobs are rejected with
/// kDraining, new submissions are rejected on arrival, and in-flight
/// jobs run to completion; every record they solved is already fsynced
/// in the library, so nothing acknowledged is lost. kAbort additionally
/// raises each running job's FlowSpec::cancel flag — the flow stops at
/// its next phase boundary with FlowAborted and the client gets a
/// failed ResultMsg. stop() then joins everything. A daemon that
/// crashes instead of draining restarts cleanly: the library directory
/// replays its .ocs shelves (torn tails recover per the store contract)
/// and re-submitted jobs produce byte-identical output.
///
/// ## Metrics
///
/// The admission/run path drives the svc.* series (docs/METRICS.md):
/// jobs_submitted/accepted/rejected at admission; queue_depth and
/// jobs_inflight as +/- gauges; jobs_completed/jobs_failed and the
/// job_latency_ms histogram (admission to result frame) at completion;
/// cache_hits/cache_lookups aggregated from each job's FlowStats so the
/// daemon's cross-job reuse ratio is one division away; protocol_errors
/// for malformed frames.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/library.h"
#include "service/protocol.h"
#include "service/socket.h"
#include "util/thread_pool.h"

namespace opckit::svc {

struct ServerOptions {
  /// Unix-domain socket path. Non-empty = listen here (the default
  /// transport; file permissions are the access control).
  std::string unix_path;
  /// Listen on loopback TCP instead (port 0 = ephemeral; see tcp_port()
  /// after start()). Exactly one of unix_path / use_tcp must be chosen.
  bool use_tcp = false;
  std::uint16_t tcp_port = 0;
  /// Worker threads in the job pool (0 = hardware concurrency).
  int workers = 0;
  /// Admission queue bound: submissions beyond this many waiting jobs
  /// are rejected with kQueueFull.
  std::size_t max_queue = 64;
  /// Jobs running concurrently (0 = one per pool worker).
  std::size_t max_inflight = 0;
  /// Shared correction library config (directory = durable).
  CorrectionLibrary::Options library;
  /// Test instrumentation: called on the pool worker with the job id the
  /// moment a dequeued job starts, before any work. A blocking hook
  /// holds the job's inflight slot open (admission and queueing continue
  /// normally), which lets tests pin scheduler states that are otherwise
  /// races against job runtime. Never set in production.
  std::function<void(std::uint64_t)> job_start_hook;
};

/// The daemon. Construct, start(), then either wait_shutdown_requested()
/// in a signal loop (what `opckit serve` does) or drive it from tests;
/// stop() (or the destructor) drains and joins everything.
class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listener, start the pool and the accept thread. Throws
  /// util::InputError when the endpoint cannot be bound.
  void start();

  /// Drain and tear down: reject queued jobs, wait for in-flight jobs,
  /// close every connection, join all threads. Idempotent. Must be
  /// called from the owning thread (not a connection handler) — protocol
  /// shutdown requests go through request_shutdown() instead.
  void stop();

  /// Flip into draining (reject queued + new jobs; kAbort also cancels
  /// running jobs) and wake wait_shutdown_requested(). Safe from any
  /// thread, including connection handlers and signal-watcher loops.
  void request_shutdown(ShutdownMode mode);

  /// Block until request_shutdown() was called or \p timeout_ms elapsed;
  /// returns true when shutdown was requested. The `opckit serve` main
  /// loop alternates this with checking its SIGTERM flag.
  bool wait_shutdown_requested(int timeout_ms);

  /// The bound TCP port (after start(), when use_tcp).
  std::uint16_t tcp_port() const { return bound_port_; }

  /// The shared cross-job correction library (tests inspect shelf sizes).
  CorrectionLibrary& library() { return library_; }

 private:
  /// One client connection: the socket, its reader thread, and a
  /// write-side mutex so job threads (progress/result frames) and the
  /// reader thread (acks/errors) interleave at frame granularity.
  struct Connection {
    std::unique_ptr<FdStream> stream;
    std::thread thread;
    std::mutex write_mutex;
    std::atomic<bool> dead{false};  ///< write failed; drop further frames
    std::atomic<bool> done{false};  ///< reader thread finished (reapable)

    /// Frame + send, serialized; send failures mark the connection dead
    /// and are swallowed (a vanished client must not kill its job).
    void send(MsgType type, const std::vector<std::uint8_t>& payload);
  };

  /// One admitted job.
  struct Job {
    std::uint64_t id = 0;
    SubmitMsg msg;
    std::shared_ptr<Connection> conn;
    std::atomic<bool> cancel{false};
    std::chrono::steady_clock::time_point admitted;
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const Frame& frame);
  void admit(const std::shared_ptr<Connection>& conn, SubmitMsg msg);
  /// Move queued jobs onto the pool while inflight capacity remains.
  /// Caller holds mutex_.
  void pump_locked();
  void run_job(const std::shared_ptr<Job>& job);
  void reap_connections_locked();

  ServerOptions opts_;
  CorrectionLibrary library_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::size_t max_inflight_ = 1;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex mutex_;
  std::condition_variable cv_;           ///< running_ drained
  std::condition_variable shutdown_cv_;  ///< request_shutdown() arrived
  bool draining_ = false;
  bool shutdown_requested_ = false;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t queue_seq_ = 0;
  /// Admission queue: (-priority, arrival seq) -> job. begin() is the
  /// next job to run — highest priority, FIFO within a priority.
  std::map<std::pair<long long, std::uint64_t>, std::shared_ptr<Job>>
      pending_;
  std::vector<std::shared_ptr<Job>> running_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace opckit::svc
