/// \file client.h
/// Blocking client for the opcd protocol: one conversation at a time
/// over one connection. `opckit submit` / `opckit shutdown` and the
/// service tests/bench drive the daemon exclusively through this class,
/// so the wire conversation has exactly one client-side implementation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "service/protocol.h"

namespace opckit::svc {

class Client {
 public:
  /// Takes ownership of a connected stream (see connect_unix/connect_tcp).
  explicit Client(std::unique_ptr<Stream> stream)
      : stream_(std::move(stream)) {}

  /// Everything the daemon said about one submitted job.
  struct Outcome {
    bool accepted = false;  ///< false: see `rejected`
    AcceptedMsg ack;
    RejectedMsg rejected;
    ResultMsg result;  ///< meaningful only when accepted
    std::vector<ProgressMsg> progress;
  };

  /// Submit one job and block until its terminal frame (kRejected or
  /// kResult). Progress frames are collected into the Outcome and, when
  /// given, forwarded to \p on_progress as they arrive. Throws
  /// ProtocolError on malformed daemon frames and util::InputError when
  /// the daemon reports kError or the connection drops mid-job.
  Outcome run_job(const SubmitMsg& submit,
                  const std::function<void(const ProgressMsg&)>& on_progress =
                      nullptr);

  /// Round-trip a kPing (liveness probe).
  void ping();

  /// Request daemon shutdown; returns once kShutdownAck arrives.
  void shutdown_server(ShutdownMode mode);

 private:
  /// Read the next frame; throws on EOF (the daemon hung up mid
  /// conversation) and surfaces kError frames as util::InputError.
  Frame next_frame();

  std::unique_ptr<Stream> stream_;
};

}  // namespace opckit::svc
