#include "service/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace opckit::svc {
namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw util::InputError("service socket: " + what + ": " +
                         std::strerror(errno));
}

int checked_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) sys_fail("socket() failed");
  return fd;
}

}  // namespace

FdStream::~FdStream() {
  if (fd_ >= 0) ::close(fd_);
}

void FdStream::shutdown_both() { ::shutdown(fd_, SHUT_RDWR); }

std::size_t FdStream::read_some(void* buf, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd_, buf, n, 0);
    if (r >= 0) return static_cast<std::size_t>(r);
    if (errno == EINTR) continue;
    sys_fail("recv() failed");
  }
}

std::size_t FdStream::write_some(const void* buf, std::size_t n) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-frame must surface as an
    // error on THIS call, not a process-wide SIGPIPE.
    const ssize_t r = ::send(fd_, buf, n, MSG_NOSIGNAL);
    if (r > 0) return static_cast<std::size_t>(r);
    if (r < 0 && errno == EINTR) continue;
    sys_fail("send() failed");
  }
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw util::InputError("service socket: unix path '" + path +
                           "' exceeds sockaddr_un capacity");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  ::unlink(path.c_str());  // stale socket from a previous daemon
  const int fd = checked_socket(AF_UNIX);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    sys_fail("bind('" + path + "') failed");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    sys_fail("listen('" + path + "') failed");
  }
  return fd;
}

int listen_tcp(std::uint16_t port, std::uint16_t* bound_port, int backlog) {
  const int fd = checked_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    sys_fail("bind(127.0.0.1:" + std::to_string(port) + ") failed");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    sys_fail("listen(127.0.0.1:" + std::to_string(port) + ") failed");
  }
  if (bound_port) {
    sockaddr_in got{};
    socklen_t len = sizeof got;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&got), &len) != 0) {
      ::close(fd);
      sys_fail("getsockname() failed");
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

std::unique_ptr<FdStream> connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw util::InputError("service socket: unix path '" + path +
                           "' exceeds sockaddr_un capacity");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = checked_socket(AF_UNIX);
  int rc = 0;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    sys_fail("connect('" + path + "') failed — is opcd running?");
  }
  return std::make_unique<FdStream>(fd);
}

std::unique_ptr<FdStream> connect_tcp(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int fd = checked_socket(AF_INET);
  int rc = 0;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    sys_fail("connect(127.0.0.1:" + std::to_string(port) +
             ") failed — is opcd running?");
  }
  return std::make_unique<FdStream>(fd);
}

int accept_with_timeout(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) return -1;  // let the caller re-check its flags
      sys_fail("poll() failed");
    }
    if (rc == 0) return -1;  // timeout
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    sys_fail("accept() failed");
  }
}

}  // namespace opckit::svc
