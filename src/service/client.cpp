#include "service/client.h"

#include "util/check.h"

namespace opckit::svc {

Frame Client::next_frame() {
  std::optional<Frame> frame = read_frame(*stream_);
  if (!frame) {
    throw util::InputError(
        "service client: daemon closed the connection mid-conversation");
  }
  if (frame->type == MsgType::kError) {
    const ErrorMsg err = decode_error(frame->payload);
    throw util::InputError("service client: daemon reported error " +
                           std::to_string(err.code) + ": " + err.message);
  }
  return std::move(*frame);
}

Client::Outcome Client::run_job(
    const SubmitMsg& submit,
    const std::function<void(const ProgressMsg&)>& on_progress) {
  write_frame(*stream_, MsgType::kSubmit, encode_submit(submit));

  Outcome out;
  for (;;) {
    const Frame frame = next_frame();
    switch (frame.type) {
      case MsgType::kAccepted:
        out.accepted = true;
        out.ack = decode_accepted(frame.payload);
        break;
      case MsgType::kRejected:
        out.accepted = false;
        out.rejected = decode_rejected(frame.payload);
        return out;
      case MsgType::kProgress: {
        ProgressMsg p = decode_progress(frame.payload);
        if (on_progress) on_progress(p);
        out.progress.push_back(std::move(p));
        break;
      }
      case MsgType::kResult:
        out.result = decode_result(frame.payload);
        return out;
      default:
        throw ProtocolError(WireFault::kBadType,
                            "unexpected frame type " +
                                std::to_string(static_cast<unsigned>(
                                    frame.type)) +
                                " while awaiting job result");
    }
  }
}

void Client::ping() {
  const std::vector<std::uint8_t> payload = {'o', 'p', 'c'};
  write_frame(*stream_, MsgType::kPing, payload);
  const Frame frame = next_frame();
  if (frame.type != MsgType::kPong || frame.payload != payload) {
    throw ProtocolError(WireFault::kBadType,
                        "ping was not answered with a matching pong");
  }
}

void Client::shutdown_server(ShutdownMode mode) {
  ShutdownMsg msg;
  msg.mode = mode;
  write_frame(*stream_, MsgType::kShutdown, encode_shutdown(msg));
  const Frame frame = next_frame();
  if (frame.type != MsgType::kShutdownAck) {
    throw ProtocolError(WireFault::kBadType,
                        "shutdown was not acknowledged");
  }
}

}  // namespace opckit::svc
