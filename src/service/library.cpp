#include "service/library.h"

#include <filesystem>
#include <utility>

#include "pattern/canonical.h"
#include "util/check.h"

namespace opckit::svc {
namespace {

std::string fingerprint_hex(std::uint64_t fingerprint) {
  // Fixed-width lowercase hex: stable names, trivially greppable against
  // `opckit opc --stats` fingerprint output.
  static const char* kHex = "0123456789abcdef";
  std::string name(16, '0');
  for (int i = 15; i >= 0; --i) {
    name[static_cast<std::size_t>(i)] = kHex[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return name;
}

}  // namespace

std::string CorrectionLibrary::path_for(std::uint64_t fingerprint) const {
  if (opts_.dir.empty()) return {};
  return (std::filesystem::path(opts_.dir) /
          (fingerprint_hex(fingerprint) + ".ocs"))
      .string();
}

std::string CorrectionLibrary::pattern_path_for(
    std::uint64_t fingerprint) const {
  if (opts_.dir.empty()) return {};
  return (std::filesystem::path(opts_.dir) /
          (fingerprint_hex(fingerprint) + ".ocl"))
      .string();
}

CorrectionLibrary::Shelf& CorrectionLibrary::shelf_locked(
    std::uint64_t fingerprint) {
  auto it = shelves_.find(fingerprint);
  if (it != shelves_.end()) return it->second;

  Shelf& shelf = shelves_[fingerprint];
  if (opts_.dir.empty()) return shelf;

  std::filesystem::create_directories(opts_.dir);
  const std::string path = path_for(fingerprint);
  if (std::filesystem::exists(path)) {
    // Daemon restart / crash resume: adopt whatever the predecessor
    // persisted (torn tails recover per the store contract) and keep
    // appending after the last valid record.
    store::LoadResult loaded = store::ResultStore::load(path, fingerprint);
    shelf.records = std::move(loaded.records);
    for (std::size_t i = 0; i < shelf.records.size(); ++i) {
      shelf.by_hash[pat::hash_rects(shelf.records[i].window_rects)]
          .push_back(i);
    }
    shelf.store = store::ResultStore::append_to(path, loaded.valid_bytes,
                                                opts_.sync_on_append);
  } else {
    shelf.store =
        store::ResultStore::create(path, fingerprint, opts_.sync_on_append);
  }
  // The near-match index persists (and restart-loads) the same way —
  // open() handles both the cold-start and the crash-resume path.
  shelf.patterns = pat::PatternLibrary::open(
      pattern_path_for(fingerprint), fingerprint, opts_.sync_on_append);
  return shelf;
}

std::vector<store::TileRecord> CorrectionLibrary::snapshot(
    std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  return shelf_locked(fingerprint).records;
}

void CorrectionLibrary::add(std::uint64_t fingerprint,
                            const store::TileRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  Shelf& shelf = shelf_locked(fingerprint);
  const std::uint64_t h = pat::hash_rects(record.window_rects);
  auto it = shelf.by_hash.find(h);
  if (it != shelf.by_hash.end()) {
    for (std::size_t idx : it->second) {
      if (shelf.records[idx] == record) return;  // already shelved
    }
  }
  shelf.by_hash[h].push_back(shelf.records.size());
  shelf.records.push_back(record);
  if (shelf.store) shelf.store->append(record);
}

std::size_t CorrectionLibrary::size(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  return shelf_locked(fingerprint).records.size();
}

pat::PatternLibrary CorrectionLibrary::pattern_snapshot(
    std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  return shelf_locked(fingerprint).patterns.clone_memory();
}

void CorrectionLibrary::add_pattern(std::uint64_t fingerprint,
                                    const pat::LibraryRecord& rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  shelf_locked(fingerprint).patterns.insert(rec);
}

std::size_t CorrectionLibrary::pattern_count(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  return shelf_locked(fingerprint).patterns.size();
}

}  // namespace opckit::svc
