#include "service/protocol.h"

#include <cstring>

#include "core/flow_codec.h"
#include "store/result_store.h"

namespace opckit::svc {
namespace {

/// Path/message strings on the wire; far above any real path, far below
/// anything that could be used to balloon the decoder.
constexpr std::uint32_t kMaxStringBytes = 1u << 20;

// ---- little-endian primitives -----------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

[[noreturn]] void bad_payload(const std::string& what) {
  throw ProtocolError(WireFault::kBadPayload, what);
}

/// Bounds-checked payload cursor; throws kBadPayload instead of reading
/// past the end.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(
          v |
          static_cast<std::uint16_t>(bytes_[pos_ + static_cast<std::size_t>(
                                                       i)])
              << (8 * i));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               bytes_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxStringBytes) bad_payload("string length exceeds the limit");
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> blob() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(bytes_.begin() + static_cast<std::ptrdiff_t>(
                                                     pos_),
                                bytes_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  void finish() {
    if (remaining() != 0)
      bad_payload(std::to_string(remaining()) +
                  " trailing bytes after a well-formed payload");
  }

 private:
  void need(std::size_t n) {
    if (remaining() < n) bad_payload("truncated payload");
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

bool is_known_type(std::uint16_t v) {
  return v >= static_cast<std::uint16_t>(MsgType::kSubmit) &&
         v <= static_cast<std::uint16_t>(MsgType::kError);
}

const char* to_string(WireFault fault) {
  switch (fault) {
    case WireFault::kTruncated: return "truncated";
    case WireFault::kBadMagic: return "bad-magic";
    case WireFault::kBadVersion: return "bad-version";
    case WireFault::kBadType: return "bad-type";
    case WireFault::kOversized: return "oversized";
    case WireFault::kBadCrc: return "bad-crc";
    case WireFault::kBadPayload: return "bad-payload";
  }
  return "?";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kDraining: return "draining";
    case RejectReason::kBadJob: return "bad-job";
  }
  return "?";
}

bool read_exact(Stream& s, void* buf, std::size_t n, bool eof_ok_at_start) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = s.read_some(p + got, n - got);
    if (r == 0) {
      if (got == 0 && eof_ok_at_start) return false;
      throw ProtocolError(
          WireFault::kTruncated,
          "stream ended after " + std::to_string(got) + " of " +
              std::to_string(n) + " expected bytes");
    }
    got += r;
  }
  return true;
}

void write_all(Stream& s, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) sent += s.write_some(p + sent, n - sent);
}

void write_frame(Stream& s, MsgType type,
                 const std::vector<std::uint8_t>& payload) {
  OPCKIT_CHECK(payload.size() <= kMaxPayloadBytes);
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderSize + payload.size() + 4);
  frame.insert(frame.end(), std::begin(kMagic), std::end(kMagic));
  put_u16(frame, kProtocolVersion);
  put_u16(frame, static_cast<std::uint16_t>(type));
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, store::store_detail::crc32(payload.data(), payload.size()));
  write_all(s, frame.data(), frame.size());
}

std::optional<Frame> read_frame(Stream& s) {
  std::uint8_t header[kFrameHeaderSize];
  if (!read_exact(s, header, sizeof header, /*eof_ok_at_start=*/true)) {
    return std::nullopt;  // clean close at a frame boundary
  }
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0)
    throw ProtocolError(WireFault::kBadMagic,
                        "frame does not start with the OPCS magic");
  const std::uint16_t version =
      static_cast<std::uint16_t>(header[4] | (header[5] << 8));
  if (version != kProtocolVersion)
    throw ProtocolError(WireFault::kBadVersion,
                        "frame version " + std::to_string(version) +
                            "; this build speaks version " +
                            std::to_string(kProtocolVersion));
  const std::uint16_t type =
      static_cast<std::uint16_t>(header[6] | (header[7] << 8));
  if (!is_known_type(type))
    throw ProtocolError(WireFault::kBadType,
                        "unknown message type " + std::to_string(type));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(header[8 + i]) << (8 * i);
  if (len > kMaxPayloadBytes)
    throw ProtocolError(WireFault::kOversized,
                        "payload length " + std::to_string(len) +
                            " exceeds the " +
                            std::to_string(kMaxPayloadBytes) + "-byte cap");

  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(len);
  if (len > 0) {
    read_exact(s, frame.payload.data(), len, /*eof_ok_at_start=*/false);
  }
  std::uint8_t crc_bytes[4];
  read_exact(s, crc_bytes, sizeof crc_bytes, /*eof_ok_at_start=*/false);
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i)
    crc |= static_cast<std::uint32_t>(crc_bytes[i]) << (8 * i);
  if (store::store_detail::crc32(frame.payload.data(),
                                 frame.payload.size()) != crc)
    throw ProtocolError(WireFault::kBadCrc, "payload checksum mismatch");
  return frame;
}

// ---- message encodings ------------------------------------------------

std::vector<std::uint8_t> encode_submit(const SubmitMsg& m) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(m.priority));
  out.push_back(m.flow);
  put_str(out, m.in_path);
  put_str(out, m.out_path);
  put_str(out, m.top);
  const std::vector<std::uint8_t> spec = opc::encode_flow_spec(m.spec);
  put_u32(out, static_cast<std::uint32_t>(spec.size()));
  out.insert(out.end(), spec.begin(), spec.end());
  return out;
}

SubmitMsg decode_submit(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  SubmitMsg m;
  m.priority = static_cast<std::int32_t>(r.u32());
  m.flow = r.u8();
  if (m.flow > 1) bad_payload("bad flow kind (0 = flat, 1 = cell)");
  m.in_path = r.str();
  m.out_path = r.str();
  m.top = r.str();
  const std::vector<std::uint8_t> spec = r.blob();
  r.finish();
  try {
    m.spec = opc::decode_flow_spec(spec.data(), spec.size());
  } catch (const util::InputError& e) {
    bad_payload(e.what());
  }
  return m;
}

std::vector<std::uint8_t> encode_accepted(const AcceptedMsg& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.job_id);
  put_u32(out, m.queue_depth);
  return out;
}

AcceptedMsg decode_accepted(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  AcceptedMsg m;
  m.job_id = r.u64();
  m.queue_depth = r.u32();
  r.finish();
  return m;
}

std::vector<std::uint8_t> encode_rejected(const RejectedMsg& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.job_id);
  put_u16(out, static_cast<std::uint16_t>(m.reason));
  put_str(out, m.message);
  return out;
}

RejectedMsg decode_rejected(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  RejectedMsg m;
  m.job_id = r.u64();
  const std::uint16_t reason = r.u16();
  if (reason < 1 || reason > 3) bad_payload("bad reject reason");
  m.reason = static_cast<RejectReason>(reason);
  m.message = r.str();
  r.finish();
  return m;
}

std::vector<std::uint8_t> encode_progress(const ProgressMsg& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.job_id);
  put_u32(out, static_cast<std::uint32_t>(m.pass));
  put_u64(out, m.tiles_done);
  put_u64(out, m.tiles_total);
  put_str(out, m.phase);
  return out;
}

ProgressMsg decode_progress(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  ProgressMsg m;
  m.job_id = r.u64();
  m.pass = static_cast<std::int32_t>(r.u32());
  m.tiles_done = r.u64();
  m.tiles_total = r.u64();
  m.phase = r.str();
  r.finish();
  return m;
}

std::vector<std::uint8_t> encode_result(const ResultMsg& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.job_id);
  out.push_back(m.ok ? 1 : 0);
  put_str(out, m.payload);
  return out;
}

ResultMsg decode_result(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  ResultMsg m;
  m.job_id = r.u64();
  const std::uint8_t ok = r.u8();
  if (ok > 1) bad_payload("bad result flag");
  m.ok = ok == 1;
  m.payload = r.str();
  r.finish();
  return m;
}

std::vector<std::uint8_t> encode_shutdown(const ShutdownMsg& m) {
  return {static_cast<std::uint8_t>(m.mode)};
}

ShutdownMsg decode_shutdown(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  ShutdownMsg m;
  const std::uint8_t mode = r.u8();
  if (mode > 1) bad_payload("bad shutdown mode (0 = drain, 1 = abort)");
  m.mode = static_cast<ShutdownMode>(mode);
  r.finish();
  return m;
}

std::vector<std::uint8_t> encode_error(const ErrorMsg& m) {
  std::vector<std::uint8_t> out;
  put_u16(out, m.code);
  put_str(out, m.message);
  return out;
}

ErrorMsg decode_error(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  ErrorMsg m;
  m.code = r.u16();
  m.message = r.str();
  r.finish();
  return m;
}

}  // namespace opckit::svc
