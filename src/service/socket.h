/// \file socket.h
/// POSIX socket plumbing for opcd: unix-domain and loopback-TCP
/// listeners, blocking client connects, and the FdStream adapter that
/// carries the wire protocol over a connected socket.
///
/// Everything here is EINTR-safe and SIGPIPE-free (writes go through
/// send(MSG_NOSIGNAL) — a daemon must survive any client vanishing
/// mid-frame). Accept waits are poll()-bounded so the accept loop can
/// observe the server's stop flag, and FdStream::shutdown_both() lets
/// another thread wake a handler blocked in read_some (the read returns
/// 0, which the frame layer reports as a clean close).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/protocol.h"

namespace opckit::svc {

/// A connected socket as a protocol Stream. Owns the descriptor.
class FdStream final : public Stream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  ~FdStream() override;

  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  int fd() const { return fd_; }

  /// ::shutdown() both directions without closing. Safe to call from a
  /// thread other than the reader: a blocked recv returns 0 (EOF) and
  /// the handler unwinds normally. The descriptor stays valid until the
  /// destructor, so there is no close/reuse race.
  void shutdown_both();

  std::size_t read_some(void* buf, std::size_t n) override;
  std::size_t write_some(const void* buf, std::size_t n) override;

 private:
  int fd_;
};

/// Bind + listen on a unix-domain socket at \p path, unlinking any stale
/// socket file first. Returns the listening fd (CLOEXEC).
int listen_unix(const std::string& path, int backlog = 64);

/// Bind + listen on loopback TCP \p port (0 = ephemeral); the bound port
/// is written to \p bound_port. Returns the listening fd (CLOEXEC).
int listen_tcp(std::uint16_t port, std::uint16_t* bound_port,
               int backlog = 64);

/// Blocking connect to a unix-domain / loopback-TCP daemon endpoint.
/// Throws util::InputError when nothing is listening.
std::unique_ptr<FdStream> connect_unix(const std::string& path);
std::unique_ptr<FdStream> connect_tcp(std::uint16_t port);

/// poll()-bounded accept: returns a connected fd, or -1 when \p
/// timeout_ms elapsed with no pending connection. Throws
/// util::InputError on a hard listener error.
int accept_with_timeout(int listen_fd, int timeout_ms);

}  // namespace opckit::svc
