/// \file gdsii.h
/// GDSII Stream format reader and writer.
///
/// Implements the subset of GDSII used by mask data: HEADER/BGNLIB/LIBNAME/
/// UNITS, BGNSTR/STRNAME, BOUNDARY elements, SREF and AREF references with
/// STRANS/ANGLE, and the excess-64 8-byte real encoding. Timestamps are
/// written as zeros so output is bit-deterministic. This is the real wire
/// format — the data-volume experiment (T2) measures actual GDSII bytes.
///
/// Limitations (documented, checked at write time): magnification is not
/// supported (always 1.0), coordinates must fit in int32 (GDSII limit),
/// and PATH/TEXT/NODE/BOX elements are skipped on read.
#pragma once

#include <iosfwd>
#include <string>

#include "layout/library.h"

namespace opckit::layout {

/// Serialize \p lib to a GDSII stream. DB unit is 1 nm (UNITS = 1e-3 user
/// units per DB unit, 1e-9 m per DB unit). Throws util::InputError on
/// unrepresentable content (e.g. coordinates beyond int32).
void write_gdsii(const Library& lib, std::ostream& os);

/// Serialize to a file. Throws util::InputError on I/O failure.
void write_gdsii_file(const Library& lib, const std::string& path);

/// Number of bytes write_gdsii would produce (serializes to a counter).
std::size_t gdsii_byte_size(const Library& lib);

/// Parse a GDSII stream into a Library. Unknown element types are skipped;
/// structural records must be well-formed or util::InputError is thrown.
Library read_gdsii(std::istream& is);

/// Parse from a file. Throws util::InputError on I/O failure.
Library read_gdsii_file(const std::string& path);

namespace gdsii_detail {
/// Encode a double as a GDSII 8-byte excess-64 real (exposed for tests).
std::uint64_t encode_real8(double value);
/// Decode a GDSII 8-byte real (exposed for tests).
double decode_real8(std::uint64_t bits);
}  // namespace gdsii_detail

}  // namespace opckit::layout
