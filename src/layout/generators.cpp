#include "layout/generators.h"

#include <algorithm>

#include "util/check.h"

namespace opckit::layout {

using geom::Coord;
using geom::Point;
using geom::Rect;

void add_grating(Cell& cell, const Layer& layer, const GratingSpec& spec) {
  OPCKIT_CHECK(spec.pitch >= spec.line_width);
  OPCKIT_CHECK(spec.lines >= 1);
  const int mid = spec.lines / 2;
  for (int i = 0; i < spec.lines; ++i) {
    const Coord cx = static_cast<Coord>(i - mid) * spec.pitch;
    cell.add_rect(layer, Rect(cx - spec.line_width / 2, -spec.length / 2,
                              cx + spec.line_width / 2, spec.length / 2));
  }
}

void add_iso_line(Cell& cell, const Layer& layer, Coord width, Coord length) {
  cell.add_rect(layer,
                Rect(-width / 2, -length / 2, width / 2, length / 2));
}

void add_line_end_comb(Cell& cell, const Layer& layer,
                       const LineEndSpec& spec) {
  OPCKIT_CHECK(spec.fingers >= 1);
  const int mid = spec.fingers / 2;
  const Coord tip = spec.gap / 2;
  for (int i = 0; i < spec.fingers; ++i) {
    const Coord cx = static_cast<Coord>(i - mid) * spec.pitch;
    const Coord x0 = cx - spec.line_width / 2;
    const Coord x1 = cx + spec.line_width / 2;
    // Upper comb finger pointing down; lower comb finger pointing up.
    cell.add_rect(layer, Rect(x0, tip, x1, tip + spec.finger_length));
    cell.add_rect(layer, Rect(x0, -tip - spec.finger_length, x1, -tip));
  }
  // Comb spines tie fingers together (keeps shapes realistic).
  const Coord spine_x0 =
      -static_cast<Coord>(mid) * spec.pitch - spec.line_width / 2;
  const Coord spine_x1 =
      static_cast<Coord>(spec.fingers - 1 - mid) * spec.pitch +
      spec.line_width / 2;
  const Coord spine_w = 2 * spec.line_width;
  cell.add_rect(layer, Rect(spine_x0, tip + spec.finger_length, spine_x1,
                            tip + spec.finger_length + spine_w));
  cell.add_rect(layer, Rect(spine_x0, -tip - spec.finger_length - spine_w,
                            spine_x1, -tip - spec.finger_length));
}

void add_corner_target(Cell& cell, const Layer& layer, Coord arm_width,
                       Coord arm_length) {
  // L shape: horizontal arm along +x, vertical arm along +y.
  cell.add_polygon(
      layer, geom::Polygon(std::vector<Point>{{0, 0},
                                              {arm_length, 0},
                                              {arm_length, arm_width},
                                              {arm_width, arm_width},
                                              {arm_width, arm_length},
                                              {0, arm_length}}));
}

void add_contact_array(Cell& cell, const Layer& layer, Coord size, Coord pitch,
                       int nx, int ny) {
  OPCKIT_CHECK(nx >= 1 && ny >= 1 && pitch >= size);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const Coord x = static_cast<Coord>(i) * pitch;
      const Coord y = static_cast<Coord>(j) * pitch;
      cell.add_rect(layer, Rect(x, y, x + size, y + size));
    }
  }
}

std::string make_logic_cell(Library& lib, const std::string& name,
                            const Layer& layer) {
  Cell& c = lib.cell(name);
  const Coord w = 180;  // drawn gate/wire width
  // Two vertical "gates".
  c.add_rect(layer, Rect(600, 200, 600 + w, 2600));
  c.add_rect(layer, Rect(1400, 200, 1400 + w, 2600));
  // Landing pads (hammer shapes) on top of the gates.
  c.add_rect(layer, Rect(600 - 120, 2600, 600 + w + 120, 2600 + 420));
  c.add_rect(layer, Rect(1400 - 120, 2600, 1400 + w + 120, 2600 + 420));
  // A bent (L) route on the left.
  c.add_polygon(layer, geom::Polygon(std::vector<Point>{{100, 200},
                                                        {280, 200},
                                                        {280, 1500},
                                                        {100 + 1200, 1500},
                                                        {100 + 1200, 1680},
                                                        {100, 1680}})
                           .normalized());
  // A tip-to-tip line-end pair on the right.
  c.add_rect(layer, Rect(2000, 200, 2000 + w, 1300));
  c.add_rect(layer, Rect(2000, 1300 + 260, 2000 + w, 2600));
  // A wide power rail along the bottom.
  c.add_rect(layer, Rect(0, -400, 2600, -400 + 360));
  return name;
}

void add_random_block(Cell& cell, const Layer& layer,
                      const RandomBlockSpec& spec, util::Rng& rng) {
  OPCKIT_CHECK(spec.fill > 0.0 && spec.fill < 1.0);
  const Coord track_pitch = spec.wire_width + spec.wire_space;
  const auto tracks = static_cast<int>(spec.height / track_pitch);
  for (int t = 0; t < tracks; ++t) {
    const Coord y0 = static_cast<Coord>(t) * track_pitch;
    const Coord y1 = y0 + spec.wire_width;
    Coord x = 0;
    while (x < spec.width) {
      // Skip a random gap, then place a random segment.
      const Coord gap = spec.wire_space +
                        rng.uniform_int(0, static_cast<Coord>(
                                               static_cast<double>(
                                                   spec.max_segment) *
                                               (1.0 - spec.fill)));
      x += gap;
      const Coord seg = rng.uniform_int(spec.min_segment, spec.max_segment);
      const Coord x1 = std::min(x + seg, spec.width);
      if (x1 - x >= spec.min_segment) {
        cell.add_rect(layer, Rect(x, y0, x1, y1));
        // Occasionally grow a vertical jog joining the next track: jog is
        // one wire wide, placed at the segment start so spacing to the
        // previous segment (>= wire_space gap) is preserved.
        if (t + 1 < tracks && rng.chance(spec.jog_probability)) {
          cell.add_rect(layer,
                        Rect(x, y1, x + spec.wire_width, y0 + track_pitch));
        }
      }
      x = x1;
    }
  }
}

std::string make_chip(Library& lib, const std::string& top_name,
                      const std::string& block_cell, int cols, int rows,
                      const Point& spacing) {
  OPCKIT_CHECK(lib.has_cell(block_cell));
  Cell& top = lib.cell(top_name);
  CellRef ref;
  ref.child = block_cell;
  ref.columns = cols;
  ref.rows = rows;
  ref.column_step = {spacing.x, 0};
  ref.row_step = {0, spacing.y};
  top.add_ref(std::move(ref));
  return top_name;
}

}  // namespace opckit::layout
