#include "layout/cell.h"

namespace opckit::layout {

void Cell::add_polygon(const Layer& layer, geom::Polygon poly) {
  shapes_[layer].push_back(std::move(poly));
}

void Cell::add_rect(const Layer& layer, const geom::Rect& rect) {
  shapes_[layer].emplace_back(rect);
}

void Cell::add_polygons(const Layer& layer,
                        std::span<const geom::Polygon> polys) {
  auto& dst = shapes_[layer];
  dst.insert(dst.end(), polys.begin(), polys.end());
}

std::span<const geom::Polygon> Cell::shapes(const Layer& layer) const {
  const auto it = shapes_.find(layer);
  if (it == shapes_.end()) return {};
  return it->second;
}

std::vector<Layer> Cell::layers() const {
  std::vector<Layer> out;
  out.reserve(shapes_.size());
  for (const auto& [layer, polys] : shapes_) {
    if (!polys.empty()) out.push_back(layer);
  }
  return out;
}

std::size_t Cell::polygon_count() const {
  std::size_t n = 0;
  for (const auto& [layer, polys] : shapes_) n += polys.size();
  return n;
}

std::size_t Cell::vertex_count() const {
  std::size_t n = 0;
  for (const auto& [layer, polys] : shapes_) {
    for (const auto& p : polys) n += p.size();
  }
  return n;
}

geom::Rect Cell::local_bbox() const {
  geom::Rect box = geom::Rect::empty();
  for (const auto& [layer, polys] : shapes_) {
    for (const auto& p : polys) box = box.united(p.bbox());
  }
  return box;
}

}  // namespace opckit::layout
