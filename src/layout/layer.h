/// \file layer.h
/// Layer identifiers following the GDSII (layer, datatype) convention.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace opckit::layout {

/// A drawing layer. The pair (layer, datatype) matches GDSII records; OPC
/// flows conventionally write corrected shapes to a different datatype of
/// the same layer (e.g. poly 10/0 -> post-OPC 10/1).
struct Layer {
  std::uint16_t layer = 0;
  std::uint16_t datatype = 0;

  friend constexpr bool operator==(const Layer&, const Layer&) = default;
  friend constexpr auto operator<=>(const Layer&, const Layer&) = default;
};

/// Conventional layer assignments used by the examples and experiments.
namespace layers {
inline constexpr Layer kPoly{10, 0};        ///< gate/interconnect target
inline constexpr Layer kPolyOpc{10, 1};     ///< post-OPC mask shapes
inline constexpr Layer kPolySraf{10, 2};    ///< sub-resolution assists
inline constexpr Layer kMetal1{20, 0};
inline constexpr Layer kMetal1Opc{20, 1};
inline constexpr Layer kContact{30, 0};
inline constexpr Layer kContactOpc{30, 1};
inline constexpr Layer kMarkers{63, 0};     ///< violation markers
}  // namespace layers

inline std::ostream& operator<<(std::ostream& os, const Layer& l) {
  return os << l.layer << '/' << l.datatype;
}

}  // namespace opckit::layout

template <>
struct std::hash<opckit::layout::Layer> {
  std::size_t operator()(const opckit::layout::Layer& l) const noexcept {
    return (static_cast<std::size_t>(l.layer) << 16) | l.datatype;
  }
};
