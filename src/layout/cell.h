/// \file cell.h
/// Layout cells: per-layer shape lists plus child-cell references.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "geometry/geometry.h"
#include "layout/layer.h"

namespace opckit::layout {

/// A (possibly arrayed) reference to a child cell, GDSII SREF/AREF style.
/// The child is named; resolution happens through the owning Library.
struct CellRef {
  std::string child;
  geom::Transform transform;
  /// Array dimensions; (1,1) is a plain SREF.
  int columns = 1;
  int rows = 1;
  /// Per-column / per-row displacement for arrays (in parent coordinates,
  /// applied after \ref transform 's orientation).
  geom::Point column_step{0, 0};
  geom::Point row_step{0, 0};

  friend bool operator==(const CellRef&, const CellRef&) = default;

  /// Total number of placements this reference expands to.
  long long placements() const {
    return static_cast<long long>(columns) * rows;
  }

  /// Transform of array element (c, r).
  geom::Transform element_transform(int c, int r) const {
    geom::Transform t = transform;
    t.displacement += column_step * c + row_step * r;
    return t;
  }
};

/// A named cell: geometry organized by layer, plus child references.
class Cell {
 public:
  Cell() = default;
  explicit Cell(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Add a polygon on a layer (stored as given; not normalized).
  void add_polygon(const Layer& layer, geom::Polygon poly);
  /// Add a rectangle on a layer.
  void add_rect(const Layer& layer, const geom::Rect& rect);
  /// Add many polygons on a layer.
  void add_polygons(const Layer& layer, std::span<const geom::Polygon> polys);
  /// Add a child reference.
  void add_ref(CellRef ref) { refs_.push_back(std::move(ref)); }
  /// Remove all shapes on a layer.
  void clear_layer(const Layer& layer) { shapes_.erase(layer); }

  /// Shapes on one layer (empty span if none).
  std::span<const geom::Polygon> shapes(const Layer& layer) const;
  /// Layers with at least one shape, ascending.
  std::vector<Layer> layers() const;
  /// Child references.
  const std::vector<CellRef>& refs() const { return refs_; }

  /// Number of polygons summed over all layers (local shapes only).
  std::size_t polygon_count() const;
  /// Number of vertices summed over all layers (local shapes only).
  std::size_t vertex_count() const;
  /// Bounding box of local shapes only (no child expansion).
  geom::Rect local_bbox() const;

 private:
  std::string name_;
  std::map<Layer, std::vector<geom::Polygon>> shapes_;
  std::vector<CellRef> refs_;
};

}  // namespace opckit::layout
