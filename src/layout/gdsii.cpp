#include "layout/gdsii.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace opckit::layout {

namespace {

// Record types.
enum : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kPath = 0x09,
  kSref = 0x0A,
  kAref = 0x0B,
  kText = 0x0C,
  kLayerRec = 0x0D,
  kDatatype = 0x0E,
  kXy = 0x10,
  kEndEl = 0x11,
  kSname = 0x12,
  kColRow = 0x13,
  kNode = 0x15,
  kBox = 0x2D,
  kStrans = 0x1A,
  kMag = 0x1B,
  kAngle = 0x1C,
};

// Data type codes.
enum : std::uint8_t {
  kDtNone = 0,
  kDtBitArray = 1,
  kDtInt16 = 2,
  kDtInt32 = 3,
  kDtReal8 = 5,
  kDtAscii = 6,
};

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  void record(std::uint8_t type, std::uint8_t dtype,
              const std::vector<std::uint8_t>& payload = {}) {
    const std::size_t len = payload.size() + 4;
    OPCKIT_CHECK_MSG(len <= 0xFFFF, "GDSII record too long");
    put16(static_cast<std::uint16_t>(len));
    os_.put(static_cast<char>(type));
    os_.put(static_cast<char>(dtype));
    os_.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }

  void record_i16(std::uint8_t type, std::initializer_list<std::int16_t> vs) {
    std::vector<std::uint8_t> p;
    for (std::int16_t v : vs) append16(p, static_cast<std::uint16_t>(v));
    record(type, kDtInt16, p);
  }

  void record_ascii(std::uint8_t type, const std::string& s) {
    std::vector<std::uint8_t> p(s.begin(), s.end());
    if (p.size() % 2) p.push_back(0);  // GDSII pads strings to even length
    record(type, kDtAscii, p);
  }

  void record_real8(std::uint8_t type, std::initializer_list<double> vs) {
    std::vector<std::uint8_t> p;
    for (double v : vs) {
      const std::uint64_t bits = gdsii_detail::encode_real8(v);
      for (int i = 7; i >= 0; --i) {
        p.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
      }
    }
    record(type, kDtReal8, p);
  }

  void record_xy(const std::vector<geom::Point>& pts) {
    std::vector<std::uint8_t> p;
    p.reserve(pts.size() * 8);
    for (const auto& pt : pts) {
      append32(p, checked32(pt.x));
      append32(p, checked32(pt.y));
    }
    record(kXy, kDtInt32, p);
  }

 private:
  static std::int32_t checked32(geom::Coord v) {
    OPCKIT_CHECK_MSG(v >= std::numeric_limits<std::int32_t>::min() &&
                         v <= std::numeric_limits<std::int32_t>::max(),
                     "coordinate " << v << " exceeds GDSII int32 range");
    return static_cast<std::int32_t>(v);
  }
  void put16(std::uint16_t v) {
    os_.put(static_cast<char>(v >> 8));
    os_.put(static_cast<char>(v & 0xFF));
  }
  static void append16(std::vector<std::uint8_t>& p, std::uint16_t v) {
    p.push_back(static_cast<std::uint8_t>(v >> 8));
    p.push_back(static_cast<std::uint8_t>(v & 0xFF));
  }
  static void append32(std::vector<std::uint8_t>& p, std::int32_t sv) {
    const auto v = static_cast<std::uint32_t>(sv);
    p.push_back(static_cast<std::uint8_t>(v >> 24));
    p.push_back(static_cast<std::uint8_t>(v >> 16));
    p.push_back(static_cast<std::uint8_t>(v >> 8));
    p.push_back(static_cast<std::uint8_t>(v));
  }
  std::ostream& os_;
};

void write_strans(Writer& w, geom::Orientation o) {
  const int idx = static_cast<int>(o);
  const bool reflect = idx >= 4;
  const int angle = (idx % 4) * 90;
  if (!reflect && angle == 0) return;
  std::vector<std::uint8_t> bits{static_cast<std::uint8_t>(reflect ? 0x80 : 0),
                                 0};
  w.record(kStrans, kDtBitArray, bits);
  if (angle != 0) {
    w.record_real8(kAngle, {static_cast<double>(angle)});
  }
}

}  // namespace

namespace gdsii_detail {

std::uint64_t encode_real8(double value) {
  if (value == 0.0) return 0;
  std::uint64_t sign = 0;
  if (value < 0) {
    sign = 1ULL << 63;
    value = -value;
  }
  // Normalize mantissa into [1/16, 1) with value = mantissa * 16^exp.
  int exp = 0;
  while (value >= 1.0) {
    value /= 16.0;
    ++exp;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exp;
  }
  const auto mantissa =
      static_cast<std::uint64_t>(std::llround(value * 72057594037927936.0));
  // 2^56 = 72057594037927936; rounding can push mantissa to 2^56 exactly.
  std::uint64_t m = mantissa;
  int e = exp + 64;
  if (m >= (1ULL << 56)) {
    m >>= 4;
    ++e;
  }
  OPCKIT_CHECK_MSG(e >= 0 && e <= 127, "real8 exponent out of range");
  return sign | (static_cast<std::uint64_t>(e) << 56) | m;
}

double decode_real8(std::uint64_t bits) {
  if ((bits & ~(1ULL << 63)) == 0) return 0.0;
  const double sign = (bits >> 63) ? -1.0 : 1.0;
  const int exp = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const std::uint64_t mantissa = bits & 0xFFFFFFFFFFFFFFULL;
  return sign * static_cast<double>(mantissa) / 72057594037927936.0 *
         std::pow(16.0, exp);
}

}  // namespace gdsii_detail

void write_gdsii(const Library& lib, std::ostream& os) {
  Writer w(os);
  w.record_i16(kHeader, {600});
  w.record_i16(kBgnLib, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  w.record_ascii(kLibName, lib.name());
  // 1 DB unit = 0.001 user units (um) = 1e-9 m.
  w.record_real8(kUnits, {1e-3, 1e-9});

  for (const std::string& name : lib.cell_names()) {
    const Cell& cell = lib.at(name);
    w.record_i16(kBgnStr, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
    w.record_ascii(kStrName, name);

    for (const Layer& layer : cell.layers()) {
      for (const auto& poly : cell.shapes(layer)) {
        OPCKIT_CHECK_MSG(poly.size() >= 3, "degenerate polygon in " << name);
        w.record(kBoundary, kDtNone);
        w.record_i16(kLayerRec, {static_cast<std::int16_t>(layer.layer)});
        w.record_i16(kDatatype, {static_cast<std::int16_t>(layer.datatype)});
        std::vector<geom::Point> pts(poly.ring().begin(), poly.ring().end());
        pts.push_back(poly.ring().front());  // GDSII closes the ring
        w.record_xy(pts);
        w.record(kEndEl, kDtNone);
      }
    }

    for (const auto& ref : cell.refs()) {
      const bool is_array = ref.columns != 1 || ref.rows != 1;
      w.record(is_array ? kAref : kSref, kDtNone);
      w.record_ascii(kSname, ref.child);
      write_strans(w, ref.transform.orientation);
      if (is_array) {
        w.record_i16(kColRow, {static_cast<std::int16_t>(ref.columns),
                               static_cast<std::int16_t>(ref.rows)});
        const geom::Point o = ref.transform.displacement;
        w.record_xy({o, o + ref.column_step * ref.columns,
                     o + ref.row_step * ref.rows});
      } else {
        w.record_xy({ref.transform.displacement});
      }
      w.record(kEndEl, kDtNone);
    }
    w.record(kEndStr, kDtNone);
  }
  w.record(kEndLib, kDtNone);
  if (!os) throw util::InputError("GDSII write failed");
}

void write_gdsii_file(const Library& lib, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw util::InputError("cannot open for write: " + path);
  write_gdsii(lib, f);
}

std::size_t gdsii_byte_size(const Library& lib) {
  std::ostringstream os(std::ios::binary);
  write_gdsii(lib, os);
  return os.str().size();
}

namespace {

struct Record {
  std::uint8_t type = 0;
  std::uint8_t dtype = 0;
  std::vector<std::uint8_t> payload;

  std::int16_t i16(std::size_t idx) const {
    OPCKIT_CHECK(2 * idx + 1 < payload.size() + 1 &&
                 2 * (idx + 1) <= payload.size());
    return static_cast<std::int16_t>(
        (static_cast<std::uint16_t>(payload[2 * idx]) << 8) |
        payload[2 * idx + 1]);
  }
  std::int32_t i32(std::size_t idx) const {
    OPCKIT_CHECK(4 * (idx + 1) <= payload.size());
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) v = (v << 8) | payload[4 * idx + static_cast<std::size_t>(k)];
    return static_cast<std::int32_t>(v);
  }
  double real8(std::size_t idx) const {
    OPCKIT_CHECK(8 * (idx + 1) <= payload.size());
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) v = (v << 8) | payload[8 * idx + static_cast<std::size_t>(k)];
    return gdsii_detail::decode_real8(v);
  }
  std::string ascii() const {
    std::string s(payload.begin(), payload.end());
    while (!s.empty() && s.back() == '\0') s.pop_back();
    return s;
  }
};

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  /// Read the next record; false at ENDLIB-terminated EOF.
  bool next(Record& rec) {
    std::uint8_t hdr[4];
    is_.read(reinterpret_cast<char*>(hdr), 4);
    if (is_.gcount() == 0) return false;
    if (is_.gcount() != 4) throw util::InputError("truncated GDSII record");
    const std::size_t len =
        (static_cast<std::size_t>(hdr[0]) << 8) | hdr[1];
    if (len < 4) throw util::InputError("bad GDSII record length");
    rec.type = hdr[2];
    rec.dtype = hdr[3];
    rec.payload.resize(len - 4);
    is_.read(reinterpret_cast<char*>(rec.payload.data()),
             static_cast<std::streamsize>(rec.payload.size()));
    if (static_cast<std::size_t>(is_.gcount()) != rec.payload.size()) {
      throw util::InputError("truncated GDSII payload");
    }
    return true;
  }

 private:
  std::istream& is_;
};

geom::Orientation orientation_from(bool reflect, double angle_deg) {
  const long a = std::lround(angle_deg);
  OPCKIT_CHECK_MSG(a % 90 == 0, "unsupported GDSII angle " << angle_deg);
  const int quarter = static_cast<int>(((a / 90) % 4 + 4) % 4);
  return static_cast<geom::Orientation>((reflect ? 4 : 0) + quarter);
}

}  // namespace

Library read_gdsii(std::istream& is) {
  Reader r(is);
  Record rec;
  Library lib("unnamed");
  Cell* cur_cell = nullptr;

  // Element parse state.
  enum class El { kNone, kBoundary, kRef, kSkip };
  El el = El::kNone;
  bool el_is_aref = false;
  Layer el_layer;
  std::vector<geom::Point> el_pts;
  std::string el_sname;
  bool el_reflect = false;
  double el_angle = 0.0;
  int el_cols = 1, el_rows = 1;

  auto finish_element = [&]() {
    OPCKIT_CHECK(cur_cell != nullptr);
    if (el == El::kBoundary) {
      if (!el_pts.empty() && el_pts.front() == el_pts.back()) {
        el_pts.pop_back();
      }
      if (el_pts.size() >= 3) {
        cur_cell->add_polygon(el_layer, geom::Polygon(el_pts));
      }
    } else if (el == El::kRef) {
      CellRef ref;
      ref.child = el_sname;
      ref.transform.orientation = orientation_from(el_reflect, el_angle);
      OPCKIT_CHECK(!el_pts.empty());
      ref.transform.displacement = el_pts[0];
      if (el_is_aref) {
        OPCKIT_CHECK_MSG(el_pts.size() == 3, "AREF needs 3 XY points");
        OPCKIT_CHECK(el_cols >= 1 && el_rows >= 1);
        ref.columns = el_cols;
        ref.rows = el_rows;
        const geom::Point dc = el_pts[1] - el_pts[0];
        const geom::Point dr = el_pts[2] - el_pts[0];
        ref.column_step = {dc.x / el_cols, dc.y / el_cols};
        ref.row_step = {dr.x / el_rows, dr.y / el_rows};
      }
      cur_cell->add_ref(std::move(ref));
    }
    el = El::kNone;
    el_pts.clear();
    el_sname.clear();
    el_reflect = false;
    el_angle = 0.0;
    el_cols = el_rows = 1;
  };

  bool saw_header = false, done = false;
  while (!done && r.next(rec)) {
    switch (rec.type) {
      case kHeader:
        saw_header = true;
        break;
      case kBgnLib:
      case kUnits:
        break;  // DB unit fixed at 1 nm by this library's convention
      case kLibName:
        lib = Library(rec.ascii());
        break;
      case kBgnStr:
        break;
      case kStrName:
        cur_cell = &lib.cell(rec.ascii());
        break;
      case kEndStr:
        cur_cell = nullptr;
        break;
      case kBoundary:
        el = El::kBoundary;
        el_is_aref = false;
        break;
      case kSref:
        el = El::kRef;
        el_is_aref = false;
        break;
      case kAref:
        el = El::kRef;
        el_is_aref = true;
        break;
      case kPath:
      case kText:
      case kNode:
      case kBox:
        el = El::kSkip;  // recognized but unsupported; consume silently
        break;
      case kLayerRec:
        if (el == El::kBoundary) {
          el_layer.layer = static_cast<std::uint16_t>(rec.i16(0));
        }
        break;
      case kDatatype:
        if (el == El::kBoundary) {
          el_layer.datatype = static_cast<std::uint16_t>(rec.i16(0));
        }
        break;
      case kXy:
        if (el == El::kBoundary || el == El::kRef) {
          const std::size_t n = rec.payload.size() / 8;
          for (std::size_t i = 0; i < n; ++i) {
            el_pts.push_back({rec.i32(2 * i), rec.i32(2 * i + 1)});
          }
        }
        break;
      case kSname:
        el_sname = rec.ascii();
        break;
      case kStrans:
        el_reflect = !rec.payload.empty() && (rec.payload[0] & 0x80);
        break;
      case kAngle:
        el_angle = rec.real8(0);
        break;
      case kMag:
        OPCKIT_CHECK_MSG(std::abs(rec.real8(0) - 1.0) < 1e-9,
                         "magnification != 1 unsupported");
        break;
      case kColRow:
        el_cols = rec.i16(0);
        el_rows = rec.i16(1);
        break;
      case kEndEl:
        if (el != El::kNone) finish_element();
        break;
      case kEndLib:
        done = true;
        break;
      default:
        break;  // skip unknown records
    }
  }
  if (!saw_header || !done) throw util::InputError("malformed GDSII stream");
  return lib;
}

Library read_gdsii_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw util::InputError("cannot open for read: " + path);
  return read_gdsii(f);
}

}  // namespace opckit::layout
