/// \file layout.h
/// Umbrella header for the opckit layout database.
#pragma once

#include "layout/cell.h"        // IWYU pragma: export
#include "layout/gdsii.h"       // IWYU pragma: export
#include "layout/generators.h"  // IWYU pragma: export
#include "layout/layer.h"       // IWYU pragma: export
#include "layout/library.h"     // IWYU pragma: export
