#include "layout/library.h"

#include <functional>
#include <set>

#include "util/check.h"

namespace opckit::layout {

Cell& Library::cell(const std::string& cell_name) {
  auto it = cells_.find(cell_name);
  if (it == cells_.end()) {
    it = cells_.emplace(cell_name, Cell(cell_name)).first;
  }
  return it->second;
}

const Cell& Library::at(const std::string& cell_name) const {
  const auto it = cells_.find(cell_name);
  if (it == cells_.end()) {
    throw util::InputError("no such cell: " + cell_name);
  }
  return it->second;
}

bool Library::has_cell(const std::string& cell_name) const {
  return cells_.count(cell_name) > 0;
}

std::vector<std::string> Library::cell_names() const {
  std::vector<std::string> out;
  out.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) out.push_back(name);
  return out;
}

std::vector<std::string> Library::top_cells() const {
  std::set<std::string> referenced;
  for (const auto& [name, cell] : cells_) {
    for (const auto& ref : cell.refs()) referenced.insert(ref.child);
  }
  std::vector<std::string> out;
  for (const auto& [name, cell] : cells_) {
    if (!referenced.count(name)) out.push_back(name);
  }
  return out;
}

void Library::validate() const {
  // Resolution + cycle detection via DFS coloring.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::function<void(const std::string&)> visit = [&](const std::string& n) {
    const auto it = cells_.find(n);
    if (it == cells_.end()) throw util::InputError("unresolved cell: " + n);
    Color& c = color[n];
    if (c == Color::kGray) {
      throw util::InputError("hierarchy cycle through cell: " + n);
    }
    if (c == Color::kBlack) return;
    c = Color::kGray;
    for (const auto& ref : it->second.refs()) {
      OPCKIT_CHECK_MSG(ref.columns >= 1 && ref.rows >= 1,
                       "degenerate array in cell " << n);
      visit(ref.child);
    }
    c = Color::kBlack;
  };
  for (const auto& [name, cell] : cells_) visit(name);
}

template <typename Fn>
void Library::walk(const Cell& c, const geom::Transform& t,
                   const Fn& fn) const {
  fn(c, t);
  for (const auto& ref : c.refs()) {
    const Cell& child = at(ref.child);
    for (int r = 0; r < ref.rows; ++r) {
      for (int col = 0; col < ref.columns; ++col) {
        walk(child, t * ref.element_transform(col, r), fn);
      }
    }
  }
}

std::vector<geom::Polygon> Library::flatten(const std::string& cell_name,
                                            const Layer& layer) const {
  std::vector<geom::Polygon> out;
  walk(at(cell_name), geom::Transform{},
       [&](const Cell& c, const geom::Transform& t) {
         for (const auto& p : c.shapes(layer)) out.push_back(t(p));
       });
  return out;
}

std::map<Layer, std::vector<geom::Polygon>> Library::flatten_all(
    const std::string& cell_name) const {
  std::map<Layer, std::vector<geom::Polygon>> out;
  walk(at(cell_name), geom::Transform{},
       [&](const Cell& c, const geom::Transform& t) {
         for (const Layer& layer : c.layers()) {
           auto& dst = out[layer];
           for (const auto& p : c.shapes(layer)) dst.push_back(t(p));
         }
       });
  return out;
}

geom::Rect Library::bbox(const std::string& cell_name) const {
  geom::Rect box = geom::Rect::empty();
  walk(at(cell_name), geom::Transform{},
       [&](const Cell& c, const geom::Transform& t) {
         const geom::Rect local = c.local_bbox();
         if (!local.is_empty()) box = box.united(t(local));
       });
  return box;
}

HierarchyStats Library::stats(const std::string& cell_name) const {
  HierarchyStats s;
  std::set<const Cell*> distinct;
  // Flat counts via expansion walk.
  walk(at(cell_name), geom::Transform{},
       [&](const Cell& c, const geom::Transform&) {
         distinct.insert(&c);
         ++s.placements;
         s.flat_polygons += static_cast<long long>(c.polygon_count());
         s.flat_vertices += static_cast<long long>(c.vertex_count());
       });
  --s.placements;  // the root itself is not a placement
  s.distinct_cells = distinct.size();
  for (const Cell* c : distinct) {
    s.local_polygons += c->polygon_count();
    s.local_vertices += c->vertex_count();
  }
  // Depth via DFS over distinct cells.
  std::function<int(const Cell&)> depth = [&](const Cell& c) -> int {
    int d = 0;
    for (const auto& ref : c.refs()) d = std::max(d, 1 + depth(at(ref.child)));
    return d;
  };
  s.depth = depth(at(cell_name));
  return s;
}

}  // namespace opckit::layout
