/// \file generators.h
/// Deterministic layout workload generators.
///
/// The paper-era experiments sweep specific geometry families: line/space
/// gratings (proximity curves), line-end combs (pullback), corner targets
/// (serifs), contact arrays, standard-cell-like blocks and pseudo-random
/// routed blocks (runtime/data-volume scaling, pattern catalogs), and
/// hierarchical chips (hierarchy impact). Everything is parameterized in
/// nanometers and seeded, so each experiment regenerates identical input.
#pragma once

#include <string>

#include "layout/library.h"
#include "util/rng.h"

namespace opckit::layout {

/// Parameters for a 1D line/space grating.
struct GratingSpec {
  geom::Coord line_width = 180;  ///< nm
  geom::Coord pitch = 360;       ///< nm, >= line_width
  int lines = 7;                 ///< number of parallel lines
  geom::Coord length = 4000;     ///< nm, line length (vertical lines)
};

/// Add a vertical-line grating centered on the origin to \p cell. The
/// middle line is centered at x = 0 so metrology can cut through it.
void add_grating(Cell& cell, const Layer& layer, const GratingSpec& spec);

/// Add a single isolated vertical line of \p width x \p length centered at
/// the origin.
void add_iso_line(Cell& cell, const Layer& layer, geom::Coord width,
                  geom::Coord length);

/// Parameters for an opposing line-end ("tip-to-tip") comb structure.
struct LineEndSpec {
  geom::Coord line_width = 180;  ///< nm
  geom::Coord pitch = 540;       ///< nm between fingers
  int fingers = 5;               ///< fingers per comb
  geom::Coord gap = 260;         ///< nm tip-to-tip design gap
  geom::Coord finger_length = 2000;  ///< nm
};

/// Add two vertical combs whose finger tips face each other across a gap
/// centered on y = 0. Line-end pullback is measured at the central finger.
void add_line_end_comb(Cell& cell, const Layer& layer, const LineEndSpec& spec);

/// Add an L-shaped corner target: two arms of width \p arm_width and
/// length \p arm_length joined at the origin (convex outer corner at the
/// origin side). Used for corner-rounding metrology.
void add_corner_target(Cell& cell, const Layer& layer, geom::Coord arm_width,
                       geom::Coord arm_length);

/// Add an nx x ny array of square contacts of side \p size at \p pitch,
/// lower-left contact at the origin.
void add_contact_array(Cell& cell, const Layer& layer, geom::Coord size,
                       geom::Coord pitch, int nx, int ny);

/// Build a small standard-cell-like block on the poly layer: parallel
/// gates with landing pads, a bent route, and a line-end pair — a mix of
/// the 1D and 2D configurations OPC has to handle. Returns the cell name.
std::string make_logic_cell(Library& lib, const std::string& name,
                            const Layer& layer);

/// Parameters for the pseudo-random routed block generator.
struct RandomBlockSpec {
  geom::Coord width = 12000;        ///< block extent x (nm)
  geom::Coord height = 12000;       ///< block extent y (nm)
  geom::Coord wire_width = 180;     ///< nm
  geom::Coord wire_space = 220;     ///< nm, track pitch = width + space
  double fill = 0.55;               ///< fraction of each track populated
  geom::Coord min_segment = 700;    ///< nm
  geom::Coord max_segment = 3500;   ///< nm
  double jog_probability = 0.25;    ///< chance a segment grows a vertical jog
};

/// Generate a DRC-clean pseudo-random wiring block: horizontal tracks at
/// pitch (wire_width + wire_space), each populated with random segments
/// separated by at least wire_space; some segments grow vertical jogs that
/// connect to the track above. Deterministic in \p rng.
void add_random_block(Cell& cell, const Layer& layer,
                      const RandomBlockSpec& spec, util::Rng& rng);

/// Build a hierarchical "chip": \p rows x \p cols AREF array of
/// \p block_cell with \p spacing between origins. Returns the top name.
std::string make_chip(Library& lib, const std::string& top_name,
                      const std::string& block_cell, int cols, int rows,
                      const geom::Point& spacing);

}  // namespace opckit::layout
