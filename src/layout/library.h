/// \file library.h
/// The layout database: a named set of cells with reference resolution,
/// hierarchy traversal, flattening, and hierarchy statistics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "layout/cell.h"

namespace opckit::layout {

/// Aggregate hierarchy metrics for one cell's expansion — the quantities
/// the DAC-2001 discussion of "OPC impact on layout data" revolves around.
struct HierarchyStats {
  std::size_t distinct_cells = 0;    ///< cells reachable incl. the root
  long long placements = 0;          ///< expanded instance count
  std::size_t local_polygons = 0;    ///< polygons stored across reachable cells
  std::size_t local_vertices = 0;    ///< vertices stored across reachable cells
  long long flat_polygons = 0;       ///< polygons after full expansion
  long long flat_vertices = 0;       ///< vertices after full expansion
  int depth = 0;                     ///< max reference depth (root = 0)

  /// Data-compression leverage of the hierarchy (flat / stored vertices).
  double hierarchy_leverage() const {
    return local_vertices == 0
               ? 0.0
               : static_cast<double>(flat_vertices) /
                     static_cast<double>(local_vertices);
  }
};

/// A collection of cells addressed by name. DB unit is 1 nm.
class Library {
 public:
  explicit Library(std::string name = "opckit") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Create (or fetch an existing) cell by name.
  Cell& cell(const std::string& cell_name);
  /// Look up an existing cell; throws InputError if missing.
  const Cell& at(const std::string& cell_name) const;
  /// True if a cell with this name exists.
  bool has_cell(const std::string& cell_name) const;
  /// All cell names, ascending (deterministic iteration order).
  std::vector<std::string> cell_names() const;
  /// Number of cells.
  std::size_t size() const { return cells_.size(); }

  /// Cells that are referenced by no other cell, ascending by name.
  std::vector<std::string> top_cells() const;

  /// Verify every reference resolves and the hierarchy is acyclic;
  /// throws InputError otherwise.
  void validate() const;

  /// Fully flatten one layer of a cell: every polygon of the cell and its
  /// expanded children transformed into root coordinates.
  std::vector<geom::Polygon> flatten(const std::string& cell_name,
                                     const Layer& layer) const;

  /// Flatten every populated layer at once.
  std::map<Layer, std::vector<geom::Polygon>> flatten_all(
      const std::string& cell_name) const;

  /// Bounding box of a cell including expanded children (all layers).
  geom::Rect bbox(const std::string& cell_name) const;

  /// Hierarchy metrics for a cell's expansion.
  HierarchyStats stats(const std::string& cell_name) const;

 private:
  template <typename Fn>
  void walk(const Cell& cell, const geom::Transform& t, const Fn& fn) const;

  std::string name_;
  std::map<std::string, Cell> cells_;
};

}  // namespace opckit::layout
