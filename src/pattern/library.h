/// \file library.h
/// The persistent cross-run pattern library: solved (pattern → correction)
/// entries with near-match retrieval.
///
/// The run-local CorrectionCache answers "have I solved *exactly* this
/// window before" (up to translation and, opt-in, D4). The library extends
/// reuse across runs and across *similar* patterns:
///
///  - every entry carries the exact-replay payload (a store::TileRecord,
///    importable into the CorrectionCache) plus the solved per-fragment
///    warm-start seeds (canonical-frame sites and final normal offsets);
///  - a feature-space index (feature.h) retrieves the nearest solved
///    pattern under a caller-set distance budget, pruned by the triangle
///    inequality on cached L2 norms — deterministic, ties broken by
///    insertion order;
///  - the on-disk format reuses the `.ocs` integrity discipline: magic +
///    version + fingerprint header under a CRC, length-prefixed CRC32
///    records, torn-tail recovery on load, refusal on real corruption.
///
/// Thread safety: none. The flow touches the library only from its serial
/// phases; the daemon serializes access under the CorrectionLibrary mutex
/// and hands jobs immutable clones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pattern/feature.h"
#include "store/result_store.h"

namespace opckit::pat {

/// One warm-start seed: a fragment evaluation site and the solved offset
/// along the fragment's outward normal. The offset is a signed scalar in
/// the normal direction, so it is invariant under the D4 frame maps the
/// library stores entries in.
struct WarmSeed {
  geom::Point site;
  geom::Coord offset = 0;

  friend bool operator==(const WarmSeed&, const WarmSeed&) = default;
};

/// One library entry: the exact-replay tile record (canonical frame, as
/// the correction store persists it) plus its warm-start seeds in the same
/// canonical frame.
struct LibraryRecord {
  store::TileRecord tile;
  std::vector<WarmSeed> seeds;

  friend bool operator==(const LibraryRecord&, const LibraryRecord&) = default;
};

/// A retrieval result: which entry, and how far in feature space.
struct NearMatch {
  std::size_t index = 0;
  double distance = 0.0;
};

/// What loading an existing library file found.
struct LibraryLoadInfo {
  std::size_t records_loaded = 0;
  bool tail_recovered = false;
};

/// The pattern library. Default-constructed instances are memory-only;
/// open() attaches a file that every insert() appends to. Move-only (it
/// may own an append file descriptor); clone_memory() produces a
/// detached, copy-safe snapshot for concurrent readers.
class PatternLibrary {
 public:
  PatternLibrary() = default;
  PatternLibrary(PatternLibrary&&) noexcept;
  PatternLibrary& operator=(PatternLibrary&&) noexcept;
  PatternLibrary(const PatternLibrary&) = delete;
  PatternLibrary& operator=(const PatternLibrary&) = delete;
  ~PatternLibrary();

  /// Open a file-backed library: load \p path if it exists (verifying the
  /// magic, version, and \p fingerprint; recovering a torn tail) or
  /// create it. Throws util::InputError on I/O failure or corruption.
  static PatternLibrary open(const std::string& path,
                             std::uint64_t fingerprint,
                             bool sync_on_append = true);

  /// Insert an entry; appends to the attached file when file-backed.
  /// Duplicates (tile identical to an existing entry) are dropped;
  /// returns true when the entry was actually inserted.
  bool insert(const LibraryRecord& rec);

  std::size_t size() const { return records_.size(); }
  const LibraryRecord& record(std::size_t i) const { return records_[i]; }
  const PatternFeature& feature(std::size_t i) const { return features_[i]; }

  /// Nearest entry whose feature distance to \p query is <= \p budget,
  /// or nullopt. Deterministic: exact distance comparison, ties broken
  /// toward the smallest entry index.
  std::optional<NearMatch> nearest(const PatternFeature& query,
                                   double budget) const;

  /// What open() found on disk (zeros for memory-only libraries).
  const LibraryLoadInfo& load_info() const { return load_info_; }

  /// Detached memory-only copy of all entries and the index (no file
  /// handle) — safe to share read-only across threads.
  PatternLibrary clone_memory() const;

 private:
  std::vector<LibraryRecord> records_;
  std::vector<PatternFeature> features_;
  /// (norm, index), sorted by norm then index — the pruned scan order.
  std::vector<std::pair<double, std::size_t>> by_norm_;
  /// Window-rect hashes as a dedup prefilter (same discipline as the
  /// daemon's CorrectionLibrary).
  std::vector<std::uint64_t> window_hashes_;
  LibraryLoadInfo load_info_;
  std::string path_;
  int fd_ = -1;
  bool sync_on_append_ = true;
};

}  // namespace opckit::pat
