#include "pattern/pdb.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace opckit::pat {

namespace {
// Version 2 adds an optional "window ..." line directly after the magic,
// persisting the WindowSpec the catalog was extracted under so consumers
// (matcher decks, merges) can validate compatibility instead of silently
// comparing incomparable windows. Version-1 files (no spec) still read.
constexpr const char* kMagicV2 = "opckit-pdb 2";
constexpr const char* kMagicV1 = "opckit-pdb 1";

const char* anchor_name(AnchorKind k) {
  return k == AnchorKind::kCorners ? "corners" : "grid";
}
}  // namespace

void write_pdb(const PatternCatalog& catalog, std::ostream& os) {
  os << kMagicV2 << '\n';
  if (catalog.window_spec()) {
    const WindowSpec& s = *catalog.window_spec();
    os << "window radius " << s.radius << " anchors "
       << anchor_name(s.anchors) << " grid " << s.grid_step << " skip "
       << (s.skip_empty ? 1 : 0) << '\n';
  }
  os << "classes " << catalog.classes() << " total " << catalog.total()
     << '\n';
  for (const auto& [hash, cls] : catalog.by_hash()) {
    os << "pattern " << hash << " count " << cls.count << " anchor "
       << cls.first_anchor.x << ' ' << cls.first_anchor.y << " rects "
       << cls.pattern.rects.size() << '\n';
    for (const auto& r : cls.pattern.rects) {
      os << "  " << r.lo.x << ' ' << r.lo.y << ' ' << r.hi.x << ' '
         << r.hi.y << '\n';
    }
  }
  if (!os) throw util::InputError("PDB write failed");
}

void write_pdb_file(const PatternCatalog& catalog, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw util::InputError("cannot open for write: " + path);
  write_pdb(catalog, f);
}

PatternCatalog read_pdb(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw util::InputError("not an opckit PDB (bad magic)");
  }
  const std::string magic = util::trim(line);
  if (magic != kMagicV1 && magic != kMagicV2) {
    throw util::InputError("not an opckit PDB (bad magic)");
  }

  PatternCatalog out;
  if (!std::getline(is, line)) throw util::InputError("truncated PDB");

  // v2 may carry the window spec before the class header.
  if (magic == kMagicV2 && util::trim(line).rfind("window ", 0) == 0) {
    std::istringstream ws(util::trim(line));
    std::string kw, kr, ka, kg, ks, anchors;
    WindowSpec spec;
    int skip = 1;
    ws >> kw >> kr >> spec.radius >> ka >> anchors >> kg >> spec.grid_step >>
        ks >> skip;
    if (kw != "window" || kr != "radius" || ka != "anchors" ||
        kg != "grid" || ks != "skip" || !ws ||
        (anchors != "corners" && anchors != "grid") || spec.radius <= 0) {
      throw util::InputError("malformed PDB window line: " + line);
    }
    spec.anchors =
        anchors == "corners" ? AnchorKind::kCorners : AnchorKind::kGrid;
    spec.skip_empty = skip != 0;
    out.set_window_spec(spec);
    if (!std::getline(is, line)) throw util::InputError("truncated PDB");
  }

  std::size_t classes = 0, total = 0;
  {
    std::istringstream hs(line);
    std::string k1, k2;
    hs >> k1 >> classes >> k2 >> total;
    if (k1 != "classes" || k2 != "total" || !hs) {
      throw util::InputError("malformed PDB header: " + line);
    }
  }

  // Rebuild the catalog through synthetic windows so counts and anchors
  // round-trip exactly: add() the representative window count times.
  // Geometry is reconstructed from the stored canonical rects (already
  // canonical, so re-canonicalization is the identity).
  std::size_t seen_classes = 0;
  while (std::getline(is, line)) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    std::istringstream ps(trimmed);
    std::string kw, kc, ka, kr;
    std::uint64_t hash = 0;
    std::size_t count = 0, nrects = 0;
    geom::Point anchor;
    ps >> kw >> hash >> kc >> count >> ka >> anchor.x >> anchor.y >> kr >>
        nrects;
    if (kw != "pattern" || kc != "count" || ka != "anchor" ||
        kr != "rects" || !ps) {
      throw util::InputError("malformed PDB pattern line: " + trimmed);
    }
    std::vector<geom::Rect> rects;
    rects.reserve(nrects);
    for (std::size_t i = 0; i < nrects; ++i) {
      if (!std::getline(is, line)) {
        throw util::InputError("truncated PDB rect list");
      }
      std::istringstream rs(line);
      geom::Rect r;
      rs >> r.lo.x >> r.lo.y >> r.hi.x >> r.hi.y;
      if (!rs) throw util::InputError("malformed PDB rect: " + line);
      rects.push_back(r);
    }
    OPCKIT_CHECK(count > 0);
    PatternWindow w;
    w.anchor = anchor;
    w.geometry = geom::Region::from_rects(rects);
    for (std::size_t i = 0; i < count; ++i) out.add(w);
    const auto it = out.by_hash().find(hash);
    if (it == out.by_hash().end()) {
      throw util::InputError("PDB hash mismatch after reconstruction");
    }
    ++seen_classes;
  }
  if (seen_classes != classes || out.total() != total) {
    throw util::InputError("PDB header/content mismatch");
  }
  return out;
}

PatternCatalog read_pdb_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw util::InputError("cannot open for read: " + path);
  return read_pdb(f);
}

}  // namespace opckit::pat
