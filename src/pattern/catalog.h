/// \file catalog.h
/// Layout Pattern Catalogs: frequency-ranked pattern class databases.
///
/// The catalog is the dataset DFM flows mine: which 2D configurations a
/// design contains and how often. Supports frequency spectra, top-k
/// coverage (the "10 classes cover 90% of vias" style of result), and
/// cross-design comparison via set algebra and KL divergence. Catalog
/// contents and orderings are deterministic functions of the input layout
/// (classes keyed by canonical hash, ties broken by rect serialization).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pattern/canonical.h"
#include "pattern/window.h"

namespace opckit::pat {

/// One pattern class in a catalog.
struct PatternClass {
  CanonicalPattern pattern;
  std::size_t count = 0;                 ///< occurrences
  geom::Point first_anchor;              ///< example location in the layout
};

/// A catalog of pattern classes keyed by canonical hash.
class PatternCatalog {
 public:
  PatternCatalog() = default;

  /// Classify and insert one window.
  void add(const PatternWindow& window);
  /// Insert many windows.
  void add(const std::vector<PatternWindow>& windows);
  /// Merge another catalog's counts into this one. Throws
  /// util::InputError when both catalogs carry a window spec and the
  /// specs differ — their classes would never have compared equal.
  void merge(const PatternCatalog& other);

  /// The extraction policy this catalog's windows were built under.
  /// build_catalog() and the v2 PDB format record it; catalogs assembled
  /// window-by-window may leave it unset (nullopt), which disables
  /// compatibility validation for backward compatibility.
  const std::optional<WindowSpec>& window_spec() const {
    return window_spec_;
  }
  void set_window_spec(const WindowSpec& spec) { window_spec_ = spec; }

  /// Number of distinct classes.
  std::size_t classes() const { return classes_.size(); }
  /// Total classified windows.
  std::size_t total() const { return total_; }
  /// True if a pattern with this canonical hash is present.
  bool contains(std::uint64_t hash) const { return classes_.count(hash) > 0; }
  /// All classes sorted by descending count (ties by hash — deterministic).
  std::vector<PatternClass> ranked() const;

  /// Fraction of all windows covered by the k most frequent classes.
  double coverage_top_k(std::size_t k) const;
  /// Smallest k whose top-k coverage reaches \p fraction (classes() + 1
  /// if unreachable, which cannot happen for fraction <= 1).
  std::size_t classes_for_coverage(double fraction) const;

  /// Set algebra on pattern identity (counts from *this where kept).
  PatternCatalog intersected(const PatternCatalog& other) const;
  PatternCatalog subtracted(const PatternCatalog& other) const;

  /// Internal map (hash -> class), for traversal.
  const std::map<std::uint64_t, PatternClass>& by_hash() const {
    return classes_;
  }

 private:
  std::map<std::uint64_t, PatternClass> classes_;
  std::size_t total_ = 0;
  std::optional<WindowSpec> window_spec_;
};

/// Build a catalog straight from geometry.
PatternCatalog build_catalog(const std::vector<geom::Polygon>& polys,
                             const WindowSpec& spec);

/// Kullback-Leibler divergence D(a || b) between the pattern frequency
/// distributions of two catalogs, over the union of their classes with
/// Laplace smoothing — the design-style distance of the topological
/// pattern literature.
///
/// Edge cases are pinned down: two empty catalogs have divergence 0 (no
/// classes, no disagreement), and because every class in the union gets
/// Laplace smoothing on both sides, classes present in `a` but absent in
/// `b` (q = 0 counts) contribute a large-but-finite penalty rather than
/// the +infinity of the unsmoothed definition — fully disjoint catalogs
/// therefore compare finite. See util::kl_divergence for the unsmoothed
/// semantics.
double catalog_kl_divergence(const PatternCatalog& a,
                             const PatternCatalog& b);

}  // namespace opckit::pat
