/// \file catalog.h
/// Layout Pattern Catalogs: frequency-ranked pattern class databases.
///
/// The catalog is the dataset DFM flows mine: which 2D configurations a
/// design contains and how often. Supports frequency spectra, top-k
/// coverage (the "10 classes cover 90% of vias" style of result), and
/// cross-design comparison via set algebra and KL divergence. Catalog
/// contents and orderings are deterministic functions of the input layout
/// (classes keyed by canonical hash, ties broken by rect serialization).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pattern/canonical.h"
#include "pattern/window.h"

namespace opckit::pat {

/// One pattern class in a catalog.
struct PatternClass {
  CanonicalPattern pattern;
  std::size_t count = 0;                 ///< occurrences
  geom::Point first_anchor;              ///< example location in the layout
};

/// A catalog of pattern classes keyed by canonical hash.
class PatternCatalog {
 public:
  PatternCatalog() = default;

  /// Classify and insert one window.
  void add(const PatternWindow& window);
  /// Insert many windows.
  void add(const std::vector<PatternWindow>& windows);
  /// Merge another catalog's counts into this one.
  void merge(const PatternCatalog& other);

  /// Number of distinct classes.
  std::size_t classes() const { return classes_.size(); }
  /// Total classified windows.
  std::size_t total() const { return total_; }
  /// True if a pattern with this canonical hash is present.
  bool contains(std::uint64_t hash) const { return classes_.count(hash) > 0; }
  /// All classes sorted by descending count (ties by hash — deterministic).
  std::vector<PatternClass> ranked() const;

  /// Fraction of all windows covered by the k most frequent classes.
  double coverage_top_k(std::size_t k) const;
  /// Smallest k whose top-k coverage reaches \p fraction (classes() + 1
  /// if unreachable, which cannot happen for fraction <= 1).
  std::size_t classes_for_coverage(double fraction) const;

  /// Set algebra on pattern identity (counts from *this where kept).
  PatternCatalog intersected(const PatternCatalog& other) const;
  PatternCatalog subtracted(const PatternCatalog& other) const;

  /// Internal map (hash -> class), for traversal.
  const std::map<std::uint64_t, PatternClass>& by_hash() const {
    return classes_;
  }

 private:
  std::map<std::uint64_t, PatternClass> classes_;
  std::size_t total_ = 0;
};

/// Build a catalog straight from geometry.
PatternCatalog build_catalog(const std::vector<geom::Polygon>& polys,
                             const WindowSpec& spec);

/// Kullback-Leibler divergence D(a || b) between the pattern frequency
/// distributions of two catalogs, over the union of their classes with
/// Laplace smoothing — the design-style distance of the topological
/// pattern literature.
double catalog_kl_divergence(const PatternCatalog& a,
                             const PatternCatalog& b);

}  // namespace opckit::pat
