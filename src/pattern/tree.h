/// \file tree.h
/// Pattern association tree: multi-radius containment structure.
///
/// Patterns extracted at increasing radii form a natural partial order:
/// clipping a radius-r₂ pattern to radius r₁ < r₂ yields its r₁
/// "ancestor". Organizing classes by this refinement relation gives the
/// pattern association tree (PAT): each node is a pattern class at one
/// radius level, its parent is its clip at the previous level, and the
/// branching factor measures how much context the extra radius
/// discriminates — the basis for choosing optimal pattern context size.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pattern/canonical.h"
#include "pattern/window.h"

namespace opckit::pat {

/// One node of the pattern association tree.
struct PatternNode {
  std::size_t level = 0;        ///< index into the radius list
  CanonicalPattern pattern;     ///< canonical form at this radius
  std::size_t count = 0;        ///< windows classified into this node
  std::size_t parent = SIZE_MAX;        ///< node index at level-1 (SIZE_MAX = root level)
  std::vector<std::size_t> children;    ///< node indices at level+1
};

/// The tree over all radius levels.
class PatternTree {
 public:
  /// Build from geometry: windows are extracted at every radius in
  /// \p radii (ascending, all > 0) around the same anchors (corners).
  PatternTree(const std::vector<geom::Polygon>& polys,
              std::vector<geom::Coord> radii);

  /// Radius list (ascending).
  const std::vector<geom::Coord>& radii() const { return radii_; }
  /// All nodes (tree arena).
  const std::vector<PatternNode>& nodes() const { return nodes_; }
  /// Node indices at one level.
  std::vector<std::size_t> level_nodes(std::size_t level) const;
  /// Number of distinct classes at one level.
  std::size_t classes_at(std::size_t level) const;

  /// Mean number of children of level-\p level nodes that have children —
  /// the discrimination gained by growing the radius one step.
  double refinement_factor(std::size_t level) const;

  /// Smallest level whose class count stops growing (within \p tol
  /// relative change) — the "optimal context radius" criterion. Returns
  /// the last level if it never saturates.
  std::size_t saturation_level(double tol = 0.02) const;

 private:
  std::vector<geom::Coord> radii_;
  std::vector<PatternNode> nodes_;
};

}  // namespace opckit::pat
