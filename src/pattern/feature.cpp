#include "pattern/feature.h"

#include <algorithm>
#include <cmath>

namespace opckit::pat {

namespace {

/// Scale a log1p term into roughly [0, 1] for nm-sized coordinates so no
/// single scalar dominates the occupancy cells.
double log_scaled(double x, double divisor) {
  return std::log1p(std::max(0.0, x)) / divisor;
}

}  // namespace

PatternFeature feature_of(const std::vector<geom::Rect>& canonical_rects) {
  PatternFeature f;
  if (canonical_rects.empty()) return f;

  geom::Rect bbox = canonical_rects.front();
  for (const geom::Rect& r : canonical_rects) {
    bbox.lo.x = std::min(bbox.lo.x, r.lo.x);
    bbox.lo.y = std::min(bbox.lo.y, r.lo.y);
    bbox.hi.x = std::max(bbox.hi.x, r.hi.x);
    bbox.hi.y = std::max(bbox.hi.y, r.hi.y);
  }
  const double w = static_cast<double>(bbox.hi.x - bbox.lo.x);
  const double h = static_cast<double>(bbox.hi.y - bbox.lo.y);
  if (w <= 0.0 || h <= 0.0) return f;

  // Occupancy: fraction of each grid cell covered by pattern geometry.
  // Canonical rects are non-overlapping (they come from a Region rect
  // decomposition), so summing per-rect intersection areas is exact.
  const double cw = w / static_cast<double>(kFeatureGrid);
  const double ch = h / static_cast<double>(kFeatureGrid);
  double filled = 0.0;
  for (const geom::Rect& r : canonical_rects) {
    const double rx0 = static_cast<double>(r.lo.x - bbox.lo.x);
    const double ry0 = static_cast<double>(r.lo.y - bbox.lo.y);
    const double rx1 = static_cast<double>(r.hi.x - bbox.lo.x);
    const double ry1 = static_cast<double>(r.hi.y - bbox.lo.y);
    filled += (rx1 - rx0) * (ry1 - ry0);
    const auto gx0 = static_cast<std::size_t>(
        std::clamp(std::floor(rx0 / cw), 0.0,
                   static_cast<double>(kFeatureGrid - 1)));
    const auto gy0 = static_cast<std::size_t>(
        std::clamp(std::floor(ry0 / ch), 0.0,
                   static_cast<double>(kFeatureGrid - 1)));
    const auto gx1 = static_cast<std::size_t>(
        std::clamp(std::ceil(rx1 / cw) - 1.0, 0.0,
                   static_cast<double>(kFeatureGrid - 1)));
    const auto gy1 = static_cast<std::size_t>(
        std::clamp(std::ceil(ry1 / ch) - 1.0, 0.0,
                   static_cast<double>(kFeatureGrid - 1)));
    for (std::size_t gy = gy0; gy <= gy1; ++gy) {
      const double cy0 = ch * static_cast<double>(gy);
      const double cy1 = cy0 + ch;
      const double oy = std::min(ry1, cy1) - std::max(ry0, cy0);
      if (oy <= 0.0) continue;
      for (std::size_t gx = gx0; gx <= gx1; ++gx) {
        const double cx0 = cw * static_cast<double>(gx);
        const double cx1 = cx0 + cw;
        const double ox = std::min(rx1, cx1) - std::max(rx0, cx0);
        if (ox <= 0.0) continue;
        f.v[gy * kFeatureGrid + gx] += (ox * oy) / (cw * ch);
      }
    }
  }

  // Shape scalars live after the grid cells. log1p keeps nm-scale extents
  // comparable to the [0, 1] occupancy fractions.
  const std::size_t s = kFeatureGrid * kFeatureGrid;
  f.v[s + 0] = log_scaled(w, 8.0);
  f.v[s + 1] = log_scaled(h, 8.0);
  f.v[s + 2] = log_scaled(static_cast<double>(canonical_rects.size()), 4.0);
  f.v[s + 3] = filled / (w * h);

  double sq = 0.0;
  for (double x : f.v) sq += x * x;
  f.norm = std::sqrt(sq);
  return f;
}

double feature_distance(const PatternFeature& a, const PatternFeature& b) {
  double sq = 0.0;
  for (std::size_t i = 0; i < kFeatureDims; ++i) {
    const double d = a.v[i] - b.v[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace opckit::pat
