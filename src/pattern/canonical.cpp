#include "pattern/canonical.h"

#include <algorithm>

namespace opckit::pat {

using geom::Orientation;
using geom::Rect;
using geom::Region;
using geom::Transform;

Region oriented(const Region& window_geometry, Orientation o) {
  const Transform t(o, {0, 0});
  std::vector<Rect> rects;
  for (const Rect& r : window_geometry.rects()) {
    rects.push_back(t(r));
  }
  return Region::from_rects(rects);
}

namespace {

bool rect_list_less(const std::vector<Rect>& a, const std::vector<Rect>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].lo != b[i].lo) return a[i].lo < b[i].lo;
    if (a[i].hi != b[i].hi) return a[i].hi < b[i].hi;
  }
  return a.size() < b.size();
}

}  // namespace

std::uint64_t hash_rects(const std::vector<Rect>& rects) {
  // FNV-1a over the coordinate stream.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](geom::Coord c) {
    auto v = static_cast<std::uint64_t>(c);
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const Rect& r : rects) {
    mix(r.lo.x);
    mix(r.lo.y);
    mix(r.hi.x);
    mix(r.hi.y);
  }
  return h;
}

OrientedCanonical canonicalize_oriented(const Region& window_geometry) {
  OrientedCanonical best;
  bool first = true;
  for (Orientation o : geom::all_orientations()) {
    // Region::rects() is already canonical (slab order) for a given
    // geometry, so orientations compare deterministically. Strict
    // less-than keeps the FIRST minimal orientation, making the reported
    // witness a pure function of the geometry.
    std::vector<Rect> rects = oriented(window_geometry, o).rects();
    if (first || rect_list_less(rects, best.pattern.rects)) {
      best.pattern.rects = std::move(rects);
      best.orientation = o;
      first = false;
    }
  }
  best.pattern.hash = hash_rects(best.pattern.rects);
  return best;
}

CanonicalPattern canonicalize(const Region& window_geometry) {
  return canonicalize_oriented(window_geometry).pattern;
}

}  // namespace opckit::pat
