/// \file pattern.h
/// Umbrella header for the layout-pattern-catalog subsystem.
#pragma once

#include "pattern/canonical.h"  // IWYU pragma: export
#include "pattern/catalog.h"    // IWYU pragma: export
#include "pattern/matcher.h"    // IWYU pragma: export
#include "pattern/pdb.h"        // IWYU pragma: export
#include "pattern/tree.h"       // IWYU pragma: export
#include "pattern/window.h"     // IWYU pragma: export
