#include "pattern/matcher.h"

#include "util/check.h"

namespace opckit::pat {

PatternMatcher::PatternMatcher(geom::Coord radius) {
  OPCKIT_CHECK(radius > 0);
  spec_.radius = radius;
  spec_.anchors = AnchorKind::kCorners;
}

PatternMatcher::PatternMatcher(const WindowSpec& spec) : spec_(spec) {
  OPCKIT_CHECK(spec.radius > 0);
}

bool PatternMatcher::add_rule(MatchRule rule) {
  OPCKIT_CHECK_MSG(!rule.name.empty(), "match rule needs a name");
  // insert_or_assign, not emplace: emplace is a no-op on a duplicate key,
  // which used to silently drop the new rule. Last wins, and the caller
  // is told which case happened.
  const auto [it, inserted] =
      by_hash_.insert_or_assign(rule.pattern.hash, std::move(rule.name));
  return inserted;
}

bool PatternMatcher::add_rule(const std::string& name,
                              const geom::Region& local_geometry) {
  MatchRule rule;
  rule.name = name;
  rule.pattern = canonicalize(local_geometry);
  return add_rule(std::move(rule));
}

void PatternMatcher::add_catalog(const PatternCatalog& catalog,
                                 const std::string& name_prefix) {
  if (catalog.window_spec() && !(*catalog.window_spec() == spec_)) {
    throw util::InputError(
        "pattern matcher: catalog was built under a different window spec "
        "than this deck scans with (radius " +
        std::to_string(catalog.window_spec()->radius) + " vs " +
        std::to_string(spec_.radius) +
        "); its patterns could never match — rebuild the catalog or the "
        "matcher under one spec");
  }
  for (const auto& [hash, cls] : catalog.by_hash()) {
    MatchRule rule;
    rule.name = name_prefix + "." + std::to_string(hash);
    rule.pattern = cls.pattern;
    add_rule(std::move(rule));
  }
}

std::vector<MatchHit> PatternMatcher::scan(
    const std::vector<geom::Polygon>& polys) const {
  std::vector<MatchHit> hits;
  for (const PatternWindow& w : extract_windows(polys, spec_)) {
    const CanonicalPattern canon = canonicalize(w.geometry);
    const auto it = by_hash_.find(canon.hash);
    if (it != by_hash_.end()) {
      hits.push_back({it->second, w.anchor});
    }
  }
  return hits;
}

}  // namespace opckit::pat
