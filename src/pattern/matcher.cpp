#include "pattern/matcher.h"

#include "util/check.h"

namespace opckit::pat {

PatternMatcher::PatternMatcher(geom::Coord radius) : radius_(radius) {
  OPCKIT_CHECK(radius > 0);
}

void PatternMatcher::add_rule(MatchRule rule) {
  OPCKIT_CHECK_MSG(!rule.name.empty(), "match rule needs a name");
  by_hash_.emplace(rule.pattern.hash, std::move(rule.name));
}

void PatternMatcher::add_rule(const std::string& name,
                              const geom::Region& local_geometry) {
  MatchRule rule;
  rule.name = name;
  rule.pattern = canonicalize(local_geometry);
  add_rule(std::move(rule));
}

void PatternMatcher::add_catalog(const PatternCatalog& catalog,
                                 const std::string& name_prefix) {
  for (const auto& [hash, cls] : catalog.by_hash()) {
    MatchRule rule;
    rule.name = name_prefix + "." + std::to_string(hash);
    rule.pattern = cls.pattern;
    add_rule(std::move(rule));
  }
}

std::vector<MatchHit> PatternMatcher::scan(
    const std::vector<geom::Polygon>& polys) const {
  WindowSpec spec;
  spec.radius = radius_;
  spec.anchors = AnchorKind::kCorners;
  std::vector<MatchHit> hits;
  for (const PatternWindow& w : extract_windows(polys, spec)) {
    const CanonicalPattern canon = canonicalize(w.geometry);
    const auto it = by_hash_.find(canon.hash);
    if (it != by_hash_.end()) {
      hits.push_back({it->second, w.anchor});
    }
  }
  return hits;
}

}  // namespace opckit::pat
