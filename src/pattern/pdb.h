/// \file pdb.h
/// Pattern database persistence.
///
/// Pattern catalogs only pay off when they accumulate across designs and
/// technology cycles — the "pattern database" (PDB) workflow: classify a
/// test chip, persist; classify the first product, merge; carry the
/// learning (counts, first-seen anchors, canonical geometry) forward so
/// hotspot identity is stable across years. The on-disk format is a
/// versioned line-oriented text file: human-diffable, deterministic, and
/// stable under append/merge.
#pragma once

#include <iosfwd>
#include <string>

#include "pattern/catalog.h"

namespace opckit::pat {

/// Serialize a catalog. Deterministic (classes ordered by hash).
void write_pdb(const PatternCatalog& catalog, std::ostream& os);

/// Serialize to a file. Throws util::InputError on I/O failure.
void write_pdb_file(const PatternCatalog& catalog, const std::string& path);

/// Parse a PDB stream. Throws util::InputError on malformed content or
/// version mismatch. Round-trips write_pdb exactly.
PatternCatalog read_pdb(std::istream& is);

/// Parse from a file.
PatternCatalog read_pdb_file(const std::string& path);

}  // namespace opckit::pat
