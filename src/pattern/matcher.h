/// \file matcher.h
/// DRC-Plus style pattern matching: scan a layout for occurrences of
/// known problematic pattern classes.
///
/// The workflow this enables is the one the pattern-catalog literature
/// describes: yield learning identifies bad 2D configurations (from
/// hotspot simulation or failure analysis), they are canonicalized into a
/// match deck, and physical verification flags every place a new design
/// uses them — a pass/fail check that needs no simulation at signoff.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "pattern/catalog.h"

namespace opckit::pat {

/// One entry of a match deck.
struct MatchRule {
  std::string name;           ///< e.g. "hotspot.bridge.0042"
  CanonicalPattern pattern;   ///< canonical form at the deck's radius
};

/// A location where a deck pattern occurs in the scanned layout.
struct MatchHit {
  std::string rule;
  geom::Point anchor;  ///< layout coordinates of the matching window
};

/// A compiled pattern-match deck bound to one window extraction spec.
class PatternMatcher {
 public:
  /// Create an empty deck matching corner-anchored windows of \p radius.
  explicit PatternMatcher(geom::Coord radius);
  /// Create an empty deck scanning under an explicit extraction spec —
  /// required when the deck's patterns were cataloged under anything
  /// other than corner anchors at the default policy.
  explicit PatternMatcher(const WindowSpec& spec);

  /// Add a rule from an already-canonicalized pattern. A rule whose
  /// canonical hash is already in the deck REPLACES the old rule
  /// (last wins); returns true when the rule was new, false when it
  /// replaced an existing one — never a silent drop.
  bool add_rule(MatchRule rule);
  /// Convenience: canonicalize a window-local geometry and add it.
  bool add_rule(const std::string& name, const geom::Region& local_geometry);
  /// Import every class of a catalog as a rule (names generated from the
  /// class hash) — e.g. "everything seen failing on the previous chip".
  /// Throws util::InputError when the catalog carries a window spec that
  /// differs from the deck's: its patterns were clipped under a different
  /// radius/anchor policy and could never match a scan, so importing them
  /// would silently guarantee zero hits.
  void add_catalog(const PatternCatalog& catalog,
                   const std::string& name_prefix);

  /// Number of rules.
  std::size_t size() const { return by_hash_.size(); }
  geom::Coord radius() const { return spec_.radius; }
  const WindowSpec& window_spec() const { return spec_; }

  /// Scan a layout (windows extracted under the deck's spec) and return
  /// every hit, in deterministic order.
  std::vector<MatchHit> scan(const std::vector<geom::Polygon>& polys) const;

 private:
  WindowSpec spec_;
  std::unordered_map<std::uint64_t, std::string> by_hash_;
};

}  // namespace opckit::pat
