#include "pattern/window.h"

#include <algorithm>

#include "util/check.h"

namespace opckit::pat {

using geom::Coord;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;

std::vector<PatternWindow> extract_windows(const std::vector<Polygon>& polys,
                                           const WindowSpec& spec) {
  OPCKIT_CHECK(spec.radius > 0);

  // Anchor list.
  std::vector<Point> anchors;
  if (spec.anchors == AnchorKind::kCorners) {
    for (const auto& p : polys) {
      for (std::size_t i = 0; i < p.size(); ++i) anchors.push_back(p[i]);
    }
    std::sort(anchors.begin(), anchors.end());
    anchors.erase(std::unique(anchors.begin(), anchors.end()),
                  anchors.end());
  } else {
    OPCKIT_CHECK(spec.grid_step > 0);
    Rect box = Rect::empty();
    for (const auto& p : polys) box = box.united(p.bbox());
    if (box.is_empty()) return {};
    for (Coord y = box.lo.y; y <= box.hi.y; y += spec.grid_step) {
      for (Coord x = box.lo.x; x <= box.hi.x; x += spec.grid_step) {
        anchors.push_back({x, y});
      }
    }
  }

  // Spatial index over polygons for window clipping.
  Rect extent = Rect::empty();
  for (const auto& p : polys) extent = extent.united(p.bbox());
  if (extent.is_empty()) extent = Rect(0, 0, 1, 1);
  geom::TileIndex index(extent.inflated(spec.radius + 1),
                        std::max<Coord>(spec.radius * 2, 256));
  for (std::size_t i = 0; i < polys.size(); ++i) {
    index.insert(i, polys[i].bbox());
  }

  std::vector<PatternWindow> out;
  out.reserve(anchors.size());
  for (const Point& a : anchors) {
    const Rect window(a.x - spec.radius, a.y - spec.radius,
                      a.x + spec.radius, a.y + spec.radius);
    std::vector<Polygon> local;
    for (std::size_t id : index.query(window)) {
      local.push_back(polys[id]);
    }
    Region clipped = Region::from_polygons(local)
                         .clipped(window)
                         .translated(-a);
    if (spec.skip_empty && clipped.empty()) continue;
    out.push_back({a, std::move(clipped)});
  }
  return out;
}

}  // namespace opckit::pat
