/// \file canonical.h
/// Canonical forms of pattern windows under the D4 symmetry group.
///
/// Two windows describe the same pattern class when one maps onto the
/// other by a rotation/reflection about the window center. The canonical
/// form is the lexicographically smallest rectangle-list serialization
/// over all eight orientations — unique and unambiguous, so pattern
/// identity is pure data, with no matching code to write (the property the
/// topological-pattern line of work emphasizes).
///
/// Two consumers: pattern catalogs (catalog.h) key classes by the
/// canonical form alone, and the OPC correction cache
/// (core/correction_cache.h) additionally uses the witness orientation
/// from canonicalize_oriented() to tell pure translations apart from
/// genuine D4 frame changes when reusing solved corrections.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/geometry.h"

namespace opckit::pat {

/// A canonicalized pattern.
struct CanonicalPattern {
  std::vector<geom::Rect> rects;  ///< canonical rect decomposition
  std::uint64_t hash = 0;         ///< 64-bit content hash of rects

  friend bool operator==(const CanonicalPattern&,
                         const CanonicalPattern&) = default;
};

/// Canonicalize a window-local region (as produced by extract_windows:
/// centered on the origin, clipped to [-radius, radius]²) under D4.
CanonicalPattern canonicalize(const geom::Region& window_geometry);

/// A canonical pattern together with the orientation that produced it.
struct OrientedCanonical {
  CanonicalPattern pattern;
  /// The D4 element mapping the *input* geometry onto the canonical form:
  /// oriented(input, orientation).rects() == pattern.rects. When several
  /// orientations reach the same minimum (symmetric patterns), the first
  /// in all_orientations() order is chosen — so geometrically identical
  /// inputs always report identical orientations, a property the OPC
  /// correction cache relies on to map solutions between frames.
  geom::Orientation orientation = geom::Orientation::kR0;
};

/// Canonicalize and report the witnessing orientation. canonicalize() is
/// this function with the orientation discarded.
OrientedCanonical canonicalize_oriented(const geom::Region& window_geometry);

/// The orientation-invariance witness: canonicalize(apply(o, region)) is
/// identical for every o in D4. Exposed for testing and for building
/// symmetry-reduction statistics.
geom::Region oriented(const geom::Region& window_geometry,
                      geom::Orientation o);

/// The content hash CanonicalPattern::hash is computed with (FNV-1a over
/// the rect coordinate stream). Public so pattern keys can round-trip
/// through external serializations — the persistent correction store
/// saves an entry's canonical rects and recomputes the hash on import
/// rather than trusting a stored one.
std::uint64_t hash_rects(const std::vector<geom::Rect>& rects);

}  // namespace opckit::pat
