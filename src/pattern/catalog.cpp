#include "pattern/catalog.h"

#include <algorithm>
#include <set>

#include "util/check.h"
#include "util/stats.h"

namespace opckit::pat {

void PatternCatalog::add(const PatternWindow& window) {
  CanonicalPattern canon = canonicalize(window.geometry);
  auto [it, inserted] = classes_.try_emplace(canon.hash);
  if (inserted) {
    it->second.pattern = std::move(canon);
    it->second.first_anchor = window.anchor;
  }
  ++it->second.count;
  ++total_;
}

void PatternCatalog::add(const std::vector<PatternWindow>& windows) {
  for (const auto& w : windows) add(w);
}

void PatternCatalog::merge(const PatternCatalog& other) {
  if (window_spec_ && other.window_spec_ &&
      !(*window_spec_ == *other.window_spec_)) {
    throw util::InputError(
        "pattern catalog: cannot merge catalogs built under different "
        "window specs (radius/anchor mismatch makes their classes "
        "incomparable)");
  }
  if (!window_spec_) window_spec_ = other.window_spec_;
  for (const auto& [hash, cls] : other.classes_) {
    auto [it, inserted] = classes_.try_emplace(hash, cls);
    if (!inserted) it->second.count += cls.count;
  }
  total_ += other.total_;
}

std::vector<PatternClass> PatternCatalog::ranked() const {
  std::vector<PatternClass> out;
  out.reserve(classes_.size());
  for (const auto& [hash, cls] : classes_) out.push_back(cls);
  std::sort(out.begin(), out.end(),
            [](const PatternClass& a, const PatternClass& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.pattern.hash < b.pattern.hash;
            });
  return out;
}

double PatternCatalog::coverage_top_k(std::size_t k) const {
  if (total_ == 0) return 0.0;
  const auto r = ranked();
  std::size_t covered = 0;
  for (std::size_t i = 0; i < std::min(k, r.size()); ++i) {
    covered += r[i].count;
  }
  return static_cast<double>(covered) / static_cast<double>(total_);
}

std::size_t PatternCatalog::classes_for_coverage(double fraction) const {
  OPCKIT_CHECK(fraction >= 0.0 && fraction <= 1.0);
  if (total_ == 0) return 0;
  const auto r = ranked();
  std::size_t covered = 0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    covered += r[i].count;
    if (static_cast<double>(covered) >=
        fraction * static_cast<double>(total_)) {
      return i + 1;
    }
  }
  return r.size();
}

PatternCatalog PatternCatalog::intersected(const PatternCatalog& other) const {
  PatternCatalog out;
  out.window_spec_ = window_spec_;
  for (const auto& [hash, cls] : classes_) {
    if (other.contains(hash)) {
      out.classes_.emplace(hash, cls);
      out.total_ += cls.count;
    }
  }
  return out;
}

PatternCatalog PatternCatalog::subtracted(const PatternCatalog& other) const {
  PatternCatalog out;
  out.window_spec_ = window_spec_;
  for (const auto& [hash, cls] : classes_) {
    if (!other.contains(hash)) {
      out.classes_.emplace(hash, cls);
      out.total_ += cls.count;
    }
  }
  return out;
}

PatternCatalog build_catalog(const std::vector<geom::Polygon>& polys,
                             const WindowSpec& spec) {
  PatternCatalog cat;
  cat.set_window_spec(spec);
  cat.add(extract_windows(polys, spec));
  return cat;
}

double catalog_kl_divergence(const PatternCatalog& a,
                             const PatternCatalog& b) {
  std::set<std::uint64_t> keys;
  for (const auto& [hash, cls] : a.by_hash()) keys.insert(hash);
  for (const auto& [hash, cls] : b.by_hash()) keys.insert(hash);
  std::vector<double> pa, pb;
  pa.reserve(keys.size());
  pb.reserve(keys.size());
  for (std::uint64_t k : keys) {
    const auto ia = a.by_hash().find(k);
    const auto ib = b.by_hash().find(k);
    pa.push_back(ia == a.by_hash().end()
                     ? 0.0
                     : static_cast<double>(ia->second.count));
    pb.push_back(ib == b.by_hash().end()
                     ? 0.0
                     : static_cast<double>(ib->second.count));
  }
  if (pa.empty()) return 0.0;
  return util::kl_divergence(pa, pb);
}

}  // namespace opckit::pat
