#include "pattern/tree.h"

#include <algorithm>

#include "util/check.h"

namespace opckit::pat {

using geom::Coord;
using geom::Rect;
using geom::Region;

PatternTree::PatternTree(const std::vector<geom::Polygon>& polys,
                         std::vector<Coord> radii)
    : radii_(std::move(radii)) {
  OPCKIT_CHECK(!radii_.empty());
  OPCKIT_CHECK(std::is_sorted(radii_.begin(), radii_.end()));
  OPCKIT_CHECK(radii_.front() > 0);

  // Extract at the largest radius once; smaller levels are clips of it,
  // which guarantees every window has a well-defined ancestor chain.
  WindowSpec spec;
  spec.radius = radii_.back();
  spec.anchors = AnchorKind::kCorners;
  spec.skip_empty = true;
  const auto windows = extract_windows(polys, spec);

  // level -> (canonical hash -> node index)
  std::vector<std::map<std::uint64_t, std::size_t>> level_index(
      radii_.size());

  for (const auto& w : windows) {
    std::size_t parent = SIZE_MAX;
    for (std::size_t lvl = 0; lvl < radii_.size(); ++lvl) {
      const Coord r = radii_[lvl];
      const Region clip =
          lvl + 1 == radii_.size()
              ? w.geometry
              : w.geometry.clipped(Rect(-r, -r, r, r));
      CanonicalPattern canon = canonicalize(clip);
      auto [it, inserted] = level_index[lvl].try_emplace(canon.hash);
      if (inserted) {
        it->second = nodes_.size();
        PatternNode node;
        node.level = lvl;
        node.pattern = std::move(canon);
        node.parent = parent;
        nodes_.push_back(std::move(node));
        if (parent != SIZE_MAX) {
          nodes_[parent].children.push_back(it->second);
        }
      }
      PatternNode& node = nodes_[it->second];
      OPCKIT_CHECK_MSG(node.parent == parent,
                       "containment violated: same pattern, two parents");
      ++node.count;
      parent = it->second;
    }
  }
}

std::vector<std::size_t> PatternTree::level_nodes(std::size_t level) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].level == level) out.push_back(i);
  }
  return out;
}

std::size_t PatternTree::classes_at(std::size_t level) const {
  return level_nodes(level).size();
}

double PatternTree::refinement_factor(std::size_t level) const {
  OPCKIT_CHECK(level < radii_.size());
  std::size_t parents = 0, kids = 0;
  for (std::size_t i : level_nodes(level)) {
    if (!nodes_[i].children.empty()) {
      ++parents;
      kids += nodes_[i].children.size();
    }
  }
  return parents == 0 ? 0.0
                      : static_cast<double>(kids) /
                            static_cast<double>(parents);
}

std::size_t PatternTree::saturation_level(double tol) const {
  for (std::size_t lvl = 1; lvl < radii_.size(); ++lvl) {
    const auto prev = static_cast<double>(classes_at(lvl - 1));
    const auto cur = static_cast<double>(classes_at(lvl));
    if (prev > 0 && (cur - prev) / prev <= tol) return lvl - 1;
  }
  return radii_.size() - 1;
}

}  // namespace opckit::pat
