#include "pattern/library.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "pattern/canonical.h"
#include "util/check.h"

namespace opckit::pat {
namespace {

// Library file layout mirrors the `.ocs` store (see result_store.h):
// same header shape and CRC discipline under a distinct magic/version,
// with each record framing a TileRecord payload plus its warm seeds.
constexpr std::array<std::uint8_t, 8> kMagic = {'O', 'P', 'C', 'K',
                                                'I', 'T', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;
constexpr std::size_t kSeedBytes = 3 * 8;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::int64_t get_i64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return static_cast<std::int64_t>(v);
}

std::vector<std::uint8_t> encode_library_record(const LibraryRecord& rec) {
  const std::vector<std::uint8_t> tile =
      store::store_detail::encode_record(rec.tile);
  std::vector<std::uint8_t> out;
  out.reserve(4 + tile.size() + 4 + rec.seeds.size() * kSeedBytes);
  put_u32(out, static_cast<std::uint32_t>(tile.size()));
  out.insert(out.end(), tile.begin(), tile.end());
  put_u32(out, static_cast<std::uint32_t>(rec.seeds.size()));
  for (const WarmSeed& s : rec.seeds) {
    put_i64(out, s.site.x);
    put_i64(out, s.site.y);
    put_i64(out, s.offset);
  }
  return out;
}

/// Parse one library-record payload; false on any structural violation.
bool decode_library_record(const std::uint8_t* data, std::size_t size,
                           LibraryRecord& rec) {
  if (size < 4) return false;
  const std::uint32_t tile_len = get_u32(data);
  std::size_t pos = 4;
  if (size - pos < tile_len) return false;
  if (!store::store_detail::decode_record(data + pos, tile_len, rec.tile))
    return false;
  pos += tile_len;
  if (size - pos < 4) return false;
  const std::uint32_t n_seeds = get_u32(data + pos);
  pos += 4;
  if ((size - pos) / kSeedBytes < n_seeds) return false;
  rec.seeds.resize(n_seeds);
  for (WarmSeed& s : rec.seeds) {
    s.site.x = get_i64(data + pos);
    s.site.y = get_i64(data + pos + 8);
    s.offset = get_i64(data + pos + 16);
    pos += kSeedBytes;
  }
  return pos == size;
}

int open_writer_fd(const std::string& path, int flags) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    throw util::InputError("pattern library: cannot open '" + path +
                           "' for writing: " + std::strerror(errno));
  return fd;
}

void write_all_fd(int fd, const std::uint8_t* data, std::size_t size,
                  const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::InputError("pattern library: write failed on '" + path +
                             "': " + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

PatternLibrary::PatternLibrary(PatternLibrary&& other) noexcept
    : records_(std::move(other.records_)),
      features_(std::move(other.features_)),
      by_norm_(std::move(other.by_norm_)),
      window_hashes_(std::move(other.window_hashes_)),
      load_info_(other.load_info_),
      path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      sync_on_append_(other.sync_on_append_) {}

PatternLibrary& PatternLibrary::operator=(PatternLibrary&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    records_ = std::move(other.records_);
    features_ = std::move(other.features_);
    by_norm_ = std::move(other.by_norm_);
    window_hashes_ = std::move(other.window_hashes_);
    load_info_ = other.load_info_;
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    sync_on_append_ = other.sync_on_append_;
  }
  return *this;
}

PatternLibrary::~PatternLibrary() {
  if (fd_ >= 0) ::close(fd_);
}

PatternLibrary PatternLibrary::open(const std::string& path,
                                    std::uint64_t fingerprint,
                                    bool sync_on_append) {
  PatternLibrary lib;
  lib.path_ = path;
  lib.sync_on_append_ = sync_on_append;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Fresh library: write the header now so a crash before the first
    // insert leaves a valid (empty) file.
    std::vector<std::uint8_t> header;
    header.insert(header.end(), kMagic.begin(), kMagic.end());
    put_u32(header, kVersion);
    put_u64(header, fingerprint);
    put_u32(header,
            store::store_detail::crc32(header.data(), header.size()));
    OPCKIT_DCHECK(header.size() == kHeaderSize);
    lib.fd_ = open_writer_fd(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
    write_all_fd(lib.fd_, header.data(), header.size(), path);
    return lib;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();

  // ---- header (same refusal contract as the correction store) ----
  if (bytes.size() < kHeaderSize)
    throw util::InputError("pattern library: '" + path +
                           "' is too short to hold a library header (" +
                           std::to_string(bytes.size()) + " bytes)");
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin()))
    throw util::InputError("pattern library: '" + path +
                           "' does not start with the OPCKITL1 magic");
  const std::uint32_t version = get_u32(bytes.data() + 8);
  std::uint64_t file_fp = 0;
  for (int i = 0; i < 8; ++i)
    file_fp |= static_cast<std::uint64_t>(bytes[12 + static_cast<std::size_t>(
                                                         i)])
               << (8 * i);
  const std::uint32_t header_crc = get_u32(bytes.data() + 20);
  if (store::store_detail::crc32(bytes.data(), kHeaderSize - 4) != header_crc)
    throw util::InputError("pattern library: '" + path +
                           "' header checksum mismatch");
  if (version != kVersion)
    throw util::InputError(
        "pattern library: '" + path + "' has library version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kVersion));
  if (file_fp != fingerprint)
    throw util::InputError(
        "pattern library: '" + path +
        "' was written under a different process setup; refusing to "
        "warm-start from it — delete it to rebuild");

  // ---- records: keep whole verified records, recover a torn tail ----
  std::size_t pos = kHeaderSize;
  std::uint64_t valid_bytes = pos;
  while (pos < bytes.size()) {
    const std::size_t rem = bytes.size() - pos;
    std::uint32_t len = 0;
    bool torn = rem < 4;
    if (!torn) {
      len = get_u32(bytes.data() + pos);
      torn = static_cast<std::uint64_t>(len) + 8 > rem;
    }
    if (torn) {
      lib.load_info_.tail_recovered = true;
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 4;
    const std::uint32_t stored_crc = get_u32(payload + len);
    if (store::store_detail::crc32(payload, len) != stored_crc)
      throw util::InputError(
          "pattern library: '" + path + "' record " +
          std::to_string(lib.records_.size()) +
          " fails its checksum; the library is corrupt — delete it");
    LibraryRecord rec;
    if (!decode_library_record(payload, len, rec))
      throw util::InputError(
          "pattern library: '" + path + "' record " +
          std::to_string(lib.records_.size()) +
          " is structurally malformed despite a valid checksum; the "
          "library is corrupt — delete it");
    // Rebuild the index from geometry; features and hashes are derived
    // data and are never trusted from disk.
    const std::size_t idx = lib.records_.size();
    lib.features_.push_back(feature_of(rec.tile.window_rects));
    lib.window_hashes_.push_back(hash_rects(rec.tile.window_rects));
    const auto key = std::make_pair(lib.features_.back().norm, idx);
    lib.by_norm_.insert(
        std::upper_bound(lib.by_norm_.begin(), lib.by_norm_.end(), key), key);
    lib.records_.push_back(std::move(rec));
    pos += 4 + static_cast<std::size_t>(len) + 4;
    valid_bytes = pos;
  }
  lib.load_info_.records_loaded = lib.records_.size();

  // Drop any recovered torn tail before appending, as append_to does.
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec)
    throw util::InputError("pattern library: cannot truncate '" + path +
                           "' to its valid prefix: " + ec.message());
  lib.fd_ = open_writer_fd(path, O_WRONLY | O_APPEND | O_CLOEXEC);
  return lib;
}

bool PatternLibrary::insert(const LibraryRecord& rec) {
  const std::uint64_t wh = hash_rects(rec.tile.window_rects);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (window_hashes_[i] == wh && records_[i].tile == rec.tile) return false;
  }
  const std::size_t idx = records_.size();
  features_.push_back(feature_of(rec.tile.window_rects));
  window_hashes_.push_back(wh);
  const auto key = std::make_pair(features_.back().norm, idx);
  by_norm_.insert(std::upper_bound(by_norm_.begin(), by_norm_.end(), key),
                  key);
  records_.push_back(rec);

  if (fd_ >= 0) {
    const std::vector<std::uint8_t> payload = encode_library_record(rec);
    std::vector<std::uint8_t> framed;
    framed.reserve(payload.size() + 8);
    put_u32(framed, static_cast<std::uint32_t>(payload.size()));
    framed.insert(framed.end(), payload.begin(), payload.end());
    put_u32(framed,
            store::store_detail::crc32(payload.data(), payload.size()));
    write_all_fd(fd_, framed.data(), framed.size(), path_);
    if (sync_on_append_ && ::fsync(fd_) != 0)
      throw util::InputError("pattern library: fsync failed on '" + path_ +
                             "': " + std::strerror(errno));
  }
  return true;
}

std::optional<NearMatch> PatternLibrary::nearest(const PatternFeature& query,
                                                 double budget) const {
  if (budget < 0.0 || by_norm_.empty()) return std::nullopt;
  // ||a|| - ||b|| <= ||a - b||: only entries whose norm lies within
  // `budget` of the query norm can possibly match — scan just that band.
  const auto lo = std::lower_bound(
      by_norm_.begin(), by_norm_.end(),
      std::make_pair(query.norm - budget, std::size_t{0}));
  std::optional<NearMatch> best;
  for (auto it = lo; it != by_norm_.end() && it->first <= query.norm + budget;
       ++it) {
    const double d = feature_distance(query, features_[it->second]);
    if (d > budget) continue;
    if (!best || d < best->distance ||
        (d == best->distance && it->second < best->index)) {
      best = NearMatch{it->second, d};
    }
  }
  return best;
}

PatternLibrary PatternLibrary::clone_memory() const {
  PatternLibrary copy;
  copy.records_ = records_;
  copy.features_ = features_;
  copy.by_norm_ = by_norm_;
  copy.window_hashes_ = window_hashes_;
  copy.load_info_ = load_info_;
  return copy;
}

}  // namespace opckit::pat
