/// \file feature.h
/// Compact feature vectors over canonical pattern geometry.
///
/// The pattern library (library.h) retrieves *near* matches: a tile whose
/// halo neighborhood is not byte-identical to any solved pattern but close
/// enough that the solved correction is a good warm start. "Close" is
/// measured in a small fixed-dimension feature space computed from the
/// D4-canonical rect decomposition — an occupancy grid over the pattern
/// bounding box plus a few global shape scalars. Because the input is the
/// canonical form, the vector is invariant under translation and all eight
/// D4 orientations by construction; small edge jitter moves occupancy
/// fractions by O(jitter / window), so geometric similarity maps to small
/// L2 distance.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "geometry/geometry.h"

namespace opckit::pat {

/// Occupancy-grid resolution (kFeatureGrid × kFeatureGrid cells).
inline constexpr std::size_t kFeatureGrid = 6;
/// Total dimensions: grid cells + 4 shape scalars (log-scaled bbox width
/// and height, log-scaled rect count, overall fill fraction).
inline constexpr std::size_t kFeatureDims = kFeatureGrid * kFeatureGrid + 4;

/// A point in feature space with its cached L2 norm (used by the index's
/// triangle-inequality pruning).
struct PatternFeature {
  std::array<double, kFeatureDims> v{};
  double norm = 0.0;

  friend bool operator==(const PatternFeature&,
                         const PatternFeature&) = default;
};

/// Compute the feature vector of a canonical rect decomposition
/// (CanonicalPattern::rects). The empty pattern maps to the zero vector.
PatternFeature feature_of(const std::vector<geom::Rect>& canonical_rects);

/// Euclidean distance between two feature vectors.
double feature_distance(const PatternFeature& a, const PatternFeature& b);

}  // namespace opckit::pat
