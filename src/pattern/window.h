/// \file window.h
/// Pattern window extraction.
///
/// A layout pattern catalog is built by clipping fixed-radius windows of
/// geometry around anchor points and classifying the clips. Anchors follow
/// the DRC-Plus practice: geometric events (polygon corners), where
/// proximity effects concentrate — optionally a uniform grid for
/// area-coverage studies.
#pragma once

#include <vector>

#include "geometry/geometry.h"

namespace opckit::pat {

/// Where to place pattern windows.
enum class AnchorKind { kCorners, kGrid };

/// Window extraction policy. Equality matters: a catalog built under one
/// spec only matches windows extracted under the same spec, so consumers
/// that combine catalogs (merge, match decks) validate spec compatibility
/// instead of silently comparing incomparable windows.
struct WindowSpec {
  geom::Coord radius = 400;      ///< half-side of the square window (nm)
  AnchorKind anchors = AnchorKind::kCorners;
  geom::Coord grid_step = 800;   ///< anchor pitch for kGrid
  bool skip_empty = true;        ///< drop windows with no geometry

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

/// One extracted window: geometry translated to window-local coordinates
/// (anchor at the origin) and clipped to [-radius, radius]².
struct PatternWindow {
  geom::Point anchor;      ///< anchor in layout coordinates
  geom::Region geometry;   ///< local, clipped
};

/// Extract pattern windows from a polygon set.
std::vector<PatternWindow> extract_windows(
    const std::vector<geom::Polygon>& polys, const WindowSpec& spec);

}  // namespace opckit::pat
