#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "lint/lint.h"

namespace opckit::lint {

namespace {

/// Sentinel for an open-ended bias range (deck_io writes it as '*').
constexpr geom::Coord kOpenEnd = std::numeric_limits<geom::Coord>::max();

std::string range_str(const opc::BiasRule& r) {
  std::ostringstream os;
  os << "[" << r.space_min << ", ";
  if (r.space_max == kOpenEnd) {
    os << "*)";
  } else {
    os << r.space_max << ")";
  }
  return os.str();
}

}  // namespace

LintReport lint_rule_deck(const opc::RuleDeck& deck,
                          const LintOptions& options) {
  LintReport report;

  // Scalar deck values must be non-negative sizes.
  const auto check_size = [&](const char* key, geom::Coord value) {
    if (value < 0) {
      report.add("RUL001", std::string(key) + " is negative (" +
                               std::to_string(value) + ")");
    }
  };
  check_size("interaction_range", deck.interaction_range);
  check_size("line_end_max", deck.line_end_max);
  check_size("line_end_extension", deck.line_end_extension);
  check_size("hammer_overhang", deck.hammer_overhang);
  check_size("serif_size", deck.serif_size);
  check_size("mousebite_size", deck.mousebite_size);

  // Per-rule validity.
  for (const opc::BiasRule& r : deck.bias_rules) {
    if (r.space_min < 0 || r.space_max <= r.space_min) {
      report.add("RUL001", "bias range " + range_str(r) + " is empty or "
                           "negative");
    }
    // A bias is applied to BOTH edges facing a space, so the space
    // shrinks by 2*bias; at the range's own lower bound that must stay
    // positive or facing mask edges merge.
    if (r.bias > 0 && r.space_min - 2 * r.bias <= 0) {
      report.add("RUL005",
                 "bias " + std::to_string(r.bias) + " in range " +
                     range_str(r) + " closes a " +
                     std::to_string(r.space_min) + " nm space");
    }
  }

  // Table-level checks run on a space-ordered copy (the deck contract is
  // ascending, but lint must not trust the contract it verifies).
  std::vector<opc::BiasRule> rules = deck.bias_rules;
  std::sort(rules.begin(), rules.end(),
            [](const opc::BiasRule& a, const opc::BiasRule& b) {
              return a.space_min < b.space_min;
            });
  geom::Coord largest_space = 0;
  for (std::size_t i = 0; i + 1 < rules.size(); ++i) {
    const opc::BiasRule& a = rules[i];
    const opc::BiasRule& b = rules[i + 1];
    if (a.space_max > b.space_min) {
      report.add("RUL002", "ranges " + range_str(a) + " and " +
                               range_str(b) + " overlap");
    } else if (a.space_max < b.space_min) {
      report.add("RUL003",
                 "spaces in [" + std::to_string(a.space_max) + ", " +
                     std::to_string(b.space_min) +
                     ") match no rule and get zero bias");
    }
  }
  for (const opc::BiasRule& r : rules) {
    if (r.space_max != kOpenEnd) {
      largest_space = std::max(largest_space, r.space_max);
    }
  }

  // A proximity signature's bias-vs-space curve is usually monotonic; a
  // table that zig-zags deserves a second look against the measured
  // curve (forbidden-pitch dips are real, transcription errors are not).
  bool non_decreasing = true;
  bool non_increasing = true;
  for (std::size_t i = 0; i + 1 < rules.size(); ++i) {
    if (rules[i + 1].bias < rules[i].bias) non_decreasing = false;
    if (rules[i + 1].bias > rules[i].bias) non_increasing = false;
  }
  if (!non_decreasing && !non_increasing) {
    report.add("RUL004",
               "bias values zig-zag across the space axis; verify against "
               "the measured proximity curve");
  }

  // Decorations larger than half the minimum feature print as bridges
  // or pinches instead of corner fixes.
  const geom::Coord half_feature = options.min_feature_nm / 2;
  const auto check_decoration = [&](const char* key, geom::Coord value) {
    if (value > half_feature) {
      report.add("RUL006", std::string(key) + " " + std::to_string(value) +
                               " nm exceeds half the min feature (" +
                               std::to_string(half_feature) + " nm)");
    }
  };
  check_decoration("serif_size", deck.serif_size);
  check_decoration("hammer_overhang", deck.hammer_overhang);
  check_decoration("mousebite_size", deck.mousebite_size);

  if (largest_space > deck.interaction_range) {
    report.add("RUL007",
               "bias table reaches " + std::to_string(largest_space) +
                   " nm but interaction_range is " +
                   std::to_string(deck.interaction_range) + " nm");
  }

  return report;
}

}  // namespace opckit::lint
