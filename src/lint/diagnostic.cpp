#include "lint/diagnostic.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/table.h"

namespace opckit::lint {

namespace {

// Registry of every diagnostic opclint can emit, grouped by domain.
// Order is the presentation order of `opckit lint --codes` and of the
// DESIGN.md code listing; keep new codes at the end of their group.
constexpr CodeInfo kCodes[] = {
    // Polygon well-formedness.
    {"LAY001", Severity::kError, "self-intersecting polygon ring",
     "split the ring at the crossing into simple polygons"},
    {"LAY002", Severity::kError,
     "degenerate polygon (zero area or < 3 distinct vertices)",
     "drop the shape or redraw it with area and three distinct vertices"},
    {"LAY003", Severity::kWarning, "clockwise winding as stored",
     "reverse the vertex order to counter-clockwise"},
    {"LAY004", Severity::kError, "non-Manhattan edge",
     "rectilinearize the edge; this engine corrects Manhattan masks only"},
    {"LAY005", Severity::kWarning,
     "unnormalized ring (duplicate or collinear vertices)",
     "normalize the ring: drop duplicate and collinear vertices"},
    {"LAY006", Severity::kWarning, "vertex off the mask grid",
     "snap the vertex to the mask grid (ModelOpcSpec::grid_nm)"},
    // Hierarchy / library structure.
    {"HIE001", Severity::kError, "dangling cell reference",
     "add the missing cell to the library or delete the reference"},
    {"HIE002", Severity::kError, "cell-hierarchy cycle",
     "break the cycle; a cell may never reach itself through references"},
    {"HIE003", Severity::kWarning, "empty cell (no shapes, no references)",
     "delete the empty cell or add its intended content"},
    {"HIE004", Severity::kError, "degenerate array reference",
     "give the array positive rows/columns and a nonzero pitch"},
    {"HIE005", Severity::kNote,
     "layer number carries multiple datatypes (derived data present?)",
     "confirm the extra datatypes are intended derived data (e.g. OPC "
     "output); move unrelated data to its own layer"},
    // GDSII structural limits.
    {"GDS001", Severity::kError, "polygon exceeds GDSII vertex capacity",
     "split the polygon below the GDSII XY-record vertex limit"},
    {"GDS002", Severity::kError, "coordinate outside GDSII 32-bit range",
     "recenter or shrink the layout to fit signed 32-bit coordinates"},
    {"GDS003", Severity::kWarning, "cell name violates GDSII naming rules",
     "rename the cell within GDSII's allowed character set and length"},
    // Rule-deck sanity.
    {"RUL001", Severity::kError, "invalid deck value or bias range",
     "fix the deck entry so values are finite and ranges are ordered"},
    {"RUL002", Severity::kError, "overlapping bias-table ranges",
     "make the space ranges disjoint so each space matches one row"},
    {"RUL003", Severity::kWarning, "gap in bias-table space coverage",
     "extend adjacent ranges so every space value maps to a bias"},
    {"RUL004", Severity::kWarning, "non-monotonic bias table",
     "order the biases monotonically in space (denser gets more bias)"},
    {"RUL005", Severity::kError, "bias large enough to merge facing edges",
     "reduce the bias below half the smallest space its range covers"},
    {"RUL006", Severity::kWarning,
     "serif/hammerhead/mousebite exceeds half the min feature",
     "shrink the decoration below half the minimum feature size"},
    {"RUL007", Severity::kWarning,
     "interaction range below largest bias-table space",
     "raise the interaction range above the largest bias-table space"},
    // Model-parameter bands.
    {"MOD001", Severity::kError, "numerical aperture out of range",
     "set the numerical aperture inside the physical (0, 1) band"},
    {"MOD002", Severity::kError, "illumination sigma out of range",
     "keep the partial-coherence sigma within [0, 1]"},
    {"MOD003", Severity::kWarning, "non-standard exposure wavelength",
     "use a production exposure line (436/365/248/193 nm) or re-check"},
    {"MOD004", Severity::kError,
     "pixel size undersamples the aerial image (Nyquist)",
     "shrink pixel_nm below the Nyquist limit for lambda/NA"},
    {"MOD005", Severity::kWarning,
     "guard band below the optical interaction range",
     "raise guard_nm to at least the optical interaction range"},
    {"MOD006", Severity::kError, "OPC feedback gain outside stable range",
     "bring the feedback gain back inside the stable band"},
    {"MOD007", Severity::kError, "inconsistent OPC move/grid clamps",
     "order the clamps: grid <= per-iter move <= total offset <= probe "
     "range"},

    {"STO001", Severity::kError,
     "correction store written under a different process fingerprint",
     "rerun without --resume to rebuild the store under the current "
     "model/deck/flow setup"},
    {"STO002", Severity::kWarning,
     "correction store tail torn mid-record; partial record dropped",
     "no action needed — the interrupted tile is re-solved and the tail "
     "is truncated on the next append"},
    {"STO003", Severity::kError,
     "correction store header malformed or version unknown",
     "the file is not a store this build can read; delete it and rerun "
     "without --resume"},
    {"STO004", Severity::kError,
     "correction store record corrupt (checksum or structure)",
     "the store is damaged beyond a torn tail; delete it and rerun "
     "without --resume"},

    // Mask-rule signoff (scanline MRC engine, src/mrc). Each finding
    // carries the witness edges and measured distance in its message
    // and the marker rect as its location.
    {"MRC001", Severity::kError, "mask feature narrower than minimum width",
     "widen the feature or relax the correction move that pinched it"},
    {"MRC002", Severity::kError, "mask gap narrower than minimum space",
     "pull the facing edges apart or merge the shapes intentionally"},
    {"MRC003", Severity::kError, "boundary edge shorter than minimum length",
     "coarsen the fragmentation or drop the sub-resolution decoration"},
    {"MRC004", Severity::kError, "notch opening narrower than minimum",
     "fill the indentation or widen its opening beyond the rule"},
    {"MRC005", Severity::kWarning, "jog step shorter than minimum",
     "snap neighbouring fragment offsets to a coarser move grid"},
    {"MRC006", Severity::kError, "corner-to-corner gap below minimum",
     "pull the diagonally facing convex corners apart"},
    {"MRC007", Severity::kError, "connected mask area below minimum",
     "grow the island above the mask shop's minimum writable area or "
     "delete it"},
};

// Domain groups in kCodes presentation order. The prefix is the first
// three characters of the codes in the group.
constexpr struct {
  const char* prefix;
  const char* title;
} kDomains[] = {
    {"LAY", "Polygon well-formedness"},
    {"HIE", "Hierarchy / library structure"},
    {"GDS", "GDSII structural limits"},
    {"RUL", "Rule-deck sanity"},
    {"MOD", "Model-parameter bands"},
    {"STO", "Correction-store integrity"},
    {"MRC", "Mask-rule signoff"},
};

}  // namespace

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::to_line() const {
  std::ostringstream os;
  os << code << ' ' << to_string(severity);
  if (!cell.empty()) os << " cell=" << cell;
  if (has_layer) os << " layer=" << layer;
  if (!where.is_empty()) os << " at " << where;
  os << ": " << message;
  return os.str();
}

std::span<const CodeInfo> all_codes() { return kCodes; }

const char* domain_title(std::string_view code) {
  for (const auto& d : kDomains) {
    if (code.substr(0, 3) == d.prefix) return d.title;
  }
  return nullptr;
}

const CodeInfo* find_code(std::string_view code) {
  for (const CodeInfo& info : kCodes) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

void LintReport::add(Diagnostic d) {
  OPCKIT_CHECK_MSG(find_code(d.code) != nullptr,
                   "unregistered diagnostic code: " << d.code);
  findings_.push_back(std::move(d));
}

void LintReport::add(std::string_view code, std::string message,
                     std::string cell, geom::Rect where) {
  const CodeInfo* info = find_code(code);
  OPCKIT_CHECK_MSG(info != nullptr,
                   "unregistered diagnostic code: " << code);
  Diagnostic d;
  d.code = std::string(code);
  d.severity = info->default_severity;
  d.message = std::move(message);
  d.cell = std::move(cell);
  d.where = where;
  findings_.push_back(std::move(d));
}

void LintReport::merge(LintReport&& other) {
  findings_.insert(findings_.end(),
                   std::make_move_iterator(other.findings_.begin()),
                   std::make_move_iterator(other.findings_.end()));
  other.findings_.clear();
}

std::size_t LintReport::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(findings_.begin(), findings_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::vector<std::string> LintReport::codes() const {
  std::set<std::string> uniq;
  for (const Diagnostic& d : findings_) uniq.insert(d.code);
  return {uniq.begin(), uniq.end()};
}

namespace {

util::Table report_table(const LintReport& report) {
  util::Table t({"code", "severity", "cell", "layer", "where", "message"});
  for (const Diagnostic& d : report.findings()) {
    std::ostringstream layer_os, where_os;
    if (d.has_layer) layer_os << d.layer;
    if (!d.where.is_empty()) where_os << d.where;
    t.add_row(d.code, std::string(to_string(d.severity)), d.cell,
              layer_os.str(), where_os.str(), d.message);
  }
  return t;
}

}  // namespace

std::string render_text(const LintReport& report, const std::string& title) {
  std::ostringstream os;
  os << report_table(report).to_text(title);
  os << report.findings().size() << " finding(s): " << report.errors()
     << " error(s), " << report.warnings() << " warning(s), "
     << report.count(Severity::kNote) << " note(s)\n";
  return os.str();
}

std::string render_csv(const LintReport& report) {
  return report_table(report).to_csv();
}

std::string render_codes_markdown() {
  std::ostringstream os;
  os << "# opclint diagnostic codes\n"
        "\n"
        "Generated by `opckit lint --codes --format md` from the compiled\n"
        "registry in `src/lint/diagnostic.cpp`. Do not edit by hand —\n"
        "`tools/ci.sh` regenerates this file and fails on drift.\n"
        "\n"
        "Severities: **error** findings block flows (the OPC pre-flight\n"
        "gate aborts); warnings and notes are advisory. See\n"
        "[DESIGN.md](../DESIGN.md) for the analyzer's architecture.\n";
  const char* current = nullptr;
  for (const CodeInfo& info : kCodes) {
    const char* domain = domain_title(info.code);
    if (domain != current) {
      os << "\n## " << (domain ? domain : "Other") << "\n\n";
      os << "| Code | Severity | Finding | Remedy |\n";
      os << "|------|----------|---------|--------|\n";
      current = domain;
    }
    os << "| " << info.code << " | " << to_string(info.default_severity)
       << " | " << info.title << " | " << info.remedy << " |\n";
  }
  return os.str();
}

}  // namespace opckit::lint
