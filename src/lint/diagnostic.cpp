#include "lint/diagnostic.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/table.h"

namespace opckit::lint {

namespace {

// Registry of every diagnostic opclint can emit, grouped by domain.
// Order is the presentation order of `opckit lint --codes` and of the
// DESIGN.md code listing; keep new codes at the end of their group.
constexpr CodeInfo kCodes[] = {
    // Polygon well-formedness.
    {"LAY001", Severity::kError, "self-intersecting polygon ring"},
    {"LAY002", Severity::kError,
     "degenerate polygon (zero area or < 3 distinct vertices)"},
    {"LAY003", Severity::kWarning, "clockwise winding as stored"},
    {"LAY004", Severity::kError, "non-Manhattan edge"},
    {"LAY005", Severity::kWarning,
     "unnormalized ring (duplicate or collinear vertices)"},
    {"LAY006", Severity::kWarning, "vertex off the mask grid"},
    // Hierarchy / library structure.
    {"HIE001", Severity::kError, "dangling cell reference"},
    {"HIE002", Severity::kError, "cell-hierarchy cycle"},
    {"HIE003", Severity::kWarning, "empty cell (no shapes, no references)"},
    {"HIE004", Severity::kError, "degenerate array reference"},
    {"HIE005", Severity::kNote,
     "layer number carries multiple datatypes (derived data present?)"},
    // GDSII structural limits.
    {"GDS001", Severity::kError, "polygon exceeds GDSII vertex capacity"},
    {"GDS002", Severity::kError, "coordinate outside GDSII 32-bit range"},
    {"GDS003", Severity::kWarning, "cell name violates GDSII naming rules"},
    // Rule-deck sanity.
    {"RUL001", Severity::kError, "invalid deck value or bias range"},
    {"RUL002", Severity::kError, "overlapping bias-table ranges"},
    {"RUL003", Severity::kWarning, "gap in bias-table space coverage"},
    {"RUL004", Severity::kWarning, "non-monotonic bias table"},
    {"RUL005", Severity::kError, "bias large enough to merge facing edges"},
    {"RUL006", Severity::kWarning,
     "serif/hammerhead/mousebite exceeds half the min feature"},
    {"RUL007", Severity::kWarning,
     "interaction range below largest bias-table space"},
    // Model-parameter bands.
    {"MOD001", Severity::kError, "numerical aperture out of range"},
    {"MOD002", Severity::kError, "illumination sigma out of range"},
    {"MOD003", Severity::kWarning, "non-standard exposure wavelength"},
    {"MOD004", Severity::kError,
     "pixel size undersamples the aerial image (Nyquist)"},
    {"MOD005", Severity::kWarning,
     "guard band below the optical interaction range"},
    {"MOD006", Severity::kError, "OPC feedback gain outside stable range"},
    {"MOD007", Severity::kError, "inconsistent OPC move/grid clamps"},
};

}  // namespace

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::to_line() const {
  std::ostringstream os;
  os << code << ' ' << to_string(severity);
  if (!cell.empty()) os << " cell=" << cell;
  if (has_layer) os << " layer=" << layer;
  if (!where.is_empty()) os << " at " << where;
  os << ": " << message;
  return os.str();
}

std::span<const CodeInfo> all_codes() { return kCodes; }

const CodeInfo* find_code(std::string_view code) {
  for (const CodeInfo& info : kCodes) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

void LintReport::add(Diagnostic d) {
  OPCKIT_CHECK_MSG(find_code(d.code) != nullptr,
                   "unregistered diagnostic code: " << d.code);
  findings_.push_back(std::move(d));
}

void LintReport::add(std::string_view code, std::string message,
                     std::string cell, geom::Rect where) {
  const CodeInfo* info = find_code(code);
  OPCKIT_CHECK_MSG(info != nullptr,
                   "unregistered diagnostic code: " << code);
  Diagnostic d;
  d.code = std::string(code);
  d.severity = info->default_severity;
  d.message = std::move(message);
  d.cell = std::move(cell);
  d.where = where;
  findings_.push_back(std::move(d));
}

void LintReport::merge(LintReport&& other) {
  findings_.insert(findings_.end(),
                   std::make_move_iterator(other.findings_.begin()),
                   std::make_move_iterator(other.findings_.end()));
  other.findings_.clear();
}

std::size_t LintReport::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(findings_.begin(), findings_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::vector<std::string> LintReport::codes() const {
  std::set<std::string> uniq;
  for (const Diagnostic& d : findings_) uniq.insert(d.code);
  return {uniq.begin(), uniq.end()};
}

namespace {

util::Table report_table(const LintReport& report) {
  util::Table t({"code", "severity", "cell", "layer", "where", "message"});
  for (const Diagnostic& d : report.findings()) {
    std::ostringstream layer_os, where_os;
    if (d.has_layer) layer_os << d.layer;
    if (!d.where.is_empty()) where_os << d.where;
    t.add_row(d.code, std::string(to_string(d.severity)), d.cell,
              layer_os.str(), where_os.str(), d.message);
  }
  return t;
}

}  // namespace

std::string render_text(const LintReport& report, const std::string& title) {
  std::ostringstream os;
  os << report_table(report).to_text(title);
  os << report.findings().size() << " finding(s): " << report.errors()
     << " error(s), " << report.warnings() << " warning(s), "
     << report.count(Severity::kNote) << " note(s)\n";
  return os.str();
}

std::string render_csv(const LintReport& report) {
  return report_table(report).to_csv();
}

}  // namespace opckit::lint
