/// \file lint.h
/// opclint — static analysis for layouts, rule decks, and process models.
///
/// Every entry point validates its input *without running lithography
/// simulation*: the checks are pure geometry/structure/parameter-band
/// screens, cheap enough to gate every flow run. This is the
/// "verification before correction" discipline the paper's adoption
/// story demands — a sub-wavelength mask made from a self-intersecting
/// polygon or a non-monotonic bias table produces garbage CDs, not
/// error messages, unless something screens the inputs first.
///
/// Analyzers only *report*; policy (block vs. proceed) belongs to the
/// caller. `opc::FlowSpec::preflight` wires the error-severity findings
/// into a hard gate in front of the OPC flows.
#pragma once

#include <string>

#include "core/model.h"
#include "core/rules.h"
#include "geometry/polygon.h"
#include "layout/library.h"
#include "lint/diagnostic.h"
#include "litho/simulator.h"

namespace opckit::lint {

/// Tunable thresholds shared by the analyzers.
struct LintOptions {
  /// Mask manufacturing grid; vertices off this grid raise LAY006.
  /// 1 (the DB unit) disables the check.
  geom::Coord grid_nm = 1;
  /// Process minimum feature; used to band rule-deck decoration sizes.
  geom::Coord min_feature_nm = 180;
  /// GDSII XY record capacity (vertex pairs) before writers must split.
  std::size_t max_gdsii_vertices = 8190;
};

/// Lint one polygon ring (LAY001..LAY006, GDS001, GDS002). \p cell and
/// \p layer scope the findings; pass defaults for standalone polygons.
void lint_polygon(const geom::Polygon& poly, const LintOptions& options,
                  LintReport& report, const std::string& cell = "",
                  const layout::Layer* layer = nullptr);

/// Lint a whole library: every stored polygon plus hierarchy structure
/// (HIE001..HIE005, GDS003). Cycle-safe: a cyclic hierarchy is reported,
/// never traversed unboundedly.
LintReport lint_library(const layout::Library& lib,
                        const LintOptions& options = {});

/// Lint a rule-OPC deck (RUL001..RUL007).
LintReport lint_rule_deck(const opc::RuleDeck& deck,
                          const LintOptions& options = {});

/// Lint process/imaging parameters (MOD001..MOD005).
LintReport lint_sim_spec(const litho::SimSpec& spec,
                         const LintOptions& options = {});

/// Lint model-OPC loop parameters (MOD006, MOD007).
LintReport lint_opc_spec(const opc::ModelOpcSpec& spec,
                         const LintOptions& options = {});

}  // namespace opckit::lint
