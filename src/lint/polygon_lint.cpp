#include <cstdlib>
#include <sstream>
#include <vector>

#include "lint/lint.h"
#include "util/check.h"

namespace opckit::lint {

namespace {

using geom::Coord;
using geom::Point;
using geom::Polygon;

/// GDSII XY records store coordinates as signed 32-bit DB units.
constexpr Coord kGdsCoordMax = 2147483647;

/// Orientation sign of c relative to the directed line a->b. 128-bit
/// intermediates: GDS-range coordinates (2^31) make the cross product
/// overflow 64 bits.
int orient(const Point& a, const Point& b, const Point& c) {
  const __int128 v =
      static_cast<__int128>(b.x - a.x) * (c.y - a.y) -
      static_cast<__int128>(b.y - a.y) * (c.x - a.x);
  return v > 0 ? 1 : v < 0 ? -1 : 0;
}

/// p collinear with [a,b] assumed; true if p lies within the segment box.
bool on_segment(const Point& a, const Point& b, const Point& p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

/// Any contact (crossing or touch) between segments [p1,p2] and [p3,p4].
bool segments_intersect(const Point& p1, const Point& p2, const Point& p3,
                        const Point& p4) {
  const int d1 = orient(p3, p4, p1);
  const int d2 = orient(p3, p4, p2);
  const int d3 = orient(p1, p2, p3);
  const int d4 = orient(p1, p2, p4);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && on_segment(p3, p4, p1)) return true;
  if (d2 == 0 && on_segment(p3, p4, p2)) return true;
  if (d3 == 0 && on_segment(p1, p2, p3)) return true;
  if (d4 == 0 && on_segment(p1, p2, p4)) return true;
  return false;
}

/// Ring vertices with consecutive duplicates (incl. the wrap pair)
/// removed, so every edge has positive length.
std::vector<Point> dedup_ring(const Polygon& poly) {
  std::vector<Point> v;
  v.reserve(poly.size());
  for (const Point& p : poly.ring()) {
    if (v.empty() || !(v.back() == p)) v.push_back(p);
  }
  while (v.size() > 1 && v.front() == v.back()) v.pop_back();
  return v;
}

/// True if the ring touches or crosses itself anywhere except at the
/// shared endpoints of consecutive edges. Consecutive edges still count
/// when they fold back onto each other (zero-width spike).
bool ring_self_intersects(const std::vector<Point>& v) {
  const std::size_t n = v.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a1 = v[i];
    const Point& a2 = v[(i + 1) % n];
    for (std::size_t j = i + 1; j < n; ++j) {
      const Point& b1 = v[j];
      const Point& b2 = v[(j + 1) % n];
      const bool adjacent = j == i + 1 || (i == 0 && j == n - 1);
      if (adjacent) {
        // Shared endpoint s; the edges overlap beyond s iff they are
        // collinear and run the same way out of s.
        const Point& s = j == i + 1 ? a2 : a1;
        const Point& u = j == i + 1 ? a1 : a2;
        const Point& w = j == i + 1 ? b2 : b1;
        if (orient(u, s, w) == 0 && geom::dot(u - s, w - s) > 0) return true;
        continue;
      }
      if (segments_intersect(a1, a2, b1, b2)) return true;
    }
  }
  return false;
}

}  // namespace

void lint_polygon(const Polygon& poly, const LintOptions& options,
                  LintReport& report, const std::string& cell,
                  const layout::Layer* layer) {
  const auto add = [&](std::string_view code, std::string message) {
    const CodeInfo* info = find_code(code);
    OPCKIT_CHECK(info != nullptr);
    Diagnostic d;
    d.code = std::string(code);
    d.severity = info->default_severity;
    d.message = std::move(message);
    d.cell = cell;
    if (layer != nullptr) {
      d.layer = *layer;
      d.has_layer = true;
    }
    d.where = poly.bbox();
    report.add(std::move(d));
  };

  // Structural limits on the ring exactly as stored.
  if (poly.size() > options.max_gdsii_vertices) {
    add("GDS001", "ring has " + std::to_string(poly.size()) +
                      " vertices; GDSII XY records carry at most " +
                      std::to_string(options.max_gdsii_vertices));
  }
  for (const Point& p : poly.ring()) {
    if (std::abs(p.x) > kGdsCoordMax || std::abs(p.y) > kGdsCoordMax) {
      std::ostringstream os;
      os << "vertex " << p << " outside the signed 32-bit GDSII range";
      add("GDS002", os.str());
      break;  // one finding per ring is enough
    }
  }
  if (options.grid_nm > 1) {
    for (const Point& p : poly.ring()) {
      if (p.x % options.grid_nm != 0 || p.y % options.grid_nm != 0) {
        std::ostringstream os;
        os << "vertex " << p << " off the " << options.grid_nm
           << " nm mask grid";
        add("LAY006", os.str());
        break;
      }
    }
  }

  const std::vector<Point> ring = dedup_ring(poly);
  if (ring_self_intersects(ring)) {
    add("LAY001", "ring touches or crosses itself");
    // Winding/area/shape checks are meaningless on a non-simple ring.
    return;
  }
  const Polygon norm = poly.normalized();
  if (norm.empty()) {
    add("LAY002", "ring encloses no area");
    return;
  }
  if (poly.signed_area2() < 0) {
    add("LAY003", "stored ring is clockwise; engines expect CCW");
  }
  if (norm.size() != poly.size()) {
    add("LAY005",
        "ring stores " + std::to_string(poly.size()) + " vertices but only " +
            std::to_string(norm.size()) + " are essential");
  }
  if (!norm.is_manhattan()) {
    add("LAY004",
        "ring has non-axis-parallel edges; OPC/DRC engines are Manhattan");
  }
}

}  // namespace opckit::lint
