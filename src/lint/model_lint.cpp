#include <cmath>
#include <sstream>

#include "lint/lint.h"

namespace opckit::lint {

LintReport lint_sim_spec(const litho::SimSpec& spec,
                         const LintOptions& options) {
  (void)options;
  LintReport report;
  const litho::OpticalSystem& sys = spec.optics;
  const litho::SourceSpec& src = sys.source;

  if (sys.na <= 0.0 || sys.na >= 1.0) {
    std::ostringstream os;
    os << "NA " << sys.na
       << " outside (0, 1); the scalar paraxial model is dry-tool only";
    report.add("MOD001", os.str());
  }

  if (src.sigma_outer <= 0.0 || src.sigma_outer > 1.0) {
    std::ostringstream os;
    os << "sigma_outer " << src.sigma_outer << " outside (0, 1]";
    report.add("MOD002", os.str());
  } else if (src.shape == litho::SourceShape::kAnnular &&
             (src.sigma_inner < 0.0 || src.sigma_inner >= src.sigma_outer)) {
    std::ostringstream os;
    os << "annular sigma_inner " << src.sigma_inner
       << " must sit in [0, sigma_outer=" << src.sigma_outer << ")";
    report.add("MOD002", os.str());
  } else if ((src.shape == litho::SourceShape::kDipoleX ||
              src.shape == litho::SourceShape::kDipoleY) &&
             (src.pole_radius <= 0.0 ||
              src.pole_center - src.pole_radius < 0.0 ||
              src.pole_center + src.pole_radius > 1.0)) {
    std::ostringstream os;
    os << "dipole poles (center " << src.pole_center << ", radius "
       << src.pole_radius << ") leave the unit pupil";
    report.add("MOD002", os.str());
  }

  if (sys.wavelength_nm <= 0.0) {
    Diagnostic d;
    d.code = "MOD003";
    d.severity = Severity::kError;  // not merely unusual: unusable
    std::ostringstream os;
    os << "wavelength " << sys.wavelength_nm << " nm is not positive";
    d.message = os.str();
    report.add(std::move(d));
  } else {
    // Production exposure lines of the paper's era and since.
    constexpr double kLines[] = {365.0, 248.0, 193.0, 157.0, 13.5};
    bool known = false;
    for (const double line : kLines) {
      if (std::abs(sys.wavelength_nm - line) <= 2.0) known = true;
    }
    if (!known) {
      std::ostringstream os;
      os << "wavelength " << sys.wavelength_nm
         << " nm matches no production exposure line (365/248/193/157/13.5)";
      report.add("MOD003", os.str());
    }
  }

  // Raster-sampling band: the highest spatial frequency the optics pass
  // is NA*(1+sigma)/lambda, so the intensity Nyquist pixel is
  // lambda / (4*NA*(1+sigma)). Coarser pixels alias the aerial image.
  if (sys.na > 0.0 && sys.wavelength_nm > 0.0 && src.sigma_outer > 0.0) {
    const double nyquist_nm =
        sys.wavelength_nm / (4.0 * sys.na * (1.0 + src.sigma_outer));
    if (spec.pixel_nm > nyquist_nm) {
      std::ostringstream os;
      os << "pixel " << spec.pixel_nm << " nm exceeds the Nyquist pixel "
         << nyquist_nm << " nm for this optics";
      report.add("MOD004", os.str());
    }
    const double interaction_nm = 2.0 * sys.wavelength_nm / sys.na;
    if (static_cast<double>(spec.guard_nm) < interaction_nm) {
      std::ostringstream os;
      os << "guard band " << spec.guard_nm
         << " nm is below the ~2*lambda/NA interaction range ("
         << interaction_nm << " nm); periodic FFT boundaries will leak "
         << "into the window";
      report.add("MOD005", os.str());
    }
  }
  if (spec.pixel_nm <= 0.0) {
    report.add("MOD004", "pixel size must be positive");
  }

  return report;
}

LintReport lint_opc_spec(const opc::ModelOpcSpec& spec,
                         const LintOptions& options) {
  (void)options;
  LintReport report;

  if (spec.gain <= 0.0 || spec.gain > 2.0) {
    std::ostringstream os;
    os << "gain " << spec.gain
       << " outside (0, 2]; the EPE feedback loop diverges or stalls";
    report.add("MOD006", os.str());
  }
  if (spec.corner_gain_scale < 0.0 || spec.corner_gain_scale > 1.0) {
    std::ostringstream os;
    os << "corner_gain_scale " << spec.corner_gain_scale
       << " outside [0, 1]";
    report.add("MOD006", os.str());
  }

  const auto clamp_error = [&](const std::string& message) {
    report.add("MOD007", message);
  };
  if (spec.max_iterations < 1) {
    clamp_error("max_iterations must be at least 1");
  }
  if (spec.grid_nm < 1) {
    clamp_error("mask grid must be at least 1 DB unit, got " +
                std::to_string(spec.grid_nm));
  } else if (spec.max_move_per_iter < spec.grid_nm) {
    clamp_error("max_move_per_iter " + std::to_string(spec.max_move_per_iter) +
                " nm is below the mask grid " + std::to_string(spec.grid_nm) +
                " nm; every move snaps to zero");
  }
  if (spec.max_total_offset < spec.max_move_per_iter) {
    clamp_error("max_total_offset " + std::to_string(spec.max_total_offset) +
                " nm is below max_move_per_iter " +
                std::to_string(spec.max_move_per_iter) + " nm");
  }
  if (spec.epe_tolerance_nm <= 0.0) {
    clamp_error("epe_tolerance_nm must be positive");
  }
  if (spec.probe_range_nm <= 0.0) {
    clamp_error("probe_range_nm must be positive");
  } else if (spec.probe_range_nm <
             static_cast<double>(spec.max_total_offset)) {
    clamp_error("probe_range_nm " + std::to_string(spec.probe_range_nm) +
                " cannot see past max_total_offset " +
                std::to_string(spec.max_total_offset) +
                " nm; converged fragments would read as lost edges");
  }
  if (spec.min_mask_space_nm < 0 || spec.min_tip_gap_nm < 0 ||
      spec.corner_max_offset < 0) {
    clamp_error("mask-space / tip-gap / corner clamps must be non-negative");
  }

  return report;
}

}  // namespace opckit::lint
