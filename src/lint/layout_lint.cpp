#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "lint/lint.h"

namespace opckit::lint {

namespace {

bool valid_gds_name(const std::string& name) {
  if (name.empty() || name.size() > 32) return false;
  for (const char c : name) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '$' ||
                    c == '?';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

LintReport lint_library(const layout::Library& lib,
                        const LintOptions& options) {
  LintReport report;

  // Per-cell structure and geometry.
  for (const std::string& name : lib.cell_names()) {
    const layout::Cell& cell = lib.at(name);
    if (!valid_gds_name(name)) {
      report.add("GDS003",
                 "cell name \"" + name +
                     "\" is empty, longer than 32 chars, or uses characters "
                     "outside [A-Za-z0-9_$?]",
                 name);
    }
    if (cell.polygon_count() == 0 && cell.refs().empty()) {
      report.add("HIE003", "cell has neither shapes nor references", name);
    }
    for (const layout::CellRef& ref : cell.refs()) {
      if (!lib.has_cell(ref.child)) {
        report.add("HIE001",
                   "reference to undefined cell \"" + ref.child + "\"", name);
      }
      if (ref.columns < 1 || ref.rows < 1) {
        report.add("HIE004",
                   "array reference to \"" + ref.child + "\" has " +
                       std::to_string(ref.columns) + "x" +
                       std::to_string(ref.rows) + " elements",
                   name);
      }
    }
    for (const layout::Layer& layer : cell.layers()) {
      for (const geom::Polygon& poly : cell.shapes(layer)) {
        lint_polygon(poly, options, report, name, &layer);
      }
    }
  }

  // Cycle detection: DFS coloring over the reference graph. Dangling
  // children were already reported, so they are skipped here; a cyclic
  // graph is reported (once per cycle-closing cell), never re-entered.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::set<std::string> cycle_reported;
  std::function<void(const std::string&)> visit =
      [&](const std::string& name) {
        Color& c = color[name];
        if (c == Color::kGray) {
          if (cycle_reported.insert(name).second) {
            report.add("HIE002", "hierarchy cycle passes through this cell",
                       name);
          }
          return;
        }
        if (c == Color::kBlack) return;
        c = Color::kGray;
        for (const layout::CellRef& ref : lib.at(name).refs()) {
          if (lib.has_cell(ref.child)) visit(ref.child);
        }
        color[name] = Color::kBlack;
      };
  for (const std::string& name : lib.cell_names()) visit(name);

  // Layer-consistency: one layer number split across datatypes usually
  // means derived data (post-OPC, SRAF, markers) is already present and
  // would be re-corrected if fed to a flow as-is.
  std::map<std::uint16_t, std::set<std::uint16_t>> datatypes;
  for (const std::string& name : lib.cell_names()) {
    for (const layout::Layer& layer : lib.at(name).layers()) {
      datatypes[layer.layer].insert(layer.datatype);
    }
  }
  for (const auto& [layer_num, dts] : datatypes) {
    if (dts.size() < 2) continue;
    std::ostringstream os;
    os << "layer " << layer_num << " appears with " << dts.size()
       << " datatypes (";
    bool first = true;
    for (const std::uint16_t dt : dts) {
      os << (first ? "" : ", ") << dt;
      first = false;
    }
    os << ")";
    report.add("HIE005", os.str());
  }

  return report;
}

}  // namespace opckit::lint
