/// \file diagnostic.h
/// Diagnostics produced by the opclint static analyzer.
///
/// Every finding carries a *stable* code (e.g. "LAY001") so downstream
/// tooling can filter, waive, and track findings across runs — the same
/// contract DRC decks honour with rule names. Codes are grouped by
/// domain:
///
///   LAYnnn  polygon well-formedness
///   HIEnnn  cell-hierarchy / library structure
///   GDSnnn  GDSII structural limits
///   RULnnn  rule-deck (rule-OPC recipe) sanity
///   MODnnn  imaging/OPC model-parameter bands
///   STOnnn  correction-store integrity (src/store)
///   MRCnnn  mask-rule signoff (scanline MRC engine, src/mrc)
///
/// The full registry (code, default severity, one-line title) is
/// compiled into the library and queryable at runtime, which keeps the
/// CLI listing, the documentation, and the tests from drifting apart.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/rect.h"
#include "layout/layer.h"

namespace opckit::lint {

/// Finding severity. Only kError findings block a flow; warnings and
/// notes are advisory.
enum class Severity { kNote, kWarning, kError };

/// Printable name ("error", "warning", "note").
const char* to_string(Severity s);

/// One static-analysis finding.
struct Diagnostic {
  std::string code;          ///< stable registry code, e.g. "RUL003"
  Severity severity = Severity::kError;
  std::string message;       ///< human-readable detail
  std::string cell;          ///< owning cell name ("" if not cell-scoped)
  layout::Layer layer;       ///< meaningful only when has_layer
  bool has_layer = false;
  geom::Rect where = geom::Rect::empty();  ///< location (empty if N/A)

  /// "CODE severity [cell/layer/bbox] message" single-line rendering.
  std::string to_line() const;
};

/// Registry entry describing one diagnostic code.
struct CodeInfo {
  const char* code;
  Severity default_severity;
  const char* title;   ///< one-line description for listings/docs
  const char* remedy;  ///< one-line fix guidance for listings/docs
};

/// All registered codes, grouped by domain, stable order.
std::span<const CodeInfo> all_codes();

/// Human-readable name of a code's domain group ("LAY001" -> "Polygon
/// well-formedness"); nullptr for an unknown prefix.
const char* domain_title(std::string_view code);

/// Look up a code; nullptr if unknown.
const CodeInfo* find_code(std::string_view code);

/// An ordered collection of findings plus severity accounting.
class LintReport {
 public:
  /// Append a finding. The code must exist in the registry
  /// (OPCKIT_CHECK'd so new checks cannot forget to register).
  void add(Diagnostic d);

  /// Append a registry-coded finding with the code's default severity.
  void add(std::string_view code, std::string message,
           std::string cell = "", geom::Rect where = geom::Rect::empty());

  /// Move all findings of \p other into this report.
  void merge(LintReport&& other);

  const std::vector<Diagnostic>& findings() const { return findings_; }
  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  bool empty() const { return findings_.empty(); }
  /// True when no error-severity findings are present.
  bool clean() const { return errors() == 0; }

  /// Distinct codes present, ascending.
  std::vector<std::string> codes() const;

 private:
  std::vector<Diagnostic> findings_;
};

/// Aligned-text rendering (via util::Table) with a one-line summary.
std::string render_text(const LintReport& report,
                        const std::string& title = "opckit lint");

/// Machine-readable CSV (code,severity,cell,layer,bbox,message).
std::string render_csv(const LintReport& report);

/// Markdown rendering of the full code registry, one table per domain —
/// the source of truth for docs/LINT_CODES.md. `opckit lint --codes
/// --format md` prints exactly this string, and tools/ci.sh regenerates
/// the doc and fails on drift, so registry and documentation cannot
/// diverge.
std::string render_codes_markdown();

}  // namespace opckit::lint
