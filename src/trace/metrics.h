/// \file metrics.h
/// The opckit metrics registry: named counters, gauges, and histograms.
///
/// One process-wide registry (`trace::metrics()`) unifies what used to be
/// ad-hoc FlowStats fields scattered across the flow driver, the
/// correction cache, the persistent store, and the litho simulator. Every
/// metric is declared ONCE in the compiled table returned by
/// `all_metrics()` — instruments look their metric up by name (checked
/// against the table, so a typo throws at first use instead of silently
/// minting a new series), docs/METRICS.md is generated from the same
/// table (`opckit metrics --format md`, drift-checked by tools/ci.sh),
/// and the `--stats json` snapshot embeds exactly these names.
///
/// Thread safety: counters and gauges are single relaxed atomics and
/// histogram bins are per-bin atomics, so instruments may increment from
/// worker threads with no locking — the TSan job covers the traced
/// jobs=8 flow. Values are process-cumulative; callers that want
/// per-run numbers take a snapshot() before and after and subtract
/// (`MetricsSnapshot::delta`), which is what the flow driver does.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace opckit::trace {

/// What a named metric measures.
enum class MetricKind {
  kCounter,    ///< monotone event count (u64, relaxed atomic add)
  kGauge,      ///< accumulating double (wall-time totals, sums)
  kHistogram,  ///< binned sample distribution with under/overflow slots
};

/// Printable name ("counter", "gauge", "histogram").
const char* to_string(MetricKind kind);

/// One row of the compiled metric registry.
struct MetricInfo {
  const char* name;
  MetricKind kind;
  const char* help;
  /// Histogram shape (ignored for counters/gauges): [lo, hi] split into
  /// `bins` equal-width bins, boundary rules per util::histogram_bin.
  double lo = 0.0;
  double hi = 1.0;
  std::size_t bins = 1;
};

/// The compiled registry: every metric the tree can emit, in stable
/// order. docs/METRICS.md mirrors this table (ci.sh drift check).
std::span<const MetricInfo> all_metrics();

/// Canonical metric names. Instruments use these constants — never a
/// string literal — so a rename cannot leave a stale emitter behind.
namespace metric {
inline constexpr const char* kFlowTilesMerged = "flow.tiles_merged";
inline constexpr const char* kFlowOpcRuns = "flow.opc_runs";
inline constexpr const char* kFlowSimulations = "flow.simulations";
inline constexpr const char* kFlowCorrectedPolygons =
    "flow.corrected_polygons";
inline constexpr const char* kFlowPhaseGatherMs = "flow.phase.gather_ms";
inline constexpr const char* kFlowPhaseResolveMs = "flow.phase.resolve_ms";
inline constexpr const char* kFlowPhaseSolveMs = "flow.phase.solve_ms";
inline constexpr const char* kFlowPhaseMergeMs = "flow.phase.merge_ms";
inline constexpr const char* kFlowTileSimulations = "flow.tile_simulations";
inline constexpr const char* kCacheHits = "cache.hits";
inline constexpr const char* kCacheSymmetryHits = "cache.symmetry_hits";
inline constexpr const char* kCacheMisses = "cache.misses";
inline constexpr const char* kCacheConflicts = "cache.conflicts";
inline constexpr const char* kStoreRecordsAppended = "store.records_appended";
inline constexpr const char* kStoreRecordsLoaded = "store.records_loaded";
inline constexpr const char* kStoreRecoveredTailBytes =
    "store.recovered_tail_bytes";
inline constexpr const char* kLithoAerialImages = "litho.aerial_images";
inline constexpr const char* kLithoFft2dTransforms = "litho.fft2d_transforms";
inline constexpr const char* kLithoFftPlanBuilds = "litho.fft_plan_builds";
inline constexpr const char* kLithoFftPlanHits = "litho.fft_plan_hits";
inline constexpr const char* kLithoFftPlanBuildMs = "litho.fft_plan_build_ms";
inline constexpr const char* kLithoFftR2cTransforms =
    "litho.fft_r2c_transforms";
inline constexpr const char* kLithoFftC2rTransforms =
    "litho.fft_c2r_transforms";
inline constexpr const char* kLithoFftBatchedTransforms =
    "litho.fft_batched_transforms";
inline constexpr const char* kLithoFftRowsPruned = "litho.fft_rows_pruned";
inline constexpr const char* kLithoRasterCells = "litho.raster_cells";
inline constexpr const char* kLithoSocsKernelSetsBuilt =
    "litho.socs_kernel_sets_built";
inline constexpr const char* kLithoSocsKernelsBuilt =
    "litho.socs_kernels_built";
inline constexpr const char* kLithoSocsCacheHits = "litho.socs_cache_hits";
inline constexpr const char* kLithoSocsEnergyCaptured =
    "litho.socs_energy_captured";
inline constexpr const char* kMrcViolations = "mrc.violations";
inline constexpr const char* kMrcTilesChecked = "mrc.tiles_checked";
inline constexpr const char* kMrcTileViolations = "mrc.tile_violations";
inline constexpr const char* kFlowPhaseMrcMs = "flow.phase.mrc_ms";
// Service-daemon (opcd) series — see src/service/server.h for when each
// fires along the admission/run/drain path.
inline constexpr const char* kSvcJobsSubmitted = "svc.jobs_submitted";
inline constexpr const char* kSvcJobsAccepted = "svc.jobs_accepted";
inline constexpr const char* kSvcJobsRejected = "svc.jobs_rejected";
inline constexpr const char* kSvcJobsCompleted = "svc.jobs_completed";
inline constexpr const char* kSvcJobsFailed = "svc.jobs_failed";
inline constexpr const char* kSvcQueueDepth = "svc.queue_depth";
inline constexpr const char* kSvcJobsInflight = "svc.jobs_inflight";
inline constexpr const char* kSvcJobLatencyMs = "svc.job_latency_ms";
inline constexpr const char* kSvcProtocolErrors = "svc.protocol_errors";
inline constexpr const char* kSvcCacheHits = "svc.cache_hits";
inline constexpr const char* kSvcCacheLookups = "svc.cache_lookups";
// Pattern-library (cross-run near-match retrieval) series — see
// pattern/library.h and the flow's LibrarySession for when each fires.
inline constexpr const char* kPatLibraryRecordsLoaded =
    "pat.library_records_loaded";
inline constexpr const char* kPatLibraryRecordsAppended =
    "pat.library_records_appended";
inline constexpr const char* kPatLibraryExactHits = "pat.library_exact_hits";
inline constexpr const char* kPatLibraryNearHits = "pat.library_near_hits";
inline constexpr const char* kPatLibraryWarmIterations =
    "pat.library_warm_iterations";
// Pixel-ILT (third correction engine) series — see ilt/ilt.h for the
// engine and core/flow.h for when escalation fires.
inline constexpr const char* kIltRuns = "ilt.runs";
inline constexpr const char* kIltEscalations = "ilt.escalations";
inline constexpr const char* kIltIterations = "ilt.iterations";
inline constexpr const char* kIltCostReduction = "ilt.cost_reduction";
inline constexpr const char* kIltLegalizeRounds = "ilt.legalize_rounds";
}  // namespace metric

/// Monotone event counter. add() is a relaxed atomic increment — safe
/// and cheap from any thread, including the parallel flow phases.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Accumulating double (e.g. per-phase wall-time totals). add() uses a
/// CAS loop so concurrent adds never lose an update.
class Gauge {
 public:
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Value snapshot of one histogram metric.
struct HistogramSnapshot {
  double lo = 0.0, hi = 0.0;
  std::vector<std::uint64_t> bins;
  std::uint64_t underflow = 0;  ///< samples < lo
  std::uint64_t overflow = 0;   ///< samples > hi
  std::uint64_t nan_count = 0;  ///< NaN samples

  std::uint64_t total() const;
  /// Exact quantile over the slotted counts, delegating to
  /// util::histogram_quantile (uniform-within-bin interpolation,
  /// under/overflow clamped to lo/hi, NaN excluded). t9 reports its
  /// p50/p99 job latency through this, straight off svc.job_latency_ms.
  double quantile(double p) const;
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Fixed-shape histogram with per-bin atomic counts. Binning follows
/// util::histogram_bin: x == hi lands in the last bin, out-of-range and
/// NaN samples land in explicit underflow/overflow/nan slots.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double x);
  HistogramSnapshot snapshot() const;

 private:
  double lo_, hi_;
  std::vector<std::atomic<std::uint64_t>> bins_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> nan_{0};
};

/// Point-in-time value snapshot of the whole registry. Keys are metric
/// names; maps keep them sorted so renderings are deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Per-interval view: after - before, element-wise. Both snapshots
  /// must come from the same registry (same metric set and shapes).
  static MetricsSnapshot delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// The live registry: every metric of all_metrics(), pre-constructed so
/// lookups never allocate and returned references are stable forever.
class MetricsRegistry {
 public:
  MetricsRegistry();

  /// Look up a metric by name. The name must exist in all_metrics() with
  /// the matching kind — anything else is a programming error
  /// (util::CheckError), not a silent new series.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
};

/// The process-wide registry (lazily constructed, never destroyed before
/// use — function-local static).
MetricsRegistry& metrics();

/// Stable single-line JSON rendering of a snapshot:
/// {"counters":{...},"gauges":{...},"histograms":{...}}. Doubles use
/// util::format_double (shortest round-trip, locale-independent).
std::string render_metrics_json(const MetricsSnapshot& snapshot);

/// Markdown table of the compiled registry — the source of truth for
/// docs/METRICS.md (`opckit metrics --format md`; ci.sh drift check).
std::string render_metrics_markdown();

}  // namespace opckit::trace
