#include "trace/metrics.h"

#include <array>
#include <sstream>

#include "util/check.h"
#include "util/stats.h"
#include "util/strings.h"

namespace opckit::trace {

namespace {

constexpr std::array kMetricTable = {
    MetricInfo{metric::kFlowTilesMerged, MetricKind::kCounter,
               "tiles that completed the serial merge phase"},
    MetricInfo{metric::kFlowOpcRuns, MetricKind::kCounter,
               "independent OPC problems solved fresh (replays excluded)"},
    MetricInfo{metric::kFlowSimulations, MetricKind::kCounter,
               "imaging iterations across all freshly solved tiles"},
    MetricInfo{metric::kFlowCorrectedPolygons, MetricKind::kCounter,
               "corrected polygons written to the output layer"},
    MetricInfo{metric::kFlowPhaseGatherMs, MetricKind::kGauge,
               "wall-clock in the parallel gather phase (all passes)"},
    MetricInfo{metric::kFlowPhaseResolveMs, MetricKind::kGauge,
               "wall-clock in the serial cache-resolve phase (all passes)"},
    MetricInfo{metric::kFlowPhaseSolveMs, MetricKind::kGauge,
               "wall-clock in the parallel solve phase (all passes)"},
    MetricInfo{metric::kFlowPhaseMergeMs, MetricKind::kGauge,
               "wall-clock in the serial merge phase (all passes)"},
    MetricInfo{metric::kFlowTileSimulations, MetricKind::kHistogram,
               "imaging iterations per merged tile (0 = cache replay)",
               0.0, 64.0, 16},
    MetricInfo{metric::kCacheHits, MetricKind::kCounter,
               "correction-cache translation-exact replays"},
    MetricInfo{metric::kCacheSymmetryHits, MetricKind::kCounter,
               "correction-cache D4 symmetry replays (opt-in policy)"},
    MetricInfo{metric::kCacheMisses, MetricKind::kCounter,
               "correction-cache first sightings (solved fresh)"},
    MetricInfo{metric::kCacheConflicts, MetricKind::kCounter,
               "correction-cache collisions/ownership mismatches"},
    MetricInfo{metric::kStoreRecordsAppended, MetricKind::kCounter,
               "pattern-class records appended to a correction store"},
    MetricInfo{metric::kStoreRecordsLoaded, MetricKind::kCounter,
               "records imported from a correction store on resume"},
    MetricInfo{metric::kStoreRecoveredTailBytes, MetricKind::kCounter,
               "torn-tail bytes dropped by store crash recovery (STO002)"},
    MetricInfo{metric::kLithoAerialImages, MetricKind::kCounter,
               "aerial images computed (Abbe or SOCS imaging engine)"},
    MetricInfo{metric::kLithoFft2dTransforms, MetricKind::kCounter,
               "dense complex 2D transforms (kernel synthesis, shims)"},
    MetricInfo{metric::kLithoFftPlanBuilds, MetricKind::kCounter,
               "FFT plans built by the process PlanCache (first touch)"},
    MetricInfo{metric::kLithoFftPlanHits, MetricKind::kCounter,
               "plan requests served from the process PlanCache"},
    MetricInfo{metric::kLithoFftPlanBuildMs, MetricKind::kGauge,
               "wall-clock spent building FFT plans (tables + permutations)"},
    MetricInfo{metric::kLithoFftR2cTransforms, MetricKind::kCounter,
               "real-to-complex 2D forward transforms (mask spectra, blur)"},
    MetricInfo{metric::kLithoFftC2rTransforms, MetricKind::kCounter,
               "complex-to-real 2D inverse transforms (resist diffusion)"},
    MetricInfo{metric::kLithoFftBatchedTransforms, MetricKind::kCounter,
               "fused sparse inverse + magnitude^2 transforms (imaging loop)"},
    MetricInfo{metric::kLithoFftRowsPruned, MetricKind::kCounter,
               "zero frequency rows skipped by batched sparse inverses"},
    MetricInfo{metric::kLithoRasterCells, MetricKind::kCounter,
               "pixel cells written by the mask rasterizer"},
    MetricInfo{metric::kLithoSocsKernelSetsBuilt, MetricKind::kCounter,
               "SOCS kernel sets built (Gram + Jacobi eigensolves run)"},
    MetricInfo{metric::kLithoSocsKernelsBuilt, MetricKind::kCounter,
               "coherent kernels synthesized across all built sets"},
    MetricInfo{metric::kLithoSocsCacheHits, MetricKind::kCounter,
               "kernel-set requests served from the process KernelCache"},
    MetricInfo{metric::kLithoSocsEnergyCaptured, MetricKind::kGauge,
               "sum over built sets of the captured source-energy fraction"},
    MetricInfo{metric::kMrcViolations, MetricKind::kCounter,
               "mask-rule violations found by the post-OPC MRC gate"},
    MetricInfo{metric::kMrcTilesChecked, MetricKind::kCounter,
               "tiles swept by the scanline MRC engine in the flow gate"},
    MetricInfo{metric::kMrcTileViolations, MetricKind::kHistogram,
               "MRC violations attributed per checked tile",
               0.0, 64.0, 16},
    MetricInfo{metric::kFlowPhaseMrcMs, MetricKind::kGauge,
               "wall-clock in the parallel MRC signoff phase"},
    MetricInfo{metric::kSvcJobsSubmitted, MetricKind::kCounter,
               "job submissions received by the service daemon"},
    MetricInfo{metric::kSvcJobsAccepted, MetricKind::kCounter,
               "submissions admitted to the daemon's priority queue"},
    MetricInfo{metric::kSvcJobsRejected, MetricKind::kCounter,
               "submissions refused (queue full, draining, or bad job)"},
    MetricInfo{metric::kSvcJobsCompleted, MetricKind::kCounter,
               "daemon jobs that finished and returned ok stats"},
    MetricInfo{metric::kSvcJobsFailed, MetricKind::kCounter,
               "daemon jobs that finished with an error result"},
    MetricInfo{metric::kSvcQueueDepth, MetricKind::kGauge,
               "jobs currently waiting in the daemon's admission queue"},
    MetricInfo{metric::kSvcJobsInflight, MetricKind::kGauge,
               "jobs currently executing on the daemon's pool"},
    MetricInfo{metric::kSvcJobLatencyMs, MetricKind::kHistogram,
               "per-job wall-clock from admission to result frame",
               0.0, 20000.0, 200},
    MetricInfo{metric::kSvcProtocolErrors, MetricKind::kCounter,
               "malformed frames rejected by the daemon's wire decoder"},
    MetricInfo{metric::kSvcCacheHits, MetricKind::kCounter,
               "correction/kernel/plan cache hits summed across daemon jobs"},
    MetricInfo{metric::kSvcCacheLookups, MetricKind::kCounter,
               "correction/kernel/plan cache lookups across daemon jobs"},
    MetricInfo{metric::kPatLibraryRecordsLoaded, MetricKind::kCounter,
               "records loaded from a pattern-library file at flow start"},
    MetricInfo{metric::kPatLibraryRecordsAppended, MetricKind::kCounter,
               "fresh solves inserted into a pattern-library file"},
    MetricInfo{metric::kPatLibraryExactHits, MetricKind::kCounter,
               "tiles replayed exactly from library-imported entries"},
    MetricInfo{metric::kPatLibraryNearHits, MetricKind::kCounter,
               "tiles warm-started from a near-match library retrieval"},
    MetricInfo{metric::kPatLibraryWarmIterations, MetricKind::kCounter,
               "imaging iterations spent on warm-started tiles"},
    MetricInfo{metric::kIltRuns, MetricKind::kCounter,
               "tiles corrected by the pixel-ILT engine"},
    MetricInfo{metric::kIltEscalations, MetricKind::kCounter,
               "model-OPC tiles escalated to pixel ILT by residual EPE"},
    MetricInfo{metric::kIltIterations, MetricKind::kHistogram,
               "accepted gradient-descent steps per ILT tile",
               0.0, 128.0, 32},
    MetricInfo{metric::kIltCostReduction, MetricKind::kHistogram,
               "fractional print-error cost reduction per ILT tile",
               0.0, 1.0, 20},
    MetricInfo{metric::kIltLegalizeRounds, MetricKind::kHistogram,
               "repair rounds needed to legalize an ILT mask",
               0.0, 16.0, 16},
};

}  // namespace

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::span<const MetricInfo> all_metrics() { return kMetricTable; }

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t t = underflow + overflow + nan_count;
  for (std::uint64_t b : bins) t += b;
  return t;
}

double HistogramSnapshot::quantile(double p) const {
  return util::histogram_quantile(lo, hi, bins, underflow, overflow, p);
}

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins) {
  OPCKIT_CHECK(hi > lo);
  OPCKIT_CHECK(bins > 0);
}

void HistogramMetric::observe(double x) {
  const int bin = util::histogram_bin(lo_, hi_, bins_.size(), x);
  switch (bin) {
    case util::kHistogramUnderflow:
      underflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    case util::kHistogramOverflow:
      overflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    case util::kHistogramNan:
      nan_.fetch_add(1, std::memory_order_relaxed);
      return;
    default:
      bins_[static_cast<std::size_t>(bin)].fetch_add(
          1, std::memory_order_relaxed);
  }
}

HistogramSnapshot HistogramMetric::snapshot() const {
  HistogramSnapshot s;
  s.lo = lo_;
  s.hi = hi_;
  s.bins.reserve(bins_.size());
  for (const auto& b : bins_) {
    s.bins.push_back(b.load(std::memory_order_relaxed));
  }
  s.underflow = underflow_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  s.nan_count = nan_.load(std::memory_order_relaxed);
  return s;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot d;
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    d.counters[name] = v - (it == before.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : after.gauges) {
    const auto it = before.gauges.find(name);
    d.gauges[name] = v - (it == before.gauges.end() ? 0.0 : it->second);
  }
  for (const auto& [name, v] : after.histograms) {
    HistogramSnapshot h = v;
    const auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      OPCKIT_CHECK(it->second.bins.size() == h.bins.size());
      for (std::size_t i = 0; i < h.bins.size(); ++i) {
        h.bins[i] -= it->second.bins[i];
      }
      h.underflow -= it->second.underflow;
      h.overflow -= it->second.overflow;
      h.nan_count -= it->second.nan_count;
    }
    d.histograms[name] = std::move(h);
  }
  return d;
}

MetricsRegistry::MetricsRegistry() {
  for (const MetricInfo& info : all_metrics()) {
    switch (info.kind) {
      case MetricKind::kCounter:
        counters_.emplace(info.name, std::make_unique<Counter>());
        break;
      case MetricKind::kGauge:
        gauges_.emplace(info.name, std::make_unique<Gauge>());
        break;
      case MetricKind::kHistogram:
        histograms_.emplace(info.name, std::make_unique<HistogramMetric>(
                                           info.lo, info.hi, info.bins));
        break;
    }
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  OPCKIT_CHECK_MSG(it != counters_.end(),
                   "no counter named '" << name
                                        << "' in the compiled registry");
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  OPCKIT_CHECK_MSG(it != gauges_.end(),
                   "no gauge named '" << name << "' in the compiled registry");
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  OPCKIT_CHECK_MSG(it != histograms_.end(),
                   "no histogram named '" << name
                                          << "' in the compiled registry");
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->snapshot();
  }
  return s;
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

std::string render_metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    os << (first ? "" : ",") << '"' << name
       << "\":" << util::format_double(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "" : ",") << '"' << name
       << "\":{\"lo\":" << util::format_double(h.lo)
       << ",\"hi\":" << util::format_double(h.hi) << ",\"bins\":[";
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
      os << (i ? "," : "") << h.bins[i];
    }
    os << "],\"underflow\":" << h.underflow << ",\"overflow\":" << h.overflow
       << ",\"nan\":" << h.nan_count << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string render_metrics_markdown() {
  std::ostringstream os;
  os << "# opckit metric registry\n\n"
     << "Generated by `opckit metrics --format md` from the compiled\n"
     << "registry (`src/trace/metrics.cpp`); tools/ci.sh fails on drift.\n"
     << "See docs/ARCHITECTURE.md (\"Observability\") for how these are\n"
     << "collected and where they surface (`--stats json`, T3 bench).\n\n"
     << "| metric | kind | meaning |\n|---|---|---|\n";
  for (const MetricInfo& info : all_metrics()) {
    os << "| `" << info.name << "` | " << to_string(info.kind) << " | "
       << info.help;
    if (info.kind == MetricKind::kHistogram) {
      os << " (range [" << util::format_double(info.lo) << ", "
         << util::format_double(info.hi) << "], " << info.bins << " bins)";
    }
    os << " |\n";
  }
  return os.str();
}

}  // namespace opckit::trace
