/// \file trace.h
/// Umbrella header for the opckit observability layer: span tracing
/// (tracer.h) and the metrics registry (metrics.h). See
/// docs/ARCHITECTURE.md ("Observability") for the span taxonomy, the
/// metric name registry, and the overhead contract.
#pragma once

#include "trace/metrics.h"
#include "trace/tracer.h"
