/// \file tracer.h
/// Low-overhead span tracing to Chrome `trace_event` JSON.
///
/// The flow driver wraps its phases and per-tile work in `Span` guards;
/// when tracing is enabled (`opckit opc --trace FILE`) every span records
/// a begin/end event pair with a timestamp, its thread, and an optional
/// integer argument (the tile index). The resulting file loads directly
/// into chrome://tracing / https://ui.perfetto.dev.
///
/// ## Overhead contract
///
/// * **Tracing off** (the default): a Span is one relaxed atomic load and
///   two untaken branches — no clock read, no allocation, no stores. The
///   regression test asserts the zero-allocation part via the tracer's
///   own allocation counter (`debug_allocations`).
/// * **Tracing on**: events append to a lock-free *per-thread* buffer
///   (plain vector, touched only by its owning thread). The only lock is
///   taken once per thread per session, to register the buffer. Buffers
///   are merged when the JSON is rendered, after the parallel phases have
///   completed — the thread pool's completion handshake orders every
///   worker write before the merge read, which keeps TSan clean.
///
/// Span names must be string literals (static storage): events store the
/// pointer, not a copy, so the hot path never allocates for names.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

namespace opckit::trace {

/// Sentinel for "span has no argument".
inline constexpr std::int64_t kNoArg =
    std::numeric_limits<std::int64_t>::min();

/// Collects span events while enabled; renders/writes trace_event JSON.
class Tracer {
 public:
  /// The process-wide tracer.
  static Tracer& instance();

  /// Enable collection. Discards events and buffers from any previous
  /// session and restarts the clock. Not re-entrant with active spans.
  void start();
  /// Disable collection. Spans already begun still record their end
  /// event so the stream stays balanced.
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Record one event; called by Span (hot path, owning thread only).
  void record(const char* name, char phase, std::int64_t arg);

  /// Total events collected in the current session.
  std::size_t event_count() const;
  /// Allocations the tracer has performed since process start (buffer
  /// registrations + event-buffer growth). The "tracing off costs
  /// nothing" regression test asserts this stays flat while disabled.
  std::size_t debug_allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }

  /// Render the collected events as Chrome trace_event JSON (one event
  /// per line). Call after stop(); spans still open are not terminated.
  std::string to_json() const;
  /// Write to_json() to \p path; throws util::InputError on I/O failure.
  void write_json(const std::string& path) const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> session_{0};
  std::atomic<std::size_t> allocations_{0};
};

/// RAII span: records a begin event on construction and the matching end
/// on destruction. \p name must be a string literal. \p arg (optional)
/// is emitted as the span's "index" argument — the flow driver passes
/// the tile index.
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = kNoArg) : name_(name) {
    Tracer& t = Tracer::instance();
    if (!t.enabled()) return;
    active_ = true;
    t.record(name_, 'B', arg);
  }
  ~Span() {
    if (active_) Tracer::instance().record(name_, 'E', kNoArg);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  bool active_ = false;
};

}  // namespace opckit::trace
