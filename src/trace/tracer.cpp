#include "trace/tracer.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/strings.h"

namespace opckit::trace {

namespace {

/// One collected event. Names are static-storage strings, so storing the
/// pointer is safe and allocation-free.
struct Event {
  const char* name;
  std::int64_t arg;
  std::uint64_t ts_ns;  ///< nanoseconds since session start
  char phase;           ///< 'B' or 'E'
};

/// Per-thread event buffer. The owning thread appends without locking;
/// the tracer reads it only after the owning work has completed (the
/// pool's completion handshake provides the happens-before edge).
struct ThreadBuffer {
  int tid = 0;
  std::vector<Event> events;
};

/// Session state shared by all threads. Guarded by `mutex` except for
/// per-thread event appends (see ThreadBuffer).
struct TracerState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::chrono::steady_clock::time_point epoch;
};

TracerState& state() {
  static TracerState s;
  return s;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start() {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.buffers.clear();
  s.epoch = std::chrono::steady_clock::now();
  // Bump the session before enabling: a thread that still holds a buffer
  // from the previous session re-registers on its next event instead of
  // appending to a discarded buffer.
  session_.fetch_add(1, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::record(const char* name, char phase, std::int64_t arg) {
  thread_local struct {
    std::uint64_t session = 0;
    std::shared_ptr<ThreadBuffer> buf;
  } tl;

  TracerState& s = state();
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (tl.session != session || !tl.buf) {
    auto buf = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(s.mutex);
      buf->tid = static_cast<int>(s.buffers.size());
      s.buffers.push_back(buf);
    }
    allocations_.fetch_add(1, std::memory_order_relaxed);
    tl.buf = std::move(buf);
    tl.session = session;
  }

  std::vector<Event>& events = tl.buf->events;
  if (events.size() == events.capacity()) {
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto ts = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - s.epoch)
          .count());
  events.push_back({name, arg, ts, phase});
}

std::size_t Tracer::event_count() const {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t n = 0;
  for (const auto& buf : s.buffers) n += buf->events.size();
  return n;
}

std::string Tracer::to_json() const {
  TracerState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& buf : s.buffers) {
    for (const Event& e : buf->events) {
      if (!first) os << ",\n";
      first = false;
      // Chrome's ts unit is microseconds; keep sub-µs precision.
      os << "{\"name\":\"" << e.name << "\",\"cat\":\"opckit\",\"ph\":\""
         << e.phase << "\",\"pid\":1,\"tid\":" << buf->tid << ",\"ts\":"
         << util::format_double(static_cast<double>(e.ts_ns) / 1000.0);
      if (e.arg != kNoArg) os << ",\"args\":{\"index\":" << e.arg << '}';
      os << '}';
    }
  }
  os << "\n]}\n";
  return os.str();
}

void Tracer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw util::InputError("trace: cannot write '" + path + "'");
  }
  out << to_json();
  out.flush();
  if (!out) {
    throw util::InputError("trace: write failed on '" + path + "'");
  }
}

}  // namespace opckit::trace
