/// \file drc.h
/// Design rule checking via region morphology.
///
/// The checks are expressed in the Region algebra, so they are exact for
/// Manhattan data: a minimum-width violation is area the shape loses under
/// morphological opening, a minimum-space violation is area a gap gains
/// under closing, and enclosure is erosion containment. The same deck
/// mechanism doubles as MRC (mask rule checking) for post-OPC data —
/// fragmented OPC output must still satisfy mask-shop minimums, a
/// constraint the paper calls out as a new step OPC forced into the flow.
///
/// All checks are pure functions of their inputs — no shared or static
/// state — so callers may run decks over disjoint regions from distinct
/// threads; violation lists come back in deterministic scanline order.
#pragma once

#include <string>
#include <vector>

#include "geometry/geometry.h"

namespace opckit::drc {

/// Rule types.
enum class RuleKind { kMinWidth, kMinSpace, kMinArea, kMinEnclosure };

/// One rule of a deck.
struct Rule {
  RuleKind kind = RuleKind::kMinWidth;
  std::string name;
  geom::Coord value = 0;  ///< nm (nm² for kMinArea)
};

/// A flagged violation.
struct Violation {
  std::string rule;
  geom::Rect bbox;  ///< extent of the violating area
};

/// Check results for one deck run.
struct DrcReport {
  std::vector<Violation> violations;
  bool clean() const { return violations.empty(); }
  std::size_t count(const std::string& rule_name) const;
};

/// Minimum width: flag area of \p shapes narrower than \p min_width in
/// either axis (morphological opening residue).
///
/// Open/closed semantics: strictly-narrower-than-rule violates; a part
/// measuring exactly \p min_width passes. Exact for odd AND even rule
/// values (evaluated in doubled coordinates so the integer half-kernel
/// never rounds).
std::vector<Violation> check_min_width(const geom::Region& shapes,
                                       geom::Coord min_width,
                                       const std::string& rule_name);

/// Minimum space: flag gaps between (or within) \p shapes narrower than
/// \p min_space (closing residue). Same open/closed semantics as
/// check_min_width: a gap of exactly \p min_space passes, both parities
/// exact.
std::vector<Violation> check_min_space(const geom::Region& shapes,
                                       geom::Coord min_space,
                                       const std::string& rule_name);

/// Minimum area: flag connected components with area below \p min_area.
/// A component is an outer contour minus its holes.
std::vector<Violation> check_min_area(const geom::Region& shapes,
                                      geom::Coord min_area,
                                      const std::string& rule_name);

/// Enclosure: every part of \p inner must be at least \p margin inside
/// \p outer.
std::vector<Violation> check_enclosure(const geom::Region& inner,
                                       const geom::Region& outer,
                                       geom::Coord margin,
                                       const std::string& rule_name);

/// Run a whole deck against one layer region. Violations come back in a
/// deterministic order — sorted by rule name, then marker rect
/// lexicographically, exact duplicates removed — so reports are diffable
/// against the scanline MRC engine (src/mrc) and stable across runs.
DrcReport run_deck(const geom::Region& shapes, const std::vector<Rule>& deck);

/// The mask-rule deck used to validate OPC output (values for a 4x
/// reticle expressed in 1x design units).
std::vector<Rule> mask_rule_deck_180();

}  // namespace opckit::drc
