#include "drc/drc.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace opckit::drc {

using geom::Coord;
using geom::Polygon;
using geom::Rect;
using geom::Region;

std::size_t DrcReport::count(const std::string& rule_name) const {
  std::size_t n = 0;
  for (const auto& v : violations) n += v.rule == rule_name;
  return n;
}

namespace {

/// Convert residue area into per-component violation markers by grouping
/// touching rectangles (single-linkage via region contours). When the
/// residue was computed in scaled-up coordinates, \p scale_down maps the
/// markers back to design units (exact: see the doubling notes below).
std::vector<Violation> markers_from(const Region& residue,
                                    const std::string& rule_name,
                                    Coord scale_down = 1) {
  std::vector<Violation> out;
  for (const Polygon& p : residue.polygons()) {
    if (!p.is_ccw()) continue;  // holes of residue blobs carry no info
    Rect box = p.bbox();
    if (scale_down != 1) {
      box = Rect(box.lo.x / scale_down, box.lo.y / scale_down,
                 box.hi.x / scale_down, box.hi.y / scale_down);
    }
    out.push_back({rule_name, box});
  }
  return out;
}

}  // namespace

std::vector<Violation> check_min_width(const Region& shapes, Coord min_width,
                                       const std::string& rule_name) {
  OPCKIT_CHECK(min_width > 0);
  // Open/closed semantics: a part measuring exactly min_width PASSES;
  // only width < min_width is flagged. Opening by an integer kernel d
  // removes area narrower than or equal to 2d, which cannot express the
  // "< w" threshold at both parities in design units (d = (w-1)/2 is
  // exact for odd w but under-checks even w by one DBU). Doubling the
  // coordinates makes the kernel d = w-1 exact for every parity:
  //   doubled width <= 2(w-1)  <=>  width <= w-1  <=>  width < w.
  // Every boundary coordinate of the doubled residue is even (the input
  // is doubled and erosion/dilation shift boundaries by the even-width
  // kernel's reach in lockstep), so halving the markers is exact.
  if (min_width == 1) return {};  // integer geometry is always >= 1 wide
  const Region doubled = shapes.scaled(2);
  return markers_from(doubled.subtracted(doubled.opened(min_width - 1)),
                      rule_name, 2);
}

std::vector<Violation> check_min_space(const Region& shapes, Coord min_space,
                                       const std::string& rule_name) {
  OPCKIT_CHECK(min_space > 0);
  // Same open/closed semantics and doubling trick as check_min_width:
  // a gap measuring exactly min_space passes, anything narrower is
  // flagged, for odd and even rule values alike.
  if (min_space == 1) return {};
  const Region doubled = shapes.scaled(2);
  return markers_from(doubled.closed(min_space - 1).subtracted(doubled),
                      rule_name, 2);
}

std::vector<Violation> check_min_area(const Region& shapes, Coord min_area,
                                      const std::string& rule_name) {
  OPCKIT_CHECK(min_area > 0);
  // Components: outer rings minus the holes they contain. Holes are
  // matched to the innermost enclosing outer ring by bbox containment —
  // exact for the nesting depth produced by Region::polygons().
  std::vector<Violation> out;
  const auto polys = shapes.polygons();
  std::vector<Coord> areas;
  std::vector<Rect> boxes;
  for (const Polygon& p : polys) {
    if (p.is_ccw()) {
      areas.push_back(p.area());
      boxes.push_back(p.bbox());
    }
  }
  for (const Polygon& p : polys) {
    if (p.is_ccw()) continue;
    // Find the smallest outer ring containing this hole.
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].contains(p.bbox()) &&
          (best == SIZE_MAX || boxes[i].area() < boxes[best].area())) {
        best = i;
      }
    }
    if (best != SIZE_MAX) areas[best] -= p.area();
  }
  for (std::size_t i = 0; i < areas.size(); ++i) {
    if (areas[i] < min_area) {
      out.push_back({rule_name, boxes[i]});
    }
  }
  return out;
}

std::vector<Violation> check_enclosure(const Region& inner,
                                       const Region& outer, Coord margin,
                                       const std::string& rule_name) {
  OPCKIT_CHECK(margin >= 0);
  return markers_from(inner.subtracted(outer.inflated(-margin)), rule_name);
}

DrcReport run_deck(const Region& shapes, const std::vector<Rule>& deck) {
  DrcReport report;
  for (const Rule& rule : deck) {
    std::vector<Violation> v;
    switch (rule.kind) {
      case RuleKind::kMinWidth:
        v = check_min_width(shapes, rule.value, rule.name);
        break;
      case RuleKind::kMinSpace:
        v = check_min_space(shapes, rule.value, rule.name);
        break;
      case RuleKind::kMinArea:
        v = check_min_area(shapes, rule.value, rule.name);
        break;
      case RuleKind::kMinEnclosure:
        // Enclosure needs two layers; deck form checks self-enclosure of
        // nothing — reject at deck build time instead.
        throw util::InputError("enclosure rules need check_enclosure()");
    }
    report.violations.insert(report.violations.end(), v.begin(), v.end());
  }
  // Deterministic report order regardless of deck order or how each
  // check enumerated its residue: sort by rule name, then marker rect
  // lexicographically, and drop exact duplicates — so morphology and
  // scanline reports are diffable and stable across thread counts.
  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.bbox.lo != b.bbox.lo) return a.bbox.lo < b.bbox.lo;
              return a.bbox.hi < b.bbox.hi;
            });
  report.violations.erase(
      std::unique(report.violations.begin(), report.violations.end(),
                  [](const Violation& a, const Violation& b) {
                    return a.rule == b.rule && a.bbox.lo == b.bbox.lo &&
                           a.bbox.hi == b.bbox.hi;
                  }),
      report.violations.end());
  return report;
}

std::vector<Rule> mask_rule_deck_180() {
  return {
      {RuleKind::kMinWidth, "mrc.width.60", 60},
      {RuleKind::kMinSpace, "mrc.space.60", 60},
      {RuleKind::kMinArea, "mrc.area.6400", 6400},
  };
}

}  // namespace opckit::drc
