#include "drc/drc.h"

#include <map>

#include "util/check.h"

namespace opckit::drc {

using geom::Coord;
using geom::Polygon;
using geom::Rect;
using geom::Region;

std::size_t DrcReport::count(const std::string& rule_name) const {
  std::size_t n = 0;
  for (const auto& v : violations) n += v.rule == rule_name;
  return n;
}

namespace {

/// Convert residue area into per-component violation markers by grouping
/// touching rectangles (single-linkage via region contours).
std::vector<Violation> markers_from(const Region& residue,
                                    const std::string& rule_name) {
  std::vector<Violation> out;
  for (const Polygon& p : residue.polygons()) {
    if (!p.is_ccw()) continue;  // holes of residue blobs carry no info
    out.push_back({rule_name, p.bbox()});
  }
  return out;
}

}  // namespace

std::vector<Violation> check_min_width(const Region& shapes, Coord min_width,
                                       const std::string& rule_name) {
  OPCKIT_CHECK(min_width > 0);
  // Opening by floor(w/2) removes every part with width < 2*floor(w/2)+1;
  // using (w-1)/2 flags strictly-narrower-than-w area for odd/even w.
  const Coord half = (min_width - 1) / 2;
  if (half == 0) return {};
  return markers_from(shapes.subtracted(shapes.opened(half)), rule_name);
}

std::vector<Violation> check_min_space(const Region& shapes, Coord min_space,
                                       const std::string& rule_name) {
  OPCKIT_CHECK(min_space > 0);
  const Coord half = (min_space - 1) / 2;
  if (half == 0) return {};
  return markers_from(shapes.closed(half).subtracted(shapes), rule_name);
}

std::vector<Violation> check_min_area(const Region& shapes, Coord min_area,
                                      const std::string& rule_name) {
  OPCKIT_CHECK(min_area > 0);
  // Components: outer rings minus the holes they contain. Holes are
  // matched to the innermost enclosing outer ring by bbox containment —
  // exact for the nesting depth produced by Region::polygons().
  std::vector<Violation> out;
  const auto polys = shapes.polygons();
  std::vector<Coord> areas;
  std::vector<Rect> boxes;
  for (const Polygon& p : polys) {
    if (p.is_ccw()) {
      areas.push_back(p.area());
      boxes.push_back(p.bbox());
    }
  }
  for (const Polygon& p : polys) {
    if (p.is_ccw()) continue;
    // Find the smallest outer ring containing this hole.
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].contains(p.bbox()) &&
          (best == SIZE_MAX || boxes[i].area() < boxes[best].area())) {
        best = i;
      }
    }
    if (best != SIZE_MAX) areas[best] -= p.area();
  }
  for (std::size_t i = 0; i < areas.size(); ++i) {
    if (areas[i] < min_area) {
      out.push_back({rule_name, boxes[i]});
    }
  }
  return out;
}

std::vector<Violation> check_enclosure(const Region& inner,
                                       const Region& outer, Coord margin,
                                       const std::string& rule_name) {
  OPCKIT_CHECK(margin >= 0);
  return markers_from(inner.subtracted(outer.inflated(-margin)), rule_name);
}

DrcReport run_deck(const Region& shapes, const std::vector<Rule>& deck) {
  DrcReport report;
  for (const Rule& rule : deck) {
    std::vector<Violation> v;
    switch (rule.kind) {
      case RuleKind::kMinWidth:
        v = check_min_width(shapes, rule.value, rule.name);
        break;
      case RuleKind::kMinSpace:
        v = check_min_space(shapes, rule.value, rule.name);
        break;
      case RuleKind::kMinArea:
        v = check_min_area(shapes, rule.value, rule.name);
        break;
      case RuleKind::kMinEnclosure:
        // Enclosure needs two layers; deck form checks self-enclosure of
        // nothing — reject at deck build time instead.
        throw util::InputError("enclosure rules need check_enclosure()");
    }
    report.violations.insert(report.violations.end(), v.begin(), v.end());
  }
  return report;
}

std::vector<Rule> mask_rule_deck_180() {
  return {
      {RuleKind::kMinWidth, "mrc.width.60", 60},
      {RuleKind::kMinSpace, "mrc.space.60", 60},
      {RuleKind::kMinArea, "mrc.area.6400", 6400},
  };
}

}  // namespace opckit::drc
