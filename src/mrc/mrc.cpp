#include "mrc/mrc.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/check.h"
#include "util/strings.h"

namespace opckit::mrc {

using geom::Coord;
using geom::Edge;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;
using geom::Slab;

const char* to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kWidth: return "width";
    case CheckKind::kSpace: return "space";
    case CheckKind::kEdgeLength: return "edge";
    case CheckKind::kNotch: return "notch";
    case CheckKind::kJog: return "jog";
    case CheckKind::kCorner: return "corner";
    case CheckKind::kArea: return "area";
  }
  return "?";
}

const char* lint_code(CheckKind kind) {
  switch (kind) {
    case CheckKind::kWidth: return "MRC001";
    case CheckKind::kSpace: return "MRC002";
    case CheckKind::kEdgeLength: return "MRC003";
    case CheckKind::kNotch: return "MRC004";
    case CheckKind::kJog: return "MRC005";
    case CheckKind::kCorner: return "MRC006";
    case CheckKind::kArea: return "MRC007";
  }
  return "?";
}

std::size_t MrcReport::count(const std::string& rule_name) const {
  std::size_t n = 0;
  for (const auto& v : violations) n += v.rule == rule_name;
  return n;
}

bool violation_less(const Violation& a, const Violation& b) {
  if (a.rule != b.rule) return a.rule < b.rule;
  if (a.marker.lo != b.marker.lo) return a.marker.lo < b.marker.lo;
  if (a.marker.hi != b.marker.hi) return a.marker.hi < b.marker.hi;
  if (a.e1.a != b.e1.a) return a.e1.a < b.e1.a;
  if (a.e1.b != b.e1.b) return a.e1.b < b.e1.b;
  if (a.e2.a != b.e2.a) return a.e2.a < b.e2.a;
  return a.e2.b < b.e2.b;
}

void sort_and_dedup(std::vector<Violation>& violations) {
  std::sort(violations.begin(), violations.end(), violation_less);
  violations.erase(std::unique(violations.begin(), violations.end()),
                   violations.end());
}

namespace {

/// Map a witness edge found in the transposed region back to the
/// original frame. Transposition reflects about y = x, which reverses
/// orientation, so the endpoints swap coordinates AND order — keeping
/// the interior-on-the-left convention intact.
Edge untranspose(const Edge& e) {
  return Edge({e.b.y, e.b.x}, {e.a.y, e.a.x});
}

Rect untranspose(const Rect& r) {
  return Rect(r.lo.y, r.lo.x, r.hi.y, r.hi.x);
}

/// A maximal y-run of one violating interval (width) or gap (space):
/// x-extent constant over y in [y0, y1).
struct Run {
  Coord x0, x1, y0, y1;
};

/// Sweep the slab stack, finding intervals (internal = width) or gaps
/// (external = space) narrower than \p rule and merging them into
/// maximal y-runs across slab boundaries. Calls \p emit once per run.
template <typename EmitFn>
void scan_runs(const std::vector<Slab>& slabs, Coord rule, bool internal,
               const EmitFn& emit) {
  // Open runs keyed by x-extent; a run continues into the next slab only
  // when the same extent recurs with no y-gap.
  std::map<std::pair<Coord, Coord>, Run> open;
  std::vector<std::pair<Coord, Coord>> hits;
  for (const Slab& s : slabs) {
    hits.clear();
    if (internal) {
      for (const auto& iv : s.intervals) {
        if (iv.x1 - iv.x0 < rule) hits.emplace_back(iv.x0, iv.x1);
      }
    } else {
      for (std::size_t i = 0; i + 1 < s.intervals.size(); ++i) {
        const Coord g0 = s.intervals[i].x1;
        const Coord g1 = s.intervals[i + 1].x0;
        if (g1 - g0 < rule) hits.emplace_back(g0, g1);
      }
    }
    std::map<std::pair<Coord, Coord>, Run> next;
    for (const auto& key : hits) {
      const auto it = open.find(key);
      if (it != open.end() && it->second.y1 == s.y0) {
        Run run = it->second;
        run.y1 = s.y1;
        next.emplace(key, run);
        open.erase(it);
      } else {
        next.emplace(key, Run{key.first, key.second, s.y0, s.y1});
      }
    }
    for (const auto& kv : open) emit(kv.second);
    open = std::move(next);
  }
  for (const auto& kv : open) emit(kv.second);
}

/// Width + space scans in one orientation. With transposed = true the
/// slabs come from the transposed region and results are mapped back.
void scan_pairs(const std::vector<Slab>& slabs, const Check& check,
                bool transposed, std::vector<Violation>& out) {
  const bool internal = check.kind == CheckKind::kWidth;
  scan_runs(slabs, check.value, internal, [&](const Run& run) {
    Violation v;
    v.rule = check.name;
    v.kind = check.kind;
    v.distance = run.x1 - run.x0;
    if (internal) {
      // Facing pair across covered area: the left boundary travels
      // South (interior to its East), the right boundary North.
      v.e1 = Edge({run.x0, run.y1}, {run.x0, run.y0});
      v.e2 = Edge({run.x1, run.y0}, {run.x1, run.y1});
    } else {
      // Facing pair across a gap: the left flank is a right boundary
      // (North), the right flank a left boundary (South).
      v.e1 = Edge({run.x0, run.y0}, {run.x0, run.y1});
      v.e2 = Edge({run.x1, run.y1}, {run.x1, run.y0});
    }
    v.marker = Rect(run.x0, run.y0, run.x1, run.y1);
    if (transposed) {
      v.e1 = untranspose(v.e1);
      v.e2 = untranspose(v.e2);
      v.marker = untranspose(v.marker);
    }
    out.push_back(std::move(v));
  });
}

Point unit_dir(const Point& delta) {
  return {delta.x == 0 ? 0 : (delta.x > 0 ? 1 : -1),
          delta.y == 0 ? 0 : (delta.y > 0 ? 1 : -1)};
}

/// One convex corner of the boundary with the diagonal quadrant its
/// exterior opens into.
struct Corner {
  Point pt;
  Point diag;  ///< one of (±1, ±1)
  Edge in;     ///< incoming boundary edge (ends at pt)
};

/// Ring walks: edge length, notch, jog, and convex-corner collection.
/// Rings from Region::polygons() keep the interior on the LEFT for
/// outers and holes alike, so a left turn (cross > 0) is a convex solid
/// corner and a right turn a reflex one on every ring.
void scan_rings(const std::vector<Polygon>& rings, const Deck& deck,
                std::vector<Violation>& out, std::vector<Corner>& corners) {
  const Check* edge_rule = nullptr;
  const Check* notch_rule = nullptr;
  const Check* jog_rule = nullptr;
  bool want_corners = false;
  for (const Check& c : deck) {
    if (c.kind == CheckKind::kEdgeLength) edge_rule = &c;
    if (c.kind == CheckKind::kNotch) notch_rule = &c;
    if (c.kind == CheckKind::kJog) jog_rule = &c;
    if (c.kind == CheckKind::kCorner) want_corners = true;
  }
  if (!edge_rule && !notch_rule && !jog_rule && !want_corners) return;

  for (const Polygon& ring : rings) {
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Edge prev = ring.edge((i + n - 1) % n);
      const Edge cur = ring.edge(i);
      const Edge next = ring.edge((i + 1) % n);
      if (edge_rule && cur.length() < edge_rule->value) {
        out.push_back({edge_rule->name, CheckKind::kEdgeLength, cur, cur,
                       cur.length(), cur.bbox()});
      }
      // Normalized rings alternate between horizontal and vertical, so
      // consecutive edges are perpendicular and both crosses nonzero.
      const Coord turn_in = geom::cross(prev.delta(), cur.delta());
      const Coord turn_out = geom::cross(cur.delta(), next.delta());
      if (prev.dir() == next.dir()) {
        // S-step: arms parallel, the riser `cur` is the jog.
        if (jog_rule && cur.length() < jog_rule->value) {
          out.push_back({jog_rule->name, CheckKind::kJog, prev, next,
                         cur.length(), cur.bbox()});
        }
      } else if (turn_in < 0 && turn_out < 0) {
        // U-turn with two reflex corners: a notch whose base `cur` is
        // the opening between the facing arms. (Two convex corners make
        // a tab — that is the width scan's job.)
        if (notch_rule && cur.length() < notch_rule->value) {
          out.push_back({notch_rule->name, CheckKind::kNotch, prev, next,
                         cur.length(), cur.bbox()});
        }
      }
      if (want_corners && turn_out > 0) {
        // Convex corner at cur.b: the exterior opens into the diagonal
        // quadrant between the reversed incoming and outgoing travel.
        corners.push_back({cur.b,
                           unit_dir(cur.delta()) - unit_dir(next.delta()),
                           cur});
      }
    }
  }
}

/// Corner-to-corner: flag pairs of convex corners whose exteriors open
/// toward each other diagonally within the rule (Chebyshev distance).
/// NE openers pair with SW openers to their upper-right; SE openers
/// with NW openers to their upper-... to their lower-right mirror.
void scan_corners(std::vector<Corner>& corners, const Check& check,
                  std::vector<Violation>& out) {
  auto pick = [&](Coord dx, Coord dy) {
    std::vector<const Corner*> sel;
    for (const Corner& c : corners) {
      if (c.diag.x == dx && c.diag.y == dy) sel.push_back(&c);
    }
    std::sort(sel.begin(), sel.end(), [](const Corner* a, const Corner* b) {
      return a->pt < b->pt;
    });
    return sel;
  };
  auto emit = [&](const Corner& a, const Corner& b, Coord dx, Coord dy) {
    Violation v;
    v.rule = check.name;
    v.kind = CheckKind::kCorner;
    v.e1 = a.in;
    v.e2 = b.in;
    v.distance = std::max(dx, dy);
    v.marker = Rect(std::min(a.pt.x, b.pt.x), std::min(a.pt.y, b.pt.y),
                    std::max(a.pt.x, b.pt.x), std::max(a.pt.y, b.pt.y));
    out.push_back(std::move(v));
  };
  // NE-opening corner A faces SW-opening corner B when B sits within
  // the rule window to A's upper-right.
  const auto ne = pick(1, 1);
  const auto sw = pick(-1, -1);
  for (const Corner* a : ne) {
    for (const Corner* b : sw) {
      const Coord dx = b->pt.x - a->pt.x;
      const Coord dy = b->pt.y - a->pt.y;
      if (dx < 0 || dy < 0) continue;
      if (dx >= check.value || dy >= check.value) continue;
      emit(*a, *b, dx, dy);
    }
  }
  // SE-opening corner A faces NW-opening corner B to A's lower-right.
  const auto se = pick(1, -1);
  const auto nw = pick(-1, 1);
  for (const Corner* a : se) {
    for (const Corner* b : nw) {
      const Coord dx = b->pt.x - a->pt.x;
      const Coord dy = a->pt.y - b->pt.y;
      if (dx < 0 || dy < 0) continue;
      if (dx >= check.value || dy >= check.value) continue;
      emit(*a, *b, dx, dy);
    }
  }
}

/// Connected-component area via a single union-find sweep over adjacent
/// slabs — O(n alpha(n)) in decomposition rects, unlike the O(n^2)
/// pairwise Region::components(). Holes subtract naturally: they are
/// simply area the component does not cover.
void scan_area(const std::vector<Slab>& slabs, const Check& check,
               std::vector<Violation>& out) {
  struct Item {
    Coord x0, x1, y0, y1;
  };
  std::vector<Item> items;
  std::vector<std::size_t> slab_begin;  // first item index of each slab
  for (const Slab& s : slabs) {
    slab_begin.push_back(items.size());
    for (const auto& iv : s.intervals) {
      items.push_back({iv.x0, iv.x1, s.y0, s.y1});
    }
  }
  slab_begin.push_back(items.size());

  std::vector<std::size_t> parent(items.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t si = 0; si + 1 < slabs.size(); ++si) {
    if (slabs[si].y1 != slabs[si + 1].y0) continue;  // y-gap: no contact
    std::size_t i = slab_begin[si];
    std::size_t j = slab_begin[si + 1];
    const std::size_t iend = slab_begin[si + 1];
    const std::size_t jend = slab_begin[si + 2];
    while (i < iend && j < jend) {
      const Coord lo = std::max(items[i].x0, items[j].x0);
      const Coord hi = std::min(items[i].x1, items[j].x1);
      if (hi - lo > 0) parent[find(i)] = find(j);
      if (items[i].x1 < items[j].x1) {
        ++i;
      } else {
        ++j;
      }
    }
  }

  struct Comp {
    Coord area = 0;
    Rect box = Rect::empty();
    std::size_t first = SIZE_MAX;  ///< lowest item index, for the witness
  };
  std::map<std::size_t, Comp> comps;
  for (std::size_t i = 0; i < items.size(); ++i) {
    Comp& c = comps[find(i)];
    c.area += (items[i].x1 - items[i].x0) * (items[i].y1 - items[i].y0);
    c.box = c.box.united(
        Rect(items[i].x0, items[i].y0, items[i].x1, items[i].y1));
    c.first = std::min(c.first, i);
  }
  for (const auto& kv : comps) {
    const Comp& c = kv.second;
    if (c.area >= check.value) continue;
    // Witness: the component's first bottom edge in scan order (East —
    // interior above).
    const Item& it = items[c.first];
    const Edge bottom({it.x0, it.y0}, {it.x1, it.y0});
    out.push_back(
        {check.name, CheckKind::kArea, bottom, bottom, c.area, c.box});
  }
}

}  // namespace

MrcReport check_mask(const Region& mask, const Deck& deck) {
  MrcReport report;
  if (deck.empty() || mask.empty()) return report;

  bool need_transposed = false;
  bool need_rings = false;
  for (const Check& c : deck) {
    OPCKIT_CHECK_MSG(c.value > 0, "MRC rule '" << c.name
                                               << "' needs a positive value");
    need_transposed |= c.kind == CheckKind::kWidth ||
                       c.kind == CheckKind::kSpace;
    need_rings |= c.kind == CheckKind::kEdgeLength ||
                  c.kind == CheckKind::kNotch || c.kind == CheckKind::kJog ||
                  c.kind == CheckKind::kCorner;
  }
  const std::vector<Slab>* tslabs = nullptr;
  Region transposed;
  if (need_transposed) {
    transposed = mask.transposed();
    tslabs = &transposed.slabs();
  }
  std::vector<Polygon> rings;
  if (need_rings) rings = mask.polygons();

  std::vector<Corner> corners;
  scan_rings(rings, deck, report.violations, corners);

  for (const Check& c : deck) {
    switch (c.kind) {
      case CheckKind::kWidth:
      case CheckKind::kSpace:
        scan_pairs(mask.slabs(), c, false, report.violations);
        scan_pairs(*tslabs, c, true, report.violations);
        break;
      case CheckKind::kCorner:
        scan_corners(corners, c, report.violations);
        break;
      case CheckKind::kArea:
        scan_area(mask.slabs(), c, report.violations);
        break;
      case CheckKind::kEdgeLength:
      case CheckKind::kNotch:
      case CheckKind::kJog:
        break;  // handled by scan_rings above
    }
  }
  sort_and_dedup(report.violations);
  return report;
}

MrcReport check_polygons(std::span<const Polygon> polys, const Deck& deck) {
  return check_mask(Region::from_polygons(polys), deck);
}

lint::LintReport to_lint_report(const MrcReport& report,
                                const std::string& cell) {
  lint::LintReport out;
  for (const Violation& v : report.violations) {
    std::ostringstream msg;
    msg << v.rule << ": measured " << v.distance << " (" << to_string(v.kind)
        << "), witnesses " << v.e1 << " / " << v.e2;
    out.add(lint_code(v.kind), msg.str(), cell, v.marker);
  }
  return out;
}

Deck parse_deck(const std::string& text) {
  Deck deck;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank / comment-only line
    Coord value = 0;
    if (!(ls >> value) || value <= 0) {
      throw util::InputError("mrc deck line " + std::to_string(lineno) +
                             ": expected '<check> <positive value>', got: " +
                             line);
    }
    std::string extra;
    if (ls >> extra) {
      throw util::InputError("mrc deck line " + std::to_string(lineno) +
                             ": trailing tokens: " + line);
    }
    static constexpr CheckKind kKinds[] = {
        CheckKind::kWidth, CheckKind::kSpace,  CheckKind::kEdgeLength,
        CheckKind::kNotch, CheckKind::kJog,    CheckKind::kCorner,
        CheckKind::kArea,
    };
    bool found = false;
    for (CheckKind k : kKinds) {
      if (keyword == to_string(k)) {
        deck.push_back({k, "mrc." + keyword + "." + std::to_string(value),
                        value});
        found = true;
        break;
      }
    }
    if (!found) {
      throw util::InputError("mrc deck line " + std::to_string(lineno) +
                             ": unknown check '" + keyword +
                             "' (use width/space/edge/notch/jog/corner/area)");
    }
  }
  return deck;
}

Deck read_deck_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::InputError("cannot read mrc deck file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_deck(text.str());
}

Deck mask_deck_180() {
  return parse_deck(
      "width 60\n"
      "space 60\n"
      "area 6400\n"
      "edge 8\n"
      "notch 80\n"
      "jog 2\n"
      "corner 60\n");
}

}  // namespace opckit::mrc
