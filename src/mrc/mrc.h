/// \file mrc.h
/// Scanline mask-rule checking (MRC) with exact edge-pair witnesses.
///
/// The morphology checker (src/drc) answers "is there violating area?"
/// by Boolean residue — robust, but it reports blobs, not edges, it
/// cannot express edge-count rules at all, and full-region Booleans
/// scale poorly on exactly the fragmented post-OPC masks the paper
/// predicts. This engine is the signoff-side complement: a sweep-line
/// static analysis over the corrected mask that reports **witnesses**.
///
/// ## Engine
///
/// The canonical Region slab stack IS a y-sorted scanline: each slab is
/// one status line of the sweep and its sorted interval list is the
/// interval-indexed active set. The checks walk that structure directly:
///
/// * **width** (internal edge pair, MRC001): slab intervals narrower
///   than the rule, merged into maximal y-runs across slab boundaries.
///   Witnesses are the facing left/right boundary edges.
/// * **space** (external edge pair, MRC002): gaps between consecutive
///   intervals narrower than the rule, merged the same way. Witnesses
///   are the facing right/left boundary edges across the gap. Because
///   gaps within one polygon's own indentations are gaps too, this
///   subsumes the same-shape "space" semantics of the morphology check.
/// * Both scans run again on the transposed region to measure the
///   orthogonal direction; witnesses are mapped back exactly.
///
/// The remaining checks walk the boundary rings (Region::polygons()
/// keeps the interior on the LEFT for outers and holes alike):
///
/// * **edge length** (MRC003): any boundary edge shorter than the rule.
/// * **notch** (MRC004): a U-turn edge triple (arms anti-parallel, both
///   corners reflex) whose base — the opening between the facing arms —
///   is narrower than the rule. Single-segment bases only; staircase
///   notch floors surface through the width/space scans instead.
/// * **jog / step** (MRC005): an S-step triple (arms parallel, one
///   convex + one reflex corner) whose step is shorter than the rule —
///   the fragment-offset staircase OPC is known for.
/// * **corner-to-corner** (MRC006): two convex corners opening toward
///   each other diagonally with Chebyshev distance below the rule
///   (diagonal-constriction semantics; touching corners measure 0).
/// * **area** (MRC007): connected-component area (holes subtracted)
///   below the rule, via a linear union-find over adjacent slabs.
///
/// Every violation carries the two witness edges, the measured
/// distance, and a marker rect; reports come back sorted (rule, marker,
/// witnesses) and deduplicated, so they are diffable against
/// drc::run_deck and stable at any thread count — the property the
/// post-OPC flow gate (FlowSpec::mrc_deck) relies on.
///
/// Distance semantics match the (fixed) morphology checks: strictly
/// less than the rule violates; exactly-at-rule passes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geometry/geometry.h"
#include "lint/diagnostic.h"

namespace opckit::mrc {

/// What a deck entry measures.
enum class CheckKind {
  kWidth,       ///< internal facing-edge distance (MRC001)
  kSpace,       ///< external facing-edge distance (MRC002)
  kEdgeLength,  ///< single boundary edge length (MRC003)
  kNotch,       ///< U-turn base width (MRC004)
  kJog,         ///< S-step riser length (MRC005)
  kCorner,      ///< convex corner-to-corner Chebyshev distance (MRC006)
  kArea,        ///< connected-component area, holes subtracted (MRC007)
};

/// Printable name ("width", "space", ...), also the deck-file keyword.
const char* to_string(CheckKind kind);

/// Lint registry code for a check kind ("MRC001"...).
const char* lint_code(CheckKind kind);

/// One rule of an MRC deck.
struct Check {
  CheckKind kind = CheckKind::kWidth;
  std::string name;       ///< stable rule name, e.g. "mrc.width.60"
  geom::Coord value = 0;  ///< nm (nm² for kArea)
};

/// An MRC rule deck. Empty deck = nothing to check.
using Deck = std::vector<Check>;

/// What the flow gate does when the deck is violated.
enum class Action {
  kFail,  ///< throw opc::MrcGateError after the output is written
  kWarn,  ///< log a warning, keep the report in FlowStats
};

/// One flagged violation with its witnesses.
struct Violation {
  std::string rule;                   ///< deck entry name
  CheckKind kind = CheckKind::kWidth;
  geom::Edge e1;          ///< first witness edge (on the mask boundary)
  geom::Edge e2;          ///< second witness (== e1 for edge/area checks)
  geom::Coord distance = 0;  ///< measured value that violates the rule
  geom::Rect marker = geom::Rect::empty();  ///< violation extent

  friend bool operator==(const Violation&, const Violation&) = default;
};

/// Check results for one deck run, in deterministic order.
struct MrcReport {
  std::vector<Violation> violations;
  bool clean() const { return violations.empty(); }
  std::size_t count(const std::string& rule_name) const;
};

/// Strict weak order used for report determinism: rule name, then
/// marker rect lexicographic, then witness edges.
bool violation_less(const Violation& a, const Violation& b);

/// Sort by violation_less and drop exact duplicates — the normal form
/// every MrcReport is in. Exposed so the flow gate can merge per-tile
/// reports into the same canonical order.
void sort_and_dedup(std::vector<Violation>& violations);

/// Run a deck against one mask region. Pure function, safe to call from
/// disjoint tiles on distinct threads.
MrcReport check_mask(const geom::Region& mask, const Deck& deck);

/// Convenience: union the polygons, then check.
MrcReport check_polygons(std::span<const geom::Polygon> polys,
                         const Deck& deck);

/// Map a report onto the lint diagnostic registry (MRC001..MRC007), one
/// finding per violation, markers as locations.
lint::LintReport to_lint_report(const MrcReport& report,
                                const std::string& cell = "");

/// Parse a deck from text: one `<check> <value>` pair per line, where
/// <check> is a to_string(CheckKind) keyword; '#' starts a comment.
/// Rule names are derived as "mrc.<check>.<value>". Throws
/// util::InputError on unknown keywords or non-positive values.
Deck parse_deck(const std::string& text);

/// Read and parse a deck file. Throws util::InputError when unreadable.
Deck read_deck_file(const std::string& path);

/// The default mask-shop deck for the 180nm node (1x design units):
/// the morphology deck's width/space/area minimums plus the edge-count
/// rules morphology cannot express.
Deck mask_deck_180();

}  // namespace opckit::mrc
