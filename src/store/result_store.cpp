#include "store/result_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::store {
namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'O', 'P', 'C', 'K',
                                               'I', 'T', 'S', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;
constexpr std::size_t kRectBytes = 4 * 8;
constexpr std::size_t kPointBytes = 2 * 8;

// ---- serialization primitives (explicit little-endian) ----------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_rect(std::vector<std::uint8_t>& out, const geom::Rect& r) {
  put_i64(out, r.lo.x);
  put_i64(out, r.lo.y);
  put_i64(out, r.hi.x);
  put_i64(out, r.hi.y);
}

/// Bounds-checked cursor over an in-memory byte range. Every accessor
/// reports failure instead of reading past the end, so corrupt counts
/// can never drive an out-of-range access.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }

  bool read_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(
                                                      i)])
           << (8 * i);
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                      i)])
           << (8 * i);
    pos_ += 8;
    return true;
  }

  bool read_i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!read_u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }

  bool read_u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = data_[pos_++];
    return true;
  }

  bool read_rect(geom::Rect& r) {
    return read_i64(r.lo.x) && read_i64(r.lo.y) && read_i64(r.hi.x) &&
           read_i64(r.hi.y);
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- diagnostics ------------------------------------------------------

lint::Diagnostic make_diag(std::string_view code, std::string message) {
  lint::Diagnostic d;
  d.code = std::string(code);
  const lint::CodeInfo* info = lint::find_code(code);
  OPCKIT_CHECK_MSG(info != nullptr, "unregistered store code " << code);
  d.severity = info->default_severity;
  d.message = std::move(message);
  return d;
}

[[noreturn]] void refuse(lint::LintReport* report, std::string_view code,
                         const std::string& message) {
  lint::Diagnostic d = make_diag(code, message);
  std::string line = d.to_line();
  if (report) report->add(std::move(d));
  throw util::InputError("correction store: " + line);
}

}  // namespace

namespace store_detail {

// ---- record payload parsing -------------------------------------------

bool decode_record(const std::uint8_t* data, std::size_t size,
                   TileRecord& rec) {
  Reader r(data, size);
  std::uint8_t orient = 0;
  if (!r.read_u8(orient) || orient >= geom::kOrientationCount) return false;
  rec.orientation = static_cast<geom::Orientation>(orient);
  if (!r.read_rect(rec.frame)) return false;

  auto read_rects = [&r](std::vector<geom::Rect>& out) {
    std::uint32_t n = 0;
    if (!r.read_u32(n)) return false;
    if (r.remaining() < static_cast<std::uint64_t>(n) * kRectBytes)
      return false;
    out.resize(n);
    for (auto& rect : out)
      if (!r.read_rect(rect)) return false;
    return true;
  };
  if (!read_rects(rec.window_rects)) return false;
  if (!read_rects(rec.own_rects)) return false;

  std::uint32_t n_polys = 0;
  if (!r.read_u32(n_polys)) return false;
  // Each polygon costs at least a vertex count; cheap pre-check before
  // the resize so a corrupt count cannot allocate unboundedly.
  if (r.remaining() < static_cast<std::uint64_t>(n_polys) * 4) return false;
  rec.solution.clear();
  rec.solution.reserve(n_polys);
  for (std::uint32_t p = 0; p < n_polys; ++p) {
    std::uint32_t n_verts = 0;
    if (!r.read_u32(n_verts)) return false;
    if (r.remaining() < static_cast<std::uint64_t>(n_verts) * kPointBytes)
      return false;
    std::vector<geom::Point> ring(n_verts);
    for (auto& v : ring)
      if (!r.read_i64(v.x) || !r.read_i64(v.y)) return false;
    rec.solution.emplace_back(std::move(ring));
  }
  // Trailing bytes after a well-formed record are corruption too.
  return r.remaining() == 0;
}

}  // namespace store_detail

namespace {

// ---- POSIX writer plumbing (EINTR-safe) -------------------------------

int open_writer_fd(const std::string& path, int flags) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0)
    throw util::InputError("correction store: cannot open '" + path +
                           "' for writing: " + std::strerror(errno));
  return fd;
}

void write_all_fd(int fd, const std::uint8_t* data, std::size_t size,
                  const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::InputError("correction store: write failed on '" + path +
                             "': " + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

namespace store_detail {

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_record(const TileRecord& record) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(record.orientation));
  put_rect(out, record.frame);
  put_u32(out, static_cast<std::uint32_t>(record.window_rects.size()));
  for (const auto& r : record.window_rects) put_rect(out, r);
  put_u32(out, static_cast<std::uint32_t>(record.own_rects.size()));
  for (const auto& r : record.own_rects) put_rect(out, r);
  put_u32(out, static_cast<std::uint32_t>(record.solution.size()));
  for (const auto& poly : record.solution) {
    put_u32(out, static_cast<std::uint32_t>(poly.ring().size()));
    for (const auto& v : poly.ring()) {
      put_i64(out, v.x);
      put_i64(out, v.y);
    }
  }
  return out;
}

}  // namespace store_detail

ResultStore::ResultStore(ResultStore&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      sync_on_append_(other.sync_on_append_),
      appended_(other.appended_),
      synced_(other.synced_) {}

ResultStore& ResultStore::operator=(ResultStore&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    sync_on_append_ = other.sync_on_append_;
    appended_ = other.appended_;
    synced_ = other.synced_;
  }
  return *this;
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) ::close(fd_);
}

ResultStore ResultStore::create(const std::string& path,
                                std::uint64_t fingerprint,
                                bool sync_on_append) {
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kMagic.begin(), kMagic.end());
  put_u32(header, kVersion);
  put_u64(header, fingerprint);
  put_u32(header, store_detail::crc32(header.data(), header.size()));
  OPCKIT_DCHECK(header.size() == kHeaderSize);

  ResultStore store(path,
                    open_writer_fd(path, O_WRONLY | O_CREAT | O_TRUNC |
                                             O_CLOEXEC),
                    sync_on_append);
  // The header is not fsynced here even in sync mode: fsync flushes the
  // whole file, so the first record's sync covers it, and an empty store
  // that vanishes in a crash costs nothing to recreate.
  write_all_fd(store.fd_, header.data(), header.size(), path);
  return store;
}

ResultStore ResultStore::append_to(const std::string& path,
                                   std::uint64_t valid_bytes,
                                   bool sync_on_append) {
  // Drop any recovered torn tail before appending: new records must land
  // directly after the last whole one.
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec)
    throw util::InputError("correction store: cannot truncate '" + path +
                           "' to its valid prefix: " + ec.message());
  return ResultStore(
      path, open_writer_fd(path, O_WRONLY | O_APPEND | O_CLOEXEC),
      sync_on_append);
}

LoadResult ResultStore::load(const std::string& path,
                             std::uint64_t expected_fingerprint,
                             lint::LintReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw util::InputError("correction store: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  in.close();

  // ---- header ----
  if (bytes.size() < kHeaderSize)
    refuse(report, "STO003",
           "'" + path + "' is too short to hold a store header (" +
               std::to_string(bytes.size()) + " bytes)");
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin()))
    refuse(report, "STO003",
           "'" + path + "' does not start with the OPCKITS1 magic");
  Reader hdr(bytes.data() + kMagic.size(), kHeaderSize - kMagic.size());
  std::uint32_t version = 0, header_crc = 0;
  std::uint64_t fingerprint = 0;
  hdr.read_u32(version);
  hdr.read_u64(fingerprint);
  hdr.read_u32(header_crc);
  if (store_detail::crc32(bytes.data(), kHeaderSize - 4) != header_crc)
    refuse(report, "STO003", "'" + path + "' header checksum mismatch");
  if (version != kVersion)
    refuse(report, "STO003",
           "'" + path + "' has store version " + std::to_string(version) +
               "; this build reads version " + std::to_string(kVersion));
  if (fingerprint != expected_fingerprint) {
    std::ostringstream os;
    os << "'" << path << "' was written under a different process setup "
       << "(store fingerprint " << std::hex << fingerprint << ", expected "
       << expected_fingerprint << std::dec
       << "); refusing to replay — rerun without --resume to rebuild it";
    refuse(report, "STO001", os.str());
  }

  // ---- records ----
  LoadResult result;
  std::size_t pos = kHeaderSize;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    std::size_t rem = bytes.size() - pos;
    std::uint32_t len = 0;
    bool torn = rem < 4;
    if (!torn) {
      Reader lr(bytes.data() + pos, 4);
      lr.read_u32(len);
      // A length that runs past EOF is an interrupted write, not
      // corruption — the CRC that would vouch for it was never written.
      torn = static_cast<std::uint64_t>(len) + 8 > rem;
    }
    if (torn) {
      result.tail_recovered = true;
      trace::metrics()
          .counter(trace::metric::kStoreRecoveredTailBytes)
          .add(rem);
      lint::Diagnostic d = make_diag(
          "STO002", "'" + path + "' ends inside a record (torn write); "
                        "dropped " +
                        std::to_string(rem) + " tail bytes, kept " +
                        std::to_string(result.records.size()) +
                        " whole records");
      if (report) report->add(std::move(d));
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 4;
    std::uint32_t stored_crc = 0;
    Reader cr(payload + len, 4);
    cr.read_u32(stored_crc);
    if (store_detail::crc32(payload, len) != stored_crc)
      refuse(report, "STO004",
             "'" + path + "' record " +
                 std::to_string(result.records.size()) +
                 " fails its checksum; the store is corrupt — delete it "
                 "and rerun without --resume");
    TileRecord rec;
    if (!store_detail::decode_record(payload, len, rec))
      refuse(report, "STO004",
             "'" + path + "' record " +
                 std::to_string(result.records.size()) +
                 " is structurally malformed despite a valid checksum; "
                 "the store is corrupt — delete it and rerun without "
                 "--resume");
    result.records.push_back(std::move(rec));
    pos += 4 + static_cast<std::size_t>(len) + 4;
    result.valid_bytes = pos;
  }
  trace::metrics()
      .counter(trace::metric::kStoreRecordsLoaded)
      .add(result.records.size());
  return result;
}

void ResultStore::append(const TileRecord& record) {
  std::vector<std::uint8_t> payload = store_detail::encode_record(record);
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + 8);
  put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  framed.insert(framed.end(), payload.begin(), payload.end());
  put_u32(framed, store_detail::crc32(payload.data(), payload.size()));
  // One unbuffered write per record: a crash costs at most the record
  // being written, which the next load recovers as a torn tail.
  write_all_fd(fd_, framed.data(), framed.size(), path_);
  if (sync_on_append_) {
    if (::fsync(fd_) != 0)
      throw util::InputError("correction store: fsync failed on '" + path_ +
                             "': " + std::strerror(errno));
    ++synced_;
  }
  ++appended_;
  trace::metrics().counter(trace::metric::kStoreRecordsAppended).add();
}

}  // namespace opckit::store
