/// \file result_store.h
/// The persistent correction store: crash-safe on-disk reuse of solved
/// OPC pattern classes across runs, crashes, and layout revisions.
///
/// The paper's adoption story is operational — full-chip model OPC is
/// orders of magnitude more expensive per area than rule OPC (T3), so a
/// tapeout run that dies at tile 900/1000 and restarts from zero, or a
/// one-cell ECO that forces a full-chip re-correction, is exactly the
/// flow cost it warns about. The store makes the in-process correction
/// cache (core/correction_cache.h) durable: every freshly solved pattern
/// class is streamed to an append-only file as its tile completes, and a
/// later run — a resume after a crash, or an ECO re-correction of an
/// edited layout — preloads the file and replays every tile whose
/// D4-canonical optical neighborhood is unchanged. Tiles whose halo
/// context changed simply miss the preloaded entries and are re-solved;
/// invalidation is key-exact, never heuristic.
///
/// ## File format (version 1, little-endian)
///
/// ```
/// header  (24 bytes)
///   u8[8]  magic  "OPCKITS1"
///   u32    version (1)
///   u64    fingerprint   — hash of every process knob replay depends on
///                          (optical model, OPC recipe, flow shape); see
///                          opc::flow_fingerprint. A store written under
///                          one setup must refuse replay under another.
///   u32    crc32 of the 20 bytes above
/// record  (repeated; one solved pattern class, canonical frame)
///   u32    payload length L
///   u8[L]  payload        — TileRecord serialization (see .cpp)
///   u32    crc32(payload)
/// ```
///
/// ## Integrity contract
///
/// * Records append strictly after the serial merge phase of the flow
///   driver and are flushed per record — the writer is never touched by
///   a parallel phase, so the TSan job stays clean.
/// * A *torn tail* (file ends inside a record: a crash mid-write) is
///   recovered on load: the partial record is dropped, the valid prefix
///   is kept, and append_to() truncates the file back to it (STO002,
///   warning). Losing the last tile re-solves one tile; losing the store
///   re-solves the chip.
/// * Any *complete* record whose CRC or structure does not verify is
///   corruption, not a torn write: the load refuses (STO004). Same for a
///   malformed header (STO003) and a fingerprint mismatch (STO001) —
///   a store is never silently replayed into the wrong process setup.
/// * Load-or-refuse is deterministic and allocation-bounded: lengths and
///   element counts are validated against the bytes actually present
///   before anything is allocated, so a corrupt file can never crash or
///   OOM the loader (the corpus tests run under ASan/UBSan).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "geometry/transform.h"
#include "lint/diagnostic.h"

namespace opckit::store {

/// One persisted pattern class: the canonical-frame identity the
/// correction cache keys on (window geometry, ownership split, simulation
/// frame, witness orientation) plus the solved correction polygons in the
/// same canonical frame. Field-for-field the cache's Entry — see
/// opc::CorrectionCache::export_entry / import_entry.
struct TileRecord {
  std::vector<geom::Rect> window_rects;  ///< canonical window geometry
  std::vector<geom::Rect> own_rects;     ///< canonical ownership split
  geom::Rect frame = geom::Rect::empty();///< canonical simulation frame
  geom::Orientation orientation =        ///< representative's witness
      geom::Orientation::kR0;
  std::vector<geom::Polygon> solution;   ///< corrected own, canonical frame

  friend bool operator==(const TileRecord&, const TileRecord&) = default;
};

/// Result of loading a store file.
struct LoadResult {
  std::vector<TileRecord> records;  ///< every whole, verified record
  /// True when the file ended inside a record (torn write); the partial
  /// tail was dropped and valid_bytes points at the last whole record.
  bool tail_recovered = false;
  /// Byte length of the verified prefix (header + whole records). Pass
  /// to append_to() so new records land after the last good one.
  std::uint64_t valid_bytes = 0;
};

/// Append handle on a correction-store file. Obtain via create() (fresh
/// file) or append_to() (extend a loaded file); append() writes and
/// flushes one record. Move-only.
///
/// The writer is a raw POSIX descriptor, not an iostream: each record is
/// one unbuffered write() (a crash can tear at most the record in
/// flight), and \p sync_on_append upgrades that to write() + fsync().
/// The upgrade is opt-in and OFF by default — batch flows are served by
/// the torn-tail contract (a crash re-solves one tile) and per-record
/// fsync is a large constant cost, but the service daemon's durability
/// claim ("results already merged survive a daemon crash") needs the
/// data on the platter, not in the page cache, before the result frame
/// is acknowledged to the client.
class ResultStore {
 public:
  /// Create (truncate) \p path and write a version-1 header carrying
  /// \p fingerprint. Throws util::InputError on I/O failure.
  static ResultStore create(const std::string& path,
                            std::uint64_t fingerprint,
                            bool sync_on_append = false);

  /// Open \p path for appending after a successful load(): the file is
  /// first truncated to \p valid_bytes so a recovered torn tail can never
  /// precede fresh records. Throws util::InputError on I/O failure.
  static ResultStore append_to(const std::string& path,
                               std::uint64_t valid_bytes,
                               bool sync_on_append = false);

  /// Parse and verify \p path against \p expected_fingerprint.
  /// Refusals (malformed header, fingerprint mismatch, corrupt record)
  /// throw util::InputError whose message carries the STO diagnostic
  /// line; a recovered torn tail only warns. When \p report is non-null
  /// every diagnostic is also appended to it (STO001..STO004).
  static LoadResult load(const std::string& path,
                         std::uint64_t expected_fingerprint,
                         lint::LintReport* report = nullptr);

  /// Serialize, CRC, append, and flush one record.
  /// Throws util::InputError on I/O failure.
  void append(const TileRecord& record);

  const std::string& path() const { return path_; }
  /// Records appended through this handle.
  std::size_t appended() const { return appended_; }
  /// fsync-after-append policy this handle was opened with.
  bool sync_on_append() const { return sync_on_append_; }
  /// fsync() calls issued: equals appended() when sync_on_append is on
  /// (the header rides the first record's sync — fsync flushes the whole
  /// file), 0 when it is off. Exposed so tests can assert the flag is
  /// honored without instrumenting the kernel.
  std::size_t synced() const { return synced_; }

  ResultStore(ResultStore&& other) noexcept;
  ResultStore& operator=(ResultStore&& other) noexcept;
  ~ResultStore();

 private:
  ResultStore(std::string path, int fd, bool sync_on_append)
      : path_(std::move(path)), fd_(fd), sync_on_append_(sync_on_append) {}

  std::string path_;
  int fd_ = -1;
  bool sync_on_append_ = false;
  std::size_t appended_ = 0;
  std::size_t synced_ = 0;
};

namespace store_detail {
/// CRC-32 (IEEE 802.3, reflected) over a byte range; exposed for the
/// corrupt-file corpus tests, which must forge valid checksums.
std::uint32_t crc32(const void* data, std::size_t size);
/// Serialize one record to the payload byte layout (exposed for tests).
std::vector<std::uint8_t> encode_record(const TileRecord& record);
/// Parse one record payload (the inverse of encode_record); returns false
/// on any structural violation — truncated field, count past the bytes
/// present, trailing bytes. Exposed so other persistence layers (the
/// pattern library) can embed the record layout under their own framing.
bool decode_record(const std::uint8_t* data, std::size_t size,
                   TileRecord& rec);
}  // namespace store_detail

}  // namespace opckit::store
