#include "litho/socs.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::litho {

namespace {

/// One shifted pupil a_s(f) = sqrt(w_s)·P(f + f_s) in sparse form:
/// parallel arrays of flat frame indices (ascending) and values.
struct SparsePupil {
  std::vector<std::uint32_t> index;
  std::vector<Complex> value;
};

std::vector<SparsePupil> shifted_pupils(
    const OpticalSystem& sys, const Frame& frame, double defocus_nm,
    const std::vector<SourcePoint>& source) {
  std::vector<double> freq_x(frame.nx), freq_y(frame.ny);
  for (std::size_t k = 0; k < frame.nx; ++k) {
    freq_x[k] = fft_freq(k, frame.nx) / frame.pixel_nm;
  }
  for (std::size_t k = 0; k < frame.ny; ++k) {
    freq_y[k] = fft_freq(k, frame.ny) / frame.pixel_nm;
  }
  std::vector<SparsePupil> pupils(source.size());
  for (std::size_t s = 0; s < source.size(); ++s) {
    const SourcePoint& sp = source[s];
    const double amp = std::sqrt(sp.weight);
    SparsePupil& p = pupils[s];
    for (std::size_t ky = 0; ky < frame.ny; ++ky) {
      const double fy = freq_y[ky] + sp.fy;
      for (std::size_t kx = 0; kx < frame.nx; ++kx) {
        const double fx = freq_x[kx] + sp.fx;
        const Complex t = pupil_transmission(sys, fx, fy, defocus_nm);
        if (t == Complex{0.0, 0.0}) continue;
        p.index.push_back(static_cast<std::uint32_t>(ky * frame.nx + kx));
        p.value.push_back(amp * t);
      }
    }
  }
  return pupils;
}

/// Inner product <a, b> = Σ_f conj(a(f))·b(f) over the sparse supports
/// (both index lists ascending — two-pointer merge).
Complex sparse_dot(const SparsePupil& a, const SparsePupil& b) {
  Complex acc{0.0, 0.0};
  std::size_t i = 0, j = 0;
  while (i < a.index.size() && j < b.index.size()) {
    if (a.index[i] < b.index[j]) {
      ++i;
    } else if (a.index[i] > b.index[j]) {
      ++j;
    } else {
      acc += std::conj(a.value[i]) * b.value[j];
      ++i;
      ++j;
    }
  }
  return acc;
}

/// Cyclic complex Hermitian Jacobi eigensolver: diagonalizes \p a in
/// place (eigenvalues end up on the diagonal) and accumulates the
/// unitary similarity into \p v (columns become eigenvectors, V^H A V =
/// Λ). Deterministic: fixed (p, q) sweep order, convergence test on the
/// relative off-diagonal norm. O(n³) per sweep; the Gram matrices here
/// are tens-by-tens, so cost is microseconds against the FFTs it saves.
void jacobi_hermitian(std::vector<std::vector<Complex>>& a,
                      std::vector<std::vector<Complex>>& v) {
  const std::size_t n = a.size();
  v.assign(n, std::vector<Complex>(n, Complex{0.0, 0.0}));
  for (std::size_t i = 0; i < n; ++i) v[i][i] = Complex{1.0, 0.0};
  if (n < 2) return;

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off2 = 0.0, diag2 = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      diag2 += std::norm(a[p][p]);
      for (std::size_t q = p + 1; q < n; ++q) off2 += std::norm(a[p][q]);
    }
    if (off2 <= 1e-28 * (diag2 + off2)) break;
    const double skip2 = 1e-32 * (diag2 + off2) / static_cast<double>(n * n);

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double r = std::abs(a[p][q]);
        if (r * r <= skip2) continue;
        // Unitary plane rotation in the (p, q) plane zeroing a[p][q]:
        // with w = a[p][q]/|a[p][q]|, τ = (a_pp − a_qq)/(2|a_pq|),
        // t = sign(τ)/(|τ| + sqrt(τ²+1)), c = 1/sqrt(t²+1), s = t·c,
        // U has columns u_p = (c, s·w̄), u_q = (−s, c·w̄).
        const Complex w = a[p][q] / r;
        const double tau = (a[p][p].real() - a[q][q].real()) / (2.0 * r);
        const double t = tau >= 0.0
                             ? 1.0 / (tau + std::sqrt(tau * tau + 1.0))
                             : 1.0 / (tau - std::sqrt(tau * tau + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const Complex cwc = c * std::conj(w);  // c·w̄
        const Complex swc = s * std::conj(w);  // s·w̄
        const Complex cw = c * w;
        const Complex sw = s * w;
        // A ← A·U (columns p, q of every row)...
        for (std::size_t i = 0; i < n; ++i) {
          const Complex ap = a[i][p], aq = a[i][q];
          a[i][p] = ap * c + aq * swc;
          a[i][q] = -ap * s + aq * cwc;
        }
        // ...then A ← U^H·A (rows p, q of every column).
        for (std::size_t i = 0; i < n; ++i) {
          const Complex ap = a[p][i], aq = a[q][i];
          a[p][i] = c * ap + sw * aq;
          a[q][i] = -s * ap + cw * aq;
        }
        // V ← V·U accumulates the eigenvector columns.
        for (std::size_t i = 0; i < n; ++i) {
          const Complex vp = v[i][p], vq = v[i][q];
          v[i][p] = vp * c + vq * swc;
          v[i][q] = -vp * s + vq * cwc;
        }
      }
    }
  }
}

}  // namespace

SocsKernelSet build_socs_kernels(const OpticalSystem& sys, const Frame& frame,
                                 double defocus_nm, const SocsOptions& opts) {
  OPCKIT_CHECK_MSG(is_pow2(frame.nx) && is_pow2(frame.ny),
                   "frame dims must be powers of two, got "
                       << frame.nx << 'x' << frame.ny);
  OPCKIT_CHECK(opts.epsilon > 0.0 && opts.epsilon < 1.0);

  const std::vector<SourcePoint> source = sample_source(sys);
  const std::size_t S = source.size();
  const std::vector<SparsePupil> pupils =
      shifted_pupils(sys, frame, defocus_nm, source);

  // Hermitian Gram matrix G_st = <a_s, a_t>; fill the upper triangle and
  // mirror (Hermitian by construction up to rounding; the mirror makes
  // it exact).
  std::vector<std::vector<Complex>> g(S, std::vector<Complex>(S));
  for (std::size_t s = 0; s < S; ++s) {
    g[s][s] = Complex{sparse_dot(pupils[s], pupils[s]).real(), 0.0};
    for (std::size_t t = s + 1; t < S; ++t) {
      const Complex d = sparse_dot(pupils[s], pupils[t]);
      g[s][t] = d;
      g[t][s] = std::conj(d);
    }
  }
  double total_energy = 0.0;  // trace(G) = Σ_s w_s·‖P_s‖²
  for (std::size_t s = 0; s < S; ++s) total_energy += g[s][s].real();
  OPCKIT_CHECK_MSG(total_energy > 0.0,
                   "source energy vanished — no pupil support on the grid");

  std::vector<std::vector<Complex>> v;
  jacobi_hermitian(g, v);

  // Rank eigenpairs by eigenvalue, descending; stable index tie-break
  // keeps the ordering deterministic under degenerate eigenvalues.
  std::vector<std::size_t> order(S);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t i, std::size_t j) {
                     return g[i][i].real() > g[j][j].real();
                   });

  // Keep every eigenpair above the relative cutoff λ ≥ ε·λ_max. (Not a
  // captured-energy criterion: the discrete spectrum's flat tail would
  // force k ≈ |S| at tight tolerances; see the header.)
  const double lambda_max = g[order.front()][order.front()].real();
  OPCKIT_CHECK_MSG(lambda_max > 0.0, "no positive eigenvalues in SOCS Gram");
  const double lambda_floor = opts.epsilon * lambda_max;
  std::vector<std::size_t> kept;
  double captured = 0.0;
  for (std::size_t k : order) {
    const double lambda = g[k][k].real();
    if (lambda < lambda_floor) break;
    kept.push_back(k);
    captured += lambda;
  }

  // Union support of all shifted pupils, ascending: the scatter target
  // for kernel synthesis and the stored sparse support of every kernel.
  std::vector<std::uint32_t> support;
  for (const SparsePupil& p : pupils) {
    support.insert(support.end(), p.index.begin(), p.index.end());
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());

  const std::size_t n = frame.nx * frame.ny;
  std::vector<Complex> scratch(n, Complex{0.0, 0.0});
  SocsKernelSet set;
  set.source_points = S;
  set.energy_captured = captured / total_energy;
  set.support = std::move(support);
  set.kernels.reserve(kept.size());
  for (std::size_t k : kept) {
    // ψ_k(f) = Σ_s v[s][k]·a_s(f); ‖ψ_k‖² = λ_k, so the stored kernel
    // is φ_k = ψ_k/sqrt(λ_k) with weight λ_k.
    for (std::size_t s = 0; s < S; ++s) {
      const Complex coef = v[s][k];
      const SparsePupil& p = pupils[s];
      for (std::size_t j = 0; j < p.index.size(); ++j) {
        scratch[p.index[j]] += coef * p.value[j];
      }
    }
    SocsKernel ker;
    ker.weight = g[k][k].real();
    const double inv_norm = 1.0 / std::sqrt(ker.weight);
    ker.value.reserve(set.support.size());
    for (std::uint32_t idx : set.support) {
      ker.value.push_back(inv_norm * scratch[idx]);
      scratch[idx] = Complex{0.0, 0.0};
    }
    set.kernels.push_back(std::move(ker));
  }
  return set;
}

KernelCache& KernelCache::instance() {
  static KernelCache cache;
  return cache;
}

std::shared_ptr<const SocsKernelSet> KernelCache::get(
    const OpticalSystem& sys, const Frame& frame, double defocus_nm,
    const MaskModel& mask, const SocsOptions& opts) {
  const Key key{sys.wavelength_nm,
                sys.na,
                static_cast<int>(sys.source.shape),
                sys.source.sigma_outer,
                sys.source.sigma_inner,
                sys.source.pole_center,
                sys.source.pole_radius,
                sys.source.grid,
                sys.aberrations.coma_x_nm,
                sys.aberrations.coma_y_nm,
                sys.aberrations.astig_nm,
                static_cast<std::uint64_t>(frame.nx),
                static_cast<std::uint64_t>(frame.ny),
                frame.pixel_nm,
                defocus_nm,
                static_cast<int>(mask.type),
                mask.background_transmission,
                opts.epsilon};
  // Build under the lock: first touch of a key blocks peers for the
  // one-time eigensolve (microseconds-to-milliseconds) instead of
  // letting them duplicate it; every later touch is a map lookup.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sets_.find(key);
  if (it != sets_.end()) {
    ++stats_.hits;
    trace::metrics().counter(trace::metric::kLithoSocsCacheHits).add();
    return it->second;
  }
  auto set = std::make_shared<const SocsKernelSet>(
      build_socs_kernels(sys, frame, defocus_nm, opts));
  ++stats_.sets_built;
  trace::metrics().counter(trace::metric::kLithoSocsKernelSetsBuilt).add();
  trace::metrics()
      .counter(trace::metric::kLithoSocsKernelsBuilt)
      .add(set->kernels.size());
  trace::metrics()
      .gauge(trace::metric::kLithoSocsEnergyCaptured)
      .add(set->energy_captured);
  sets_.emplace(key, set);
  return set;
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t KernelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sets_.size();
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  sets_.clear();
  stats_ = Stats{};
}

SocsImager::SocsImager(const OpticalSystem& sys, const Frame& frame,
                       const SocsOptions& opts)
    : sys_(sys), frame_(frame), opts_(opts), fft2_(frame.nx, frame.ny) {
  OPCKIT_CHECK_MSG(is_pow2(frame.nx) && is_pow2(frame.ny),
                   "frame dims must be powers of two, got "
                       << frame.nx << 'x' << frame.ny);
  OPCKIT_CHECK(opts.epsilon > 0.0 && opts.epsilon < 1.0);
}

Image SocsImager::aerial_image(const Image& mask, double defocus_nm,
                               const MaskModel& mask_model) const {
  OPCKIT_CHECK(mask.frame() == frame_);
  const std::size_t n = frame_.nx * frame_.ny;

  // Mask spectrum — identical front end to AbbeImager::aerial_image.
  // The transmission is real, so the forward goes through the r2c path
  // (half the transform, Hermitian mirror fills the full layout).
  const double t_bg = mask_model.background_amplitude();
  std::vector<double> trans(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = mask.values()[i];
    trans[i] = c + (1.0 - c) * t_bg;
  }
  std::vector<Complex> spectrum;
  fft2_.forward_real(trans, spectrum);

  const std::shared_ptr<const SocsKernelSet> set =
      KernelCache::instance().get(sys_, frame_, defocus_nm, mask_model, opts_);

  // All kernels share the set's support, so the whole Σ λ_k·|IFFT|²
  // is one batch: one plan, one pruning structure, |kernels| fused
  // sparse inverse transforms.
  const SparseInverseBatch batch(fft2_, set->support);
  Image intensity(frame_, 0.0);
  detail::weighted_intensity_sum(
      set->kernels.size(), n,
      [&](std::size_t k, std::vector<double>& out) {
        batch.inverse_mag2(spectrum.data(), set->kernels[k].value, out);
      },
      [&](std::size_t k) { return set->kernels[k].weight; },
      intensity.values());
  return intensity;
}

}  // namespace opckit::litho
