/// \file image.h
/// Real-valued images on a physical pixel grid.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "util/check.h"

namespace opckit::litho {

/// Physical mapping of a pixel grid: pixel (0,0)'s lower-left corner sits
/// at \p origin, pixels are square with side \p pixel_nm.
struct Frame {
  geom::Point origin{0, 0};
  double pixel_nm = 8.0;
  std::size_t nx = 0;
  std::size_t ny = 0;

  /// Physical center of pixel (ix, iy) in nm (double precision).
  double center_x(std::size_t ix) const {
    return static_cast<double>(origin.x) +
           (static_cast<double>(ix) + 0.5) * pixel_nm;
  }
  double center_y(std::size_t iy) const {
    return static_cast<double>(origin.y) +
           (static_cast<double>(iy) + 0.5) * pixel_nm;
  }
  /// Continuous pixel coordinate of physical x (nm); 0.0 at the center of
  /// pixel 0.
  double px(double x_nm) const {
    return (x_nm - static_cast<double>(origin.x)) / pixel_nm - 0.5;
  }
  double py(double y_nm) const {
    return (y_nm - static_cast<double>(origin.y)) / pixel_nm - 0.5;
  }
  /// Physical extent covered by the grid.
  geom::Rect extent() const {
    return geom::Rect(
        origin, origin + geom::Point{static_cast<geom::Coord>(
                                         pixel_nm * static_cast<double>(nx)),
                                     static_cast<geom::Coord>(
                                         pixel_nm * static_cast<double>(ny))});
  }

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// A real image over a Frame (row-major, y-major rows).
class Image {
 public:
  Image() = default;
  explicit Image(const Frame& frame, double fill = 0.0)
      : frame_(frame),
        values_(frame.nx * frame.ny, fill) {
    OPCKIT_CHECK(frame.nx > 0 && frame.ny > 0 && frame.pixel_nm > 0);
  }

  const Frame& frame() const { return frame_; }
  std::size_t nx() const { return frame_.nx; }
  std::size_t ny() const { return frame_.ny; }

  double& at(std::size_t ix, std::size_t iy) {
    return values_[iy * frame_.nx + ix];
  }
  double at(std::size_t ix, std::size_t iy) const {
    return values_[iy * frame_.nx + ix];
  }
  std::vector<double>& values() { return values_; }
  const std::vector<double>& values() const { return values_; }

  /// Bilinear sample at a physical position (nm). Positions outside the
  /// grid clamp to the border pixels.
  double sample(double x_nm, double y_nm) const;

  /// Minimum / maximum pixel value (0 for empty images).
  double min_value() const;
  double max_value() const;

 private:
  Frame frame_;
  std::vector<double> values_;
};

}  // namespace opckit::litho
