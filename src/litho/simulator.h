/// \file simulator.h
/// High-level lithography simulation facade.
///
/// Bundles optics + resist + grid policy behind the interface the OPC
/// engine and experiments consume: geometry in, latent image / printed
/// region / metrology probes out. The simulation window is padded with a
/// guard band (optical interaction range) and rounded to power-of-two
/// pixel dimensions so the FFT's periodic boundary never touches the
/// region of interest.
///
/// Thread safety: a constructed Simulator is immutable through its const
/// interface — aerial/latent/printed touch no mutable or static state, so
/// distinct threads may share one instance or build their own (the tiled
/// flow driver in core/flow.cpp runs one run_model_opc per worker, each
/// constructing its own Simulator). set_threshold is the one mutator;
/// calibrate before sharing. The per-source (Abbe) and per-kernel
/// (SOCS) loops inside aerial() use util::global_pool() and run inline
/// when the caller is itself a pool worker (see thread_pool.h), with a
/// fixed-order reduction either way — results are bit-identical at any
/// thread count. SOCS kernel sets come from the process-wide
/// KernelCache (internally locked).
#pragma once

#include <optional>
#include <span>

#include "geometry/geometry.h"
#include "litho/optics.h"
#include "litho/resist.h"
#include "litho/socs.h"

namespace opckit::litho {

/// Full process description: optics, mask technology, resist, and
/// discretization policy.
struct SimSpec {
  OpticalSystem optics;
  MaskModel mask;              ///< binary (default) or attenuated PSM
  ResistModel resist;
  double pixel_nm = 8.0;       ///< raster pixel (integer nm recommended)
  geom::Coord guard_nm = 800;  ///< padding beyond the window of interest
  /// Imaging engine: kAbbe (reference, one FFT per source point) or
  /// kSocs (kernel compression, one FFT per kept eigen-kernel — within
  /// socs_epsilon in intensity, several times faster on dense sources).
  ImagingMode imaging = ImagingMode::kAbbe;
  /// SOCS relative-eigenvalue truncation ε (keep λ_k ≥ ε·λ_max; ≈ the
  /// max intensity deviation vs Abbe). Output-affecting; ignored by
  /// kAbbe. 1e-4 is near-exact; 1e-3 is the production speed setting.
  double socs_epsilon = 1e-4;
};

/// A simulation context bound to a physical window of interest.
class Simulator {
 public:
  /// Create a simulator whose frame covers \p window plus the guard band.
  Simulator(const SimSpec& spec, const geom::Rect& window);

  const SimSpec& spec() const { return spec_; }
  const Frame& frame() const { return frame_; }
  const geom::Rect& window() const { return window_; }

  /// Resist development threshold at relative dose \p dose.
  double threshold(double dose = 1.0) const {
    return spec_.resist.threshold_at_dose(dose);
  }
  /// Replace the resist threshold (used by calibration).
  void set_threshold(double t) { spec_.resist.threshold = t; }

  /// Aerial image (before resist diffusion) of a mask region.
  Image aerial(const geom::Region& mask, double defocus_nm = 0.0) const;
  /// Latent image (aerial image + resist diffusion) of a mask region.
  Image latent(const geom::Region& mask, double defocus_nm = 0.0) const;
  /// Convenience overload for polygon lists.
  Image latent(std::span<const geom::Polygon> mask,
               double defocus_nm = 0.0) const;

  /// Resist contour as a pixel-quantized region (clipped to the window).
  geom::Region printed(const Image& latent_img, double dose = 1.0) const;

 private:
  SimSpec spec_;
  geom::Rect window_;
  Frame frame_;
  AbbeImager imager_;
  std::optional<SocsImager> socs_;  ///< engaged when spec.imaging == kSocs
};

/// Double-exposure latent image: the resist integrates the dose of two
/// exposures — each with its own optics and mask — before developing
/// (the double-dipole-lithography model: one exposure per orientation).
/// Both specs must share pixel size and guard band; resist parameters are
/// taken from \p spec_a. Weights are the dose split (default 50/50).
Image double_exposure_latent(const SimSpec& spec_a,
                             const geom::Region& mask_a,
                             const SimSpec& spec_b,
                             const geom::Region& mask_b,
                             const geom::Rect& window,
                             double weight_a = 0.5, double weight_b = 0.5,
                             double defocus_nm = 0.0);

/// Calibrate \p spec's resist threshold so that the center line of a dense
/// grating (width \p anchor_cd_nm at pitch \p anchor_pitch_nm) prints at
/// exactly its drawn width at nominal focus/dose. This is the standard
/// "anchor feature" calibration every OPC model starts from. Returns the
/// calibrated threshold (also written into \p spec).
double calibrate_threshold(SimSpec& spec, geom::Coord anchor_cd_nm,
                           geom::Coord anchor_pitch_nm);

}  // namespace opckit::litho
