/// \file resist.h
/// Constant-threshold resist model with acid-diffusion blur.
///
/// The latent image is the aerial image convolved with a Gaussian of
/// standard deviation \p diffusion_nm (chemically-amplified resist acid
/// diffusion); resist develops wherever latent intensity × dose exceeds
/// the threshold. This is the model 2001-era production OPC engines were
/// calibrated with (VT / CTR models).
#pragma once

#include "litho/image.h"

namespace opckit::litho {

/// Resist parameters. Dose is modeled multiplicatively: the effective
/// development condition is intensity >= threshold / dose.
struct ResistModel {
  double threshold = 0.30;
  double diffusion_nm = 25.0;

  /// Effective threshold at relative dose \p dose (1.0 = nominal).
  double threshold_at_dose(double dose) const { return threshold / dose; }
};

/// Gaussian blur with standard deviation \p sigma_nm, computed in the
/// frequency domain (periodic boundaries — consistent with the imaging
/// engine's guard-band convention). Frame dims must be powers of two.
/// sigma_nm == 0 returns the input unchanged.
Image gaussian_blur(const Image& img, double sigma_nm);

/// Latent image: aerial image after resist diffusion.
Image latent_image(const Image& aerial, const ResistModel& resist);

}  // namespace opckit::litho
