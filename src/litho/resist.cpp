#include "litho/resist.h"

#include <cmath>
#include <numbers>

#include "litho/fft.h"
#include "util/check.h"

namespace opckit::litho {

Image gaussian_blur(const Image& img, double sigma_nm) {
  OPCKIT_CHECK(sigma_nm >= 0.0);
  if (sigma_nm == 0.0) return img;
  const Frame& f = img.frame();
  OPCKIT_CHECK(is_pow2(f.nx) && is_pow2(f.ny));
  const std::size_t n = f.nx * f.ny;

  std::vector<Complex> spec(n);
  for (std::size_t i = 0; i < n; ++i) spec[i] = img.values()[i];
  fft_2d(spec, f.nx, f.ny, /*inverse=*/false);

  // Gaussian transfer function exp(-2 pi^2 sigma^2 |f|^2).
  const double c = -2.0 * std::numbers::pi * std::numbers::pi * sigma_nm *
                   sigma_nm;
  for (std::size_t ky = 0; ky < f.ny; ++ky) {
    const double fy = fft_freq(ky, f.ny) / f.pixel_nm;
    for (std::size_t kx = 0; kx < f.nx; ++kx) {
      const double fx = fft_freq(kx, f.nx) / f.pixel_nm;
      spec[ky * f.nx + kx] *= std::exp(c * (fx * fx + fy * fy));
    }
  }
  fft_2d(spec, f.nx, f.ny, /*inverse=*/true);

  Image out(f);
  for (std::size_t i = 0; i < n; ++i) out.values()[i] = spec[i].real();
  return out;
}

Image latent_image(const Image& aerial, const ResistModel& resist) {
  return gaussian_blur(aerial, resist.diffusion_nm);
}

}  // namespace opckit::litho
