#include "litho/resist.h"

#include <cmath>
#include <numbers>
#include <span>

#include "litho/fft.h"
#include "util/check.h"

namespace opckit::litho {

Image gaussian_blur(const Image& img, double sigma_nm) {
  OPCKIT_CHECK(sigma_nm >= 0.0);
  if (sigma_nm == 0.0) return img;
  const Frame& f = img.frame();
  OPCKIT_CHECK(is_pow2(f.nx) && is_pow2(f.ny));
  const std::size_t n = f.nx * f.ny;

  // Real image, real-symmetric transfer: go through the planned
  // r2c/c2r pair. Per the half-spectrum layout contract documented on
  // Fft2d::forward_real, the spectrum is a FULL row-stride array but
  // inverse_real reads only the kx <= nx/2 bins of each row — so the
  // transfer multiply below touches exactly that independent half and
  // deliberately leaves the mirror half stale. The transfer is a real
  // function of |f| (conjugate-symmetric), as the contract requires.
  const Fft2d fft2(f.nx, f.ny);
  std::vector<Complex> spec;
  fft2.forward_real(std::span<const double>(img.values()), spec);

  // Gaussian transfer function exp(-2 pi^2 sigma^2 |f|^2).
  const double c = -2.0 * std::numbers::pi * std::numbers::pi * sigma_nm *
                   sigma_nm;
  const std::size_t hx = f.nx / 2 + 1;
  for (std::size_t ky = 0; ky < f.ny; ++ky) {
    const double fy = fft_freq(ky, f.ny) / f.pixel_nm;
    for (std::size_t kx = 0; kx < hx; ++kx) {
      const double fx = fft_freq(kx, f.nx) / f.pixel_nm;
      spec[ky * f.nx + kx] *= std::exp(c * (fx * fx + fy * fy));
    }
  }

  Image out(f);
  fft2.inverse_real(spec, out.values());
  return out;
}

Image latent_image(const Image& aerial, const ResistModel& resist) {
  return gaussian_blur(aerial, resist.diffusion_nm);
}

}  // namespace opckit::litho
