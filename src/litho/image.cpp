#include "litho/image.h"

#include <algorithm>
#include <cmath>

namespace opckit::litho {

double Image::sample(double x_nm, double y_nm) const {
  const double fx = frame_.px(x_nm);
  const double fy = frame_.py(y_nm);
  const double cx = std::clamp(fx, 0.0, static_cast<double>(nx() - 1));
  const double cy = std::clamp(fy, 0.0, static_cast<double>(ny() - 1));
  const auto ix0 = static_cast<std::size_t>(cx);
  const auto iy0 = static_cast<std::size_t>(cy);
  const std::size_t ix1 = std::min(ix0 + 1, nx() - 1);
  const std::size_t iy1 = std::min(iy0 + 1, ny() - 1);
  const double tx = cx - static_cast<double>(ix0);
  const double ty = cy - static_cast<double>(iy0);
  const double v00 = at(ix0, iy0);
  const double v10 = at(ix1, iy0);
  const double v01 = at(ix0, iy1);
  const double v11 = at(ix1, iy1);
  return v00 * (1 - tx) * (1 - ty) + v10 * tx * (1 - ty) +
         v01 * (1 - tx) * ty + v11 * tx * ty;
}

double Image::min_value() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Image::max_value() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

}  // namespace opckit::litho
