/// \file socs.h
/// Sum-of-Coherent-Systems (SOCS) kernel imaging.
///
/// The Abbe engine pays one 2-D FFT per source point — dozens to
/// hundreds per image. SOCS compresses the same partially coherent
/// system into a handful of coherent kernels: stack the source-weighted
/// shifted pupils a_s(f) = sqrt(w_s)·P(f + f_s) (the exact per-source
/// factors AbbeImager applies, defocus and aberrations included), form
/// the |S|×|S| Hermitian Gram matrix G_st = <a_s, a_t>, and
/// eigendecompose it. Each eigenpair (λ_k, v_k) yields one coherent
/// kernel φ_k(f) = Σ_s v_k[s]·a_s(f) / sqrt(λ_k), and the aerial image
/// becomes
///
///     I(x) = Σ_k λ_k · |IFFT(spectrum · φ_k)(x)|²
///
/// — exact at full rank. Truncation keeps every eigenpair with
/// λ_k ≥ ε·λ_max (a relative-eigenvalue cutoff, the classical SOCS
/// criterion). Empirically the maximum intensity deviation from the
/// Abbe image is of order ε in clear-field-normalized units: the
/// dropped modes are mutually incoherent and each contributes at most
/// ~λ_k/λ_max relative intensity anywhere in the frame.
///
/// A raw captured-energy criterion ("keep until Σλ ≥ (1−ε)·trace") is
/// deliberately NOT used: the discrete Gram's spectrum has a long flat
/// tail — each coarsely-sampled source point carries an independent
/// sliver of energy — so demanding 99.99 % energy keeps nearly all |S|
/// eigenpairs and compresses nothing, even though those tail modes are
/// oscillatory and contribute ~1e-4 of peak intensity. The relative
/// cutoff tracks image error, not bookkeeping energy; the achieved
/// energy fraction is still reported per set for observability.
///
/// Compression pays off when the source is sampled densely relative to
/// the frame's optical degrees of freedom: the kept-kernel count
/// saturates toward the continuous-TCC spectrum while the Abbe cost
/// keeps growing with |S| (measured sweeps in docs/EXPERIMENTS.md).
///
/// Kernel sets are expensive to build (Gram + Jacobi eigensolve) and
/// fully determined by (OpticalSystem, frame dims/pixel, defocus,
/// MaskModel, ε) — notably NOT by the frame origin — so a process-wide
/// KernelCache shares them across tiles, OPC iterations, and flow runs,
/// the same lifecycle shape as opc::CorrectionCache. Everything here is
/// deterministic: fixed sweep order in the eigensolver, stable
/// eigenvalue ordering, fixed-order image reduction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "litho/fft.h"
#include "litho/image.h"
#include "litho/optics.h"

namespace opckit::litho {

/// Which imaging engine a Simulator uses. Abbe is the reference
/// (source-point integration, exact); SOCS is the production hot-path
/// approximation, opt-in per SimSpec.
enum class ImagingMode { kAbbe, kSocs };

/// SOCS truncation policy.
struct SocsOptions {
  /// Relative eigenvalue cutoff: keep every eigenpair with
  /// λ_k ≥ epsilon·λ_max. Maps ≈ one-to-one onto the maximum aerial-
  /// intensity deviation from the exact (Abbe) image, in clear-field
  /// units — ε = 1e-3 measures within ~1e-3 of Abbe while keeping
  /// roughly a quarter of a dense source's eigenpairs; ε = 1e-4 is
  /// near-exact with mild compression.
  double epsilon = 1e-4;
};

/// One coherent kernel: eigenvalue weight plus the kernel values over
/// the set's shared sparse support (SocsKernelSet::support).
struct SocsKernel {
  double weight = 0.0;         ///< eigenvalue λ_k
  std::vector<Complex> value;  ///< normalized φ_k, aligned with support
};

/// A full kernel set for one (optics, frame geometry, defocus, ε) key.
/// All kernels share one support — the union of the shifted pupil
/// supports — which is exactly what lets the imaging loop run as one
/// SparseInverseBatch: one plan, one pruning structure, |kernels|
/// same-size transforms.
struct SocsKernelSet {
  std::vector<SocsKernel> kernels;
  std::vector<std::uint32_t> support;  ///< flat frame indices (ky*nx+kx)
  double energy_captured = 0.0;   ///< Σ kept λ / trace(G), in [0, 1]
  std::size_t source_points = 0;  ///< |S| the set was compressed from
};

/// Build a kernel set from scratch (no cache). Exposed for tests; the
/// imaging path goes through KernelCache. Frame dims must be powers of
/// two. Deterministic.
SocsKernelSet build_socs_kernels(const OpticalSystem& sys, const Frame& frame,
                                 double defocus_nm, const SocsOptions& opts);

/// Process-wide kernel-set cache, shared across tiles and OPC
/// iterations (one Simulator per flow worker, all hitting the same
/// optics/frame-shape key). Thread-safe; entries are immutable
/// shared_ptrs so readers never block a concurrent build of a different
/// key's set. Never evicts — a process sees a handful of distinct
/// process keys at most.
class KernelCache {
 public:
  struct Stats {
    std::uint64_t sets_built = 0;
    std::uint64_t hits = 0;
  };

  /// The process-wide instance.
  static KernelCache& instance();

  /// Return the kernel set for the given process key, building (and
  /// recording trace metrics) on first touch. The frame origin does not
  /// participate in the key: kernels live in frequency space and are
  /// translation-invariant.
  std::shared_ptr<const SocsKernelSet> get(const OpticalSystem& sys,
                                           const Frame& frame,
                                           double defocus_nm,
                                           const MaskModel& mask,
                                           const SocsOptions& opts);

  Stats stats() const;
  std::size_t size() const;
  /// Drop all entries and reset stats (test hook).
  void clear();

 private:
  // Tuple gives lexicographic operator< for free; a defaulted <=> over
  // a struct with double members would yield std::partial_ordering.
  using Key = std::tuple<double, double,                  // λ, NA
                         int, double, double, double, double, int,  // source
                         double, double, double,          // aberrations
                         std::uint64_t, std::uint64_t, double,  // frame shape
                         double,                          // defocus
                         int, double,                     // mask model
                         double>;                         // ε

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const SocsKernelSet>> sets_;
  Stats stats_;
};

/// SOCS imaging engine bound to a pixel frame — the drop-in fast
/// counterpart of AbbeImager (same frame contract: power-of-two dims,
/// periodic boundaries, caller-provided guard band). Kernel sets come
/// from the process-wide KernelCache.
///
/// Thread safety: immutable after construction; aerial_image touches
/// only the (internally locked) KernelCache plus locals, so distinct
/// threads may share one instance.
class SocsImager {
 public:
  SocsImager(const OpticalSystem& sys, const Frame& frame,
             const SocsOptions& opts = {});

  const OpticalSystem& system() const { return sys_; }
  const Frame& frame() const { return frame_; }
  const SocsOptions& options() const { return opts_; }

  /// Aerial image of \p mask (coverage image on the same frame) — same
  /// contract as AbbeImager::aerial_image, within ε in intensity.
  /// Multi-threaded over kernels; bit-deterministic (fixed reduction
  /// order). The mask spectrum goes through the planned r2c forward
  /// and the per-kernel IFFTs run as one SparseInverseBatch over the
  /// set's shared support.
  Image aerial_image(const Image& mask, double defocus_nm = 0.0,
                     const MaskModel& mask_model = {}) const;

 private:
  OpticalSystem sys_;
  Frame frame_;
  SocsOptions opts_;
  Fft2d fft2_;  ///< planned transforms for this frame shape
};

}  // namespace opckit::litho
