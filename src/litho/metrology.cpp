#include "litho/metrology.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace opckit::litho {

namespace detail {

std::size_t scan_sample_count(double t0, double t1, double step) {
  return static_cast<std::size_t>((t1 - t0) / step + 1e-9) + 1;
}

double interpolate_crossing(double t0, double t1, double v0, double v1,
                            double threshold) {
  if (v1 == v0) return 0.5 * (t0 + t1);
  const double frac = (threshold - v0) / (v1 - v0);
  return t0 + frac * (t1 - t0);
}

}  // namespace detail

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Sample the latent image along center + t * dir for t in [t0, t1] at
/// \p step, returning samples and the t of each.
struct LineScan {
  std::vector<double> t;
  std::vector<double> v;
};

LineScan scan(const Image& img, const geom::Point& center,
              const geom::Point& dir, double t0, double t1, double step) {
  OPCKIT_CHECK(manhattan_length(dir) == 1);  // unit Manhattan direction
  LineScan s;
  const std::size_t n = detail::scan_sample_count(t0, t1, step);
  s.t.reserve(n);
  s.v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) * step;
    const double x = static_cast<double>(center.x) +
                     static_cast<double>(dir.x) * t;
    const double y = static_cast<double>(center.y) +
                     static_cast<double>(dir.y) * t;
    s.t.push_back(t);
    s.v.push_back(img.sample(x, y));
  }
  return s;
}

/// Linear-interpolated crossing of \p thr between samples i and i+1.
double crossing_t(const LineScan& s, std::size_t i, double thr) {
  return detail::interpolate_crossing(s.t[i], s.t[i + 1], s.v[i], s.v[i + 1],
                                      thr);
}

/// Width of the span around t=0 where (v >= thr) == \p want_printed.
double span_width(const Image& img, const geom::Point& center,
                  const geom::Point& dir, double span_nm, double thr,
                  bool want_printed) {
  const double half = span_nm / 2.0;
  const double step = img.frame().pixel_nm / 4.0;
  const LineScan s = scan(img, center, dir, -half, half, step);
  // Index of the sample closest to t = 0.
  std::size_t c = 0;
  for (std::size_t i = 0; i < s.t.size(); ++i) {
    if (std::abs(s.t[i]) < std::abs(s.t[c])) c = i;
  }
  const auto state = [&](std::size_t i) { return (s.v[i] >= thr) == want_printed; };
  if (!state(c)) return kNan;
  // Walk left to the state change.
  double left = kNan, right = kNan;
  for (std::size_t i = c; i > 0; --i) {
    if (!state(i - 1)) {
      left = crossing_t(s, i - 1, thr);
      break;
    }
  }
  for (std::size_t i = c; i + 1 < s.t.size(); ++i) {
    if (!state(i + 1)) {
      right = crossing_t(s, i, thr);
      break;
    }
  }
  if (std::isnan(left) || std::isnan(right)) return kNan;
  return right - left;
}

}  // namespace

double printed_cd(const Image& latent_img, const geom::Point& center,
                  const geom::Point& direction, double span_nm,
                  double threshold) {
  return span_width(latent_img, center, direction, span_nm, threshold, true);
}

double clear_cd(const Image& latent_img, const geom::Point& center,
                const geom::Point& direction, double span_nm,
                double threshold) {
  return span_width(latent_img, center, direction, span_nm, threshold, false);
}

double edge_placement_error(const Image& latent_img,
                            const geom::Point& edge_point,
                            const geom::Point& outward_normal,
                            double range_nm, double threshold) {
  const double step = latent_img.frame().pixel_nm / 4.0;
  const LineScan s =
      scan(latent_img, edge_point, outward_normal, -range_nm, range_nm, step);
  // The printed contour crossing nearest t=0 where intensity transitions
  // from printed (inside, t<crossing) to clear (outside) as t increases.
  double best = kNan;
  for (std::size_t i = 0; i + 1 < s.v.size(); ++i) {
    const bool in0 = s.v[i] >= threshold;
    const bool in1 = s.v[i + 1] >= threshold;
    if (in0 && !in1) {
      const double t = crossing_t(s, i, threshold);
      if (std::isnan(best) || std::abs(t) < std::abs(best)) best = t;
    }
  }
  return best;
}

double image_log_slope(const Image& latent_img, const geom::Point& edge_point,
                       const geom::Point& outward_normal, double range_nm,
                       double threshold) {
  const double t_cross = edge_placement_error(
      latent_img, edge_point, outward_normal, range_nm, threshold);
  if (std::isnan(t_cross)) return kNan;
  const double h = latent_img.frame().pixel_nm / 4.0;
  auto at = [&](double t) {
    return latent_img.sample(
        static_cast<double>(edge_point.x) +
            static_cast<double>(outward_normal.x) * t,
        static_cast<double>(edge_point.y) +
            static_cast<double>(outward_normal.y) * t);
  };
  const double slope = (at(t_cross + h) - at(t_cross - h)) / (2.0 * h);
  const double intensity = at(t_cross);
  if (intensity <= 0.0) return kNan;
  return std::abs(slope) / intensity;
}

std::vector<ExposureLatitude> exposure_defocus_window(
    const std::function<double(double, double)>& cd_fn,
    const std::vector<double>& defocus_list, double target_cd,
    double tol_frac, double dose_min, double dose_max, double dose_step) {
  OPCKIT_CHECK(tol_frac > 0 && dose_step > 0 && dose_max > dose_min);
  std::vector<ExposureLatitude> out;
  out.reserve(defocus_list.size());
  const auto steps =
      static_cast<std::size_t>((dose_max - dose_min) / dose_step + 1e-9) + 1;
  for (double z : defocus_list) {
    ExposureLatitude el;
    el.defocus_nm = z;
    // The passing-dose set can be non-contiguous (e.g. a sidelobe
    // printing only at mid doses); reporting min..max of the whole set
    // would overstate the latitude, so keep the largest contiguous run.
    bool best_any = false, in_run = false;
    double best_lo = 0.0, best_hi = 0.0, run_lo = 0.0, run_hi = 0.0;
    const auto close_run = [&] {
      if (in_run && (!best_any || run_hi - run_lo > best_hi - best_lo)) {
        best_any = true;
        best_lo = run_lo;
        best_hi = run_hi;
      }
      in_run = false;
    };
    for (std::size_t i = 0; i < steps; ++i) {
      const double dose = dose_min + static_cast<double>(i) * dose_step;
      const double cd = cd_fn(z, dose);
      const bool ok =
          !std::isnan(cd) && std::abs(cd - target_cd) <= tol_frac * target_cd;
      if (ok) {
        if (!in_run) {
          in_run = true;
          run_lo = dose;
        }
        run_hi = dose;
      } else {
        close_run();
      }
    }
    close_run();
    if (best_any) {
      el.dose_lo = best_lo;
      el.dose_hi = best_hi;
    }
    el.latitude_pct = best_any ? 100.0 * (best_hi - best_lo) : 0.0;
    out.push_back(el);
  }
  return out;
}

double depth_of_focus(const std::vector<ExposureLatitude>& window,
                      double min_latitude_pct) {
  // Largest contiguous defocus span with latitude >= the floor.
  double best = 0.0;
  std::size_t i = 0;
  while (i < window.size()) {
    if (window[i].latitude_pct < min_latitude_pct) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < window.size() &&
           window[j + 1].latitude_pct >= min_latitude_pct) {
      ++j;
    }
    best = std::max(best, window[j].defocus_nm - window[i].defocus_nm);
    i = j + 1;
  }
  return best;
}

double meef(const std::function<double(geom::Coord)>& wafer_cd_of_mask_bias,
            geom::Coord delta_nm) {
  OPCKIT_CHECK(delta_nm > 0);
  const double cd_plus = wafer_cd_of_mask_bias(delta_nm);
  const double cd_minus = wafer_cd_of_mask_bias(-delta_nm);
  if (std::isnan(cd_plus) || std::isnan(cd_minus)) return kNan;
  // A per-side bias of b changes the mask CD by 2b, so the mask-CD
  // difference between the +delta and -delta evaluations is 4*delta.
  return (cd_plus - cd_minus) / (4.0 * static_cast<double>(delta_nm));
}

}  // namespace opckit::litho
