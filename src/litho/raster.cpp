#include "litho/raster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "trace/metrics.h"

namespace opckit::litho {

namespace {

/// Overlap of [a0,a1] with pixel index i of size s starting at origin o:
/// helper returning the clipped length in nm.
double overlap(double a0, double a1, double p0, double p1) {
  return std::max(0.0, std::min(a1, p1) - std::max(a0, p0));
}

}  // namespace

void rasterize(const geom::Region& region, Image& img) {
  const Frame& f = img.frame();
  const double s = f.pixel_nm;
  const double ox = static_cast<double>(f.origin.x);
  const double oy = static_cast<double>(f.origin.y);
  const double inv_area = 1.0 / (s * s);

  // Count cells locally and publish once — one atomic add per call, not
  // one per pixel, keeps the inner loop unchanged.
  std::uint64_t cells = 0;
  for (const geom::Rect& r : region.rects()) {
    const double x0 = static_cast<double>(r.lo.x), x1 = static_cast<double>(r.hi.x);
    const double y0 = static_cast<double>(r.lo.y), y1 = static_cast<double>(r.hi.y);
    // Pixel index span touched by the rect, clamped to the grid.
    const auto ix_begin = static_cast<long>(std::floor((x0 - ox) / s));
    const auto ix_end = static_cast<long>(std::ceil((x1 - ox) / s));
    const auto iy_begin = static_cast<long>(std::floor((y0 - oy) / s));
    const auto iy_end = static_cast<long>(std::ceil((y1 - oy) / s));
    const long nx = static_cast<long>(f.nx), ny = static_cast<long>(f.ny);
    for (long iy = std::max(0L, iy_begin); iy < std::min(ny, iy_end); ++iy) {
      const double py0 = oy + static_cast<double>(iy) * s;
      const double wy = overlap(y0, y1, py0, py0 + s);
      if (wy <= 0) continue;
      for (long ix = std::max(0L, ix_begin); ix < std::min(nx, ix_end);
           ++ix) {
        const double px0 = ox + static_cast<double>(ix) * s;
        const double wx = overlap(x0, x1, px0, px0 + s);
        if (wx <= 0) continue;
        img.at(static_cast<std::size_t>(ix), static_cast<std::size_t>(iy)) +=
            wx * wy * inv_area;
        ++cells;
      }
    }
  }
  trace::metrics().counter(trace::metric::kLithoRasterCells).add(cells);
}

void rasterize(std::span<const geom::Polygon> polys, Image& img) {
  rasterize(geom::Region::from_polygons(polys), img);
}

Image rasterize(const geom::Region& region, const Frame& frame) {
  Image img(frame);
  rasterize(region, img);
  return img;
}

}  // namespace opckit::litho
