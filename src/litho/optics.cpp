#include "litho/optics.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "litho/fft.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace opckit::litho {

double MaskModel::background_amplitude() const {
  if (type == MaskType::kBinary) return 0.0;
  OPCKIT_CHECK(background_transmission >= 0.0 &&
               background_transmission < 1.0);
  return -std::sqrt(background_transmission);
}

std::vector<SourcePoint> sample_source(const OpticalSystem& sys) {
  const SourceSpec& src = sys.source;
  OPCKIT_CHECK(src.grid >= 1);
  const bool dipole = src.shape == SourceShape::kDipoleX ||
                      src.shape == SourceShape::kDipoleY;
  const double r_out =
      dipole ? src.pole_center + src.pole_radius : src.sigma_outer;
  OPCKIT_CHECK(r_out > 0.0 && r_out <= 1.0);
  const double r_in =
      src.shape == SourceShape::kAnnular ? src.sigma_inner : 0.0;
  OPCKIT_CHECK(r_in >= 0.0 && r_in < r_out);
  const double f_na = sys.na / sys.wavelength_nm;  // pupil radius in 1/nm

  const auto inside = [&](double u, double v) {
    switch (src.shape) {
      case SourceShape::kCircular:
        return std::hypot(u, v) <= r_out;
      case SourceShape::kAnnular: {
        const double r = std::hypot(u, v);
        return r <= r_out && r >= r_in;
      }
      case SourceShape::kDipoleX:
        return std::hypot(u - src.pole_center, v) <= src.pole_radius ||
               std::hypot(u + src.pole_center, v) <= src.pole_radius;
      case SourceShape::kDipoleY:
        return std::hypot(u, v - src.pole_center) <= src.pole_radius ||
               std::hypot(u, v + src.pole_center) <= src.pole_radius;
    }
    return false;
  };

  std::vector<SourcePoint> pts;
  const int n = src.grid;
  // Dipoles need a finer raster than disc sources to land enough points
  // inside the small poles; scale the raster so the pole diameter spans
  // at least ~3 cells.
  // std::ceil, not a truncating cast: 3·r_out/radius = 10.2 must mean
  // 11 cells, or small poles land under the 3-cells-across guarantee.
  const int eff_n =
      dipole ? std::max<int>(n, static_cast<int>(std::ceil(
                                    3.0 * r_out / src.pole_radius))) : n;
  for (int j = 0; j < eff_n; ++j) {
    for (int i = 0; i < eff_n; ++i) {
      // Cell centers of an eff_n x eff_n raster over [-r_out, r_out]^2.
      const double u =
          eff_n == 1 ? 0.0
                     : -r_out + (2.0 * r_out) *
                                    (static_cast<double>(i) + 0.5) /
                                    static_cast<double>(eff_n);
      const double v =
          eff_n == 1 ? 0.0
                     : -r_out + (2.0 * r_out) *
                                    (static_cast<double>(j) + 0.5) /
                                    static_cast<double>(eff_n);
      if (!inside(u, v)) continue;
      pts.push_back({u * f_na, v * f_na, 1.0});
    }
  }
  OPCKIT_CHECK_MSG(!pts.empty(), "source sampling produced no points");
  const double w = 1.0 / static_cast<double>(pts.size());
  for (auto& p : pts) p.weight = w;
  return pts;
}

Complex pupil_transmission(const OpticalSystem& sys, double fx, double fy,
                           double defocus_nm) {
  const double f_cut = sys.na / sys.wavelength_nm;
  const double f_cut2 = f_cut * f_cut;
  const double f2 = fx * fx + fy * fy;
  if (f2 > f_cut2) return Complex{0.0, 0.0};  // outside pupil
  const double defocus_phase_scale =
      -std::numbers::pi * sys.wavelength_nm * defocus_nm;
  double phase = defocus_phase_scale * f2;
  const Aberrations& ab = sys.aberrations;
  if (ab.any()) {
    // Normalized pupil coordinates: u = cosθ·ρ, v = sinθ·ρ.
    const double wf_to_phase = 2.0 * std::numbers::pi / sys.wavelength_nm;
    const double u = fx / f_cut;
    const double v = fy / f_cut;
    const double rho2 = u * u + v * v;
    const double coma_radial = 3.0 * rho2 - 2.0;  // (3ρ³-2ρ)/ρ
    const double wavefront_nm =
        ab.coma_x_nm * coma_radial * u +
        ab.coma_y_nm * coma_radial * v +
        ab.astig_nm * (u * u - v * v);  // ρ²cos2θ
    phase += wf_to_phase * wavefront_nm;
  }
  return Complex{std::cos(phase), std::sin(phase)};
}

namespace detail {

void weighted_intensity_sum(
    std::size_t units, std::size_t n,
    const std::function<void(std::size_t, std::vector<double>&)>& compute,
    const std::function<double(std::size_t)>& weight,
    std::vector<double>& acc) {
  OPCKIT_CHECK(acc.size() == n);
  // At most kChunk per-unit frames resident at once; accumulation runs
  // in ascending unit order within and across chunks — the same order
  // as an all-at-once reduction, so results are bit-identical at any
  // thread count while peak memory stays O(kChunk·n).
  constexpr std::size_t kChunk = 16;
  std::vector<std::vector<double>> scratch(std::min(kChunk, units));
  for (auto& buf : scratch) buf.resize(n);
  for (std::size_t base = 0; base < units; base += kChunk) {
    const std::size_t m = std::min(kChunk, units - base);
    util::global_pool().parallel_for(
        m, [&](std::size_t j) { compute(base + j, scratch[j]); });
    for (std::size_t j = 0; j < m; ++j) {
      const double w = weight(base + j);
      const std::vector<double>& img = scratch[j];
      for (std::size_t i = 0; i < n; ++i) acc[i] += w * img[i];
    }
  }
}

}  // namespace detail

AbbeImager::AbbeImager(const OpticalSystem& sys, const Frame& frame)
    : sys_(sys),
      frame_(frame),
      fft2_(frame.nx, frame.ny),
      source_(sample_source(sys)) {
  OPCKIT_CHECK_MSG(is_pow2(frame.nx) && is_pow2(frame.ny),
                   "frame dims must be powers of two, got "
                       << frame.nx << 'x' << frame.ny);
  freq_x_.resize(frame.nx);
  freq_y_.resize(frame.ny);
  for (std::size_t k = 0; k < frame.nx; ++k) {
    freq_x_[k] = fft_freq(k, frame.nx) / frame.pixel_nm;
  }
  for (std::size_t k = 0; k < frame.ny; ++k) {
    freq_y_[k] = fft_freq(k, frame.ny) / frame.pixel_nm;
  }
}

Image AbbeImager::aerial_image(const Image& mask, double defocus_nm,
                               const MaskModel& mask_model) const {
  OPCKIT_CHECK(mask.frame() == frame_);
  const std::size_t nx = frame_.nx, ny = frame_.ny;
  const std::size_t n = nx * ny;

  // Mask spectrum (computed once, shared read-only by all source points).
  // Coverage c -> complex transmission c + (1 - c) * t_bg; the
  // transmission is real for both mask technologies, so the spectrum
  // comes from the planned r2c forward.
  const double t_bg = mask_model.background_amplitude();
  std::vector<double> trans(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = mask.values()[i];
    trans[i] = c + (1.0 - c) * t_bg;
  }
  std::vector<Complex> spectrum;
  fft2_.forward_real(trans, spectrum);

  // Per-source shifted-pupil supports and transmissions. The support
  // (|f + f_s| inside the NA cutoff) depends only on geometry, not the
  // mask, and collecting it up front lets each coherent image run as a
  // SparseInverseBatch: rows with no pupil bins are skipped exactly,
  // and |·|² plus the inverse normalization are fused into the column
  // epilogue.
  std::vector<std::vector<std::uint32_t>> supports(source_.size());
  std::vector<std::vector<Complex>> pupils(source_.size());
  for (std::size_t si = 0; si < source_.size(); ++si) {
    const SourcePoint& sp = source_[si];
    for (std::size_t ky = 0; ky < ny; ++ky) {
      const double fy = freq_y_[ky] + sp.fy;
      for (std::size_t kx = 0; kx < nx; ++kx) {
        const double fx = freq_x_[kx] + sp.fx;
        const Complex pupil = pupil_transmission(sys_, fx, fy, defocus_nm);
        if (pupil == Complex{0.0, 0.0}) continue;  // outside pupil
        supports[si].push_back(static_cast<std::uint32_t>(ky * nx + kx));
        pupils[si].push_back(pupil);
      }
    }
  }

  // One coherent intensity per source point, reduced in fixed order by
  // the chunked helper: deterministic regardless of thread count, and
  // peak memory bounded by the chunk size instead of |S|.
  Image intensity(frame_, 0.0);
  detail::weighted_intensity_sum(
      source_.size(), n,
      [&](std::size_t si, std::vector<double>& out) {
        const SparseInverseBatch batch(fft2_, supports[si]);
        batch.inverse_mag2(spectrum.data(), pupils[si], out);
      },
      [&](std::size_t si) { return source_[si].weight; },
      intensity.values());
  return intensity;
}

}  // namespace opckit::litho
