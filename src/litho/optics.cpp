#include "litho/optics.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "litho/fft.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace opckit::litho {

double MaskModel::background_amplitude() const {
  if (type == MaskType::kBinary) return 0.0;
  OPCKIT_CHECK(background_transmission >= 0.0 &&
               background_transmission < 1.0);
  return -std::sqrt(background_transmission);
}

std::vector<SourcePoint> sample_source(const OpticalSystem& sys) {
  const SourceSpec& src = sys.source;
  OPCKIT_CHECK(src.grid >= 1);
  const bool dipole = src.shape == SourceShape::kDipoleX ||
                      src.shape == SourceShape::kDipoleY;
  const double r_out =
      dipole ? src.pole_center + src.pole_radius : src.sigma_outer;
  OPCKIT_CHECK(r_out > 0.0 && r_out <= 1.0);
  const double r_in =
      src.shape == SourceShape::kAnnular ? src.sigma_inner : 0.0;
  OPCKIT_CHECK(r_in >= 0.0 && r_in < r_out);
  const double f_na = sys.na / sys.wavelength_nm;  // pupil radius in 1/nm

  const auto inside = [&](double u, double v) {
    switch (src.shape) {
      case SourceShape::kCircular:
        return std::hypot(u, v) <= r_out;
      case SourceShape::kAnnular: {
        const double r = std::hypot(u, v);
        return r <= r_out && r >= r_in;
      }
      case SourceShape::kDipoleX:
        return std::hypot(u - src.pole_center, v) <= src.pole_radius ||
               std::hypot(u + src.pole_center, v) <= src.pole_radius;
      case SourceShape::kDipoleY:
        return std::hypot(u, v - src.pole_center) <= src.pole_radius ||
               std::hypot(u, v + src.pole_center) <= src.pole_radius;
    }
    return false;
  };

  std::vector<SourcePoint> pts;
  const int n = src.grid;
  // Dipoles need a finer raster than disc sources to land enough points
  // inside the small poles; scale the raster so the pole diameter spans
  // at least ~3 cells.
  const int eff_n =
      dipole ? std::max<int>(n, static_cast<int>(3.0 * r_out /
                                                 src.pole_radius)) : n;
  for (int j = 0; j < eff_n; ++j) {
    for (int i = 0; i < eff_n; ++i) {
      // Cell centers of an eff_n x eff_n raster over [-r_out, r_out]^2.
      const double u =
          eff_n == 1 ? 0.0
                     : -r_out + (2.0 * r_out) *
                                    (static_cast<double>(i) + 0.5) /
                                    static_cast<double>(eff_n);
      const double v =
          eff_n == 1 ? 0.0
                     : -r_out + (2.0 * r_out) *
                                    (static_cast<double>(j) + 0.5) /
                                    static_cast<double>(eff_n);
      if (!inside(u, v)) continue;
      pts.push_back({u * f_na, v * f_na, 1.0});
    }
  }
  OPCKIT_CHECK_MSG(!pts.empty(), "source sampling produced no points");
  const double w = 1.0 / static_cast<double>(pts.size());
  for (auto& p : pts) p.weight = w;
  return pts;
}

AbbeImager::AbbeImager(const OpticalSystem& sys, const Frame& frame)
    : sys_(sys), frame_(frame), source_(sample_source(sys)) {
  OPCKIT_CHECK_MSG(is_pow2(frame.nx) && is_pow2(frame.ny),
                   "frame dims must be powers of two, got "
                       << frame.nx << 'x' << frame.ny);
  freq_x_.resize(frame.nx);
  freq_y_.resize(frame.ny);
  for (std::size_t k = 0; k < frame.nx; ++k) {
    freq_x_[k] = fft_freq(k, frame.nx) / frame.pixel_nm;
  }
  for (std::size_t k = 0; k < frame.ny; ++k) {
    freq_y_[k] = fft_freq(k, frame.ny) / frame.pixel_nm;
  }
}

Image AbbeImager::aerial_image(const Image& mask, double defocus_nm,
                               const MaskModel& mask_model) const {
  OPCKIT_CHECK(mask.frame() == frame_);
  const std::size_t nx = frame_.nx, ny = frame_.ny;
  const std::size_t n = nx * ny;

  // Mask spectrum (computed once, shared read-only by all source points).
  // Coverage c -> complex transmission c + (1 - c) * t_bg.
  const double t_bg = mask_model.background_amplitude();
  std::vector<Complex> spectrum(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double c = mask.values()[i];
    spectrum[i] = c + (1.0 - c) * t_bg;
  }
  fft_2d(spectrum, nx, ny, /*inverse=*/false);

  const double f_cut = sys_.na / sys_.wavelength_nm;
  const double f_cut2 = f_cut * f_cut;
  const double defocus_phase_scale =
      -std::numbers::pi * sys_.wavelength_nm * defocus_nm;
  const Aberrations& ab = sys_.aberrations;
  const bool aberrated = ab.any();
  const double wf_to_phase = 2.0 * std::numbers::pi / sys_.wavelength_nm;

  // One coherent intensity per source point, then a fixed-order reduction:
  // deterministic regardless of thread count.
  std::vector<std::vector<double>> per_source(source_.size());
  util::global_pool().parallel_for(source_.size(), [&](std::size_t si) {
    const SourcePoint& sp = source_[si];
    std::vector<Complex> field(n, Complex{0.0, 0.0});
    for (std::size_t ky = 0; ky < ny; ++ky) {
      const double fy = freq_y_[ky] + sp.fy;
      const double fy2 = fy * fy;
      for (std::size_t kx = 0; kx < nx; ++kx) {
        const double fx = freq_x_[kx] + sp.fx;
        const double f2 = fx * fx + fy2;
        if (f2 > f_cut2) continue;  // outside pupil
        double phase = defocus_phase_scale * f2;
        if (aberrated) {
          // Normalized pupil coordinates: u = cosθ·ρ, v = sinθ·ρ.
          const double u = fx / f_cut;
          const double v = fy / f_cut;
          const double rho2 = u * u + v * v;
          const double coma_radial = 3.0 * rho2 - 2.0;  // (3ρ³-2ρ)/ρ
          const double wavefront_nm =
              ab.coma_x_nm * coma_radial * u +
              ab.coma_y_nm * coma_radial * v +
              ab.astig_nm * (u * u - v * v);  // ρ²cos2θ
          phase += wf_to_phase * wavefront_nm;
        }
        const Complex pupil(std::cos(phase), std::sin(phase));
        const std::size_t idx = ky * nx + kx;
        field[idx] = spectrum[idx] * pupil;
      }
    }
    fft_2d(field, nx, ny, /*inverse=*/true);
    auto& out = per_source[si];
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = std::norm(field[i]);
  });

  Image intensity(frame_, 0.0);
  auto& acc = intensity.values();
  for (std::size_t si = 0; si < source_.size(); ++si) {
    const double w = source_[si].weight;
    const auto& img = per_source[si];
    for (std::size_t i = 0; i < n; ++i) acc[i] += w * img[i];
  }
  return intensity;
}

}  // namespace opckit::litho
