#include "litho/simulator.h"

#include <cmath>
#include <limits>

#include "litho/fft.h"
#include "litho/metrology.h"
#include "litho/raster.h"
#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::litho {

namespace {

Frame make_frame(const SimSpec& spec, const geom::Rect& window) {
  OPCKIT_CHECK(!window.is_empty());
  OPCKIT_CHECK(spec.pixel_nm > 0);
  OPCKIT_CHECK(spec.guard_nm >= 0);
  const geom::Rect padded = window.inflated(spec.guard_nm);
  const auto need_x = static_cast<std::size_t>(
      std::ceil(static_cast<double>(padded.width()) / spec.pixel_nm));
  const auto need_y = static_cast<std::size_t>(
      std::ceil(static_cast<double>(padded.height()) / spec.pixel_nm));
  Frame f;
  f.pixel_nm = spec.pixel_nm;
  f.nx = next_pow2(need_x);
  f.ny = next_pow2(need_y);
  // Center the padded window inside the (possibly larger) pow2 grid.
  const auto extra_x = static_cast<geom::Coord>(
      (static_cast<double>(f.nx) * spec.pixel_nm -
       static_cast<double>(padded.width())) /
      2.0);
  const auto extra_y = static_cast<geom::Coord>(
      (static_cast<double>(f.ny) * spec.pixel_nm -
       static_cast<double>(padded.height())) /
      2.0);
  f.origin = padded.lo - geom::Point{extra_x, extra_y};
  return f;
}

}  // namespace

Simulator::Simulator(const SimSpec& spec, const geom::Rect& window)
    : spec_(spec),
      window_(window),
      frame_(make_frame(spec, window)),
      imager_(spec.optics, frame_) {
  if (spec.imaging == ImagingMode::kSocs) {
    socs_.emplace(spec.optics, frame_, SocsOptions{spec.socs_epsilon});
  }
}

Image Simulator::aerial(const geom::Region& mask, double defocus_nm) const {
  trace::metrics().counter(trace::metric::kLithoAerialImages).add();
  const Image coverage = rasterize(mask, frame_);
  if (socs_) return socs_->aerial_image(coverage, defocus_nm, spec_.mask);
  return imager_.aerial_image(coverage, defocus_nm, spec_.mask);
}

Image Simulator::latent(const geom::Region& mask, double defocus_nm) const {
  return latent_image(aerial(mask, defocus_nm), spec_.resist);
}

Image Simulator::latent(std::span<const geom::Polygon> mask,
                        double defocus_nm) const {
  return latent(geom::Region::from_polygons(mask), defocus_nm);
}

geom::Region Simulator::printed(const Image& latent_img, double dose) const {
  OPCKIT_CHECK(latent_img.frame() == frame_);
  const double thr = threshold(dose);
  const auto px = static_cast<geom::Coord>(std::llround(frame_.pixel_nm));
  OPCKIT_CHECK_MSG(std::abs(frame_.pixel_nm - static_cast<double>(px)) < 1e-9,
                   "printed() requires integer pixel size");
  std::vector<geom::Rect> rects;
  for (std::size_t iy = 0; iy < frame_.ny; ++iy) {
    const geom::Coord y0 = frame_.origin.y + static_cast<geom::Coord>(iy) * px;
    std::size_t run_start = 0;
    bool in_run = false;
    for (std::size_t ix = 0; ix <= frame_.nx; ++ix) {
      const bool on = ix < frame_.nx && latent_img.at(ix, iy) >= thr;
      if (on && !in_run) {
        run_start = ix;
        in_run = true;
      } else if (!on && in_run) {
        rects.emplace_back(
            frame_.origin.x + static_cast<geom::Coord>(run_start) * px, y0,
            frame_.origin.x + static_cast<geom::Coord>(ix) * px, y0 + px);
        in_run = false;
      }
    }
  }
  return geom::Region::from_rects(rects).clipped(window_);
}

Image double_exposure_latent(const SimSpec& spec_a,
                             const geom::Region& mask_a,
                             const SimSpec& spec_b,
                             const geom::Region& mask_b,
                             const geom::Rect& window, double weight_a,
                             double weight_b, double defocus_nm) {
  OPCKIT_CHECK(spec_a.pixel_nm == spec_b.pixel_nm &&
               spec_a.guard_nm == spec_b.guard_nm);
  OPCKIT_CHECK(weight_a >= 0 && weight_b >= 0 &&
               weight_a + weight_b > 0);
  const Simulator sim_a(spec_a, window);
  const Simulator sim_b(spec_b, window);
  OPCKIT_CHECK(sim_a.frame() == sim_b.frame());
  const Image aerial_a = sim_a.aerial(mask_a, defocus_nm);
  const Image aerial_b = sim_b.aerial(mask_b, defocus_nm);
  Image sum(sim_a.frame());
  for (std::size_t i = 0; i < sum.values().size(); ++i) {
    sum.values()[i] = weight_a * aerial_a.values()[i] +
                      weight_b * aerial_b.values()[i];
  }
  return latent_image(sum, spec_a.resist);
}

double calibrate_threshold(SimSpec& spec, geom::Coord anchor_cd_nm,
                           geom::Coord anchor_pitch_nm) {
  OPCKIT_CHECK(anchor_cd_nm > 0 && anchor_pitch_nm >= anchor_cd_nm);
  // Build the anchor grating: 7 lines, generous length.
  const geom::Coord length = 4000;
  std::vector<geom::Rect> lines;
  for (int i = -3; i <= 3; ++i) {
    const geom::Coord cx = static_cast<geom::Coord>(i) * anchor_pitch_nm;
    lines.emplace_back(cx - anchor_cd_nm / 2, -length / 2,
                       cx + anchor_cd_nm / 2, length / 2);
  }
  const geom::Rect window(-2 * anchor_pitch_nm, -length / 4,
                          2 * anchor_pitch_nm, length / 4);
  const Simulator sim(spec, window);
  const Image img = sim.latent(geom::Region::from_rects(lines));

  // Monotone: higher threshold -> narrower printed line. Bisect. A NaN
  // probe is disambiguated by the center intensity: still above threshold
  // means the line merged with its neighbors (effectively infinitely
  // wide), below means it vanished (width zero).
  const double span = static_cast<double>(anchor_pitch_nm);
  const auto cd_at = [&](double thr) {
    const double cd = printed_cd(img, {0, 0}, {1, 0}, span, thr);
    if (!std::isnan(cd)) return cd;
    return img.sample(0, 0) >= thr
               ? std::numeric_limits<double>::infinity()
               : 0.0;
  };
  double lo = 0.05, hi = 0.95;
  const double target = static_cast<double>(anchor_cd_nm);
  OPCKIT_CHECK_MSG(cd_at(lo) > target,
                   "anchor cannot print wide enough at threshold " << lo);
  OPCKIT_CHECK_MSG(cd_at(hi) < target,
                   "anchor prints too wide even at threshold " << hi);
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (cd_at(mid) < target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double thr = 0.5 * (lo + hi);
  // Guard against degenerate "calibration" on a zero-contrast image (an
  // anchor beyond the optics' resolution): require real modulation and
  // that the anchor actually prints on target at the found threshold.
  const double modulation =
      img.sample(0, 0) -
      img.sample(static_cast<double>(anchor_pitch_nm) / 2.0, 0);
  OPCKIT_CHECK_MSG(modulation > 0.10,
                   "anchor grating has no printable contrast (modulation "
                       << modulation << ")");
  const double final_cd = cd_at(thr);
  OPCKIT_CHECK_MSG(std::abs(final_cd - target) <= 2.0,
                   "calibration failed to converge: cd " << final_cd
                                                         << " target "
                                                         << target);
  spec.resist.threshold = thr;
  return spec.resist.threshold;
}

}  // namespace opckit::litho
