/// \file metrology.h
/// Metrology probes on latent images, plus process-window analytics.
///
/// All probes interpolate the latent image bilinearly and locate threshold
/// crossings by linear interpolation between samples (sub-pixel accurate,
/// sampling step = pixel/4). Probes return NaN when the requested feature
/// does not exist (e.g. a line that failed to print) — callers must treat
/// NaN as a catastrophic failure, not ignore it.
#pragma once

#include <functional>
#include <vector>

#include "geometry/point.h"
#include "litho/image.h"

namespace opckit::litho {

namespace detail {

/// Number of samples an inclusive [t0, t1] line scan takes at \p step:
/// floor((t1 - t0)/step) + 1, with an epsilon so a span that is an
/// exact multiple of step (up to FP rounding in the division) includes
/// its endpoint. Scans index with t = t0 + i·step — accumulating
/// t += step drifts by an ULP per iteration and can disagree with this
/// count or overshoot t1.
std::size_t scan_sample_count(double t0, double t1, double step);

/// Linear-interpolated threshold crossing between samples (t0, v0) and
/// (t1, v1). A flat segment (v0 == v1, both exactly at threshold in
/// practice) has its crossing anywhere in the segment: returns the
/// midpoint instead of a division by zero.
double interpolate_crossing(double t0, double t1, double v0, double v1,
                            double threshold);

}  // namespace detail

/// Width of the printed (intensity >= threshold) span containing
/// \p center, measured along \p direction (unit Manhattan vector) within
/// +/- span_nm/2. NaN if \p center is not printed or an edge is not found
/// inside the probe span.
double printed_cd(const Image& latent_img, const geom::Point& center,
                  const geom::Point& direction, double span_nm,
                  double threshold);

/// Width of the clear (intensity < threshold) span containing \p center —
/// the space/gap dual of printed_cd. NaN if \p center is printed or the
/// span is unbounded within the probe.
double clear_cd(const Image& latent_img, const geom::Point& center,
                const geom::Point& direction, double span_nm,
                double threshold);

/// Signed edge-placement error at a target edge point. \p outward_normal
/// is the target polygon's outward unit normal at \p edge_point. Positive
/// EPE: the printed contour lies outside the target (overprint); negative:
/// underprint. Searches within +/- range_nm; NaN if no contour crossing is
/// found (edge lost entirely).
double edge_placement_error(const Image& latent_img,
                            const geom::Point& edge_point,
                            const geom::Point& outward_normal,
                            double range_nm, double threshold);

/// Image log slope at a printed edge: |dI/dt| / I evaluated at the
/// threshold crossing nearest \p edge_point along \p outward_normal
/// (units 1/nm). Multiply by the feature CD for NILS, the standard
/// image-quality figure of merit (higher = steeper edge = more dose
/// latitude). NaN if no contour crossing is found within range_nm.
double image_log_slope(const Image& latent_img,
                       const geom::Point& edge_point,
                       const geom::Point& outward_normal, double range_nm,
                       double threshold);

/// One focus column of the exposure-defocus window.
struct ExposureLatitude {
  double defocus_nm = 0.0;
  double dose_lo = 0.0;      ///< lowest dose keeping CD within tolerance
  double dose_hi = 0.0;      ///< highest dose keeping CD within tolerance
  double latitude_pct = 0.0; ///< 100 * (hi - lo) / nominal(=1.0)
};

/// Scan the exposure-defocus matrix: for each defocus, find the dose range
/// (within [dose_min, dose_max], scanned at \p dose_step) that keeps
/// cd_fn(defocus, dose) within +/- tol_frac of target_cd. cd_fn may return
/// NaN for catastrophic failure (counts as out of spec).
std::vector<ExposureLatitude> exposure_defocus_window(
    const std::function<double(double defocus, double dose)>& cd_fn,
    const std::vector<double>& defocus_list, double target_cd,
    double tol_frac, double dose_min = 0.70, double dose_max = 1.30,
    double dose_step = 0.01);

/// Depth of focus: the total defocus span over which the exposure
/// latitude stays at or above \p min_latitude_pct. Assumes the latitude
/// list is ordered by defocus; returns 0 if never achieved.
double depth_of_focus(const std::vector<ExposureLatitude>& window,
                      double min_latitude_pct);

/// Mask error enhancement factor: d(wafer CD)/d(mask CD) estimated by
/// central difference. \p wafer_cd_of_mask_bias returns the printed CD
/// when every mask edge is biased by the given amount (so the mask CD
/// changes by 2*bias). NaN if either simulation fails.
double meef(const std::function<double(geom::Coord bias)>& wafer_cd_of_mask_bias,
            geom::Coord delta_nm);

}  // namespace opckit::litho
