/// \file litho.h
/// Umbrella header for the opckit lithography simulation engine.
#pragma once

#include "litho/fft.h"        // IWYU pragma: export
#include "litho/image.h"      // IWYU pragma: export
#include "litho/metrology.h"  // IWYU pragma: export
#include "litho/optics.h"     // IWYU pragma: export
#include "litho/raster.h"     // IWYU pragma: export
#include "litho/resist.h"     // IWYU pragma: export
#include "litho/simulator.h"  // IWYU pragma: export
#include "litho/socs.h"       // IWYU pragma: export
