/// \file fft.h
/// Planned radix-2 FFT engine (1D and 2D), self-contained.
///
/// The imaging engines spend >99.9 % of flow wall-clock in 2-D
/// transforms (T3), so the engine is built around *plans*: an FftPlan
/// precomputes the bit-reversal permutation and per-stage twiddle
/// tables for one size once, and every subsequent transform of that
/// size is pure table-driven butterflies. Plans are immutable after
/// construction and shared process-wide through PlanCache (same
/// lifecycle discipline as litho::KernelCache): one build per (size,
/// kind) per process, every later transform — any tile, any OPC
/// iteration, any flow — reuses it.
///
/// Three transform tiers, fastest path last:
///
///  1. Complex 1-D/2-D (`FftPlan::transform`, `Fft2d::forward/inverse`)
///     — the drop-in replacement for the old scalar kernel. The
///     twiddle tables are generated with the exact multiplicative
///     recurrence the old per-butterfly code used, so planned complex
///     transforms are BIT-IDENTICAL to the pre-plan implementation:
///     flow output cannot move by switching to plans.
///  2. Real-to-complex forward / complex-to-real inverse
///     (`forward_real`/`inverse_real`) — mask transmission is real, so
///     its spectrum is Hermitian (F[-k] = conj(F[k])) and only half of
///     it is independent. The r2c path packs even/odd samples into a
///     half-size complex transform plus an O(n) split pass (~2x on the
///     mask-spectrum forward), computes columns only for kx <= nx/2,
///     and mirrors the remaining half. Numerically equivalent to the
///     complex path within ~1e-15 relative (the parity suite pins
///     1e-12), not bit-identical.
///  3. Batched sparse inverse (`SparseInverseBatch`) — the SOCS/Abbe
///     hot loop Σ w·|IFFT(spectrum·filter)|² transforms fields that
///     are nonzero only on the pupil support, a small disk of
///     frequency bins. All batch members share one plan and one
///     support, so the row/column pruning structure is computed once:
///     rows with no support bins are skipped outright (their transform
///     is exactly zero — skipping is bit-exact, not approximate),
///     touched rows live in a compact cache-resident buffer, the
///     column pass gathers blocks of columns to stay cache-friendly,
///     and the |·|² + 1/(nx·ny) normalization is fused into the column
///     epilogue so the complex image is never materialized. The fused
///     result is bit-identical to transform-then-normalize-then-|·|²
///     of the pre-plan engine (same operations, same order, zero rows
///     dropped exactly).
///
/// Sizes are powers of two. Convention: forward is unnormalized,
/// inverse divides by N (1D) or Nx*Ny (2D), so ifft(fft(x)) == x; the
/// unnormalized FftPlan primitives document their own scaling.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace opckit::litho {

using Complex = std::complex<double>;

/// True if \p n is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n. Checked: \p n must be representable,
/// i.e. n <= 2^63 on 64-bit size_t (the old version hung in an
/// infinite shift-overflow loop beyond that).
std::size_t next_pow2(std::size_t n);

/// Frequency (cycles per sample) of FFT bin \p k in a length-\p n
/// transform, using the standard wrap-around convention: bins [0, n/2)
/// map to [0, 0.5) and bins [n/2, n) map to [-0.5, 0). Checked:
/// n > 0 and k < n.
double fft_freq(std::size_t k, std::size_t n);

/// Transform direction. Plans hold twiddle tables for both, so one
/// cached plan serves the forward/inverse pairing every consumer does.
enum class FftDirection { kForward, kInverse };

/// What a plan is specialized for. kComplex carries the bit-reversal
/// and per-stage twiddles for complex transforms of size n; kReal is a
/// superset that additionally carries the half-size tables and split
/// twiddles the r2c/c2r paths need.
enum class FftKind { kComplex, kReal };

/// Precomputed transform schedule for one 1-D size: bit-reversal
/// permutation plus per-stage twiddle tables for both directions
/// (and, for kReal, the half-size sub-plan and split twiddles).
/// Immutable after construction; all methods are const and
/// thread-safe. Size must be a power of two.
class FftPlan {
 public:
  FftPlan(std::size_t n, FftKind kind);

  std::size_t size() const { return n_; }
  FftKind kind() const { return kind_; }

  /// Unnormalized in-place complex transform (caller divides by n for
  /// the inverse). Bit-identical to the pre-plan scalar kernel: the
  /// twiddle tables are built with the same multiplicative recurrence
  /// and the butterflies run in the same order.
  void transform(Complex* data, FftDirection dir) const;

  /// r2c forward: n real samples -> the n/2+1 independent bins of the
  /// Hermitian spectrum (out[k] = F[k] for k in [0, n/2]).
  /// Unnormalized, matches transform(kForward) within rounding.
  /// Requires kind() == kReal.
  void forward_real(const double* in, Complex* out) const;

  /// c2r inverse of a Hermitian half-spectrum: n/2+1 complex bins ->
  /// n real samples. Unnormalized (divide by n to invert
  /// forward_real). The conjugate-mirror bins are implied, never read.
  /// Requires kind() == kReal.
  void inverse_real(const Complex* in, double* out) const;

 private:
  /// Complex transform of size n_/2 using the half-size tables.
  void transform_half(Complex* data, FftDirection dir) const;

  static std::vector<std::uint32_t> bit_reversal(std::size_t n);
  static std::vector<Complex> stage_twiddles(std::size_t n, bool inverse);

  std::size_t n_;
  FftKind kind_;
  std::vector<std::uint32_t> rev_;        ///< bit-reversal for size n
  std::vector<Complex> tw_fwd_, tw_inv_;  ///< stage tables, concatenated
  // kReal extras: the half-size sub-plan (r2c runs a complex n/2
  // transform on packed even/odd samples) and the split twiddles
  // e^{-2*pi*i*k/n}, k in [0, n/2].
  std::vector<std::uint32_t> rev_half_;
  std::vector<Complex> tw_fwd_half_, tw_inv_half_;
  std::vector<Complex> split_;
};

/// Process-wide plan cache keyed on (size, kind) — the KernelCache
/// discipline applied to transform schedules: the first request for a
/// key builds (and records `litho.fft_plan_*` metrics), every later
/// request is a map lookup returning the same immutable plan.
/// Thread-safe; never evicts (a process sees a handful of distinct
/// frame sizes at most, and a plan is a few KB).
class PlanCache {
 public:
  struct Stats {
    std::uint64_t builds = 0;
    std::uint64_t hits = 0;
  };

  /// The process-wide instance.
  static PlanCache& instance();

  /// Return the plan for (n, kind), building on first touch. A kReal
  /// plan also serves complex transforms of the same size, but the two
  /// kinds are distinct cache keys: callers that never touch the real
  /// path don't pay for its tables.
  std::shared_ptr<const FftPlan> get(std::size_t n, FftKind kind);

  Stats stats() const;
  std::size_t size() const;
  /// Drop all entries and reset stats (test hook).
  void clear();

 private:
  using Key = std::pair<std::size_t, int>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<const FftPlan>> plans_;
  Stats stats_;
};

/// Planned 2-D transform engine bound to one (nx, ny) shape: holds the
/// row/column plans from the PlanCache and runs cache-blocked column
/// passes (columns are gathered in blocks into contiguous scratch
/// instead of transformed one strided column at a time). Immutable
/// after construction; methods are const and thread-safe (per-call
/// scratch). Both dims must be powers of two.
class Fft2d {
 public:
  Fft2d(std::size_t nx, std::size_t ny);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  const FftPlan& row_plan() const { return *row_; }
  const FftPlan& col_plan() const { return *col_; }

  /// In-place complex 2-D transform of a row-major nx*ny array.
  /// Forward is unnormalized; inverse divides by nx*ny. Bit-identical
  /// to the pre-plan fft_2d.
  void forward(std::vector<Complex>& data) const;
  void inverse(std::vector<Complex>& data) const;

  /// r2c 2-D forward: real row-major image -> the FULL nx*ny complex
  /// spectrum (rows via r2c, columns only for kx <= nx/2, remaining
  /// bins filled by the Hermitian mirror F[-kx,-ky] = conj(F[kx,ky])).
  /// ~2x the complex forward; equivalent within ~1e-15 relative.
  ///
  /// ## Half-spectrum layout contract (r2c round trips)
  ///
  /// The output is a FULL row-stride array: bin (kx, ky) lives at
  /// out[ky * nx + kx] for every kx in [0, nx), NOT a packed
  /// (nx/2+1)-stride half array. At return the whole array is valid,
  /// including the kx > nx/2 mirror half. The round-trip contract is
  /// asymmetric on purpose:
  ///
  ///  - inverse_real reads ONLY the independent half, kx <= nx/2 of
  ///    every row (full row stride). A caller that filters the spectrum
  ///    between forward_real and inverse_real therefore only needs to
  ///    touch bins with kx <= nx/2 — the mirror half may go STALE
  ///    (hold pre-filter values) without affecting the result. The
  ///    resist gaussian_blur transfer multiply relies on exactly this.
  ///  - any consumer that reads the full layout (dense complex
  ///    inverses, kernel-support gathers at kx > nx/2) must either
  ///    apply its filter to both halves or re-mirror after filtering:
  ///    the layout itself does not re-synchronize.
  ///
  /// Filters applied to the kx <= nx/2 half must be conjugate-symmetric
  /// (real transfer functions of |f| qualify) for the implied mask to
  /// stay Hermitian; inverse_real assumes Hermitian input and returns
  /// the real part's image regardless.
  void forward_real(std::span<const double> in,
                    std::vector<Complex>& out) const;

  /// c2r 2-D inverse of a Hermitian spectrum in full layout: only the
  /// kx <= nx/2 half of each row is read (the mirror half may be stale
  /// — see the layout contract on forward_real), output is the real
  /// image with 1/(nx*ny) normalization applied.
  void inverse_real(std::span<const Complex> in,
                    std::vector<double>& out) const;

 private:
  friend class SparseInverseBatch;

  /// Blocked column pass over columns [0, cols) of \p data in place.
  void column_pass(Complex* data, std::size_t cols, FftDirection dir) const;

  std::size_t nx_, ny_;
  std::shared_ptr<const FftPlan> row_;  ///< kReal (serves complex + r2c)
  std::shared_ptr<const FftPlan> col_;  ///< kComplex
};

/// A batch of same-size inverse transforms sharing one plan and one
/// sparse frequency support — the per-kernel IFFTs of the SOCS image
/// sum Σ λ_k·|IFFT(spectrum·φ_k)|² (and the per-source-point loop of
/// the Abbe engine). Binding the support once lets every member reuse
/// the pruning structure:
///
///  - rows with no support bins are never transformed (their row FFT
///    is identically zero — exact, not approximate), and the touched
///    rows live in a compact |rows|·nx scratch that stays cache
///    resident;
///  - the column pass gathers blocks of columns reading only the
///    touched rows;
///  - the inverse normalization and |·|² are fused into the column
///    epilogue, writing the real intensity directly — the complex
///    image is never materialized.
///
/// The result is bit-identical to the unpruned inverse + normalize +
/// |·|² sequence of the pre-plan engine. Thread-safe: each call uses
/// its own scratch, so batch members may run on pool workers
/// concurrently (exactly how detail::weighted_intensity_sum drives
/// it).
class SparseInverseBatch {
 public:
  /// \p support: ascending flat frame indices (ky*nx + kx) of the bins
  /// that may be nonzero in every batch member.
  SparseInverseBatch(const Fft2d& plan,
                     std::span<const std::uint32_t> support);

  /// Distinct frequency rows covered by the support (the rows the
  /// pruned row pass actually transforms).
  std::size_t support_rows() const { return rows_.size(); }
  /// Rows skipped per transform relative to the dense pass.
  std::size_t rows_pruned() const { return plan_.ny() - rows_.size(); }

  /// Compute out[i] = |IFFT(field)(i)|² over the full frame, where
  /// field[support[j]] = spectrum[support[j]] * factors[j] and zero
  /// elsewhere; the inverse carries the 1/(nx*ny) normalization.
  /// \p spectrum points at a full nx*ny layout; \p factors aligns with
  /// the support; \p out is resized to nx*ny.
  void inverse_mag2(const Complex* spectrum,
                    std::span<const Complex> factors,
                    std::vector<double>& out) const;

  /// Same pruned inverse, but materializing the normalized COMPLEX
  /// field: out[i] = IFFT(field)(i) with field as in inverse_mag2.
  /// The ILT adjoint needs the per-kernel coherent fields E_k (not just
  /// |E_k|²) to form conj(E_k)·∂C/∂I, so this skips the fused |·|²
  /// epilogue. |out[i]|² is bit-identical to inverse_mag2's out[i].
  void inverse_field(const Complex* spectrum,
                     std::span<const Complex> factors,
                     std::vector<Complex>& out) const;

 private:
  Fft2d plan_;
  std::vector<std::uint32_t> support_;    ///< ascending flat indices
  std::vector<std::uint32_t> rows_;       ///< distinct ky values, ascending
  std::vector<std::uint32_t> compact_;    ///< scatter target per support bin
  std::vector<std::uint32_t> row_slot_;   ///< ky -> slot in rows_ (or npos)
};

/// In-place 1D FFT of length data.size() (must be a power of two).
/// \p inverse selects the inverse transform (with 1/N normalization).
/// Thin shim over a PlanCache plan; bit-identical to the historic
/// scalar implementation.
void fft_1d(std::vector<Complex>& data, bool inverse);

/// In-place 2D FFT of a row-major nx*ny array (both powers of two).
/// \p inverse selects the inverse transform (with 1/(nx*ny)
/// normalization). Thin shim over Fft2d; bit-identical to the historic
/// implementation.
void fft_2d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
            bool inverse);

}  // namespace opckit::litho
