/// \file fft.h
/// Radix-2 complex FFT (1D and 2D), self-contained.
///
/// The Abbe imaging engine needs forward/inverse 2D transforms of the mask
/// transmission function. Sizes are powers of two. Convention: forward is
/// unnormalized, inverse divides by N (1D) or Nx*Ny (2D), so
/// ifft(fft(x)) == x.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace opckit::litho {

using Complex = std::complex<double>;

/// True if \p n is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// In-place 1D FFT of length data.size() (must be a power of two).
/// \p inverse selects the inverse transform (with 1/N normalization).
void fft_1d(std::vector<Complex>& data, bool inverse);

/// In-place 2D FFT of a row-major nx*ny array (both powers of two).
/// \p inverse selects the inverse transform (with 1/(nx*ny) normalization).
void fft_2d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
            bool inverse);

/// Frequency (cycles per sample) of FFT bin \p k in a length-\p n
/// transform, using the standard wrap-around convention: bins [0, n/2)
/// map to [0, 0.5) and bins [n/2, n) map to [-0.5, 0).
double fft_freq(std::size_t k, std::size_t n);

}  // namespace opckit::litho
