#include "litho/fft.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>

#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::litho {

std::size_t next_pow2(std::size_t n) {
  // Beyond the top representable power of two the old loop shifted p
  // into 0 and spun forever.
  constexpr std::size_t kTop = std::size_t{1}
                               << (sizeof(std::size_t) * 8 - 1);
  OPCKIT_CHECK_MSG(n <= kTop, "next_pow2(" << n << ") overflows size_t");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double fft_freq(std::size_t k, std::size_t n) {
  OPCKIT_CHECK_MSG(n > 0 && k < n,
                   "fft_freq bin " << k << " out of range for n=" << n);
  const auto nk = static_cast<double>(k);
  const auto nn = static_cast<double>(n);
  // k <= (n-1)/2, not k < n/2: identical for every even n, but keeps
  // the lone bin of n == 1 at DC (the old comparison mapped it to -1).
  return k <= (n - 1) / 2 ? nk / nn : nk / nn - 1.0;
}

std::vector<std::uint32_t> FftPlan::bit_reversal(std::size_t n) {
  std::vector<std::uint32_t> rev(n);
  // Same incremental carry walk the old per-call permutation used.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    rev[i] = static_cast<std::uint32_t>(j);
  }
  return rev;
}

std::vector<Complex> FftPlan::stage_twiddles(std::size_t n, bool inverse) {
  // One concatenated table of n-1 entries: stage `len` contributes
  // len/2 twiddles at offset len/2-1. Generated with the exact
  // multiplicative recurrence (w *= wlen) the old per-butterfly code
  // ran, so table-driven butterflies reproduce its results bit for
  // bit.
  std::vector<Complex> tw(n > 0 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    Complex w(1.0, 0.0);
    Complex* stage = tw.data() + (len / 2 - 1);
    for (std::size_t k = 0; k < len / 2; ++k) {
      stage[k] = w;
      w *= wlen;
    }
  }
  return tw;
}

FftPlan::FftPlan(std::size_t n, FftKind kind) : n_(n), kind_(kind) {
  OPCKIT_CHECK_MSG(is_pow2(n), "FFT size " << n << " is not a power of two");
  OPCKIT_CHECK_MSG(n <= (std::size_t{1} << 31),
                   "FFT size " << n << " exceeds the planner's index range");
  rev_ = bit_reversal(n);
  tw_fwd_ = stage_twiddles(n, /*inverse=*/false);
  tw_inv_ = stage_twiddles(n, /*inverse=*/true);
  if (kind == FftKind::kReal && n >= 2) {
    const std::size_t half = n / 2;
    rev_half_ = bit_reversal(half);
    tw_fwd_half_ = stage_twiddles(half, /*inverse=*/false);
    tw_inv_half_ = stage_twiddles(half, /*inverse=*/true);
    split_.resize(half + 1);
    for (std::size_t k = 0; k <= half; ++k) {
      const double ang =
          -2.0 * std::numbers::pi * static_cast<double>(k) /
          static_cast<double>(n);
      split_[k] = Complex(std::cos(ang), std::sin(ang));
    }
  }
}

namespace {

/// Table-driven Cooley-Tukey core shared by the full-size and
/// half-size paths. Identical loop structure to the historic scalar
/// kernel; only the twiddles come from the plan instead of a serial
/// recurrence, which breaks the w *= wlen dependency chain.
void planned_fft(Complex* data, std::size_t n,
                 const std::uint32_t* rev, const Complex* tw) {
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Complex* stage = tw + (len / 2 - 1);
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      Complex* lo = data + i;
      Complex* hi = lo + half;
      for (std::size_t k = 0; k < half; ++k) {
        const Complex u = lo[k];
        const Complex v = hi[k] * stage[k];
        lo[k] = u + v;
        hi[k] = u - v;
      }
    }
  }
}

}  // namespace

void FftPlan::transform(Complex* data, FftDirection dir) const {
  planned_fft(data, n_, rev_.data(),
              dir == FftDirection::kForward ? tw_fwd_.data()
                                            : tw_inv_.data());
}

void FftPlan::transform_half(Complex* data, FftDirection dir) const {
  planned_fft(data, n_ / 2, rev_half_.data(),
              dir == FftDirection::kForward ? tw_fwd_half_.data()
                                            : tw_inv_half_.data());
}

void FftPlan::forward_real(const double* in, Complex* out) const {
  OPCKIT_CHECK_MSG(kind_ == FftKind::kReal,
                   "forward_real needs a kReal plan (size " << n_ << ")");
  if (n_ == 1) {
    out[0] = Complex(in[0], 0.0);
    return;
  }
  const std::size_t half = n_ / 2;
  // Pack even/odd samples into one half-size complex transform:
  // z[j] = x[2j] + i*x[2j+1], Z = FFT_{n/2}(z). With Fe/Fo the FFTs of
  // the even/odd subsequences (both real, hence Hermitian):
  //   Fe[k] = (Z[k] + conj(Z[n/2-k])) / 2
  //   Fo[k] = (Z[k] - conj(Z[n/2-k])) / (2i)
  //   X[k]  = Fe[k] + e^{-2*pi*i*k/n} * Fo[k],  k in [0, n/2].
  std::vector<Complex> z(half);
  for (std::size_t j = 0; j < half; ++j) {
    z[j] = Complex(in[2 * j], in[2 * j + 1]);
  }
  transform_half(z.data(), FftDirection::kForward);
  for (std::size_t k = 0; k <= half; ++k) {
    const Complex zk = z[k % half];
    const Complex zm = std::conj(z[(half - k) % half]);
    const Complex fe = 0.5 * (zk + zm);
    const Complex fo = (zk - zm) * Complex(0.0, -0.5);
    out[k] = fe + split_[k] * fo;
  }
}

void FftPlan::inverse_real(const Complex* in, double* out) const {
  OPCKIT_CHECK_MSG(kind_ == FftKind::kReal,
                   "inverse_real needs a kReal plan (size " << n_ << ")");
  if (n_ == 1) {
    out[0] = in[0].real();
    return;
  }
  const std::size_t half = n_ / 2;
  // Invert the split: recover Z[k] (scaled by 2 so the unnormalized
  // half-size inverse yields n*x overall — callers divide by n, the
  // same convention as the complex path).
  //   2*Fe[k]          = X[k] + conj(X[n/2-k])
  //   2*e^{-..}*Fo[k]  = X[k] - conj(X[n/2-k])
  //   Z[k]             = Fe[k] + i*Fo[k]  (doubled here)
  std::vector<Complex> z(half);
  for (std::size_t k = 0; k < half; ++k) {
    const Complex xk = in[k];
    const Complex xm = std::conj(in[half - k]);
    const Complex fe2 = xk + xm;
    const Complex fo2 = std::conj(split_[k]) * (xk - xm);
    z[k] = fe2 + Complex(0.0, 1.0) * fo2;
  }
  transform_half(z.data(), FftDirection::kInverse);
  for (std::size_t j = 0; j < half; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const FftPlan> PlanCache::get(std::size_t n, FftKind kind) {
  const Key key{n, static_cast<int>(kind)};
  // Build under the lock — the KernelCache discipline: the first touch
  // of a key blocks peers for the one-time table build (microseconds)
  // instead of letting them duplicate it; every later touch is a map
  // lookup.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++stats_.hits;
    trace::metrics().counter(trace::metric::kLithoFftPlanHits).add();
    return it->second;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto plan = std::make_shared<const FftPlan>(n, kind);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ++stats_.builds;
  trace::metrics().counter(trace::metric::kLithoFftPlanBuilds).add();
  trace::metrics().gauge(trace::metric::kLithoFftPlanBuildMs).add(ms);
  plans_.emplace(key, plan);
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  stats_ = Stats{};
}

Fft2d::Fft2d(std::size_t nx, std::size_t ny)
    : nx_(nx),
      ny_(ny),
      // Rows get a kReal plan so one cached object serves both the
      // complex and the r2c row passes; columns only ever transform
      // complex data.
      row_(PlanCache::instance().get(nx, FftKind::kReal)),
      col_(PlanCache::instance().get(ny, FftKind::kComplex)) {}

namespace {

/// Columns of a row-major array, transformed in cache-blocked groups:
/// gather kBlock adjacent columns into contiguous scratch (each source
/// cache line feeds kBlock columns instead of one), transform, scatter
/// back. Arithmetic per column is identical to a one-at-a-time strided
/// pass — blocking changes the memory walk, not the results.
constexpr std::size_t kColBlock = 8;

}  // namespace

void Fft2d::column_pass(Complex* data, std::size_t cols,
                        FftDirection dir) const {
  std::vector<Complex> buf(kColBlock * ny_);
  for (std::size_t x0 = 0; x0 < cols; x0 += kColBlock) {
    const std::size_t b = std::min(kColBlock, cols - x0);
    for (std::size_t y = 0; y < ny_; ++y) {
      const Complex* row = data + y * cols + x0;
      for (std::size_t j = 0; j < b; ++j) buf[j * ny_ + y] = row[j];
    }
    for (std::size_t j = 0; j < b; ++j) {
      col_->transform(buf.data() + j * ny_, dir);
    }
    for (std::size_t y = 0; y < ny_; ++y) {
      Complex* row = data + y * cols + x0;
      for (std::size_t j = 0; j < b; ++j) row[j] = buf[j * ny_ + y];
    }
  }
}

void Fft2d::forward(std::vector<Complex>& data) const {
  OPCKIT_CHECK(data.size() == nx_ * ny_);
  trace::metrics().counter(trace::metric::kLithoFft2dTransforms).add();
  for (std::size_t y = 0; y < ny_; ++y) {
    row_->transform(data.data() + y * nx_, FftDirection::kForward);
  }
  column_pass(data.data(), nx_, FftDirection::kForward);
}

void Fft2d::inverse(std::vector<Complex>& data) const {
  OPCKIT_CHECK(data.size() == nx_ * ny_);
  trace::metrics().counter(trace::metric::kLithoFft2dTransforms).add();
  for (std::size_t y = 0; y < ny_; ++y) {
    row_->transform(data.data() + y * nx_, FftDirection::kInverse);
  }
  column_pass(data.data(), nx_, FftDirection::kInverse);
  const double inv = 1.0 / static_cast<double>(nx_ * ny_);
  for (auto& v : data) v *= inv;
}

void Fft2d::forward_real(std::span<const double> in,
                         std::vector<Complex>& out) const {
  OPCKIT_CHECK(in.size() == nx_ * ny_);
  trace::metrics().counter(trace::metric::kLithoFftR2cTransforms).add();
  out.resize(nx_ * ny_);
  const std::size_t hx = nx_ / 2 + 1;
  std::vector<Complex> half(hx * ny_);
  for (std::size_t y = 0; y < ny_; ++y) {
    row_->forward_real(in.data() + y * nx_, half.data() + y * hx);
  }
  column_pass(half.data(), hx, FftDirection::kForward);
  // Scatter the computed half into full layout and fill the rest from
  // the 2-D Hermitian symmetry F[nx-kx, ny-ky] = conj(F[kx, ky]).
  for (std::size_t y = 0; y < ny_; ++y) {
    Complex* dst = out.data() + y * nx_;
    const Complex* src = half.data() + y * hx;
    for (std::size_t kx = 0; kx < hx; ++kx) dst[kx] = src[kx];
  }
  for (std::size_t y = 0; y < ny_; ++y) {
    Complex* dst = out.data() + y * nx_;
    const Complex* mirror = half.data() + ((ny_ - y) % ny_) * hx;
    for (std::size_t kx = hx; kx < nx_; ++kx) {
      dst[kx] = std::conj(mirror[nx_ - kx]);
    }
  }
}

void Fft2d::inverse_real(std::span<const Complex> in,
                         std::vector<double>& out) const {
  OPCKIT_CHECK(in.size() == nx_ * ny_);
  trace::metrics().counter(trace::metric::kLithoFftC2rTransforms).add();
  out.resize(nx_ * ny_);
  const std::size_t hx = nx_ / 2 + 1;
  std::vector<Complex> half(hx * ny_);
  for (std::size_t y = 0; y < ny_; ++y) {
    const Complex* src = in.data() + y * nx_;
    Complex* dst = half.data() + y * hx;
    for (std::size_t kx = 0; kx < hx; ++kx) dst[kx] = src[kx];
  }
  column_pass(half.data(), hx, FftDirection::kInverse);
  for (std::size_t y = 0; y < ny_; ++y) {
    row_->inverse_real(half.data() + y * hx, out.data() + y * nx_);
  }
  const double inv = 1.0 / static_cast<double>(nx_ * ny_);
  for (auto& v : out) v *= inv;
}

SparseInverseBatch::SparseInverseBatch(
    const Fft2d& plan, std::span<const std::uint32_t> support)
    : plan_(plan), support_(support.begin(), support.end()) {
  const std::size_t nx = plan_.nx();
  const std::size_t n = nx * plan_.ny();
  constexpr std::uint32_t kNone = 0xffffffffu;
  row_slot_.assign(plan_.ny(), kNone);
  compact_.reserve(support_.size());
  for (std::size_t j = 0; j < support_.size(); ++j) {
    const std::uint32_t idx = support_[j];
    OPCKIT_CHECK_MSG(idx < n, "support index " << idx << " out of frame");
    OPCKIT_CHECK_MSG(j == 0 || support_[j - 1] < idx,
                     "support indices must be strictly ascending");
    const std::uint32_t ky = idx / static_cast<std::uint32_t>(nx);
    if (row_slot_[ky] == kNone) {
      row_slot_[ky] = static_cast<std::uint32_t>(rows_.size());
      rows_.push_back(ky);
    }
    compact_.push_back(row_slot_[ky] * static_cast<std::uint32_t>(nx) +
                       idx % static_cast<std::uint32_t>(nx));
  }
}

void SparseInverseBatch::inverse_mag2(const Complex* spectrum,
                                      std::span<const Complex> factors,
                                      std::vector<double>& out) const {
  OPCKIT_CHECK(factors.size() == support_.size());
  const std::size_t nx = plan_.nx();
  const std::size_t ny = plan_.ny();
  out.resize(nx * ny);
  trace::metrics().counter(trace::metric::kLithoFftBatchedTransforms).add();
  trace::metrics()
      .counter(trace::metric::kLithoFftRowsPruned)
      .add(rows_pruned());

  // Pruned row pass: only rows with support bins exist, in a compact
  // |rows|*nx buffer that stays cache resident. Rows without support
  // transform to exactly zero, so skipping them is bit-exact.
  const std::size_t nr = rows_.size();
  std::vector<Complex> field(nr * nx, Complex{0.0, 0.0});
  for (std::size_t j = 0; j < support_.size(); ++j) {
    field[compact_[j]] = spectrum[support_[j]] * factors[j];
  }
  const FftPlan& row_plan = plan_.row_plan();
  for (std::size_t s = 0; s < nr; ++s) {
    row_plan.transform(field.data() + s * nx, FftDirection::kInverse);
  }

  // Blocked column pass with fused epilogue: gather reads only the
  // touched rows (absent rows are exactly zero), and each transformed
  // column writes |v/(nx*ny)|² straight into the intensity buffer —
  // the complex image is never stored.
  const FftPlan& col_plan = plan_.col_plan();
  const double inv = 1.0 / static_cast<double>(nx * ny);
  std::vector<Complex> buf(kColBlock * ny);
  for (std::size_t x0 = 0; x0 < nx; x0 += kColBlock) {
    const std::size_t b = std::min(kColBlock, nx - x0);
    std::fill(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(b * ny),
              Complex{0.0, 0.0});
    for (std::size_t s = 0; s < nr; ++s) {
      const std::size_t y = rows_[s];
      const Complex* row = field.data() + s * nx + x0;
      for (std::size_t j = 0; j < b; ++j) buf[j * ny + y] = row[j];
    }
    for (std::size_t j = 0; j < b; ++j) {
      col_plan.transform(buf.data() + j * ny, FftDirection::kInverse);
    }
    for (std::size_t y = 0; y < ny; ++y) {
      double* orow = out.data() + y * nx + x0;
      const Complex* brow = buf.data() + y;
      for (std::size_t j = 0; j < b; ++j) {
        orow[j] = std::norm(brow[j * ny] * inv);
      }
    }
  }
}

void SparseInverseBatch::inverse_field(const Complex* spectrum,
                                       std::span<const Complex> factors,
                                       std::vector<Complex>& out) const {
  OPCKIT_CHECK(factors.size() == support_.size());
  const std::size_t nx = plan_.nx();
  const std::size_t ny = plan_.ny();
  out.assign(nx * ny, Complex{0.0, 0.0});
  trace::metrics().counter(trace::metric::kLithoFftBatchedTransforms).add();
  trace::metrics()
      .counter(trace::metric::kLithoFftRowsPruned)
      .add(rows_pruned());

  // Identical pruned row pass to inverse_mag2.
  const std::size_t nr = rows_.size();
  std::vector<Complex> field(nr * nx, Complex{0.0, 0.0});
  for (std::size_t j = 0; j < support_.size(); ++j) {
    field[compact_[j]] = spectrum[support_[j]] * factors[j];
  }
  const FftPlan& row_plan = plan_.row_plan();
  for (std::size_t s = 0; s < nr; ++s) {
    row_plan.transform(field.data() + s * nx, FftDirection::kInverse);
  }

  // Blocked column pass; the epilogue writes the normalized complex
  // value instead of fusing |·|².
  const FftPlan& col_plan = plan_.col_plan();
  const double inv = 1.0 / static_cast<double>(nx * ny);
  std::vector<Complex> buf(kColBlock * ny);
  for (std::size_t x0 = 0; x0 < nx; x0 += kColBlock) {
    const std::size_t b = std::min(kColBlock, nx - x0);
    std::fill(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(b * ny),
              Complex{0.0, 0.0});
    for (std::size_t s = 0; s < nr; ++s) {
      const std::size_t y = rows_[s];
      const Complex* row = field.data() + s * nx + x0;
      for (std::size_t j = 0; j < b; ++j) buf[j * ny + y] = row[j];
    }
    for (std::size_t j = 0; j < b; ++j) {
      col_plan.transform(buf.data() + j * ny, FftDirection::kInverse);
    }
    for (std::size_t y = 0; y < ny; ++y) {
      Complex* orow = out.data() + y * nx + x0;
      const Complex* brow = buf.data() + y;
      for (std::size_t j = 0; j < b; ++j) {
        orow[j] = brow[j * ny] * inv;
      }
    }
  }
}

void fft_1d(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  OPCKIT_CHECK_MSG(is_pow2(n), "FFT size " << n << " is not a power of two");
  const auto plan = PlanCache::instance().get(n, FftKind::kComplex);
  plan->transform(data.data(),
                  inverse ? FftDirection::kInverse : FftDirection::kForward);
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : data) v *= inv;
  }
}

void fft_2d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
            bool inverse) {
  OPCKIT_CHECK(data.size() == nx * ny);
  OPCKIT_CHECK_MSG(is_pow2(nx) && is_pow2(ny),
                   "FFT dims " << nx << 'x' << ny << " not powers of two");
  const Fft2d plan(nx, ny);
  if (inverse) {
    plan.inverse(data);
  } else {
    plan.forward(data);
  }
}

}  // namespace opckit::litho
