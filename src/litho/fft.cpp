#include "litho/fft.h"

#include <cmath>
#include <numbers>

#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::litho {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

/// Iterative Cooley-Tukey with bit-reversal permutation.
void fft_core(Complex* data, std::size_t n, bool inverse) {
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                       static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_1d(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  OPCKIT_CHECK_MSG(is_pow2(n), "FFT size " << n << " is not a power of two");
  fft_core(data.data(), n, inverse);
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : data) v *= inv;
  }
}

void fft_2d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
            bool inverse) {
  OPCKIT_CHECK(data.size() == nx * ny);
  OPCKIT_CHECK_MSG(is_pow2(nx) && is_pow2(ny),
                   "FFT dims " << nx << 'x' << ny << " not powers of two");
  trace::metrics().counter(trace::metric::kLithoFft2dTransforms).add();
  // Rows (contiguous).
  for (std::size_t y = 0; y < ny; ++y) {
    fft_core(data.data() + y * nx, nx, inverse);
  }
  // Columns via transpose-free strided gather.
  std::vector<Complex> col(ny);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) col[y] = data[y * nx + x];
    fft_core(col.data(), ny, inverse);
    for (std::size_t y = 0; y < ny; ++y) data[y * nx + x] = col[y];
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(nx * ny);
    for (auto& v : data) v *= inv;
  }
}

double fft_freq(std::size_t k, std::size_t n) {
  const auto nk = static_cast<double>(k);
  const auto nn = static_cast<double>(n);
  return k < n / 2 ? nk / nn : nk / nn - 1.0;
}

}  // namespace opckit::litho
