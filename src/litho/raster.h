/// \file raster.h
/// Exact area-coverage rasterization of Manhattan geometry.
///
/// The mask transmission function handed to the imaging engine is the
/// fractional pixel coverage of the mask shapes — exact for Manhattan
/// geometry because rectangle/pixel overlap is separable. This is the
/// standard "area-sampled" mask model of OPC simulators.
#pragma once

#include <span>

#include "geometry/polygon.h"
#include "geometry/region.h"
#include "litho/image.h"

namespace opckit::litho {

/// Accumulate the exact fractional coverage of \p region into \p img
/// (values add on top of existing content; disjoint region rects never
/// exceed 1.0 on their own).
void rasterize(const geom::Region& region, Image& img);

/// Convenience: rasterize polygons (merged through a Region first so
/// overlapping inputs cannot exceed coverage 1).
void rasterize(std::span<const geom::Polygon> polys, Image& img);

/// Build a fresh coverage image of \p region over \p frame.
Image rasterize(const geom::Region& region, const Frame& frame);

}  // namespace opckit::litho
