/// \file optics.h
/// Partially coherent projection imaging by Abbe source-point integration.
///
/// Model: scalar, paraxial, aberration-free projection optics with a
/// binary circular pupil of numerical aperture NA at wavelength λ, and an
/// extended incoherent source (circular or annular, parameterized by the
/// partial-coherence factors σ). The aerial image is the source-weighted
/// average of coherent images, each formed by shifting the pupil by the
/// source point's spatial frequency (Abbe's method — exact for Koehler
/// illumination, no TCC truncation error). Defocus enters as the paraxial
/// pupil phase exp(-iπλz|f|²).
///
/// Mask convention: the transmission function is the area coverage of the
/// drawn/mask polygons (features transmit, background dark), so printed
/// resist regions are where intensity exceeds the resist threshold. Clear
/// field (all-transmitting mask) normalizes to intensity 1.0.
#pragma once

#include <functional>
#include <vector>

#include "geometry/rect.h"
#include "litho/fft.h"
#include "litho/image.h"

namespace opckit::litho {

/// Illumination source shapes. Dipoles put two poles on one axis: a
/// kDipoleX source (poles at ±σ_center on the x-axis) maximizes contrast
/// for vertical (y-running) lines and destroys it for horizontal ones —
/// the asymmetry double-dipole lithography (DDL) exploits by splitting
/// the layout into two exposures.
enum class SourceShape { kCircular, kAnnular, kDipoleX, kDipoleY };

/// Mask technologies. Binary chrome-on-glass transmits 1 inside features
/// and 0 outside; attenuated (embedded) phase-shift masks replace chrome
/// with a weakly transmitting 180°-phase film, which sharpens the image
/// edge slope — the RET companion to OPC in this era.
enum class MaskType { kBinary, kAttenuatedPsm };

/// Mask-stack description.
struct MaskModel {
  MaskType type = MaskType::kBinary;
  /// Intensity transmission of the attenuated background (typically 6%).
  double background_transmission = 0.06;

  /// Complex background amplitude: 0 for binary, -sqrt(T) for att-PSM
  /// (the 180° phase shows up as the negative sign).
  double background_amplitude() const;
};

/// Extended-source description in partial-coherence units (σ = source
/// radius as a fraction of the pupil NA).
struct SourceSpec {
  SourceShape shape = SourceShape::kAnnular;
  double sigma_outer = 0.80;
  double sigma_inner = 0.50;  ///< ignored for kCircular / dipoles
  /// Dipole parameters: pole centers sit at ±pole_center on the dipole
  /// axis, each pole a disc of radius pole_radius (σ units).
  double pole_center = 0.65;
  double pole_radius = 0.20;
  /// Source is sampled on a grid x grid Cartesian raster over the outer
  /// square; points outside the shape are dropped. 7 gives ~30-40 points,
  /// converged for the feature scales in this library.
  int grid = 7;
};

/// Low-order Zernike aberrations of the projection pupil, as wavefront
/// error in nm evaluated on the normalized pupil radius ρ = |f|·λ/NA.
/// Coma shifts patterns (overlay-like error that OPC cannot anticipate);
/// astigmatism splits best focus between the two line orientations.
struct Aberrations {
  double coma_x_nm = 0.0;  ///< Z7-like: (3ρ³ − 2ρ)·cosθ
  double coma_y_nm = 0.0;  ///< Z8-like: (3ρ³ − 2ρ)·sinθ
  double astig_nm = 0.0;   ///< Z5-like: ρ²·cos2θ (0°/90° astigmatism)

  bool any() const {
    return coma_x_nm != 0.0 || coma_y_nm != 0.0 || astig_nm != 0.0;
  }
};

/// The projection system.
struct OpticalSystem {
  double wavelength_nm = 248.0;  ///< KrF
  double na = 0.68;
  SourceSpec source;
  Aberrations aberrations;

  /// Rayleigh resolution 0.61 λ/NA in nm.
  double rayleigh_nm() const { return 0.61 * wavelength_nm / na; }
  /// k1 factor of a feature of size \p cd_nm.
  double k1(double cd_nm) const { return cd_nm * na / wavelength_nm; }
};

/// One source sample: spatial-frequency offset in 1/nm plus quadrature
/// weight (uniform here; kept explicit for future apodized sources).
struct SourcePoint {
  double fx = 0.0;
  double fy = 0.0;
  double weight = 1.0;
};

/// Sample the source of \p sys into discrete points. Deterministic;
/// total weight normalized to 1. Throws if no point falls inside the
/// source shape (degenerate spec).
std::vector<SourcePoint> sample_source(const OpticalSystem& sys);

/// Complex pupil transmission at absolute spatial frequency (fx, fy) in
/// 1/nm — the caller applies any source-point shift before calling.
/// Zero outside the NA cutoff; inside, a unit-magnitude phase factor
/// combining the paraxial defocus term exp(-iπλz|f|²) with the Zernike
/// aberration phases of sys.aberrations. This is the single pupil model
/// shared by the Abbe and SOCS imaging engines; keeping one definition
/// guarantees the engines agree on the physics bit-for-bit.
Complex pupil_transmission(const OpticalSystem& sys, double fx, double fy,
                           double defocus_nm);

namespace detail {

/// Deterministic chunked reduction: acc[i] += Σ_u weight(u)·frame_u[i],
/// where frame_u is produced by compute(u, out) into a caller-invisible
/// scratch buffer of size \p n (compute must overwrite every element).
/// Units are computed in parallel (util::global_pool) but accumulated
/// serially in ascending unit order, chunked so at most a fixed small
/// number of frames is resident at once — O(chunk·n) peak instead of
/// the O(units·n) of materialize-everything, with a summation order
/// identical to it, so results are bit-identical at any thread count.
void weighted_intensity_sum(
    std::size_t units, std::size_t n,
    const std::function<void(std::size_t, std::vector<double>&)>& compute,
    const std::function<double(std::size_t)>& weight,
    std::vector<double>& acc);

}  // namespace detail

/// Abbe imaging engine bound to a pixel frame. The frame's dimensions
/// must be powers of two (the Simulator facade arranges this) and the
/// physics assumes periodic boundary conditions — callers must pad their
/// window with a guard band of at least the optical interaction range.
class AbbeImager {
 public:
  AbbeImager(const OpticalSystem& sys, const Frame& frame);

  const OpticalSystem& system() const { return sys_; }
  const Frame& frame() const { return frame_; }

  /// Compute the aerial image of \p mask (coverage image on the same
  /// frame: 1 = feature, 0 = background) at \p defocus_nm, for the given
  /// mask technology. Coverage c maps to the complex transmission
  /// c + (1-c) * background_amplitude. Multi-threaded over source points;
  /// bit-deterministic (fixed summation order). The mask spectrum goes
  /// through the planned r2c forward; each source point's coherent
  /// image runs as a sparse fused inverse over its shifted-pupil
  /// support (rows without pupil bins are skipped exactly).
  Image aerial_image(const Image& mask, double defocus_nm = 0.0,
                     const MaskModel& mask_model = {}) const;

 private:
  OpticalSystem sys_;
  Frame frame_;
  Fft2d fft2_;  ///< planned transforms for this frame shape
  std::vector<SourcePoint> source_;
  std::vector<double> freq_x_;  ///< per-column spatial frequency (1/nm)
  std::vector<double> freq_y_;  ///< per-row spatial frequency (1/nm)
};

}  // namespace opckit::litho
