/// \file table.h
/// Plain-text and CSV report tables.
///
/// Every experiment binary regenerates a table or figure series from the
/// paper; Table gives them a single, consistent rendering (fixed-width
/// aligned text for the console, CSV for downstream plotting).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace opckit::util {

/// A rectangular table of string cells with a header row.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Begin a new (empty) row; subsequent add_cell calls fill it.
  void start_row();

  /// Append a string cell to the current row.
  void add_cell(std::string value);
  /// Append an integer cell.
  void add_cell(long long value);
  /// Append an int cell (disambiguates literals).
  void add_cell(int value) { add_cell(static_cast<long long>(value)); }
  /// Append an unsigned integer cell.
  void add_cell(unsigned long long value);
  /// Append a size cell.
  void add_cell(std::size_t value);
  /// Append a floating-point cell rendered with \p precision digits after
  /// the decimal point.
  void add_cell(double value, int precision = 3);

  /// Convenience: append a full row at once.
  template <typename... Ts>
  void add_row(Ts&&... cells) {
    start_row();
    (add_cell(std::forward<Ts>(cells)), ...);
  }

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }
  /// Number of columns.
  std::size_t cols() const { return headers_.size(); }
  /// Access a rendered cell (row-major, excludes headers).
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Render as an aligned text table with a title line.
  std::string to_text(const std::string& title = "") const;
  /// Render as CSV (headers + rows, RFC-4180 quoting).
  std::string to_csv() const;
  /// Write CSV to a file; throws InputError on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Stream the aligned-text rendering.
std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace opckit::util
