#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace opckit::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, size());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    auto job = [&, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    };
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push(std::move(job));
    }
    begin = end;
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace opckit::util
