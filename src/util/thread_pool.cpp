#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <limits>

#include "util/check.h"

namespace opckit::util {

namespace {
/// True on threads that belong to any ThreadPool; parallel_for uses it
/// to detect nested calls and run them inline (see header protocol).
thread_local bool tl_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.begin()->second);
      jobs_.erase(jobs_.begin());
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, size());
  if (chunks <= 1 || tl_pool_worker) {
    // Single chunk, or a nested call from inside a worker: run inline
    // (queueing from a worker can deadlock the pool — header protocol).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Per-call completion record, fully guarded by done_mutex. The
  // finishing worker must notify while HOLDING the lock so this frame
  // cannot unwind between its decrement and its notify.
  std::size_t remaining = chunks;
  std::exception_ptr first_error;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    OPCKIT_DCHECK(end <= count);
    auto job = [&, begin, end] {
      std::exception_ptr err;
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (err && !first_error) first_error = err;
      if (--remaining == 0) done_cv.notify_all();
    };
    {
      // Chunks outrank every submit() priority (header contract): the
      // caller is about to block on them.
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.emplace(
          std::make_pair(std::numeric_limits<long long>::min(), seq_++),
          std::move(job));
    }
    begin = end;
  }
  OPCKIT_DCHECK(begin == count);
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::submit(std::function<void()> fn, int priority) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.emplace(std::make_pair(-static_cast<long long>(priority), seq_++),
                  std::move(fn));
  }
  cv_.notify_one();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace opckit::util
