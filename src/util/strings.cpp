#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace opckit::util {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string to_lower(std::string s) {
  for (char& ch : s)
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return s;
}

std::string human_bytes(unsigned long long bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 2) << v << ' '
     << kUnits[unit];
  return os.str();
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace opckit::util
