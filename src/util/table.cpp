#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace opckit::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OPCKIT_CHECK(!headers_.empty());
}

void Table::start_row() {
  OPCKIT_CHECK_MSG(rows_.empty() || rows_.back().size() == cols(),
                   "previous row has " << rows_.back().size()
                                       << " cells, expected " << cols());
  rows_.emplace_back();
  rows_.back().reserve(cols());
}

void Table::add_cell(std::string value) {
  OPCKIT_CHECK_MSG(!rows_.empty(), "call start_row() before add_cell()");
  OPCKIT_CHECK_MSG(rows_.back().size() < cols(),
                   "row already has " << cols() << " cells");
  rows_.back().push_back(std::move(value));
}

void Table::add_cell(long long value) { add_cell(std::to_string(value)); }
void Table::add_cell(unsigned long long value) {
  add_cell(std::to_string(value));
}
void Table::add_cell(std::size_t value) { add_cell(std::to_string(value)); }

void Table::add_cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add_cell(os.str());
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  OPCKIT_CHECK(row < rows_.size() && col < cols());
  return rows_[row][col];
}

std::string Table::to_text(const std::string& title) const {
  std::vector<std::size_t> widths(cols());
  for (std::size_t c = 0; c < cols(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  if (!title.empty()) os << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cols(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << v;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = cols() > 0 ? 2 * (cols() - 1) : 0;
  for (auto w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < cols(); ++c)
    os << (c ? "," : "") << csv_escape(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << csv_escape(row[c]);
    os << '\n';
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw InputError("cannot open for write: " + path);
  f << to_csv();
  if (!f) throw InputError("write failed: " + path);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

}  // namespace opckit::util
