/// \file check.h
/// Runtime precondition / invariant checking for opckit.
///
/// The library uses exceptions for error reporting (I/O failures, malformed
/// inputs) and OPCKIT_CHECK for programmer-facing contract violations. All
/// checks stay enabled in release builds: EDA data is adversarial enough
/// that silent corruption is worse than the branch cost.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace opckit::util {

/// Exception thrown when an OPCKIT_CHECK contract fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Exception thrown for malformed external input (files, decks, layouts).
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OPCKIT_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace opckit::util

/// Verify a contract; throws opckit::util::CheckError on failure.
#define OPCKIT_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::opckit::util::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (false)

/// Verify a contract with a formatted message streamed into it, e.g.
///   OPCKIT_CHECK_MSG(n > 0, "need positive count, got " << n);
#define OPCKIT_CHECK_MSG(expr, stream_expr)                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream opckit_msg_stream_;                                 \
      opckit_msg_stream_ << stream_expr;                                     \
      ::opckit::util::detail::check_failed(#expr, __FILE__, __LINE__,        \
                                           opckit_msg_stream_.str());        \
    }                                                                        \
  } while (false)

/// Debug-only variants for hot-loop invariants (per-fragment, per-edge,
/// per-pixel loops) where even an untaken branch costs measurable time at
/// full-chip scale. In release (NDEBUG) builds they compile to nothing;
/// the condition is still type-checked (unevaluated) so it cannot rot.
/// Anything guarding against adversarial *input* must stay OPCKIT_CHECK —
/// DCHECK is strictly for invariants the library itself establishes.
#ifndef NDEBUG
#define OPCKIT_DCHECK(expr) OPCKIT_CHECK(expr)
#define OPCKIT_DCHECK_MSG(expr, stream_expr) OPCKIT_CHECK_MSG(expr, stream_expr)
#else
#define OPCKIT_DCHECK(expr) \
  do {                      \
    (void)sizeof((expr));   \
  } while (false)
#define OPCKIT_DCHECK_MSG(expr, stream_expr) \
  do {                                       \
    (void)sizeof((expr));                    \
  } while (false)
#endif
