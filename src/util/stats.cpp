#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace opckit::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::max_abs() const {
  if (n_ == 0) return 0.0;
  return std::max(std::abs(min_), std::abs(max_));
}

double percentile(std::vector<double> samples, double q) {
  OPCKIT_CHECK(!samples.empty());
  OPCKIT_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double rms(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples) acc += s * s;
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OPCKIT_CHECK(hi > lo);
  OPCKIT_CHECK(bins > 0);
}

int histogram_bin(double lo, double hi, std::size_t bins, double x) {
  if (std::isnan(x)) return kHistogramNan;
  if (x < lo) return kHistogramUnderflow;
  if (x > hi) return kHistogramOverflow;
  const double t = (x - lo) / (hi - lo);
  // t is in [0, 1]; x == hi would index one past the end, so fold the
  // closed upper edge into the last bin.
  const auto idx = static_cast<std::size_t>(t * static_cast<double>(bins));
  return static_cast<int>(std::min(idx, bins - 1));
}

double histogram_quantile(double lo, double hi,
                          const std::vector<std::uint64_t>& counts,
                          std::uint64_t underflow, std::uint64_t overflow,
                          double p) {
  OPCKIT_CHECK(p >= 0.0 && p <= 1.0);
  OPCKIT_CHECK(!counts.empty());
  std::uint64_t total = underflow + overflow;
  for (std::uint64_t c : counts) total += c;
  OPCKIT_CHECK_MSG(total > 0, "quantile of an empty histogram");

  const double rank = p * static_cast<double>(total);
  // Underflow mass sits at lo: any rank inside it resolves to lo itself.
  double cum = static_cast<double>(underflow);
  if (rank <= cum && underflow > 0) return lo;

  const double width = (hi - lo) / static_cast<double>(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (c > 0.0 && rank <= cum + c) {
      const double bin_lo = lo + static_cast<double>(i) * width;
      return bin_lo + width * (rank - cum) / c;
    }
    cum += c;
  }
  // Only overflow mass (or p == 1 landing past the last bin) remains;
  // that mass sits at hi.
  return hi;
}

void Histogram::add(double x) {
  const int bin = histogram_bin(lo_, hi_, bins(), x);
  switch (bin) {
    case kHistogramNan:
      ++nan_;
      break;
    case kHistogramUnderflow:
      ++underflow_;
      break;
    case kHistogramOverflow:
      ++overflow_;
      break;
    default:
      ++counts_[static_cast<std::size_t>(bin)];
      break;
  }
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(bins());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::quantile(double p) const {
  std::vector<std::uint64_t> counts(counts_.begin(), counts_.end());
  return histogram_quantile(lo_, hi_, counts, underflow_, overflow_, p);
}

double kl_divergence(const std::vector<double>& p_counts,
                     const std::vector<double>& q_counts, double smoothing) {
  OPCKIT_CHECK(p_counts.size() == q_counts.size());
  OPCKIT_CHECK(!p_counts.empty());
  OPCKIT_CHECK(smoothing >= 0.0);
  double p_total = 0.0, q_total = 0.0;
  for (std::size_t i = 0; i < p_counts.size(); ++i) {
    OPCKIT_CHECK(p_counts[i] >= 0.0 && q_counts[i] >= 0.0);
    p_total += p_counts[i] + smoothing;
    q_total += q_counts[i] + smoothing;
  }
  OPCKIT_CHECK(p_total > 0.0 && q_total > 0.0);
  double d = 0.0;
  for (std::size_t i = 0; i < p_counts.size(); ++i) {
    const double p = (p_counts[i] + smoothing) / p_total;
    const double q = (q_counts[i] + smoothing) / q_total;
    // Unsmoothed zero-count semantics follow the measure-theoretic
    // definition: a class absent from P contributes nothing (p·log p → 0
    // as p → 0, never the NaN that 0·log(0/q) evaluates to in floating
    // point), and a class present in P but impossible under Q makes the
    // divergence +infinity (P is not absolutely continuous w.r.t. Q).
    if (p == 0.0) continue;
    if (q == 0.0) return std::numeric_limits<double>::infinity();
    d += p * std::log(p / q);
  }
  return d;
}

}  // namespace opckit::util
