/// \file thread_pool.h
/// Fixed-size worker pool with a blocking parallel_for.
///
/// Used by the Abbe imaging engine (per-source-point FFTs) and the
/// model-based OPC loop (per-fragment intensity probes). The pool is
/// deliberately simple: deterministic work partitioning (static chunking)
/// so results are bit-identical regardless of scheduling.
///
/// Locking protocol (kept minimal so TSan can prove it):
///  * `mutex_` guards `jobs_`, `seq_` and `stop_`; `cv_` is signalled
///    after a push or stop while workers wait on it. Nothing else is
///    touched under `mutex_`.
///  * Each parallel_for call owns a stack-local completion record
///    (remaining count, first captured exception, mutex + condvar). ALL
///    of it — including the counter — is guarded by that record's mutex,
///    and the finishing worker notifies while still holding the lock.
///    This ordering is load-bearing: if the counter were decremented
///    before the lock (e.g. as a bare atomic), the waiting caller could
///    observe zero, return, and unwind the record while the worker is
///    still about to lock it.
///  * Workers never hold `mutex_` while running a job, so jobs may
///    freely submit new work.
///  * Nested use: a job that itself calls parallel_for (on any pool)
///    runs its iterations inline. The caller already occupies a worker
///    slot — queueing and blocking could deadlock once every worker
///    waits on jobs parked behind it — and inline execution keeps the
///    per-chunk accumulation order deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace opckit::util {

/// A fixed pool of worker threads executing queued jobs.
class ThreadPool {
 public:
  /// Create a pool with \p threads workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool and block until all
  /// iterations complete. Work is split into contiguous static chunks, one
  /// per worker, so any per-chunk accumulation order is deterministic.
  /// Exceptions thrown by \p fn are captured and the first is rethrown.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Enqueue one fire-and-forget job. Higher \p priority dequeues first;
  /// equal priorities dequeue FIFO (submission order). parallel_for's
  /// chunks are always queued ABOVE every submit() priority: a caller
  /// blocked in a parallel section already holds a thread hostage, so
  /// letting whole queued jobs overtake its chunks could only add
  /// latency, never throughput. Used by the service daemon's admission
  /// queue (see src/service/server.h). \p fn must not let exceptions
  /// escape — there is no completion record to carry them, so an escape
  /// terminates the process (plain std::thread semantics).
  void submit(std::function<void()> fn, int priority = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  /// Priority queue with deterministic FIFO tie-break: the key orders by
  /// negated priority first (smaller = runs earlier, so higher submit()
  /// priority wins), then by a monotone sequence number.
  std::map<std::pair<long long, std::uint64_t>, std::function<void()>> jobs_;
  std::uint64_t seq_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide shared pool (lazily constructed, hardware concurrency).
ThreadPool& global_pool();

}  // namespace opckit::util
