/// \file thread_pool.h
/// Fixed-size worker pool with a blocking parallel_for.
///
/// Used by the Abbe imaging engine (per-source-point FFTs) and the
/// model-based OPC loop (per-fragment intensity probes). The pool is
/// deliberately simple: deterministic work partitioning (static chunking)
/// so results are bit-identical regardless of scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace opckit::util {

/// A fixed pool of worker threads executing queued jobs.
class ThreadPool {
 public:
  /// Create a pool with \p threads workers; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool and block until all
  /// iterations complete. Work is split into contiguous static chunks, one
  /// per worker, so any per-chunk accumulation order is deterministic.
  /// Exceptions thrown by \p fn are captured and the first is rethrown.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide shared pool (lazily constructed, hardware concurrency).
ThreadPool& global_pool();

}  // namespace opckit::util
