/// \file strings.h
/// Small string utilities shared across modules.
#pragma once

#include <string>
#include <vector>

namespace opckit::util {

/// Split \p s on \p sep; empty fields are preserved.
std::vector<std::string> split(const std::string& s, char sep);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if \p s starts with \p prefix.
bool starts_with(const std::string& s, const std::string& prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string s);

/// Render bytes with binary unit suffix, e.g. "1.21 MiB".
std::string human_bytes(unsigned long long bytes);

}  // namespace opckit::util
