/// \file strings.h
/// Small string utilities shared across modules.
#pragma once

#include <string>
#include <vector>

namespace opckit::util {

/// Split \p s on \p sep; empty fields are preserved.
std::vector<std::string> split(const std::string& s, char sep);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if \p s starts with \p prefix.
bool starts_with(const std::string& s, const std::string& prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string s);

/// Render bytes with binary unit suffix, e.g. "1.21 MiB".
std::string human_bytes(unsigned long long bytes);

/// Shortest decimal string that round-trips \p v exactly (std::to_chars),
/// independent of the global locale — safe for machine-read output such
/// as stats JSON, where ostream's default 6-significant-digit precision
/// silently truncates values. Non-finite values render as "null" so the
/// result is always valid JSON.
std::string format_double(double v);

}  // namespace opckit::util
