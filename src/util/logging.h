/// \file logging.h
/// Minimal leveled logging to stderr.
///
/// Experiment binaries print their tables on stdout; diagnostics go through
/// this logger on stderr so the two streams never interleave in reports.
#pragma once

#include <sstream>
#include <string>

namespace opckit::util {

/// Severity levels in increasing order.
enum class LogLevel { kDebug, kInfo, kWarn, kError };

/// Set the minimum level that is emitted (default kInfo).
void set_log_level(LogLevel level);

/// Current minimum emitted level.
LogLevel log_level();

/// Emit one log line (used by the OPCKIT_LOG macro).
void log_message(LogLevel level, const std::string& message);

}  // namespace opckit::util

/// Log with streaming syntax: OPCKIT_LOG(kInfo, "iter " << i);
#define OPCKIT_LOG(level, stream_expr)                                   \
  do {                                                                   \
    if (::opckit::util::LogLevel::level >= ::opckit::util::log_level()) { \
      std::ostringstream opckit_msg_stream_;                                            \
      opckit_msg_stream_ << stream_expr;                                                \
      ::opckit::util::log_message(::opckit::util::LogLevel::level,       \
                                  opckit_msg_stream_.str());                            \
    }                                                                    \
  } while (false)
