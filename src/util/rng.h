/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All stochastic workload generation in opckit is seeded explicitly so that
/// every experiment is exactly reproducible. We implement xoshiro256++
/// (public-domain algorithm by Blackman & Vigna) seeded through SplitMix64;
/// std::mt19937 is avoided because its state layout is implementation-pinned
/// but its distributions are not, and we need bit-identical streams.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace opckit::util {

/// SplitMix64: used to expand a 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ deterministic PRNG with convenience distributions.
class Rng {
 public:
  /// Construct from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x5eed'0bc1ULL) { reseed(seed); }

  /// Reset the stream to the state derived from \p seed.
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Next 64 pseudo-random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    OPCKIT_CHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Lemire-style rejection-free multiply-shift is fine here; bias is
    // < 2^-64 * span which is irrelevant for workload synthesis, but we do
    // classic rejection to keep streams portable and exactly uniform.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability \p p of returning true.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace opckit::util
