/// \file stats.h
/// Streaming and batch statistics used by metrology and experiment reports.
#pragma once

#include <cstddef>
#include <vector>

namespace opckit::util {

/// Streaming accumulator for count/mean/variance/min/max (Welford update).
/// Suitable for millions of samples without precision loss.
class Accumulator {
 public:
  /// Add one sample.
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

  /// Number of samples added.
  std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than 2 samples.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest sample; +inf when empty.
  double min() const { return min_; }
  /// Largest sample; -inf when empty.
  double max() const { return max_; }
  /// Largest absolute sample value.
  double max_abs() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;
};

/// Percentile of a sample set using linear interpolation between order
/// statistics. \p q is in [0,1]. The input is copied and sorted.
double percentile(std::vector<double> samples, double q);

/// Root-mean-square of a sample set; 0 when empty.
double rms(const std::vector<double>& samples);

/// Histogram over [lo, hi) with \p bins equal-width bins; samples outside
/// the range clamp into the edge bins. Used by pattern-frequency reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one sample.
  void add(double x);
  /// Number of bins.
  std::size_t bins() const { return counts_.size(); }
  /// Count in bin \p i.
  std::size_t count(std::size_t i) const { return counts_[i]; }
  /// Total samples.
  std::size_t total() const { return total_; }
  /// Center of bin \p i.
  double bin_center(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Discrete Kullback-Leibler divergence D(P||Q) between two non-negative
/// count vectors of equal length. Counts are normalized to probabilities;
/// a small Laplace smoothing term avoids log(0) (standard practice when
/// comparing pattern-frequency spectra between designs).
double kl_divergence(const std::vector<double>& p_counts,
                     const std::vector<double>& q_counts,
                     double smoothing = 0.5);

}  // namespace opckit::util
