/// \file stats.h
/// Streaming and batch statistics used by metrology and experiment reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace opckit::util {

/// Streaming accumulator for count/mean/variance/min/max (Welford update).
/// Suitable for millions of samples without precision loss.
class Accumulator {
 public:
  /// Add one sample.
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

  /// Number of samples added.
  std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than 2 samples.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest sample; +inf when empty.
  double min() const { return min_; }
  /// Largest sample; -inf when empty.
  double max() const { return max_; }
  /// Largest absolute sample value.
  double max_abs() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  // Empty-state sentinels (+inf/-inf) back the documented min()/max()
  // behavior and make merge() order-insensitive. They can never leak
  // into results: add() and merge() only fold in real samples, and
  // merge() copies/returns early while either side is empty.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample set using linear interpolation between order
/// statistics. \p q is in [0,1]. The input is copied and sorted.
double percentile(std::vector<double> samples, double q);

/// Root-mean-square of a sample set; 0 when empty.
double rms(const std::vector<double>& samples);

/// Slot codes returned by histogram_bin for samples that do not land in
/// a regular bin.
inline constexpr int kHistogramUnderflow = -1;  ///< x < lo
inline constexpr int kHistogramOverflow = -2;   ///< x > hi
inline constexpr int kHistogramNan = -3;        ///< x is NaN

/// Bin index for sample \p x over [lo, hi] split into \p bins equal-width
/// bins, or a kHistogram* slot code. Boundary rules: x == lo lands in bin
/// 0, x == hi lands in the LAST bin (the closed upper edge — never one
/// past the end), anything outside [lo, hi] reports under/overflow, and
/// NaN reports its own slot (it is never cast to an index, which would
/// be undefined behavior). Shared by util::Histogram and the metrics
/// registry's histogram (trace/metrics.h) so both bin identically.
int histogram_bin(double lo, double hi, std::size_t bins, double x);

/// Quantile \p p (in [0,1]) extracted from slotted histogram counts over
/// [lo, hi] — the shared implementation behind util::Histogram::quantile
/// and trace::HistogramSnapshot::quantile, so service latency reports and
/// in-process reports interpolate identically.
///
/// Interpolation model (documented because t9 publishes these numbers):
/// the non-NaN sample mass forms a piecewise-linear CDF. Each regular
/// bin's count is spread uniformly across the bin's width; the underflow
/// slot's mass sits exactly AT lo and the overflow slot's exactly AT hi
/// (the slots carry counts but no positions, so clamping to the range
/// edge is the only honest choice). The result is the smallest value
/// where the CDF reaches rank = p * total_non_nan. NaN samples are
/// excluded — they have no place on the axis. Requires at least one
/// non-NaN sample and p in [0,1] (OPCKIT_CHECK enforced).
double histogram_quantile(double lo, double hi,
                          const std::vector<std::uint64_t>& counts,
                          std::uint64_t underflow, std::uint64_t overflow,
                          double p);

/// Histogram over [lo, hi] with \p bins equal-width bins. Samples outside
/// the range are counted in explicit underflow/overflow slots and NaN
/// samples in a nan slot — never silently clamped into the edge bins,
/// which would bias the distribution tails. Used by pattern-frequency
/// reports and the metrics registry.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one sample (see histogram_bin for the boundary rules).
  void add(double x);
  /// Number of bins.
  std::size_t bins() const { return counts_.size(); }
  /// Count in bin \p i.
  std::size_t count(std::size_t i) const { return counts_[i]; }
  /// Samples below lo / above hi / NaN (not in any bin).
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t nan_count() const { return nan_; }
  /// Total samples, including the underflow/overflow/nan slots.
  std::size_t total() const { return total_; }
  /// Center of bin \p i.
  double bin_center(std::size_t i) const;
  /// Exact quantile over the slotted counts — see histogram_quantile for
  /// the interpolation contract (uniform-within-bin CDF, under/overflow
  /// clamped to the range edges, NaN samples excluded).
  double quantile(double p) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
  std::size_t total_ = 0;
};

/// Discrete Kullback-Leibler divergence D(P||Q) between two non-negative
/// count vectors of equal length. Counts are normalized to probabilities;
/// a small Laplace smoothing term avoids log(0) (standard practice when
/// comparing pattern-frequency spectra between designs).
///
/// Zero-count semantics (relevant when \p smoothing is 0): a class with
/// p == 0 contributes nothing (the p·log p limit, not the floating-point
/// NaN of 0·log 0), and a class with p > 0 but q == 0 makes the result
/// +infinity — P puts mass where Q says the event is impossible. With
/// the default smoothing every class has nonzero mass on both sides and
/// the result is always finite.
double kl_divergence(const std::vector<double>& p_counts,
                     const std::vector<double>& q_counts,
                     double smoothing = 0.5);

}  // namespace opckit::util
