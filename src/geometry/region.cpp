#include "geometry/region.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <unordered_map>

#include "util/check.h"

namespace opckit::geom {

namespace {

/// A weighted vertical edge used by the slab builder. Covers y in [y0, y1).
struct VEdge {
  Coord x;
  Coord y0;
  Coord y1;
  int wa;  ///< winding weight in operand A
  int wb;  ///< winding weight in operand B
};

/// Fill predicates over the two winding counters.
enum class FillRule {
  kNonzeroA,   ///< ca != 0            (polygon fill)
  kPositiveA,  ///< ca > 0             (union of positive covers)
  kUnion,      ///< ca > 0 || cb > 0
  kIntersect,  ///< ca > 0 && cb > 0
  kSubtract,   ///< ca > 0 && cb <= 0
  kXor,        ///< (ca > 0) != (cb > 0)
};

bool filled(FillRule rule, int ca, int cb) {
  switch (rule) {
    case FillRule::kNonzeroA:
      return ca != 0;
    case FillRule::kPositiveA:
      return ca > 0;
    case FillRule::kUnion:
      return ca > 0 || cb > 0;
    case FillRule::kIntersect:
      return ca > 0 && cb > 0;
    case FillRule::kSubtract:
      return ca > 0 && cb <= 0;
    case FillRule::kXor:
      return (ca > 0) != (cb > 0);
  }
  return false;
}

/// Merge vertically-adjacent slabs with identical interval lists.
void coalesce(std::vector<Slab>& slabs) {
  std::vector<Slab> out;
  for (auto& s : slabs) {
    if (s.intervals.empty() || s.y0 >= s.y1) continue;
    if (!out.empty() && out.back().y1 == s.y0 &&
        out.back().intervals == s.intervals) {
      out.back().y1 = s.y1;
    } else {
      out.push_back(std::move(s));
    }
  }
  slabs = std::move(out);
}

/// Core scanline: build the canonical slab stack from weighted vertical
/// edges under the given fill rule.
std::vector<Slab> build_slabs(std::vector<VEdge> edges, FillRule rule) {
  std::vector<Slab> slabs;
  if (edges.empty()) return slabs;

  // Elementary y-breakpoints.
  std::vector<Coord> ys;
  ys.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    if (e.y0 < e.y1) {
      ys.push_back(e.y0);
      ys.push_back(e.y1);
    }
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  if (ys.size() < 2) return slabs;

  // Sweep slabs in increasing y, maintaining the active edge set.
  std::sort(edges.begin(), edges.end(),
            [](const VEdge& a, const VEdge& b) { return a.y0 < b.y0; });
  std::vector<const VEdge*> active;
  std::size_t next = 0;

  for (std::size_t si = 0; si + 1 < ys.size(); ++si) {
    const Coord y0 = ys[si];
    const Coord y1 = ys[si + 1];
    // Admit newly-starting edges; retire expired ones.
    while (next < edges.size() && edges[next].y0 <= y0) {
      if (edges[next].y1 > y0) active.push_back(&edges[next]);
      ++next;
    }
    std::erase_if(active, [y0](const VEdge* e) { return e->y1 <= y0; });
    if (active.empty()) continue;

    // Sort active edges by x and sweep, grouping same-x events.
    std::vector<const VEdge*> row = active;
    std::sort(row.begin(), row.end(),
              [](const VEdge* a, const VEdge* b) { return a->x < b->x; });
    Slab slab{y0, y1, {}};
    int ca = 0, cb = 0;
    bool inside = false;
    Coord open_x = 0;
    std::size_t i = 0;
    while (i < row.size()) {
      const Coord x = row[i]->x;
      while (i < row.size() && row[i]->x == x) {
        ca += row[i]->wa;
        cb += row[i]->wb;
        ++i;
      }
      const bool now = filled(rule, ca, cb);
      if (now && !inside) {
        open_x = x;
        inside = true;
      } else if (!now && inside) {
        if (x > open_x) slab.intervals.push_back({open_x, x});
        inside = false;
      }
    }
    OPCKIT_CHECK_MSG(!inside, "unbalanced winding in region build");
    if (!slab.intervals.empty()) slabs.push_back(std::move(slab));
  }
  coalesce(slabs);
  return slabs;
}

/// Emit the vertical edges of a canonical slab stack with the given
/// operand weights (each interval contributes +w at x0, -w at x1).
void emit_edges(const std::vector<Slab>& slabs, int wa, int wb,
                std::vector<VEdge>& out) {
  for (const auto& s : slabs) {
    for (const auto& iv : s.intervals) {
      out.push_back({iv.x0, s.y0, s.y1, wa, wb});
      out.push_back({iv.x1, s.y0, s.y1, -wa, -wb});
    }
  }
}

/// Emit the vertical edges of a polygon with winding weights in operand A.
/// Weight convention: scanning left-to-right at fixed y, the interior of a
/// counter-clockwise ring must accumulate +1, so a downward (South) edge —
/// the left boundary of a CCW ring — carries weight +1.
void emit_polygon_edges(const Polygon& poly, std::vector<VEdge>& out) {
  OPCKIT_CHECK_MSG(poly.is_manhattan(),
                   "Region requires Manhattan polygons, got " << poly);
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Edge e = poly.edge(i);
    if (!e.is_vertical()) continue;
    if (e.a.y > e.b.y) {
      out.push_back({e.a.x, e.b.y, e.a.y, +1, 0});
    } else {
      out.push_back({e.a.x, e.a.y, e.b.y, -1, 0});
    }
  }
}

}  // namespace

Region::Region(const Rect& r) {
  if (!r.is_empty()) {
    slabs_.push_back({r.lo.y, r.hi.y, {{r.lo.x, r.hi.x}}});
  }
}

Region::Region(const Polygon& poly) {
  std::vector<VEdge> edges;
  emit_polygon_edges(poly, edges);
  slabs_ = build_slabs(std::move(edges), FillRule::kNonzeroA);
}

Region Region::from_rects(std::span<const Rect> rects) {
  std::vector<VEdge> edges;
  edges.reserve(rects.size() * 2);
  for (const Rect& r : rects) {
    if (r.is_empty()) continue;
    edges.push_back({r.lo.x, r.lo.y, r.hi.y, +1, 0});
    edges.push_back({r.hi.x, r.lo.y, r.hi.y, -1, 0});
  }
  Region out;
  out.slabs_ = build_slabs(std::move(edges), FillRule::kPositiveA);
  return out;
}

Region Region::from_polygons(std::span<const Polygon> polys) {
  // Nonzero winding over the whole collection: overlapping same-orientation
  // rings merge, and clockwise rings nested in counter-clockwise ones act
  // as holes — exactly inverse to what polygons() emits, so the pair
  // round-trips. A standalone clockwise ring still fills (count == -1).
  std::vector<VEdge> edges;
  for (const Polygon& p : polys) emit_polygon_edges(p, edges);
  Region out;
  out.slabs_ = build_slabs(std::move(edges), FillRule::kNonzeroA);
  return out;
}

Coord Region::area() const {
  Coord acc = 0;
  for (const auto& s : slabs_) {
    Coord w = 0;
    for (const auto& iv : s.intervals) w += iv.x1 - iv.x0;
    acc += w * (s.y1 - s.y0);
  }
  return acc;
}

Rect Region::bbox() const {
  Rect box = Rect::empty();
  for (const auto& s : slabs_) {
    if (s.intervals.empty()) continue;
    box = box.united(Rect(s.intervals.front().x0, s.y0,
                          s.intervals.back().x1, s.y1));
  }
  return box;
}

bool Region::contains(const Point& p) const {
  for (const auto& s : slabs_) {
    if (p.y < s.y0 || p.y > s.y1) continue;
    for (const auto& iv : s.intervals) {
      if (p.x >= iv.x0 && p.x <= iv.x1) return true;
      if (p.x < iv.x0) break;
    }
  }
  return false;
}

std::vector<Rect> Region::rects() const {
  std::vector<Rect> out;
  for (const auto& s : slabs_) {
    for (const auto& iv : s.intervals) {
      out.emplace_back(iv.x0, s.y0, iv.x1, s.y1);
    }
  }
  return out;
}

std::size_t Region::rect_count() const {
  std::size_t n = 0;
  for (const auto& s : slabs_) n += s.intervals.size();
  return n;
}

Region Region::united(const Region& o) const {
  std::vector<VEdge> edges;
  emit_edges(slabs_, 1, 0, edges);
  emit_edges(o.slabs_, 0, 1, edges);
  Region out;
  out.slabs_ = build_slabs(std::move(edges), FillRule::kUnion);
  return out;
}

Region Region::intersected(const Region& o) const {
  std::vector<VEdge> edges;
  emit_edges(slabs_, 1, 0, edges);
  emit_edges(o.slabs_, 0, 1, edges);
  Region out;
  out.slabs_ = build_slabs(std::move(edges), FillRule::kIntersect);
  return out;
}

Region Region::subtracted(const Region& o) const {
  std::vector<VEdge> edges;
  emit_edges(slabs_, 1, 0, edges);
  emit_edges(o.slabs_, 0, 1, edges);
  Region out;
  out.slabs_ = build_slabs(std::move(edges), FillRule::kSubtract);
  return out;
}

Region Region::xored(const Region& o) const {
  std::vector<VEdge> edges;
  emit_edges(slabs_, 1, 0, edges);
  emit_edges(o.slabs_, 0, 1, edges);
  Region out;
  out.slabs_ = build_slabs(std::move(edges), FillRule::kXor);
  return out;
}

Region Region::translated(const Point& v) const {
  Region out = *this;
  for (auto& s : out.slabs_) {
    s.y0 += v.y;
    s.y1 += v.y;
    for (auto& iv : s.intervals) {
      iv.x0 += v.x;
      iv.x1 += v.x;
    }
  }
  return out;
}

Region Region::transposed() const {
  std::vector<VEdge> edges;
  for (const auto& s : slabs_) {
    for (const auto& iv : s.intervals) {
      // rect (x0,y0)-(x1,y1) becomes (y0,x0)-(y1,x1)
      edges.push_back({s.y0, iv.x0, iv.x1, +1, 0});
      edges.push_back({s.y1, iv.x0, iv.x1, -1, 0});
    }
  }
  Region out;
  out.slabs_ = build_slabs(std::move(edges), FillRule::kPositiveA);
  return out;
}

Region Region::scaled(Coord f) const {
  OPCKIT_CHECK_MSG(f > 0, "Region::scaled requires a positive factor");
  // Multiplying by f > 0 is strictly monotone, so slab order, interval
  // order, disjointness, and maximality all survive unchanged.
  Region out = *this;
  for (auto& s : out.slabs_) {
    s.y0 *= f;
    s.y1 *= f;
    for (auto& iv : s.intervals) {
      iv.x0 *= f;
      iv.x1 *= f;
    }
  }
  return out;
}

namespace {

/// Dilate every interval horizontally by d (>0) and re-merge.
std::vector<Slab> dilate_x(const std::vector<Slab>& slabs, Coord d) {
  std::vector<Slab> out;
  out.reserve(slabs.size());
  for (const auto& s : slabs) {
    Slab ns{s.y0, s.y1, {}};
    for (const auto& iv : s.intervals) {
      const Interval grown{iv.x0 - d, iv.x1 + d};
      if (!ns.intervals.empty() && grown.x0 <= ns.intervals.back().x1) {
        ns.intervals.back().x1 = std::max(ns.intervals.back().x1, grown.x1);
      } else {
        ns.intervals.push_back(grown);
      }
    }
    out.push_back(std::move(ns));
  }
  coalesce(out);
  return out;
}

/// Erode every interval horizontally by d (>0); exact because erosion by a
/// horizontal segment acts independently on each horizontal line.
std::vector<Slab> erode_x(const std::vector<Slab>& slabs, Coord d) {
  std::vector<Slab> out;
  out.reserve(slabs.size());
  for (const auto& s : slabs) {
    Slab ns{s.y0, s.y1, {}};
    for (const auto& iv : s.intervals) {
      if (iv.x1 - iv.x0 > 2 * d) ns.intervals.push_back({iv.x0 + d, iv.x1 - d});
    }
    if (!ns.intervals.empty()) out.push_back(std::move(ns));
  }
  coalesce(out);
  return out;
}

}  // namespace

Region Region::inflated(Coord dx, Coord dy) const {
  OPCKIT_CHECK_MSG((dx >= 0) == (dy >= 0) || dx == 0 || dy == 0,
                   "mixed-sign sizing is not supported");
  Region out;
  if (empty()) return out;
  if (dx >= 0 && dy >= 0) {
    // Dilation: X by interval growth, then Y via rect growth + union.
    out.slabs_ = dx > 0 ? dilate_x(slabs_, dx) : slabs_;
    if (dy > 0) {
      std::vector<VEdge> edges;
      for (const auto& s : out.slabs_) {
        for (const auto& iv : s.intervals) {
          edges.push_back({iv.x0, s.y0 - dy, s.y1 + dy, +1, 0});
          edges.push_back({iv.x1, s.y0 - dy, s.y1 + dy, -1, 0});
        }
      }
      out.slabs_ = build_slabs(std::move(edges), FillRule::kPositiveA);
    }
    return out;
  }
  // Erosion: X per-slab, Y via transpose.
  out.slabs_ = dx < 0 ? erode_x(slabs_, -dx) : slabs_;
  if (dy < 0) {
    Region t;
    t.slabs_ = std::move(out.slabs_);
    t = t.transposed();
    t.slabs_ = erode_x(t.slabs_, -dy);
    out = t.transposed();
  }
  return out;
}

Region Region::inflated(Coord d) const { return inflated(d, d); }

Region Region::opened(Coord d) const {
  OPCKIT_CHECK(d >= 0);
  return inflated(-d).inflated(d);
}

Region Region::closed(Coord d) const {
  OPCKIT_CHECK(d >= 0);
  return inflated(d).inflated(-d);
}

Region Region::clipped(const Rect& window) const {
  return intersected(Region(window));
}

std::vector<Polygon> Region::polygons() const {
  // Collect directed boundary edges (interior on the left):
  //   bottom edges -> East, top edges -> West,
  //   left edges -> South, right edges -> North.
  struct DirEdge {
    Point a, b;
    bool used = false;
  };
  std::vector<DirEdge> dir_edges;

  // Horizontal edges: compare coverage below/above each y-breakpoint.
  // Gather all distinct y boundaries with the interval lists on each side.
  std::map<Coord, std::pair<const std::vector<Interval>*,
                            const std::vector<Interval>*>>
      boundary;  // y -> (below, above)
  static const std::vector<Interval> kNone{};
  for (const auto& s : slabs_) {
    boundary[s.y0].second = &s.intervals;
    boundary[s.y1].first = &s.intervals;
  }
  for (const auto& [y, sides] : boundary) {
    const auto& below = sides.first ? *sides.first : kNone;
    const auto& above = sides.second ? *sides.second : kNone;
    // Sweep the two interval lists; emit XOR segments with direction.
    std::size_t i = 0, j = 0;
    Coord x = std::numeric_limits<Coord>::min();
    while (i < below.size() || j < above.size()) {
      const Coord bi0 = i < below.size() ? below[i].x0 : std::numeric_limits<Coord>::max();
      const Coord bi1 = i < below.size() ? below[i].x1 : std::numeric_limits<Coord>::max();
      const Coord ai0 = j < above.size() ? above[j].x0 : std::numeric_limits<Coord>::max();
      const Coord ai1 = j < above.size() ? above[j].x1 : std::numeric_limits<Coord>::max();
      // Determine the next segment start and the coverage there.
      const Coord start = std::max(x, std::min(bi0, ai0));
      const bool in_b = i < below.size() && start >= bi0 && start < bi1;
      const bool in_a = j < above.size() && start >= ai0 && start < ai1;
      // Next change point.
      Coord end = std::numeric_limits<Coord>::max();
      if (i < below.size()) end = std::min(end, start < bi0 ? bi0 : bi1);
      if (j < above.size()) end = std::min(end, start < ai0 ? ai0 : ai1);
      if (end <= start) break;  // defensive; should not happen
      if (in_a && !in_b) {
        dir_edges.push_back({{start, y}, {end, y}});  // bottom edge, East
      } else if (in_b && !in_a) {
        dir_edges.push_back({{end, y}, {start, y}});  // top edge, West
      }
      x = end;
      if (i < below.size() && end >= bi1) ++i;
      if (j < above.size() && end >= ai1) ++j;
      if (end == std::numeric_limits<Coord>::max()) break;
    }
  }

  // Vertical edges from slab interval endpoints.
  for (const auto& s : slabs_) {
    for (const auto& iv : s.intervals) {
      dir_edges.push_back({{iv.x0, s.y1}, {iv.x0, s.y0}});  // left, South
      dir_edges.push_back({{iv.x1, s.y0}, {iv.x1, s.y1}});  // right, North
    }
  }

  // Index edges by start point.
  std::unordered_map<Point, std::vector<std::size_t>> by_start;
  by_start.reserve(dir_edges.size());
  for (std::size_t k = 0; k < dir_edges.size(); ++k) {
    by_start[dir_edges[k].a].push_back(k);
  }

  // Walk loops, preferring the leftmost turn at junction vertices so that
  // loops touching at a point are split consistently.
  auto turn_rank = [](const Point& in_dir, const Point& out_dir) {
    // 0 = left turn, 1 = straight, 2 = right turn, 3 = U-turn.
    const Coord cr = cross(in_dir, out_dir);
    const Coord dt = dot(in_dir, out_dir);
    if (cr > 0) return 0;
    if (cr == 0 && dt > 0) return 1;
    if (cr < 0) return 2;
    return 3;
  };

  std::vector<Polygon> out;
  for (std::size_t seed = 0; seed < dir_edges.size(); ++seed) {
    if (dir_edges[seed].used) continue;
    std::vector<Point> ring;
    std::size_t cur = seed;
    while (!dir_edges[cur].used) {
      dir_edges[cur].used = true;
      ring.push_back(dir_edges[cur].a);
      const Point at = dir_edges[cur].b;
      const Point in_dir = dir_edges[cur].b - dir_edges[cur].a;
      auto it = by_start.find(at);
      OPCKIT_CHECK_MSG(it != by_start.end(), "open boundary at " << at);
      std::size_t best = SIZE_MAX;
      int best_rank = 4;
      for (std::size_t cand : it->second) {
        if (dir_edges[cand].used) continue;
        const int r = turn_rank(in_dir, dir_edges[cand].b - dir_edges[cand].a);
        if (r < best_rank) {
          best_rank = r;
          best = cand;
        }
      }
      if (best == SIZE_MAX) break;  // loop closed (seed edge reached again)
      cur = best;
    }
    // Remove collinear midpoints while preserving orientation.
    std::vector<Point> clean;
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point& prev = ring[(i + n - 1) % n];
      const Point& curp = ring[i];
      const Point& nxt = ring[(i + 1) % n];
      if (cross(curp - prev, nxt - curp) != 0) clean.push_back(curp);
    }
    if (clean.size() >= 4) out.emplace_back(std::move(clean));
  }
  return out;
}

std::vector<Region> Region::components() const {
  // Union-find over decomposition rects; two rects connect when they
  // share boundary of positive length (edge adjacency).
  const std::vector<Rect> rs = rects();
  std::vector<std::size_t> parent(rs.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    parent[find(a)] = find(b);
  };
  auto edge_adjacent = [](const Rect& a, const Rect& b) {
    const Coord ox = std::min(a.hi.x, b.hi.x) - std::max(a.lo.x, b.lo.x);
    const Coord oy = std::min(a.hi.y, b.hi.y) - std::max(a.lo.y, b.lo.y);
    return (ox == 0 && oy > 0) || (oy == 0 && ox > 0);
  };
  for (std::size_t i = 0; i < rs.size(); ++i) {
    for (std::size_t j = i + 1; j < rs.size(); ++j) {
      if (rs[i].touches(rs[j]) && edge_adjacent(rs[i], rs[j])) {
        unite(i, j);
      }
    }
  }
  std::map<std::size_t, std::vector<Rect>> groups;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    groups[find(i)].push_back(rs[i]);
  }
  std::vector<Region> out;
  out.reserve(groups.size());
  for (auto& [root, group] : groups) {
    out.push_back(Region::from_rects(group));
  }
  std::sort(out.begin(), out.end(), [](const Region& a, const Region& b) {
    return a.bbox().lo < b.bbox().lo;
  });
  return out;
}

std::ostream& operator<<(std::ostream& os, const Region& r) {
  os << "region{" << r.rect_count() << " rects, area=" << r.area() << '}';
  return os;
}

}  // namespace opckit::geom
