/// \file point.h
/// Integer lattice points and vectors.
///
/// All opckit geometry lives on a 1 nm integer grid (database units).
/// Coordinates are 64-bit so that full-chip extents (hundreds of mm in nm
/// units) and intermediate products in area computations cannot overflow.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace opckit::geom {

/// Database-unit coordinate type (1 unit = 1 nm by convention).
using Coord = std::int64_t;

/// A point (or displacement vector) on the integer grid.
struct Point {
  Coord x = 0;
  Coord y = 0;

  constexpr Point() = default;
  constexpr Point(Coord px, Coord py) : x(px), y(py) {}

  friend constexpr bool operator==(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator-() const { return {-x, -y}; }
  constexpr Point operator*(Coord k) const { return {x * k, y * k}; }
  Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  /// Lexicographic order (x, then y); used for canonical sorting.
  friend constexpr bool operator<(const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  }
};

/// 2D cross product (z-component); >0 means b is counter-clockwise from a.
constexpr Coord cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

/// Dot product.
constexpr Coord dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// L1 (Manhattan) norm of a displacement.
constexpr Coord manhattan_length(const Point& v) {
  return (v.x < 0 ? -v.x : v.x) + (v.y < 0 ? -v.y : v.y);
}

/// Chebyshev (L-infinity) norm of a displacement.
constexpr Coord chebyshev_length(const Point& v) {
  const Coord ax = v.x < 0 ? -v.x : v.x;
  const Coord ay = v.y < 0 ? -v.y : v.y;
  return ax > ay ? ax : ay;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

}  // namespace opckit::geom

template <>
struct std::hash<opckit::geom::Point> {
  std::size_t operator()(const opckit::geom::Point& p) const noexcept {
    // 64-bit mix of both coordinates (splitmix-style avalanche).
    auto mix = [](std::uint64_t z) {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    const auto hx = mix(static_cast<std::uint64_t>(p.x));
    const auto hy = mix(static_cast<std::uint64_t>(p.y) + 0x9e3779b97f4a7c15ULL);
    return static_cast<std::size_t>(hx ^ (hy << 1 | hy >> 63));
  }
};
