/// \file rect.h
/// Axis-aligned rectangles (half-open semantics are NOT used: a Rect spans
/// the closed coordinate range [lo.x, hi.x] × [lo.y, hi.y]; geometric area
/// treats coordinates as positions so width = hi.x - lo.x).
#pragma once

#include <algorithm>
#include <ostream>

#include "geometry/point.h"

namespace opckit::geom {

/// An axis-aligned rectangle given by its lower-left and upper-right corner.
/// A Rect with lo == hi is a degenerate (zero-area) point; a Rect where
/// any hi coordinate is below lo is "empty" (used as the identity for
/// bounding-box accumulation).
struct Rect {
  Point lo;
  Point hi;

  constexpr Rect() = default;
  constexpr Rect(Point l, Point h) : lo(l), hi(h) {}
  constexpr Rect(Coord x0, Coord y0, Coord x1, Coord y1)
      : lo(x0, y0), hi(x1, y1) {}

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  /// Canonical empty rect (inverted bounds); union identity.
  static constexpr Rect empty() {
    return Rect(Point{1, 1}, Point{0, 0});
  }

  /// True if the rect has no extent (inverted or zero in either axis).
  constexpr bool is_empty() const { return hi.x <= lo.x || hi.y <= lo.y; }
  /// True if bounds are inverted in either axis.
  constexpr bool is_inverted() const { return hi.x < lo.x || hi.y < lo.y; }

  constexpr Coord width() const { return hi.x - lo.x; }
  constexpr Coord height() const { return hi.y - lo.y; }
  constexpr Coord area() const {
    return is_empty() ? 0 : width() * height();
  }
  constexpr Point center() const {
    return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  }

  /// True if \p p lies inside or on the boundary.
  constexpr bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  /// True if \p p lies strictly inside.
  constexpr bool contains_strict(const Point& p) const {
    return p.x > lo.x && p.x < hi.x && p.y > lo.y && p.y < hi.y;
  }
  /// True if \p r lies entirely within this rect (boundary touching ok).
  constexpr bool contains(const Rect& r) const {
    return !r.is_empty() && r.lo.x >= lo.x && r.lo.y >= lo.y &&
           r.hi.x <= hi.x && r.hi.y <= hi.y;
  }
  /// True if the two rects share interior area (not just an edge).
  constexpr bool overlaps(const Rect& r) const {
    return !is_empty() && !r.is_empty() && lo.x < r.hi.x && r.lo.x < hi.x &&
           lo.y < r.hi.y && r.lo.y < hi.y;
  }
  /// True if the two rects share at least a boundary point.
  constexpr bool touches(const Rect& r) const {
    return lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y &&
           r.lo.y <= hi.y;
  }

  /// Intersection; empty() if disjoint.
  Rect intersected(const Rect& r) const {
    Rect out(Point{std::max(lo.x, r.lo.x), std::max(lo.y, r.lo.y)},
             Point{std::min(hi.x, r.hi.x), std::min(hi.y, r.hi.y)});
    return out.is_inverted() ? Rect::empty() : out;
  }

  /// Smallest rect covering both (treats empty as identity).
  Rect united(const Rect& r) const {
    if (is_inverted()) return r;
    if (r.is_inverted()) return *this;
    return Rect(Point{std::min(lo.x, r.lo.x), std::min(lo.y, r.lo.y)},
                Point{std::max(hi.x, r.hi.x), std::max(hi.y, r.hi.y)});
  }

  /// Rect grown by \p d on every side (negative shrinks; may invert).
  constexpr Rect inflated(Coord d) const {
    return Rect(Point{lo.x - d, lo.y - d}, Point{hi.x + d, hi.y + d});
  }
  /// Rect grown anisotropically.
  constexpr Rect inflated(Coord dx, Coord dy) const {
    return Rect(Point{lo.x - dx, lo.y - dy}, Point{hi.x + dx, hi.y + dy});
  }
  /// Rect translated by \p v.
  constexpr Rect translated(const Point& v) const {
    return Rect(lo + v, hi + v);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.lo << ".." << r.hi << ']';
}

}  // namespace opckit::geom
