/// \file transform.h
/// Rigid lattice transforms: the dihedral group D4 plus translation.
///
/// These are exactly the transforms GDSII cell references support (rotation
/// in multiples of 90° and mirroring), and the symmetry group under which
/// layout patterns are canonicalized in the pattern-catalog module.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>

#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"

namespace opckit::geom {

/// The eight elements of D4. Rotations are counter-clockwise; the
/// mirrored variants apply a reflection about the x-axis FIRST, then the
/// rotation (GDSII STRANS convention).
enum class Orientation : std::uint8_t {
  kR0 = 0,
  kR90 = 1,
  kR180 = 2,
  kR270 = 3,
  kMX = 4,      ///< mirror about x-axis (y -> -y)
  kMXR90 = 5,   ///< mirror about x-axis, then rotate 90° CCW
  kMXR180 = 6,  ///< == mirror about y-axis
  kMXR270 = 7,
};

/// Number of distinct orientations.
inline constexpr std::size_t kOrientationCount = 8;

/// All orientations, convenient for symmetry sweeps.
inline constexpr std::array<Orientation, kOrientationCount> all_orientations() {
  return {Orientation::kR0,  Orientation::kR90,   Orientation::kR180,
          Orientation::kR270, Orientation::kMX,    Orientation::kMXR90,
          Orientation::kMXR180, Orientation::kMXR270};
}

/// Apply an orientation to a point (about the origin).
Point apply(Orientation o, const Point& p);

/// Group composition: result = a ∘ b (apply b first, then a).
Orientation compose(Orientation a, Orientation b);

/// Group inverse.
Orientation inverse(Orientation o);

/// Human-readable name, e.g. "R90", "MXR180".
const char* name(Orientation o);

/// A lattice transform: p -> apply(orientation, p) + displacement.
struct Transform {
  Orientation orientation = Orientation::kR0;
  Point displacement{0, 0};

  constexpr Transform() = default;
  Transform(Orientation o, Point d) : orientation(o), displacement(d) {}
  /// Pure translation.
  explicit Transform(Point d) : displacement(d) {}

  friend bool operator==(const Transform&, const Transform&) = default;

  /// Transform a point.
  Point operator()(const Point& p) const {
    return apply(orientation, p) + displacement;
  }
  /// Transform a rect (result is re-normalized to lo<=hi).
  Rect operator()(const Rect& r) const;
  /// Transform a polygon vertex-wise.
  Polygon operator()(const Polygon& poly) const;

  /// Composition: (a * b)(p) == a(b(p)).
  friend Transform operator*(const Transform& a, const Transform& b);

  /// Inverse transform.
  Transform inverted() const;
};

std::ostream& operator<<(std::ostream& os, Orientation o);
std::ostream& operator<<(std::ostream& os, const Transform& t);

}  // namespace opckit::geom
