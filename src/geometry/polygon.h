/// \file polygon.h
/// Simple polygons on the integer grid.
///
/// A Polygon stores its boundary as an implicitly-closed vertex ring.
/// opckit's OPC and DRC engines require Manhattan (axis-parallel) rings;
/// general rings are accepted for storage/IO but most algorithms check
/// is_manhattan() first.
#pragma once

#include <ostream>
#include <vector>

#include "geometry/edge.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace opckit::geom {

/// A simple polygon (single ring, implicitly closed).
class Polygon {
 public:
  Polygon() = default;
  /// Construct from a vertex ring. Consecutive duplicate vertices and
  /// collinear runs are preserved as given; call normalized() to clean.
  explicit Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {}
  /// Rectangle as a 4-vertex CCW polygon.
  explicit Polygon(const Rect& r);

  /// Vertex ring (read-only).
  const std::vector<Point>& ring() const { return ring_; }
  /// Number of vertices.
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }

  /// Vertex i (no wrap).
  const Point& operator[](std::size_t i) const { return ring_[i]; }

  /// Edge from vertex i to vertex (i+1) mod size().
  Edge edge(std::size_t i) const;
  /// All edges in ring order.
  std::vector<Edge> edges() const;

  /// Twice the signed area (positive = counter-clockwise).
  Coord signed_area2() const;
  /// Absolute area.
  Coord area() const;
  /// Boundary length (Manhattan edges assumed for exactness).
  Coord perimeter() const;
  /// Bounding box; Rect::empty() when the polygon has no vertices.
  Rect bbox() const;

  /// True if every edge is axis-parallel and non-degenerate.
  bool is_manhattan() const;
  /// True if the ring is counter-clockwise (signed area > 0).
  bool is_ccw() const { return signed_area2() > 0; }

  /// Copy with consecutive duplicate vertices and collinear midpoints
  /// removed, oriented counter-clockwise. A ring that collapses to fewer
  /// than 3 (Manhattan: 4) distinct vertices yields an empty polygon.
  Polygon normalized() const;

  /// Copy translated by \p v.
  Polygon translated(const Point& v) const;
  /// Copy with x and y swapped (reflection across y=x). Maps Manhattan to
  /// Manhattan and flips orientation.
  Polygon transposed() const;

  /// Point-in-polygon (boundary counts as inside). Nonzero winding rule;
  /// correct for any simple ring, Manhattan or not.
  bool contains(const Point& p) const;

  friend bool operator==(const Polygon&, const Polygon&) = default;

 private:
  std::vector<Point> ring_;
};

std::ostream& operator<<(std::ostream& os, const Polygon& p);

}  // namespace opckit::geom
