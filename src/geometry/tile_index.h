/// \file tile_index.h
/// Uniform-grid spatial index over bounding boxes.
///
/// OPC and pattern extraction repeatedly ask "which shapes are within an
/// optical-interaction window of this point?". A uniform tile grid is the
/// standard EDA answer: layouts are area-dense and fairly uniform, so a
/// grid beats tree indexes while staying deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/rect.h"

namespace opckit::geom {

/// Maps item ids (caller-defined, dense size_t) to tiles by bounding box
/// and answers window queries with a deduplicated candidate id list.
class TileIndex {
 public:
  /// Build an index over \p extent with square tiles of side \p tile_size.
  TileIndex(const Rect& extent, Coord tile_size);

  /// Insert an item covering \p bbox. Items outside the extent clamp into
  /// the border tiles. Degenerate boxes are accepted.
  void insert(std::size_t id, const Rect& bbox);

  /// Ids of items whose bbox possibly intersects \p window, ascending and
  /// deduplicated. Exact bbox-vs-window filtering is applied.
  std::vector<std::size_t> query(const Rect& window) const;

  /// Number of inserted items.
  std::size_t size() const { return boxes_.size(); }

 private:
  struct Span {
    std::size_t tx0, ty0, tx1, ty1;
  };
  Span tile_span(const Rect& r) const;

  Rect extent_;
  Coord tile_size_;
  std::size_t nx_, ny_;
  std::vector<std::vector<std::size_t>> tiles_;  // tile -> item ids
  std::vector<std::pair<std::size_t, Rect>> boxes_;  // id -> bbox
};

}  // namespace opckit::geom
