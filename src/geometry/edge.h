/// \file edge.h
/// Directed polygon edges with Manhattan helpers.
#pragma once

#include <ostream>

#include "geometry/point.h"
#include "geometry/rect.h"
#include "util/check.h"

namespace opckit::geom {

/// Axis direction of a Manhattan edge, named by travel direction.
enum class EdgeDir { kEast, kNorth, kWest, kSouth, kDiagonal };

/// A directed segment from a to b. In a counter-clockwise polygon the
/// interior lies to the LEFT of the travel direction, so the outward
/// normal is the left-hand direction rotated -90° (i.e. to the right).
struct Edge {
  Point a;
  Point b;

  constexpr Edge() = default;
  constexpr Edge(Point pa, Point pb) : a(pa), b(pb) {}

  friend constexpr bool operator==(const Edge&, const Edge&) = default;

  constexpr Point delta() const { return b - a; }
  constexpr bool is_horizontal() const { return a.y == b.y; }
  constexpr bool is_vertical() const { return a.x == b.x; }
  constexpr bool is_manhattan() const {
    return is_horizontal() || is_vertical();
  }
  constexpr bool is_degenerate() const { return a == b; }

  /// Euclidean length for Manhattan edges (== Manhattan length).
  constexpr Coord length() const { return manhattan_length(delta()); }

  /// Travel direction classification.
  constexpr EdgeDir dir() const {
    if (a.y == b.y) return b.x > a.x ? EdgeDir::kEast : EdgeDir::kWest;
    if (a.x == b.x) return b.y > a.y ? EdgeDir::kNorth : EdgeDir::kSouth;
    return EdgeDir::kDiagonal;
  }

  /// Unit outward normal assuming the edge belongs to a counter-clockwise
  /// polygon (interior on the left): rotate direction by -90 degrees.
  Point outward_normal() const {
    switch (dir()) {
      case EdgeDir::kEast:
        return {0, -1};
      case EdgeDir::kNorth:
        return {1, 0};
      case EdgeDir::kWest:
        return {0, 1};
      case EdgeDir::kSouth:
        return {-1, 0};
      case EdgeDir::kDiagonal:
        break;
    }
    OPCKIT_CHECK_MSG(false, "outward_normal on diagonal edge");
    return {};
  }

  /// Midpoint (rounded toward lo on odd lengths).
  constexpr Point midpoint() const {
    return {(a.x + b.x) / 2, (a.y + b.y) / 2};
  }

  /// Bounding box of the segment.
  Rect bbox() const {
    return Rect(Point{a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y},
                Point{a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y});
  }

  /// Point at parameter \p t along the edge measured in DB units from a;
  /// t is clamped to [0, length]. Only valid for Manhattan edges.
  Point at(Coord t) const {
    OPCKIT_CHECK(is_manhattan());
    const Coord len = length();
    if (len == 0) return a;
    if (t < 0) t = 0;
    if (t > len) t = len;
    const Point d = delta();
    return {a.x + d.x / len * t, a.y + d.y / len * t};
  }

  /// Edge translated by \p v.
  constexpr Edge translated(const Point& v) const {
    return Edge(a + v, b + v);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Edge& e) {
  return os << e.a << "->" << e.b;
}

}  // namespace opckit::geom
