#include "geometry/transform.h"

#include "util/check.h"

namespace opckit::geom {

Point apply(Orientation o, const Point& p) {
  // Mirrored variants reflect about the x-axis first (y -> -y), then
  // rotate counter-clockwise by the residual multiple of 90°.
  const auto idx = static_cast<std::uint8_t>(o);
  Point q = p;
  if (idx >= 4) q.y = -q.y;
  switch (idx % 4) {
    case 0:
      return q;
    case 1:
      return {-q.y, q.x};
    case 2:
      return {-q.x, -q.y};
    case 3:
      return {q.y, -q.x};
  }
  OPCKIT_CHECK(false);
  return {};
}

Orientation compose(Orientation a, Orientation b) {
  // Encode as (mirror m, rotation r): action = R^r ∘ M^m.
  // (m_a, r_a) ∘ (m_b, r_b): apply b first.
  //   R^ra M^ma R^rb M^mb.
  // Use identity M R^k = R^{-k} M:
  //   = R^ra R^{±rb} M^{ma} M^{mb} with sign - iff ma==1.
  const int ma = static_cast<int>(a) / 4, ra = static_cast<int>(a) % 4;
  const int mb = static_cast<int>(b) / 4, rb = static_cast<int>(b) % 4;
  const int m = (ma + mb) % 2;
  const int r = ((ra + (ma ? -rb : rb)) % 4 + 4) % 4;
  return static_cast<Orientation>(m * 4 + r);
}

Orientation inverse(Orientation o) {
  const int m = static_cast<int>(o) / 4, r = static_cast<int>(o) % 4;
  // (M^m R^... ) inverse: for pure rotation, inverse rotation. For
  // mirrored (order-2 elements in this encoding? not all), compute by
  // search to stay obviously correct.
  (void)m;
  (void)r;
  for (Orientation cand : all_orientations()) {
    if (compose(o, cand) == Orientation::kR0) return cand;
  }
  OPCKIT_CHECK(false);
  return Orientation::kR0;
}

const char* name(Orientation o) {
  switch (o) {
    case Orientation::kR0:
      return "R0";
    case Orientation::kR90:
      return "R90";
    case Orientation::kR180:
      return "R180";
    case Orientation::kR270:
      return "R270";
    case Orientation::kMX:
      return "MX";
    case Orientation::kMXR90:
      return "MXR90";
    case Orientation::kMXR180:
      return "MXR180";
    case Orientation::kMXR270:
      return "MXR270";
  }
  return "?";
}

Rect Transform::operator()(const Rect& r) const {
  OPCKIT_CHECK(!r.is_inverted());
  const Point a = (*this)(r.lo);
  const Point b = (*this)(r.hi);
  return Rect(Point{a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y},
              Point{a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y});
}

Polygon Transform::operator()(const Polygon& poly) const {
  std::vector<Point> pts;
  pts.reserve(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) pts.push_back((*this)(poly[i]));
  return Polygon(std::move(pts));
}

Transform operator*(const Transform& a, const Transform& b) {
  // a(b(p)) = A(B p + tb) + ta = (A B) p + (A tb + ta)
  return Transform(compose(a.orientation, b.orientation),
                   apply(a.orientation, b.displacement) + a.displacement);
}

Transform Transform::inverted() const {
  const Orientation inv = inverse(orientation);
  return Transform(inv, -apply(inv, displacement));
}

std::ostream& operator<<(std::ostream& os, Orientation o) {
  return os << name(o);
}

std::ostream& operator<<(std::ostream& os, const Transform& t) {
  return os << name(t.orientation) << '+' << t.displacement;
}

}  // namespace opckit::geom
