/// \file geometry.h
/// Umbrella header for the opckit geometry kernel.
#pragma once

#include "geometry/edge.h"       // IWYU pragma: export
#include "geometry/point.h"      // IWYU pragma: export
#include "geometry/polygon.h"    // IWYU pragma: export
#include "geometry/rect.h"       // IWYU pragma: export
#include "geometry/region.h"     // IWYU pragma: export
#include "geometry/tile_index.h" // IWYU pragma: export
#include "geometry/transform.h"  // IWYU pragma: export
