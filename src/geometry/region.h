/// \file region.h
/// Manhattan region algebra.
///
/// A Region is an arbitrary (possibly disconnected, possibly holed) set of
/// axis-parallel area, stored canonically as a stack of horizontal slabs:
/// maximal y-ranges over which the covered x-intervals are constant. The
/// canonical form makes equality, Boolean operations, isotropic sizing
/// (Minkowski with a square), and area exact and deterministic.
///
/// This is the workhorse beneath layout flattening, DRC (width/space/
/// enclosure via morphological opening), MRC checking of OPC output, SRAF
/// clearance, and rasterization.
#pragma once

#include <ostream>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"

namespace opckit::geom {

/// A half-open x-interval [x0, x1) of covered area within a slab.
struct Interval {
  Coord x0 = 0;
  Coord x1 = 0;
  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

/// A horizontal slab: covered x-intervals constant over y in [y0, y1).
struct Slab {
  Coord y0 = 0;
  Coord y1 = 0;
  std::vector<Interval> intervals;  ///< sorted, disjoint, non-touching
  friend bool operator==(const Slab&, const Slab&) = default;
};

/// Canonical Manhattan region. Value type; all operations are pure.
class Region {
 public:
  /// The empty region.
  Region() = default;
  /// Region covering one rectangle (empty rect gives empty region).
  explicit Region(const Rect& r);
  /// Region covered by a simple polygon (nonzero winding fill).
  explicit Region(const Polygon& poly);
  /// Union of rectangles.
  static Region from_rects(std::span<const Rect> rects);
  /// Union of polygons (each filled by nonzero winding; overlaps merge).
  static Region from_polygons(std::span<const Polygon> polys);

  /// True when no area is covered.
  bool empty() const { return slabs_.empty(); }
  /// Total covered area in DB-unit².
  Coord area() const;
  /// Tight bounding box; Rect::empty() when empty.
  Rect bbox() const;
  /// Closed-set membership: boundary points count as inside.
  bool contains(const Point& p) const;
  /// Canonical slab decomposition (read-only).
  const std::vector<Slab>& slabs() const { return slabs_; }
  /// Decomposition into disjoint rectangles (one per slab interval).
  std::vector<Rect> rects() const;
  /// Number of decomposition rectangles.
  std::size_t rect_count() const;
  /// Boundary contours: outer rings counter-clockwise, holes clockwise.
  /// Collinear vertices are removed. Loops touching at a point are split.
  std::vector<Polygon> polygons() const;
  /// Connected components (edge-connected; corner touching does NOT
  /// connect), each as its own Region, ordered by lower-left bbox corner.
  std::vector<Region> components() const;

  /// Set union.
  Region united(const Region& o) const;
  /// Set intersection.
  Region intersected(const Region& o) const;
  /// Set difference (this minus o).
  Region subtracted(const Region& o) const;
  /// Symmetric difference.
  Region xored(const Region& o) const;

  /// Translated copy.
  Region translated(const Point& v) const;
  /// Copy reflected about the line y = x (coordinates swapped).
  Region transposed() const;
  /// Copy with every coordinate multiplied by \p f (f > 0). Scaling a
  /// canonical region by a positive factor preserves canonical form, so
  /// this is a pure coordinate map — no rebuild. Used by the DRC checks
  /// to evaluate integer half-kernels exactly at both rule parities
  /// (work in 2x coordinates, then halve the markers).
  Region scaled(Coord f) const;
  /// Minkowski dilation (d >= 0) or erosion (d < 0) with the square
  /// [-|d|,|d|]². The standard isotropic "size" operation of layout tools.
  Region inflated(Coord d) const;
  /// Anisotropic dilation/erosion; dx and dy must have the same sign.
  Region inflated(Coord dx, Coord dy) const;
  /// Morphological opening: erode then dilate by d (removes area narrower
  /// than 2d in any axis direction). Basis of minimum-width checking.
  Region opened(Coord d) const;
  /// Morphological closing: dilate then erode by d (fills gaps narrower
  /// than 2d). Basis of minimum-space checking.
  Region closed(Coord d) const;
  /// Intersection with a rectangular window.
  Region clipped(const Rect& window) const;

  friend bool operator==(const Region&, const Region&) = default;

 private:
  std::vector<Slab> slabs_;
};

std::ostream& operator<<(std::ostream& os, const Region& r);

}  // namespace opckit::geom
