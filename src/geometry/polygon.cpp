#include "geometry/polygon.h"

#include <algorithm>

#include "util/check.h"

namespace opckit::geom {

Polygon::Polygon(const Rect& r) {
  OPCKIT_CHECK(!r.is_empty());
  ring_ = {r.lo, {r.hi.x, r.lo.y}, r.hi, {r.lo.x, r.hi.y}};
}

Edge Polygon::edge(std::size_t i) const {
  OPCKIT_CHECK(i < ring_.size());
  return Edge(ring_[i], ring_[(i + 1) % ring_.size()]);
}

std::vector<Edge> Polygon::edges() const {
  std::vector<Edge> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(edge(i));
  return out;
}

Coord Polygon::signed_area2() const {
  if (ring_.size() < 3) return 0;
  Coord acc = 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    acc += cross(a, b);
  }
  return acc;
}

Coord Polygon::area() const {
  const Coord a2 = signed_area2();
  return (a2 < 0 ? -a2 : a2) / 2;
}

Coord Polygon::perimeter() const {
  Coord acc = 0;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    acc += manhattan_length(edge(i).delta());
  return acc;
}

Rect Polygon::bbox() const {
  Rect box = Rect::empty();
  for (const Point& p : ring_) box = box.united(Rect(p, p));
  return box;
}

bool Polygon::is_manhattan() const {
  if (ring_.size() < 4) return false;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Edge e = edge(i);
    if (e.is_degenerate() || !e.is_manhattan()) return false;
  }
  return true;
}

Polygon Polygon::normalized() const {
  if (ring_.size() < 3) return Polygon{};
  // Drop consecutive duplicates.
  std::vector<Point> pts;
  pts.reserve(ring_.size());
  for (const Point& p : ring_) {
    if (pts.empty() || pts.back() != p) pts.push_back(p);
  }
  while (pts.size() > 1 && pts.front() == pts.back()) pts.pop_back();

  // Drop collinear midpoints (repeat until stable at the seam).
  bool changed = true;
  while (changed && pts.size() >= 3) {
    changed = false;
    std::vector<Point> next;
    next.reserve(pts.size());
    const std::size_t n = pts.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point& prev = pts[(i + n - 1) % n];
      const Point& cur = pts[i];
      const Point& nxt = pts[(i + 1) % n];
      if (cross(cur - prev, nxt - cur) == 0) {
        changed = true;  // drop cur
      } else {
        next.push_back(cur);
      }
    }
    pts = std::move(next);
  }
  if (pts.size() < 3) return Polygon{};

  Polygon out(std::move(pts));
  if (out.signed_area2() < 0) {
    std::reverse(out.ring_.begin(), out.ring_.end());
  }
  return out;
}

Polygon Polygon::translated(const Point& v) const {
  std::vector<Point> pts;
  pts.reserve(ring_.size());
  for (const Point& p : ring_) pts.push_back(p + v);
  return Polygon(std::move(pts));
}

Polygon Polygon::transposed() const {
  std::vector<Point> pts;
  pts.reserve(ring_.size());
  for (const Point& p : ring_) pts.push_back({p.y, p.x});
  return Polygon(std::move(pts));
}

bool Polygon::contains(const Point& p) const {
  if (ring_.size() < 3) return false;
  int winding = 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    // Boundary test: p on segment ab?
    const Coord cr = cross(b - a, p - a);
    if (cr == 0 && dot(p - a, p - b) <= 0) return true;
    if (a.y <= p.y) {
      if (b.y > p.y && cr > 0) ++winding;
    } else {
      if (b.y <= p.y && cr < 0) --winding;
    }
  }
  return winding != 0;
}

std::ostream& operator<<(std::ostream& os, const Polygon& p) {
  os << "poly{";
  for (std::size_t i = 0; i < p.size(); ++i) os << (i ? " " : "") << p[i];
  return os << '}';
}

}  // namespace opckit::geom
