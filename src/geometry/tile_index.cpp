#include "geometry/tile_index.h"

#include <algorithm>

#include "util/check.h"

namespace opckit::geom {

TileIndex::TileIndex(const Rect& extent, Coord tile_size)
    : extent_(extent), tile_size_(tile_size) {
  OPCKIT_CHECK(!extent.is_empty());
  OPCKIT_CHECK(tile_size > 0);
  nx_ = static_cast<std::size_t>((extent.width() + tile_size - 1) / tile_size);
  ny_ = static_cast<std::size_t>((extent.height() + tile_size - 1) / tile_size);
  nx_ = std::max<std::size_t>(nx_, 1);
  ny_ = std::max<std::size_t>(ny_, 1);
  tiles_.resize(nx_ * ny_);
}

TileIndex::Span TileIndex::tile_span(const Rect& r) const {
  auto clamp_tile = [](Coord v, Coord lo, Coord tile, std::size_t n) {
    if (v < lo) return std::size_t{0};
    const auto t = static_cast<std::size_t>((v - lo) / tile);
    return std::min(t, n - 1);
  };
  return Span{clamp_tile(r.lo.x, extent_.lo.x, tile_size_, nx_),
              clamp_tile(r.lo.y, extent_.lo.y, tile_size_, ny_),
              clamp_tile(r.hi.x, extent_.lo.x, tile_size_, nx_),
              clamp_tile(r.hi.y, extent_.lo.y, tile_size_, ny_)};
}

void TileIndex::insert(std::size_t id, const Rect& bbox) {
  OPCKIT_CHECK(!bbox.is_inverted());
  const Span s = tile_span(bbox);
  for (std::size_t ty = s.ty0; ty <= s.ty1; ++ty) {
    for (std::size_t tx = s.tx0; tx <= s.tx1; ++tx) {
      tiles_[ty * nx_ + tx].push_back(boxes_.size());
    }
  }
  boxes_.emplace_back(id, bbox);
}

std::vector<std::size_t> TileIndex::query(const Rect& window) const {
  std::vector<std::size_t> slots;
  const Span s = tile_span(window);
  for (std::size_t ty = s.ty0; ty <= s.ty1; ++ty) {
    for (std::size_t tx = s.tx0; tx <= s.tx1; ++tx) {
      const auto& bucket = tiles_[ty * nx_ + tx];
      slots.insert(slots.end(), bucket.begin(), bucket.end());
    }
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  std::vector<std::size_t> out;
  out.reserve(slots.size());
  for (std::size_t slot : slots) {
    const auto& [id, box] = boxes_[slot];
    if (box.touches(window)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace opckit::geom
