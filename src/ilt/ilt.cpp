#include "ilt/ilt.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/edge.h"
#include "geometry/point.h"
#include "litho/fft.h"
#include "litho/raster.h"
#include "litho/resist.h"
#include "litho/socs.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "util/check.h"

namespace opckit::ilt {

using geom::Coord;
using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;
using litho::Complex;

namespace {

void validate(const IltSpec& spec) {
  OPCKIT_CHECK(spec.max_iterations >= 1);
  OPCKIT_CHECK(spec.step > 0.0);
  OPCKIT_CHECK(spec.sigmoid_steepness > 0.0);
  OPCKIT_CHECK(spec.edge_weight >= 0.0);
  OPCKIT_CHECK(spec.edge_band_nm >= 0.0);
  OPCKIT_CHECK(spec.convergence_tol >= 0.0);
  OPCKIT_CHECK(spec.mask_threshold > 0.0 && spec.mask_threshold < 1.0);
  OPCKIT_CHECK(spec.min_width_nm > 0 && spec.min_space_nm > 0 &&
               spec.min_corner_nm > 0);
  OPCKIT_CHECK(spec.min_area_nm2 >= 0.0);
}

/// The frame the Simulator would image this window on (window plus
/// guard band, power-of-two dims) — ILT must optimize on exactly the
/// frame the production simulations use.
litho::Frame frame_for(const litho::SimSpec& sim, const Rect& window) {
  return litho::Simulator(sim, window).frame();
}

/// Round \p v up to a positive multiple of \p unit.
Coord round_up(Coord v, Coord unit) {
  return ((std::max<Coord>(v, 1) + unit - 1) / unit) * unit;
}

}  // namespace

double sigmoid(double x) {
  // Evaluate via the non-overflowing branch for either sign.
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

PixelProblem::PixelProblem(const std::vector<Polygon>& targets,
                           const litho::SimSpec& sim, const Rect& window,
                           const IltSpec& spec)
    : frame_(frame_for(sim, window)),
      window_(window),
      threshold_(sim.resist.threshold),
      steepness_(spec.sigmoid_steepness),
      diffusion_(sim.resist.diffusion_nm),
      t_bg_(sim.mask.background_amplitude()),
      fft2_(frame_.nx, frame_.ny),
      set_(litho::KernelCache::instance().get(
          sim.optics, frame_, 0.0, sim.mask,
          litho::SocsOptions{sim.socs_epsilon})),
      batch_(fft2_, set_->support) {
  validate(spec);
  OPCKIT_CHECK_MSG(threshold_ > 0.0,
                   "pixel ILT needs a calibrated resist threshold");
  const Region tgt = Region::from_polygons(targets);
  target_ = litho::rasterize(tgt, frame_).values();

  // Cost weight: pixels outside the window carry no cost (their print
  // is the neighbouring tiles' business), in-window pixels weigh 1,
  // and the band straddling target contours weighs 1 + edge_weight —
  // the pixel analogue of model OPC's per-fragment EPE sites.
  const auto band = static_cast<Coord>(std::lround(spec.edge_band_nm));
  std::vector<double> band_cov(target_.size(), 0.0);
  if (spec.edge_weight > 0.0 && band > 0 && !tgt.empty()) {
    const std::vector<double> outer =
        litho::rasterize(tgt.inflated(band), frame_).values();
    const std::vector<double> inner =
        litho::rasterize(tgt.inflated(-band), frame_).values();
    for (std::size_t i = 0; i < band_cov.size(); ++i) {
      band_cov[i] = std::max(0.0, outer[i] - inner[i]);
    }
  }
  weight_.assign(target_.size(), 0.0);
  free_.assign(target_.size(), 0);
  for (std::size_t iy = 0; iy < frame_.ny; ++iy) {
    for (std::size_t ix = 0; ix < frame_.nx; ++ix) {
      const std::size_t i = iy * frame_.nx + ix;
      const Point center(frame_.origin.x +
                             static_cast<Coord>(std::lround(
                                 (static_cast<double>(ix) + 0.5) *
                                 frame_.pixel_nm)),
                         frame_.origin.y +
                             static_cast<Coord>(std::lround(
                                 (static_cast<double>(iy) + 0.5) *
                                 frame_.pixel_nm)));
      if (!window_.contains_strict(center)) continue;
      free_[i] = 1;
      weight_[i] = 1.0 + spec.edge_weight * band_cov[i];
    }
  }
}

double PixelProblem::cost(const std::vector<double>& m) const {
  OPCKIT_CHECK(m.size() == target_.size());
  const std::size_t n = m.size();
  // Forward: transmission -> spectrum -> fused per-kernel |IFFT|^2.
  std::vector<double> trans(n);
  for (std::size_t i = 0; i < n; ++i) {
    trans[i] = m[i] + (1.0 - m[i]) * t_bg_;
  }
  std::vector<Complex> spectrum;
  fft2_.forward_real(std::span<const double>(trans), spectrum);
  litho::Image intensity(frame_, 0.0);
  std::vector<double> mag2;
  for (const litho::SocsKernel& k : set_->kernels) {
    batch_.inverse_mag2(spectrum.data(), k.value, mag2);
    double* acc = intensity.values().data();
    for (std::size_t i = 0; i < n; ++i) acc[i] += k.weight * mag2[i];
  }
  const litho::Image latent = litho::gaussian_blur(intensity, diffusion_);
  double c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (weight_[i] == 0.0) continue;
    const double z =
        sigmoid(steepness_ * (latent.values()[i] - threshold_));
    const double r = z - target_[i];
    c += weight_[i] * r * r;
  }
  return c;
}

double PixelProblem::cost_and_gradient(const std::vector<double>& m,
                                       std::vector<double>& grad) const {
  OPCKIT_CHECK(m.size() == target_.size());
  const std::size_t n = m.size();
  std::vector<double> trans(n);
  for (std::size_t i = 0; i < n; ++i) {
    trans[i] = m[i] + (1.0 - m[i]) * t_bg_;
  }
  std::vector<Complex> spectrum;
  fft2_.forward_real(std::span<const double>(trans), spectrum);

  // Forward pass, keeping the coherent fields E_k — the adjoint needs
  // conj(E_k), not just the fused magnitudes.
  std::vector<std::vector<Complex>> fields(set_->kernels.size());
  litho::Image intensity(frame_, 0.0);
  for (std::size_t k = 0; k < set_->kernels.size(); ++k) {
    batch_.inverse_field(spectrum.data(), set_->kernels[k].value, fields[k]);
    double* acc = intensity.values().data();
    const double w = set_->kernels[k].weight;
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] += w * std::norm(fields[k][i]);
    }
  }
  const litho::Image latent = litho::gaussian_blur(intensity, diffusion_);

  // Cost and its gradient w.r.t. the latent image, through the sigmoid:
  // dC/dL = 2 w (z - T) * a * z * (1 - z).
  double c = 0.0;
  litho::Image g_latent(frame_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (weight_[i] == 0.0) continue;
    const double z =
        sigmoid(steepness_ * (latent.values()[i] - threshold_));
    const double r = z - target_[i];
    c += weight_[i] * r * r;
    g_latent.values()[i] =
        2.0 * weight_[i] * r * steepness_ * z * (1.0 - z);
  }

  // Pull back through the resist blur (a real symmetric transfer is
  // self-adjoint) to the aerial intensity.
  const litho::Image g_int = litho::gaussian_blur(g_latent, diffusion_);

  // Adjoint of the SOCS sum: accumulate on the shared sparse support
  //   Q(f) = sum_k lambda_k * phi_k(f) * IFFT(gI . conj(E_k))(f),
  // then one dense forward FFT lands the gradient in pixel space:
  //   dC/dt(y) = 2 Re[FFT(Q)(y)].
  std::vector<Complex> work(n);
  std::vector<Complex> q(set_->support.size(), Complex{0.0, 0.0});
  for (std::size_t k = 0; k < set_->kernels.size(); ++k) {
    const double* gi = g_int.values().data();
    for (std::size_t i = 0; i < n; ++i) {
      work[i] = gi[i] * std::conj(fields[k][i]);
    }
    fft2_.inverse(work);
    const double w = set_->kernels[k].weight;
    const std::vector<Complex>& phi = set_->kernels[k].value;
    for (std::size_t j = 0; j < set_->support.size(); ++j) {
      q[j] += w * phi[j] * work[set_->support[j]];
    }
  }
  std::fill(work.begin(), work.end(), Complex{0.0, 0.0});
  for (std::size_t j = 0; j < set_->support.size(); ++j) {
    work[set_->support[j]] = q[j];
  }
  fft2_.forward(work);

  // Chain to the mask pixels: t = m + (1 - m) t_bg, dt/dm = 1 - t_bg.
  grad.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = 2.0 * work[i].real() * (1.0 - t_bg_);
  }
  return c;
}

Region legalize_mask(const litho::Image& mask, const Rect& window,
                     const IltSpec& spec) {
  validate(spec);
  const litho::Frame& f = mask.frame();
  const auto px = static_cast<Coord>(std::lround(f.pixel_nm));
  OPCKIT_CHECK_MSG(px > 0 && static_cast<double>(px) == f.pixel_nm,
                   "legalization needs an integer pixel pitch");
  // Morphology radii snap UP to pixel multiples so every intermediate
  // coordinate stays on the pixel grid — that is what makes
  // legalize(rasterize(legalize(m))) exact.
  const Coord open_r = round_up((spec.min_width_nm + 1) / 2, px);
  const Coord close_r = round_up((spec.min_space_nm + 1) / 2, px);

  // Threshold: window pixels at or above mask_threshold. Frozen context
  // outside the window is never emitted — the tile contract is window
  // geometry only, same as model OPC.
  std::vector<Rect> cells;
  for (std::size_t iy = 0; iy < f.ny; ++iy) {
    for (std::size_t ix = 0; ix < f.nx; ++ix) {
      if (mask.values()[iy * f.nx + ix] < spec.mask_threshold) continue;
      const Rect cell(f.origin.x + static_cast<Coord>(ix) * px,
                      f.origin.y + static_cast<Coord>(iy) * px,
                      f.origin.x + static_cast<Coord>(ix + 1) * px,
                      f.origin.y + static_cast<Coord>(iy + 1) * px);
      if (window.contains(cell)) cells.push_back(cell);
    }
  }
  Region region = Region::from_rects(cells);

  // Repair loop: closing clears sub-min_space gaps and notches, opening
  // clears sub-min_width features, and facing convex corner pairs
  // closer than min_corner_nm (the MRC006 geometry: NE openers vs SW,
  // SE vs NW) are bridged with a block wide enough to survive the next
  // opening. Each pass can expose work for the others, so iterate to a
  // fixed point; the round cap is a backstop, not the common exit.
  constexpr int kMaxRounds = 16;
  int rounds = 0;
  for (; rounds < kMaxRounds; ++rounds) {
    const Region before = region;
    region = region.closed(close_r).opened(open_r);

    struct Corner {
      Point pt;
      Point diag;  ///< exterior-opening diagonal (unit components)
    };
    std::vector<Corner> corners;
    for (const Polygon& ring : region.polygons()) {
      const std::size_t nv = ring.size();
      for (std::size_t i = 0; i < nv; ++i) {
        const geom::Edge cur = ring.edge(i);
        const geom::Edge next = ring.edge((i + 1) % nv);
        if (geom::cross(cur.delta(), next.delta()) <= 0) continue;
        const auto unit = [](Point d) {
          return Point((d.x > 0) - (d.x < 0), (d.y > 0) - (d.y < 0));
        };
        corners.push_back({cur.b, unit(cur.delta()) - unit(next.delta())});
      }
    }
    std::vector<Rect> bridges;
    const auto bridge_pairs = [&](Point a_diag, Point b_diag, bool lower) {
      for (const Corner& a : corners) {
        if (a.diag != a_diag) continue;
        for (const Corner& b : corners) {
          if (b.diag != b_diag) continue;
          const Coord dx = b.pt.x - a.pt.x;
          const Coord dy = lower ? a.pt.y - b.pt.y : b.pt.y - a.pt.y;
          if (dx < 0 || dy < 0) continue;
          if (dx >= spec.min_corner_nm || dy >= spec.min_corner_nm) {
            continue;
          }
          const Rect span(std::min(a.pt.x, b.pt.x), std::min(a.pt.y, b.pt.y),
                          std::max(a.pt.x, b.pt.x),
                          std::max(a.pt.y, b.pt.y));
          bridges.push_back(
              span.inflated(open_r).intersected(window));
        }
      }
    };
    bridge_pairs(Point(1, 1), Point(-1, -1), /*lower=*/false);
    bridge_pairs(Point(1, -1), Point(-1, 1), /*lower=*/true);
    if (!bridges.empty()) {
      region = region.united(Region::from_rects(bridges));
    }
    if (region == before) break;
  }

  // Area floor: drop whole components, which cannot create new
  // violations between the survivors.
  if (spec.min_area_nm2 > 0.0) {
    std::vector<Region> keep;
    bool dropped = false;
    for (Region& comp : region.components()) {
      if (static_cast<double>(comp.area()) < spec.min_area_nm2) {
        dropped = true;
        continue;
      }
      keep.push_back(std::move(comp));
    }
    if (dropped) {
      Region merged;
      for (const Region& comp : keep) merged = merged.united(comp);
      region = std::move(merged);
    }
  }
  trace::metrics()
      .histogram(trace::metric::kIltLegalizeRounds)
      .observe(static_cast<double>(rounds));
  return region;
}

namespace {

/// Projected gradient descent + legalization, given a built problem.
IltResult run_pixelsolve(const PixelProblem& problem,
                         const std::vector<Polygon>& targets,
                         const Rect& window, const IltSpec& spec) {
  IltResult out;
  std::vector<double> m = problem.initial();
  std::vector<double> grad;
  double cost = problem.cost_and_gradient(m, grad);
  out.initial_cost = cost;
  double step = spec.step;

  std::vector<double> trial(m.size());
  // A single small-improvement step is not convergence: hard patterns
  // (tip-to-tip) put most of the cost in already-solved contour pixels,
  // so the global relative improvement is small while the hot spot is
  // still moving. Require a run of stalled iterations before stopping.
  constexpr int kStallLimit = 3;
  int stalled = 0;
  for (int it = 0; it < spec.max_iterations; ++it) {
    // L-inf normalize over the free pixels so `step` is in mask units.
    double gmax = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (problem.free_mask()[i]) gmax = std::max(gmax, std::abs(grad[i]));
    }
    if (gmax == 0.0) {
      out.converged = true;
      break;
    }

    // Deterministic backtracking: halve on a cost regression, keep the
    // shrunken step (the landscape only gets finer near a minimum).
    bool accepted = false;
    double trial_cost = 0.0;
    for (int bt = 0; bt < 5; ++bt) {
      const double scale = step / gmax;
      for (std::size_t i = 0; i < m.size(); ++i) {
        trial[i] = problem.free_mask()[i]
                       ? std::clamp(m[i] - scale * grad[i], 0.0, 1.0)
                       : m[i];
      }
      trial_cost = problem.cost(trial);
      if (trial_cost < cost) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;

    m.swap(trial);
    ++out.iterations;
    const double improvement = (cost - trial_cost) / std::max(cost, 1e-30);
    cost = trial_cost;
    if (improvement < spec.convergence_tol) {
      if (++stalled >= kStallLimit) {
        out.converged = true;
        break;
      }
    } else {
      stalled = 0;
    }
    if (it + 1 < spec.max_iterations) {
      cost = problem.cost_and_gradient(m, grad);
    }
  }
  out.final_cost = cost;

  out.mask = litho::Image(problem.frame(), 0.0);
  std::copy(m.begin(), m.end(), out.mask.values().begin());

  const Region legal = legalize_mask(out.mask, window, spec);
  out.corrected = legal.polygons();
  for (const Polygon& p : targets) {
    const Polygon norm = p.normalized();
    if (!window.contains(norm.bbox())) out.corrected.push_back(norm);
  }
  return out;
}

}  // namespace

IltResult run_pixel_ilt(const std::vector<Polygon>& targets,
                        const litho::SimSpec& sim, const Rect& window,
                        const IltSpec& spec) {
  trace::Span span("ilt.tile");
  validate(spec);
  OPCKIT_CHECK(!window.is_empty());
  const PixelProblem problem(targets, sim, window, spec);
  IltResult out = run_pixelsolve(problem, targets, window, spec);

  trace::MetricsRegistry& reg = trace::metrics();
  reg.counter(trace::metric::kIltRuns).add(1);
  reg.histogram(trace::metric::kIltIterations)
      .observe(static_cast<double>(out.iterations));
  const double reduction =
      out.initial_cost > 0.0
          ? std::clamp(1.0 - out.final_cost / out.initial_cost, 0.0, 1.0)
          : 0.0;
  reg.histogram(trace::metric::kIltCostReduction).observe(reduction);
  return out;
}

}  // namespace opckit::ilt
