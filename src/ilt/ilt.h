/// \file ilt.h
/// Pixel-based inverse lithography (ILT): the third correction engine,
/// beside rule OPC (geometric tables) and model OPC (edge fragments +
/// feedback). Instead of moving the edges of the drawn shapes, ILT
/// treats the mask as a free pixel field over the simulation frame and
/// descends the gradient of an imaging cost — it can synthesize mask
/// topologies no edge mover reaches (hammerheads, holes, free-floating
/// assists), which is what the hardest patterns (tip-to-tip, dense
/// contacts, forbidden pitches) need once model OPC has converged to
/// its geometric floor.
///
/// The engine is differentiable end to end because imaging is SOCS:
///
///     I(x) = sum_k lambda_k * |IFFT(spectrum * phi_k)(x)|^2
///
/// is a smooth function of the pixel transmissions, the resist proxy is
/// a sigmoid of the diffused latent image, and the cost is a weighted
/// L2 distance between the predicted print and the rasterized target.
/// The adjoint reuses the planned FFT engine for every transform — the
/// forward mask spectrum goes through Fft2d::forward_real, the per-
/// kernel coherent fields through SparseInverseBatch::inverse_field
/// (the complex sibling of the fused-|.|^2 imaging path), and the
/// gradient assembles as
///
///     dC/dt(y) = 2 * Re[ FFT( sum_k lambda_k * phi_k
///                             . IFFT(gI . conj(E_k)) )(y) ]
///
/// with gI the cost gradient pulled back through the sigmoid and the
/// (self-adjoint) resist blur. One forward pass plus one adjoint pass
/// costs ~2 transforms per kernel — the same order as a simulation.
///
/// Optimization is projected gradient descent: pixels whose centers lie
/// inside the correction window are free in [0, 1]; everything outside
/// is frozen context (locked exactly like model OPC's out-of-window
/// fragments). The loop is serial and allocation-stable, so a tile's
/// result is a pure function of its inputs — the flow's jobs=1 vs
/// jobs=8 byte-identity contract holds for ILT tiles unchanged.
///
/// The continuous mask is not manufacturable; legalize_mask() snaps it
/// back to Manhattan polygons on the pixel grid and then repairs the
/// result against mask-rule floors (min width, min space/notch, facing
/// convex corners, min area) by iterating pixel-aligned morphological
/// closing/opening plus corner bridging to a fixed point. Every
/// coordinate stays on the pixel grid, so re-legalizing a legalized
/// mask is exact (idempotent) and the output survives the same MRC
/// signoff gate as the other engines.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "geometry/region.h"
#include "litho/fft.h"
#include "litho/image.h"
#include "litho/simulator.h"
#include "litho/socs.h"

namespace opckit::ilt {

/// Pixel-ILT knobs. Defaults are tuned for the 180 nm deck
/// (mrc::mask_deck_180) on the 8 nm simulation pixel: the legalizer
/// floors are pixel multiples at or above the deck values, so the
/// repaired output passes the signoff gate by construction.
struct IltSpec {
  /// Gradient-descent iteration cap.
  int max_iterations = 60;
  /// Initial step in mask units per iteration (the gradient is
  /// L-inf normalized). Halved on cost regressions (deterministic
  /// backtracking), never re-grown.
  double step = 0.4;
  /// Sigmoid steepness a in z = sigma(a * (latent - threshold)), in
  /// inverse clear-field-intensity units. Larger is closer to the hard
  /// resist threshold but propagates less gradient from far pixels.
  double sigmoid_steepness = 45.0;
  /// Extra cost weight multiplier inside the edge band (the EPE-
  /// weighted cost: print fidelity at target edges dominates).
  double edge_weight = 4.0;
  /// Half-width of the edge band around target contours, nm.
  double edge_band_nm = 24.0;
  /// Relative cost-improvement floor: an accepted step that improves
  /// the cost by less than this fraction ends the loop (converged).
  double convergence_tol = 1e-3;

  /// Legalization: coverage at or above this prints a mask pixel.
  double mask_threshold = 0.5;
  /// Legalized minimum feature width, nm (rounded up to an even pixel
  /// multiple; 64 covers the deck's 60).
  geom::Coord min_width_nm = 64;
  /// Legalized minimum gap, nm. Gaps below this are closed shut, which
  /// also clears every notch rule at or below it (80 covers both the
  /// deck's space 60 and notch 80).
  geom::Coord min_space_nm = 80;
  /// Facing convex corner-to-corner floor, nm (Chebyshev, the MRC006
  /// geometry). Closer pairs are bridged solid.
  geom::Coord min_corner_nm = 64;
  /// Connected components below this area are dropped, nm^2.
  double min_area_nm2 = 6400.0;
};

/// Result of one pixel-ILT tile.
struct IltResult {
  /// Legalized window geometry plus the locked context polygons
  /// (normalized, byte-identical to the input) — the same contract as
  /// ModelOpcResult::corrected.
  std::vector<geom::Polygon> corrected;
  int iterations = 0;       ///< accepted gradient steps
  double initial_cost = 0;  ///< cost of the drawn mask
  double final_cost = 0;    ///< cost of the final continuous mask
  bool converged = false;   ///< hit convergence_tol before the cap
  /// Final continuous pixel mask (pre-legalization), for introspection
  /// and the escalation bench.
  litho::Image mask;
};

/// Logistic sigmoid sigma(x) = 1 / (1 + exp(-x)). Exposed for the
/// monotonicity test; the resist proxy is sigma(a * (latent - thr)).
double sigmoid(double x);

/// The differentiable pixel-ILT objective over one simulation frame:
/// cost and adjoint gradient of the weighted print error as a function
/// of the full pixel mask. Exposed (rather than folded into
/// run_pixel_ilt) so the finite-difference test can probe the adjoint
/// directly. Immutable after construction; cost/cost_and_gradient are
/// const and reentrant.
class PixelProblem {
 public:
  /// \p targets: drawn polygons — window shapes to re-synthesize plus
  /// frozen context. \p sim must carry a calibrated resist threshold.
  PixelProblem(const std::vector<geom::Polygon>& targets,
               const litho::SimSpec& sim, const geom::Rect& window,
               const IltSpec& spec);

  const litho::Frame& frame() const { return frame_; }
  std::size_t size() const { return target_.size(); }
  /// Rasterized drawn coverage — the descent's starting point.
  const std::vector<double>& initial() const { return target_; }
  /// 1 where the pixel center is inside the window (optimizable).
  const std::vector<std::uint8_t>& free_mask() const { return free_; }

  /// Weighted print-error cost of mask \p m (values in [0, 1],
  /// size() entries). One forward simulation.
  double cost(const std::vector<double>& m) const;

  /// Cost plus the full unconstrained gradient dC/dm (the caller
  /// applies the free-pixel projection). ~2x the cost of cost().
  double cost_and_gradient(const std::vector<double>& m,
                           std::vector<double>& grad) const;

 private:
  litho::Frame frame_;
  geom::Rect window_;
  double threshold_;   ///< calibrated resist threshold
  double steepness_;   ///< sigmoid a
  double diffusion_;   ///< resist diffusion sigma, nm
  double t_bg_;        ///< mask background amplitude
  litho::Fft2d fft2_;
  std::shared_ptr<const litho::SocsKernelSet> set_;
  litho::SparseInverseBatch batch_;
  std::vector<double> target_;  ///< rasterized drawn coverage
  std::vector<double> weight_;  ///< per-pixel cost weight (0 = ignored)
  std::vector<std::uint8_t> free_;
};

/// Snap a continuous pixel mask to Manhattan polygons and repair it
/// against the IltSpec floors: threshold at mask_threshold over the
/// window, then iterate pixel-aligned closing (gaps/notches below
/// min_space_nm), opening (features below min_width_nm) and facing-
/// corner bridging to a fixed point, then drop components below
/// min_area_nm2. All output coordinates lie on the frame's pixel grid
/// inside \p window; re-legalizing the rasterized result is exact.
geom::Region legalize_mask(const litho::Image& mask,
                           const geom::Rect& window, const IltSpec& spec);

/// Run pixel ILT on one tile: descend from the drawn coverage, then
/// legalize. Polygons fully inside \p window are re-synthesized; every
/// other polygon is locked context (returned unchanged, normalized).
/// Deterministic: serial descent, fixed reduction orders.
IltResult run_pixel_ilt(const std::vector<geom::Polygon>& targets,
                        const litho::SimSpec& sim, const geom::Rect& window,
                        const IltSpec& spec);

}  // namespace opckit::ilt
