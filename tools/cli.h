/// \file cli.h
/// The opckit command-line tool, as a testable library.
///
/// Subcommands:
///   stats     --in a.gds [--cell NAME]
///       hierarchy and data-volume report
///   drc       --in a.gds --layer L/D [--min-width N] [--min-space N]
///       morphological design-rule check of one layer (flattened)
///   lint      [--in a.gds] [--deck FILE] [--model] [--codes]
///       opclint static analysis: polygon/hierarchy/GDSII checks on the
///       library, rule-deck sanity, model-parameter bands; --codes lists
///       every diagnostic. Exit 1 when error-severity findings exist.
///   opc       --in a.gds --out b.gds --layer L/D [--cell NAME]
///             [--mode rule|model] [--srafs] [--anchor CD PITCH]
///       correct one layer, write corrected shapes to datatype+1
///   patterns  --in a.gds --layer L/D [--radius N] [--top K]
///       pattern-catalog summary of one layer
///
/// The entry point takes argv-style tokens and streams, so tests can
/// drive it end-to-end without spawning processes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace opckit::cli {

/// Run the tool. Returns the process exit code (0 = success, 2 = usage
/// error, 1 = runtime failure). Output goes to \p out, diagnostics to
/// \p err.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace opckit::cli
