#!/usr/bin/env bash
# opckit CI driver: build + test matrix, dynamic analysis, and static
# analysis (clang-tidy + opclint on the example layouts).
#
# Usage:
#   tools/ci.sh            # release + sanitize + lint (the default gate)
#   tools/ci.sh all        # everything, including tsan and tidy
#   tools/ci.sh release    # Release build + ctest
#   tools/ci.sh sanitize   # ASan+UBSan build + ctest
#   tools/ci.sh tsan       # TSan build + thread-pool tests only
#   tools/ci.sh tidy       # clang-tidy over src/ and tools/ (skips if absent)
#   tools/ci.sh lint       # opckit lint on generated example layouts
#
# Build trees live under build-ci-<job> so CI never disturbs ./build.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
CTEST_ARGS=(--output-on-failure -j "${JOBS}")

log() { printf '\n=== ci: %s ===\n' "$*"; }

configure_build() { # <dir> [extra cmake args...]
  local dir="$1"; shift
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@" > /dev/null
  cmake --build "${dir}" -j "${JOBS}"
}

job_release() {
  log "release build + full test suite"
  configure_build build-ci-release
  (cd build-ci-release && ctest "${CTEST_ARGS[@]}")
}

job_sanitize() {
  log "ASan+UBSan build + full test suite"
  configure_build build-ci-asan -DOPCKIT_SANITIZE=address,undefined
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}")
  # The correction-store suite (corrupt-file corpus + crash/resume) is
  # part of the full run above; gate explicitly on the `store` label so a
  # test-discovery regression can never silently drop it from the
  # sanitizer matrix.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L store \
         -R 'FlowResume\.FlatCrashThenResume')
  # Same explicit gate for the observability suite (`trace` label): the
  # tracer's per-thread buffers and the metrics atomics must stay clean
  # under ASan/UBSan too, not just TSan.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L trace)
  # And for the SOCS kernel-imaging + metrology edge-case suite (`socs`
  # and `metrology` labels): the eigensolver and kernel synthesis are
  # index-heavy numerics the address sanitizer should sweep on every CI
  # run, not only when the full suite happens to include them.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L socs)
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L metrology)
  # `mrc` label: the scanline signoff engine (interval maps, union-find,
  # ring walks) plus the 240-seed differential harness — exactly the
  # index-heavy code ASan/UBSan exists for.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L mrc)
  # `fft` label: the planned-FFT engine's parity suite (bit-exact legacy
  # parity, r2c/c2r round trips, sparse-batch pruning) is pointer-table
  # indexing end to end — bit-reversal permutations, compact-row
  # scatter, blocked column gathers — the sanitizer's home turf.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L fft)
  # `service` label: the opcd daemon — wire-protocol fault corpus
  # (corrupt frames, hostile lengths, truncation at every byte), the
  # cross-job correction library, and live-socket lifecycle tests.
  # Byte-parsing plus connection teardown is exactly where ASan/UBSan
  # earns its keep.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L service)
  # `pat` label: the pattern library — its own corrupt-file corpus
  # (byte-flip/truncation/forged-CRC loads), the norm-pruned retrieval
  # index, and the flow's exact/near/miss dispatch. Binary parsing plus
  # index arithmetic: sweep it on every sanitizer run.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L pat)
  # `ilt` label: the pixel-ILT engine — per-kernel scatter/gather over
  # the sparse SOCS support, adjoint FFT buffers reused across
  # iterations, and the pixel-grid legalizer's scanline passes. Raw
  # index arithmetic over flat arrays: sanitizer territory.
  (cd build-ci-asan && \
   ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L ilt)
}

job_tsan() {
  log "TSan build + concurrency tests"
  configure_build build-ci-tsan -DOPCKIT_SANITIZE=thread
  # ThreadPool: the pool's own protocol; FlowParallel: the tiled OPC flow
  # driver's parallel gather/solve phases on top of it; FlowResume: the
  # persistent store's append path behind the serial merge phase;
  # TraceFlow: worker threads writing per-thread span buffers and metric
  # atomics during a traced jobs=8 flow, merged at flow end.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" -R 'ThreadPool|FlowParallel|FlowResume|TraceFlow')
  # Gate on the `trace` label explicitly so a test-discovery regression
  # can never silently drop the traced-flow suite from the TSan matrix.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L trace)
  # `socs` label: the process-wide KernelCache (mutex under concurrent
  # flow workers) and both engines' pooled chunked reductions are
  # concurrency machinery — keep them in the TSan matrix explicitly.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L socs)
  # `mrc` label: the MrcFlowGate suite drives the parallel signoff phase
  # at jobs=8 — the per-tile check_polygons calls run on pool workers and
  # must stay data-race-free against the serial accounting.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L mrc)
  # `fft` label: the process-wide PlanCache (mutex under concurrent flow
  # workers requesting the same frame shape) and shared immutable plans
  # driven from pool threads — the PlanCacheTest.ConcurrentRequests*
  # case exists specifically for this job.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L fft)
  # `service` label: the daemon is the most concurrent code in the repo —
  # connection reader threads, the admission queue, pool workers running
  # jobs, and shutdown draining all share state under one mutex. The
  # concurrent-clients and drain/abort tests exist for this job.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L service)
  # `pat` label: the library session feeds warm-start seeds to pool
  # workers during the parallel solve phase and collects fresh solves
  # back through the serial merge — the jobs=8 warm-started determinism
  # test exists for this job.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L pat)
  # `ilt` label: ILT tiles run on pool workers like any other solve —
  # shared KernelCache/PlanCache lookups from the descent loop plus the
  # serial merge accounting. The jobs=1 vs jobs=8 identity test exists
  # for this job.
  (cd build-ci-tsan && \
   ctest "${CTEST_ARGS[@]}" --no-tests=error -L ilt)
}

job_tidy() {
  if ! command -v clang-tidy > /dev/null; then
    log "clang-tidy not installed — skipping (config: .clang-tidy)"
    return 0
  fi
  log "clang-tidy over src/ and tools/ (warnings are errors)"
  configure_build build-ci-tidy -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  find src tools -name '*.cpp' -print0 |
    xargs -0 -P "${JOBS}" -n 8 clang-tidy -p build-ci-tidy --quiet \
      --warnings-as-errors='*'
}

job_lint() {
  log "opclint over generated example layouts"
  configure_build build-ci-release
  local root; root="$(pwd)"
  local bin="${root}/build-ci-release/tools/opckit"
  local work; work="$(mktemp -d)"
  # quickstart writes a drawn+corrected library; it must lint clean
  # (exit 0: the derived-datatype note is advisory, not an error).
  (cd "${work}" && "${root}/build-ci-release/examples/quickstart" > /dev/null)
  "${bin}" lint --in "${work}/quickstart_out.gds"
  "${bin}" lint --codes > /dev/null
  "${bin}" lint --model > /dev/null
  rm -rf "${work}"
  # docs/LINT_CODES.md is generated from the compiled registry; fail on
  # drift so the doc can never lag a code change.
  if ! "${bin}" lint --codes --format md | diff -u docs/LINT_CODES.md -; then
    echo "ci: docs/LINT_CODES.md is stale — regenerate with:" >&2
    echo "    build/tools/opckit lint --codes --format md > docs/LINT_CODES.md" >&2
    exit 1
  fi
  # Same contract for the metric registry: docs/METRICS.md is generated
  # from the compiled table (trace/metrics.cpp), so a metric added,
  # renamed, or re-described in code must regenerate the doc.
  if ! "${bin}" metrics --format md | diff -u docs/METRICS.md -; then
    echo "ci: docs/METRICS.md is stale — regenerate with:" >&2
    echo "    build/tools/opckit metrics --format md > docs/METRICS.md" >&2
    exit 1
  fi
  # docs/PERF.md's benchmark inventory must list every experiment target
  # registered in bench/bench.cmake — a new bench added without a row in
  # the playbook (or a rename that orphans one) fails here.
  local drift=0 target
  for target in $(sed -n 's/^opckit_add_experiment(\([a-z0-9_]*\))$/\1/p' \
                    bench/bench.cmake); do
    if ! grep -q "\`${target}\`" docs/PERF.md; then
      echo "ci: bench target '${target}' missing from docs/PERF.md" >&2
      drift=1
    fi
  done
  if [[ "${drift}" -ne 0 ]]; then
    echo "ci: docs/PERF.md benchmark inventory is stale — add the" >&2
    echo "    missing targets to the 'Benchmark inventory' table" >&2
    exit 1
  fi
  echo "ci: lint clean (docs/LINT_CODES.md, docs/METRICS.md, docs/PERF.md in sync)"
}

main() {
  local jobs=("${@:-}")
  if [[ -z "${jobs[0]:-}" ]]; then jobs=(release sanitize lint); fi
  if [[ "${jobs[0]}" == all ]]; then jobs=(release sanitize tsan tidy lint); fi
  for j in "${jobs[@]}"; do "job_${j}"; done
  log "all jobs passed"
}

main "$@"
