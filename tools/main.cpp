/// opckit command-line entry point (logic lives in cli.cpp, tested
/// directly by tests/tools_cli_test.cpp).
#include <iostream>
#include <vector>

#include "cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return opckit::cli::run(args, std::cout, std::cerr);
}
