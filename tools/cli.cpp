#include "cli.h"

#include <csignal>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "core/opc.h"
#include "core/deck_io.h"
#include "drc/drc.h"
#include "layout/layout.h"
#include "lint/lint.h"
#include "litho/litho.h"
#include "mrc/mrc.h"
#include "pattern/pattern.h"
#include "service/client.h"
#include "service/server.h"
#include "service/socket.h"
#include "trace/trace.h"
#include "util/strings.h"
#include "util/table.h"

namespace opckit::cli {

namespace {

/// Minimal option parser: --key value pairs plus boolean --flags.
class Options {
 public:
  Options(const std::vector<std::string>& args, std::size_t begin) {
    for (std::size_t i = begin; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (!util::starts_with(a, "--")) {
        throw util::InputError("unexpected argument: " + a);
      }
      const std::string key = a.substr(2);
      if (i + 1 < args.size() && !util::starts_with(args[i + 1], "--")) {
        values_[key] = args[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) {
      throw util::InputError("missing required option --" + key);
    }
    return it->second;
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback
                                                     : it->second;
  }

  long long get_int(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) return fallback;
    try {
      std::size_t used = 0;
      const long long v = std::stoll(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(key);
      return v;
    } catch (const std::exception&) {
      throw util::InputError("--" + key + " expects an integer, got: " +
                             it->second);
    }
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) return fallback;
    try {
      std::size_t used = 0;
      const double v = std::stod(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument(key);
      return v;
    } catch (const std::exception&) {
      throw util::InputError("--" + key + " expects a number, got: " +
                             it->second);
    }
  }

 private:
  std::map<std::string, std::string> values_;
};

layout::Layer parse_layer(const std::string& spec) {
  const auto parts = util::split(spec, '/');
  if (parts.size() != 2) {
    throw util::InputError("layer must be LAYER/DATATYPE, got: " + spec);
  }
  return layout::Layer{static_cast<std::uint16_t>(std::stoi(parts[0])),
                       static_cast<std::uint16_t>(std::stoi(parts[1]))};
}

std::string pick_cell(const layout::Library& lib, const Options& opts) {
  if (opts.has("cell")) return opts.require("cell");
  const auto tops = lib.top_cells();
  if (tops.size() != 1) {
    throw util::InputError(
        "library has " + std::to_string(tops.size()) +
        " top cells; pick one with --cell");
  }
  return tops.front();
}

int cmd_stats(const Options& opts, std::ostream& out) {
  const layout::Library lib = layout::read_gdsii_file(opts.require("in"));
  lib.validate();
  const std::string top = pick_cell(lib, opts);
  const layout::HierarchyStats s = lib.stats(top);

  util::Table t({"metric", "value"});
  t.add_row(std::string("library"), lib.name());
  t.add_row(std::string("top_cell"), top);
  t.add_row(std::string("distinct_cells"), s.distinct_cells);
  t.add_row(std::string("placements"), static_cast<long long>(s.placements));
  t.add_row(std::string("stored_polygons"), s.local_polygons);
  t.add_row(std::string("stored_vertices"), s.local_vertices);
  t.add_row(std::string("flat_polygons"),
            static_cast<long long>(s.flat_polygons));
  t.add_row(std::string("flat_vertices"),
            static_cast<long long>(s.flat_vertices));
  t.add_row(std::string("hierarchy_depth"),
            static_cast<long long>(s.depth));
  t.add_row(std::string("hierarchy_leverage"), s.hierarchy_leverage());
  t.add_row(std::string("gdsii_bytes"), layout::gdsii_byte_size(lib));
  out << t.to_text("opckit stats");
  return 0;
}

int cmd_drc(const Options& opts, std::ostream& out) {
  const layout::Library lib = layout::read_gdsii_file(opts.require("in"));
  const std::string top = pick_cell(lib, opts);
  const layout::Layer layer = parse_layer(opts.require("layer"));
  const auto polys = lib.flatten(top, layer);
  const geom::Region region = geom::Region::from_polygons(polys);

  std::vector<drc::Rule> deck;
  const long long w = opts.get_int("min-width", 0);
  const long long s = opts.get_int("min-space", 0);
  if (w > 0) {
    deck.push_back({drc::RuleKind::kMinWidth,
                    "width." + std::to_string(w), w});
  }
  if (s > 0) {
    deck.push_back({drc::RuleKind::kMinSpace,
                    "space." + std::to_string(s), s});
  }
  if (deck.empty()) {
    throw util::InputError("give at least one of --min-width / --min-space");
  }
  const drc::DrcReport report = drc::run_deck(region, deck);

  util::Table t({"rule", "violations"});
  for (const auto& rule : deck) {
    t.add_row(rule.name, report.count(rule.name));
  }
  out << t.to_text("opckit drc (" + std::to_string(polys.size()) +
                   " polygons)");
  for (const auto& v : report.violations) {
    out << "  " << v.rule << " at " << v.bbox << '\n';
  }
  return report.clean() ? 0 : 1;
}

/// Build an MRC deck from CLI options: --deck FILE (the literal
/// "default" = the built-in 180nm mask deck) or one --min-* flag per
/// check kind. Empty when neither is given.
mrc::Deck mrc_deck_from_options(const Options& opts, const char* deck_key) {
  if (opts.has(deck_key)) {
    const std::string path = opts.require(deck_key);
    return path == "default" ? mrc::mask_deck_180()
                             : mrc::read_deck_file(path);
  }
  mrc::Deck deck;
  const auto add = [&](const char* key, mrc::CheckKind kind) {
    const long long v = opts.get_int(key, 0);
    if (v > 0) {
      deck.push_back({kind,
                      std::string("mrc.") + mrc::to_string(kind) + "." +
                          std::to_string(v),
                      static_cast<geom::Coord>(v)});
    }
  };
  add("min-width", mrc::CheckKind::kWidth);
  add("min-space", mrc::CheckKind::kSpace);
  add("min-edge", mrc::CheckKind::kEdgeLength);
  add("min-notch", mrc::CheckKind::kNotch);
  add("min-jog", mrc::CheckKind::kJog);
  add("min-corner", mrc::CheckKind::kCorner);
  add("min-area", mrc::CheckKind::kArea);
  return deck;
}

int cmd_mrc(const Options& opts, std::ostream& out) {
  const layout::Library lib = layout::read_gdsii_file(opts.require("in"));
  const std::string top = pick_cell(lib, opts);
  const layout::Layer layer = parse_layer(opts.require("layer"));
  const auto polys = lib.flatten(top, layer);
  const mrc::Deck deck = mrc_deck_from_options(opts, "deck");
  if (deck.empty()) {
    throw util::InputError(
        "give --deck FILE (or --deck default) or at least one --min-* "
        "rule");
  }
  const mrc::MrcReport report = mrc::check_polygons(polys, deck);

  util::Table t({"rule", "code", "violations"});
  for (const auto& check : deck) {
    t.add_row(check.name, std::string(mrc::lint_code(check.kind)),
              report.count(check.name));
  }
  out << t.to_text("opckit mrc (" + std::to_string(polys.size()) +
                   " polygons)");
  for (const auto& v : report.violations) {
    out << "  " << v.rule << ' ' << mrc::lint_code(v.kind) << " at "
        << v.marker << ": measured " << v.distance << " between " << v.e1
        << " and " << v.e2 << '\n';
  }
  // Exit like the flow gate: error-severity findings fail; jog
  // (MRC005) warnings alone are advisory.
  return mrc::to_lint_report(report).clean() ? 0 : 1;
}

/// Shared by cmd_opc (flow modes) and cmd_submit: parse --engine and the
/// --ilt-* knobs into the spec, with the same validation on both paths
/// so a daemon job and a local run of the same options share one spec.
void apply_engine_options(const Options& opts, opc::FlowSpec& spec) {
  const std::string engine = opts.get("engine", "model");
  if (engine == "model") {
    spec.engine = opc::CorrectionEngine::kModel;
  } else if (engine == "ilt") {
    spec.engine = opc::CorrectionEngine::kIlt;
  } else if (engine == "escalate") {
    spec.engine = opc::CorrectionEngine::kEscalate;
  } else {
    throw util::InputError("unknown --engine (use model, ilt or escalate): " +
                           engine);
  }
  if (spec.engine == opc::CorrectionEngine::kModel) {
    for (const char* key : {"ilt-iterations", "ilt-step", "ilt-steepness",
                            "ilt-edge-weight", "ilt-edge-band",
                            "ilt-escalate-epe"}) {
      if (opts.has(key)) {
        throw util::InputError(std::string("--") + key +
                               " requires --engine ilt|escalate");
      }
    }
    return;
  }
  spec.ilt.max_iterations =
      static_cast<int>(opts.get_int("ilt-iterations", spec.ilt.max_iterations));
  if (spec.ilt.max_iterations < 1) {
    throw util::InputError("--ilt-iterations must be >= 1");
  }
  spec.ilt.step = opts.get_double("ilt-step", spec.ilt.step);
  spec.ilt.sigmoid_steepness =
      opts.get_double("ilt-steepness", spec.ilt.sigmoid_steepness);
  spec.ilt.edge_weight =
      opts.get_double("ilt-edge-weight", spec.ilt.edge_weight);
  spec.ilt.edge_band_nm =
      opts.get_double("ilt-edge-band", spec.ilt.edge_band_nm);
  if (!(spec.ilt.step > 0.0) || !(spec.ilt.sigmoid_steepness > 0.0) ||
      !(spec.ilt.edge_weight >= 0.0) || !(spec.ilt.edge_band_nm >= 0.0)) {
    throw util::InputError("--ilt-step/--ilt-steepness must be > 0 and "
                           "--ilt-edge-weight/--ilt-edge-band >= 0");
  }
  if (opts.has("ilt-escalate-epe") &&
      spec.engine != opc::CorrectionEngine::kEscalate) {
    throw util::InputError("--ilt-escalate-epe requires --engine escalate");
  }
  spec.ilt_escalation_epe_nm =
      opts.get_double("ilt-escalate-epe", spec.ilt_escalation_epe_nm);
  if (!(spec.ilt_escalation_epe_nm >= 0.0)) {
    throw util::InputError("--ilt-escalate-epe must be >= 0");
  }
}

int cmd_opc(const Options& opts, std::ostream& out) {
  const std::string mode = opts.get("mode", "model");
  const std::string flow = opts.get("flow", "direct");
  if (flow != "direct" && flow != "flat" && flow != "cell") {
    throw util::InputError("unknown --flow (use direct, flat or cell): " +
                           flow);
  }
  if (flow != "direct" && mode != "model") {
    throw util::InputError("--flow flat|cell requires --mode model");
  }
  if (flow == "direct") {
    for (const char* key :
         {"store", "resume", "stats", "stats-out", "trace", "mrc-deck",
          "mrc-action", "library", "library-budget", "engine",
          "ilt-iterations", "ilt-step", "ilt-steepness", "ilt-edge-weight",
          "ilt-edge-band", "ilt-escalate-epe"}) {
      if (opts.has(key)) {
        throw util::InputError(std::string("--") + key +
                               " requires --flow flat|cell");
      }
    }
  }
  if (opts.has("resume") && !opts.has("store")) {
    throw util::InputError("--resume requires --store FILE");
  }
  if (opts.has("library-budget") && !opts.has("library")) {
    throw util::InputError("--library-budget requires --library FILE");
  }
  if (opts.has("stats") && opts.get("stats", "") != "json") {
    throw util::InputError("unknown --stats format (use json): " +
                           opts.get("stats", ""));
  }
  const std::string mrc_action = opts.get("mrc-action", "fail");
  if (mrc_action != "fail" && mrc_action != "warn") {
    throw util::InputError("unknown --mrc-action (use fail or warn): " +
                           mrc_action);
  }
  if (opts.has("mrc-action") && !opts.has("mrc-deck")) {
    throw util::InputError("--mrc-action requires --mrc-deck FILE|default");
  }
  const std::string imaging = opts.get("imaging", "abbe");
  if (imaging != "abbe" && imaging != "socs") {
    throw util::InputError("unknown --imaging (use abbe or socs): " +
                           imaging);
  }
  if (mode == "rule" && (opts.has("imaging") || opts.has("socs-epsilon"))) {
    throw util::InputError("--imaging/--socs-epsilon require --mode model");
  }
  // Applied before threshold calibration so the calibrated resist
  // threshold and the production runs use the same imaging engine.
  const auto apply_imaging = [&](litho::SimSpec& sim) {
    sim.imaging = imaging == "socs" ? litho::ImagingMode::kSocs
                                    : litho::ImagingMode::kAbbe;
    sim.socs_epsilon = opts.get_double("socs-epsilon", sim.socs_epsilon);
  };

  layout::Library lib = layout::read_gdsii_file(opts.require("in"));
  const std::string top = pick_cell(lib, opts);
  const layout::Layer in_layer = parse_layer(opts.require("layer"));
  const layout::Layer out_layer{in_layer.layer,
                                static_cast<std::uint16_t>(
                                    in_layer.datatype + 1)};

  // The full-chip flows (--flow flat|cell): placement-aware correction on
  // the parallel tiled driver, with the pattern-reuse cache on unless
  // --no-cache. run_*_opc runs its own pre-flight gate (library + model
  // parameters), so no separate lint pass is needed here.
  if (flow != "direct") {
    opc::FlowSpec spec;
    apply_imaging(spec.sim);
    litho::calibrate_threshold(
        spec.sim, static_cast<geom::Coord>(opts.get_int("anchor-cd", 180)),
        static_cast<geom::Coord>(opts.get_int("anchor-pitch", 360)));
    spec.input_layer = in_layer;
    spec.output_layer = out_layer;
    spec.jobs = static_cast<int>(opts.get_int("jobs", 1));
    spec.cache = !opts.has("no-cache");
    apply_engine_options(opts, spec);
    if (opts.has("store")) spec.store_path = opts.require("store");
    spec.resume = opts.has("resume");
    if (opts.has("library")) {
      spec.library_path = opts.require("library");
      spec.library_budget = opts.get_double("library-budget", 0.0);
      if (!(spec.library_budget >= 0.0)) {
        throw util::InputError("--library-budget must be >= 0");
      }
    }
    if (opts.has("mrc-deck")) {
      const std::string deck = opts.require("mrc-deck");
      spec.mrc_deck = deck == "default" ? mrc::mask_deck_180()
                                        : mrc::read_deck_file(deck);
      spec.mrc_action = mrc_action == "warn" ? mrc::Action::kWarn
                                             : mrc::Action::kFail;
    }
    const bool tracing = opts.has("trace");
    if (tracing) trace::Tracer::instance().start();
    opc::FlowStats stats;
    bool mrc_failed = false;
    std::string mrc_failure;
    try {
      stats = flow == "flat" ? opc::run_flat_opc(lib, top, spec)
                             : opc::run_cell_opc(lib, top, spec);
    } catch (const opc::MrcGateError& e) {
      // The gate rejects the mask AFTER the output layer is written, so
      // the normal reporting/output path below still runs — only the
      // exit code and the violation listing change.
      mrc_failed = true;
      mrc_failure = e.what();
      stats = e.stats();
    } catch (...) {
      // Leave the process-wide tracer off for whoever catches this.
      if (tracing) trace::Tracer::instance().stop();
      throw;
    }
    if (tracing) {
      trace::Tracer::instance().stop();
      trace::Tracer::instance().write_json(opts.require("trace"));
    }
    if (opts.has("stats-out")) {
      std::ofstream stats_file(opts.require("stats-out"));
      if (!stats_file) {
        throw util::InputError("cannot write --stats-out file: " +
                               opts.require("stats-out"));
      }
      stats_file << opc::render_stats_json(stats) << '\n';
    }
    if (opts.has("stats")) {
      // Machine-readable mode: the JSON blob is the whole report.
      out << opc::render_stats_json(stats) << '\n';
    } else {
      out << flow << " flow: " << stats.opc_runs << " OPC runs, "
          << stats.simulations << " simulations, "
          << stats.corrected_polygons << " corrected polygons, "
          << (stats.all_converged ? "converged" : "residual error left")
          << '\n';
      if (spec.cache) {
        out << "cache: " << stats.cache_hits << " hit(s), "
            << stats.cache_misses << " miss(es), " << stats.cache_conflicts
            << " conflict(s)\n";
      }
      if (!spec.store_path.empty()) {
        out << "store: " << stats.store_hits << " tile(s) replayed from "
            << stats.store_entries_loaded << " loaded entr(ies), "
            << stats.store_entries_appended << " appended"
            << (stats.store_tail_recovered ? ", torn tail recovered" : "")
            << '\n';
      }
      if (!spec.library_path.empty()) {
        out << "library: " << stats.library_exact_hits
            << " exact replay(s), " << stats.library_near_hits
            << " warm start(s) from " << stats.library_entries_loaded
            << " loaded entr(ies), " << stats.library_entries_appended
            << " appended"
            << (stats.library_tail_recovered ? ", torn tail recovered" : "")
            << '\n';
      }
      if (stats.mrc_checked) {
        out << "mrc: " << stats.mrc.violations.size()
            << " violation(s) across " << stats.tile_mrc_violations.size()
            << " checked tile(s)"
            << (spec.mrc_action == mrc::Action::kWarn ? " (warn)" : "")
            << '\n';
      }
      out << "wall clock: " << stats.wall_ms << " ms ("
          << (spec.jobs == 0 ? std::string("all")
                             : std::to_string(spec.jobs))
          << " job(s))\n";
    }
    if (tracing && !opts.has("stats")) {
      out << "wrote trace to " << opts.require("trace")
          << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
    }
    layout::write_gdsii_file(lib, opts.require("out"));
    if (!opts.has("stats")) {
      out << "wrote " << opts.require("out") << " (corrected shapes on "
          << out_layer << ")\n";
    }
    if (mrc_failed) {
      if (!opts.has("stats")) {
        out << lint::render_text(mrc::to_lint_report(stats.mrc),
                                 "mrc signoff");
        out << "error: " << mrc_failure << '\n';
      }
      return 1;
    }
    return 0;
  }

  // Direct mode corrects the flattened layer as one window. It bypasses
  // the flow driver, so it must refuse invalid inputs itself (a reduced
  // gate: library structure/geometry only) instead of letting them die on
  // an internal invariant check mid-correction.
  const lint::LintReport report = lint::lint_library(lib);
  if (!report.clean()) {
    throw util::InputError("pre-flight lint failed (run `opckit lint`):\n" +
                           lint::render_text(report, "opc pre-flight"));
  }

  const auto polys = lib.flatten(top, in_layer);
  if (polys.empty()) {
    throw util::InputError("no shapes on the input layer");
  }
  geom::Rect window = geom::Rect::empty();
  for (const auto& p : polys) window = window.united(p.bbox());

  std::vector<geom::Polygon> corrected;
  if (mode == "rule") {
    const opc::RuleDeck deck =
        opts.has("deck") ? opc::read_rule_deck_file(opts.require("deck"))
                         : opc::default_rule_deck_180();
    corrected = opc::apply_rule_opc(polys, deck).corrected;
    out << "rule OPC: " << corrected.size() << " corrected polygons\n";
  } else if (mode == "model") {
    litho::SimSpec process;
    apply_imaging(process);
    const auto anchor_cd =
        static_cast<geom::Coord>(opts.get_int("anchor-cd", 180));
    const auto anchor_pitch =
        static_cast<geom::Coord>(opts.get_int("anchor-pitch", 360));
    litho::calibrate_threshold(process, anchor_cd, anchor_pitch);
    opc::ModelOpcSpec spec;
    const auto r = opc::run_model_opc(polys, process, window, spec);
    corrected = r.corrected;
    out << "model OPC: " << r.history.size() << " iterations, final RMS "
        << r.final_iteration().rms_epe_nm << " nm, "
        << (r.converged ? "converged" : "residual error left") << '\n';
  } else {
    throw util::InputError("unknown --mode (use rule or model): " + mode);
  }

  if (opts.has("srafs")) {
    const auto srafs = opc::insert_srafs(corrected, {});
    out << "SRAF: " << srafs.kept << " bars inserted\n";
    corrected.insert(corrected.end(), srafs.bars.begin(), srafs.bars.end());
  }

  layout::Cell& cell = lib.cell(top);
  cell.clear_layer(out_layer);
  for (const auto& p : corrected) cell.add_polygon(out_layer, p);
  layout::write_gdsii_file(lib, opts.require("out"));
  out << "wrote " << opts.require("out") << " (corrected shapes on "
      << out_layer << ")\n";
  return 0;
}

int cmd_lint(const Options& opts, std::ostream& out) {
  if (opts.has("codes")) {
    const std::string format = opts.get("format", "text");
    if (format == "md") {
      // Source of truth for docs/LINT_CODES.md (tools/ci.sh drift check).
      out << lint::render_codes_markdown();
      return 0;
    }
    if (format != "text") {
      throw util::InputError("unknown --format for --codes (use text or md): " +
                             format);
    }
    util::Table t({"code", "severity", "title", "remedy"});
    for (const lint::CodeInfo& info : lint::all_codes()) {
      t.add_row(std::string(info.code),
                std::string(lint::to_string(info.default_severity)),
                std::string(info.title), std::string(info.remedy));
    }
    out << t.to_text("opclint diagnostic codes");
    return 0;
  }

  lint::LintOptions options;
  options.grid_nm = static_cast<geom::Coord>(opts.get_int("grid", 1));
  options.min_feature_nm =
      static_cast<geom::Coord>(opts.get_int("min-feature", 180));

  lint::LintReport report;
  std::string scope;
  if (opts.has("in")) {
    const layout::Library lib = layout::read_gdsii_file(opts.require("in"));
    report.merge(lint::lint_library(lib, options));
    scope = opts.require("in");
  }
  if (opts.has("deck")) {
    const opc::RuleDeck deck = opc::read_rule_deck_file(opts.require("deck"));
    report.merge(lint::lint_rule_deck(deck, options));
    scope += (scope.empty() ? "" : " + ") + opts.require("deck");
  }
  if (opts.has("model")) {
    litho::SimSpec sim;
    sim.optics.na = opts.get_double("na", sim.optics.na);
    sim.optics.wavelength_nm =
        opts.get_double("wavelength", sim.optics.wavelength_nm);
    sim.optics.source.sigma_outer =
        opts.get_double("sigma-outer", sim.optics.source.sigma_outer);
    sim.optics.source.sigma_inner =
        opts.get_double("sigma-inner", sim.optics.source.sigma_inner);
    sim.pixel_nm = opts.get_double("pixel", sim.pixel_nm);
    report.merge(lint::lint_sim_spec(sim, options));
    report.merge(lint::lint_opc_spec(opc::ModelOpcSpec{}, options));
    scope += (scope.empty() ? "" : " + ") + std::string("model");
  }
  if (scope.empty()) {
    throw util::InputError(
        "nothing to lint: give --in and/or --deck and/or --model "
        "(or --codes to list diagnostics)");
  }

  const std::string format = opts.get("format", "text");
  if (format == "csv") {
    out << lint::render_csv(report);
  } else if (format == "text") {
    out << lint::render_text(report, "opckit lint (" + scope + ")");
  } else {
    throw util::InputError("unknown --format (use text or csv): " + format);
  }
  return report.clean() ? 0 : 1;
}

int cmd_patterns(const Options& opts, std::ostream& out) {
  const layout::Library lib = layout::read_gdsii_file(opts.require("in"));
  const std::string top = pick_cell(lib, opts);
  const layout::Layer layer = parse_layer(opts.require("layer"));
  const auto polys = lib.flatten(top, layer);

  pat::WindowSpec spec;
  spec.radius = static_cast<geom::Coord>(opts.get_int("radius", 400));
  const pat::PatternCatalog cat = pat::build_catalog(polys, spec);
  const auto top_k = static_cast<std::size_t>(opts.get_int("top", 10));

  util::Table t({"rank", "count", "share_pct", "example_anchor"});
  const auto ranked = cat.ranked();
  for (std::size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
    std::ostringstream anchor;
    anchor << ranked[i].first_anchor;
    t.add_row(i + 1, ranked[i].count,
              100.0 * static_cast<double>(ranked[i].count) /
                  static_cast<double>(cat.total()),
              anchor.str());
  }
  out << t.to_text("opckit patterns (radius " +
                   std::to_string(spec.radius) + "nm)");
  out << cat.classes() << " classes over " << cat.total()
      << " windows; 90% coverage needs " << cat.classes_for_coverage(0.9)
      << " classes\n";
  return 0;
}

/// The observability registry: every metric this binary can emit, from
/// the same compiled table the instruments read (trace/metrics.h). The
/// md rendering IS docs/METRICS.md — tools/ci.sh diffs the two so the
/// doc cannot drift from the code.
int cmd_metrics(const Options& opts, std::ostream& out) {
  const std::string format = opts.get("format", "text");
  if (format == "md") {
    out << trace::render_metrics_markdown();
    return 0;
  }
  if (format != "text") {
    throw util::InputError("unknown --format (use text or md): " + format);
  }
  util::Table t({"metric", "kind", "meaning"});
  for (const trace::MetricInfo& info : trace::all_metrics()) {
    t.add_row(std::string(info.name), std::string(to_string(info.kind)),
              std::string(info.help));
  }
  out << t.to_text("opckit metrics");
  return 0;
}

// ---- service daemon commands (serve / submit / shutdown) ---------------

/// SIGTERM/SIGINT flag for `opckit serve`. sig_atomic_t + no locking is
/// all a signal handler may touch; the serve loop polls it between
/// bounded waits.
volatile std::sig_atomic_t g_serve_signal = 0;

void serve_signal_handler(int) { g_serve_signal = 1; }

/// Shared endpoint selection for the service commands: --socket PATH
/// (unix-domain) or --tcp PORT (loopback).
std::unique_ptr<svc::FdStream> connect_endpoint(const Options& opts) {
  if (opts.has("socket")) return svc::connect_unix(opts.require("socket"));
  if (opts.has("tcp")) {
    return svc::connect_tcp(
        static_cast<std::uint16_t>(opts.get_int("tcp", 0)));
  }
  throw util::InputError("give --socket PATH or --tcp PORT");
}

int cmd_serve(const Options& opts, std::ostream& out) {
  svc::ServerOptions sopts;
  if (opts.has("socket")) {
    sopts.unix_path = opts.require("socket");
  } else if (opts.has("tcp")) {
    sopts.use_tcp = true;
    sopts.tcp_port = static_cast<std::uint16_t>(opts.get_int("tcp", 0));
  } else {
    throw util::InputError("give --socket PATH or --tcp PORT");
  }
  sopts.workers = static_cast<int>(opts.get_int("jobs", 0));
  sopts.max_queue =
      static_cast<std::size_t>(opts.get_int("max-queue", 64));
  sopts.max_inflight =
      static_cast<std::size_t>(opts.get_int("max-inflight", 0));
  sopts.library.dir = opts.get("library", "");

  svc::Server server(std::move(sopts));
  server.start();
  if (opts.has("tcp")) {
    out << "opcd listening on 127.0.0.1:" << server.tcp_port() << '\n';
  } else {
    out << "opcd listening on " << opts.require("socket") << '\n';
  }
  out.flush();

  g_serve_signal = 0;
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);
  // The daemon loop: wake every 200 ms to poll the signal flag; a
  // protocol kShutdown wakes the wait directly. Either way the daemon
  // drains — in-flight jobs finish, queued jobs get typed rejections.
  for (;;) {
    if (g_serve_signal) {
      server.request_shutdown(svc::ShutdownMode::kDrain);
      break;
    }
    if (server.wait_shutdown_requested(200)) break;
  }
  server.stop();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  const auto snapshot = trace::metrics().snapshot();
  out << "opcd drained: " << snapshot.counters.at("svc.jobs_completed")
      << " completed, " << snapshot.counters.at("svc.jobs_failed")
      << " failed, " << snapshot.counters.at("svc.jobs_rejected")
      << " rejected\n";
  return 0;
}

int cmd_submit(const Options& opts, std::ostream& out) {
  for (const char* key : {"store", "resume", "library"}) {
    if (opts.has(key)) {
      throw util::InputError(
          std::string("--") + key +
          " is not a submit option: the daemon owns durability through "
          "its --library directory");
    }
  }
  const std::string flow = opts.get("flow", "flat");
  if (flow != "flat" && flow != "cell") {
    throw util::InputError("unknown --flow (use flat or cell): " + flow);
  }
  if (opts.has("stats") && opts.get("stats", "") != "json") {
    throw util::InputError("unknown --stats format (use json): " +
                           opts.get("stats", ""));
  }
  const std::string imaging = opts.get("imaging", "abbe");
  if (imaging != "abbe" && imaging != "socs") {
    throw util::InputError("unknown --imaging (use abbe or socs): " +
                           imaging);
  }
  const std::string mrc_action = opts.get("mrc-action", "fail");
  if (mrc_action != "fail" && mrc_action != "warn") {
    throw util::InputError("unknown --mrc-action (use fail or warn): " +
                           mrc_action);
  }

  // Build the job exactly as cmd_opc --flow flat|cell would, so a daemon
  // run and a single-process run of the same options share one spec —
  // and therefore one fingerprint and byte-identical output.
  svc::SubmitMsg msg;
  msg.priority = static_cast<std::int32_t>(opts.get_int("priority", 0));
  msg.flow = flow == "cell" ? 1 : 0;
  msg.in_path = opts.require("in");
  msg.out_path = opts.require("out");
  if (opts.has("cell")) msg.top = opts.require("cell");

  opc::FlowSpec& spec = msg.spec;
  spec.sim.imaging = imaging == "socs" ? litho::ImagingMode::kSocs
                                       : litho::ImagingMode::kAbbe;
  spec.sim.socs_epsilon =
      opts.get_double("socs-epsilon", spec.sim.socs_epsilon);
  litho::calibrate_threshold(
      spec.sim, static_cast<geom::Coord>(opts.get_int("anchor-cd", 180)),
      static_cast<geom::Coord>(opts.get_int("anchor-pitch", 360)));
  const layout::Layer in_layer = parse_layer(opts.require("layer"));
  spec.input_layer = in_layer;
  spec.output_layer = layout::Layer{
      in_layer.layer, static_cast<std::uint16_t>(in_layer.datatype + 1)};
  spec.jobs = static_cast<int>(opts.get_int("jobs", 1));
  spec.cache = !opts.has("no-cache");
  apply_engine_options(opts, spec);
  // The budget rides with the job (it is fingerprint-mixed, so it keys
  // the daemon's shelf); the library file itself is daemon-owned.
  spec.library_budget = opts.get_double("library-budget", 0.0);
  if (!(spec.library_budget >= 0.0)) {
    throw util::InputError("--library-budget must be >= 0");
  }
  if (opts.has("mrc-deck")) {
    const std::string deck = opts.require("mrc-deck");
    spec.mrc_deck = deck == "default" ? mrc::mask_deck_180()
                                      : mrc::read_deck_file(deck);
    spec.mrc_action =
        mrc_action == "warn" ? mrc::Action::kWarn : mrc::Action::kFail;
  }

  svc::Client client(connect_endpoint(opts));
  const bool show_progress = opts.has("progress");
  const svc::Client::Outcome outcome =
      client.run_job(msg, [&](const svc::ProgressMsg& p) {
        if (!show_progress) return;
        out << "job " << p.job_id << ": " << p.phase << " pass " << p.pass
            << " (" << p.tiles_done << '/' << p.tiles_total << ")\n";
        out.flush();
      });

  if (!outcome.accepted) {
    out << "rejected (" << svc::to_string(outcome.rejected.reason)
        << "): " << outcome.rejected.message << '\n';
    return 1;
  }
  if (!outcome.result.ok) {
    out << "job " << outcome.ack.job_id
        << " failed: " << outcome.result.payload << '\n';
    return 1;
  }
  if (opts.has("stats")) {
    out << outcome.result.payload << '\n';
  } else {
    out << "job " << outcome.ack.job_id << " done; daemon wrote "
        << msg.out_path << '\n';
  }
  return 0;
}

int cmd_shutdown(const Options& opts, std::ostream& out) {
  svc::Client client(connect_endpoint(opts));
  const svc::ShutdownMode mode = opts.has("abort")
                                     ? svc::ShutdownMode::kAbort
                                     : svc::ShutdownMode::kDrain;
  client.shutdown_server(mode);
  out << "opcd acknowledged "
      << (mode == svc::ShutdownMode::kAbort ? "abort" : "drain")
      << " shutdown\n";
  return 0;
}

void usage(std::ostream& err) {
  err << "usage: opckit "
         "<stats|drc|mrc|lint|opc|patterns|metrics|serve|submit|shutdown> "
         "[options]\n"
         "  stats     --in a.gds [--cell NAME]\n"
         "  drc       --in a.gds --layer L/D --min-width N --min-space N\n"
         "  mrc       --in a.gds --layer L/D [--deck FILE|default]\n"
         "            [--min-width N] [--min-space N] [--min-edge N]\n"
         "            [--min-notch N] [--min-jog N] [--min-corner N]\n"
         "            [--min-area N]\n"
         "            (scanline mask-rule signoff with edge witnesses;\n"
         "             exit 1 on error-severity violations)\n"
         "  lint      [--in a.gds] [--deck FILE] [--model] [--grid N]\n"
         "            [--min-feature N] [--format text|csv]\n"
         "            [--codes [--format text|md]]\n"
         "            [--na F] [--wavelength F] [--sigma-outer F]\n"
         "            [--sigma-inner F] [--pixel F]\n"
         "  opc       --in a.gds --out b.gds --layer L/D [--mode rule|model]\n"
         "            [--flow direct|flat|cell] [--jobs N] [--no-cache]\n"
         "            [--store f.ocs [--resume]] (persistent correction\n"
         "             store: crash-safe checkpointing + incremental ECO)\n"
         "            [--library f.ocl [--library-budget F]]\n"
         "            (cross-run pattern library: exact classes replay,\n"
         "             budget > 0 warm-starts near matches — fewer\n"
         "             iterations, same EPE tolerance)\n"
         "            [--stats json] [--stats-out FILE] [--trace FILE]\n"
         "            (--trace writes a chrome://tracing span timeline\n"
         "             of the flow phases and per-tile work)\n"
         "            [--imaging abbe|socs] [--socs-epsilon F]\n"
         "            (socs: SOCS kernel imaging — a few FFTs per image\n"
         "             instead of one per source point, within ε)\n"
         "            [--engine model|ilt|escalate]\n"
         "            [--ilt-iterations N] [--ilt-step F]\n"
         "            [--ilt-steepness F] [--ilt-edge-weight F]\n"
         "            [--ilt-edge-band F] [--ilt-escalate-epe F]\n"
         "            (pixel-based inverse lithography: ilt re-synthesizes\n"
         "             every tile, escalate runs model OPC first and\n"
         "             re-solves only tiles whose residual EPE exceeds\n"
         "             --ilt-escalate-epe; output is Manhattan-legalized\n"
         "             so MRC signoff still applies)\n"
         "            [--mrc-deck FILE|default] [--mrc-action fail|warn]\n"
         "            (post-OPC mask-rule signoff gate; fail = exit 1\n"
         "             with the violation listing, output still written)\n"
         "            [--deck FILE]\n"
         "            [--srafs] [--anchor-cd N] [--anchor-pitch N]\n"
         "            (inputs are lint pre-flighted; errors abort, see\n"
         "             `opckit lint --codes`)\n"
         "  patterns  --in a.gds --layer L/D [--radius N] [--top K]\n"
         "  metrics   [--format text|md] (the compiled metric registry)\n"
         "  serve     --socket PATH | --tcp PORT [--jobs N] [--max-queue N]\n"
         "            [--max-inflight N] [--library DIR]\n"
         "            (opcd: long-running OPC daemon; keeps kernel/plan/\n"
         "             correction caches hot across jobs, drains on\n"
         "             SIGTERM. --library makes solved patterns durable\n"
         "             and crash-resumable)\n"
         "  submit    --socket PATH | --tcp PORT --in a.gds --out b.gds\n"
         "            --layer L/D [--flow flat|cell] [--priority N]\n"
         "            [--jobs N] [--no-cache] [--imaging abbe|socs]\n"
         "            [--socs-epsilon F] [--mrc-deck FILE|default]\n"
         "            [--mrc-action fail|warn] [--anchor-cd N]\n"
         "            [--anchor-pitch N] [--stats json] [--progress]\n"
         "            [--library-budget F] (near-match warm starts from\n"
         "             the daemon's shared pattern library)\n"
         "            [--engine model|ilt|escalate] [--ilt-iterations N]\n"
         "            [--ilt-step F] [--ilt-steepness F]\n"
         "            [--ilt-edge-weight F] [--ilt-edge-band F]\n"
         "            [--ilt-escalate-epe F]\n"
         "            (paths are daemon-local; output is byte-identical\n"
         "             to the same `opckit opc` run)\n"
         "  shutdown  --socket PATH | --tcp PORT [--abort]\n"
         "            (drain: in-flight jobs finish, queued jobs are\n"
         "             rejected; --abort cancels at phase boundaries)\n";
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) {
    usage(err);
    return 2;
  }
  try {
    const Options opts(args, 1);
    const std::string& cmd = args[0];
    if (cmd == "stats") return cmd_stats(opts, out);
    if (cmd == "drc") return cmd_drc(opts, out);
    if (cmd == "mrc") return cmd_mrc(opts, out);
    if (cmd == "lint") return cmd_lint(opts, out);
    if (cmd == "opc") return cmd_opc(opts, out);
    if (cmd == "patterns") return cmd_patterns(opts, out);
    if (cmd == "metrics") return cmd_metrics(opts, out);
    if (cmd == "serve") return cmd_serve(opts, out);
    if (cmd == "submit") return cmd_submit(opts, out);
    if (cmd == "shutdown") return cmd_shutdown(opts, out);
    err << "unknown command: " << cmd << '\n';
    usage(err);
    return 2;
  } catch (const util::InputError& e) {
    err << "error: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    err << "fatal: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace opckit::cli
