/// Full mask data-prep flow on a standard-cell-like block — the pipeline
/// the paper describes a design flowing through once OPC is adopted:
///
///   drawn layer -> (rule OPC | model OPC) -> SRAF insertion -> ORC
///   verification -> MRC (mask rules) -> GDSII tape-out + data-volume
///   report.
#include <iostream>

#include "core/opc.h"
#include "drc/drc.h"
#include "layout/layout.h"
#include "litho/litho.h"
#include "util/table.h"

int main() {
  using namespace opckit;

  litho::SimSpec process;
  litho::calibrate_threshold(process, 180, 360);

  // The design: a standard-cell-like poly layer.
  layout::Library lib("full_flow");
  layout::make_logic_cell(lib, "nand_like", layout::layers::kPoly);
  const auto shapes = lib.at("nand_like").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window =
      lib.at("nand_like").local_bbox().inflated(100);

  // --- Correction, both generations. ---
  const opc::RuleOpcResult rule =
      opc::apply_rule_opc(target, opc::default_rule_deck_180());
  opc::ModelOpcSpec mspec;
  const opc::ModelOpcResult model =
      opc::run_model_opc(target, process, window, mspec);
  std::cout << "rule OPC: " << rule.biased_edges << " biased edges, "
            << rule.line_ends << " line ends, " << rule.serifs
            << " serifs\n";
  std::cout << "model OPC: " << model.fragments.size() << " fragments, "
            << model.history.size() << " iterations, final RMS EPE "
            << model.final_iteration().rms_epe_nm << " nm\n";

  // --- Assist features on the model mask. ---
  const opc::SrafResult srafs = opc::insert_srafs(model.corrected, {});
  std::cout << "SRAF: " << srafs.kept << " scatter bars kept of "
            << srafs.offered << " offered\n";

  // --- Verification (ORC): does the mask print the design? ---
  opc::OrcSpec orc_spec;
  const opc::OrcReport orc = opc::run_orc(target, model.corrected,
                                          srafs.bars, process, window,
                                          orc_spec);
  std::cout << "ORC: " << orc.violations.size() << " violations over "
            << orc.sites << " sites x 3 conditions (EPE "
            << orc.count(opc::OrcViolationKind::kEpe) << ", pinch "
            << orc.count(opc::OrcViolationKind::kPinch) << ", bridge "
            << orc.count(opc::OrcViolationKind::kBridge) << ", sraf-print "
            << orc.count(opc::OrcViolationKind::kSrafPrint) << ")\n";

  // --- MRC: is the mask manufacturable? ---
  std::vector<geom::Polygon> full_mask = model.corrected;
  full_mask.insert(full_mask.end(), srafs.bars.begin(), srafs.bars.end());
  const drc::DrcReport mrc = drc::run_deck(
      geom::Region::from_polygons(full_mask), drc::mask_rule_deck_180());
  std::cout << "MRC: " << mrc.violations.size() << " mask-rule violations\n";

  // --- Tape-out + the data-volume story. ---
  layout::Cell& cell = lib.cell("nand_like");
  for (const auto& p : model.corrected) {
    cell.add_polygon(layout::layers::kPolyOpc, p);
  }
  for (const auto& p : srafs.bars) {
    cell.add_polygon(layout::layers::kPolySraf, p);
  }
  layout::write_gdsii_file(lib, "full_flow_out.gds");

  const opc::MaskDataStats before = opc::measure_mask_data(target);
  const opc::MaskDataStats after_rule = opc::measure_mask_data(rule.corrected);
  const opc::MaskDataStats after_model = opc::measure_mask_data(full_mask);
  util::Table vol({"stage", "polygons", "vertices", "gdsii_bytes"});
  vol.add_row(std::string("drawn"), before.polygons, before.vertices,
              before.gdsii_bytes);
  vol.add_row(std::string("rule_opc"), after_rule.polygons,
              after_rule.vertices, after_rule.gdsii_bytes);
  vol.add_row(std::string("model_opc+sraf"), after_model.polygons,
              after_model.vertices, after_model.gdsii_bytes);
  std::cout << vol.to_text("mask data volume") << "wrote full_flow_out.gds\n";
  return 0;
}
