/// Quickstart: correct one isolated line with model-based OPC and watch
/// the printed CD land on target.
///
///   1. describe the process (optics + resist) and calibrate it,
///   2. draw a target,
///   3. run model-based OPC,
///   4. compare printed CDs before and after,
///   5. write the corrected mask to GDSII.
#include <iostream>

#include "core/opc.h"
#include "layout/layout.h"
#include "litho/litho.h"

int main() {
  using namespace opckit;

  // 1. Process: KrF scanner, annular source, threshold resist. The
  //    calibration anchors the resist threshold so dense 180nm lines
  //    print at 180nm.
  litho::SimSpec process;
  process.optics.wavelength_nm = 248.0;
  process.optics.na = 0.68;
  process.optics.source.shape = litho::SourceShape::kAnnular;
  process.optics.source.sigma_outer = 0.8;
  process.optics.source.sigma_inner = 0.5;
  const double threshold = litho::calibrate_threshold(process, 180, 360);
  std::cout << "calibrated resist threshold: " << threshold << "\n";

  // 2. Target: one isolated 180nm line. Isolated features underprint —
  //    that is the proximity effect OPC exists to fix.
  const std::vector<geom::Polygon> target{
      geom::Polygon{geom::Rect(-90, -2000, 90, 2000)}};
  const geom::Rect window(-500, -1000, 500, 1000);

  // 3. Model-based OPC: fragment the edges, simulate, move, repeat.
  opc::ModelOpcSpec opc_spec;
  const opc::ModelOpcResult result =
      opc::run_model_opc(target, process, window, opc_spec);
  std::cout << "OPC iterations: " << result.history.size()
            << ", final RMS EPE: " << result.final_iteration().rms_epe_nm
            << " nm\n";

  // 4. Before/after comparison at the line center.
  const litho::Simulator sim(process, window);
  const auto cd = [&](const std::vector<geom::Polygon>& mask) {
    const litho::Image latent = sim.latent(mask);
    return litho::printed_cd(latent, {0, 0}, {1, 0}, 700.0,
                             sim.threshold());
  };
  std::cout << "printed CD without OPC: " << cd(target) << " nm (target 180)\n";
  std::cout << "printed CD with OPC:    " << cd(result.corrected)
            << " nm (target 180)\n";

  // 5. Persist the corrected mask next to the drawn target.
  layout::Library lib("quickstart");
  layout::Cell& cell = lib.cell("line");
  for (const auto& p : target) cell.add_polygon(layout::layers::kPoly, p);
  for (const auto& p : result.corrected) {
    cell.add_polygon(layout::layers::kPolyOpc, p);
  }
  layout::write_gdsii_file(lib, "quickstart_out.gds");
  std::cout << "wrote quickstart_out.gds ("
            << layout::gdsii_byte_size(lib) << " bytes)\n";
  return 0;
}
