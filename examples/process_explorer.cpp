/// Process-window explorer: sweep focus and dose for a feature and print
/// the exposure-defocus window — the lithographer's view behind every
/// OPC decision (and the data behind experiment F5).
#include <iostream>
#include <map>

#include "litho/litho.h"
#include "util/table.h"

int main() {
  using namespace opckit;

  litho::SimSpec process;
  litho::calibrate_threshold(process, 180, 360);

  // Feature under study: semi-dense 180nm lines at 600nm pitch — the
  // "forbidden pitch" of this process (see F1).
  std::vector<geom::Polygon> mask;
  for (int i = -3; i <= 3; ++i) {
    mask.emplace_back(geom::Rect(i * 600 - 90, -2000, i * 600 + 90, 2000));
  }
  const geom::Rect window(-1200, -1000, 1200, 1000);
  const litho::Simulator sim(process, window);

  // CD matrix over focus and dose (one imaging run per focus; dose is a
  // threshold scale).
  const std::vector<double> defocus{0, 100, 200, 300, 400};
  const std::vector<double> doses{0.90, 0.95, 1.00, 1.05, 1.10};
  std::map<double, litho::Image> latents;
  util::Table matrix({"defocus_nm", "dose_0.90", "dose_0.95", "dose_1.00",
                      "dose_1.05", "dose_1.10"});
  for (double z : defocus) {
    latents.emplace(z, sim.latent(mask, z));
    matrix.start_row();
    matrix.add_cell(z, 0);
    for (double dose : doses) {
      matrix.add_cell(litho::printed_cd(latents.at(z), {0, 0}, {1, 0},
                                        600.0, sim.threshold(dose)));
    }
  }
  std::cout << matrix.to_text("CD (nm) through focus and dose");

  const auto window_el = litho::exposure_defocus_window(
      [&](double z, double dose) {
        return litho::printed_cd(latents.at(z), {0, 0}, {1, 0}, 600.0,
                                 sim.threshold(dose));
      },
      defocus, 180.0, 0.10);
  util::Table el({"defocus_nm", "dose_lo", "dose_hi", "latitude_pct"});
  for (const auto& w : window_el) {
    el.add_row(w.defocus_nm, w.dose_lo, w.dose_hi, w.latitude_pct);
  }
  std::cout << el.to_text("exposure latitude (CD 180 +/- 10%)");
  std::cout << "DOF at 8% latitude: "
            << litho::depth_of_focus(window_el, 8.0) << " nm\n";
  return 0;
}
