/// Timing/leakage impact of OPC — post-OPC extraction closing the loop
/// back to circuit design: simulate the printed gates of a cell, slice
/// them into width segments, collapse each gate to drive- and
/// leakage-equivalent channel lengths, and compare the resulting delay
/// and off-current factors with and without correction.
#include <cmath>
#include <iostream>

#include "core/opc.h"
#include "layout/layout.h"
#include "litho/litho.h"
#include "util/table.h"

int main() {
  using namespace opckit;

  litho::SimSpec process;
  litho::calibrate_threshold(process, 180, 360);

  layout::Library lib("timing");
  layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
  const auto shapes = lib.at("cell").shapes(layout::layers::kPoly);
  const std::vector<geom::Polygon> target(shapes.begin(), shapes.end());
  const geom::Rect window = lib.at("cell").local_bbox().inflated(100);

  opc::ModelOpcSpec mspec;
  const auto corrected =
      opc::run_model_opc(target, process, window, mspec).corrected;

  const opc::DeviceModel device;  // L0=180nm, alpha 1.3, lambda 20nm
  const litho::Simulator sim(process, window);

  util::Table t({"mask", "gate", "L_drive_nm", "L_leak_nm", "delay_x",
                 "leak_x"});
  for (const auto& [name, mask] :
       std::vector<std::pair<std::string, const std::vector<geom::Polygon>*>>{
           {"drawn", &target}, {"model_opc", &corrected}}) {
    const litho::Image lat = sim.latent(*mask);
    int gate_no = 0;
    for (geom::Coord gate_x : {690, 1490}) {
      ++gate_no;
      const auto profile = opc::extract_gate_profile(
          lat, {gate_x, 400}, {0, 1}, 1000.0, sim.threshold(), 50.0);
      if (profile.lost_slices > 0) {
        std::cout << name << " gate " << gate_no
                  << ": catastrophic print failure\n";
        continue;
      }
      const double ld = opc::drive_equivalent_length(profile, device);
      const double ll = opc::leakage_equivalent_length(profile, device);
      t.add_row(name, gate_no, ld, ll, opc::relative_delay(ld, device),
                opc::relative_leakage(ll, device));
    }
  }
  std::cout << t.to_text("gate electrical impact (vs 180nm nominal)");
  std::cout << "\nNote: leak_x is the off-current multiplier — the cost of"
               " shipping uncorrected masks.\n";
  return 0;
}
