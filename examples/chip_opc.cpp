/// Chip-scale OPC: build a small hierarchical chip, run the
/// hierarchy-preserving flow and the flat flow, and report the
/// cost/accuracy/data tradeoff between them (see experiment T6 for the
/// systematic version).
#include <iostream>

#include "core/opc.h"
#include "layout/layout.h"

int main() {
  using namespace opckit;

  opc::FlowSpec flow;
  litho::calibrate_threshold(flow.sim, 180, 360);
  flow.opc.max_iterations = 8;

  auto build = [] {
    layout::Library lib("chip_opc");
    layout::make_logic_cell(lib, "cell", layout::layers::kPoly);
    layout::make_chip(lib, "chip", "cell", 3, 2, {3000, 3800});
    lib.validate();
    return lib;
  };

  layout::Library hier = build();
  const auto hier_stats = opc::run_cell_opc(hier, "chip", flow);
  std::cout << "cell-level OPC: " << hier_stats.opc_runs << " OPC run(s), "
            << hier_stats.simulations << " simulations, "
            << hier_stats.corrected_polygons << " corrected polygons\n";

  layout::Library flat = build();
  const auto flat_stats = opc::run_flat_opc(flat, "chip", flow);
  std::cout << "flat OPC:       " << flat_stats.opc_runs << " OPC run(s), "
            << flat_stats.simulations << " simulations, "
            << flat_stats.corrected_polygons << " corrected polygons\n";

  const auto s_hier = hier.stats("chip");
  std::cout << "\nhierarchy: " << s_hier.distinct_cells
            << " distinct cells, " << s_hier.placements
            << " placements, leverage "
            << s_hier.hierarchy_leverage() << "x\n";
  std::cout << "GDSII bytes, hierarchical output: "
            << layout::gdsii_byte_size(hier) << "\n";
  std::cout << "GDSII bytes, flat output:         "
            << layout::gdsii_byte_size(flat) << "\n";

  layout::write_gdsii_file(hier, "chip_opc_hier.gds");
  layout::write_gdsii_file(flat, "chip_opc_flat.gds");
  std::cout << "wrote chip_opc_hier.gds and chip_opc_flat.gds\n";
  return 0;
}
