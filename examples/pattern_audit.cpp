/// Pattern-catalog audit of two design styles — the DFM workflow built on
/// layout pattern catalogs: classify every corner neighborhood, rank
/// pattern classes by frequency, compare designs by their pattern
/// spectra, and pick the context radius that stops discriminating.
#include <iostream>

#include "layout/layout.h"
#include "pattern/pattern.h"
#include "util/table.h"

namespace {

std::vector<opckit::geom::Polygon> routed_block(std::uint64_t seed,
                                                double fill) {
  using namespace opckit;
  util::Rng rng(seed);
  layout::Cell cell("block");
  layout::RandomBlockSpec spec;
  spec.width = 12000;
  spec.height = 12000;
  spec.fill = fill;
  layout::add_random_block(cell, layout::layers::kMetal1, spec, rng);
  const auto shapes = cell.shapes(layout::layers::kMetal1);
  return {shapes.begin(), shapes.end()};
}

}  // namespace

int main() {
  using namespace opckit;

  const auto loose = routed_block(101, 0.40);
  const auto dense = routed_block(202, 0.70);

  pat::WindowSpec wspec;
  wspec.radius = 400;
  const pat::PatternCatalog cat_loose = pat::build_catalog(loose, wspec);
  const pat::PatternCatalog cat_dense = pat::build_catalog(dense, wspec);

  util::Table top({"rank", "loose_count", "loose_cum_pct", "dense_count",
                   "dense_cum_pct"});
  const auto rl = cat_loose.ranked();
  const auto rd = cat_dense.ranked();
  std::size_t cum_l = 0, cum_d = 0;
  for (std::size_t k = 0; k < 10; ++k) {
    cum_l += k < rl.size() ? rl[k].count : 0;
    cum_d += k < rd.size() ? rd[k].count : 0;
    top.add_row(k + 1, k < rl.size() ? rl[k].count : 0,
                100.0 * static_cast<double>(cum_l) /
                    static_cast<double>(cat_loose.total()),
                k < rd.size() ? rd[k].count : 0,
                100.0 * static_cast<double>(cum_d) /
                    static_cast<double>(cat_dense.total()));
  }
  std::cout << top.to_text("top-10 pattern classes");

  std::cout << "\nloose: " << cat_loose.classes() << " classes over "
            << cat_loose.total() << " windows; 90% coverage needs "
            << cat_loose.classes_for_coverage(0.9) << " classes\n";
  std::cout << "dense: " << cat_dense.classes() << " classes over "
            << cat_dense.total() << " windows; 90% coverage needs "
            << cat_dense.classes_for_coverage(0.9) << " classes\n";
  std::cout << "patterns unique to dense: "
            << cat_dense.subtracted(cat_loose).classes() << "\n";
  std::cout << "style distance D(loose||dense) = "
            << pat::catalog_kl_divergence(cat_loose, cat_dense) << "\n";

  const pat::PatternTree tree(dense, {200, 400, 800});
  std::cout << "\ncontext-radius analysis (dense block):\n";
  for (std::size_t lvl = 0; lvl < tree.radii().size(); ++lvl) {
    std::cout << "  radius " << tree.radii()[lvl] << "nm: "
              << tree.classes_at(lvl) << " classes\n";
  }
  std::cout << "saturation level: radius "
            << tree.radii()[tree.saturation_level()] << "nm\n";
  return 0;
}
