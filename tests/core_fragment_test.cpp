#include <map>

#include <gtest/gtest.h>

#include "core/fragment.h"
#include "geometry/region.h"

namespace opckit::opc {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;

FragmentationSpec spec_default() {
  FragmentationSpec s;
  s.target_length = 120;
  s.corner_length = 60;
  s.min_length = 24;
  s.line_end_max = 360;
  return s;
}

TEST(Fragmentation, CoversEveryEdgeExactly) {
  const Polygon poly{Rect(0, 0, 1000, 700)};
  const auto frags = fragment_polygon(poly, spec_default());
  // Group by edge and verify contiguous coverage 0..length.
  std::map<std::size_t, std::vector<Fragment>> by_edge;
  for (const auto& f : frags) by_edge[f.edge].push_back(f);
  ASSERT_EQ(by_edge.size(), 4u);
  for (const auto& [e, fs] : by_edge) {
    geom::Coord t = 0;
    for (const auto& f : fs) {
      EXPECT_EQ(f.t0, t);
      EXPECT_GT(f.t1, f.t0);
      t = f.t1;
    }
    EXPECT_EQ(t, poly.edge(e).length());
  }
}

TEST(Fragmentation, RespectsMinLength) {
  const Polygon poly{Rect(0, 0, 2000, 180)};
  const auto frags = fragment_polygon(poly, spec_default());
  for (const auto& f : frags) {
    EXPECT_GE(f.length(), spec_default().min_length) << "edge " << f.edge;
  }
}

TEST(Fragmentation, ShortEdgeBetweenConvexCornersIsLineEnd) {
  // A 180-wide, 1000-tall line: the two 180nm edges are line ends.
  const Polygon poly{Rect(0, 0, 180, 1000)};
  const auto frags = fragment_polygon(poly, spec_default());
  int line_ends = 0;
  for (const auto& f : frags) line_ends += f.kind == FragmentKind::kLineEnd;
  EXPECT_EQ(line_ends, 2);
}

TEST(Fragmentation, ConcaveCornerIsNotLineEnd) {
  // L-shape: the two short edges at the notch touch a concave corner.
  const Polygon poly(std::vector<Point>{
      {0, 0}, {600, 0}, {600, 200}, {200, 200}, {200, 600}, {0, 600}});
  const auto frags = fragment_polygon(poly.normalized(), spec_default());
  for (const auto& f : frags) {
    if (f.kind == FragmentKind::kLineEnd) {
      // Only the edges not touching the concave corner may be line ends.
      EXPECT_NE(f.edge, 2u);
      EXPECT_NE(f.edge, 3u);
    }
  }
}

TEST(Fragmentation, FinerSpecMakesMoreFragments) {
  const Polygon poly{Rect(0, 0, 2000, 2000)};
  FragmentationSpec coarse = spec_default();
  coarse.target_length = 400;
  FragmentationSpec fine = spec_default();
  fine.target_length = 60;
  EXPECT_GT(fragment_polygon(poly, fine).size(),
            fragment_polygon(poly, coarse).size());
}

TEST(Fragmentation, CornerClassification) {
  const Polygon poly{Rect(0, 0, 20, 20)};
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(is_convex_corner(poly, i));
  const Polygon l(std::vector<Point>{
      {0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  EXPECT_FALSE(is_convex_corner(l, 3));  // the notch
  EXPECT_TRUE(is_convex_corner(l, 0));
}

TEST(ApplyOffsets, ZeroOffsetsReproducePolygon) {
  const Polygon poly(std::vector<Point>{
      {0, 0}, {600, 0}, {600, 200}, {200, 200}, {200, 600}, {0, 600}});
  const Polygon norm = poly.normalized();
  auto frags = fragment_polygon(norm, spec_default());
  EXPECT_EQ(apply_offsets(norm, frags), norm);
}

TEST(ApplyOffsets, UniformOffsetEqualsInflation) {
  const Polygon poly{Rect(100, 100, 700, 500)};
  auto frags = fragment_polygon(poly, spec_default());
  for (auto& f : frags) f.offset = 10;
  const Polygon grown = apply_offsets(poly, frags);
  EXPECT_EQ(geom::Region(grown), geom::Region(poly).inflated(10));
}

TEST(ApplyOffsets, NegativeUniformOffsetShrinks) {
  const Polygon poly{Rect(0, 0, 600, 400)};
  auto frags = fragment_polygon(poly, spec_default());
  for (auto& f : frags) f.offset = -15;
  const Polygon shrunk = apply_offsets(poly, frags);
  EXPECT_EQ(shrunk.bbox(), Rect(15, 15, 585, 385));
}

TEST(ApplyOffsets, SingleFragmentMoveCreatesJogs) {
  const Polygon poly{Rect(0, 0, 1200, 400)};
  auto frags = fragment_polygon(poly, spec_default());
  // Move one interior run fragment of the bottom edge outward.
  bool moved = false;
  for (auto& f : frags) {
    if (f.edge == 0 && f.kind == FragmentKind::kRun && !moved) {
      f.offset = 12;
      moved = true;
    }
  }
  ASSERT_TRUE(moved);
  const Polygon out = apply_offsets(poly, frags);
  EXPECT_GT(out.size(), poly.size());  // jogs added vertices
  // Area grows by fragment length * offset.
  geom::Coord frag_len = 0;
  for (const auto& f : frags) {
    if (f.offset != 0) frag_len = f.length();
  }
  EXPECT_EQ(out.area(), poly.area() + frag_len * 12);
}

TEST(ApplyOffsets, LineEndExtensionMovesTip) {
  const Polygon poly{Rect(0, 0, 180, 1000)};
  auto frags = fragment_polygon(poly, spec_default());
  for (auto& f : frags) {
    if (f.kind == FragmentKind::kLineEnd) f.offset = 25;
  }
  const Polygon out = apply_offsets(poly, frags);
  EXPECT_EQ(out.bbox(), Rect(0, -25, 180, 1025));
}

TEST(ApplyOffsets, MultiPolygonRouting) {
  const std::vector<Polygon> polys{Polygon{Rect(0, 0, 300, 300)},
                                   Polygon{Rect(1000, 0, 1300, 300)}};
  auto frags = fragment_polygons(polys, spec_default());
  for (auto& f : frags) {
    if (f.polygon == 1) f.offset = 5;
  }
  const auto out = apply_offsets(polys, frags);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].bbox(), Rect(0, 0, 300, 300));
  EXPECT_EQ(out[1].bbox(), Rect(995, -5, 1305, 305));
}

TEST(EvalPoint, MidpointOnOriginalEdge) {
  const Polygon poly{Rect(0, 0, 400, 400)};
  auto frags = fragment_polygon(poly, spec_default());
  for (const auto& f : frags) {
    const Point p = eval_point(poly, f);
    const auto e = poly.edge(f.edge);
    // Point lies on the edge segment.
    EXPECT_EQ(cross(e.delta(), p - e.a), 0);
    EXPECT_GE(dot(e.delta(), p - e.a), 0);
  }
}

TEST(EvalPoint, IgnoresOffsets) {
  const Polygon poly{Rect(0, 0, 400, 400)};
  auto frags = fragment_polygon(poly, spec_default());
  const Point before = eval_point(poly, frags[0]);
  frags[0].offset = 30;
  EXPECT_EQ(eval_point(poly, frags[0]), before);
}

TEST(Fragmentation, RejectsNonManhattan) {
  const Polygon diag(std::vector<Point>{{0, 0}, {100, 0}, {50, 80}});
  EXPECT_THROW(fragment_polygon(diag, spec_default()), util::CheckError);
}

}  // namespace
}  // namespace opckit::opc
