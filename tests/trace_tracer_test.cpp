/// Unit tests for the span tracer (trace/tracer.h).
///
/// The tracer is process-global; every test that enables it stops it
/// before finishing so later tests (and the flow tests in this binary)
/// start from a disabled tracer.
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/tracer.h"
#include "util/thread_pool.h"

namespace opckit::trace {
namespace {

/// Minimal structural JSON check: balanced {}/[] outside strings and a
/// sane escape state. Not a parser — enough to catch truncated or
/// interleaved writer output.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Tracer, DisabledSpansCostNoAllocationsOrEvents) {
  Tracer& t = Tracer::instance();
  ASSERT_FALSE(t.enabled());
  const std::size_t allocs = t.debug_allocations();
  for (int i = 0; i < 1000; ++i) {
    Span span("test.noop", i);
  }
  // The overhead contract: with tracing off a span performs no
  // allocation (and records nothing).
  EXPECT_EQ(t.debug_allocations(), allocs);
}

TEST(Tracer, RecordsBalancedNestedSpans) {
  Tracer& t = Tracer::instance();
  t.start();
  {
    Span outer("test.outer");
    {
      Span inner("test.inner", 7);
    }
  }
  t.stop();
  EXPECT_EQ(t.event_count(), 4u);
  const std::string json = t.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 2u);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
  // The span argument surfaces as args.index on the begin event only.
  EXPECT_EQ(count_occurrences(json, "\"args\":{\"index\":7}"), 1u);
}

TEST(Tracer, SpanOpenAcrossStopStillRecordsItsEnd) {
  Tracer& t = Tracer::instance();
  t.start();
  {
    Span span("test.straddle");
    t.stop();
    // Destructor runs with tracing disabled; the stream must stay
    // balanced anyway.
  }
  const std::string json = t.to_json();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 1u);
}

TEST(Tracer, StartDiscardsThePreviousSession) {
  Tracer& t = Tracer::instance();
  t.start();
  { Span span("test.first"); }
  t.stop();
  t.start();
  { Span span("test.second"); }
  t.stop();
  const std::string json = t.to_json();
  EXPECT_EQ(json.find("test.first"), std::string::npos);
  EXPECT_NE(json.find("test.second"), std::string::npos);
  EXPECT_EQ(t.event_count(), 2u);
}

TEST(Tracer, WorkerThreadSpansLandInPerThreadBuffers) {
  Tracer& t = Tracer::instance();
  util::ThreadPool pool(4);
  t.start();
  pool.parallel_for(64, [](std::size_t i) {
    Span span("test.tile", static_cast<std::int64_t>(i));
  });
  t.stop();
  EXPECT_EQ(t.event_count(), 128u);
  const std::string json = t.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;

  // Per-tid balance: every thread's stream must close what it opened.
  std::map<std::string, long> balance;
  std::size_t pos = 0;
  while ((pos = json.find("\"tid\":", pos)) != std::string::npos) {
    pos += 6;
    std::size_t end = json.find_first_of(",}", pos);
    const std::string tid = json.substr(pos, end - pos);
    const std::size_t ph = json.rfind("\"ph\":\"", pos);
    ASSERT_NE(ph, std::string::npos);
    balance[tid] += json[ph + 6] == 'B' ? 1 : -1;
  }
  EXPECT_FALSE(balance.empty());
  for (const auto& [tid, b] : balance) {
    EXPECT_EQ(b, 0) << "unbalanced spans on tid " << tid;
  }
}

}  // namespace
}  // namespace opckit::trace
