/// Property tests of hierarchy flattening: flattening commutes with the
/// reference transforms for every orientation and nesting arrangement.
#include <gtest/gtest.h>

#include <sstream>

#include "layout/gdsii.h"
#include "layout/library.h"
#include "util/rng.h"

namespace opckit::layout {
namespace {

using geom::Orientation;
using geom::Point;
using geom::Rect;
using geom::Region;
using geom::Transform;

class FlattenPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FlattenPropertyTest, FlattenMatchesManualTransformComposition) {
  util::Rng rng(GetParam());
  Library lib("prop");
  Cell& leaf = lib.cell("leaf");
  // Random leaf content.
  std::vector<geom::Polygon> leaf_polys;
  for (int i = 0; i < 4; ++i) {
    const geom::Coord x0 = rng.uniform_int(-200, 200);
    const geom::Coord y0 = rng.uniform_int(-200, 200);
    const Rect r(x0, y0, x0 + rng.uniform_int(10, 120),
                 y0 + rng.uniform_int(10, 120));
    leaf.add_rect(layers::kPoly, r);
    leaf_polys.emplace_back(r);
  }
  // Two levels of random references.
  std::vector<Transform> mids;
  Cell& mid = lib.cell("mid");
  for (int i = 0; i < 3; ++i) {
    CellRef ref;
    ref.child = "leaf";
    ref.transform = Transform(
        static_cast<Orientation>(rng.uniform_int(0, 7)),
        {rng.uniform_int(-2000, 2000), rng.uniform_int(-2000, 2000)});
    mids.push_back(ref.transform);
    mid.add_ref(ref);
  }
  Cell& top = lib.cell("top");
  CellRef tref;
  tref.child = "mid";
  tref.transform = Transform(
      static_cast<Orientation>(rng.uniform_int(0, 7)),
      {rng.uniform_int(-5000, 5000), rng.uniform_int(-5000, 5000)});
  top.add_ref(tref);
  lib.validate();

  const auto flat = lib.flatten("top", layers::kPoly);
  ASSERT_EQ(flat.size(), mids.size() * leaf_polys.size());

  // Oracle: compose transforms by hand, compare as regions (order-free).
  std::vector<geom::Polygon> expected;
  for (const auto& m : mids) {
    const Transform t = tref.transform * m;
    for (const auto& p : leaf_polys) expected.push_back(t(p));
  }
  EXPECT_EQ(Region::from_polygons(flat), Region::from_polygons(expected))
      << "seed " << GetParam();
}

TEST_P(FlattenPropertyTest, ArrayExpansionMatchesLoopOracle) {
  util::Rng rng(GetParam() ^ 0xa44a);
  Library lib("prop");
  lib.cell("leaf").add_rect(layers::kPoly, Rect(0, 0, 50, 80));
  CellRef ref;
  ref.child = "leaf";
  ref.columns = static_cast<int>(rng.uniform_int(1, 5));
  ref.rows = static_cast<int>(rng.uniform_int(1, 5));
  ref.column_step = {rng.uniform_int(100, 300), 0};
  ref.row_step = {0, rng.uniform_int(100, 300)};
  ref.transform = Transform(
      static_cast<Orientation>(rng.uniform_int(0, 7)),
      {rng.uniform_int(-1000, 1000), rng.uniform_int(-1000, 1000)});
  lib.cell("top").add_ref(ref);

  const auto flat = lib.flatten("top", layers::kPoly);
  EXPECT_EQ(flat.size(),
            static_cast<std::size_t>(ref.columns) *
                static_cast<std::size_t>(ref.rows));
  geom::Coord area = 0;
  for (const auto& p : flat) area += p.area();
  EXPECT_EQ(area, static_cast<geom::Coord>(flat.size()) * 50 * 80);

  // Stats agree with the expansion.
  const auto s = lib.stats("top");
  EXPECT_EQ(s.placements, ref.placements());
  EXPECT_EQ(s.flat_polygons, static_cast<long long>(flat.size()));
}

TEST_P(FlattenPropertyTest, GdsiiRoundTripPreservesFlatGeometry) {
  util::Rng rng(GetParam() ^ 0x9d5);
  Library lib("prop");
  Cell& leaf = lib.cell("leaf");
  for (int i = 0; i < 3; ++i) {
    const geom::Coord x0 = rng.uniform_int(0, 500);
    const geom::Coord y0 = rng.uniform_int(0, 500);
    leaf.add_rect(layers::kPoly, Rect(x0, y0, x0 + rng.uniform_int(10, 90),
                                      y0 + rng.uniform_int(10, 90)));
  }
  CellRef ref;
  ref.child = "leaf";
  ref.columns = 2;
  ref.rows = 3;
  ref.column_step = {700, 0};
  ref.row_step = {0, 700};
  ref.transform =
      Transform(static_cast<Orientation>(rng.uniform_int(0, 7)), {33, -77});
  lib.cell("top").add_ref(ref);

  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_gdsii(lib, ss);
  const Library back = read_gdsii(ss);
  EXPECT_EQ(Region::from_polygons(back.flatten("top", layers::kPoly)),
            Region::from_polygons(lib.flatten("top", layers::kPoly)))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlattenPropertyTest,
                         ::testing::Values(1u, 4u, 9u, 16u, 25u, 36u));

}  // namespace
}  // namespace opckit::layout
