#include <cmath>

#include <gtest/gtest.h>

#include "litho/resist.h"

namespace opckit::litho {
namespace {

Frame frame8(std::size_t n) {
  Frame f;
  f.pixel_nm = 8.0;
  f.nx = n;
  f.ny = n;
  return f;
}

TEST(ResistModel, DoseScalesThreshold) {
  ResistModel r;
  r.threshold = 0.3;
  EXPECT_DOUBLE_EQ(r.threshold_at_dose(1.0), 0.3);
  EXPECT_DOUBLE_EQ(r.threshold_at_dose(1.5), 0.2);
  EXPECT_DOUBLE_EQ(r.threshold_at_dose(0.5), 0.6);
}

TEST(GaussianBlur, ZeroSigmaIsIdentity) {
  Image img(frame8(16));
  img.at(5, 5) = 3.0;
  const Image out = gaussian_blur(img, 0.0);
  for (std::size_t i = 0; i < out.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(out.values()[i], img.values()[i]);
  }
}

TEST(GaussianBlur, PreservesMean) {
  Image img(frame8(32));
  img.at(10, 12) = 1.0;
  img.at(20, 8) = 2.0;
  const Image out = gaussian_blur(img, 30.0);
  double before = 0, after = 0;
  for (double v : img.values()) before += v;
  for (double v : out.values()) after += v;
  EXPECT_NEAR(after, before, 1e-9);
}

TEST(GaussianBlur, SpreadsAndLowersPeak) {
  Image img(frame8(32));
  img.at(16, 16) = 1.0;
  const Image out = gaussian_blur(img, 20.0);
  EXPECT_LT(out.at(16, 16), 0.5);
  EXPECT_GT(out.at(18, 16), 0.0);
  // Symmetric spread.
  EXPECT_NEAR(out.at(18, 16), out.at(14, 16), 1e-12);
  EXPECT_NEAR(out.at(16, 18), out.at(16, 14), 1e-12);
}

TEST(GaussianBlur, MatchesAnalyticGaussianWidth) {
  // Blurring an impulse of weight 1 gives a discrete Gaussian whose
  // value at the center is ~ pixel_area / (2 pi sigma^2).
  const double sigma = 24.0;
  Image img(frame8(64));
  img.at(32, 32) = 1.0;
  const Image out = gaussian_blur(img, sigma);
  const double expected_peak =
      64.0 / (2.0 * 3.14159265358979 * sigma * sigma);
  EXPECT_NEAR(out.at(32, 32), expected_peak, expected_peak * 0.05);
}

TEST(GaussianBlur, UniformStaysUniform) {
  Image img(frame8(16), 0.7);
  const Image out = gaussian_blur(img, 25.0);
  for (double v : out.values()) EXPECT_NEAR(v, 0.7, 1e-9);
}

TEST(LatentImage, AppliesDiffusion) {
  ResistModel r;
  r.diffusion_nm = 20.0;
  Image aerial(frame8(32));
  aerial.at(16, 16) = 1.0;
  const Image lat = latent_image(aerial, r);
  EXPECT_LT(lat.at(16, 16), 1.0);
  EXPECT_GT(lat.at(17, 16), 0.0);
}

}  // namespace
}  // namespace opckit::litho
