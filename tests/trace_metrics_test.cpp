/// Unit tests for the metrics registry (trace/metrics.h).
///
/// The registry is process-global and cumulative, so every assertion on
/// live metric values works in deltas — other tests in this binary (and
/// the flows they run) may bump the same counters.
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "trace/metrics.h"
#include "util/check.h"

namespace opckit::trace {
namespace {

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, GaugeAccumulatesDoubles) {
  Gauge g;
  g.add(1.5);
  g.add(2.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(Metrics, GaugeIsThreadSafe) {
  // The CAS loop must not lose concurrent adds the way a plain
  // load/add/store would.
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) g.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 80000.0);
}

TEST(Metrics, HistogramBoundaryAndSlotSemantics) {
  HistogramMetric h(0.0, 64.0, 16);
  h.observe(0.0);    // first bin
  h.observe(64.0);   // x == hi: LAST bin, matching util::histogram_bin
  h.observe(std::nextafter(64.0, 0.0));  // still last bin
  h.observe(-1.0);   // underflow slot
  h.observe(65.0);   // overflow slot
  h.observe(std::numeric_limits<double>::quiet_NaN());  // nan slot
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.bins.size(), 16u);
  EXPECT_EQ(s.bins.front(), 1u);
  EXPECT_EQ(s.bins.back(), 2u);
  EXPECT_EQ(s.underflow, 1u);
  EXPECT_EQ(s.overflow, 1u);
  EXPECT_EQ(s.nan_count, 1u);
  EXPECT_EQ(s.total(), 6u);
}

TEST(Metrics, RegistryServesEveryCompiledMetric) {
  MetricsRegistry& reg = metrics();
  for (const MetricInfo& info : all_metrics()) {
    switch (info.kind) {
      case MetricKind::kCounter:
        reg.counter(info.name);  // throws on a broken registry
        break;
      case MetricKind::kGauge:
        reg.gauge(info.name);
        break;
      case MetricKind::kHistogram:
        reg.histogram(info.name);
        break;
    }
  }
  const MetricsSnapshot s = reg.snapshot();
  std::size_t named = s.counters.size() + s.gauges.size() +
                      s.histograms.size();
  EXPECT_EQ(named, all_metrics().size());
}

TEST(Metrics, UnknownNameOrWrongKindThrows) {
  MetricsRegistry& reg = metrics();
  EXPECT_THROW(reg.counter("no.such.metric"), util::CheckError);
  // Declared kinds are enforced: a gauge name is not a counter.
  EXPECT_THROW(reg.counter(metric::kFlowPhaseSolveMs), util::CheckError);
  EXPECT_THROW(reg.histogram(metric::kCacheHits), util::CheckError);
}

TEST(Metrics, LookupReturnsStableReference) {
  Counter& a = metrics().counter(metric::kCacheHits);
  Counter& b = metrics().counter(metric::kCacheHits);
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, SnapshotDeltaIsolatesAnInterval) {
  MetricsRegistry& reg = metrics();
  const MetricsSnapshot before = reg.snapshot();
  reg.counter(metric::kCacheMisses).add(3);
  reg.gauge(metric::kFlowPhaseMergeMs).add(2.5);
  reg.histogram(metric::kFlowTileSimulations).observe(5.0);
  const MetricsSnapshot d = MetricsSnapshot::delta(before, reg.snapshot());
  EXPECT_EQ(d.counters.at(metric::kCacheMisses), 3u);
  EXPECT_EQ(d.counters.at(metric::kCacheHits), 0u);
  EXPECT_DOUBLE_EQ(d.gauges.at(metric::kFlowPhaseMergeMs), 2.5);
  EXPECT_EQ(d.histograms.at(metric::kFlowTileSimulations).total(), 1u);
}

TEST(Metrics, JsonRenderingIsStableAndLocaleFree) {
  MetricsSnapshot s;
  s.counters["a.count"] = 7;
  s.gauges["b.ms"] = 1.5;
  HistogramSnapshot h;
  h.lo = 0.0;
  h.hi = 4.0;
  h.bins = {1, 0};
  h.overflow = 2;
  s.histograms["c.hist"] = h;
  EXPECT_EQ(render_metrics_json(s),
            "{\"counters\":{\"a.count\":7},"
            "\"gauges\":{\"b.ms\":1.5},"
            "\"histograms\":{\"c.hist\":{\"lo\":0,\"hi\":4,\"bins\":[1,0],"
            "\"underflow\":0,\"overflow\":2,\"nan\":0}}}");
}

TEST(Metrics, MarkdownListsEveryMetricName) {
  const std::string md = render_metrics_markdown();
  for (const MetricInfo& info : all_metrics()) {
    EXPECT_NE(md.find("`" + std::string(info.name) + "`"), std::string::npos)
        << info.name;
  }
}

}  // namespace
}  // namespace opckit::trace
