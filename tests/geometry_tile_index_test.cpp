#include <algorithm>

#include <gtest/gtest.h>

#include "geometry/tile_index.h"
#include "util/rng.h"

namespace opckit::geom {
namespace {

TEST(TileIndex, FindsInsertedItem) {
  TileIndex idx(Rect(0, 0, 1000, 1000), 100);
  idx.insert(7, Rect(150, 150, 250, 250));
  const auto hits = idx.query(Rect(200, 200, 300, 300));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(TileIndex, MissesDistantItem) {
  TileIndex idx(Rect(0, 0, 1000, 1000), 100);
  idx.insert(1, Rect(0, 0, 50, 50));
  EXPECT_TRUE(idx.query(Rect(800, 800, 900, 900)).empty());
}

TEST(TileIndex, DeduplicatesAcrossTiles) {
  TileIndex idx(Rect(0, 0, 1000, 1000), 100);
  idx.insert(3, Rect(50, 50, 450, 450));  // spans many tiles
  const auto hits = idx.query(Rect(0, 0, 500, 500));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 3u);
}

TEST(TileIndex, TouchingCountsAsHit) {
  TileIndex idx(Rect(0, 0, 1000, 1000), 100);
  idx.insert(9, Rect(100, 100, 200, 200));
  const auto hits = idx.query(Rect(200, 200, 300, 300));  // corner touch
  ASSERT_EQ(hits.size(), 1u);
}

TEST(TileIndex, ItemsOutsideExtentClampIntoBorder) {
  TileIndex idx(Rect(0, 0, 100, 100), 10);
  idx.insert(5, Rect(-50, -50, -10, -10));
  const auto hits = idx.query(Rect(-20, -20, -15, -15));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 5u);
}

TEST(TileIndex, QueryMatchesBruteForceOnRandomSoup) {
  util::Rng rng(42);
  const Rect extent(0, 0, 2000, 2000);
  TileIndex idx(extent, 128);
  std::vector<Rect> boxes;
  for (std::size_t i = 0; i < 300; ++i) {
    const Coord x0 = rng.uniform_int(0, 1900);
    const Coord y0 = rng.uniform_int(0, 1900);
    const Rect b(x0, y0, x0 + rng.uniform_int(1, 100),
                 y0 + rng.uniform_int(1, 100));
    boxes.push_back(b);
    idx.insert(i, b);
  }
  for (int q = 0; q < 50; ++q) {
    const Coord x0 = rng.uniform_int(0, 1800);
    const Coord y0 = rng.uniform_int(0, 1800);
    const Rect w(x0, y0, x0 + rng.uniform_int(1, 200),
                 y0 + rng.uniform_int(1, 200));
    auto got = idx.query(w);
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].touches(w)) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(TileIndex, SameIdMayAppearForMultipleShapes) {
  TileIndex idx(Rect(0, 0, 100, 100), 10);
  idx.insert(1, Rect(0, 0, 10, 10));
  idx.insert(1, Rect(90, 90, 100, 100));
  EXPECT_EQ(idx.size(), 2u);
  const auto hits = idx.query(Rect(0, 0, 100, 100));
  ASSERT_EQ(hits.size(), 1u);  // deduplicated by id
}

}  // namespace
}  // namespace opckit::geom
