/// Property tests of Region morphology against a brute-force pixel
/// oracle: dilation/erosion by the square structuring element checked
/// cell-by-cell on random rectangle soups.
#include <vector>

#include <gtest/gtest.h>

#include "geometry/region.h"
#include "util/rng.h"

namespace opckit::geom {
namespace {

std::vector<Rect> random_rects(util::Rng& rng, int n, Coord span) {
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    const Coord x0 = rng.uniform_int(0, span - 2);
    const Coord y0 = rng.uniform_int(0, span - 2);
    out.emplace_back(x0, y0, x0 + rng.uniform_int(2, span / 3),
                     y0 + rng.uniform_int(2, span / 3));
  }
  return out;
}

bool cell_covered(const Region& r, Coord x, Coord y) {
  for (const auto& s : r.slabs()) {
    if (y < s.y0 || y >= s.y1) continue;
    for (const auto& iv : s.intervals) {
      if (x >= iv.x0 && x < iv.x1) return true;
    }
  }
  return false;
}

class MorphologyPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MorphologyPropertyTest, DilationMatchesPixelOracle) {
  util::Rng rng(GetParam());
  const Coord span = 40, d = 3;
  const Region r = Region::from_rects(random_rects(rng, 6, span));
  const Region grown = r.inflated(d);
  for (Coord y = -d - 1; y <= span + d; ++y) {
    for (Coord x = -d - 1; x <= span + d; ++x) {
      // Cell (x,y) is in the dilation iff some cell within Chebyshev
      // distance d of it is covered.
      bool want = false;
      for (Coord dy = -d; dy <= d && !want; ++dy) {
        for (Coord dx = -d; dx <= d && !want; ++dx) {
          want = cell_covered(r, x + dx, y + dy);
        }
      }
      EXPECT_EQ(cell_covered(grown, x, y), want)
          << '(' << x << ',' << y << ") seed " << GetParam();
    }
  }
}

TEST_P(MorphologyPropertyTest, ErosionMatchesPixelOracle) {
  util::Rng rng(GetParam() ^ 0xe0de);
  const Coord span = 40, d = 2;
  const Region r = Region::from_rects(random_rects(rng, 6, span));
  const Region shrunk = r.inflated(-d);
  for (Coord y = 0; y < span; ++y) {
    for (Coord x = 0; x < span; ++x) {
      // Cell (x,y) survives erosion iff every cell within Chebyshev
      // distance d is covered.
      bool want = true;
      for (Coord dy = -d; dy <= d && want; ++dy) {
        for (Coord dx = -d; dx <= d && want; ++dx) {
          want = cell_covered(r, x + dx, y + dy);
        }
      }
      EXPECT_EQ(cell_covered(shrunk, x, y), want)
          << '(' << x << ',' << y << ") seed " << GetParam();
    }
  }
}

TEST_P(MorphologyPropertyTest, OpeningAndClosingAreIdempotent) {
  util::Rng rng(GetParam() ^ 0x1de);
  const Region r = Region::from_rects(random_rects(rng, 8, 60));
  const Coord d = 3;
  const Region opened = r.opened(d);
  const Region closed = r.closed(d);
  EXPECT_EQ(opened.opened(d), opened);
  EXPECT_EQ(closed.closed(d), closed);
}

TEST_P(MorphologyPropertyTest, ComponentsPartitionArea) {
  util::Rng rng(GetParam() ^ 0xc03);
  const Region r = Region::from_rects(random_rects(rng, 10, 80));
  const auto comps = r.components();
  Coord total = 0;
  Region reunion;
  for (const auto& c : comps) {
    EXPECT_FALSE(c.empty());
    // Components are pairwise disjoint with no edge adjacency: their
    // pairwise intersection after 1-dilation is corner-only (area 1 max
    // per touch) — verify simple disjointness here.
    EXPECT_TRUE(reunion.intersected(c).empty());
    reunion = reunion.united(c);
    total += c.area();
  }
  EXPECT_EQ(total, r.area());
  EXPECT_EQ(reunion, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorphologyPropertyTest,
                         ::testing::Values(3u, 7u, 31u, 127u, 8191u));

}  // namespace
}  // namespace opckit::geom
