/// Robustness tests for the persistent correction store: format round
/// trip plus the corrupt-file corpus — every damaged input must load or
/// refuse deterministically (never crash), and torn tails must recover.
/// Runs under ASan/UBSan in CI (label `store`).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "store/result_store.h"
#include "util/check.h"

namespace opckit::store {
namespace {

constexpr std::uint64_t kFp = 0x1234'5678'9abc'def0ULL;
constexpr std::size_t kHeaderSize = 24;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TileRecord sample_record(int salt = 0) {
  TileRecord rec;
  rec.window_rects = {geom::Rect(0, 0, 180, 1200 + salt),
                      geom::Rect(540, 0, 720, 1200)};
  rec.own_rects = {geom::Rect(0, 0, 180, 1200 + salt)};
  rec.frame = geom::Rect(-800, -800, 1520, 2000);
  rec.orientation = geom::Orientation::kR90;
  rec.solution = {geom::Polygon(geom::Rect(-4, -12, 184, 1212 + salt)),
                  geom::Polygon({{540, 0}, {720, 0}, {720, 1212}, {540, 1212}})};
  return rec;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A store with two good records, returned as raw bytes for mutilation.
std::vector<std::uint8_t> good_store_bytes(const std::string& path) {
  auto store = ResultStore::create(path, kFp);
  store.append(sample_record(0));
  store.append(sample_record(7));
  return file_bytes(path);
}

TEST(ResultStore, RoundTripsRecords) {
  const std::string path = temp_path("store_roundtrip.ocs");
  {
    auto store = ResultStore::create(path, kFp);
    store.append(sample_record(0));
    store.append(sample_record(7));
    EXPECT_EQ(store.appended(), 2u);
  }
  const LoadResult loaded = ResultStore::load(path, kFp);
  EXPECT_FALSE(loaded.tail_recovered);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[0], sample_record(0));
  EXPECT_EQ(loaded.records[1], sample_record(7));
  EXPECT_EQ(loaded.valid_bytes,
            std::filesystem::file_size(path));
}

TEST(ResultStore, EmptyStoreLoadsCleanly) {
  const std::string path = temp_path("store_empty.ocs");
  ResultStore::create(path, kFp);
  const LoadResult loaded = ResultStore::load(path, kFp);
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_FALSE(loaded.tail_recovered);
  EXPECT_EQ(loaded.valid_bytes, kHeaderSize);
}

TEST(ResultStore, AppendToExtendsAfterLoad) {
  const std::string path = temp_path("store_extend.ocs");
  {
    auto store = ResultStore::create(path, kFp);
    store.append(sample_record(0));
  }
  const LoadResult first = ResultStore::load(path, kFp);
  {
    auto store = ResultStore::append_to(path, first.valid_bytes);
    store.append(sample_record(7));
  }
  const LoadResult both = ResultStore::load(path, kFp);
  ASSERT_EQ(both.records.size(), 2u);
  EXPECT_EQ(both.records[1], sample_record(7));
}

TEST(ResultStore, RefusesFingerprintMismatch) {
  const std::string path = temp_path("store_fp.ocs");
  ResultStore::create(path, kFp);
  lint::LintReport report;
  EXPECT_THROW(ResultStore::load(path, kFp + 1, &report),
               util::InputError);
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].code, "STO001");
  EXPECT_EQ(report.findings()[0].severity, lint::Severity::kError);
}

TEST(ResultStore, RefusesWrongMagic) {
  const std::string path = temp_path("store_magic.ocs");
  auto bytes = good_store_bytes(path);
  bytes[0] = 'X';
  write_bytes(path, bytes);
  lint::LintReport report;
  EXPECT_THROW(ResultStore::load(path, kFp, &report), util::InputError);
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].code, "STO003");
}

TEST(ResultStore, RefusesTruncatedHeader) {
  const std::string path = temp_path("store_shorthdr.ocs");
  auto bytes = good_store_bytes(path);
  bytes.resize(kHeaderSize / 2);
  write_bytes(path, bytes);
  lint::LintReport report;
  EXPECT_THROW(ResultStore::load(path, kFp, &report), util::InputError);
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].code, "STO003");
}

TEST(ResultStore, RefusesUnknownVersionWithValidChecksum) {
  const std::string path = temp_path("store_version.ocs");
  auto bytes = good_store_bytes(path);
  bytes[8] = 99;  // version field, little-endian low byte
  // Re-forge the header CRC so the version check (not the checksum) fires.
  const std::uint32_t crc = store_detail::crc32(bytes.data(), 20);
  for (int i = 0; i < 4; ++i)
    bytes[20 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu);
  write_bytes(path, bytes);
  lint::LintReport report;
  EXPECT_THROW(ResultStore::load(path, kFp, &report), util::InputError);
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].code, "STO003");
  EXPECT_NE(report.findings()[0].message.find("version"), std::string::npos);
}

TEST(ResultStore, RefusesFlippedRecordByte) {
  const std::string path = temp_path("store_crc.ocs");
  auto bytes = good_store_bytes(path);
  // Flip a byte inside the first record's payload (after length prefix).
  bytes[kHeaderSize + 4 + 3] ^= 0x40u;
  write_bytes(path, bytes);
  lint::LintReport report;
  EXPECT_THROW(ResultStore::load(path, kFp, &report), util::InputError);
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].code, "STO004");
}

TEST(ResultStore, RefusesMalformedPayloadWithForgedChecksum) {
  // A structurally bogus payload (orientation out of range) behind a
  // *valid* CRC must still be refused — the CRC authenticates bytes, the
  // parser authenticates structure.
  const std::string path = temp_path("store_struct.ocs");
  std::vector<std::uint8_t> bytes = [&] {
    ResultStore::create(path, kFp);
    return file_bytes(path);
  }();
  const std::vector<std::uint8_t> payload = {0xEE};  // orientation 0xEE
  bytes.push_back(1);  // length = 1, little-endian
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(payload[0]);
  const std::uint32_t crc = store_detail::crc32(payload.data(), 1);
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu));
  write_bytes(path, bytes);
  lint::LintReport report;
  EXPECT_THROW(ResultStore::load(path, kFp, &report), util::InputError);
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].code, "STO004");
}

TEST(ResultStore, RecoversTornTail) {
  const std::string path = temp_path("store_torn.ocs");
  const auto bytes = good_store_bytes(path);
  const LoadResult whole = ResultStore::load(path, kFp);
  ASSERT_EQ(whole.records.size(), 2u);

  // Tear the file at every byte inside the second record: each prefix
  // must recover record 1 and report the torn tail as a warning.
  const std::size_t second_start =
      kHeaderSize + (whole.valid_bytes - kHeaderSize) / 2;
  for (std::size_t cut : {second_start + 1, second_start + 5,
                          bytes.size() - 1}) {
    auto torn = bytes;
    torn.resize(cut);
    write_bytes(path, torn);
    lint::LintReport report;
    const LoadResult loaded = ResultStore::load(path, kFp, &report);
    ASSERT_EQ(loaded.records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(loaded.records[0], sample_record(0));
    EXPECT_TRUE(loaded.tail_recovered);
    EXPECT_EQ(loaded.valid_bytes, second_start);
    ASSERT_EQ(report.findings().size(), 1u);
    EXPECT_EQ(report.findings()[0].code, "STO002");
    EXPECT_EQ(report.findings()[0].severity, lint::Severity::kWarning);
  }
}

TEST(ResultStore, AppendAfterTornTailTruncatesGarbage) {
  const std::string path = temp_path("store_heal.ocs");
  auto bytes = good_store_bytes(path);
  bytes.resize(bytes.size() - 3);  // tear inside the last record
  write_bytes(path, bytes);

  const LoadResult loaded = ResultStore::load(path, kFp);
  ASSERT_TRUE(loaded.tail_recovered);
  {
    auto store = ResultStore::append_to(path, loaded.valid_bytes);
    store.append(sample_record(42));
  }
  // The healed file has no trace of the torn bytes.
  const LoadResult healed = ResultStore::load(path, kFp);
  EXPECT_FALSE(healed.tail_recovered);
  ASSERT_EQ(healed.records.size(), 2u);
  EXPECT_EQ(healed.records[0], sample_record(0));
  EXPECT_EQ(healed.records[1], sample_record(42));
}

TEST(ResultStore, MissingFileThrows) {
  EXPECT_THROW(ResultStore::load(temp_path("store_nope.ocs"), kFp),
               util::InputError);
}

TEST(ResultStore, SyncOnAppendOffByDefault) {
  const std::string path = temp_path("store_nosync.ocs");
  auto store = ResultStore::create(path, kFp);
  EXPECT_FALSE(store.sync_on_append());
  store.append(sample_record(0));
  store.append(sample_record(7));
  EXPECT_EQ(store.appended(), 2u);
  // The default path must never pay for fsync: no syncs were issued.
  EXPECT_EQ(store.synced(), 0u);
}

TEST(ResultStore, SyncOnAppendFsyncsEveryRecord) {
  const std::string path = temp_path("store_sync.ocs");
  {
    auto store = ResultStore::create(path, kFp, /*sync_on_append=*/true);
    EXPECT_TRUE(store.sync_on_append());
    store.append(sample_record(0));
    EXPECT_EQ(store.synced(), 1u);
    store.append(sample_record(7));
    EXPECT_EQ(store.synced(), 2u);
    EXPECT_EQ(store.synced(), store.appended());
  }
  // Continuation handles honor the flag too, counting only their own
  // appends.
  const LoadResult loaded = ResultStore::load(path, kFp);
  ASSERT_EQ(loaded.records.size(), 2u);
  {
    auto store =
        ResultStore::append_to(path, loaded.valid_bytes, /*sync=*/true);
    EXPECT_TRUE(store.sync_on_append());
    EXPECT_EQ(store.synced(), 0u);
    store.append(sample_record(42));
    EXPECT_EQ(store.synced(), 1u);
  }
  const LoadResult all = ResultStore::load(path, kFp);
  ASSERT_EQ(all.records.size(), 3u);
  EXPECT_EQ(all.records[2], sample_record(42));
}

}  // namespace
}  // namespace opckit::store
