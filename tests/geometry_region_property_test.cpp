/// Property-based tests of the Region algebra: random rectangle soups are
/// generated and set-algebra identities are checked both structurally
/// (canonical-form equality) and pointwise against a brute-force membership
/// oracle.
#include <vector>

#include <gtest/gtest.h>

#include "geometry/region.h"
#include "util/rng.h"

namespace opckit::geom {
namespace {

std::vector<Rect> random_rects(util::Rng& rng, int n, Coord span) {
  std::vector<Rect> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Coord x0 = rng.uniform_int(0, span - 2);
    const Coord y0 = rng.uniform_int(0, span - 2);
    const Coord x1 = x0 + rng.uniform_int(1, span / 3);
    const Coord y1 = y0 + rng.uniform_int(1, span / 3);
    out.emplace_back(x0, y0, x1, y1);
  }
  return out;
}

bool oracle_contains(const std::vector<Rect>& rects, const Point& p) {
  // Open-set oracle on cell centers: p interpreted as the cell
  // [p, p+1)², i.e. inside iff strictly within some rect's span.
  for (const auto& r : rects) {
    if (p.x >= r.lo.x && p.x < r.hi.x && p.y >= r.lo.y && p.y < r.hi.y) {
      return true;
    }
  }
  return false;
}

bool region_covers_cell(const Region& r, const Point& p) {
  for (const auto& s : r.slabs()) {
    if (p.y < s.y0 || p.y >= s.y1) continue;
    for (const auto& iv : s.intervals) {
      if (p.x >= iv.x0 && p.x < iv.x1) return true;
    }
  }
  return false;
}

class RegionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionPropertyTest, BuildMatchesMembershipOracle) {
  util::Rng rng(GetParam());
  const Coord span = 60;
  const auto rects = random_rects(rng, 12, span);
  const Region r = Region::from_rects(rects);
  for (Coord y = -1; y <= span; ++y) {
    for (Coord x = -1; x <= span; ++x) {
      EXPECT_EQ(region_covers_cell(r, {x, y}), oracle_contains(rects, {x, y}))
          << "at (" << x << ',' << y << ") seed " << GetParam();
    }
  }
}

TEST_P(RegionPropertyTest, BooleanOpsMatchOracle) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const Coord span = 50;
  const auto ra = random_rects(rng, 8, span);
  const auto rb = random_rects(rng, 8, span);
  const Region a = Region::from_rects(ra);
  const Region b = Region::from_rects(rb);
  const Region u = a.united(b);
  const Region i = a.intersected(b);
  const Region d = a.subtracted(b);
  const Region x = a.xored(b);
  for (Coord y = 0; y < span; ++y) {
    for (Coord cx = 0; cx < span; ++cx) {
      const Point p{cx, y};
      const bool ia = oracle_contains(ra, p);
      const bool ib = oracle_contains(rb, p);
      EXPECT_EQ(region_covers_cell(u, p), ia || ib);
      EXPECT_EQ(region_covers_cell(i, p), ia && ib);
      EXPECT_EQ(region_covers_cell(d, p), ia && !ib);
      EXPECT_EQ(region_covers_cell(x, p), ia != ib);
    }
  }
}

TEST_P(RegionPropertyTest, AlgebraicIdentities) {
  util::Rng rng(GetParam() ^ 0x5555);
  const auto ra = random_rects(rng, 10, 80);
  const auto rb = random_rects(rng, 10, 80);
  const auto rc = random_rects(rng, 10, 80);
  const Region a = Region::from_rects(ra);
  const Region b = Region::from_rects(rb);
  const Region c = Region::from_rects(rc);

  // Commutativity and associativity (canonical-form equality).
  EXPECT_EQ(a.united(b), b.united(a));
  EXPECT_EQ(a.intersected(b), b.intersected(a));
  EXPECT_EQ(a.united(b).united(c), a.united(b.united(c)));
  EXPECT_EQ(a.intersected(b).intersected(c), a.intersected(b.intersected(c)));
  // Distributivity.
  EXPECT_EQ(a.intersected(b.united(c)),
            a.intersected(b).united(a.intersected(c)));
  // De-Morgan-style: A \ (B ∪ C) == (A \ B) \ C.
  EXPECT_EQ(a.subtracted(b.united(c)), a.subtracted(b).subtracted(c));
  // XOR decomposition.
  EXPECT_EQ(a.xored(b), a.subtracted(b).united(b.subtracted(a)));
  // Idempotence / absorption.
  EXPECT_EQ(a.united(a), a);
  EXPECT_EQ(a.intersected(a), a);
  EXPECT_TRUE(a.subtracted(a).empty());
  EXPECT_EQ(a.united(a.intersected(b)), a);
}

TEST_P(RegionPropertyTest, AreaInclusionExclusion) {
  util::Rng rng(GetParam() ^ 0x777);
  const Region a = Region::from_rects(random_rects(rng, 9, 70));
  const Region b = Region::from_rects(random_rects(rng, 9, 70));
  EXPECT_EQ(a.united(b).area() + a.intersected(b).area(),
            a.area() + b.area());
  EXPECT_EQ(a.xored(b).area(), a.united(b).area() - a.intersected(b).area());
}

TEST_P(RegionPropertyTest, PolygonsRoundTrip) {
  util::Rng rng(GetParam() ^ 0xf00d);
  const Region r = Region::from_rects(random_rects(rng, 15, 90));
  const auto polys = r.polygons();
  EXPECT_EQ(Region::from_polygons(polys), r) << "seed " << GetParam();
  // Total signed area of contours equals region area (holes subtract).
  Coord signed2 = 0;
  for (const auto& p : polys) signed2 += p.signed_area2();
  EXPECT_EQ(signed2 / 2, r.area());
}

TEST_P(RegionPropertyTest, DilateErodeDuality) {
  util::Rng rng(GetParam() ^ 0xd1a);
  const Region r = Region::from_rects(random_rects(rng, 8, 60));
  const Coord d = 3;
  // Extensivity / anti-extensivity.
  EXPECT_EQ(r.inflated(d).intersected(r), r);           // r ⊆ dilate(r)
  EXPECT_EQ(r.inflated(-d).intersected(r), r.inflated(-d));  // erode ⊆ r
  // Opening ⊆ original ⊆ closing.
  EXPECT_EQ(r.opened(d).intersected(r), r.opened(d));
  EXPECT_EQ(r.closed(d).intersected(r), r);
  // Erosion of dilation recovers at least the original (closing).
  EXPECT_EQ(r.inflated(d).inflated(-d).intersected(r), r);
}

TEST_P(RegionPropertyTest, TransposeIsInvolutionAndCommutesWithOps) {
  util::Rng rng(GetParam() ^ 0x111);
  const Region a = Region::from_rects(random_rects(rng, 7, 50));
  const Region b = Region::from_rects(random_rects(rng, 7, 50));
  EXPECT_EQ(a.transposed().transposed(), a);
  EXPECT_EQ(a.united(b).transposed(), a.transposed().united(b.transposed()));
  EXPECT_EQ(a.intersected(b).transposed(),
            a.transposed().intersected(b.transposed()));
  EXPECT_EQ(a.transposed().area(), a.area());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace opckit::geom
