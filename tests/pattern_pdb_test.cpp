#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "pattern/pdb.h"

namespace opckit::pat {
namespace {

using geom::Polygon;
using geom::Rect;

PatternCatalog sample_catalog() {
  std::vector<Polygon> polys;
  for (int i = 0; i < 8; ++i) {
    polys.emplace_back(Rect(i * 500, 0, i * 500 + 180, 3000));
  }
  polys.emplace_back(Rect(0, 5000, 2000, 5400));  // a different shape
  WindowSpec spec;
  spec.radius = 300;
  return build_catalog(polys, spec);
}

TEST(Pdb, RoundTripsExactly) {
  const PatternCatalog cat = sample_catalog();
  std::stringstream ss;
  write_pdb(cat, ss);
  const PatternCatalog back = read_pdb(ss);
  EXPECT_EQ(back.classes(), cat.classes());
  EXPECT_EQ(back.total(), cat.total());
  for (const auto& [hash, cls] : cat.by_hash()) {
    const auto it = back.by_hash().find(hash);
    ASSERT_NE(it, back.by_hash().end()) << "lost class " << hash;
    EXPECT_EQ(it->second.count, cls.count);
    EXPECT_EQ(it->second.first_anchor, cls.first_anchor);
    EXPECT_EQ(it->second.pattern, cls.pattern);
  }
}

TEST(Pdb, DeterministicBytes) {
  const PatternCatalog cat = sample_catalog();
  std::ostringstream a, b;
  write_pdb(cat, a);
  write_pdb(cat, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Pdb, FileRoundTrip) {
  const PatternCatalog cat = sample_catalog();
  const std::string path = ::testing::TempDir() + "/opckit_test.pdb";
  write_pdb_file(cat, path);
  const PatternCatalog back = read_pdb_file(path);
  EXPECT_EQ(back.classes(), cat.classes());
  std::remove(path.c_str());
}

TEST(Pdb, MergeAcrossDesignsAccumulates) {
  // The PDB workflow: persist design A, later merge design B's catalog.
  const PatternCatalog a = sample_catalog();
  std::stringstream ss;
  write_pdb(a, ss);
  PatternCatalog db = read_pdb(ss);
  const PatternCatalog b = sample_catalog();  // same "design" again
  db.merge(b);
  EXPECT_EQ(db.total(), 2 * a.total());
  EXPECT_EQ(db.classes(), a.classes());
}

TEST(Pdb, BadMagicRejected) {
  std::istringstream junk("definitely-not-a-pdb\n");
  EXPECT_THROW(read_pdb(junk), util::InputError);
}

TEST(Pdb, TruncationRejected) {
  const PatternCatalog cat = sample_catalog();
  std::ostringstream os;
  write_pdb(cat, os);
  const std::string full = os.str();
  std::istringstream cut(full.substr(0, full.size() * 2 / 3));
  EXPECT_THROW(read_pdb(cut), util::InputError);
}

TEST(Pdb, HeaderCountMismatchRejected) {
  std::istringstream bad(
      "opckit-pdb 1\n"
      "classes 5 total 100\n");  // claims content it doesn't have
  EXPECT_THROW(read_pdb(bad), util::InputError);
}

TEST(Pdb, V2CarriesWindowSpec) {
  const PatternCatalog cat = sample_catalog();
  ASSERT_TRUE(cat.window_spec().has_value());
  std::stringstream ss;
  write_pdb(cat, ss);
  EXPECT_EQ(ss.str().rfind("opckit-pdb 2\n", 0), 0u);
  const PatternCatalog back = read_pdb(ss);
  ASSERT_TRUE(back.window_spec().has_value());
  EXPECT_EQ(*back.window_spec(), *cat.window_spec());
}

TEST(Pdb, V1FilesWithoutSpecStillRead) {
  // Hand-downgrade a v2 stream: v1 magic, window line removed. Old
  // files keep reading; the extraction policy is simply unknown.
  const PatternCatalog cat = sample_catalog();
  std::ostringstream os;
  write_pdb(cat, os);
  std::string text = os.str();
  const std::size_t magic_end = text.find('\n');
  const std::size_t window_end = text.find('\n', magic_end + 1);
  ASSERT_EQ(text.substr(magic_end + 1, 7), "window ");
  text = "opckit-pdb 1\n" + text.substr(window_end + 1);
  std::istringstream is(text);
  const PatternCatalog back = read_pdb(is);
  EXPECT_FALSE(back.window_spec().has_value());
  EXPECT_EQ(back.classes(), cat.classes());
  EXPECT_EQ(back.total(), cat.total());
}

TEST(Pdb, MalformedWindowLineRejected) {
  std::istringstream bad(
      "opckit-pdb 2\n"
      "window radius nope anchors corners grid 800 skip 1\n"
      "classes 0 total 0\n");
  EXPECT_THROW(read_pdb(bad), util::InputError);
}

TEST(Pdb, SpeclessCatalogWritesNoWindowLine) {
  PatternCatalog specless;
  std::stringstream ss;
  write_pdb(specless, ss);
  EXPECT_EQ(ss.str().find("window"), std::string::npos);
  EXPECT_FALSE(read_pdb(ss).window_spec().has_value());
}

TEST(Pdb, EmptyCatalogRoundTrips) {
  PatternCatalog empty;
  std::stringstream ss;
  write_pdb(empty, ss);
  const PatternCatalog back = read_pdb(ss);
  EXPECT_EQ(back.classes(), 0u);
  EXPECT_EQ(back.total(), 0u);
}

}  // namespace
}  // namespace opckit::pat
