#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/table.h"

namespace opckit::util {
namespace {

TEST(Table, BasicRendering) {
  Table t({"pitch_nm", "cd_nm"});
  t.add_row(std::string("360"), 171.25);
  t.add_row(std::string("720"), 182.5);
  const std::string text = t.to_text("F1");
  EXPECT_NE(text.find("pitch_nm"), std::string::npos);
  EXPECT_NE(text.find("171.250"), std::string::npos);
  EXPECT_NE(text.find("== F1 =="), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.cell(1, 1), "182.500");
}

TEST(Table, MixedCellTypes) {
  Table t({"a", "b", "c"});
  t.start_row();
  t.add_cell(static_cast<long long>(-7));
  t.add_cell(std::size_t{42});
  t.add_cell(3.14159, 2);
  EXPECT_EQ(t.cell(0, 0), "-7");
  EXPECT_EQ(t.cell(0, 1), "42");
  EXPECT_EQ(t.cell(0, 2), "3.14");
}

TEST(Table, CsvEscaping) {
  Table t({"name", "note"});
  t.add_row(std::string("a,b"), std::string("say \"hi\"\nok"));
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\nok\""), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.start_row();
  t.add_cell(std::string("x"));
  EXPECT_THROW(t.add_cell(std::string("y")), CheckError);
}

TEST(Table, CellWithoutRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add_cell(std::string("x")), CheckError);
}

TEST(Table, IncompleteRowBlocksNextRow) {
  Table t({"a", "b"});
  t.start_row();
  t.add_cell(std::string("x"));
  EXPECT_THROW(t.start_row(), CheckError);
}

TEST(Table, WriteCsvRoundTrips) {
  Table t({"k", "v"});
  t.add_row(std::string("alpha"), static_cast<long long>(1));
  const std::string path = ::testing::TempDir() + "/opckit_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "k,v\nalpha,1\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opckit::util
