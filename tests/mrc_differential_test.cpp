/// Differential harness: the scanline MRC engine against the morphology
/// DRC checker on seeded random masks. Both implement the same
/// width/space/area semantics ("strictly below the rule violates,
/// exactly-at-rule passes"), by entirely different algorithms — residue
/// Booleans vs sweep-line runs — so verdict agreement over hundreds of
/// random masks is strong evidence for both. On top of agreement, every
/// scanline violation's witnesses are validated: the measured distance
/// must actually violate the rule, and the witness edges must lie on
/// the mask boundary.
#include <gtest/gtest.h>

#include "drc/drc.h"
#include "mrc/mrc.h"
#include "util/rng.h"

namespace opckit::mrc {
namespace {

using geom::Coord;
using geom::Edge;
using geom::Point;
using geom::Rect;
using geom::Region;

/// Random rect soup with occasional cutouts — width/space/notch/sliver
/// violations appear naturally at the chosen scale.
Region random_mask(util::Rng& rng) {
  Region r;
  const int rects = static_cast<int>(rng.uniform_int(3, 10));
  for (int i = 0; i < rects; ++i) {
    const Coord x = rng.uniform_int(0, 800);
    const Coord y = rng.uniform_int(0, 800);
    const Coord w = rng.uniform_int(20, 300);
    const Coord h = rng.uniform_int(20, 300);
    r = r.united(Region{Rect(x, y, x + w, y + h)});
  }
  const int cuts = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < cuts; ++i) {
    const Coord x = rng.uniform_int(0, 900);
    const Coord y = rng.uniform_int(0, 900);
    const Coord w = rng.uniform_int(10, 150);
    const Coord h = rng.uniform_int(10, 150);
    r = r.subtracted(Region{Rect(x, y, x + w, y + h)});
  }
  return r;
}

/// True when \p e lies on the boundary of \p mask: collinear with and
/// contained in some ring edge (witnesses may be sub-segments of a
/// longer boundary edge, and either orientation of it).
bool on_boundary(const Edge& e, const std::vector<geom::Polygon>& rings) {
  const Rect eb = e.bbox();
  for (const geom::Polygon& ring : rings) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const Rect rb = ring.edge(i).bbox();
      // Manhattan edges: sub-segment iff the bbox contains the bbox on
      // the shared carrier line.
      if (rb.lo.x == rb.hi.x) {  // vertical
        if (eb.lo.x == rb.lo.x && eb.hi.x == rb.lo.x &&
            eb.lo.y >= rb.lo.y && eb.hi.y <= rb.hi.y) {
          return true;
        }
      } else {  // horizontal
        if (eb.lo.y == rb.lo.y && eb.hi.y == rb.lo.y &&
            eb.lo.x >= rb.lo.x && eb.hi.x <= rb.hi.x) {
          return true;
        }
      }
    }
  }
  return false;
}

TEST(MrcDifferential, AgreesWithMorphologyOn240SeededMasks) {
  constexpr Coord kWidthRule = 60;
  constexpr Coord kSpaceRule = 60;
  constexpr Coord kAreaRule = 6400;

  // The corner rule rides along because morphology "space" (closing
  // residue) also fills diagonal constrictions — proximity the scanline
  // engine deliberately classifies as corner-to-corner (MRC006), not
  // space. The space comparison below accounts for the split.
  const Deck deck = {
      {CheckKind::kWidth, "d.width", kWidthRule},
      {CheckKind::kSpace, "d.space", kSpaceRule},
      {CheckKind::kArea, "d.area", kAreaRule},
      {CheckKind::kCorner, "d.corner", kSpaceRule},
  };
  const std::vector<drc::Rule> drc_deck = {
      {drc::RuleKind::kMinWidth, "d.width", kWidthRule},
      {drc::RuleKind::kMinSpace, "d.space", kSpaceRule},
      {drc::RuleKind::kMinArea, "d.area", kAreaRule},
  };

  int dirty_masks = 0;
  for (std::uint64_t seed = 0; seed < 240; ++seed) {
    util::Rng rng(seed);
    const Region mask = random_mask(rng);
    if (mask.empty()) continue;

    const MrcReport scan = check_mask(mask, deck);
    const drc::DrcReport morph = drc::run_deck(mask, drc_deck);
    dirty_masks += !scan.clean();

    // Per-rule verdict agreement (violation existence; the engines
    // partition violating area into runs vs blobs differently, so
    // counts are not comparable, verdicts are).
    for (const char* rule : {"d.width", "d.area"}) {
      EXPECT_EQ(scan.count(rule) > 0, morph.count(rule) > 0)
          << "seed " << seed << " rule " << rule << ": scanline "
          << scan.count(rule) << " vs morphology " << morph.count(rule);
    }
    // Space: a scanline row-gap is exactly area morphological closing
    // fills, so scanline-space implies morphology-space; the reverse
    // direction may surface as a diagonal (corner) witness instead.
    const bool morph_space = morph.count("d.space") > 0;
    const bool scan_space = scan.count("d.space") > 0;
    const bool scan_corner = scan.count("d.corner") > 0;
    if (scan_space) {
      EXPECT_TRUE(morph_space) << "seed " << seed
                               << ": scanline space missed by morphology";
    }
    if (morph_space) {
      EXPECT_TRUE(scan_space || scan_corner)
          << "seed " << seed << ": morphology space missed by scanline";
    }

    // Witness validation for every scanline violation.
    const auto rings = mask.polygons();
    for (const Violation& v : scan.violations) {
      const Coord rule_value = v.kind == CheckKind::kWidth
                                   ? kWidthRule
                                   : (v.kind == CheckKind::kArea
                                          ? kAreaRule
                                          : kSpaceRule);
      EXPECT_GE(v.distance, 0) << "seed " << seed;
      EXPECT_LT(v.distance, rule_value)
          << "seed " << seed << ": reported distance does not violate";
      EXPECT_FALSE(v.marker.is_inverted()) << "seed " << seed;
      EXPECT_TRUE(on_boundary(v.e1, rings))
          << "seed " << seed << ": e1 " << v.e1 << " off boundary";
      EXPECT_TRUE(on_boundary(v.e2, rings))
          << "seed " << seed << ": e2 " << v.e2 << " off boundary";
      if (v.kind == CheckKind::kWidth || v.kind == CheckKind::kSpace) {
        // The facing pair must measure exactly the reported distance
        // apart along the checked axis.
        const Rect b1 = v.e1.bbox();
        const Rect b2 = v.e2.bbox();
        if (b1.lo.x == b1.hi.x && b2.lo.x == b2.hi.x) {
          EXPECT_EQ(b2.lo.x - b1.lo.x, v.distance) << "seed " << seed;
        } else if (b1.lo.y == b1.hi.y && b2.lo.y == b2.hi.y) {
          EXPECT_EQ(b2.lo.y - b1.lo.y, v.distance) << "seed " << seed;
        } else {
          ADD_FAILURE() << "seed " << seed << ": witness pair not parallel";
        }
      }
    }
  }
  // The generator must actually exercise the checks, not vacuously pass.
  EXPECT_GT(dirty_masks, 100);
}

TEST(MrcDifferential, ParityAgreementAtEvenAndOddRules) {
  // The half-kernel parity bug regression, checked differentially: for
  // every width 50..70 against rules 60 and 61, both engines must agree
  // (and match the open-semantics ground truth).
  for (Coord w = 50; w <= 70; ++w) {
    const Region bar{Rect(0, 0, w, 1000)};
    for (Coord rule : {Coord{60}, Coord{61}}) {
      const bool truth = w < rule;
      const bool scan =
          !check_mask(bar, {{CheckKind::kWidth, "w", rule}}).clean();
      const bool morph = !drc::check_min_width(bar, rule, "w").empty();
      EXPECT_EQ(scan, truth) << "scanline width " << w << " rule " << rule;
      EXPECT_EQ(morph, truth) << "morphology width " << w << " rule " << rule;

      const Region gap = Region{Rect(-1000, 0, 0, 1000)}.united(
          Region{Rect(w, 0, w + 1000, 1000)});
      const bool sscan =
          !check_mask(gap, {{CheckKind::kSpace, "s", rule}}).clean();
      const bool smorph = !drc::check_min_space(gap, rule, "s").empty();
      EXPECT_EQ(sscan, truth) << "scanline space " << w << " rule " << rule;
      EXPECT_EQ(smorph, truth) << "morphology space " << w << " rule " << rule;
    }
  }
}

}  // namespace
}  // namespace opckit::mrc
