#include <gtest/gtest.h>

#include "core/flow.h"
#include "layout/generators.h"

namespace opckit::opc {
namespace {

using layout::Library;

FlowSpec fast_flow() {
  FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 6;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

Library small_chip(int cols, int rows) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  // A small, cheap-to-simulate cell: two short lines.
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {1400, 1800});
  return lib;
}

TEST(Flow, CellOpcWritesOutputLayerOncePerCell) {
  Library lib = small_chip(3, 2);
  const FlowSpec spec = fast_flow();
  const FlowStats stats = run_cell_opc(lib, "top", spec);
  EXPECT_EQ(stats.opc_runs, 1u);  // one distinct cell with shapes
  EXPECT_GT(stats.simulations, 0u);
  EXPECT_GE(lib.at("leaf").shapes(spec.output_layer).size(), 2u);
  EXPECT_TRUE(lib.at("top").shapes(spec.output_layer).empty());
  // Output layer flattens to placements x corrected shapes.
  const auto flat = lib.flatten("top", spec.output_layer);
  EXPECT_EQ(flat.size(),
            6 * lib.at("leaf").shapes(spec.output_layer).size());
}

TEST(Flow, FlatOpcRunsPerPlacementAndPass) {
  Library lib = small_chip(2, 2);
  FlowSpec spec = fast_flow();
  spec.flat_context_passes = 1;
  const FlowStats one_pass = run_flat_opc(lib, "top", spec);
  EXPECT_EQ(one_pass.opc_runs, 4u);
  EXPECT_EQ(one_pass.corrected_polygons, 8u);
  EXPECT_EQ(lib.at("top").shapes(spec.output_layer).size(), 8u);

  Library lib3 = small_chip(2, 2);
  spec.flat_context_passes = 2;
  const FlowStats two_pass = run_flat_opc(lib3, "top", spec);
  EXPECT_EQ(two_pass.opc_runs, 8u);
  EXPECT_EQ(two_pass.corrected_polygons, 8u);

  // Flat output costs more simulations than the cell-level flow.
  Library lib2 = small_chip(2, 2);
  const FlowStats cell_stats = run_cell_opc(lib2, "top", spec);
  EXPECT_GT(one_pass.simulations, cell_stats.simulations);
}

TEST(Flow, FlatOpcCorrectionsLandAtPlacements) {
  Library lib = small_chip(2, 1);
  const FlowSpec spec = fast_flow();
  run_flat_opc(lib, "top", spec);
  geom::Rect box = geom::Rect::empty();
  for (const auto& p : lib.at("top").shapes(spec.output_layer)) {
    box = box.united(p.bbox());
  }
  // Both placements covered (second at x offset 1400).
  EXPECT_LE(box.lo.x, 10);
  EXPECT_GE(box.hi.x, 1400 + 700);
}

TEST(Flow, RerunReplacesOutputLayer) {
  Library lib = small_chip(1, 1);
  const FlowSpec spec = fast_flow();
  run_cell_opc(lib, "top", spec);
  const std::size_t n1 = lib.at("leaf").shapes(spec.output_layer).size();
  run_cell_opc(lib, "top", spec);
  EXPECT_EQ(lib.at("leaf").shapes(spec.output_layer).size(), n1);
}

}  // namespace
}  // namespace opckit::opc
