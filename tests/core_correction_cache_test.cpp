#include <gtest/gtest.h>

#include "core/correction_cache.h"

namespace opckit::opc {
namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Region;

/// Two bars of different widths: asymmetric under D4, so a mirrored copy
/// is a genuine frame change and not a disguised translation.
std::vector<Polygon> bars(Point at) {
  return {Polygon(Rect(at.x, at.y, at.x + 180, at.y + 1200)),
          Polygon(Rect(at.x + 540, at.y, at.x + 900, at.y + 1200))};
}

CorrectionCache::Key key_at(Point at) {
  const auto targets = bars(at);
  const Region own = Region::from_polygons(targets);
  return CorrectionCache::make_key(targets, own, own.bbox());
}

TEST(CorrectionCache, TranslatedWindowHitsAndReplaysExactly) {
  CorrectionCache cache;
  const auto k0 = key_at({0, 0});
  const auto r0 = cache.resolve(k0);
  EXPECT_EQ(r0.outcome, CacheOutcome::kMiss);

  // "Solution": the drawn bars with their left edges pulled out 2 nm.
  const std::vector<Polygon> sol = {
      Polygon(Rect(-2, 0, 180, 1200)), Polygon(Rect(538, 0, 900, 1200))};
  cache.store(r0.entry, k0, sol);

  const auto k1 = key_at({10000, 5000});
  const auto r1 = cache.resolve(k1);
  ASSERT_EQ(r1.outcome, CacheOutcome::kHit);
  const auto replay = cache.fetch(r1.entry, k1);
  ASSERT_EQ(replay.size(), sol.size());
  for (std::size_t i = 0; i < sol.size(); ++i) {
    EXPECT_EQ(Region(replay[i].normalized()),
              Region(sol[i].translated({10000, 5000}).normalized()));
  }
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CorrectionCache, SymmetryReuseIsOptIn) {
  // The window mirrored about the y-axis (swapping the unequal bars)
  // canonicalizes to the same form through a different witness
  // orientation. (An x-axis mirror would be a disguised translation:
  // both bars span the same y range.)
  const auto targets = bars({0, 0});
  std::vector<Polygon> mirrored;
  const geom::Transform mirror(geom::Orientation::kMXR180, {0, 0});
  for (const Polygon& p : targets) mirrored.push_back(mirror(p));
  const Region own_m = Region::from_polygons(mirrored);
  const auto k_m = CorrectionCache::make_key(mirrored, own_m, own_m.bbox());
  const auto k0 = key_at({0, 0});
  ASSERT_EQ(k_m.window, k0.window);
  ASSERT_NE(k_m.orientation, k0.orientation);

  {
    // Default policy: a D4 frame change is NOT a hit; the mirrored
    // window gets its own entry (and later translated copies of it hit).
    CorrectionCache cache;
    cache.store(cache.resolve(k0).entry, k0, targets);
    EXPECT_EQ(cache.resolve(k_m).outcome, CacheOutcome::kMiss);
    EXPECT_EQ(cache.size(), 2u);
  }
  {
    CorrectionCache cache(CorrectionCache::Policy{true});
    cache.store(cache.resolve(k0).entry, k0, targets);
    const auto r = cache.resolve(k_m);
    ASSERT_EQ(r.outcome, CacheOutcome::kSymmetryHit);
    // Solution == targets, so the replay must be the mirrored targets.
    std::vector<Polygon> replay;
    for (const Polygon& p : cache.fetch(r.entry, k_m)) {
      replay.push_back(p.normalized());
    }
    EXPECT_EQ(Region::from_polygons(replay), own_m);
    EXPECT_EQ(cache.stats().symmetry_hits, 1u);
  }
}

TEST(CorrectionCache, DifferentOwnershipSplitConflicts) {
  const auto targets = bars({0, 0});
  const Region all = Region::from_polygons(targets);
  const Region first_only(targets[0].normalized());
  const Rect frame = all.bbox();

  CorrectionCache cache;
  const auto k_all = CorrectionCache::make_key(targets, all, frame);
  cache.resolve(k_all);
  const auto k_first = CorrectionCache::make_key(targets, first_only, frame);
  EXPECT_EQ(cache.resolve(k_first).outcome, CacheOutcome::kConflict);
  // The conflicting split got its own entry: a repeat now hits it.
  EXPECT_EQ(cache.resolve(k_first).outcome, CacheOutcome::kHit);
  EXPECT_EQ(cache.stats().conflicts, 1u);
}

TEST(CorrectionCache, DifferentSimulationFrameConflicts) {
  const auto targets = bars({0, 0});
  const Region own = Region::from_polygons(targets);
  const Rect frame = own.bbox();

  CorrectionCache cache;
  cache.resolve(CorrectionCache::make_key(targets, own, frame));
  // Same geometry imaged in a wider frame is a different problem: the
  // raster grid hangs off the frame, so reuse would not be byte-exact.
  const auto k_wide =
      CorrectionCache::make_key(targets, own, frame.inflated(64));
  EXPECT_EQ(cache.resolve(k_wide).outcome, CacheOutcome::kConflict);
}

TEST(CorrectionCache, StatsAccountEveryResolve) {
  CorrectionCache cache;
  cache.store(cache.resolve(key_at({0, 0})).entry, key_at({0, 0}),
              bars({0, 0}));
  cache.resolve(key_at({5000, 0}));
  cache.resolve(key_at({0, 7000}));
  const CorrectionCacheStats& s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.total(), 3u);
}

}  // namespace
}  // namespace opckit::opc
