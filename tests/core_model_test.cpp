#include <cmath>

#include <gtest/gtest.h>

#include "core/model.h"
#include "litho/metrology.h"

namespace opckit::opc {
namespace {

using geom::Polygon;
using geom::Rect;

/// Calibrated process shared by all model-OPC tests (computed once).
const litho::SimSpec& calibrated_spec() {
  static const litho::SimSpec spec = [] {
    litho::SimSpec s;
    s.optics.source.grid = 5;
    s.pixel_nm = 8.0;
    s.guard_nm = 600;
    litho::calibrate_threshold(s, 180, 360);
    return s;
  }();
  return spec;
}

ModelOpcSpec fast_opc() {
  ModelOpcSpec spec;
  spec.max_iterations = 10;
  spec.gain = 0.6;
  return spec;
}

TEST(ModelOpc, ReducesEpeOnIsolatedLine) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1500, 90, 1500)}};
  const Rect window(-400, -800, 400, 800);
  const ModelOpcResult r =
      run_model_opc(targets, calibrated_spec(), window, fast_opc());
  ASSERT_GE(r.history.size(), 2u);
  const double first = r.history.front().max_abs_epe_nm;
  const double last = r.history.back().max_abs_epe_nm;
  EXPECT_GT(first, 4.0) << "iso line should start with real proximity error";
  EXPECT_LT(last, first / 2) << "OPC must reduce the error substantially";
  EXPECT_LT(r.final_iteration().rms_epe_nm, 3.0);
}

TEST(ModelOpc, CorrectedMaskPrintsOnTarget) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1500, 90, 1500)}};
  const Rect window(-400, -800, 400, 800);
  const ModelOpcResult r =
      run_model_opc(targets, calibrated_spec(), window, fast_opc());

  const litho::Simulator sim(calibrated_spec(), window);
  const auto cd_of = [&](const std::vector<Polygon>& mask) {
    const litho::Image lat = sim.latent(mask);
    return litho::printed_cd(lat, {0, 0}, {1, 0}, 700.0, sim.threshold());
  };
  const double cd_before = cd_of(targets);
  const double cd_after = cd_of(r.corrected);
  EXPECT_GT(std::abs(cd_before - 180.0), 4.0);
  EXPECT_LT(std::abs(cd_after - 180.0), 2.5);
}

TEST(ModelOpc, OffsetsSnapToMaskGrid) {
  ModelOpcSpec spec = fast_opc();
  spec.grid_nm = 4;
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1500, 90, 1500)}};
  const ModelOpcResult r = run_model_opc(targets, calibrated_spec(),
                                         Rect(-400, -800, 400, 800), spec);
  for (const auto& f : r.fragments) {
    EXPECT_EQ(f.offset % 4, 0) << "offset " << f.offset;
  }
}

TEST(ModelOpc, RespectsTotalOffsetClamp) {
  ModelOpcSpec spec = fast_opc();
  spec.max_total_offset = 6;
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1500, 90, 1500)}};
  const ModelOpcResult r = run_model_opc(targets, calibrated_spec(),
                                         Rect(-400, -800, 400, 800), spec);
  for (const auto& f : r.fragments) {
    EXPECT_LE(std::abs(f.offset), 6);
  }
}

TEST(ModelOpc, Deterministic) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -900, 90, 900)}};
  const Rect window(-400, -500, 400, 500);
  const ModelOpcResult a =
      run_model_opc(targets, calibrated_spec(), window, fast_opc());
  const ModelOpcResult b =
      run_model_opc(targets, calibrated_spec(), window, fast_opc());
  ASSERT_EQ(a.fragments.size(), b.fragments.size());
  for (std::size_t i = 0; i < a.fragments.size(); ++i) {
    EXPECT_EQ(a.fragments[i].offset, b.fragments[i].offset);
  }
  EXPECT_EQ(a.corrected.size(), b.corrected.size());
}

TEST(ModelOpc, ContextOutsideWindowIsLockedNotCorrected) {
  // Two lines; the window covers only the first. The second provides
  // context but must come back byte-identical.
  const std::vector<Polygon> targets{Polygon{Rect(-90, -900, 90, 900)},
                                     Polygon{Rect(500, -900, 680, 900)}};
  const Rect window(-300, -500, 300, 500);
  const ModelOpcResult r =
      run_model_opc(targets, calibrated_spec(), window, fast_opc());
  ASSERT_EQ(r.corrected.size(), 2u);
  EXPECT_EQ(r.corrected[1], targets[1].normalized());
  EXPECT_NE(r.corrected[0], targets[0].normalized());
}

TEST(ModelOpc, MeasureFragmentEpeMatchesProbeCount) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -900, 90, 900)}};
  FragmentationSpec fs;
  const auto frags = fragment_polygons(targets, fs);
  const auto epes =
      measure_fragment_epe(targets, frags, targets, calibrated_spec(),
                           Rect(-400, -500, 400, 500));
  EXPECT_EQ(epes.size(), frags.size());
  // At least the long-edge fragments inside the window have finite EPE.
  int finite = 0;
  for (double e : epes) finite += !std::isnan(e);
  EXPECT_GT(finite, 4);
}

TEST(ModelOpc, ProbeRangeDefaultMatchesSolver) {
  // A mask biased 160nm past its target puts the printed edge in the
  // (120, 160] band: exactly the displacements the old 120nm metrology
  // default clipped to NaN while the solver probed (and measured) at
  // 160nm. Both paths must share kDefaultProbeRangeNm.
  EXPECT_EQ(ModelOpcSpec{}.probe_range_nm, kDefaultProbeRangeNm);
  const std::vector<Polygon> targets{Polygon{Rect(-90, -900, 90, 900)}};
  const std::vector<Polygon> mask{Polygon{Rect(-90, -900, 250, 900)}};
  FragmentationSpec fs;
  const auto frags = fragment_polygons(targets, fs);
  const Rect window(-400, -500, 400, 500);
  const auto by_default =
      measure_fragment_epe(targets, frags, mask, calibrated_spec(), window);
  const auto by_solver =
      measure_fragment_epe(targets, frags, mask, calibrated_spec(), window,
                           ModelOpcSpec{}.probe_range_nm);
  ASSERT_EQ(by_default.size(), by_solver.size());
  bool saw_band = false;
  for (std::size_t i = 0; i < by_default.size(); ++i) {
    if (std::isnan(by_solver[i])) {
      EXPECT_TRUE(std::isnan(by_default[i])) << "site " << i;
      continue;
    }
    EXPECT_EQ(by_default[i], by_solver[i]) << "site " << i;
    if (std::abs(by_default[i]) > 120.0 && std::abs(by_default[i]) <= 160.0)
      saw_band = true;
  }
  EXPECT_TRUE(saw_band) << "no probe site landed in the (120, 160] band";
}

TEST(ModelOpc, InvalidSpecThrows) {
  ModelOpcSpec spec = fast_opc();
  spec.gain = 0.0;
  const std::vector<Polygon> targets{Polygon{Rect(0, 0, 100, 100)}};
  EXPECT_THROW(
      run_model_opc(targets, calibrated_spec(), Rect(0, 0, 100, 100), spec),
      util::CheckError);
}

}  // namespace
}  // namespace opckit::opc
