#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "core/deck_io.h"

namespace opckit::opc {
namespace {

TEST(DeckIo, RoundTripsDefaultDeck) {
  const RuleDeck deck = default_rule_deck_180();
  std::stringstream ss;
  write_rule_deck(deck, ss);
  const RuleDeck back = read_rule_deck(ss);
  EXPECT_EQ(back.interaction_range, deck.interaction_range);
  EXPECT_EQ(back.line_end_extension, deck.line_end_extension);
  EXPECT_EQ(back.hammer_overhang, deck.hammer_overhang);
  EXPECT_EQ(back.serif_size, deck.serif_size);
  EXPECT_EQ(back.mousebite_size, deck.mousebite_size);
  EXPECT_EQ(back.enable_bias, deck.enable_bias);
  ASSERT_EQ(back.bias_rules.size(), deck.bias_rules.size());
  for (std::size_t i = 0; i < deck.bias_rules.size(); ++i) {
    EXPECT_EQ(back.bias_rules[i].space_min, deck.bias_rules[i].space_min);
    EXPECT_EQ(back.bias_rules[i].space_max, deck.bias_rules[i].space_max);
    EXPECT_EQ(back.bias_rules[i].bias, deck.bias_rules[i].bias);
  }
  // Behavioral equivalence.
  for (geom::Coord s : {0, 100, 250, 500, 1000, 100000}) {
    EXPECT_EQ(back.lookup_bias(s), deck.lookup_bias(s)) << s;
  }
}

TEST(DeckIo, CommentsAndBlankLinesIgnored) {
  std::istringstream is(
      "# fitted 2026-07-07\n"
      "\n"
      "interaction_range 900   # nm\n"
      "bias 0 300 -2\n"
      "bias 300 * 5\n");
  const RuleDeck deck = read_rule_deck(is);
  EXPECT_EQ(deck.interaction_range, 900);
  EXPECT_EQ(deck.lookup_bias(100), -2);
  EXPECT_EQ(deck.lookup_bias(10000), 5);
}

TEST(DeckIo, UnknownKeyRejected) {
  std::istringstream is("frobnication_level 9\n");
  EXPECT_THROW(read_rule_deck(is), util::InputError);
}

TEST(DeckIo, MalformedBiasRejected) {
  std::istringstream a("bias 100 50 3\n");  // max <= min
  EXPECT_THROW(read_rule_deck(a), util::InputError);
  std::istringstream b("bias 100\n");
  EXPECT_THROW(read_rule_deck(b), util::InputError);
}

TEST(DeckIo, OverlappingBiasRulesRejected) {
  std::istringstream is(
      "bias 0 300 1\n"
      "bias 200 400 2\n");
  EXPECT_THROW(read_rule_deck(is), util::InputError);
}

TEST(DeckIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/opckit_deck_test.deck";
  write_rule_deck_file(default_rule_deck_180(), path);
  const RuleDeck back = read_rule_deck_file(path);
  EXPECT_FALSE(back.bias_rules.empty());
  std::remove(path.c_str());
}

TEST(DeckIo, TogglesRoundTrip) {
  RuleDeck deck = default_rule_deck_180();
  deck.enable_serifs = false;
  deck.enable_line_ends = false;
  std::stringstream ss;
  write_rule_deck(deck, ss);
  const RuleDeck back = read_rule_deck(ss);
  EXPECT_FALSE(back.enable_serifs);
  EXPECT_FALSE(back.enable_line_ends);
  EXPECT_TRUE(back.enable_bias);
}

}  // namespace
}  // namespace opckit::opc
