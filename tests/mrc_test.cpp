/// Unit tests for the scanline MRC engine: one suite per check kind,
/// witness-edge exactness, deck parsing, and the lint mapping.
#include <gtest/gtest.h>

#include <fstream>

#include "mrc/mrc.h"
#include "util/check.h"

namespace opckit::mrc {
namespace {

using geom::Coord;
using geom::Edge;
using geom::Point;
using geom::Rect;
using geom::Region;

Deck one(CheckKind kind, Coord value) {
  return {Check{kind, std::string("t.") + to_string(kind), value}};
}

TEST(MrcWidth, WideBarClean) {
  EXPECT_TRUE(
      check_mask(Region{Rect(0, 0, 500, 500)}, one(CheckKind::kWidth, 60))
          .clean());
}

TEST(MrcWidth, NarrowBarWitnessesFacingEdges) {
  // 40-wide vertical bar under a 60 rule: one run, exact witnesses.
  const auto report =
      check_mask(Region{Rect(0, 0, 40, 200)}, one(CheckKind::kWidth, 60));
  ASSERT_EQ(report.violations.size(), 1u);
  const Violation& v = report.violations[0];
  EXPECT_EQ(v.kind, CheckKind::kWidth);
  EXPECT_EQ(v.distance, 40);
  EXPECT_EQ(v.marker, Rect(0, 0, 40, 200));
  // Left boundary travels South (interior East), right boundary North.
  EXPECT_EQ(v.e1, Edge({0, 200}, {0, 0}));
  EXPECT_EQ(v.e2, Edge({40, 0}, {40, 200}));
}

TEST(MrcWidth, HorizontalBarMeasuredViaTranspose) {
  const auto report =
      check_mask(Region{Rect(0, 0, 200, 40)}, one(CheckKind::kWidth, 60));
  ASSERT_EQ(report.violations.size(), 1u);
  const Violation& v = report.violations[0];
  EXPECT_EQ(v.distance, 40);
  EXPECT_EQ(v.marker, Rect(0, 0, 200, 40));
  // Witnesses are the horizontal facing pair, mapped back exactly.
  EXPECT_EQ(v.e1.bbox(), Rect(0, 0, 200, 0));
  EXPECT_EQ(v.e2.bbox(), Rect(0, 40, 200, 40));
}

TEST(MrcWidth, ExactlyAtRulePassesBothParities) {
  // Open semantics at even and odd rule values.
  EXPECT_TRUE(
      check_mask(Region{Rect(0, 0, 60, 900)}, one(CheckKind::kWidth, 60))
          .clean());
  EXPECT_FALSE(
      check_mask(Region{Rect(0, 0, 59, 900)}, one(CheckKind::kWidth, 60))
          .clean());
  EXPECT_TRUE(
      check_mask(Region{Rect(0, 0, 61, 900)}, one(CheckKind::kWidth, 61))
          .clean());
  EXPECT_FALSE(
      check_mask(Region{Rect(0, 0, 60, 900)}, one(CheckKind::kWidth, 61))
          .clean());
}

TEST(MrcWidth, NeckRunSpansOnlyTheNeck) {
  // Dumbbell: the 40-wide neck violates, the 300-wide pads do not.
  const Region r = Region{Rect(0, 0, 300, 300)}
                       .united(Region{Rect(300, 130, 700, 170)})
                       .united(Region{Rect(700, 0, 1000, 300)});
  const auto report = check_mask(r, one(CheckKind::kWidth, 60));
  ASSERT_FALSE(report.clean());
  for (const Violation& v : report.violations) {
    EXPECT_TRUE(v.marker.touches(Rect(300, 130, 700, 170))) << v.marker;
    EXPECT_LT(v.distance, 60);
  }
}

TEST(MrcSpace, FarShapesClean) {
  const Region r =
      Region{Rect(0, 0, 100, 100)}.united(Region{Rect(500, 0, 600, 100)});
  EXPECT_TRUE(check_mask(r, one(CheckKind::kSpace, 60)).clean());
}

TEST(MrcSpace, NarrowGapWitnessesFlankEdges) {
  const Region r =
      Region{Rect(0, 0, 100, 300)}.united(Region{Rect(140, 0, 240, 300)});
  const auto report = check_mask(r, one(CheckKind::kSpace, 60));
  ASSERT_EQ(report.violations.size(), 1u);
  const Violation& v = report.violations[0];
  EXPECT_EQ(v.kind, CheckKind::kSpace);
  EXPECT_EQ(v.distance, 40);
  EXPECT_EQ(v.marker, Rect(100, 0, 140, 300));
  // Left flank is a right boundary (travels North), right flank South.
  EXPECT_EQ(v.e1, Edge({100, 0}, {100, 300}));
  EXPECT_EQ(v.e2, Edge({140, 300}, {140, 0}));
}

TEST(MrcSpace, VerticalGapMeasuredViaTranspose) {
  const Region r =
      Region{Rect(0, 0, 300, 100)}.united(Region{Rect(0, 140, 300, 240)});
  const auto report = check_mask(r, one(CheckKind::kSpace, 60));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].distance, 40);
  EXPECT_EQ(report.violations[0].marker, Rect(0, 100, 300, 140));
}

TEST(MrcSpace, ExactGapPassesBothParities) {
  const auto two_bars = [](Coord gap) {
    return Region{Rect(0, 0, 100, 500)}.united(
        Region{Rect(100 + gap, 0, 200 + gap, 500)});
  };
  EXPECT_TRUE(check_mask(two_bars(60), one(CheckKind::kSpace, 60)).clean());
  EXPECT_FALSE(check_mask(two_bars(59), one(CheckKind::kSpace, 60)).clean());
  EXPECT_TRUE(check_mask(two_bars(61), one(CheckKind::kSpace, 61)).clean());
  EXPECT_FALSE(check_mask(two_bars(60), one(CheckKind::kSpace, 61)).clean());
}

TEST(MrcSpace, SameShapeSlotFlagged) {
  // U-shape whose 60-wide slot is a gap within one polygon.
  const Region r = Region{Rect(0, 0, 500, 400)}.subtracted(
      Region{Rect(220, 100, 280, 400)});
  const auto report = check_mask(r, one(CheckKind::kSpace, 100));
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].distance, 60);
}

TEST(MrcEdge, ShortFragmentEdgesFlagged) {
  // A 100x100 square under an edge rule of 101: all four edges short.
  const auto report =
      check_mask(Region{Rect(0, 0, 100, 100)}, one(CheckKind::kEdgeLength, 101));
  EXPECT_EQ(report.violations.size(), 4u);
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.kind, CheckKind::kEdgeLength);
    EXPECT_EQ(v.distance, 100);
    EXPECT_EQ(v.e1, v.e2);  // single-edge check witnesses itself
  }
  EXPECT_TRUE(
      check_mask(Region{Rect(0, 0, 100, 100)}, one(CheckKind::kEdgeLength, 100))
          .clean());
}

TEST(MrcNotch, ReflexUTurnFlaggedTabExcluded) {
  // Slot of width 60: a notch (both corners reflex).
  const Region notch = Region{Rect(0, 0, 500, 400)}.subtracted(
      Region{Rect(220, 100, 280, 400)});
  const auto flagged = check_mask(notch, one(CheckKind::kNotch, 80));
  ASSERT_EQ(flagged.violations.size(), 1u);
  EXPECT_EQ(flagged.violations[0].kind, CheckKind::kNotch);
  EXPECT_EQ(flagged.violations[0].distance, 60);
  // Base edge of the slot is the marker.
  EXPECT_EQ(flagged.violations[0].marker, Rect(220, 100, 280, 100));
  // Exactly-at-rule passes.
  EXPECT_TRUE(check_mask(notch, one(CheckKind::kNotch, 60)).clean());

  // A 60-wide tab (both corners convex) is the width scan's job, not a
  // notch.
  const Region tab = Region{Rect(0, 0, 500, 100)}.united(
      Region{Rect(220, 100, 280, 200)});
  EXPECT_TRUE(check_mask(tab, one(CheckKind::kNotch, 80)).clean());
}

TEST(MrcJog, StaircaseRiserFlagged) {
  // S-step: two East runs offset by a 10-long riser.
  const geom::Polygon step({{0, 0},
                            {100, 0},
                            {100, 10},
                            {200, 10},
                            {200, 100},
                            {0, 100}});
  const Region r{step.normalized()};
  const auto report = check_mask(r, one(CheckKind::kJog, 20));
  ASSERT_FALSE(report.clean());
  const Violation& v = report.violations[0];
  EXPECT_EQ(v.kind, CheckKind::kJog);
  EXPECT_EQ(v.distance, 10);
  // Witnesses are the parallel arms, marker the riser.
  EXPECT_EQ(v.marker, Rect(100, 0, 100, 10));
  EXPECT_NE(v.e1, v.e2);
  // Exactly-at-rule passes; a plain rectangle has no jogs at all.
  EXPECT_TRUE(check_mask(r, one(CheckKind::kJog, 10)).clean());
  EXPECT_TRUE(
      check_mask(Region{Rect(0, 0, 300, 300)}, one(CheckKind::kJog, 50))
          .clean());
}

TEST(MrcCorner, DiagonalGapChebyshev) {
  // Convex corners opening toward each other across a 40/40 diagonal.
  const Region r = Region{Rect(0, 0, 100, 100)}.united(
      Region{Rect(140, 140, 240, 240)});
  const auto report = check_mask(r, one(CheckKind::kCorner, 60));
  ASSERT_EQ(report.violations.size(), 1u);
  const Violation& v = report.violations[0];
  EXPECT_EQ(v.kind, CheckKind::kCorner);
  EXPECT_EQ(v.distance, 40);
  EXPECT_EQ(v.marker, Rect(100, 100, 140, 140));
  // Exactly-at-rule passes.
  EXPECT_TRUE(check_mask(r, one(CheckKind::kCorner, 40)).clean());
}

TEST(MrcCorner, TouchingCornersMeasureZero) {
  const Region r = Region{Rect(0, 0, 100, 100)}.united(
      Region{Rect(100, 100, 200, 200)});
  const auto report = check_mask(r, one(CheckKind::kCorner, 60));
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].distance, 0);
}

TEST(MrcCorner, ConcaveCornerNotPaired) {
  // An L-shape's reflex corner must not pair with its own convex ones.
  const Region l = Region{Rect(0, 0, 300, 100)}.united(
      Region{Rect(0, 0, 100, 300)});
  EXPECT_TRUE(check_mask(l, one(CheckKind::kCorner, 60)).clean());
}

TEST(MrcCorner, SecondDiagonalPairingDetected) {
  // SE-opening corner faces NW-opening corner to its lower-right.
  const Region r = Region{Rect(0, 140, 100, 240)}.united(
      Region{Rect(130, 0, 230, 110)});
  const auto report = check_mask(r, one(CheckKind::kCorner, 60));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].distance, 30);
  EXPECT_EQ(report.violations[0].marker, Rect(100, 110, 130, 140));
}

TEST(MrcArea, SmallIslandFlaggedWithComponentBox) {
  const Region r = Region{Rect(0, 0, 1000, 1000)}.united(
      Region{Rect(2000, 0, 2050, 50)});
  const auto report = check_mask(r, one(CheckKind::kArea, 6400));
  ASSERT_EQ(report.violations.size(), 1u);
  const Violation& v = report.violations[0];
  EXPECT_EQ(v.kind, CheckKind::kArea);
  EXPECT_EQ(v.distance, 2500);  // measured value = component area
  EXPECT_EQ(v.marker, Rect(2000, 0, 2050, 50));
}

TEST(MrcArea, HolesSubtractAndLShapeConnects) {
  // Donut: 100x100 outer minus 60x60 hole = 6400 area exactly: passes
  // at 6400, fails at 6401.
  const Region donut = Region{Rect(0, 0, 100, 100)}.subtracted(
      Region{Rect(20, 20, 80, 80)});
  EXPECT_TRUE(check_mask(donut, one(CheckKind::kArea, 6400)).clean());
  EXPECT_FALSE(check_mask(donut, one(CheckKind::kArea, 6401)).clean());

  // L of two 100x20 arms: one component of area 3600, not two of 2000.
  const Region l = Region{Rect(0, 0, 100, 20)}.united(
      Region{Rect(0, 20, 20, 100)});
  EXPECT_TRUE(check_mask(l, one(CheckKind::kArea, 3600)).clean());
  const auto split = check_mask(l, one(CheckKind::kArea, 3601));
  ASSERT_EQ(split.violations.size(), 1u);
  EXPECT_EQ(split.violations[0].distance, 3600);
}

TEST(MrcReportApi, EmptyInputsAreClean) {
  EXPECT_TRUE(check_mask(Region{}, mask_deck_180()).clean());
  EXPECT_TRUE(check_mask(Region{Rect(0, 0, 10, 10)}, Deck{}).clean());
  EXPECT_TRUE(check_polygons({}, mask_deck_180()).clean());
}

TEST(MrcReportApi, NonPositiveRuleValueChecks) {
  EXPECT_THROW(
      check_mask(Region{Rect(0, 0, 10, 10)}, one(CheckKind::kWidth, 0)),
      util::CheckError);
}

TEST(MrcReportApi, SortAndDedupNormalizes) {
  const Region r = Region{Rect(0, 0, 40, 200)};
  const Deck deck = one(CheckKind::kWidth, 60);
  auto report = check_mask(r, deck);
  ASSERT_EQ(report.violations.size(), 1u);
  std::vector<Violation> twice = {report.violations[0], report.violations[0]};
  sort_and_dedup(twice);
  EXPECT_EQ(twice.size(), 1u);
  EXPECT_EQ(report.count("t.width"), 1u);
  EXPECT_EQ(report.count("no.such.rule"), 0u);
}

TEST(MrcLint, ReportMapsToRegistryCodes) {
  const Region r = Region{Rect(0, 0, 40, 40)};  // tiny: width + area
  Deck deck = one(CheckKind::kWidth, 60);
  deck.push_back({CheckKind::kArea, "t.area", 6400});
  deck.push_back({CheckKind::kJog, "t.jog", 20});
  const auto lint = to_lint_report(check_mask(r, deck), "leaf");
  ASSERT_FALSE(lint.empty());
  for (const auto& d : lint.findings()) {
    EXPECT_EQ(d.cell, "leaf");
    EXPECT_TRUE(d.code == "MRC001" || d.code == "MRC007") << d.code;
    EXPECT_EQ(d.severity, lint::Severity::kError);
    EXPECT_NE(d.message.find("measured"), std::string::npos);
    EXPECT_FALSE(d.where.is_empty() && d.code == "MRC001");
  }
  // Jogs map to the warning-severity MRC005.
  const geom::Polygon step({{0, 0},
                            {100, 0},
                            {100, 10},
                            {200, 10},
                            {200, 100},
                            {0, 100}});
  const auto jogs = to_lint_report(
      check_mask(Region{step.normalized()}, one(CheckKind::kJog, 20)));
  ASSERT_FALSE(jogs.empty());
  EXPECT_EQ(jogs.findings()[0].code, "MRC005");
  EXPECT_EQ(jogs.findings()[0].severity, lint::Severity::kWarning);
  EXPECT_TRUE(jogs.clean());  // warnings only: no gate-blocking errors
}

TEST(MrcDeck, ParseAcceptsKeywordsAndComments) {
  const Deck deck = parse_deck(
      "# mask shop minimums\n"
      "width 60\n"
      "space 60  # facing edges\n"
      "\n"
      "area 6400\n");
  ASSERT_EQ(deck.size(), 3u);
  EXPECT_EQ(deck[0].kind, CheckKind::kWidth);
  EXPECT_EQ(deck[0].name, "mrc.width.60");
  EXPECT_EQ(deck[0].value, 60);
  EXPECT_EQ(deck[2].kind, CheckKind::kArea);
  EXPECT_EQ(deck[2].value, 6400);
}

TEST(MrcDeck, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_deck("bogus 10\n"), util::InputError);
  EXPECT_THROW(parse_deck("width -5\n"), util::InputError);
  EXPECT_THROW(parse_deck("width 0\n"), util::InputError);
  EXPECT_THROW(parse_deck("width\n"), util::InputError);
  EXPECT_THROW(parse_deck("width 60 extra\n"), util::InputError);
  try {
    parse_deck("width 60\nbogus 10\n");
    FAIL() << "expected InputError";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(MrcDeck, ReadDeckFileRoundTripsAndRejectsMissing) {
  const std::string path = ::testing::TempDir() + "/mrc_deck.txt";
  {
    std::ofstream out(path);
    out << "width 60\nnotch 80\n";
  }
  const Deck deck = read_deck_file(path);
  ASSERT_EQ(deck.size(), 2u);
  EXPECT_EQ(deck[1].kind, CheckKind::kNotch);
  std::remove(path.c_str());
  EXPECT_THROW(read_deck_file(path), util::InputError);
}

TEST(MrcDeck, Deck180CoversEveryKind) {
  const Deck deck = mask_deck_180();
  ASSERT_EQ(deck.size(), 7u);
  for (const Check& c : deck) {
    EXPECT_GT(c.value, 0);
    EXPECT_EQ(c.name.rfind("mrc.", 0), 0u) << c.name;
    EXPECT_NE(std::string(lint_code(c.kind)).rfind("MRC", 0),
              std::string::npos);
  }
}

TEST(MrcDeterminism, ReportsAreInCanonicalOrder) {
  // A mask violating several rules at once: the report must come back
  // sorted under violation_less regardless of internal scan order.
  const Region r = Region{Rect(0, 0, 40, 200)}
                       .united(Region{Rect(70, 0, 110, 200)})
                       .united(Region{Rect(300, 0, 330, 30)});
  const auto report = check_mask(r, mask_deck_180());
  ASSERT_FALSE(report.clean());
  for (std::size_t i = 1; i < report.violations.size(); ++i) {
    EXPECT_FALSE(violation_less(report.violations[i],
                                report.violations[i - 1]))
        << "out of order at " << i;
  }
  // And re-running yields the identical report.
  const auto again = check_mask(r, mask_deck_180());
  EXPECT_EQ(report.violations, again.violations);
}

}  // namespace
}  // namespace opckit::mrc
