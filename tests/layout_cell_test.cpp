#include <gtest/gtest.h>

#include "layout/cell.h"

namespace opckit::layout {
namespace {

using geom::Point;
using geom::Rect;

TEST(Layer, OrderingAndEquality) {
  EXPECT_EQ((Layer{10, 0}), (Layer{10, 0}));
  EXPECT_LT((Layer{10, 0}), (Layer{10, 1}));
  EXPECT_LT((Layer{10, 5}), (Layer{11, 0}));
}

TEST(Cell, AddAndQueryShapes) {
  Cell c("test");
  EXPECT_EQ(c.name(), "test");
  c.add_rect(layers::kPoly, Rect(0, 0, 100, 50));
  c.add_rect(layers::kMetal1, Rect(0, 0, 10, 10));
  c.add_rect(layers::kPoly, Rect(200, 0, 300, 50));
  EXPECT_EQ(c.shapes(layers::kPoly).size(), 2u);
  EXPECT_EQ(c.shapes(layers::kMetal1).size(), 1u);
  EXPECT_TRUE(c.shapes(layers::kContact).empty());
  EXPECT_EQ(c.polygon_count(), 3u);
  EXPECT_EQ(c.vertex_count(), 12u);
}

TEST(Cell, LayersListsOnlyPopulated) {
  Cell c("t");
  c.add_rect(layers::kMetal1, Rect(0, 0, 1, 1));
  c.add_rect(layers::kPoly, Rect(0, 0, 1, 1));
  const auto ls = c.layers();
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(ls[0], layers::kPoly);    // 10/0 sorts before 20/0
  EXPECT_EQ(ls[1], layers::kMetal1);
}

TEST(Cell, ClearLayer) {
  Cell c("t");
  c.add_rect(layers::kPoly, Rect(0, 0, 1, 1));
  c.clear_layer(layers::kPoly);
  EXPECT_TRUE(c.shapes(layers::kPoly).empty());
  EXPECT_EQ(c.polygon_count(), 0u);
}

TEST(Cell, LocalBboxIgnoresRefs) {
  Cell c("t");
  c.add_rect(layers::kPoly, Rect(10, 10, 20, 20));
  c.add_rect(layers::kMetal1, Rect(-5, 0, 0, 5));
  CellRef ref;
  ref.child = "elsewhere";
  ref.transform.displacement = {10000, 10000};
  c.add_ref(ref);
  EXPECT_EQ(c.local_bbox(), Rect(-5, 0, 20, 20));
}

TEST(CellRef, ElementTransformSteps) {
  CellRef ref;
  ref.child = "x";
  ref.transform.displacement = {100, 200};
  ref.columns = 3;
  ref.rows = 2;
  ref.column_step = {50, 0};
  ref.row_step = {0, 80};
  EXPECT_EQ(ref.placements(), 6);
  EXPECT_EQ(ref.element_transform(0, 0).displacement, Point(100, 200));
  EXPECT_EQ(ref.element_transform(2, 1).displacement, Point(200, 280));
}

}  // namespace
}  // namespace opckit::layout
