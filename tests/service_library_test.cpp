/// CorrectionLibrary + FlowSpec service-hook tests: cross-run sharing,
/// dedup, durable reload, and the preload/record_sink/cancel/progress
/// plumbing the daemon builds on (src/service/library.h, core/flow.h).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/flow.h"
#include "layout/generators.h"
#include "service/library.h"

namespace opckit::svc {
namespace {

using layout::Library;

opc::FlowSpec fast_flow() {
  opc::FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 2;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

/// Repeated-placement chip: pitch far above the halo, so every placement
/// is one pattern class and replay coverage is total.
Library sparse_chip(int cols = 3, int rows = 3) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {4000, 4000});
  return lib;
}

std::vector<geom::Polygon> output_polys(const Library& lib,
                                        const opc::FlowSpec& spec) {
  const auto shapes = lib.at("top").shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

store::TileRecord sample_record(geom::Coord x) {
  store::TileRecord rec;
  rec.window_rects.push_back(geom::Rect(x, 0, x + 180, 1200));
  rec.own_rects = rec.window_rects;
  rec.frame = geom::Rect(x - 800, -800, x + 980, 2000);
  rec.solution.push_back(
      geom::Polygon(geom::Rect(x, 0, x + 182, 1200)));
  return rec;
}

TEST(ServiceLibrary, SnapshotOfFreshFingerprintIsEmpty) {
  CorrectionLibrary lib({});
  EXPECT_TRUE(lib.snapshot(42).empty());
  EXPECT_EQ(lib.size(42), 0u);
}

TEST(ServiceLibrary, AddDeduplicatesByFullRecordEquality) {
  CorrectionLibrary lib({});
  lib.add(1, sample_record(0));
  lib.add(1, sample_record(0));  // identical: dropped
  EXPECT_EQ(lib.size(1), 1u);
  lib.add(1, sample_record(500));  // different geometry: kept
  EXPECT_EQ(lib.size(1), 2u);
  // Same geometry, different solution: NOT equal, kept (first match
  // still wins at resolve time — import order decides).
  store::TileRecord variant = sample_record(0);
  variant.solution.clear();
  lib.add(1, variant);
  EXPECT_EQ(lib.size(1), 3u);
}

TEST(ServiceLibrary, ShelvesAreIndependentPerFingerprint) {
  CorrectionLibrary lib({});
  lib.add(1, sample_record(0));
  lib.add(2, sample_record(0));
  EXPECT_EQ(lib.size(1), 1u);
  EXPECT_EQ(lib.size(2), 1u);
  EXPECT_TRUE(lib.snapshot(3).empty());
}

TEST(ServiceLibrary, DurableShelfReloadsAcrossInstances) {
  const std::string dir = temp_dir("svc_lib_reload");
  {
    CorrectionLibrary lib({dir, /*sync_on_append=*/true});
    lib.add(7, sample_record(0));
    lib.add(7, sample_record(500));
    EXPECT_TRUE(std::filesystem::exists(lib.path_for(7)));
  }
  // A second instance over the same directory — the daemon-restart path.
  CorrectionLibrary lib2({dir, true});
  const auto shelf = lib2.snapshot(7);
  ASSERT_EQ(shelf.size(), 2u);
  EXPECT_EQ(shelf[0], sample_record(0));
  EXPECT_EQ(shelf[1], sample_record(500));
  // Dedup survives the reload: re-adding a loaded record is a no-op.
  lib2.add(7, sample_record(0));
  EXPECT_EQ(lib2.size(7), 2u);
}

TEST(ServiceLibrary, MemoryOnlyModeWritesNoFiles) {
  CorrectionLibrary lib({});
  lib.add(1, sample_record(0));
  EXPECT_EQ(lib.path_for(1), "");
}

TEST(ServiceLibrary, FingerprintKeyedFileNames) {
  CorrectionLibrary lib({"/some/dir", true});
  EXPECT_EQ(lib.path_for(0xDEADBEEF),
            "/some/dir/00000000deadbeef.ocs");
}

// ---- FlowSpec service hooks -------------------------------------------

TEST(ServiceLibrary, PreloadAndRecordSinkRoundTripThroughFlow) {
  const opc::FlowSpec base = fast_flow();
  const std::uint64_t fp = opc::flow_fingerprint(base, "flat");
  CorrectionLibrary shared({});

  // First run: everything solves fresh; every class lands in the library
  // via record_sink.
  Library chip1 = sparse_chip();
  opc::FlowSpec first = base;
  first.record_sink = [&](const store::TileRecord& rec) {
    shared.add(fp, rec);
  };
  const opc::FlowStats stats1 = opc::run_flat_opc(chip1, "top", first);
  EXPECT_GT(stats1.opc_runs, 0u);
  EXPECT_GT(shared.size(fp), 0u);

  // Second run, fresh process state: preloaded snapshot replays every
  // tile — zero solves — and the output is byte-identical.
  Library chip2 = sparse_chip();
  opc::FlowSpec second = base;
  const std::vector<store::TileRecord> shelf = shared.snapshot(fp);
  second.preload = &shelf;
  const opc::FlowStats stats2 = opc::run_flat_opc(chip2, "top", second);
  EXPECT_EQ(stats2.opc_runs, 0u);
  EXPECT_EQ(stats2.store_entries_loaded, shelf.size());
  EXPECT_GT(stats2.store_hits, 0u);
  EXPECT_EQ(output_polys(chip1, base), output_polys(chip2, base));
}

TEST(ServiceLibrary, PreloadRequiresCache) {
  Library chip = sparse_chip(1, 1);
  opc::FlowSpec spec = fast_flow();
  spec.cache = false;
  const std::vector<store::TileRecord> shelf = {sample_record(0)};
  spec.preload = &shelf;
  EXPECT_THROW(opc::run_flat_opc(chip, "top", spec), util::InputError);
}

TEST(ServiceLibrary, PreSetCancelAbortsBeforeAnyWork) {
  Library chip = sparse_chip(1, 1);
  opc::FlowSpec spec = fast_flow();
  const std::atomic<bool> cancel{true};
  spec.cancel = &cancel;
  EXPECT_THROW(opc::run_flat_opc(chip, "top", spec), opc::FlowAborted);
  EXPECT_TRUE(output_polys(chip, spec).empty());
}

TEST(ServiceLibrary, ProgressEventsCoverEveryPhaseInOrder) {
  Library chip = sparse_chip(2, 2);
  opc::FlowSpec spec = fast_flow();
  std::vector<opc::FlowProgress> events;
  spec.progress = [&](const opc::FlowProgress& p) { events.push_back(p); };
  opc::run_flat_opc(chip, "top", spec);

  ASSERT_FALSE(events.empty());
  auto count_phase_starts = [&](std::string_view phase) {
    std::size_t n = 0;
    for (const auto& e : events) {
      if (e.phase == phase && e.tiles_done == 0) ++n;
    }
    return n;
  };
  // Two context passes: each phase starts once per pass.
  EXPECT_EQ(count_phase_starts("gather"), 2u);
  EXPECT_EQ(count_phase_starts("resolve"), 2u);
  EXPECT_EQ(count_phase_starts("solve"), 2u);
  EXPECT_EQ(count_phase_starts("merge"), 2u);
  // The merge watermark reaches tiles_total in the final pass.
  const auto& last = events.back();
  EXPECT_EQ(last.phase, "merge");
  EXPECT_EQ(last.pass, 1);
  EXPECT_EQ(last.tiles_done, last.tiles_total);
  EXPECT_EQ(last.tiles_total, 4u);
}

TEST(ServiceLibrary, ProgressIsObservabilityOnly) {
  // Same run with and without a progress handler: identical output and
  // identical work accounting.
  Library with = sparse_chip();
  Library without = sparse_chip();
  opc::FlowSpec spec = fast_flow();
  const opc::FlowStats plain = opc::run_flat_opc(without, "top", spec);
  std::size_t events = 0;
  spec.progress = [&](const opc::FlowProgress&) { ++events; };
  const opc::FlowStats observed = opc::run_flat_opc(with, "top", spec);
  EXPECT_GT(events, 0u);
  EXPECT_EQ(plain.opc_runs, observed.opc_runs);
  EXPECT_EQ(output_polys(with, spec), output_polys(without, spec));
}

}  // namespace
}  // namespace opckit::svc
