#include <gtest/gtest.h>

#include "util/strings.h"

namespace opckit::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto v = split("a,,b", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
}

TEST(Split, NoSeparator) {
  const auto v = split("abc", ',');
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "abc");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(ToLower, Ascii) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KiB");
  EXPECT_EQ(human_bytes(3 * 1024ull * 1024ull), "3.00 MiB");
}

}  // namespace
}  // namespace opckit::util
