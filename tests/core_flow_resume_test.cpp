/// Crash-recovery, resume, and incremental-ECO regression tests for the
/// persistent correction store (FlowSpec::store_path / resume).
///
/// Named FlowResume* so tools/ci.sh can select them (with the
/// ThreadPool/FlowParallel tests) for the thread-sanitizer job; carried
/// by the `store`-labelled test target so the ASan job gates on them.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/flow.h"
#include "layout/generators.h"
#include "store/result_store.h"
#include "util/check.h"

namespace opckit::opc {
namespace {

using layout::Library;

FlowSpec fast_flow() {
  FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 2;  // replay correctness is iteration-agnostic
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

/// Context-coupled chip: pitch below the halo, every window unique-ish.
Library dense_chip(int cols, int rows) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {1400, 1800});
  return lib;
}

/// The T3 4×4 repeated-placement chip, built from 16 individual SREFs so
/// a single placement can be retargeted (an AREF cannot be partially
/// edited). Placement \p eco, if non-negative, references an edited leaf
/// whose second bar is 40nm wider — the "1-cell ECO".  Pitch 4000 keeps
/// every placement outside its neighbours' 800nm halo, so an unedited
/// placement's optical neighborhood is unchanged by the edit.
Library sref_chip(int eco = -1) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  if (eco >= 0) {
    layout::Cell& edited = lib.cell("leaf_eco");
    edited.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
    edited.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 760, 1200));
  }
  layout::Cell& top = lib.cell("top");
  for (int i = 0; i < 16; ++i) {
    layout::CellRef ref;
    ref.child = i == eco ? "leaf_eco" : "leaf";
    ref.transform =
        geom::Transform(geom::Point{(i % 4) * 4000, (i / 4) * 4000});
    top.add_ref(std::move(ref));
  }
  return lib;
}

std::vector<geom::Polygon> output_polys(const Library& lib,
                                        const std::string& cell,
                                        const FlowSpec& spec) {
  const auto shapes = lib.at(cell).shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

std::string store_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

TEST(FlowResume, FlatCrashThenResumeIsByteIdentical) {
  FlowSpec spec = fast_flow();

  // Uninterrupted reference run (no store).
  Library ref_lib = dense_chip(2, 2);
  const FlowStats ref = run_flat_opc(ref_lib, "top", spec);
  const auto ref_out = output_polys(ref_lib, "top", spec);
  ASSERT_FALSE(ref_out.empty());
  ASSERT_EQ(ref.opc_runs, 8u);  // 4 context-coupled placements x 2 passes

  // Per job count: "crash" after 3 merged tiles with the store attached,
  // then restart with resume — byte-identical output, only the unsolved
  // tiles re-run.
  spec.store_path = store_path("flow_crash_flat.ocs");
  for (int jobs : {1, 8}) {
    spec.jobs = jobs;
    std::filesystem::remove(spec.store_path);
    {
      FlowSpec crash = spec;
      crash.fail_after_tiles = 3;
      Library lib = dense_chip(2, 2);
      EXPECT_THROW(run_flat_opc(lib, "top", crash), FlowAborted);
    }
    FlowSpec resume = spec;
    resume.resume = true;
    Library lib = dense_chip(2, 2);
    const FlowStats s = run_flat_opc(lib, "top", resume);
    EXPECT_EQ(output_polys(lib, "top", resume), ref_out) << "jobs=" << jobs;
    EXPECT_EQ(s.store_entries_loaded, 3u) << "jobs=" << jobs;
    EXPECT_EQ(s.store_hits, 3u) << "jobs=" << jobs;
    EXPECT_EQ(s.opc_runs, 5u) << "jobs=" << jobs;
  }
}

TEST(FlowResume, CellCrashThenResumeIsByteIdentical) {
  FlowSpec spec = fast_flow();

  // Two distinct leaf cells so the cell flow has two tiles to solve.
  auto build = [] {
    Library lib = dense_chip(2, 2);
    layout::Cell& other = lib.cell("leaf2");
    other.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 240, 900));
    layout::CellRef ref;
    ref.child = "leaf2";
    ref.transform = geom::Transform(geom::Point{20000, 0});
    lib.cell("top").add_ref(std::move(ref));
    return lib;
  };

  Library ref_lib = build();
  const FlowStats ref = run_cell_opc(ref_lib, "top", spec);
  ASSERT_EQ(ref.opc_runs, 2u);
  const auto ref_leaf = output_polys(ref_lib, "leaf", spec);
  const auto ref_leaf2 = output_polys(ref_lib, "leaf2", spec);
  ASSERT_FALSE(ref_leaf.empty());

  spec.store_path = store_path("flow_crash_cell.ocs");
  for (int jobs : {1, 8}) {
    spec.jobs = jobs;
    std::filesystem::remove(spec.store_path);
    {
      FlowSpec crash = spec;
      crash.fail_after_tiles = 1;
      Library lib = build();
      EXPECT_THROW(run_cell_opc(lib, "top", crash), FlowAborted);
    }
    FlowSpec resume = spec;
    resume.resume = true;
    Library lib = build();
    const FlowStats s = run_cell_opc(lib, "top", resume);
    EXPECT_EQ(output_polys(lib, "leaf", resume), ref_leaf)
        << "jobs=" << jobs;
    EXPECT_EQ(output_polys(lib, "leaf2", resume), ref_leaf2)
        << "jobs=" << jobs;
    EXPECT_EQ(s.store_entries_loaded, 1u) << "jobs=" << jobs;
    EXPECT_EQ(s.store_hits, 1u) << "jobs=" << jobs;
    EXPECT_EQ(s.opc_runs, 1u) << "jobs=" << jobs;
  }
}

TEST(FlowResume, WarmStoreReplaysWholeChip) {
  FlowSpec spec = fast_flow();
  spec.store_path = store_path("flow_warm.ocs");

  Library cold = sref_chip();
  const FlowStats first = run_flat_opc(cold, "top", spec);
  EXPECT_EQ(first.opc_runs, 1u);  // 16 identical isolated placements
  EXPECT_EQ(first.store_entries_appended, 1u);
  EXPECT_EQ(first.store_hits, 0u);  // nothing was preloaded

  spec.resume = true;
  Library warm = sref_chip();
  const FlowStats second = run_flat_opc(warm, "top", spec);
  EXPECT_EQ(second.opc_runs, 0u);
  EXPECT_EQ(second.store_entries_loaded, 1u);
  EXPECT_EQ(second.store_entries_appended, 0u);
  EXPECT_EQ(second.store_hits, 32u);  // 16 placements x 2 passes
  EXPECT_EQ(output_polys(warm, "top", spec), output_polys(cold, "top", spec));
}

TEST(FlowResume, EcoResolvesOnlyEditedPlacement) {
  FlowSpec spec = fast_flow();
  spec.store_path = store_path("flow_eco.ocs");

  // Base tapeout run on the unedited chip, store attached.
  Library base = sref_chip();
  const FlowStats base_stats = run_flat_opc(base, "top", spec);
  ASSERT_EQ(base_stats.opc_runs, 1u);

  // ECO: placement 5 swapped for an edited leaf. Resume against the base
  // store — only the edited placement's tiles miss.
  spec.resume = true;
  Library eco = sref_chip(5);
  const FlowStats eco_stats = run_flat_opc(eco, "top", spec);
  EXPECT_EQ(eco_stats.store_entries_loaded, 1u);
  EXPECT_EQ(eco_stats.store_hits, 30u);  // >= 30 of 32 tiles replayed
  EXPECT_EQ(eco_stats.opc_runs, 1u);    // one fresh solve for the edit
  EXPECT_EQ(eco_stats.store_entries_appended, 1u);

  // The incremental result must match a from-scratch run on the edited
  // layout, byte for byte.
  FlowSpec scratch = fast_flow();
  Library full = sref_chip(5);
  run_flat_opc(full, "top", scratch);
  EXPECT_EQ(output_polys(eco, "top", spec),
            output_polys(full, "top", scratch));
}

TEST(FlowResume, FingerprintMismatchIsRefused) {
  FlowSpec spec = fast_flow();
  spec.store_path = store_path("flow_fpmismatch.ocs");
  store::ResultStore::create(spec.store_path, 0xDEADBEEFULL);
  spec.resume = true;
  Library lib = sref_chip();
  try {
    run_flat_opc(lib, "top", spec);
    FAIL() << "stale store was not refused";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("STO001"), std::string::npos)
        << e.what();
  }
}

TEST(FlowResume, StoreRequiresCache) {
  FlowSpec spec = fast_flow();
  spec.store_path = store_path("flow_nocache.ocs");
  spec.cache = false;
  Library lib = sref_chip();
  EXPECT_THROW(run_flat_opc(lib, "top", spec), util::InputError);
}

TEST(FlowResume, FaultInjectionWorksWithoutStore) {
  FlowSpec spec = fast_flow();
  spec.fail_after_tiles = 1;
  Library lib = sref_chip();
  EXPECT_THROW(run_flat_opc(lib, "top", spec), FlowAborted);
}

TEST(FlowResume, FingerprintCoversFlowKindAndKnobs) {
  const FlowSpec a = fast_flow();
  FlowSpec b = fast_flow();
  EXPECT_EQ(flow_fingerprint(a, "flat"), flow_fingerprint(b, "flat"));
  EXPECT_NE(flow_fingerprint(a, "flat"), flow_fingerprint(a, "cell"));
  b.opc.gain += 0.1;
  EXPECT_NE(flow_fingerprint(a, "flat"), flow_fingerprint(b, "flat"));
  b = fast_flow();
  b.sim.resist.threshold += 1e-6;
  EXPECT_NE(flow_fingerprint(a, "flat"), flow_fingerprint(b, "flat"));
  b = fast_flow();
  b.halo_nm += 1;
  EXPECT_NE(flow_fingerprint(a, "flat"), flow_fingerprint(b, "flat"));
  // Execution-only knobs are excluded: they cannot change the output.
  b = fast_flow();
  b.jobs = 8;
  b.store_path = "elsewhere.ocs";
  b.resume = true;
  EXPECT_EQ(flow_fingerprint(a, "flat"), flow_fingerprint(b, "flat"));
  // The pattern-library knobs ARE mixed: near-match warm starts move the
  // solver trajectory, so the corrected mask depends on them.
  b = fast_flow();
  b.library_path = "patterns.ocl";
  EXPECT_NE(flow_fingerprint(a, "flat"), flow_fingerprint(b, "flat"));
  b = fast_flow();
  b.library_budget = 0.25;
  EXPECT_NE(flow_fingerprint(a, "flat"), flow_fingerprint(b, "flat"));
}

TEST(FlowResume, StatsJsonRendersAllCounters) {
  FlowStats stats;
  stats.opc_runs = 2;
  stats.simulations = 9;
  stats.corrected_polygons = 4;
  stats.all_converged = false;
  stats.cache_hits = 30;
  stats.cache_misses = 1;
  stats.cache_conflicts = 1;
  stats.store_hits = 30;
  stats.store_entries_loaded = 1;
  stats.store_entries_appended = 2;
  stats.store_tail_recovered = true;
  stats.library_exact_hits = 3;
  stats.library_near_hits = 2;
  stats.library_entries_loaded = 5;
  stats.library_entries_appended = 1;
  stats.library_warm_iterations = 7;
  stats.ilt_tiles = 2;
  stats.ilt_escalated = 1;
  stats.ilt_iterations = 12;
  stats.tile_simulations = {4, 0, 5};
  stats.max_abs_epe_nm = 1.75;
  // A value the old default-precision stream would have truncated to
  // "7.10986" — format_double must round-trip every digit.
  stats.worst_rms_epe_nm = 7.109864439;
  stats.wall_ms = 12.5;
  stats.metrics.counters["cache.hits"] = 30;
  stats.metrics.gauges["flow.phase.solve_ms"] = 10.25;
  EXPECT_EQ(render_stats_json(stats),
            "{\"opc_runs\":2,\"simulations\":9,\"corrected_polygons\":4,"
            "\"all_converged\":false,"
            "\"max_abs_epe_nm\":1.75,"
            "\"worst_rms_epe_nm\":7.109864439,"
            "\"cache\":{\"hits\":30,\"misses\":1,\"conflicts\":1},"
            "\"store\":{\"hits\":30,\"entries_loaded\":1,"
            "\"entries_appended\":2,\"tail_recovered\":true},"
            "\"library\":{\"exact_hits\":3,\"near_hits\":2,"
            "\"entries_loaded\":5,\"entries_appended\":1,"
            "\"warm_iterations\":7,\"tail_recovered\":false},"
            "\"ilt\":{\"tiles\":2,\"escalated\":1,\"iterations\":12},"
            "\"tile_simulations\":[4,0,5],"
            "\"mrc\":{\"checked\":false,\"violations\":0,"
            "\"by_rule\":{},\"tile_violations\":[]},"
            "\"wall_ms\":12.5,"
            "\"metrics\":{\"counters\":{\"cache.hits\":30},"
            "\"gauges\":{\"flow.phase.solve_ms\":10.25},"
            "\"histograms\":{}}}");
}

TEST(FlowResume, StatsJsonDoublesRoundTripAtFullPrecision) {
  // Regression for the double-emission bug: the default ostream
  // precision (6 significant digits) truncated wall_ms — a run of
  // 123456.789 ms rendered as "123457", losing sub-ms resolution and
  // breaking bench comparisons. format_double keeps every digit.
  FlowStats stats;
  stats.wall_ms = 123456.789;
  EXPECT_NE(render_stats_json(stats).find("\"wall_ms\":123456.789"),
            std::string::npos);
  stats.wall_ms = 0.30000000000000004;  // classic non-representable sum
  EXPECT_NE(
      render_stats_json(stats).find("\"wall_ms\":0.30000000000000004"),
      std::string::npos);
}

}  // namespace
}  // namespace opckit::opc
