#include <vector>

#include <gtest/gtest.h>

#include "geometry/region.h"

namespace opckit::geom {
namespace {

Polygon l_shape() {
  return Polygon(std::vector<Point>{
      {0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
}

TEST(Region, EmptyRegion) {
  Region r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_TRUE(r.bbox().is_empty());
  EXPECT_TRUE(r.rects().empty());
  EXPECT_TRUE(r.polygons().empty());
}

TEST(Region, FromRect) {
  Region r{Rect(0, 0, 10, 4)};
  EXPECT_EQ(r.area(), 40);
  EXPECT_EQ(r.bbox(), Rect(0, 0, 10, 4));
  EXPECT_EQ(r.rect_count(), 1u);
}

TEST(Region, FromEmptyRectIsEmpty) {
  EXPECT_TRUE(Region{Rect::empty()}.empty());
  EXPECT_TRUE(Region{Rect(3, 3, 3, 9)}.empty());
}

TEST(Region, FromPolygonNonRect) {
  Region r{l_shape()};
  EXPECT_EQ(r.area(), 300);
  EXPECT_EQ(r.bbox(), Rect(0, 0, 20, 20));
  // Canonical slabs: [0,10) covering x [0,20); [10,20) covering x [0,10).
  ASSERT_EQ(r.slabs().size(), 2u);
  EXPECT_EQ(r.slabs()[0].intervals,
            (std::vector<Interval>{{0, 20}}));
  EXPECT_EQ(r.slabs()[1].intervals,
            (std::vector<Interval>{{0, 10}}));
}

TEST(Region, FromClockwisePolygonSameResult) {
  const Polygon ccw = l_shape();
  std::vector<Point> rev(ccw.ring().rbegin(), ccw.ring().rend());
  EXPECT_EQ(Region{Polygon(rev)}, Region{ccw});
}

TEST(Region, FromRectsMergesOverlapsAndTouches) {
  const std::vector<Rect> rects{
      Rect(0, 0, 10, 10), Rect(5, 0, 15, 10), Rect(15, 0, 20, 10)};
  Region r = Region::from_rects(rects);
  EXPECT_EQ(r.area(), 200);
  EXPECT_EQ(r.rect_count(), 1u);  // all coalesce into one slab interval
}

TEST(Region, UnionDisjointAndOverlapping) {
  Region a{Rect(0, 0, 10, 10)};
  Region b{Rect(20, 0, 30, 10)};
  EXPECT_EQ(a.united(b).area(), 200);
  Region c{Rect(5, 5, 15, 15)};
  EXPECT_EQ(a.united(c).area(), 175);
}

TEST(Region, IntersectBasics) {
  Region a{Rect(0, 0, 10, 10)};
  Region b{Rect(5, 5, 15, 15)};
  const Region i = a.intersected(b);
  EXPECT_EQ(i.area(), 25);
  EXPECT_EQ(i.bbox(), Rect(5, 5, 10, 10));
  EXPECT_TRUE(a.intersected(Region{Rect(50, 50, 60, 60)}).empty());
}

TEST(Region, EdgeTouchingIntersectionIsEmpty) {
  Region a{Rect(0, 0, 10, 10)};
  Region b{Rect(10, 0, 20, 10)};
  EXPECT_TRUE(a.intersected(b).empty());
}

TEST(Region, SubtractCreatesHole) {
  Region a{Rect(0, 0, 30, 30)};
  Region hole{Rect(10, 10, 20, 20)};
  const Region d = a.subtracted(hole);
  EXPECT_EQ(d.area(), 800);
  EXPECT_FALSE(d.contains({15, 15}) && !hole.contains({15, 15}));
  EXPECT_TRUE(d.contains({5, 5}));
  // The contour extractor must return one CCW outer ring and one CW hole.
  const auto polys = d.polygons();
  ASSERT_EQ(polys.size(), 2u);
  int ccw = 0, cw = 0;
  for (const auto& p : polys) (p.is_ccw() ? ccw : cw)++;
  EXPECT_EQ(ccw, 1);
  EXPECT_EQ(cw, 1);
}

TEST(Region, SubtractAllIsEmpty) {
  Region a{Rect(0, 0, 10, 10)};
  EXPECT_TRUE(a.subtracted(Region{Rect(-5, -5, 15, 15)}).empty());
}

TEST(Region, XorIsUnionMinusIntersection) {
  Region a{Rect(0, 0, 10, 10)};
  Region b{Rect(5, 0, 15, 10)};
  const Region x = a.xored(b);
  EXPECT_EQ(x.area(), 100);
  EXPECT_EQ(x, a.united(b).subtracted(a.intersected(b)));
}

TEST(Region, ContainsClosedSemantics) {
  Region r{Rect(0, 0, 10, 10)};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_TRUE(r.contains({10, 5}));
  EXPECT_FALSE(r.contains({11, 5}));
}

TEST(Region, TranslatedMovesEverything) {
  Region r{l_shape()};
  const Region t = r.translated({100, -50});
  EXPECT_EQ(t.area(), r.area());
  EXPECT_EQ(t.bbox(), Rect(100, -50, 120, -30));
}

TEST(Region, TransposedSwapsAxes) {
  Region r{Rect(0, 0, 10, 4)};
  const Region t = r.transposed();
  EXPECT_EQ(t.bbox(), Rect(0, 0, 4, 10));
  EXPECT_EQ(t.area(), 40);
  EXPECT_EQ(t.transposed(), r);
}

TEST(Region, DilationGrowsBySquare) {
  Region r{Rect(10, 10, 20, 20)};
  const Region g = r.inflated(5);
  EXPECT_EQ(g.bbox(), Rect(5, 5, 25, 25));
  EXPECT_EQ(g.area(), 400);
}

TEST(Region, ErosionShrinks) {
  Region r{Rect(0, 0, 20, 10)};
  const Region e = r.inflated(-3);
  EXPECT_EQ(e.bbox(), Rect(3, 3, 17, 7));
  EXPECT_EQ(e.area(), 14 * 4);
  EXPECT_TRUE(r.inflated(-5).empty());  // vanishes at half-height
}

TEST(Region, ErodeDilateIdentityOnFatShapes) {
  // For shapes wider than 2d everywhere, opening is the identity.
  Region r{l_shape()};
  EXPECT_EQ(r.opened(3), r);
}

TEST(Region, OpeningRemovesNarrowSliver) {
  // A 4-wide sliver attached to a fat block disappears under opening(3).
  Region fat{Rect(0, 0, 20, 20)};
  Region sliver{Rect(20, 8, 40, 12)};
  const Region opened = fat.united(sliver).opened(3);
  EXPECT_EQ(opened, fat);
}

TEST(Region, ClosingFillsNarrowGap) {
  Region a{Rect(0, 0, 10, 20)};
  Region b{Rect(14, 0, 24, 20)};  // 4nm gap
  const Region closed = a.united(b).closed(3);
  EXPECT_EQ(closed.area(), 24 * 20);
}

TEST(Region, ClippedToWindow) {
  Region r{l_shape()};
  const Region c = r.clipped(Rect(5, 5, 15, 15));
  EXPECT_EQ(c.bbox(), Rect(5, 5, 15, 15).intersected(Rect(0, 0, 20, 20)));
  EXPECT_EQ(c.area(), 75);  // L-shape ∩ window
}

TEST(Region, PolygonsRoundTripThroughRegion) {
  Region r{l_shape()};
  const auto polys = r.polygons();
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_TRUE(polys[0].is_ccw());
  EXPECT_EQ(polys[0].area(), 300);
  EXPECT_EQ(Region::from_polygons(polys), r);
}

TEST(Region, PolygonsSplitsDisjointComponents) {
  Region r = Region{Rect(0, 0, 10, 10)}.united(Region{Rect(20, 20, 30, 30)});
  EXPECT_EQ(r.polygons().size(), 2u);
}

TEST(Region, CheckerboardTouchAtPointSplits) {
  // Two squares touching only at one corner must yield two loops.
  Region r = Region{Rect(0, 0, 10, 10)}.united(Region{Rect(10, 10, 20, 20)});
  const auto polys = r.polygons();
  ASSERT_EQ(polys.size(), 2u);
  EXPECT_EQ(polys[0].area() + polys[1].area(), 200);
}

TEST(Region, FromPolygonsUnionOverlapping) {
  std::vector<Polygon> ps{Polygon{Rect(0, 0, 10, 10)},
                          Polygon{Rect(5, 0, 15, 10)}};
  EXPECT_EQ(Region::from_polygons(ps).area(), 150);
}

TEST(Region, ComponentsSplitDisjointArea) {
  const Region r = Region{Rect(0, 0, 10, 10)}
                       .united(Region{Rect(50, 0, 60, 10)})
                       .united(Region{Rect(0, 50, 10, 60)});
  const auto comps = r.components();
  ASSERT_EQ(comps.size(), 3u);
  // Ordered by lower-left corner (lexicographic x then y).
  EXPECT_EQ(comps[0].bbox(), Rect(0, 0, 10, 10));
  EXPECT_EQ(comps[1].bbox(), Rect(0, 50, 10, 60));
  EXPECT_EQ(comps[2].bbox(), Rect(50, 0, 60, 10));
  // Components partition the area.
  geom::Coord total = 0;
  for (const auto& c : comps) total += c.area();
  EXPECT_EQ(total, r.area());
}

TEST(Region, ComponentsEdgeConnectedStaysTogether) {
  // An L shape decomposes into two slabs that share an edge.
  const Region r{l_shape()};
  EXPECT_EQ(r.components().size(), 1u);
}

TEST(Region, CornerTouchDoesNotConnectComponents) {
  const Region r =
      Region{Rect(0, 0, 10, 10)}.united(Region{Rect(10, 10, 20, 20)});
  EXPECT_EQ(r.components().size(), 2u);
}

TEST(Region, ComponentsOfEmptyRegion) {
  EXPECT_TRUE(Region{}.components().empty());
}

}  // namespace
}  // namespace opckit::geom
