#include <cmath>

#include <gtest/gtest.h>

#include "litho/metrology.h"

namespace opckit::litho {
namespace {

/// Build a synthetic latent image with an analytic profile so metrology
/// can be validated against closed-form expectations: a smooth "line" of
/// half-width w centered at x=0, I(x) = 1 / (1 + (x/w)^4) (monotone
/// falling through 0.5 exactly at |x| = w).
Image synthetic_line(double half_width_nm) {
  Frame f;
  f.pixel_nm = 4.0;
  f.nx = 256;
  f.ny = 64;
  f.origin = {-512, -128};
  Image img(f);
  for (std::size_t iy = 0; iy < f.ny; ++iy) {
    for (std::size_t ix = 0; ix < f.nx; ++ix) {
      const double x = f.center_x(ix);
      const double r = x / half_width_nm;
      img.at(ix, iy) = 1.0 / (1.0 + r * r * r * r);
    }
  }
  return img;
}

TEST(PrintedCd, MatchesAnalyticWidth) {
  const Image img = synthetic_line(90.0);
  const double cd = printed_cd(img, {0, 0}, {1, 0}, 600.0, 0.5);
  EXPECT_NEAR(cd, 180.0, 1.5);
}

TEST(PrintedCd, ThresholdDependence) {
  const Image img = synthetic_line(90.0);
  const double wide = printed_cd(img, {0, 0}, {1, 0}, 800.0, 0.3);
  const double narrow = printed_cd(img, {0, 0}, {1, 0}, 800.0, 0.7);
  EXPECT_GT(wide, 180.0);
  EXPECT_LT(narrow, 180.0);
}

TEST(PrintedCd, NanWhenCenterNotPrinted) {
  const Image img = synthetic_line(90.0);
  EXPECT_TRUE(std::isnan(printed_cd(img, {400, 0}, {1, 0}, 100.0, 0.5)));
}

TEST(PrintedCd, NanWhenEdgeOutsideSpan) {
  const Image img = synthetic_line(90.0);
  // Span too small to reach the edges from the center.
  EXPECT_TRUE(std::isnan(printed_cd(img, {0, 0}, {1, 0}, 80.0, 0.5)));
}

TEST(ClearCd, MeasuresGapBetweenFeatures) {
  // Dual of the line: I = 1 outside, dipping around x=0.
  Frame f;
  f.pixel_nm = 4.0;
  f.nx = 256;
  f.ny = 32;
  f.origin = {-512, -64};
  Image img(f);
  for (std::size_t iy = 0; iy < f.ny; ++iy) {
    for (std::size_t ix = 0; ix < f.nx; ++ix) {
      const double x = f.center_x(ix);
      const double r = x / 100.0;
      img.at(ix, iy) = 1.0 - 1.0 / (1.0 + r * r * r * r);
    }
  }
  const double gap = clear_cd(img, {0, 0}, {1, 0}, 600.0, 0.5);
  EXPECT_NEAR(gap, 200.0, 1.5);
  EXPECT_TRUE(std::isnan(clear_cd(img, {480, 0}, {1, 0}, 100.0, 0.5)));
}

TEST(Epe, SignConvention) {
  const Image img = synthetic_line(90.0);  // printed edge at x = +/-90
  // Target edge at x=80, outward normal +x: printed contour is 10nm
  // beyond the target -> overprint -> positive EPE.
  const double over = edge_placement_error(img, {80, 0}, {1, 0}, 60.0, 0.5);
  EXPECT_NEAR(over, 10.0, 1.0);
  // Target edge at x=100: contour 10nm inside -> negative EPE.
  const double under = edge_placement_error(img, {100, 0}, {1, 0}, 60.0, 0.5);
  EXPECT_NEAR(under, -10.0, 1.0);
}

TEST(Epe, WorksOnLeftEdgeWithLeftNormal) {
  const Image img = synthetic_line(90.0);
  const double epe = edge_placement_error(img, {-84, 0}, {-1, 0}, 60.0, 0.5);
  EXPECT_NEAR(epe, 6.0, 1.0);
}

TEST(Epe, NanWhenNoContourInRange) {
  const Image img = synthetic_line(90.0);
  EXPECT_TRUE(
      std::isnan(edge_placement_error(img, {300, 0}, {1, 0}, 40.0, 0.5)));
}

TEST(ExposureWindow, SyntheticCdModel) {
  // CD(z, dose) = 180 * dose^k with k = 1 + (z/250)^2: dose sensitivity
  // grows with defocus, so the in-spec dose range [0.9^(1/k), 1.1^(1/k)]
  // shrinks — the characteristic closing of the ED window.
  auto cd_fn = [](double z, double dose) {
    const double k = 1.0 + (z / 250.0) * (z / 250.0);
    return 180.0 * std::pow(dose, k);
  };
  const std::vector<double> defocus{0.0, 100.0, 200.0, 300.0, 400.0};
  const auto win =
      exposure_defocus_window(cd_fn, defocus, 180.0, 0.10, 0.7, 1.3, 0.005);
  ASSERT_EQ(win.size(), 5u);
  EXPECT_NEAR(win[0].latitude_pct, 20.0, 1.5);
  // Latitude shrinks with defocus.
  for (std::size_t i = 1; i < win.size(); ++i) {
    EXPECT_LT(win[i].latitude_pct, win[i - 1].latitude_pct + 1e-9);
  }
}

TEST(ExposureWindow, NanCountsAsFailure) {
  auto cd_fn = [](double z, double dose) {
    return z > 100 ? std::nan("") : 180.0 * dose;
  };
  const auto win = exposure_defocus_window(cd_fn, {0.0, 200.0}, 180.0, 0.1);
  EXPECT_GT(win[0].latitude_pct, 0.0);
  EXPECT_EQ(win[1].latitude_pct, 0.0);
}

TEST(DepthOfFocus, LargestContiguousSpan) {
  std::vector<ExposureLatitude> win;
  for (int i = 0; i <= 8; ++i) {
    ExposureLatitude el;
    el.defocus_nm = i * 100.0;
    el.latitude_pct = (i >= 2 && i <= 6) ? 12.0 : 3.0;
    win.push_back(el);
  }
  EXPECT_DOUBLE_EQ(depth_of_focus(win, 10.0), 400.0);
  EXPECT_DOUBLE_EQ(depth_of_focus(win, 2.0), 800.0);
  EXPECT_DOUBLE_EQ(depth_of_focus(win, 50.0), 0.0);
}

TEST(Meef, LinearModelRecovered) {
  // wafer CD = 180 + 2.5 * (2*bias): MEEF = 2.5.
  auto wafer_cd = [](geom::Coord bias) {
    return 180.0 + 2.5 * 2.0 * static_cast<double>(bias);
  };
  EXPECT_NEAR(meef(wafer_cd, 2), 2.5, 1e-12);
}

TEST(Meef, NanPropagates) {
  auto wafer_cd = [](geom::Coord) { return std::nan(""); };
  EXPECT_TRUE(std::isnan(meef(wafer_cd, 2)));
}

}  // namespace
}  // namespace opckit::litho
