#include <gtest/gtest.h>

#include "pattern/canonical.h"

namespace opckit::pat {
namespace {

using geom::Orientation;
using geom::Rect;
using geom::Region;

Region l_pattern() {
  // Asymmetric L inside a window: no self-symmetry under D4.
  return Region{Rect(-40, -40, 40, -10)}.united(Region{Rect(-40, -10, -20, 40)});
}

TEST(Canonical, InvariantUnderAllOrientations) {
  const Region base = l_pattern();
  const CanonicalPattern ref = canonicalize(base);
  for (Orientation o : geom::all_orientations()) {
    const CanonicalPattern got = canonicalize(oriented(base, o));
    EXPECT_EQ(got, ref) << geom::name(o);
  }
}

TEST(Canonical, DistinguishesDifferentPatterns) {
  const CanonicalPattern a = canonicalize(l_pattern());
  const CanonicalPattern b = canonicalize(Region{Rect(-40, -40, 40, 40)});
  EXPECT_NE(a.hash, b.hash);
  EXPECT_NE(a.rects, b.rects);
}

TEST(Canonical, TranslationIsNotFactoredOut) {
  // Window extraction fixes translation (anchor at origin); two clips of
  // the same shape at different anchor offsets are different patterns.
  const CanonicalPattern a = canonicalize(Region{Rect(0, 0, 30, 30)});
  const CanonicalPattern b = canonicalize(Region{Rect(5, 0, 35, 30)});
  EXPECT_NE(a.hash, b.hash);
}

TEST(Canonical, EmptyRegionHasStableHash) {
  const CanonicalPattern a = canonicalize(Region{});
  const CanonicalPattern b = canonicalize(Region{});
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_TRUE(a.rects.empty());
}

TEST(Canonical, SymmetricPatternMapsToItself) {
  // A centered square is D4-symmetric: all orientations identical.
  const Region square{Rect(-25, -25, 25, 25)};
  for (Orientation o : geom::all_orientations()) {
    EXPECT_EQ(oriented(square, o), square) << geom::name(o);
  }
  EXPECT_EQ(canonicalize(square).rects.size(), 1u);
}

TEST(Canonical, OrientedPreservesArea) {
  const Region base = l_pattern();
  for (Orientation o : geom::all_orientations()) {
    EXPECT_EQ(oriented(base, o).area(), base.area());
  }
}

TEST(Canonical, OrientedWitnessMapsInputToCanonicalForm) {
  for (Orientation o : geom::all_orientations()) {
    const Region input = oriented(l_pattern(), o);
    const OrientedCanonical oc = canonicalize_oriented(input);
    EXPECT_EQ(oriented(input, oc.orientation).rects(), oc.pattern.rects)
        << geom::name(o);
  }
}

TEST(Canonical, IdenticalInputsReportIdenticalWitness) {
  // The property the OPC correction cache builds on: the witness is a
  // pure function of the geometry, even for symmetric patterns where
  // several orientations reach the same minimal form.
  const Region square{Rect(-25, -25, 25, 25)};
  for (const Region& r : {l_pattern(), square}) {
    const OrientedCanonical a = canonicalize_oriented(r);
    const OrientedCanonical b = canonicalize_oriented(r);
    EXPECT_EQ(a.orientation, b.orientation);
    EXPECT_EQ(a.pattern, b.pattern);
  }
}

TEST(Canonical, CanonicalizeMatchesOrientedCanonicalize) {
  const OrientedCanonical oc = canonicalize_oriented(l_pattern());
  EXPECT_EQ(canonicalize(l_pattern()), oc.pattern);
}

}  // namespace
}  // namespace opckit::pat
