/// Dispatch-policy tests for the persistent pattern library
/// (FlowSpec::library_path / library_budget): exact hits replay
/// byte-identically at any jobs value, near hits warm-start the solver,
/// misses solve cold and accumulate, and the daemon hooks (shared
/// snapshot + sink) mirror the file-backed path. Runs under ASan/UBSan
/// and TSan in CI (label `pat`).
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "core/flow.h"
#include "layout/generators.h"
#include "pattern/library.h"
#include "util/check.h"

namespace opckit::opc {
namespace {

using layout::Library;

FlowSpec fast_flow() {
  FlowSpec spec;
  spec.sim.optics.source.grid = 5;
  litho::calibrate_threshold(spec.sim, 180, 360);
  spec.opc.max_iterations = 2;
  spec.input_layer = layout::layers::kPoly;
  spec.output_layer = layout::layers::kPolyOpc;
  return spec;
}

/// 4×4 identical isolated placements (pitch 4000 > halo 800): one
/// pattern class, 16 tiles. \p widen jitters the second bar so every
/// window misses exact lookup but stays feature-near the unjittered
/// class.
Library iso_chip(geom::Coord widen = 0) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly,
                geom::Rect(540, 0, 720 + widen, 1200));
  layout::make_chip(lib, "top", "leaf", 4, 4, {4000, 4000});
  return lib;
}

/// Context-coupled chip (pitch below the halo): windows see neighbours,
/// so the two flat context passes produce distinct pattern classes.
Library dense_chip(geom::Coord widen = 0) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly,
                geom::Rect(540, 0, 720 + widen, 1200));
  layout::make_chip(lib, "top", "leaf", 2, 2, {1400, 1800});
  return lib;
}

std::vector<geom::Polygon> output_polys(const Library& lib,
                                        const std::string& cell,
                                        const FlowSpec& spec) {
  const auto shapes = lib.at(cell).shapes(spec.output_layer);
  return {shapes.begin(), shapes.end()};
}

std::string lib_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

TEST(FlowLibrary, LibraryRequiresCache) {
  FlowSpec spec = fast_flow();
  spec.library_path = lib_path("flowlib_nocache.ocl");
  spec.cache = false;
  Library lib = iso_chip();
  EXPECT_THROW(run_flat_opc(lib, "top", spec), util::InputError);
}

TEST(FlowLibrary, ExactHitReplaysByteIdenticalAtAnyJobs) {
  FlowSpec spec = fast_flow();
  spec.library_path = lib_path("flowlib_replay.ocl");

  // Cold run: one pattern class solved, inserted with its seeds.
  Library cold = iso_chip();
  const FlowStats first = run_flat_opc(cold, "top", spec);
  EXPECT_EQ(first.opc_runs, 1u);
  EXPECT_EQ(first.library_entries_loaded, 0u);
  EXPECT_EQ(first.library_entries_appended, 1u);
  EXPECT_EQ(first.library_exact_hits, 0u);  // nothing was imported
  const auto ref_out = output_polys(cold, "top", spec);
  ASSERT_FALSE(ref_out.empty());

  // Warm runs: every tile replays from the imported entry, byte for
  // byte, at any jobs value. Nothing new is appended, so the runs are
  // independent.
  for (int jobs : {1, 8}) {
    FlowSpec warm = spec;
    warm.jobs = jobs;
    Library lib = iso_chip();
    const FlowStats s = run_flat_opc(lib, "top", warm);
    EXPECT_EQ(s.opc_runs, 0u) << "jobs=" << jobs;
    EXPECT_EQ(s.library_entries_loaded, 1u) << "jobs=" << jobs;
    EXPECT_EQ(s.library_exact_hits, 32u) << "jobs=" << jobs;  // 16 x 2 passes
    EXPECT_EQ(s.library_entries_appended, 0u) << "jobs=" << jobs;
    EXPECT_EQ(s.library_near_hits, 0u) << "jobs=" << jobs;
    EXPECT_EQ(output_polys(lib, "top", warm), ref_out) << "jobs=" << jobs;
  }
}

TEST(FlowLibrary, CellFlowReplaysFromLibrary) {
  FlowSpec spec = fast_flow();
  spec.library_path = lib_path("flowlib_cell.ocl");

  Library cold = iso_chip();
  const FlowStats first = run_cell_opc(cold, "top", spec);
  EXPECT_EQ(first.opc_runs, 1u);  // one distinct leaf cell
  EXPECT_EQ(first.library_entries_appended, 1u);
  const auto ref_leaf = output_polys(cold, "leaf", spec);
  ASSERT_FALSE(ref_leaf.empty());

  Library warm = iso_chip();
  const FlowStats second = run_cell_opc(warm, "top", spec);
  EXPECT_EQ(second.opc_runs, 0u);
  EXPECT_EQ(second.library_exact_hits, 1u);
  EXPECT_EQ(output_polys(warm, "leaf", spec), ref_leaf);
}

TEST(FlowLibrary, NearMatchWarmStartsJitteredPattern) {
  FlowSpec spec = fast_flow();
  spec.opc.max_iterations = 6;  // room for warm starts to converge early
  spec.library_path = lib_path("flowlib_near.ocl");
  spec.library_budget = 0.75;

  // Seed the library from the unjittered chip. An empty library can
  // produce no near hits.
  Library cold = iso_chip();
  const FlowStats first = run_flat_opc(cold, "top", spec);
  EXPECT_EQ(first.library_near_hits, 0u);
  EXPECT_EQ(first.library_entries_appended, 1u);

  // A 4nm edit misses exact lookup everywhere but retrieves the solved
  // class as a warm start; the solve still runs to convergence, so its
  // fresh solution accumulates alongside the seed entry.
  Library warm = iso_chip(4);
  const FlowStats second = run_flat_opc(warm, "top", spec);
  EXPECT_EQ(second.library_exact_hits, 0u);
  EXPECT_EQ(second.library_near_hits, 1u);  // one fresh solve, warm-started
  EXPECT_GT(second.library_warm_iterations, 0u);
  EXPECT_LE(second.library_warm_iterations, second.simulations);
  EXPECT_EQ(second.opc_runs, 1u);
  EXPECT_EQ(second.library_entries_loaded, 1u);
  EXPECT_EQ(second.library_entries_appended, 1u);
  ASSERT_FALSE(output_polys(warm, "top", spec).empty());
}

TEST(FlowLibrary, WarmStartDoesNotCostIterations) {
  // The warm-started solve of a jittered pattern must never iterate
  // more than the cold solve of the same pattern (the t11 bench
  // measures the actual savings; this pins the direction).
  FlowSpec cold_spec = fast_flow();
  cold_spec.opc.max_iterations = 6;
  Library cold = iso_chip(4);
  const FlowStats cold_stats = run_flat_opc(cold, "top", cold_spec);

  FlowSpec warm_spec = cold_spec;
  warm_spec.library_path = lib_path("flowlib_savings.ocl");
  warm_spec.library_budget = 0.75;
  Library seed = iso_chip();
  run_flat_opc(seed, "top", warm_spec);
  Library warm = iso_chip(4);
  const FlowStats warm_stats = run_flat_opc(warm, "top", warm_spec);
  EXPECT_EQ(warm_stats.library_near_hits, 1u);
  EXPECT_LE(warm_stats.library_warm_iterations, cold_stats.simulations);
}

TEST(FlowLibrary, ZeroBudgetAccumulatesWithoutNearMatching) {
  FlowSpec spec = fast_flow();
  spec.library_path = lib_path("flowlib_zero.ocl");
  ASSERT_EQ(spec.library_budget, 0.0);  // default: near matching off

  Library cold = iso_chip();
  run_flat_opc(cold, "top", spec);
  Library jit = iso_chip(4);
  const FlowStats s = run_flat_opc(jit, "top", spec);
  EXPECT_EQ(s.library_near_hits, 0u);
  EXPECT_EQ(s.library_warm_iterations, 0u);
  EXPECT_EQ(s.opc_runs, 1u);               // solved cold
  EXPECT_EQ(s.library_entries_appended, 1u);

  // Both classes persisted under the flow fingerprint — the library is
  // reopenable outside the flow with exactly that key.
  auto lib = pat::PatternLibrary::open(spec.library_path,
                                       flow_fingerprint(spec, "flat"));
  EXPECT_EQ(lib.size(), 2u);
}

TEST(FlowLibrary, TightBudgetFindsNoNearMatch) {
  FlowSpec spec = fast_flow();
  spec.library_path = lib_path("flowlib_tight.ocl");
  spec.library_budget = 1e-9;

  Library cold = iso_chip();
  run_flat_opc(cold, "top", spec);
  Library jit = iso_chip(4);
  const FlowStats s = run_flat_opc(jit, "top", spec);
  EXPECT_EQ(s.library_near_hits, 0u);  // jitter distance exceeds budget
  EXPECT_EQ(s.opc_runs, 1u);
}

TEST(FlowLibrary, WarmStartedFlowIsDeterministicAcrossJobs) {
  FlowSpec spec = fast_flow();
  spec.opc.max_iterations = 4;
  spec.library_path = lib_path("flowlib_jobs.ocl");
  spec.library_budget = 0.75;

  // Seed with the context-coupled chip: several distinct classes.
  Library cold = dense_chip();
  const FlowStats seed_stats = run_flat_opc(cold, "top", spec);
  ASSERT_GT(seed_stats.library_entries_appended, 1u);
  // Stash the seeded library; warm runs append, so each jobs value must
  // start from identical bytes (the path stays fixed — it is mixed into
  // the fingerprint the file carries).
  const std::string stash = lib_path("flowlib_jobs.stash");
  std::filesystem::copy_file(spec.library_path, stash);

  std::vector<geom::Polygon> ref_out;
  FlowStats ref_stats;
  for (int jobs : {1, 8}) {
    std::filesystem::copy_file(
        stash, spec.library_path,
        std::filesystem::copy_options::overwrite_existing);
    FlowSpec run = spec;
    run.jobs = jobs;
    Library lib = dense_chip(4);
    const FlowStats s = run_flat_opc(lib, "top", run);
    if (jobs == 1) {
      ref_out = output_polys(lib, "top", run);
      ref_stats = s;
      EXPECT_GT(s.library_near_hits, 0u);
    } else {
      EXPECT_EQ(output_polys(lib, "top", run), ref_out);
      EXPECT_EQ(s.library_near_hits, ref_stats.library_near_hits);
      EXPECT_EQ(s.library_exact_hits, ref_stats.library_exact_hits);
      EXPECT_EQ(s.library_entries_appended,
                ref_stats.library_entries_appended);
      EXPECT_EQ(s.opc_runs, ref_stats.opc_runs);
      EXPECT_EQ(s.simulations, ref_stats.simulations);
    }
  }
}

TEST(FlowLibrary, SharedSnapshotAndSinkMirrorTheFilePath) {
  // The daemon hooks: a sink accumulates fresh solves into a shared
  // in-memory library, and a later job warm-starts from its snapshot —
  // no file involved.
  pat::PatternLibrary shared;
  FlowSpec cold = fast_flow();
  cold.library_sink = [&shared](const pat::LibraryRecord& rec) {
    shared.insert(rec);
  };
  Library lib = iso_chip();
  const FlowStats first = run_flat_opc(lib, "top", cold);
  EXPECT_EQ(shared.size(), 1u);
  // Sink-only runs touch no file: nothing loaded or appended.
  EXPECT_EQ(first.library_entries_loaded, 0u);
  EXPECT_EQ(first.library_entries_appended, 0u);
  ASSERT_FALSE(shared.record(0).seeds.empty());

  FlowSpec warm = fast_flow();
  warm.opc.max_iterations = 6;
  warm.library = &shared;
  warm.library_budget = 0.75;
  Library jit = iso_chip(4);
  const FlowStats s = run_flat_opc(jit, "top", warm);
  EXPECT_EQ(s.library_near_hits, 1u);
  EXPECT_GT(s.library_warm_iterations, 0u);
  EXPECT_EQ(s.library_entries_loaded, 0u);
  EXPECT_EQ(s.library_entries_appended, 0u);
}

TEST(FlowLibrary, TornLibraryTailRecoversAndResolves) {
  FlowSpec spec = fast_flow();
  spec.library_path = lib_path("flowlib_torn.ocl");
  Library cold = iso_chip();
  run_flat_opc(cold, "top", spec);

  // Tear the single record: the flow recovers (crash contract, not an
  // error), reports it, and simply re-solves what was lost.
  const auto size = std::filesystem::file_size(spec.library_path);
  std::filesystem::resize_file(spec.library_path, size - 3);
  Library again = iso_chip();
  const FlowStats s = run_flat_opc(again, "top", spec);
  EXPECT_TRUE(s.library_tail_recovered);
  EXPECT_EQ(s.library_entries_loaded, 0u);
  EXPECT_EQ(s.opc_runs, 1u);
  EXPECT_EQ(s.library_entries_appended, 1u);
  EXPECT_EQ(output_polys(again, "top", spec),
            output_polys(cold, "top", spec));
}

}  // namespace
}  // namespace opckit::opc
