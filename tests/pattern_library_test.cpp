/// Pattern-library tests: insert/dedup, deterministic nearest-match
/// retrieval, persistence round trips, and the corrupt-file corpus —
/// every damaged input must load or refuse deterministically (never
/// crash), and torn tails must recover. Runs under ASan/UBSan and TSan
/// in CI (label `pat`).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pattern/library.h"
#include "store/result_store.h"
#include "util/check.h"

namespace opckit::pat {
namespace {

constexpr std::uint64_t kFp = 0xfeed'beef'0bad'f00dULL;
// Same header shape as the `.ocs` store: magic + version + fingerprint
// + header CRC.
constexpr std::size_t kHeaderSize = 24;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove(path);
  return path;
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A library record whose window geometry (hence feature vector) is
/// controlled by \p widen and whose payload identity by \p salt.
LibraryRecord sample_record(geom::Coord widen = 0, int salt = 0) {
  LibraryRecord rec;
  rec.tile.window_rects = {geom::Rect(0, 0, 180, 1200),
                           geom::Rect(540, 0, 720 + widen, 1200)};
  rec.tile.own_rects = {geom::Rect(0, 0, 180, 1200)};
  rec.tile.frame = geom::Rect(-800, -800, 1520, 2000);
  rec.tile.orientation = geom::Orientation::kR90;
  rec.tile.solution = {
      geom::Polygon(geom::Rect(-4, -12, 184 + salt, 1212))};
  rec.seeds = {{geom::Point{90, 0}, 4 + salt},
               {geom::Point{90, 1200}, -6}};
  return rec;
}

/// A library with two good records, returned as raw bytes for mutilation.
std::vector<std::uint8_t> good_library_bytes(const std::string& path) {
  auto lib = PatternLibrary::open(path, kFp);
  EXPECT_TRUE(lib.insert(sample_record(0)));
  EXPECT_TRUE(lib.insert(sample_record(40)));
  return file_bytes(path);
}

TEST(PatternLibrary, MemoryOnlyInsertAndRetrieve) {
  PatternLibrary lib;
  EXPECT_TRUE(lib.insert(sample_record(0)));
  EXPECT_TRUE(lib.insert(sample_record(40)));
  ASSERT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.record(0), sample_record(0));
  const auto near =
      lib.nearest(feature_of(sample_record(4).tile.window_rects), 0.5);
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->index, 0u);  // 4nm jitter is closest to the 0nm entry
  EXPECT_GT(near->distance, 0.0);
}

TEST(PatternLibrary, InsertDedupsByTileFirstWins) {
  PatternLibrary lib;
  LibraryRecord first = sample_record(0);
  EXPECT_TRUE(lib.insert(first));
  // Same tile with different seeds is the same pattern class: dropped,
  // the first inserted seeds win.
  LibraryRecord again = sample_record(0);
  again.seeds = {{geom::Point{0, 0}, 99}};
  EXPECT_FALSE(lib.insert(again));
  ASSERT_EQ(lib.size(), 1u);
  EXPECT_EQ(lib.record(0).seeds, first.seeds);
  // A different solution is a different tile — kept.
  EXPECT_TRUE(lib.insert(sample_record(0, /*salt=*/7)));
  EXPECT_EQ(lib.size(), 2u);
}

TEST(PatternLibrary, NearestIsDeterministicAndTieBreaksBySmallestIndex) {
  PatternLibrary lib;
  // Two entries with identical window geometry (identical features) but
  // distinct payloads: an exact-feature query ties; index 0 must win.
  EXPECT_TRUE(lib.insert(sample_record(0, 0)));
  EXPECT_TRUE(lib.insert(sample_record(0, 7)));
  EXPECT_TRUE(lib.insert(sample_record(400)));
  const PatternFeature query =
      feature_of(sample_record(0).tile.window_rects);
  const auto near = lib.nearest(query, 1.0);
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->index, 0u);
  EXPECT_EQ(near->distance, 0.0);
}

TEST(PatternLibrary, NearestHonorsBudget) {
  PatternLibrary lib;
  EXPECT_TRUE(lib.insert(sample_record(0)));
  const PatternFeature query =
      feature_of(sample_record(40).tile.window_rects);
  const double d = feature_distance(
      query, feature_of(sample_record(0).tile.window_rects));
  ASSERT_GT(d, 0.0);
  EXPECT_TRUE(lib.nearest(query, d).has_value());       // inclusive
  EXPECT_FALSE(lib.nearest(query, d * 0.5).has_value());
  EXPECT_FALSE(lib.nearest(query, -1.0).has_value());   // negative: off
  EXPECT_FALSE(PatternLibrary().nearest(query, 1e9).has_value());
}

TEST(PatternLibrary, RoundTripsThroughDisk) {
  const std::string path = temp_path("lib_roundtrip.ocl");
  {
    auto lib = PatternLibrary::open(path, kFp);
    EXPECT_EQ(lib.load_info().records_loaded, 0u);
    EXPECT_TRUE(lib.insert(sample_record(0)));
    EXPECT_TRUE(lib.insert(sample_record(40)));
    // Duplicate insert neither grows the index nor the file.
    EXPECT_FALSE(lib.insert(sample_record(0)));
  }
  const std::uint64_t size_after = std::filesystem::file_size(path);
  auto lib = PatternLibrary::open(path, kFp);
  EXPECT_EQ(std::filesystem::file_size(path), size_after);
  EXPECT_EQ(lib.load_info().records_loaded, 2u);
  EXPECT_FALSE(lib.load_info().tail_recovered);
  ASSERT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.record(0), sample_record(0));
  EXPECT_EQ(lib.record(1), sample_record(40));
  // The index is rebuilt from geometry on load: retrieval still works.
  const auto near =
      lib.nearest(feature_of(sample_record(44).tile.window_rects), 0.5);
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->index, 1u);
}

TEST(PatternLibrary, ReopenAppendsAfterExistingRecords) {
  const std::string path = temp_path("lib_extend.ocl");
  {
    auto lib = PatternLibrary::open(path, kFp);
    EXPECT_TRUE(lib.insert(sample_record(0)));
  }
  {
    auto lib = PatternLibrary::open(path, kFp);
    EXPECT_EQ(lib.size(), 1u);
    // Reopen dedups against loaded entries too.
    EXPECT_FALSE(lib.insert(sample_record(0)));
    EXPECT_TRUE(lib.insert(sample_record(40)));
  }
  auto lib = PatternLibrary::open(path, kFp);
  ASSERT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.record(1), sample_record(40));
}

TEST(PatternLibrary, RefusesFingerprintMismatch) {
  const std::string path = temp_path("lib_fp.ocl");
  good_library_bytes(path);
  try {
    PatternLibrary::open(path, kFp + 1);
    FAIL() << "stale library was not refused";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("different process setup"),
              std::string::npos)
        << e.what();
  }
}

TEST(PatternLibrary, RefusesWrongMagic) {
  const std::string path = temp_path("lib_magic.ocl");
  auto bytes = good_library_bytes(path);
  bytes[0] = 'X';
  write_bytes(path, bytes);
  EXPECT_THROW(PatternLibrary::open(path, kFp), util::InputError);
}

TEST(PatternLibrary, RefusesTruncatedHeader) {
  const std::string path = temp_path("lib_shorthdr.ocl");
  auto bytes = good_library_bytes(path);
  bytes.resize(kHeaderSize / 2);
  write_bytes(path, bytes);
  EXPECT_THROW(PatternLibrary::open(path, kFp), util::InputError);
}

TEST(PatternLibrary, RefusesCorruptHeaderChecksum) {
  const std::string path = temp_path("lib_hdrcrc.ocl");
  auto bytes = good_library_bytes(path);
  bytes[12] ^= 0x01u;  // flip a fingerprint byte without re-forging CRC
  write_bytes(path, bytes);
  try {
    PatternLibrary::open(path, kFp);
    FAIL() << "corrupt header was not refused";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(PatternLibrary, RefusesUnknownVersionWithValidChecksum) {
  const std::string path = temp_path("lib_version.ocl");
  auto bytes = good_library_bytes(path);
  bytes[8] = 99;  // version field, little-endian low byte
  // Re-forge the header CRC so the version check (not the checksum) fires.
  const std::uint32_t crc =
      store::store_detail::crc32(bytes.data(), kHeaderSize - 4);
  for (int i = 0; i < 4; ++i)
    bytes[20 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu);
  write_bytes(path, bytes);
  try {
    PatternLibrary::open(path, kFp);
    FAIL() << "unknown version was not refused";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(PatternLibrary, RefusesFlippedRecordByte) {
  const std::string path = temp_path("lib_reccrc.ocl");
  auto bytes = good_library_bytes(path);
  // Flip a byte inside the first record's payload (after length prefix).
  bytes[kHeaderSize + 4 + 3] ^= 0x40u;
  write_bytes(path, bytes);
  try {
    PatternLibrary::open(path, kFp);
    FAIL() << "corrupt record was not refused";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(PatternLibrary, RefusesMalformedPayloadWithForgedChecksum) {
  // A structurally bogus payload behind a *valid* CRC must still be
  // refused — the CRC authenticates bytes, the parser structure.
  const std::string path = temp_path("lib_struct.ocl");
  std::vector<std::uint8_t> bytes = [&] {
    PatternLibrary::open(path, kFp);
    return file_bytes(path);
  }();
  const std::vector<std::uint8_t> payload = {0xEE};  // truncated tile_len
  bytes.push_back(1);  // record length = 1, little-endian
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(payload[0]);
  const std::uint32_t crc = store::store_detail::crc32(payload.data(), 1);
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFFu));
  write_bytes(path, bytes);
  try {
    PatternLibrary::open(path, kFp);
    FAIL() << "malformed payload was not refused";
  } catch (const util::InputError& e) {
    EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos)
        << e.what();
  }
}

TEST(PatternLibrary, RecoversTornTailAtEveryCut) {
  const std::string path = temp_path("lib_torn.ocl");
  const auto bytes = good_library_bytes(path);
  const std::uint64_t whole = bytes.size();
  // Find where record 2 starts: reopen the intact file and measure the
  // one-record prefix.
  const std::uint64_t one_record = [&] {
    const std::string p = temp_path("lib_torn_ref.ocl");
    auto lib = PatternLibrary::open(p, kFp);
    lib.insert(sample_record(0));
    return std::filesystem::file_size(p);
  }();
  ASSERT_GT(one_record, kHeaderSize);
  ASSERT_LT(one_record, whole);

  for (std::size_t cut : {one_record + 1, one_record + 5, whole - 1}) {
    auto torn = bytes;
    torn.resize(cut);
    write_bytes(path, torn);
    auto lib = PatternLibrary::open(path, kFp);
    ASSERT_EQ(lib.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(lib.record(0), sample_record(0));
    EXPECT_TRUE(lib.load_info().tail_recovered) << "cut=" << cut;
    // open() truncates the torn bytes so appends land after the last
    // whole record.
    EXPECT_EQ(std::filesystem::file_size(path), one_record);
  }
}

TEST(PatternLibrary, AppendAfterTornTailHealsFile) {
  const std::string path = temp_path("lib_heal.ocl");
  auto bytes = good_library_bytes(path);
  bytes.resize(bytes.size() - 3);  // tear inside the last record
  write_bytes(path, bytes);
  {
    auto lib = PatternLibrary::open(path, kFp);
    ASSERT_TRUE(lib.load_info().tail_recovered);
    EXPECT_TRUE(lib.insert(sample_record(80)));
  }
  // The healed file has no trace of the torn bytes.
  auto lib = PatternLibrary::open(path, kFp);
  EXPECT_FALSE(lib.load_info().tail_recovered);
  ASSERT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.record(0), sample_record(0));
  EXPECT_EQ(lib.record(1), sample_record(80));
}

TEST(PatternLibrary, CloneMemoryIsDetachedFromFile) {
  const std::string path = temp_path("lib_clone.ocl");
  auto lib = PatternLibrary::open(path, kFp);
  EXPECT_TRUE(lib.insert(sample_record(0)));

  PatternLibrary clone = lib.clone_memory();
  ASSERT_EQ(clone.size(), 1u);
  EXPECT_EQ(clone.record(0), sample_record(0));
  const std::uint64_t before = std::filesystem::file_size(path);
  // Inserting into the clone must not write through to the file...
  EXPECT_TRUE(clone.insert(sample_record(40)));
  EXPECT_EQ(std::filesystem::file_size(path), before);
  // ...and the original's later inserts don't appear in the clone.
  EXPECT_TRUE(lib.insert(sample_record(80)));
  EXPECT_EQ(clone.size(), 2u);
  EXPECT_EQ(lib.size(), 2u);
  // The clone's index still retrieves.
  EXPECT_TRUE(clone
                  .nearest(feature_of(sample_record(44).tile.window_rects),
                           0.5)
                  .has_value());
}

}  // namespace
}  // namespace opckit::pat
