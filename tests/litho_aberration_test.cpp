#include <cmath>

#include <gtest/gtest.h>

#include "litho/litho.h"

namespace opckit::litho {
namespace {

using geom::Rect;
using geom::Region;

SimSpec base_spec() {
  SimSpec spec;
  spec.optics.source.grid = 5;
  return spec;
}

/// Printed-line center shift from symmetric edge probes.
double line_shift(const Image& lat, double threshold) {
  const double epe_r =
      edge_placement_error(lat, {90, 0}, {1, 0}, 80.0, threshold);
  const double epe_l =
      edge_placement_error(lat, {-90, 0}, {-1, 0}, 80.0, threshold);
  // A rigid +x shift overprints the right edge and underprints the left.
  return (epe_r - epe_l) / 2.0;
}

TEST(Aberrations, AnyDetectsNonZero) {
  Aberrations ab;
  EXPECT_FALSE(ab.any());
  ab.astig_nm = 5.0;
  EXPECT_TRUE(ab.any());
}

TEST(Aberrations, NoAberrationNoShift) {
  SimSpec spec = base_spec();
  calibrate_threshold(spec, 180, 360);
  const Simulator sim(spec, Rect(-500, -600, 500, 600));
  const Image lat = sim.latent(Region{Rect(-90, -2000, 90, 2000)});
  EXPECT_NEAR(line_shift(lat, sim.threshold()), 0.0, 0.3);
}

TEST(Aberrations, ComaShiftsThePattern) {
  // Coma pattern shift is strongest under moderately coherent
  // illumination (Z7 is tilt-balanced, and broad annular sources average
  // the residual away), so probe with a sigma-0.5 circular source.
  SimSpec spec = base_spec();
  spec.optics.source.shape = SourceShape::kCircular;
  spec.optics.source.sigma_outer = 0.5;
  calibrate_threshold(spec, 180, 360);
  spec.optics.aberrations.coma_x_nm = 20.0;
  const Simulator sim(spec, Rect(-500, -600, 500, 600));
  const Image lat = sim.latent(Region{Rect(-90, -2000, 90, 2000)});
  const double shift = line_shift(lat, sim.threshold());
  EXPECT_GT(std::abs(shift), 3.0) << "20nm coma must shift the line";
  // Opposite coma sign shifts the other way.
  spec.optics.aberrations.coma_x_nm = -20.0;
  const Simulator sim2(spec, Rect(-500, -600, 500, 600));
  const Image lat2 = sim2.latent(Region{Rect(-90, -2000, 90, 2000)});
  EXPECT_LT(line_shift(lat2, sim2.threshold()) * shift, 0.0);
}

TEST(Aberrations, ComaYDoesNotShiftVerticalLines) {
  SimSpec spec = base_spec();
  calibrate_threshold(spec, 180, 360);
  spec.optics.aberrations.coma_y_nm = 20.0;
  const Simulator sim(spec, Rect(-500, -600, 500, 600));
  const Image lat = sim.latent(Region{Rect(-90, -2000, 90, 2000)});
  EXPECT_NEAR(line_shift(lat, sim.threshold()), 0.0, 0.5);
}

TEST(Aberrations, AstigmatismSplitsBestFocusByOrientation) {
  SimSpec spec = base_spec();
  spec.optics.aberrations.astig_nm = 25.0;
  const geom::Rect window(-720, -720, 720, 720);
  const Simulator sim(spec, window);

  auto contrast = [&](bool vertical, double z) {
    std::vector<Rect> lines;
    for (int i = -3; i <= 3; ++i) {
      const geom::Coord c = i * 360;
      lines.push_back(vertical ? Rect(c - 90, -2000, c + 90, 2000)
                               : Rect(-2000, c - 90, 2000, c + 90));
    }
    const Image lat = sim.latent(Region::from_rects(lines), z);
    const double on = lat.sample(0, 0);
    const double off =
        vertical ? lat.sample(180, 0) : lat.sample(0, 180);
    return (on - off) / (on + off);
  };
  // Find the best focus (coarse) per orientation; astigmatism must split
  // them to opposite sides.
  auto best_focus = [&](bool vertical) {
    double best_z = 0, best_c = -1;
    for (double z = -400; z <= 400; z += 100) {
      const double c = contrast(vertical, z);
      if (c > best_c) {
        best_c = c;
        best_z = z;
      }
    }
    return best_z;
  };
  const double zv = best_focus(true);
  const double zh = best_focus(false);
  EXPECT_NE(zv, zh);
  EXPECT_GE(std::abs(zv - zh), 200.0);
}

TEST(Aberrations, AberratedClearFieldStillUniform) {
  // Phase-only pupil errors cannot modulate a uniform field.
  SimSpec spec = base_spec();
  spec.optics.aberrations = {15.0, -10.0, 20.0};
  const Frame frame{{0, 0}, 8.0, 64, 64};
  const AbbeImager imager(spec.optics, frame);
  Image mask(frame, 1.0);
  const Image img = imager.aerial_image(mask);
  for (double v : img.values()) EXPECT_NEAR(v, 1.0, 1e-9);
}

}  // namespace
}  // namespace opckit::litho
