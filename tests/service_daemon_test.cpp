/// End-to-end opcd daemon tests (src/service/server.h): lifecycle,
/// concurrent clients, admission backpressure, drain/abort shutdown,
/// crash resume through the library directory, and protocol-error
/// survival — all over real unix-domain (and loopback-TCP) sockets.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/flow.h"
#include "layout/gdsii.h"
#include "layout/generators.h"
#include "service/client.h"
#include "service/server.h"
#include "service/socket.h"

namespace opckit::svc {
namespace {

using layout::Library;

opc::FlowSpec fast_flow() {
  // Calibrated once and cached: calibrate_threshold runs a real
  // simulation, and several tests here rely on back-to-back submissions
  // landing faster than a job completes — a ~100ms spec rebuild between
  // two submits would let the queue drain and break the timing they
  // probe (admission backpressure, priority ordering).
  static const opc::FlowSpec cached = [] {
    opc::FlowSpec spec;
    spec.sim.optics.source.grid = 5;
    litho::calibrate_threshold(spec.sim, 180, 360);
    spec.opc.max_iterations = 2;
    spec.input_layer = layout::layers::kPoly;
    spec.output_layer = layout::layers::kPolyOpc;
    return spec;
  }();
  return cached;
}

/// Fresh temp path: any stale file from a previous run is removed.
std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  return path;
}

/// Write a repeated-placement chip to a GDSII file and return its path.
std::string make_input_gds(const std::string& name, int cols = 2,
                           int rows = 2) {
  Library lib("chip");
  layout::Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layout::layers::kPoly, geom::Rect(0, 0, 180, 1200));
  leaf.add_rect(layout::layers::kPoly, geom::Rect(540, 0, 720, 1200));
  layout::make_chip(lib, "top", "leaf", cols, rows, {4000, 4000});
  const std::string path = temp_path(name);
  layout::write_gdsii_file(lib, path);
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

SubmitMsg make_submit(const std::string& in, const std::string& out,
                      int priority = 0) {
  SubmitMsg msg;
  msg.priority = priority;
  msg.flow = 0;  // flat
  msg.in_path = in;
  msg.out_path = out;
  msg.spec = fast_flow();
  return msg;
}

/// A running daemon on a fresh unix socket + the means to talk to it.
struct DaemonFixture {
  explicit DaemonFixture(const std::string& name, ServerOptions opts = {}) {
    socket_path = temp_path(name + ".sock");
    opts.unix_path = socket_path;
    server = std::make_unique<Server>(std::move(opts));
    server->start();
  }

  Client client() { return Client(connect_unix(socket_path)); }

  std::unique_ptr<Server> server;
  std::string socket_path;
};

/// Skip progress frames until the terminal kResult and return it.
ResultMsg await_result(Stream& s) {
  for (;;) {
    auto f = read_frame(s);
    if (!f.has_value()) {
      ADD_FAILURE() << "stream closed before a result frame";
      return {};
    }
    if (f->type == MsgType::kResult) return decode_result(f->payload);
    EXPECT_EQ(f->type, MsgType::kProgress);
  }
}

TEST(ServiceDaemon, PingPong) {
  DaemonFixture d("svc_ping");
  Client c = d.client();
  EXPECT_NO_THROW(c.ping());
  d.server->stop();
}

TEST(ServiceDaemon, SubmitRunsJobByteIdenticalToDirectRun) {
  DaemonFixture d("svc_basic");
  const std::string in = make_input_gds("svc_basic_in.gds");
  const std::string daemon_out = temp_path("svc_basic_daemon.gds");

  Client c = d.client();
  const auto outcome = c.run_job(make_submit(in, daemon_out));
  ASSERT_TRUE(outcome.accepted);
  EXPECT_GT(outcome.ack.job_id, 0u);
  ASSERT_TRUE(outcome.result.ok) << outcome.result.payload;
  EXPECT_NE(outcome.result.payload.find("\"opc_runs\""),
            std::string::npos);

  // Progress streamed from inside the flow.
  bool saw_solve = false;
  for (const auto& p : outcome.progress) {
    if (p.phase == "solve") saw_solve = true;
  }
  EXPECT_TRUE(saw_solve);

  // The daemon's output must be byte-identical to the same flow run
  // directly in this process — the T9 acceptance criterion.
  Library lib = layout::read_gdsii_file(in);
  opc::run_flat_opc(lib, "top", fast_flow());
  const std::string direct_out = temp_path("svc_basic_direct.gds");
  layout::write_gdsii_file(lib, direct_out);
  EXPECT_EQ(read_file(daemon_out), read_file(direct_out));
  d.server->stop();
}

TEST(ServiceDaemon, SecondIdenticalJobReplaysFromHotLibrary) {
  DaemonFixture d("svc_hot");
  const std::string in = make_input_gds("svc_hot_in.gds");
  const std::string out1 = temp_path("svc_hot_out1.gds");
  const std::string out2 = temp_path("svc_hot_out2.gds");
  Client c = d.client();

  const auto first = c.run_job(make_submit(in, out1));
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(first.result.ok) << first.result.payload;
  EXPECT_EQ(first.result.payload.find("\"opc_runs\":0"),
            std::string::npos);

  const auto second = c.run_job(make_submit(in, out2));
  ASSERT_TRUE(second.result.ok) << second.result.payload;
  // Everything replays from the shared correction library: zero solves,
  // same output bytes.
  EXPECT_NE(second.result.payload.find("\"opc_runs\":0"),
            std::string::npos);
  EXPECT_EQ(read_file(out1), read_file(out2));
  d.server->stop();
}

TEST(ServiceDaemon, ConcurrentClientsAllComplete) {
  ServerOptions opts;
  opts.workers = 4;
  DaemonFixture d("svc_conc", std::move(opts));
  const std::string in = make_input_gds("svc_conc_in.gds");

  constexpr int kClients = 4;
  std::vector<std::string> outs;
  for (int i = 0; i < kClients; ++i) {
    outs.push_back(temp_path("svc_conc_out" + std::to_string(i) + ".gds"));
  }
  std::vector<Client::Outcome> outcomes(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client c = d.client();
      outcomes[static_cast<std::size_t>(i)] =
          c.run_job(make_submit(in, outs[static_cast<std::size_t>(i)]));
    });
  }
  for (auto& t : threads) t.join();

  const std::string expect = read_file(outs[0]);
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(outcomes[static_cast<std::size_t>(i)].accepted);
    ASSERT_TRUE(outcomes[static_cast<std::size_t>(i)].result.ok)
        << outcomes[static_cast<std::size_t>(i)].result.payload;
    EXPECT_EQ(read_file(outs[static_cast<std::size_t>(i)]), expect);
  }
  d.server->stop();
}

TEST(ServiceDaemon, FullQueueRejectsWithTypedError) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_inflight = 1;
  opts.max_queue = 1;
  DaemonFixture d("svc_queue", std::move(opts));
  const std::string in = make_input_gds("svc_queue_in.gds", 3, 3);

  // Drive the wire directly so submissions can overlap: job 1 starts
  // running, job 2 occupies the single queue slot, job 3 must bounce.
  auto s1 = connect_unix(d.socket_path);
  auto s2 = connect_unix(d.socket_path);
  auto s3 = connect_unix(d.socket_path);
  write_frame(*s1, MsgType::kSubmit,
              encode_submit(make_submit(in, temp_path("svc_q1.gds"))));
  auto f1 = read_frame(*s1);
  ASSERT_TRUE(f1 && f1->type == MsgType::kAccepted);

  write_frame(*s2, MsgType::kSubmit,
              encode_submit(make_submit(in, temp_path("svc_q2.gds"))));
  auto f2 = read_frame(*s2);
  ASSERT_TRUE(f2 && f2->type == MsgType::kAccepted);

  write_frame(*s3, MsgType::kSubmit,
              encode_submit(make_submit(in, temp_path("svc_q3.gds"))));
  auto f3 = read_frame(*s3);
  ASSERT_TRUE(f3.has_value());
  ASSERT_EQ(f3->type, MsgType::kRejected);
  EXPECT_EQ(decode_rejected(f3->payload).reason, RejectReason::kQueueFull);

  // The accepted jobs still finish normally.
  EXPECT_TRUE(await_result(*s1).ok);
  EXPECT_TRUE(await_result(*s2).ok);
  d.server->stop();
}

TEST(ServiceDaemon, DrainFinishesInflightAndRejectsQueued) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_inflight = 1;
  DaemonFixture d("svc_drain", std::move(opts));
  const std::string in = make_input_gds("svc_drain_in.gds", 3, 3);
  const std::string out1 = temp_path("svc_d1.gds");

  auto s1 = connect_unix(d.socket_path);
  auto s2 = connect_unix(d.socket_path);
  write_frame(*s1, MsgType::kSubmit,
              encode_submit(make_submit(in, out1)));
  auto a1 = read_frame(*s1);
  ASSERT_TRUE(a1 && a1->type == MsgType::kAccepted);
  write_frame(*s2, MsgType::kSubmit,
              encode_submit(make_submit(in, temp_path("svc_d2.gds"))));
  auto a2 = read_frame(*s2);
  ASSERT_TRUE(a2 && a2->type == MsgType::kAccepted);

  // Drain: in-flight job 1 finishes; queued job 2 gets a typed
  // rejection; a fresh submission is refused on arrival.
  Client ctl = d.client();
  ctl.shutdown_server(ShutdownMode::kDrain);
  EXPECT_TRUE(d.server->wait_shutdown_requested(0));

  auto f = read_frame(*s2);
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->type, MsgType::kRejected);
  EXPECT_EQ(decode_rejected(f->payload).reason, RejectReason::kDraining);
  EXPECT_TRUE(await_result(*s1).ok);

  Client late = d.client();
  const auto refused =
      late.run_job(make_submit(in, temp_path("svc_d3.gds")));
  ASSERT_FALSE(refused.accepted);
  EXPECT_EQ(refused.rejected.reason, RejectReason::kDraining);

  d.server->stop();
  // The drained job's output survived the shutdown.
  EXPECT_TRUE(std::filesystem::exists(out1));
}

TEST(ServiceDaemon, AbortCancelsInflightJob) {
  ServerOptions opts;
  opts.workers = 1;
  DaemonFixture d("svc_abort", std::move(opts));
  // Big enough that the job is still mid-flow when the abort lands.
  const std::string in = make_input_gds("svc_abort_in.gds", 4, 4);

  auto s1 = connect_unix(d.socket_path);
  write_frame(*s1, MsgType::kSubmit,
              encode_submit(make_submit(in, temp_path("svc_a1.gds"))));
  auto ack = read_frame(*s1);
  ASSERT_TRUE(ack && ack->type == MsgType::kAccepted);
  // Wait for the first progress frame so the job is demonstrably
  // in-flight before aborting.
  auto first = read_frame(*s1);
  ASSERT_TRUE(first && first->type == MsgType::kProgress);

  Client ctl = d.client();
  ctl.shutdown_server(ShutdownMode::kAbort);

  const ResultMsg result = await_result(*s1);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.payload.find("cancel"), std::string::npos)
      << result.payload;
  d.server->stop();
}

TEST(ServiceDaemon, CrashResumeReplaysFromLibraryDirByteIdentical) {
  const std::string dir = temp_path("svc_resume_lib");
  const std::string in = make_input_gds("svc_resume_in.gds");
  const std::string out1 = temp_path("svc_r1.gds");
  const std::string out2 = temp_path("svc_r2.gds");

  {
    ServerOptions opts;
    opts.library.dir = dir;
    DaemonFixture d("svc_resume1", std::move(opts));
    Client c = d.client();
    const auto out = c.run_job(make_submit(in, out1));
    ASSERT_TRUE(out.result.ok) << out.result.payload;
    d.server->stop();
  }

  // "Crashed" daemon replaced by a fresh process over the same library
  // directory: the shelf reloads from its fsynced .ocs file and the
  // whole job replays — zero solves, byte-identical output.
  ServerOptions opts;
  opts.library.dir = dir;
  DaemonFixture d2("svc_resume2", std::move(opts));
  Client c2 = d2.client();
  const auto r2 = c2.run_job(make_submit(in, out2));
  ASSERT_TRUE(r2.result.ok) << r2.result.payload;
  EXPECT_NE(r2.result.payload.find("\"opc_runs\":0"), std::string::npos);
  EXPECT_EQ(read_file(out1), read_file(out2));
  d2.server->stop();
}

TEST(ServiceDaemon, GarbageBytesEarnTypedErrorAndDaemonSurvives) {
  DaemonFixture d("svc_garbage");

  auto s = connect_unix(d.socket_path);
  // Exactly one header's worth of garbage: the daemon consumes it all
  // before hanging up, so the close is a clean FIN — more garbage would
  // leave unread bytes and turn the close into an RST that can race
  // ahead of the kError frame.
  const char garbage[] = "NOT-A-FRAME!";
  static_assert(sizeof garbage - 1 == kFrameHeaderSize);
  write_all(*s, garbage, sizeof garbage - 1);
  auto reply = read_frame(*s);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kError);
  const ErrorMsg err = decode_error(reply->payload);
  EXPECT_EQ(err.code, static_cast<std::uint16_t>(WireFault::kBadMagic));
  // The daemon hung up on the unparseable stream...
  EXPECT_FALSE(read_frame(*s).has_value());

  // ...but is fully alive for the next client.
  Client c = d.client();
  EXPECT_NO_THROW(c.ping());
  d.server->stop();
}

TEST(ServiceDaemon, BadJobFailsCleanlyAndDaemonSurvives) {
  DaemonFixture d("svc_badjob");
  Client c = d.client();
  const auto outcome = c.run_job(
      make_submit("/nonexistent/input.gds", temp_path("svc_bad_out.gds")));
  ASSERT_TRUE(outcome.accepted);  // path existence is a job-time failure
  EXPECT_FALSE(outcome.result.ok);
  EXPECT_FALSE(outcome.result.payload.empty());
  EXPECT_NO_THROW(c.ping());
  d.server->stop();
}

TEST(ServiceDaemon, TcpTransportWorks) {
  ServerOptions opts;
  opts.use_tcp = true;  // port 0 = ephemeral
  Server server(std::move(opts));
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  const std::string in = make_input_gds("svc_tcp_in.gds");
  Client c(connect_tcp(server.tcp_port()));
  c.ping();
  const auto outcome =
      c.run_job(make_submit(in, temp_path("svc_tcp_out.gds")));
  ASSERT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.result.ok) << outcome.result.payload;
  server.stop();
}

TEST(ServiceDaemon, PriorityOrdersQueuedJobs) {
  // Deterministic scheduler probe: job_start_hook blocks the first job
  // on its worker thread, holding the single inflight slot while the
  // low- then high-priority contenders queue behind it. Only once both
  // kAccepted frames are in hand is the gate released, so the queue
  // drains with both jobs present — the recorded start order, not a
  // wall-clock race against job runtime, is the witness that priority
  // won. (The hook also makes the test immune to sanitizer slowdown.)
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::uint64_t> start_order;
  bool released = false;
  ServerOptions opts;
  opts.workers = 1;
  opts.max_inflight = 1;
  opts.job_start_hook = [&](std::uint64_t id) {
    std::unique_lock<std::mutex> lk(m);
    start_order.push_back(id);
    cv.notify_all();
    cv.wait(lk, [&] { return released; });
  };
  DaemonFixture d("svc_prio", std::move(opts));
  const std::string in = make_input_gds("svc_prio_in.gds");
  const std::string out_lo = temp_path("svc_plo.gds");

  auto s0 = connect_unix(d.socket_path);
  auto lo = connect_unix(d.socket_path);
  auto hi = connect_unix(d.socket_path);
  write_frame(*s0, MsgType::kSubmit,
              encode_submit(make_submit(in, temp_path("svc_p0.gds"), 0)));
  auto a0 = read_frame(*s0);
  ASSERT_TRUE(a0 && a0->type == MsgType::kAccepted);
  {
    // Wait until job 0 actually occupies the slot before queueing the
    // contenders (admission acks before the worker dequeues).
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return !start_order.empty(); });
  }
  write_frame(*lo, MsgType::kSubmit,
              encode_submit(make_submit(in, out_lo, -5)));
  auto alo = read_frame(*lo);
  ASSERT_TRUE(alo && alo->type == MsgType::kAccepted);
  write_frame(*hi, MsgType::kSubmit,
              encode_submit(make_submit(in, temp_path("svc_phi.gds"), 5)));
  auto ahi = read_frame(*hi);
  ASSERT_TRUE(ahi && ahi->type == MsgType::kAccepted);
  {
    std::lock_guard<std::mutex> lk(m);
    released = true;
  }
  cv.notify_all();

  EXPECT_TRUE(await_result(*s0).ok);
  EXPECT_TRUE(await_result(*hi).ok);
  EXPECT_TRUE(await_result(*lo).ok);
  EXPECT_TRUE(std::filesystem::exists(out_lo));

  std::vector<std::uint64_t> order;
  {
    std::lock_guard<std::mutex> lk(m);
    order = start_order;
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], decode_accepted(a0->payload).job_id);
  // Priority +5 starts before -5 despite being submitted after it.
  EXPECT_EQ(order[1], decode_accepted(ahi->payload).job_id);
  EXPECT_EQ(order[2], decode_accepted(alo->payload).job_id);
  d.server->stop();
}

}  // namespace
}  // namespace opckit::svc
