/// Edge-case regression tests for the metrology/optics bugfix sweep:
/// flat-segment threshold crossings, index-based scan stepping,
/// largest-contiguous-run exposure windows, and dipole source raster
/// resolution.
///
/// Labelled `metrology` (with the socs suite's binary) so tools/ci.sh
/// can gate the sanitizer jobs on it explicitly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "litho/metrology.h"
#include "litho/optics.h"

namespace opckit::litho {
namespace {

// A flat segment exactly at threshold used to divide by v1 - v0 and
// feed ±inf/NaN into EPE statistics; the crossing is now the midpoint.
TEST(MetrologyEdge, FlatSegmentCrossingReturnsMidpoint) {
  EXPECT_DOUBLE_EQ(detail::interpolate_crossing(2.0, 4.0, 0.5, 0.5, 0.5),
                   3.0);
  EXPECT_DOUBLE_EQ(detail::interpolate_crossing(-8.0, -6.0, 0.3, 0.3, 0.3),
                   -7.0);
  EXPECT_TRUE(std::isfinite(
      detail::interpolate_crossing(0.0, 1.0, 0.5, 0.5, 0.5)));
}

TEST(MetrologyEdge, SlopedSegmentCrossingStillInterpolates) {
  // v: 0.2 -> 0.8 over t: 0 -> 2; threshold 0.5 crosses at t = 1.
  EXPECT_DOUBLE_EQ(detail::interpolate_crossing(0.0, 2.0, 0.2, 0.8, 0.5),
                   1.0);
  // Quarter of the way up the segment.
  EXPECT_DOUBLE_EQ(detail::interpolate_crossing(0.0, 4.0, 0.4, 0.8, 0.5),
                   1.0);
}

// `t += step` accumulation drifted: (1.0 - 0.0)/0.1 evaluates below 10
// in floating point, so the old truncating count reserved one sample
// too few while the loop's epsilon test still emitted it.
TEST(MetrologyEdge, ScanSampleCountExactForNonDyadicSteps) {
  EXPECT_EQ(detail::scan_sample_count(0.0, 1.0, 0.1), 11u);
  EXPECT_EQ(detail::scan_sample_count(0.0, 0.35, 0.07), 6u);
  EXPECT_EQ(detail::scan_sample_count(-160.0, 160.0, 2.0), 161u);
  EXPECT_EQ(detail::scan_sample_count(0.0, 0.9, 0.2), 5u);  // partial tail
  EXPECT_EQ(detail::scan_sample_count(0.0, 0.0, 2.0), 1u);
}

// Metrology probes on a frame whose pixel/4 scan step is non-dyadic
// must still see a symmetric feature as symmetric: the index-based
// stepping samples the same |t| on both sides of zero.
TEST(MetrologyEdge, NonDyadicStepKeepsSymmetricProbeSymmetric) {
  Frame f;
  f.origin = {-63, -63};
  f.pixel_nm = 6.0;  // step = 1.5; spans/steps hit the epsilon paths
  f.nx = 32;
  f.ny = 32;
  Image img(f, 0.0);
  // Symmetric triangular ridge around x = 0, uniform in y.
  for (std::size_t iy = 0; iy < f.ny; ++iy) {
    for (std::size_t ix = 0; ix < f.nx; ++ix) {
      const double x = static_cast<double>(f.origin.x) +
                       (static_cast<double>(ix) + 0.5) * f.pixel_nm;
      img.at(ix, iy) = std::max(0.0, 1.0 - std::abs(x) / 48.0);
    }
  }
  const double cd = printed_cd(img, {0, 0}, {1, 0}, 90.0, 0.5);
  ASSERT_FALSE(std::isnan(cd));
  // Threshold 0.5 crosses at |x| = 24 -> width 48, sub-pixel accurate.
  EXPECT_NEAR(cd, 48.0, 1.5);
  const double epe = edge_placement_error(img, {24, 0}, {1, 0}, 30.0, 0.5);
  ASSERT_FALSE(std::isnan(epe));
  EXPECT_NEAR(epe, 0.0, 1.5);
}

// A passing-dose set with a detached island (e.g. a sidelobe printing
// on target only at mid dose) must not be reported as one wide lo..hi
// window — that overstated the exposure latitude.
TEST(MetrologyEdge, ExposureWindowTakesLargestContiguousRun) {
  const auto cd_fn = [](double, double dose) {
    const bool pass = (dose >= 0.795 && dose <= 0.905) ||
                      (dose >= 1.195 && dose <= 1.225);
    return pass ? 100.0 : 150.0;  // target 100, tol 5% -> ±5nm
  };
  const auto window =
      exposure_defocus_window(cd_fn, {0.0}, 100.0, 0.05, 0.70, 1.30, 0.01);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_NEAR(window[0].dose_lo, 0.80, 1e-9);
  EXPECT_NEAR(window[0].dose_hi, 0.90, 1e-9);
  EXPECT_NEAR(window[0].latitude_pct, 10.0, 1e-6);
}

TEST(MetrologyEdge, ExposureWindowPrefersLaterRunWhenLarger) {
  const auto cd_fn = [](double, double dose) {
    const bool pass = (dose >= 0.745 && dose <= 0.775) ||
                      (dose >= 1.095 && dose <= 1.255);
    return pass ? 100.0 : std::numeric_limits<double>::quiet_NaN();
  };
  const auto window =
      exposure_defocus_window(cd_fn, {0.0}, 100.0, 0.05, 0.70, 1.30, 0.01);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_NEAR(window[0].dose_lo, 1.10, 1e-9);
  EXPECT_NEAR(window[0].dose_hi, 1.25, 1e-9);
}

TEST(MetrologyEdge, ExposureWindowContiguousSetUnchanged) {
  const auto cd_fn = [](double, double dose) {
    return (dose >= 0.895 && dose <= 1.105) ? 100.0 : 200.0;
  };
  const auto window =
      exposure_defocus_window(cd_fn, {0.0}, 100.0, 0.05, 0.70, 1.30, 0.01);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_NEAR(window[0].dose_lo, 0.90, 1e-9);
  EXPECT_NEAR(window[0].dose_hi, 1.10, 1e-9);
  EXPECT_NEAR(window[0].latitude_pct, 20.0, 1e-6);
}

TEST(MetrologyEdge, ExposureWindowAllFailingReportsZeroLatitude) {
  const auto cd_fn = [](double, double) { return 500.0; };
  const auto window =
      exposure_defocus_window(cd_fn, {0.0, 100.0}, 100.0, 0.05);
  ASSERT_EQ(window.size(), 2u);
  for (const auto& el : window) {
    EXPECT_EQ(el.latitude_pct, 0.0);
    EXPECT_EQ(el.dose_lo, 0.0);
    EXPECT_EQ(el.dose_hi, 0.0);
  }
}

// The dipole raster guarantee is "at least ~3 cells across the pole";
// 3·r_out/pole_radius = 10.8 must round UP to 11 cells, not truncate to
// 10 — truncation under-resolves small poles.
TEST(MetrologyEdge, DipoleRasterResolvesSmallPoles) {
  OpticalSystem sys;
  sys.source.shape = SourceShape::kDipoleX;
  sys.source.pole_center = 0.65;
  sys.source.pole_radius = 0.25;  // r_out = 0.90, 3·r_out/radius = 10.8
  const double f_na = sys.na / sys.wavelength_nm;
  const double r_out = sys.source.pole_center + sys.source.pole_radius;

  const std::vector<SourcePoint> pts = sample_source(sys);
  ASSERT_FALSE(pts.empty());
  // Recover the raster pitch from the distinct fx coordinates; the
  // 3-cells-across guarantee bounds it by (2/3)·pole_radius·f_na.
  std::set<double> xs;
  for (const SourcePoint& p : pts) xs.insert(p.fx);
  ASSERT_GE(xs.size(), 2u);
  double pitch = std::numeric_limits<double>::infinity();
  for (auto it = std::next(xs.begin()); it != xs.end(); ++it) {
    pitch = std::min(pitch, *it - *std::prev(it));
  }
  const double max_pitch = 2.0 / 3.0 * sys.source.pole_radius * f_na;
  EXPECT_LE(pitch, max_pitch * (1.0 + 1e-12));
  // And the raster really is the ceil'd 11 cells: pitch = 2·r_out/11.
  EXPECT_NEAR(pitch, 2.0 * r_out * f_na / 11.0, 1e-15);
}

TEST(MetrologyEdge, DipoleWeightsStillNormalized) {
  OpticalSystem sys;
  sys.source.shape = SourceShape::kDipoleY;
  sys.source.pole_radius = 0.25;
  double total = 0.0;
  for (const SourcePoint& p : sample_source(sys)) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace opckit::litho
