#include <gtest/gtest.h>

#include "layout/library.h"
#include "util/check.h"

namespace opckit::layout {
namespace {

using geom::Orientation;
using geom::Point;
using geom::Rect;
using geom::Transform;

Library two_level_library() {
  Library lib("test");
  Cell& leaf = lib.cell("leaf");
  leaf.add_rect(layers::kPoly, Rect(0, 0, 10, 10));
  Cell& top = lib.cell("top");
  top.add_rect(layers::kPoly, Rect(100, 100, 110, 110));
  CellRef ref;
  ref.child = "leaf";
  ref.transform.displacement = {50, 0};
  top.add_ref(ref);
  return lib;
}

TEST(Library, CellCreationAndLookup) {
  Library lib("l");
  lib.cell("a").add_rect(layers::kPoly, Rect(0, 0, 1, 1));
  EXPECT_TRUE(lib.has_cell("a"));
  EXPECT_FALSE(lib.has_cell("b"));
  EXPECT_EQ(lib.at("a").polygon_count(), 1u);
  EXPECT_THROW(lib.at("b"), util::InputError);
  EXPECT_EQ(lib.size(), 1u);
}

TEST(Library, CellIsIdempotent) {
  Library lib("l");
  lib.cell("a").add_rect(layers::kPoly, Rect(0, 0, 1, 1));
  lib.cell("a").add_rect(layers::kPoly, Rect(2, 2, 3, 3));
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_EQ(lib.at("a").polygon_count(), 2u);
}

TEST(Library, TopCells) {
  Library lib = two_level_library();
  const auto tops = lib.top_cells();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(tops[0], "top");
}

TEST(Library, ValidatePassesOnGoodHierarchy) {
  Library lib = two_level_library();
  EXPECT_NO_THROW(lib.validate());
}

TEST(Library, ValidateCatchesUnresolvedRef) {
  Library lib("l");
  CellRef ref;
  ref.child = "ghost";
  lib.cell("top").add_ref(ref);
  EXPECT_THROW(lib.validate(), util::InputError);
}

TEST(Library, ValidateCatchesCycle) {
  Library lib("l");
  CellRef to_b, to_a;
  to_b.child = "b";
  to_a.child = "a";
  lib.cell("a").add_ref(to_b);
  lib.cell("b").add_ref(to_a);
  EXPECT_THROW(lib.validate(), util::InputError);
}

TEST(Library, FlattenAppliesTransforms) {
  Library lib = two_level_library();
  const auto flat = lib.flatten("top", layers::kPoly);
  ASSERT_EQ(flat.size(), 2u);
  // One shape at (100,100), one leaf shape translated by (50,0).
  geom::Rect all = geom::Rect::empty();
  for (const auto& p : flat) all = all.united(p.bbox());
  EXPECT_EQ(all, Rect(50, 0, 110, 110));
}

TEST(Library, FlattenWithRotatedRef) {
  Library lib("l");
  lib.cell("leaf").add_rect(layers::kPoly, Rect(0, 0, 10, 4));
  CellRef ref;
  ref.child = "leaf";
  ref.transform = Transform(Orientation::kR90, {0, 0});
  lib.cell("top").add_ref(ref);
  const auto flat = lib.flatten("top", layers::kPoly);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].bbox(), Rect(-4, 0, 0, 10));
}

TEST(Library, FlattenArrayExpandsAllPlacements) {
  Library lib("l");
  lib.cell("leaf").add_rect(layers::kPoly, Rect(0, 0, 10, 10));
  CellRef ref;
  ref.child = "leaf";
  ref.columns = 3;
  ref.rows = 2;
  ref.column_step = {100, 0};
  ref.row_step = {0, 200};
  lib.cell("top").add_ref(ref);
  const auto flat = lib.flatten("top", layers::kPoly);
  EXPECT_EQ(flat.size(), 6u);
  EXPECT_EQ(lib.bbox("top"), Rect(0, 0, 210, 210));
}

TEST(Library, FlattenNestedTwoLevels) {
  Library lib("l");
  lib.cell("leaf").add_rect(layers::kPoly, Rect(0, 0, 10, 10));
  CellRef r1;
  r1.child = "leaf";
  r1.transform.displacement = {100, 0};
  lib.cell("mid").add_ref(r1);
  CellRef r2;
  r2.child = "mid";
  r2.transform.displacement = {0, 1000};
  lib.cell("top").add_ref(r2);
  const auto flat = lib.flatten("top", layers::kPoly);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].bbox(), Rect(100, 1000, 110, 1010));
}

TEST(Library, FlattenAllGroupsByLayer) {
  Library lib = two_level_library();
  lib.cell("leaf").add_rect(layers::kMetal1, Rect(0, 0, 5, 5));
  const auto all = lib.flatten_all("top");
  EXPECT_EQ(all.at(layers::kPoly).size(), 2u);
  EXPECT_EQ(all.at(layers::kMetal1).size(), 1u);
}

TEST(Library, StatsCountsHierarchy) {
  Library lib("l");
  lib.cell("leaf").add_rect(layers::kPoly, Rect(0, 0, 10, 10));
  CellRef ref;
  ref.child = "leaf";
  ref.columns = 4;
  ref.rows = 4;
  ref.column_step = {20, 0};
  ref.row_step = {0, 20};
  lib.cell("top").add_ref(ref);
  const HierarchyStats s = lib.stats("top");
  EXPECT_EQ(s.distinct_cells, 2u);
  EXPECT_EQ(s.placements, 16);
  EXPECT_EQ(s.local_polygons, 1u);
  EXPECT_EQ(s.flat_polygons, 16);
  EXPECT_EQ(s.local_vertices, 4u);
  EXPECT_EQ(s.flat_vertices, 64);
  EXPECT_EQ(s.depth, 1);
  EXPECT_DOUBLE_EQ(s.hierarchy_leverage(), 16.0);
}

TEST(Library, StatsDepthOfChain) {
  Library lib("l");
  lib.cell("c0").add_rect(layers::kPoly, Rect(0, 0, 1, 1));
  for (int i = 1; i <= 3; ++i) {
    CellRef ref;
    ref.child = "c" + std::to_string(i - 1);
    lib.cell("c" + std::to_string(i)).add_ref(ref);
  }
  EXPECT_EQ(lib.stats("c3").depth, 3);
  EXPECT_EQ(lib.stats("c0").depth, 0);
}

}  // namespace
}  // namespace opckit::layout
