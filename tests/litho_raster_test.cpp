#include <gtest/gtest.h>

#include "litho/raster.h"

namespace opckit::litho {
namespace {

using geom::Rect;
using geom::Region;

Frame frame8(std::size_t n, geom::Point origin = {0, 0}) {
  Frame f;
  f.origin = origin;
  f.pixel_nm = 8.0;
  f.nx = n;
  f.ny = n;
  return f;
}

TEST(Frame, CoordinateMapping) {
  const Frame f = frame8(16, {100, 200});
  EXPECT_DOUBLE_EQ(f.center_x(0), 104.0);
  EXPECT_DOUBLE_EQ(f.center_y(1), 212.0);
  EXPECT_DOUBLE_EQ(f.px(104.0), 0.0);
  EXPECT_DOUBLE_EQ(f.px(112.0), 1.0);
  EXPECT_EQ(f.extent(), Rect(100, 200, 228, 328));
}

TEST(Image, BilinearSampling) {
  Image img(frame8(4));
  img.at(0, 0) = 0.0;
  img.at(1, 0) = 1.0;
  img.at(0, 1) = 2.0;
  img.at(1, 1) = 3.0;
  // At the center of pixel (0,0): exact value.
  EXPECT_DOUBLE_EQ(img.sample(4.0, 4.0), 0.0);
  // Halfway between (0,0) and (1,0).
  EXPECT_DOUBLE_EQ(img.sample(8.0, 4.0), 0.5);
  // Center of the 2x2 quad.
  EXPECT_DOUBLE_EQ(img.sample(8.0, 8.0), 1.5);
}

TEST(Image, SamplingClampsOutside) {
  Image img(frame8(4), 7.0);
  EXPECT_DOUBLE_EQ(img.sample(-100.0, -100.0), 7.0);
  EXPECT_DOUBLE_EQ(img.sample(1e6, 1e6), 7.0);
}

TEST(Raster, FullPixelsAreOne) {
  Image img = rasterize(Region{Rect(8, 8, 24, 24)}, frame8(8));
  EXPECT_DOUBLE_EQ(img.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(img.at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(img.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(img.at(3, 1), 0.0);
}

TEST(Raster, PartialPixelFraction) {
  // Rect covering half of pixel (0,0) in x.
  Image img = rasterize(Region{Rect(0, 0, 4, 8)}, frame8(4));
  EXPECT_DOUBLE_EQ(img.at(0, 0), 0.5);
  // Quarter coverage.
  Image img2 = rasterize(Region{Rect(0, 0, 4, 4)}, frame8(4));
  EXPECT_DOUBLE_EQ(img2.at(0, 0), 0.25);
}

TEST(Raster, TotalCoverageEqualsArea) {
  const Region r = Region{Rect(3, 5, 37, 29)}.united(Region{Rect(40, 0, 51, 13)});
  Image img = rasterize(r, frame8(16));
  double total = 0;
  for (double v : img.values()) total += v;
  EXPECT_NEAR(total * 64.0, static_cast<double>(r.area()), 1e-9);
}

TEST(Raster, ClipsToGrid) {
  Image img = rasterize(Region{Rect(-100, -100, 1000, 1000)}, frame8(4));
  for (double v : img.values()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Raster, OverlappingPolygonsDoNotExceedOne) {
  std::vector<geom::Polygon> polys{geom::Polygon{Rect(0, 0, 16, 16)},
                                   geom::Polygon{Rect(8, 0, 24, 16)}};
  Image img(frame8(4));
  rasterize(polys, img);
  EXPECT_DOUBLE_EQ(img.at(1, 1), 1.0);  // overlap zone still 1.0
}

TEST(Raster, AccumulatesOntoExistingImage) {
  Image img(frame8(4), 0.25);
  rasterize(Region{Rect(0, 0, 8, 8)}, img);
  EXPECT_DOUBLE_EQ(img.at(0, 0), 1.25);
  EXPECT_DOUBLE_EQ(img.at(1, 1), 0.25);
}

}  // namespace
}  // namespace opckit::litho
