#include <unordered_set>

#include <gtest/gtest.h>

#include "geometry/point.h"

namespace opckit::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, -2}, b{-1, 5};
  EXPECT_EQ(a + b, Point(2, 3));
  EXPECT_EQ(a - b, Point(4, -7));
  EXPECT_EQ(-a, Point(-3, 2));
  EXPECT_EQ(a * 3, Point(9, -6));
}

TEST(Point, CompoundAssignment) {
  Point p{1, 1};
  p += Point{2, 3};
  EXPECT_EQ(p, Point(3, 4));
  p -= Point{1, 1};
  EXPECT_EQ(p, Point(2, 3));
}

TEST(Point, CrossAndDot) {
  EXPECT_EQ(cross({1, 0}, {0, 1}), 1);
  EXPECT_EQ(cross({0, 1}, {1, 0}), -1);
  EXPECT_EQ(cross({2, 3}, {4, 6}), 0);
  EXPECT_EQ(dot({2, 3}, {4, -1}), 5);
}

TEST(Point, Norms) {
  EXPECT_EQ(manhattan_length({3, -4}), 7);
  EXPECT_EQ(chebyshev_length({3, -4}), 4);
  EXPECT_EQ(manhattan_length({0, 0}), 0);
}

TEST(Point, LexicographicOrder) {
  EXPECT_LT(Point(1, 5), Point(2, 0));
  EXPECT_LT(Point(1, 2), Point(1, 3));
  EXPECT_FALSE(Point(1, 2) < Point(1, 2));
}

TEST(Point, HashDistinguishesAxes) {
  // (x,y) and (y,x) must hash differently in general: pattern keys depend
  // on it.
  std::unordered_set<Point> s;
  s.insert({1, 2});
  s.insert({2, 1});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.count(Point{1, 2}));
}

}  // namespace
}  // namespace opckit::geom
