#include <gtest/gtest.h>

#include "core/model.h"
#include "core/orc.h"

namespace opckit::opc {
namespace {

using geom::Polygon;
using geom::Rect;

const litho::SimSpec& calibrated_spec() {
  static const litho::SimSpec spec = [] {
    litho::SimSpec s;
    s.optics.source.grid = 5;
    litho::calibrate_threshold(s, 180, 360);
    return s;
  }();
  return spec;
}

OrcSpec nominal_only_orc() {
  OrcSpec spec;
  spec.corners.clear();  // nominal condition only (fast)
  return spec;
}

TEST(Orc, UncorrectedIsoLineHasViolations) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1500, 90, 1500)}};
  const Rect window(-400, -800, 400, 800);
  const OrcReport rep = run_orc(targets, targets, {}, calibrated_spec(),
                                window, nominal_only_orc());
  EXPECT_GT(rep.sites, 10u);
  // Iso line underprints by ~5-10nm per side; with a 10nm EPE spec this
  // may or may not trip — use a tight spec to prove the plumbing.
  OrcSpec tight = nominal_only_orc();
  tight.epe_spec_nm = 3.0;
  const OrcReport rep2 = run_orc(targets, targets, {}, calibrated_spec(),
                                 window, tight);
  EXPECT_GT(rep2.count(OrcViolationKind::kEpe), 0u);
  EXPECT_LT(rep2.epe_stats.mean(), 0.0) << "iso line should underprint";
}

TEST(Orc, ModelCorrectedMaskIsCleaner) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1500, 90, 1500)}};
  const Rect window(-400, -800, 400, 800);
  ModelOpcSpec mspec;
  mspec.max_iterations = 10;
  const ModelOpcResult opc =
      run_model_opc(targets, calibrated_spec(), window, mspec);

  OrcSpec tight = nominal_only_orc();
  tight.epe_spec_nm = 3.0;
  const OrcReport before = run_orc(targets, targets, {}, calibrated_spec(),
                                   window, tight);
  const OrcReport after = run_orc(targets, opc.corrected, {},
                                  calibrated_spec(), window, tight);
  EXPECT_LT(after.count(OrcViolationKind::kEpe),
            before.count(OrcViolationKind::kEpe));
  EXPECT_LT(std::abs(after.epe_stats.mean()),
            std::abs(before.epe_stats.mean()));
}

TEST(Orc, BridgeDetected) {
  // Two lines drawn so close they merge when printed.
  const std::vector<Polygon> targets{Polygon{Rect(-150, -1000, -10, 1000)},
                                     Polygon{Rect(10, -1000, 150, 1000)}};
  const Rect window(-350, -600, 350, 600);
  OrcSpec spec = nominal_only_orc();
  spec.epe_spec_nm = 1e9;  // isolate the bridge check
  const OrcReport rep = run_orc(targets, targets, {}, calibrated_spec(),
                                window, spec);
  EXPECT_GT(rep.count(OrcViolationKind::kBridge) +
                rep.count(OrcViolationKind::kLostEdge),
            0u)
      << "20nm drawn gap must bridge or lose edges";
}

TEST(Orc, PinchDetected) {
  // A line necked down to 60nm over a short span: prints pinched.
  const Polygon necked(std::vector<geom::Point>{{-90, -1200},
                                                {90, -1200},
                                                {90, -100},
                                                {-30, -100},
                                                {-30, 100},
                                                {90, 100},
                                                {90, 1200},
                                                {-90, 1200}});
  const Rect window(-400, -700, 400, 700);
  OrcSpec spec = nominal_only_orc();
  spec.epe_spec_nm = 1e9;
  const OrcReport rep = run_orc({necked.normalized()}, {necked.normalized()},
                                {}, calibrated_spec(), window, spec);
  EXPECT_GT(rep.count(OrcViolationKind::kPinch) +
                rep.count(OrcViolationKind::kLostEdge),
            0u);
}

TEST(Orc, PrintingSrafFlagged) {
  // An absurd 160nm-wide "assist" prints and must be flagged.
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1200, 90, 1200)}};
  const std::vector<Polygon> fat_sraf{Polygon{Rect(400, -1000, 560, 1000)}};
  std::vector<Polygon> mask = targets;
  const Rect window(-300, -700, 800, 700);
  OrcSpec spec = nominal_only_orc();
  spec.epe_spec_nm = 1e9;
  const OrcReport rep = run_orc(targets, mask, fat_sraf, calibrated_spec(),
                                window, spec);
  EXPECT_GT(rep.count(OrcViolationKind::kSrafPrint), 0u);
}

TEST(Orc, ProperSrafDoesNotPrint) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -1200, 90, 1200)}};
  const std::vector<Polygon> thin_sraf{Polygon{Rect(400, -1000, 480, 1000)}};
  const Rect window(-300, -700, 800, 700);
  OrcSpec spec = nominal_only_orc();
  spec.epe_spec_nm = 1e9;
  const OrcReport rep = run_orc(targets, targets, thin_sraf,
                                calibrated_spec(), window, spec);
  EXPECT_EQ(rep.count(OrcViolationKind::kSrafPrint), 0u);
}

TEST(Orc, CornersMultiplyConditions) {
  const std::vector<Polygon> targets{Polygon{Rect(-90, -900, 90, 900)}};
  const Rect window(-300, -500, 300, 500);
  OrcSpec spec;
  spec.epe_spec_nm = 2.0;
  spec.corners = {{300.0, 0.90}};
  const OrcReport rep =
      run_orc(targets, targets, {}, calibrated_spec(), window, spec);
  // Off-nominal condition must contribute at least as many violations.
  std::size_t nominal = 0, corner = 0;
  for (const auto& v : rep.violations) {
    (v.defocus_nm == 0.0 && v.dose == 1.0 ? nominal : corner)++;
  }
  EXPECT_GT(corner, 0u);
}

}  // namespace
}  // namespace opckit::opc
